#include "ledger/transaction.hpp"

#include <algorithm>

#include "util/sha256.hpp"

namespace xrpl::ledger {

namespace {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int i = 3; i >= 0; --i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

void put_i64(std::vector<std::uint8_t>& out, std::int64_t v) {
    const auto u = static_cast<std::uint64_t>(v);
    for (int i = 7; i >= 0; --i) {
        out.push_back(static_cast<std::uint8_t>(u >> (8 * i)));
    }
}

void put_account(std::vector<std::uint8_t>& out, const AccountID& id) {
    out.insert(out.end(), id.bytes.begin(), id.bytes.end());
}

void put_currency(std::vector<std::uint8_t>& out, const Currency& c) {
    for (const char ch : c.code) out.push_back(static_cast<std::uint8_t>(ch));
}

void put_iou(std::vector<std::uint8_t>& out, const IouAmount& v) {
    put_i64(out, v.mantissa());
    put_u32(out, static_cast<std::uint32_t>(v.exponent()));
}

void put_amount(std::vector<std::uint8_t>& out, const Amount& a) {
    put_currency(out, a.currency);
    put_iou(out, a.value);
}

}  // namespace

std::vector<std::uint8_t> Transaction::serialize() const {
    std::vector<std::uint8_t> out;
    out.reserve(128);
    put_u8(out, static_cast<std::uint8_t>(type));
    put_account(out, sender);
    put_u32(out, sequence);
    put_i64(out, submit_time.seconds);
    put_account(out, destination);
    put_amount(out, amount);
    put_currency(out, source_currency);
    put_u32(out, static_cast<std::uint32_t>(paths.size()));
    for (const auto& path : paths) {
        put_u32(out, static_cast<std::uint32_t>(path.size()));
        for (const AccountID& node : path) put_account(out, node);
    }
    put_account(out, trust_peer);
    put_currency(out, trust_currency);
    put_iou(out, trust_limit);
    put_amount(out, taker_pays);
    put_amount(out, taker_gets);
    return out;
}

Hash256 Transaction::id() const {
    const auto bytes = serialize();
    const util::Sha256Digest digest = util::sha256(bytes);
    Hash256 h;
    std::copy(digest.begin(), digest.end(), h.bytes.begin());
    return h;
}

}  // namespace xrpl::ledger
