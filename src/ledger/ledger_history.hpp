// The closed-ledger chain ("pages" of the distributed ledger).
//
// Each consensus round seals a page: a header hashing the parent
// page, the sequence number, the close time, and the IDs of the
// transactions it contains. The paper calls these "ledger pages";
// Fig 2 counts how many of them each validator signed.
#pragma once

#include <cstdint>
#include <vector>

#include "ledger/types.hpp"
#include "util/ripple_time.hpp"

namespace xrpl::ledger {

/// A sealed ledger page.
struct ClosedLedger {
    std::uint32_t sequence = 0;
    Hash256 parent_hash;
    util::RippleTime close_time;
    std::vector<Hash256> tx_ids;
    Hash256 hash;  // hash of all the above
};

/// Compute a page hash from its contents.
[[nodiscard]] Hash256 compute_page_hash(std::uint32_t sequence,
                                        const Hash256& parent_hash,
                                        util::RippleTime close_time,
                                        const std::vector<Hash256>& tx_ids);

/// The append-only chain of closed ledgers.
class LedgerHistory {
public:
    /// Seal the next page with the given transactions.
    const ClosedLedger& append(util::RippleTime close_time,
                               std::vector<Hash256> tx_ids);

    [[nodiscard]] std::size_t size() const noexcept { return pages_.size(); }
    [[nodiscard]] bool empty() const noexcept { return pages_.empty(); }
    [[nodiscard]] const ClosedLedger& page(std::size_t index) const {
        return pages_.at(index);
    }
    [[nodiscard]] const ClosedLedger& last() const { return pages_.back(); }
    [[nodiscard]] const std::vector<ClosedLedger>& pages() const noexcept {
        return pages_;
    }

    /// Verify that every page's hash matches its contents and links to
    /// its parent. Returns the index of the first bad page, or size().
    [[nodiscard]] std::size_t verify_chain() const;

private:
    std::vector<ClosedLedger> pages_;
};

}  // namespace xrpl::ledger
