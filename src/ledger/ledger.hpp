// Ledger state: accounts, trust lines, and order books.
//
// This is the mutable "current ledger" the payment engine executes
// against. Trust lines are stored node-based so pointers handed to
// the adjacency index stay valid across insertions.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "ledger/amount.hpp"
#include "ledger/trustline.hpp"
#include "ledger/types.hpp"

namespace xrpl::ledger {

/// Per-account root entry.
struct AccountRoot {
    AccountID id;
    XrpAmount balance;        // native XRP, in drops
    std::uint32_t sequence = 0;
    bool is_gateway = false;  // publicly-announced gateway flag (Fig 7 labelling)
    /// The DefaultRipple semantics of the real ledger: payments may
    /// ripple THROUGH an account (use it as an intermediate hop) only
    /// if it permits it. Gateways, Market Makers, and hub accounts
    /// enable it; ordinary users and merchants do not, so strangers
    /// cannot route value through their balances.
    bool allows_rippling = false;
    /// Dense index assigned at creation; lets graph algorithms use
    /// flat arrays instead of hash maps.
    std::uint32_t index = 0;
};

/// A currency-exchange offer: the owner sells `taker_gets` in
/// exchange for `taker_pays` (names are from the taker's viewpoint,
/// as in the real ledger).
struct Offer {
    std::uint64_t id = 0;
    AccountID owner;
    Amount taker_pays;
    Amount taker_gets;

    /// Price the taker pays per unit received; lower is better for
    /// the taker. Books are kept sorted ascending by rate.
    [[nodiscard]] double rate() const noexcept {
        const double gets = taker_gets.value.to_double();
        if (gets <= 0.0) return 0.0;
        return taker_pays.value.to_double() / gets;
    }
};

/// An order book is identified by the (pays, gets) currency pair.
struct BookKey {
    Currency pays;
    Currency gets;
    friend auto operator<=>(const BookKey&, const BookKey&) = default;
};

}  // namespace xrpl::ledger

template <>
struct std::hash<xrpl::ledger::BookKey> {
    std::size_t operator()(const xrpl::ledger::BookKey& k) const noexcept {
        std::size_t seed = std::hash<xrpl::ledger::Currency>{}(k.pays);
        seed ^= std::hash<xrpl::ledger::Currency>{}(k.gets) + 0x9e3779b97f4a7c15ULL +
                (seed << 6) + (seed >> 2);
        return seed;
    }
};

namespace xrpl::ledger {

/// The current (open) ledger state.
class LedgerState {
public:
    LedgerState() = default;

    // Not copyable (the adjacency index holds interior pointers);
    // movable is fine because unordered_map nodes do not relocate.
    // Use clone() for an explicit deep copy.
    LedgerState(const LedgerState&) = delete;
    LedgerState& operator=(const LedgerState&) = delete;
    LedgerState(LedgerState&&) = default;
    LedgerState& operator=(LedgerState&&) = default;

    /// Deep copy with a freshly rebuilt adjacency index. Replay
    /// experiments run against a clone so the original snapshot stays
    /// pristine.
    [[nodiscard]] LedgerState clone() const;

    // --- accounts ---------------------------------------------------

    /// Create an account with an initial XRP balance. Returns false if
    /// it already exists. Gateways allow rippling by default; pass
    /// `allows_rippling` explicitly for non-gateway liquidity nodes.
    bool create_account(const AccountID& id, XrpAmount initial_balance,
                        bool is_gateway = false, bool allows_rippling = false);

    [[nodiscard]] const AccountRoot* account(const AccountID& id) const noexcept;
    [[nodiscard]] AccountRoot* account(const AccountID& id) noexcept;
    [[nodiscard]] std::size_t account_count() const noexcept { return accounts_.size(); }

    /// The account created with dense index `index` (0-based, in
    /// creation order). Precondition: index < account_count().
    [[nodiscard]] const AccountID& account_by_index(std::uint32_t index) const {
        return index_to_account_.at(index);
    }

    /// Direct XRP transfer plus fee burn; fails on missing accounts or
    /// insufficient balance. (Fees are destroyed, not redistributed —
    /// §III-A of the paper.)
    bool xrp_payment(const AccountID& from, const AccountID& to, XrpAmount amount,
                     XrpAmount fee = XrpAmount{10});

    /// Total XRP destroyed by fees so far.
    [[nodiscard]] XrpAmount burned_fees() const noexcept { return burned_; }

    /// Burn `fee` from an account if it can afford it (the payment
    /// engine charges successful transactions through this). Returns
    /// whether the fee was collected.
    bool burn_fee(const AccountID& account, XrpAmount fee);

    // --- trust lines -------------------------------------------------

    /// `from` declares trust of `limit` towards `to` in `currency`.
    /// Creates the line if absent; updates the limit otherwise.
    TrustLine& set_trust(const AccountID& from, const AccountID& to,
                         Currency currency, IouAmount limit);

    [[nodiscard]] const TrustLine* trustline(const AccountID& a, const AccountID& b,
                                             Currency currency) const noexcept;
    [[nodiscard]] TrustLine* trustline(const AccountID& a, const AccountID& b,
                                       Currency currency) noexcept;

    /// All trust lines touching `account` (any currency).
    [[nodiscard]] const std::vector<TrustLine*>& lines_of(
        const AccountID& account) const noexcept;

    [[nodiscard]] std::size_t trustline_count() const noexcept { return lines_.size(); }

    /// Monotonic counter bumped on every TOPOLOGY change — account
    /// creation or trust-line creation. Balance and limit updates on
    /// existing lines do NOT bump it: derived adjacency structures
    /// (paths::GraphIndex) read capacities live through TrustLine
    /// pointers, so only new nodes/edges invalidate them.
    [[nodiscard]] std::uint64_t topology_generation() const noexcept {
        return topology_generation_;
    }

    /// Net IOU position of an account across all its lines, converted
    /// with per-currency rates (currency -> value of 1 unit in the
    /// reference currency). Used for Fig 7(c) balances.
    [[nodiscard]] double net_iou_balance(
        const AccountID& account,
        const std::function<double(Currency)>& rate_to_reference) const;

    /// Sum of trust limits granted TO `account` by peers (positive
    /// trust of Fig 7(b)) and declared BY `account` (negative trust).
    struct TrustSummary {
        double received = 0.0;
        double given = 0.0;
    };
    [[nodiscard]] TrustSummary trust_summary(
        const AccountID& account,
        const std::function<double(Currency)>& rate_to_reference) const;

    // --- order books --------------------------------------------------

    /// Place an offer; returns its id. The book stays sorted by rate.
    std::uint64_t place_offer(const AccountID& owner, Amount taker_pays,
                              Amount taker_gets);

    /// The (sorted, best first) book for a currency pair; empty if none.
    [[nodiscard]] const std::vector<Offer>& book(const BookKey& key) const noexcept;
    [[nodiscard]] std::vector<Offer>& book_mutable(const BookKey& key) noexcept;

    [[nodiscard]] const std::unordered_map<BookKey, std::vector<Offer>>& books()
        const noexcept {
        return books_;
    }

    [[nodiscard]] std::size_t offer_count() const noexcept;

    /// Remove every offer owned by `owner` (Market-Maker-removal replay).
    void remove_offers_of(const AccountID& owner);

    /// Remove all offers in the system.
    void clear_all_offers() noexcept { books_.clear(); }

    /// Iterate all accounts (order unspecified).
    [[nodiscard]] const std::unordered_map<AccountID, AccountRoot>& accounts()
        const noexcept {
        return accounts_;
    }

private:
    std::unordered_map<AccountID, AccountRoot> accounts_;
    std::vector<AccountID> index_to_account_;
    std::unordered_map<TrustLineKey, TrustLine> lines_;
    std::unordered_map<AccountID, std::vector<TrustLine*>> adjacency_;
    std::unordered_map<BookKey, std::vector<Offer>> books_;
    XrpAmount burned_;
    std::uint64_t next_offer_id_ = 1;
    std::uint64_t topology_generation_ = 0;
};

}  // namespace xrpl::ledger
