#include "ledger/types.hpp"

#include <algorithm>

#include "util/base58.hpp"
#include "util/hex.hpp"
#include "util/sha256.hpp"

namespace xrpl::ledger {

AccountID AccountID::from_seed(std::string_view seed) {
    const util::Sha256Digest digest = util::sha256(seed);
    AccountID id;
    std::copy_n(digest.begin(), id.bytes.size(), id.bytes.begin());
    return id;
}

bool AccountID::is_zero() const noexcept {
    return std::all_of(bytes.begin(), bytes.end(),
                       [](std::uint8_t b) { return b == 0; });
}

std::string AccountID::to_address() const {
    return util::base58check_encode(util::kTokenAccountId, bytes);
}

std::string AccountID::short_display() const {
    const std::string address = to_address();
    if (address.size() <= 12) return address;
    return address.substr(0, 6) + "..." + address.substr(address.size() - 6);
}

std::optional<AccountID> AccountID::from_address(std::string_view address) {
    auto payload = util::base58check_decode(util::kTokenAccountId, address);
    if (!payload || payload->size() != 20) return std::nullopt;
    AccountID id;
    std::copy(payload->begin(), payload->end(), id.bytes.begin());
    return id;
}

Currency Currency::from_code(std::string_view code_text) noexcept {
    Currency c;
    for (std::size_t i = 0; i < 3; ++i) {
        c.code[i] = i < code_text.size() ? code_text[i] : ' ';
    }
    return c;
}

std::string Currency::to_string() const {
    std::string out(code.begin(), code.end());
    while (!out.empty() && out.back() == ' ') out.pop_back();
    return out;
}

std::string Hash256::to_hex() const {
    return util::hex_encode(bytes);
}

std::size_t hash_bytes(const std::uint8_t* data, std::size_t size) noexcept {
    std::size_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

}  // namespace xrpl::ledger
