#include "ledger/payment_columns.hpp"

namespace xrpl::ledger {

std::uint32_t AccountInterner::intern(const AccountID& id) {
    XRPL_ASSERT(ids_.size() < UINT32_MAX,
                "account dictionary must fit 32-bit ids");
    const auto [it, inserted] =
        index_.try_emplace(id, static_cast<std::uint32_t>(ids_.size()));
    if (inserted) ids_.push_back(id);
    // table<->map bijection: every dense id names exactly one account.
    XRPL_INVARIANT(ids_.size() == index_.size(),
                   "interner table and index must stay in bijection");
    return it->second;
}

std::optional<std::uint32_t> AccountInterner::find(const AccountID& id) const {
    const auto it = index_.find(id);
    if (it == index_.end()) return std::nullopt;
    return it->second;
}

std::uint16_t CurrencyInterner::intern(const Currency& currency) {
    // The u16 id column caps the dictionary; past 65535 distinct
    // currencies the cast below would silently alias ids.
    XRPL_ASSERT(currencies_.size() <= UINT16_MAX,
                "currency dictionary must fit 16-bit ids");
    const auto [it, inserted] =
        index_.try_emplace(currency, static_cast<std::uint16_t>(currencies_.size()));
    if (inserted) currencies_.push_back(currency);
    XRPL_INVARIANT(currencies_.size() == index_.size(),
                   "interner table and index must stay in bijection");
    return it->second;
}

std::optional<std::uint16_t> CurrencyInterner::find(
    const Currency& currency) const {
    const auto it = index_.find(currency);
    if (it == index_.end()) return std::nullopt;
    return it->second;
}

void PaymentColumns::reserve(std::size_t n) {
    sender_id.reserve(n);
    dest_id.reserve(n);
    currency_id.reserve(n);
    amount_mantissa.reserve(n);
    amount_exponent.reserve(n);
    time_seconds.reserve(n);
}

void PaymentColumns::push_back(const TxRecord& record) {
    sender_id.push_back(accounts.intern(record.sender));
    dest_id.push_back(accounts.intern(record.destination));
    currency_id.push_back(currencies.intern(record.currency));
    amount_mantissa.push_back(record.amount.mantissa());
    // IouAmount exponents live in [-96, 80]: int8_t holds them exactly.
    amount_exponent.push_back(static_cast<std::int8_t>(record.amount.exponent()));
    time_seconds.push_back(record.time.seconds);
    // All six columns describe the same rows; a length skew means some
    // column silently dropped or duplicated a payment.
    XRPL_INVARIANT(dest_id.size() == sender_id.size() &&
                       currency_id.size() == sender_id.size() &&
                       amount_mantissa.size() == sender_id.size() &&
                       amount_exponent.size() == sender_id.size() &&
                       time_seconds.size() == sender_id.size(),
                   "payment columns must stay equal length");
}

TxRecord PaymentColumns::row(std::size_t i) const noexcept {
    XRPL_ASSERT(i < size(), "row index must be within the store");
    TxRecord record;
    record.sender = accounts.at(sender_id[i]);
    record.destination = accounts.at(dest_id[i]);
    record.currency = currencies.at(currency_id[i]);
    record.amount = IouAmount::from_mantissa_exponent(amount_mantissa[i],
                                                      amount_exponent[i]);
    record.time = util::RippleTime{time_seconds[i]};
    return record;
}

std::vector<TxRecord> PaymentColumns::to_records() const {
    std::vector<TxRecord> records;
    records.reserve(size());
    for (std::size_t i = 0; i < size(); ++i) records.push_back(row(i));
    return records;
}

PaymentColumns PaymentColumns::from_records(std::span<const TxRecord> records) {
    PaymentColumns columns;
    columns.reserve(records.size());
    for (const TxRecord& record : records) columns.push_back(record);
    return columns;
}

std::span<const ColumnInfo> payment_schema() noexcept {
    static constexpr ColumnInfo kSchema[] = {
        {"sender_id", ColumnKind::kU32},
        {"dest_id", ColumnKind::kU32},
        {"currency_id", ColumnKind::kU16},
        {"amount_mantissa", ColumnKind::kI64},
        {"amount_exponent", ColumnKind::kI8},
        {"time_seconds", ColumnKind::kI64},
    };
    return kSchema;
}

namespace {

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
        out.push_back(static_cast<std::uint8_t>(value >> shift));
    }
}

}  // namespace

util::Sha256Digest columns_digest(const PaymentColumns& columns) {
    // The serialization below IS the fingerprint contract: the pinned
    // generator-regression hash was computed over exactly these bytes.
    // Widening ids to u64 wastes space but keeps the layout trivially
    // unambiguous; do not "optimize" it — that re-pins every golden.
    std::vector<std::uint8_t> bytes;
    bytes.reserve(columns.size() * 41 + columns.accounts.size() * 20 +
                  columns.currencies.size() * 3 + 24);
    append_u64(bytes, columns.size());
    for (std::size_t i = 0; i < columns.size(); ++i) {
        append_u64(bytes, columns.sender_id[i]);
        append_u64(bytes, columns.dest_id[i]);
        append_u64(bytes, columns.currency_id[i]);
        append_u64(bytes, static_cast<std::uint64_t>(columns.amount_mantissa[i]));
        bytes.push_back(static_cast<std::uint8_t>(columns.amount_exponent[i]));
        append_u64(bytes, static_cast<std::uint64_t>(columns.time_seconds[i]));
    }
    append_u64(bytes, columns.accounts.size());
    for (std::size_t i = 0; i < columns.accounts.size(); ++i) {
        const auto& id = columns.accounts.at(static_cast<std::uint32_t>(i));
        bytes.insert(bytes.end(), id.bytes.begin(), id.bytes.end());
    }
    append_u64(bytes, columns.currencies.size());
    for (std::size_t i = 0; i < columns.currencies.size(); ++i) {
        const auto& code =
            columns.currencies.at(static_cast<std::uint16_t>(i)).code;
        bytes.insert(bytes.end(), code.begin(), code.end());
    }
    return util::sha256(std::span<const std::uint8_t>(bytes));
}

std::string columns_fingerprint(const PaymentColumns& columns) {
    return util::to_hex(columns_digest(columns));
}

}  // namespace xrpl::ledger
