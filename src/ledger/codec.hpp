// Binary codec for payment-record streams.
//
// The paper's pipeline downloads 500 GB once and analyzes it many
// times; the equivalent here is generating a history once and saving
// the TxRecord stream to disk. The format is a fixed 60-byte
// little-endian record under a small header (magic, version, count),
// integrity-checked with a trailing sha256 of the payload.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "ledger/transaction.hpp"

namespace xrpl::ledger {

inline constexpr std::uint32_t kRecordCodecMagic = 0x58524c52;  // "RLXR"
inline constexpr std::uint16_t kRecordCodecVersion = 1;

/// Serialize records to the binary stream format.
[[nodiscard]] std::vector<std::uint8_t> encode_records(
    std::span<const TxRecord> records);

/// Parse a binary stream; nullopt on bad magic/version/size/checksum.
[[nodiscard]] std::optional<std::vector<TxRecord>> decode_records(
    std::span<const std::uint8_t> bytes);

/// Write/read the stream to a file. save returns false on I/O error.
bool save_records(const std::string& path, std::span<const TxRecord> records);
[[nodiscard]] std::optional<std::vector<TxRecord>> load_records(
    const std::string& path);

}  // namespace xrpl::ledger
