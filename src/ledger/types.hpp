// Fundamental identifier types of the XRP ledger model.
//
// AccountID is the 160-bit account identifier; its human-readable
// form is the base58check "r..." address. Currency is a 3-letter
// code (ISO-4217 style, plus the made-up codes the paper observes:
// CCK, MTL, ...). Issue pairs a currency with the gateway account
// that issued it.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace xrpl::ledger {

/// 160-bit account identifier.
struct AccountID {
    std::array<std::uint8_t, 20> bytes{};

    /// Deterministically derive an account from a seed string
    /// (first 20 bytes of sha256(seed)). Stand-in for real key
    /// generation: the study never needs private keys, only stable,
    /// semantic-free identifiers — exactly what the paper relies on.
    [[nodiscard]] static AccountID from_seed(std::string_view seed);

    /// The all-zero account: Ripple's ACCOUNT_ZERO, whose secret key
    /// is public knowledge and which spammers abused (paper, App. A).
    [[nodiscard]] static AccountID zero() noexcept { return AccountID{}; }

    [[nodiscard]] bool is_zero() const noexcept;

    /// Full base58check address ("r...").
    [[nodiscard]] std::string to_address() const;

    /// Abbreviated display form "rp2PaY...X1mEx7" as in the paper's plots.
    [[nodiscard]] std::string short_display() const;

    /// Parse an "r..." address; nullopt on bad checksum/characters.
    [[nodiscard]] static std::optional<AccountID> from_address(std::string_view address);

    friend auto operator<=>(const AccountID&, const AccountID&) = default;
};

/// Three-letter currency code. XRP is the special native currency.
struct Currency {
    std::array<char, 3> code{{'X', 'R', 'P'}};

    /// Build from a code string; only the first three characters are
    /// used, shorter codes are space-padded.
    [[nodiscard]] static Currency from_code(std::string_view code_text) noexcept;

    [[nodiscard]] static Currency xrp() noexcept { return Currency{}; }
    [[nodiscard]] bool is_xrp() const noexcept {
        return code[0] == 'X' && code[1] == 'R' && code[2] == 'P';
    }

    [[nodiscard]] std::string to_string() const;

    friend auto operator<=>(const Currency&, const Currency&) = default;
};

/// A currency as issued by a particular gateway.
struct Issue {
    Currency currency;
    AccountID issuer;  // ignored when currency is XRP

    friend auto operator<=>(const Issue&, const Issue&) = default;
};

/// 256-bit hashes for transactions and ledger pages.
struct Hash256 {
    std::array<std::uint8_t, 32> bytes{};

    [[nodiscard]] std::string to_hex() const;
    friend auto operator<=>(const Hash256&, const Hash256&) = default;
};

/// FNV-1a over a byte range — shared by the std::hash specializations.
[[nodiscard]] std::size_t hash_bytes(const std::uint8_t* data, std::size_t size) noexcept;

}  // namespace xrpl::ledger

template <>
struct std::hash<xrpl::ledger::AccountID> {
    std::size_t operator()(const xrpl::ledger::AccountID& id) const noexcept {
        return xrpl::ledger::hash_bytes(id.bytes.data(), id.bytes.size());
    }
};

template <>
struct std::hash<xrpl::ledger::Currency> {
    std::size_t operator()(const xrpl::ledger::Currency& c) const noexcept {
        return xrpl::ledger::hash_bytes(
            reinterpret_cast<const std::uint8_t*>(c.code.data()), c.code.size());
    }
};

template <>
struct std::hash<xrpl::ledger::Hash256> {
    std::size_t operator()(const xrpl::ledger::Hash256& h) const noexcept {
        return xrpl::ledger::hash_bytes(h.bytes.data(), h.bytes.size());
    }
};

template <>
struct std::hash<xrpl::ledger::Issue> {
    std::size_t operator()(const xrpl::ledger::Issue& issue) const noexcept {
        std::size_t seed = std::hash<xrpl::ledger::Currency>{}(issue.currency);
        seed ^= std::hash<xrpl::ledger::AccountID>{}(issue.issuer) +
                0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
        return seed;
    }
};
