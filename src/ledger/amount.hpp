// Amount types.
//
// XrpAmount is the native currency, counted in integer drops
// (1 XRP = 1,000,000 drops), exactly as the real ledger does.
//
// IouAmount reproduces the XRP Ledger's STAmount IOU semantics: a
// decimal floating-point number with a 16-digit mantissa normalized
// into [1e15, 1e16) and an exponent in [-96, 80]. This gives the
// ledger's documented 10^-96 .. 10^80 range — wide enough to hold the
// 1e22 MTL spam debt the paper observes — with exact decimal
// rounding, which the de-anonymization study's Table I rounding
// depends on.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "ledger/types.hpp"

namespace xrpl::ledger {

/// Native XRP, in drops.
struct XrpAmount {
    std::int64_t drops = 0;

    [[nodiscard]] static XrpAmount from_xrp(double xrp) noexcept {
        return {static_cast<std::int64_t>(xrp * 1'000'000.0)};
    }
    [[nodiscard]] double to_xrp() const noexcept {
        return static_cast<double>(drops) / 1'000'000.0;
    }

    friend XrpAmount operator+(XrpAmount a, XrpAmount b) noexcept {
        return {a.drops + b.drops};
    }
    friend XrpAmount operator-(XrpAmount a, XrpAmount b) noexcept {
        return {a.drops - b.drops};
    }
    friend auto operator<=>(const XrpAmount&, const XrpAmount&) = default;
};

/// Decimal floating-point IOU amount (STAmount semantics).
class IouAmount {
public:
    static constexpr std::int64_t kMinMantissa = 1'000'000'000'000'000;   // 1e15
    static constexpr std::int64_t kMaxMantissa = 9'999'999'999'999'999;   // <1e16
    static constexpr int kMinExponent = -96;
    static constexpr int kMaxExponent = 80;

    /// Zero.
    constexpr IouAmount() noexcept = default;

    /// From a (possibly unnormalized) signed mantissa and exponent.
    /// Values whose magnitude underflows the representable range
    /// collapse to zero; overflow saturates to the maximum magnitude.
    [[nodiscard]] static IouAmount from_mantissa_exponent(std::int64_t mantissa,
                                                          int exponent) noexcept;

    [[nodiscard]] static IouAmount from_double(double value) noexcept;
    [[nodiscard]] static IouAmount from_int(std::int64_t value) noexcept {
        return from_mantissa_exponent(value, 0);
    }

    [[nodiscard]] double to_double() const noexcept;

    [[nodiscard]] std::int64_t mantissa() const noexcept { return mantissa_; }
    [[nodiscard]] int exponent() const noexcept { return exponent_; }

    [[nodiscard]] bool is_zero() const noexcept { return mantissa_ == 0; }
    [[nodiscard]] bool is_negative() const noexcept { return mantissa_ < 0; }

    [[nodiscard]] IouAmount negated() const noexcept;
    [[nodiscard]] IouAmount abs() const noexcept;

    /// Exact decimal rounding to the nearest multiple of 10^power
    /// (ties away from zero). This is the Table I rounding primitive:
    /// round_to_power_of_ten(2) rounds to the nearest hundred,
    /// round_to_power_of_ten(-3) to the nearest thousandth.
    [[nodiscard]] IouAmount round_to_power_of_ten(int power) const noexcept;

    /// Multiply by a scalar (used for exchange rates). Goes through
    /// double, then renormalizes: ~15 significant digits preserved.
    [[nodiscard]] IouAmount scaled_by(double factor) const noexcept;

    friend IouAmount operator+(IouAmount a, IouAmount b) noexcept;
    friend IouAmount operator-(IouAmount a, IouAmount b) noexcept;

    [[nodiscard]] static int compare(const IouAmount& a, const IouAmount& b) noexcept;
    friend bool operator==(const IouAmount& a, const IouAmount& b) noexcept {
        return compare(a, b) == 0;
    }
    friend std::strong_ordering operator<=>(const IouAmount& a,
                                            const IouAmount& b) noexcept {
        const int c = compare(a, b);
        return c < 0 ? std::strong_ordering::less
                     : (c > 0 ? std::strong_ordering::greater
                              : std::strong_ordering::equal);
    }

    /// Decimal rendering ("4.5", "0.00001", "1e22"-style scientific
    /// for extreme exponents).
    [[nodiscard]] std::string to_string() const;

private:
    // Invariant: mantissa_ == 0, or |mantissa_| in [kMinMantissa, kMaxMantissa]
    // and exponent_ in [kMinExponent, kMaxExponent].
    std::int64_t mantissa_ = 0;
    int exponent_ = 0;
};

/// A currency-tagged amount: XRP (value in XRP, not drops) or an IOU.
struct Amount {
    Currency currency;
    IouAmount value;

    [[nodiscard]] static Amount xrp(double xrp_value) noexcept {
        return {Currency::xrp(), IouAmount::from_double(xrp_value)};
    }
    [[nodiscard]] static Amount iou(Currency c, double v) noexcept {
        return {c, IouAmount::from_double(v)};
    }
    [[nodiscard]] bool is_xrp() const noexcept { return currency.is_xrp(); }

    [[nodiscard]] std::string to_string() const {
        return value.to_string() + " " + currency.to_string();
    }
};

}  // namespace xrpl::ledger
