#include "ledger/trustline.hpp"

namespace xrpl::ledger {

TrustLineKey TrustLineKey::make(const AccountID& a, const AccountID& b,
                                Currency currency) noexcept {
    if (a < b) return {a, b, currency};
    return {b, a, currency};
}

IouAmount TrustLine::balance_for(const AccountID& account) const noexcept {
    return account == key_.low ? balance_ : balance_.negated();
}

IouAmount TrustLine::limit_of(const AccountID& account) const noexcept {
    return account == key_.low ? limit_low_ : limit_high_;
}

void TrustLine::set_limit_of(const AccountID& account, IouAmount limit) noexcept {
    if (account == key_.low) {
        limit_low_ = limit;
    } else {
        limit_high_ = limit;
    }
}

IouAmount TrustLine::capacity_from(const AccountID& sender) const noexcept {
    // Receiver's claim after the transfer must stay within the
    // receiver's declared limit:
    //   capacity = receiver_limit - receiver_current_claim
    //            = receiver_limit + balance_for(sender)   (claims are
    //              antisymmetric across the line)
    const AccountID& receiver = peer_of(sender);
    return limit_of(receiver) - balance_for(receiver);
}

IouAmount TrustLine::directed_capacity(bool from_low) const noexcept {
    // Same expressions capacity_from evaluates after resolving the
    // receiver: sender == low -> limit_high_ - balance_for(high).
    return from_low ? limit_high_ - balance_.negated() : limit_low_ - balance_;
}

bool TrustLine::transfer_from(const AccountID& sender, IouAmount amount) noexcept {
    if (amount.is_zero() || amount.is_negative()) return false;
    if (amount > capacity_from(sender)) return false;
    // Sender pays: the sender's claim decreases (or its debt grows).
    if (sender == key_.low) {
        balance_ = balance_ - amount;
    } else {
        balance_ = balance_ + amount;
    }
    return true;
}

void TrustLine::revert_transfer_from(const AccountID& sender,
                                     IouAmount amount) noexcept {
    if (sender == key_.low) {
        balance_ = balance_ + amount;
    } else {
        balance_ = balance_ - amount;
    }
}

const AccountID& TrustLine::peer_of(const AccountID& account) const noexcept {
    return account == key_.low ? key_.high : key_.low;
}

}  // namespace xrpl::ledger
