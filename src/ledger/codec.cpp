#include "ledger/codec.hpp"

#include <cstring>

#include "util/file_io.hpp"
#include "util/sha256.hpp"

namespace xrpl::ledger {

namespace {

constexpr std::size_t kHeaderSize = 4 + 2 + 2 + 8;  // magic, ver, pad, count
constexpr std::size_t kRecordSize = 20 + 20 + 3 + 1 + 8 + 4 + 8;  // = 64
constexpr std::size_t kChecksumSize = 32;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

std::uint16_t get_u16(const std::uint8_t* p) {
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
    return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    return v;
}

}  // namespace

std::vector<std::uint8_t> encode_records(std::span<const TxRecord> records) {
    std::vector<std::uint8_t> out;
    out.reserve(kHeaderSize + records.size() * kRecordSize + kChecksumSize);

    put_u32(out, kRecordCodecMagic);
    put_u16(out, kRecordCodecVersion);
    put_u16(out, 0);  // padding
    put_u64(out, records.size());

    for (const TxRecord& record : records) {
        out.insert(out.end(), record.sender.bytes.begin(),
                   record.sender.bytes.end());
        out.insert(out.end(), record.destination.bytes.begin(),
                   record.destination.bytes.end());
        for (const char c : record.currency.code) {
            out.push_back(static_cast<std::uint8_t>(c));
        }
        out.push_back(0);  // padding
        put_u64(out, static_cast<std::uint64_t>(record.amount.mantissa()));
        put_u32(out, static_cast<std::uint32_t>(record.amount.exponent()));
        put_u64(out, static_cast<std::uint64_t>(record.time.seconds));
    }

    const util::Sha256Digest digest = util::sha256(out);
    out.insert(out.end(), digest.begin(), digest.end());
    return out;
}

std::optional<std::vector<TxRecord>> decode_records(
    std::span<const std::uint8_t> bytes) {
    if (bytes.size() < kHeaderSize + kChecksumSize) return std::nullopt;

    // Integrity first.
    const std::span<const std::uint8_t> payload(bytes.data(),
                                                bytes.size() - kChecksumSize);
    const util::Sha256Digest digest = util::sha256(payload);
    if (std::memcmp(digest.data(), bytes.data() + payload.size(),
                    kChecksumSize) != 0) {
        return std::nullopt;
    }

    const std::uint8_t* p = bytes.data();
    if (get_u32(p) != kRecordCodecMagic) return std::nullopt;
    if (get_u16(p + 4) != kRecordCodecVersion) return std::nullopt;
    const std::uint64_t count = get_u64(p + 8);
    if (payload.size() != kHeaderSize + count * kRecordSize) return std::nullopt;

    std::vector<TxRecord> records;
    records.reserve(count);
    p += kHeaderSize;
    for (std::uint64_t i = 0; i < count; ++i) {
        TxRecord record;
        std::memcpy(record.sender.bytes.data(), p, 20);
        std::memcpy(record.destination.bytes.data(), p + 20, 20);
        record.currency.code = {static_cast<char>(p[40]),
                                static_cast<char>(p[41]),
                                static_cast<char>(p[42])};
        record.amount = IouAmount::from_mantissa_exponent(
            static_cast<std::int64_t>(get_u64(p + 44)),
            static_cast<std::int32_t>(get_u32(p + 52)));
        record.time.seconds = static_cast<std::int64_t>(get_u64(p + 56));
        records.push_back(record);
        p += kRecordSize;
    }
    return records;
}

bool save_records(const std::string& path, std::span<const TxRecord> records) {
    return util::write_file_bytes(path, encode_records(records));
}

std::optional<std::vector<TxRecord>> load_records(const std::string& path) {
    const auto bytes = util::read_file_bytes(path);
    if (!bytes) return std::nullopt;
    return decode_records(*bytes);
}

}  // namespace xrpl::ledger
