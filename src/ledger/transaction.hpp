// Transactions and their execution metadata.
//
// The four transaction types the study needs: account creation
// (first XRP payment activating an account), XRP/IOU payments, trust
// set, and offer creation. Transactions are hashed (sha256 over a
// canonical binary serialization) to produce their IDs, as in the
// real ledger.
//
// TxRecord is the compact row the de-anonymization study consumes:
// exactly the five features the paper extracts per payment —
// sender S, amount A, timestamp T, currency C, destination D.
#pragma once

#include <cstdint>
#include <vector>

#include "ledger/amount.hpp"
#include "ledger/types.hpp"
#include "util/ripple_time.hpp"

namespace xrpl::ledger {

enum class TxType : std::uint8_t {
    kAccountCreate,
    kPayment,
    kTrustSet,
    kOfferCreate,
};

/// A submitted transaction. Fields beyond (type, sender, sequence)
/// are meaningful per type; unused ones stay default-initialized and
/// serialize as zeros.
struct Transaction {
    TxType type = TxType::kPayment;
    AccountID sender;
    std::uint32_t sequence = 0;
    util::RippleTime submit_time;

    // Payment / AccountCreate
    AccountID destination;
    Amount amount;
    /// Currency the sender pays with; differs from amount.currency in
    /// cross-currency payments ("SendMax" currency in the real ledger).
    Currency source_currency;
    /// Explicit payment paths (the real ledger's "Paths" field): when
    /// non-empty, the engine routes the amount evenly across these
    /// node lists instead of path-finding. Each path is the full node
    /// sequence [sender, ..., destination].
    std::vector<std::vector<AccountID>> paths;

    // TrustSet: sender declares trust of `trust_limit` towards `trust_peer`.
    AccountID trust_peer;
    Currency trust_currency;
    IouAmount trust_limit;

    // OfferCreate: sender offers to sell `taker_gets` for `taker_pays`.
    Amount taker_pays;
    Amount taker_gets;

    /// Canonical binary serialization (stable across platforms).
    [[nodiscard]] std::vector<std::uint8_t> serialize() const;

    /// Transaction ID: sha256 of the serialization.
    [[nodiscard]] Hash256 id() const;
};

/// Execution outcome, filled by the payment engine / ledger apply.
/// Carries exactly the metadata the appendix figures need.
struct TxResult {
    bool success = false;
    bool cross_currency = false;
    Amount delivered;
    /// Number of intermediate accounts on the (longest) path used
    /// (0 for direct transfers) — Fig 6(a).
    std::uint32_t intermediate_hops = 0;
    /// Number of parallel paths the payment was split across — Fig 6(b).
    std::uint32_t parallel_paths = 0;
    /// Whether an order book was crossed (Market Maker involved).
    bool used_order_book = false;
    /// Every intermediate account, across all parallel paths — Fig 7(a).
    std::vector<AccountID> intermediaries;
    /// Close time of the ledger page that sealed the transaction.
    util::RippleTime close_time;
};

/// Compact payment row for the de-anonymization study: the paper's
/// (S, A, T, C, D) feature tuple of §V-A.
struct TxRecord {
    AccountID sender;        // S
    IouAmount amount;        // A
    util::RippleTime time;   // T (ledger close time)
    Currency currency;       // C
    AccountID destination;   // D
};

}  // namespace xrpl::ledger
