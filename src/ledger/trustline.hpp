// Trust lines — the credit edges of the Ripple network.
//
// A trust line between two accounts (stored once, under the
// canonically ordered (low, high) pair, as the real ledger does)
// carries a signed balance and the two directional trust limits.
// IOU payments ripple along trust lines; the capacity available in a
// direction is  balance-from-receiver's-view + receiver's-limit.
#pragma once

#include <compare>
#include <functional>

#include "ledger/amount.hpp"
#include "ledger/types.hpp"

namespace xrpl::ledger {

/// Canonical trust line key: low < high.
struct TrustLineKey {
    AccountID low;
    AccountID high;
    Currency currency;

    /// Build the canonical key for an unordered account pair.
    [[nodiscard]] static TrustLineKey make(const AccountID& a, const AccountID& b,
                                           Currency currency) noexcept;

    friend auto operator<=>(const TrustLineKey&, const TrustLineKey&) = default;
};

/// A credit line between two accounts in one currency.
class TrustLine {
public:
    TrustLine(TrustLineKey key, IouAmount limit_low, IouAmount limit_high) noexcept
        : key_(key), limit_low_(limit_low), limit_high_(limit_high) {}

    [[nodiscard]] const TrustLineKey& key() const noexcept { return key_; }

    /// Balance from the low account's perspective: positive means the
    /// high account owes the low account.
    [[nodiscard]] IouAmount balance() const noexcept { return balance_; }

    /// The amount `account` is owed on this line (signed).
    [[nodiscard]] IouAmount balance_for(const AccountID& account) const noexcept;

    /// Trust declared BY `account` towards the other endpoint — the
    /// cap on how much the counterparty may owe `account`.
    [[nodiscard]] IouAmount limit_of(const AccountID& account) const noexcept;
    void set_limit_of(const AccountID& account, IouAmount limit) noexcept;

    /// How much value can still flow from `sender` to the other
    /// endpoint: receiver's current claim headroom.
    [[nodiscard]] IouAmount capacity_from(const AccountID& sender) const noexcept;

    /// capacity_from keyed by endpoint position instead of identity:
    /// the CSR graph index stores "which end is the sender" as one bit
    /// so its inner loop never compares AccountIDs. Bit-for-bit equal
    /// to capacity_from(low) / capacity_from(high).
    [[nodiscard]] IouAmount directed_capacity(bool from_low) const noexcept;

    /// Move `amount` of value from `sender` to the other endpoint.
    /// Returns false (and leaves the line untouched) if `amount`
    /// exceeds the current capacity or is not positive.
    [[nodiscard]] bool transfer_from(const AccountID& sender, IouAmount amount) noexcept;

    /// Approximate inverse of a prior transfer_from(sender, amount),
    /// with no capacity check. Exact only up to decimal rounding when
    /// the operands' exponents differ; rollback paths that must be
    /// byte-exact snapshot balance() and use restore_balance().
    void revert_transfer_from(const AccountID& sender, IouAmount amount) noexcept;

    /// Byte-exact rollback support: reset the balance to a previously
    /// observed value (no checks — journal use only).
    void restore_balance(IouAmount balance) noexcept { balance_ = balance; }

    /// Which endpoint is the counterparty of `account`.
    [[nodiscard]] const AccountID& peer_of(const AccountID& account) const noexcept;

    /// True if `account` is one of the two endpoints.
    [[nodiscard]] bool involves(const AccountID& account) const noexcept {
        return account == key_.low || account == key_.high;
    }

private:
    TrustLineKey key_;
    IouAmount balance_;     // high owes low when positive
    IouAmount limit_low_;   // low's trust towards high
    IouAmount limit_high_;  // high's trust towards low
};

}  // namespace xrpl::ledger

template <>
struct std::hash<xrpl::ledger::TrustLineKey> {
    std::size_t operator()(const xrpl::ledger::TrustLineKey& k) const noexcept {
        std::size_t seed = std::hash<xrpl::ledger::AccountID>{}(k.low);
        seed ^= std::hash<xrpl::ledger::AccountID>{}(k.high) + 0x9e3779b97f4a7c15ULL +
                (seed << 6) + (seed >> 2);
        seed ^= std::hash<xrpl::ledger::Currency>{}(k.currency) +
                0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
        return seed;
    }
};
