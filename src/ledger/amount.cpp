#include "ledger/amount.hpp"

#include <cmath>
#include <cstdlib>

#include "util/contract.hpp"

namespace xrpl::ledger {

namespace {

constexpr std::int64_t kPow10[19] = {
    1LL,
    10LL,
    100LL,
    1000LL,
    10000LL,
    100000LL,
    1000000LL,
    10000000LL,
    100000000LL,
    1000000000LL,
    10000000000LL,
    100000000000LL,
    1000000000000LL,
    10000000000000LL,
    100000000000000LL,
    1000000000000000LL,
    10000000000000000LL,
    100000000000000000LL,
    1000000000000000000LL,
};

}  // namespace

IouAmount IouAmount::from_mantissa_exponent(std::int64_t mantissa,
                                            int exponent) noexcept {
    if (mantissa == 0) return {};

    const bool negative = mantissa < 0;
    // |INT64_MIN| does not fit; it is far outside normalized range anyway.
    std::uint64_t mag = negative
        ? (mantissa == INT64_MIN ? (std::uint64_t{1} << 63)
                                 : static_cast<std::uint64_t>(-mantissa))
        : static_cast<std::uint64_t>(mantissa);

    // Scale up small mantissas.
    while (mag < static_cast<std::uint64_t>(kMinMantissa)) {
        mag *= 10;
        --exponent;
    }
    // Scale down large mantissas, rounding half away from zero.
    while (mag > static_cast<std::uint64_t>(kMaxMantissa)) {
        const std::uint64_t rem = mag % 10;
        mag /= 10;
        if (rem >= 5) ++mag;
        ++exponent;
        // Rounding can push mag back above the cap (…9999.5 -> …000.0*10).
    }

    if (exponent < kMinExponent) return {};  // underflow -> zero
    if (exponent > kMaxExponent) {           // overflow -> saturate
        mag = static_cast<std::uint64_t>(kMaxMantissa);
        exponent = kMaxExponent;
    }

    IouAmount out;
    out.mantissa_ = negative ? -static_cast<std::int64_t>(mag)
                             : static_cast<std::int64_t>(mag);
    out.exponent_ = exponent;
    // STAmount canonical form: every nonzero amount leaves here with a
    // 16-digit mantissa and an in-range exponent. Table I rounding and
    // the fingerprint mantissa/exponent split both assume it.
    XRPL_INVARIANT(mag >= static_cast<std::uint64_t>(kMinMantissa) &&
                       mag <= static_cast<std::uint64_t>(kMaxMantissa),
                   "normalized IOU mantissa must lie in [1e15, 1e16)");
    XRPL_INVARIANT(exponent >= kMinExponent && exponent <= kMaxExponent,
                   "normalized IOU exponent must lie in [-96, 80]");
    return out;
}

IouAmount IouAmount::from_double(double value) noexcept {
    if (value == 0.0 || !std::isfinite(value)) return {};
    const bool negative = value < 0.0;
    double mag = std::fabs(value);

    int exponent10 = static_cast<int>(std::floor(std::log10(mag)));
    // Bring mantissa into [1e15, 1e16).
    int exponent = exponent10 - 15;
    double scaled = mag / std::pow(10.0, exponent);
    // Guard against log10 edge cases.
    while (scaled >= 1e16) {
        scaled /= 10.0;
        ++exponent;
    }
    while (scaled < 1e15) {
        scaled *= 10.0;
        --exponent;
    }
    auto mantissa = static_cast<std::int64_t>(std::llround(scaled));
    if (negative) mantissa = -mantissa;
    return from_mantissa_exponent(mantissa, exponent);
}

double IouAmount::to_double() const noexcept {
    return static_cast<double>(mantissa_) * std::pow(10.0, exponent_);
}

IouAmount IouAmount::negated() const noexcept {
    IouAmount out = *this;
    out.mantissa_ = -out.mantissa_;
    return out;
}

IouAmount IouAmount::abs() const noexcept {
    return mantissa_ < 0 ? negated() : *this;
}

IouAmount IouAmount::round_to_power_of_ten(int power) const noexcept {
    if (is_zero()) return {};
    const int k = power - exponent_;
    if (k <= 0) return *this;  // already a multiple of 10^power
    if (k >= 17) return {};    // magnitude < 0.5 * 10^power -> rounds to zero

    const bool negative = mantissa_ < 0;
    const std::int64_t mag = negative ? -mantissa_ : mantissa_;
    XRPL_ASSERT(k < 19, "rounding distance must stay within the pow-10 table");
    const std::int64_t unit = kPow10[k];
    std::int64_t q = mag / unit;
    const std::int64_t r = mag % unit;
    if (2 * r >= unit) ++q;  // ties away from zero
    if (q == 0) return {};
    return from_mantissa_exponent(negative ? -q : q, power);
}

IouAmount IouAmount::scaled_by(double factor) const noexcept {
    return from_double(to_double() * factor);
}

IouAmount operator+(IouAmount a, IouAmount b) noexcept {
    if (a.is_zero()) return b;
    if (b.is_zero()) return a;

    // Align to the larger exponent, downscaling the smaller operand
    // (rippled does the same; low digits beyond 16 are lost).
    std::int64_t ma = a.mantissa_;
    std::int64_t mb = b.mantissa_;
    int ea = a.exponent_;
    int eb = b.exponent_;
    while (ea < eb) {
        ma /= 10;
        ++ea;
        if (ma == 0) return b;
    }
    while (eb < ea) {
        mb /= 10;
        ++eb;
        if (mb == 0) return a;
    }
    return IouAmount::from_mantissa_exponent(ma + mb, ea);
}

IouAmount operator-(IouAmount a, IouAmount b) noexcept {
    return a + b.negated();
}

int IouAmount::compare(const IouAmount& a, const IouAmount& b) noexcept {
    const int sign_a = a.mantissa_ == 0 ? 0 : (a.mantissa_ < 0 ? -1 : 1);
    const int sign_b = b.mantissa_ == 0 ? 0 : (b.mantissa_ < 0 ? -1 : 1);
    if (sign_a != sign_b) return sign_a < sign_b ? -1 : 1;
    if (sign_a == 0) return 0;

    // Same nonzero sign: compare magnitudes via (exponent, mantissa).
    int mag_cmp;
    if (a.exponent_ != b.exponent_) {
        mag_cmp = a.exponent_ < b.exponent_ ? -1 : 1;
    } else {
        const std::int64_t abs_a = a.mantissa_ < 0 ? -a.mantissa_ : a.mantissa_;
        const std::int64_t abs_b = b.mantissa_ < 0 ? -b.mantissa_ : b.mantissa_;
        mag_cmp = abs_a < abs_b ? -1 : (abs_a > abs_b ? 1 : 0);
    }
    return sign_a > 0 ? mag_cmp : -mag_cmp;
}

std::string IouAmount::to_string() const {
    if (is_zero()) return "0";

    const bool negative = mantissa_ < 0;
    const std::int64_t mag = negative ? -mantissa_ : mantissa_;
    std::string digits = std::to_string(mag);  // exactly 16 digits

    // Position of the decimal point relative to the digit string.
    const int point = static_cast<int>(digits.size()) + exponent_;

    std::string body;
    if (point > 25 || point < -5) {
        // Extreme magnitudes: scientific notation.
        body.push_back(digits[0]);
        std::string frac = digits.substr(1);
        while (!frac.empty() && frac.back() == '0') frac.pop_back();
        // Appended piecewise: `"." + frac` trips GCC 12's -Wrestrict
        // false positive (PR 105329) when inlined into operator+=.
        if (!frac.empty()) {
            body.push_back('.');
            body.append(frac);
        }
        body.push_back('e');
        body.append(std::to_string(point - 1));
    } else if (point <= 0) {
        body = "0." + std::string(static_cast<std::size_t>(-point), '0') + digits;
        while (body.back() == '0') body.pop_back();
    } else if (point >= static_cast<int>(digits.size())) {
        body = digits +
               std::string(static_cast<std::size_t>(point) - digits.size(), '0');
    } else {
        body = digits.substr(0, static_cast<std::size_t>(point)) + "." +
               digits.substr(static_cast<std::size_t>(point));
        while (body.back() == '0') body.pop_back();
        if (body.back() == '.') body.pop_back();
    }
    return negative ? "-" + body : body;
}

}  // namespace xrpl::ledger
