// Columnar payment dataset — the canonical in-memory representation
// of a payment history.
//
// The de-anonymization study scans the same 23M-payment history once
// per resolution configuration. Storing payments as an array of
// TxRecord structs wastes both space (two 20-byte AccountIDs per row,
// repeated for every payment a hub sends) and time (every scan
// re-folds those 20 bytes into hash words). PaymentColumns stores the
// five ⟨S, A, T, C, D⟩ features as separate columns of dense ids:
// accounts and currencies are interned once into dictionary tables,
// rows carry 4-byte (account) / 2-byte (currency) ids, and amounts
// split into their decimal mantissa/exponent pair. Per-column
// precomputation (rounding a currency group once, truncating the time
// column once, hashing each distinct account once) then amortizes
// across all 23M rows — the same canonical-storage/row-view split
// rippled's SHAMap adapters apply.
//
// PaymentView is the zero-copy row adapter: legacy consumers iterate
// it and receive TxRecord-shaped rows reconstructed on the fly, so
// the row-oriented API keeps working during (and after) migration.
#pragma once

#include <cstdint>
#include <iterator>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "ledger/transaction.hpp"
#include "util/contract.hpp"
#include "util/sha256.hpp"

namespace xrpl::ledger {

/// Dictionary-encodes 20-byte AccountIDs into dense u32 ids.
/// Ids are assigned in first-seen order and never change.
class AccountInterner {
public:
    /// Id of `id`, interning it if new.
    std::uint32_t intern(const AccountID& id);

    /// Id of `id` if already interned.
    [[nodiscard]] std::optional<std::uint32_t> find(const AccountID& id) const;

    [[nodiscard]] const AccountID& at(std::uint32_t index) const noexcept {
        XRPL_ASSERT(index < ids_.size(),
                    "account id must come from this interner");
        return ids_[index];
    }
    [[nodiscard]] std::size_t size() const noexcept { return ids_.size(); }

private:
    std::vector<AccountID> ids_;
    std::unordered_map<AccountID, std::uint32_t> index_;
};

/// Dictionary-encodes 3-char currency codes into dense u16 ids.
class CurrencyInterner {
public:
    std::uint16_t intern(const Currency& currency);

    [[nodiscard]] std::optional<std::uint16_t> find(const Currency& currency) const;

    [[nodiscard]] const Currency& at(std::uint16_t index) const noexcept {
        XRPL_ASSERT(index < currencies_.size(),
                    "currency id must come from this interner");
        return currencies_[index];
    }
    [[nodiscard]] std::size_t size() const noexcept { return currencies_.size(); }

private:
    std::vector<Currency> currencies_;
    std::unordered_map<Currency, std::uint16_t> index_;
};

class PaymentView;

/// Structure-of-arrays payment store. One entry per payment across
/// all columns; account/currency columns hold interned ids.
struct PaymentColumns {
    std::vector<std::uint32_t> sender_id;       // S
    std::vector<std::uint32_t> dest_id;         // D
    std::vector<std::uint16_t> currency_id;     // C
    std::vector<std::int64_t> amount_mantissa;  // A (normalized decimal
    std::vector<std::int8_t> amount_exponent;   //    mantissa/exponent)
    std::vector<std::int64_t> time_seconds;     // T (Ripple epoch)

    AccountInterner accounts;
    CurrencyInterner currencies;

    [[nodiscard]] std::size_t size() const noexcept { return sender_id.size(); }
    [[nodiscard]] bool empty() const noexcept { return sender_id.empty(); }

    void reserve(std::size_t n);
    void push_back(const TxRecord& record);

    /// Reconstruct row `i` as a legacy TxRecord.
    [[nodiscard]] TxRecord row(std::size_t i) const noexcept;

    /// Materialize the whole store as rows (migration escape hatch).
    [[nodiscard]] std::vector<TxRecord> to_records() const;

    /// Zero-copy row view over all payments.
    [[nodiscard]] PaymentView view() const noexcept;

    [[nodiscard]] static PaymentColumns from_records(
        std::span<const TxRecord> records);
};

/// Storage type of one payment column — the schema vocabulary the
/// XCOL snapshot codec (src/snap/) embeds in its header so an
/// artifact written against a different column layout is rejected
/// instead of misparsed.
enum class ColumnKind : std::uint8_t {
    kU32 = 1,  // interned account ids
    kU16 = 2,  // interned currency ids
    kI64 = 3,  // mantissa / timestamps
    kI8 = 4,   // decimal exponents
};

struct ColumnInfo {
    const char* name;  // struct field name, stable across versions
    ColumnKind kind;
};

/// The PaymentColumns schema in canonical storage order:
/// sender_id, dest_id, currency_id, amount_mantissa, amount_exponent,
/// time_seconds. Any layout change here is a snapshot format break —
/// bump snap::kXcolVersion in the same commit.
[[nodiscard]] std::span<const ColumnInfo> payment_schema() noexcept;

/// sha256 over the canonical little-endian serialization of every
/// column plus both interner tables. Any drift — a reordered row, a
/// different first-seen interning order, a timestamp off by one —
/// changes the digest. This is THE history fingerprint: the pinned
/// generator regression value, the determinism suites, and the
/// snapshot round-trip tests all compare it.
[[nodiscard]] util::Sha256Digest columns_digest(const PaymentColumns& columns);

/// columns_digest rendered as lowercase hex.
[[nodiscard]] std::string columns_fingerprint(const PaymentColumns& columns);

/// Zero-copy window [offset, offset+count) over a PaymentColumns.
/// Iterating yields TxRecord-shaped rows reconstructed on the fly;
/// column-native consumers reach through columns()/offset() instead.
class PaymentView {
public:
    PaymentView() noexcept = default;
    PaymentView(const PaymentColumns& columns, std::size_t offset,
                std::size_t count) noexcept
        : columns_(&columns), offset_(offset), count_(count) {}

    [[nodiscard]] std::size_t size() const noexcept { return count_; }
    [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

    [[nodiscard]] TxRecord operator[](std::size_t i) const noexcept {
        return columns_->row(offset_ + i);
    }
    [[nodiscard]] TxRecord front() const noexcept { return (*this)[0]; }
    [[nodiscard]] TxRecord back() const noexcept { return (*this)[count_ - 1]; }

    /// The first `n` rows (clamped).
    [[nodiscard]] PaymentView prefix(std::size_t n) const noexcept {
        return PaymentView(*columns_, offset_, n < count_ ? n : count_);
    }

    /// The window [offset, offset + count) of THIS view (offsets are
    /// view-relative). The chunked-scan runtime windows each chunk
    /// through here.
    [[nodiscard]] PaymentView subview(std::size_t offset,
                                      std::size_t count) const noexcept {
        XRPL_ASSERT(offset <= count_ && count <= count_ - offset,
                    "subview must lie inside its parent view");
        return PaymentView(*columns_, offset_ + offset, count);
    }

    [[nodiscard]] const PaymentColumns& columns() const noexcept {
        return *columns_;
    }
    [[nodiscard]] std::size_t offset() const noexcept { return offset_; }

    class iterator {
    public:
        using iterator_category = std::input_iterator_tag;
        using value_type = TxRecord;
        using difference_type = std::ptrdiff_t;
        using pointer = void;
        using reference = TxRecord;

        iterator() noexcept = default;
        iterator(const PaymentView* view, std::size_t i) noexcept
            : view_(view), i_(i) {}

        TxRecord operator*() const noexcept { return (*view_)[i_]; }
        iterator& operator++() noexcept {
            ++i_;
            return *this;
        }
        iterator operator++(int) noexcept {
            iterator copy = *this;
            ++i_;
            return copy;
        }
        friend bool operator==(const iterator& a, const iterator& b) noexcept {
            return a.i_ == b.i_;
        }

    private:
        const PaymentView* view_ = nullptr;
        std::size_t i_ = 0;
    };

    [[nodiscard]] iterator begin() const noexcept { return {this, 0}; }
    [[nodiscard]] iterator end() const noexcept { return {this, count_}; }

private:
    const PaymentColumns* columns_ = nullptr;
    std::size_t offset_ = 0;
    std::size_t count_ = 0;
};

inline PaymentView PaymentColumns::view() const noexcept {
    return PaymentView(*this, 0, size());
}

}  // namespace xrpl::ledger
