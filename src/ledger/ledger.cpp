#include "ledger/ledger.hpp"

#include <algorithm>

namespace xrpl::ledger {

namespace {
const std::vector<TrustLine*> kNoLines;
const std::vector<Offer> kNoOffers;
}  // namespace

LedgerState LedgerState::clone() const {
    LedgerState copy;
    copy.accounts_ = accounts_;
    copy.index_to_account_ = index_to_account_;
    copy.lines_ = lines_;
    copy.books_ = books_;
    copy.burned_ = burned_;
    copy.next_offer_id_ = next_offer_id_;
    copy.topology_generation_ = topology_generation_;
    copy.adjacency_.reserve(adjacency_.size());
    for (auto& [key, line] : copy.lines_) {
        copy.adjacency_[key.low].push_back(&line);
        copy.adjacency_[key.high].push_back(&line);
    }
    return copy;
}

bool LedgerState::create_account(const AccountID& id, XrpAmount initial_balance,
                                 bool is_gateway, bool allows_rippling) {
    const auto index = static_cast<std::uint32_t>(accounts_.size());
    const auto [it, inserted] = accounts_.try_emplace(
        id, AccountRoot{id, initial_balance, 0, is_gateway,
                        is_gateway || allows_rippling, index});
    (void)it;
    if (inserted) {
        index_to_account_.push_back(id);
        ++topology_generation_;
    }
    return inserted;
}

const AccountRoot* LedgerState::account(const AccountID& id) const noexcept {
    const auto it = accounts_.find(id);
    return it == accounts_.end() ? nullptr : &it->second;
}

AccountRoot* LedgerState::account(const AccountID& id) noexcept {
    const auto it = accounts_.find(id);
    return it == accounts_.end() ? nullptr : &it->second;
}

bool LedgerState::xrp_payment(const AccountID& from, const AccountID& to,
                              XrpAmount amount, XrpAmount fee) {
    if (amount.drops <= 0) return false;
    AccountRoot* src = account(from);
    AccountRoot* dst = account(to);
    if (src == nullptr || dst == nullptr) return false;
    if (src->balance.drops < amount.drops + fee.drops) return false;
    src->balance.drops -= amount.drops + fee.drops;
    dst->balance.drops += amount.drops;
    burned_.drops += fee.drops;
    ++src->sequence;
    return true;
}

bool LedgerState::burn_fee(const AccountID& account, XrpAmount fee) {
    AccountRoot* root = this->account(account);
    if (root == nullptr || fee.drops <= 0) return false;
    if (root->balance.drops < fee.drops) return false;
    root->balance.drops -= fee.drops;
    burned_.drops += fee.drops;
    return true;
}

TrustLine& LedgerState::set_trust(const AccountID& from, const AccountID& to,
                                  Currency currency, IouAmount limit) {
    const TrustLineKey key = TrustLineKey::make(from, to, currency);
    auto it = lines_.find(key);
    if (it == lines_.end()) {
        const IouAmount zero;
        const bool from_is_low = from == key.low;
        TrustLine line(key, from_is_low ? limit : zero, from_is_low ? zero : limit);
        it = lines_.emplace(key, line).first;
        adjacency_[key.low].push_back(&it->second);
        adjacency_[key.high].push_back(&it->second);
        ++topology_generation_;
    } else {
        it->second.set_limit_of(from, limit);
    }
    return it->second;
}

const TrustLine* LedgerState::trustline(const AccountID& a, const AccountID& b,
                                        Currency currency) const noexcept {
    const auto it = lines_.find(TrustLineKey::make(a, b, currency));
    return it == lines_.end() ? nullptr : &it->second;
}

TrustLine* LedgerState::trustline(const AccountID& a, const AccountID& b,
                                  Currency currency) noexcept {
    const auto it = lines_.find(TrustLineKey::make(a, b, currency));
    return it == lines_.end() ? nullptr : &it->second;
}

const std::vector<TrustLine*>& LedgerState::lines_of(
    const AccountID& account) const noexcept {
    const auto it = adjacency_.find(account);
    return it == adjacency_.end() ? kNoLines : it->second;
}

double LedgerState::net_iou_balance(
    const AccountID& account,
    const std::function<double(Currency)>& rate_to_reference) const {
    double total = 0.0;
    for (const TrustLine* line : lines_of(account)) {
        total += line->balance_for(account).to_double() *
                 rate_to_reference(line->key().currency);
    }
    return total;
}

LedgerState::TrustSummary LedgerState::trust_summary(
    const AccountID& account,
    const std::function<double(Currency)>& rate_to_reference) const {
    TrustSummary summary;
    for (const TrustLine* line : lines_of(account)) {
        const double rate = rate_to_reference(line->key().currency);
        const AccountID& peer = line->peer_of(account);
        summary.received += line->limit_of(peer).to_double() * rate;
        summary.given += line->limit_of(account).to_double() * rate;
    }
    return summary;
}

std::uint64_t LedgerState::place_offer(const AccountID& owner, Amount taker_pays,
                                       Amount taker_gets) {
    Offer offer{next_offer_id_++, owner, taker_pays, taker_gets};
    auto& entries = books_[BookKey{taker_pays.currency, taker_gets.currency}];
    const auto pos = std::upper_bound(
        entries.begin(), entries.end(), offer,
        [](const Offer& a, const Offer& b) { return a.rate() < b.rate(); });
    entries.insert(pos, offer);
    return offer.id;
}

const std::vector<Offer>& LedgerState::book(const BookKey& key) const noexcept {
    const auto it = books_.find(key);
    return it == books_.end() ? kNoOffers : it->second;
}

std::vector<Offer>& LedgerState::book_mutable(const BookKey& key) noexcept {
    return books_[key];
}

std::size_t LedgerState::offer_count() const noexcept {
    std::size_t total = 0;
    for (const auto& [key, entries] : books_) total += entries.size();
    return total;
}

void LedgerState::remove_offers_of(const AccountID& owner) {
    for (auto& [key, entries] : books_) {
        std::erase_if(entries, [&](const Offer& o) { return o.owner == owner; });
    }
}

}  // namespace xrpl::ledger
