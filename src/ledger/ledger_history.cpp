#include "ledger/ledger_history.hpp"

#include <algorithm>

#include "util/sha256.hpp"

namespace xrpl::ledger {

Hash256 compute_page_hash(std::uint32_t sequence, const Hash256& parent_hash,
                          util::RippleTime close_time,
                          const std::vector<Hash256>& tx_ids) {
    util::Sha256 hasher;
    std::array<std::uint8_t, 12> header;
    for (int i = 0; i < 4; ++i) {
        header[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(sequence >> (24 - 8 * i));
    }
    const auto t = static_cast<std::uint64_t>(close_time.seconds);
    for (int i = 0; i < 8; ++i) {
        header[static_cast<std::size_t>(4 + i)] =
            static_cast<std::uint8_t>(t >> (56 - 8 * i));
    }
    hasher.update(header);
    hasher.update(parent_hash.bytes);
    for (const Hash256& id : tx_ids) hasher.update(id.bytes);

    const util::Sha256Digest digest = hasher.finish();
    Hash256 out;
    std::copy(digest.begin(), digest.end(), out.bytes.begin());
    return out;
}

const ClosedLedger& LedgerHistory::append(util::RippleTime close_time,
                                          std::vector<Hash256> tx_ids) {
    ClosedLedger page;
    page.sequence = static_cast<std::uint32_t>(pages_.size() + 1);
    page.parent_hash = pages_.empty() ? Hash256{} : pages_.back().hash;
    page.close_time = close_time;
    page.tx_ids = std::move(tx_ids);
    page.hash = compute_page_hash(page.sequence, page.parent_hash, page.close_time,
                                  page.tx_ids);
    pages_.push_back(std::move(page));
    return pages_.back();
}

std::size_t LedgerHistory::verify_chain() const {
    for (std::size_t i = 0; i < pages_.size(); ++i) {
        const ClosedLedger& page = pages_[i];
        const Hash256 expected_parent = i == 0 ? Hash256{} : pages_[i - 1].hash;
        if (page.parent_hash != expected_parent) return i;
        if (page.sequence != i + 1) return i;
        const Hash256 recomputed = compute_page_hash(page.sequence, page.parent_hash,
                                                     page.close_time, page.tx_ids);
        if (recomputed != page.hash) return i;
    }
    return pages_.size();
}

}  // namespace xrpl::ledger
