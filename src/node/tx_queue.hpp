// The open-ledger transaction queue.
//
// Pending transactions wait here between submission and the next
// consensus round, the way rippled's open ledger does: ordered by
// offered fee (the anti-spam economics of §III-A — "a small XRP fee
// is collected for each transaction submitted"), with per-account
// FIFO ordering preserved so an account's transactions apply in
// sequence.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ledger/transaction.hpp"

namespace xrpl::node {

class TransactionQueue {
public:
    enum class SubmitResult : std::uint8_t {
        kQueued,
        kDuplicate,  // same transaction id already pending
        kFull,       // queue at capacity
    };

    explicit TransactionQueue(std::size_t capacity = 10'000) noexcept
        : capacity_(capacity) {}

    /// Enqueue a transaction with the fee its sender offers.
    SubmitResult submit(const ledger::Transaction& tx, ledger::XrpAmount fee);

    /// Pop up to `n` transactions: highest offered fee first among the
    /// releasable heads (per-account order is never violated).
    [[nodiscard]] std::vector<ledger::Transaction> next_batch(std::size_t n);

    /// Put a batch back at the FRONT of its accounts' queues (a failed
    /// consensus round retries its candidate set). Order within the
    /// batch is preserved.
    void requeue(const std::vector<ledger::Transaction>& batch);

    [[nodiscard]] std::size_t size() const noexcept { return size_; }
    [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

private:
    struct Entry {
        ledger::Transaction tx;
        ledger::XrpAmount fee;
        std::uint64_t arrival = 0;
    };

    std::size_t capacity_;
    std::size_t size_ = 0;
    std::uint64_t arrivals_ = 0;
    std::unordered_map<ledger::AccountID, std::deque<Entry>> per_account_;
    std::unordered_set<ledger::Hash256> pending_ids_;
};

}  // namespace xrpl::node
