#include "node/node.hpp"

namespace xrpl::node {

Node::Node(ledger::LedgerState& state,
           std::vector<consensus::ValidatorSpec> validators, NodeConfig config)
    : config_(config),
      engine_(state, config.engine),
      consensus_(std::move(validators), config.consensus),
      clock_(config.consensus.start_time) {}

TransactionQueue::SubmitResult Node::submit(const ledger::Transaction& tx) {
    return submit(tx, config_.default_fee);
}

TransactionQueue::SubmitResult Node::submit(const ledger::Transaction& tx,
                                            ledger::XrpAmount fee) {
    return queue_.submit(tx, fee);
}

RoundReport Node::run_round() {
    ++round_;
    clock_.seconds += static_cast<std::int64_t>(
        config_.consensus.round_interval_seconds);

    std::vector<ledger::Transaction> batch =
        queue_.next_batch(config_.max_txs_per_page);
    std::vector<ledger::Hash256> tx_ids;
    tx_ids.reserve(batch.size());
    for (const ledger::Transaction& tx : batch) tx_ids.push_back(tx.id());

    RoundReport report;
    report.close_time = clock_;
    report.outcome = consensus_.run_round(round_, clock_, tx_ids, stream_);

    if (!report.outcome.main_closed) {
        // No agreement: the candidate set is retried next round.
        queue_.requeue(batch);
        report.retried = batch.size();
        return report;
    }

    // The page is sealed; apply its transactions deterministically.
    // Failures stay in the page (tec-style), exactly like the real
    // ledger — finality is about inclusion, not success.
    report.applied.reserve(batch.size());
    for (const ledger::Transaction& tx : batch) {
        AppliedTx applied;
        applied.id = tx.id();
        applied.result = engine_.apply(tx);
        applied.result.close_time = clock_;
        applied.success = applied.result.success;
        report.applied.push_back(std::move(applied));
    }
    return report;
}

std::vector<RoundReport> Node::run_until_idle(std::size_t max_rounds) {
    std::vector<RoundReport> reports;
    for (std::size_t i = 0; i < max_rounds; ++i) {
        const bool had_work = !queue_.empty();
        reports.push_back(run_round());
        if (!had_work && queue_.empty()) break;
    }
    return reports;
}

}  // namespace xrpl::node
