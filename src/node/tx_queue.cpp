#include "node/tx_queue.hpp"

#include <algorithm>

#include "util/contract.hpp"

namespace xrpl::node {

TransactionQueue::SubmitResult TransactionQueue::submit(
    const ledger::Transaction& tx, ledger::XrpAmount fee) {
    if (size_ >= capacity_) return SubmitResult::kFull;
    const ledger::Hash256 id = tx.id();
    if (!pending_ids_.insert(id).second) return SubmitResult::kDuplicate;

    per_account_[tx.sender].push_back(Entry{tx, fee, arrivals_++});
    ++size_;
    // size_ is the sum of per-account queue lengths, and pending_ids_
    // holds exactly the queued transaction ids; a skew double-admits
    // or loses transactions across submit/next_batch/requeue.
    XRPL_INVARIANT(size_ == pending_ids_.size(),
                   "queue size must match the pending-id set");
    return SubmitResult::kQueued;
}

std::vector<ledger::Transaction> TransactionQueue::next_batch(std::size_t n) {
    std::vector<ledger::Transaction> batch;
    batch.reserve(std::min(n, size_));

    while (batch.size() < n && size_ > 0) {
        // Among the per-account heads, take the highest fee (oldest
        // arrival breaks ties). Head-only release keeps each account's
        // transactions in submission order.
        std::deque<Entry>* best_queue = nullptr;
        for (auto& [account, entries] : per_account_) {
            if (entries.empty()) continue;
            if (best_queue == nullptr ||
                entries.front().fee.drops > best_queue->front().fee.drops ||
                (entries.front().fee.drops == best_queue->front().fee.drops &&
                 entries.front().arrival < best_queue->front().arrival)) {
                best_queue = &entries;
            }
        }
        if (best_queue == nullptr) break;

#if XRPL_CONTRACTS_ENABLED
        // The fee-ordering contract of §III-A's anti-spam economics:
        // the entry released is the highest-fee head (a requeued entry
        // carries an infinite fee, so candidates always re-release
        // first). Re-derives the selection, so contract builds only.
        for (const auto& [account, entries] : per_account_) {
            XRPL_INVARIANT(entries.empty() || entries.front().fee.drops <=
                                                  best_queue->front().fee.drops,
                           "released entry must be the highest-fee head");
        }
#endif
        Entry entry = std::move(best_queue->front());
        best_queue->pop_front();
        --size_;
        [[maybe_unused]] const std::size_t erased =
            pending_ids_.erase(entry.tx.id());
        XRPL_INVARIANT(erased == 1,
                       "every released entry must have been tracked as pending");
        batch.push_back(std::move(entry.tx));
    }
    XRPL_INVARIANT(size_ == pending_ids_.size(),
                   "queue size must match the pending-id set");
    return batch;
}

void TransactionQueue::requeue(const std::vector<ledger::Transaction>& batch) {
    // Reinsert in reverse so each account's front ends up in the
    // original relative order. Requeued transactions jump the fee
    // queue (they were already agreed candidates once).
    for (auto it = batch.rbegin(); it != batch.rend(); ++it) {
        const ledger::Hash256 id = it->id();
        if (!pending_ids_.insert(id).second) continue;
        per_account_[it->sender].push_front(
            Entry{*it, ledger::XrpAmount{INT64_MAX}, arrivals_++});
        ++size_;
    }
    XRPL_INVARIANT(size_ == pending_ids_.size(),
                   "queue size must match the pending-id set");
}

}  // namespace xrpl::node
