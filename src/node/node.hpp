// A full node: transactions flow from the queue through consensus
// into sealed ledger pages, and only then apply to the ledger state —
// the lifecycle of §III-B ("once the transaction is successfully
// included in the ledger, it is considered final, complete, and
// immutable").
//
// Per round:
//   1. pull a candidate batch from the open-ledger queue;
//   2. run the RPCA round with the batch's transaction ids in the
//      candidate page;
//   3. if the page reaches quorum, apply the transactions in order
//      (failures are still part of the sealed page, like the real
//      ledger's tec-class results); if quorum fails, the batch goes
//      back to the queue and is retried next round.
#pragma once

#include <cstdint>
#include <vector>

#include "consensus/rpca.hpp"
#include "consensus/validation_stream.hpp"
#include "node/tx_queue.hpp"
#include "paths/payment_engine.hpp"

namespace xrpl::node {

struct NodeConfig {
    consensus::ConsensusConfig consensus;
    paths::EngineConfig engine;
    /// Max transactions sealed per page.
    std::size_t max_txs_per_page = 20;
    /// Fee offered by submit() when the caller does not specify one.
    ledger::XrpAmount default_fee{10};
};

/// One transaction's fate inside a sealed page.
struct AppliedTx {
    ledger::Hash256 id;
    bool success = false;  // false = included with a tec-style failure
    ledger::TxResult result;
};

/// Per-round report.
struct RoundReport {
    consensus::RoundOutcome outcome;
    util::RippleTime close_time;
    std::vector<AppliedTx> applied;   // empty when the round failed
    std::size_t retried = 0;          // batch size sent back to the queue
};

class Node {
public:
    Node(ledger::LedgerState& state,
         std::vector<consensus::ValidatorSpec> validators, NodeConfig config);

    /// Submit a transaction to the open ledger.
    TransactionQueue::SubmitResult submit(const ledger::Transaction& tx);
    TransactionQueue::SubmitResult submit(const ledger::Transaction& tx,
                                          ledger::XrpAmount fee);

    /// Advance the clock one close interval and run a consensus round.
    RoundReport run_round();

    /// Convenience: run rounds until the queue drains (or `max_rounds`).
    std::vector<RoundReport> run_until_idle(std::size_t max_rounds);

    [[nodiscard]] const ledger::LedgerHistory& chain() const noexcept {
        return consensus_.main_chain();
    }
    [[nodiscard]] consensus::ValidationStream& stream() noexcept { return stream_; }
    [[nodiscard]] const std::vector<consensus::Validator>& validators()
        const noexcept {
        return consensus_.validators();
    }
    [[nodiscard]] TransactionQueue& queue() noexcept { return queue_; }
    [[nodiscard]] paths::PaymentEngine& engine() noexcept { return engine_; }
    [[nodiscard]] std::uint64_t rounds_run() const noexcept { return round_; }
    [[nodiscard]] util::RippleTime now() const noexcept { return clock_; }

private:
    NodeConfig config_;
    paths::PaymentEngine engine_;
    consensus::ConsensusSimulation consensus_;
    consensus::ValidationStream stream_;
    TransactionQueue queue_;
    std::uint64_t round_ = 0;
    util::RippleTime clock_;
};

}  // namespace xrpl::node
