// Table I: amount rounding by currency strength.
//
// Currencies are grouped by market strength; each group has a base
// rounding power p0 such that the paper's resolutions are
//   max     -> nearest 10^p0
//   high    -> nearest 5*10^p0   (the interpolated level Fig 3 calls A_h)
//   average -> nearest 10^(p0+1)
//   low     -> nearest 10^(p0+2)
//
//   Powerful (BTC, XAG, XAU, XPT):        p0 = -3  (10^-3, 10^-2, 10^-1)
//   Medium  (CNY, EUR, USD, AUD, GBP, JPY): p0 = 1   (10^1, 10^2, 10^3)
//   Weak    (XRP, CCK, STR, KRW, MTL):      p0 = 5   (10^5, 10^6, 10^7)
//
// Currencies the table does not list are classified by their unit
// value when known, defaulting to Medium.
#pragma once

#include "ledger/amount.hpp"
#include "ledger/types.hpp"

namespace xrpl::core {

enum class Strength { kPowerful, kMedium, kWeak };

/// Strength group of a currency (Table I, with a fallback rule).
[[nodiscard]] Strength strength_of(ledger::Currency currency) noexcept;

/// Base rounding power p0 of a strength group.
[[nodiscard]] int base_power(Strength strength) noexcept;

enum class AmountResolution { kMax, kHigh, kAverage, kLow };

/// Short subscript used in config labels: "m", "h", "a", "l".
[[nodiscard]] const char* amount_resolution_label(AmountResolution res) noexcept;

/// Round `value` of `currency` at `resolution` per Table I.
[[nodiscard]] ledger::IouAmount round_amount(ledger::IouAmount value,
                                             ledger::Currency currency,
                                             AmountResolution resolution) noexcept;

/// The rounding unit as (digit, power): unit = digit * 10^power with
/// digit 1 or 5. Exposed for tests and the Table I bench.
struct RoundingUnit {
    int digit = 1;  // 1 or 5
    int power = 0;
};
[[nodiscard]] RoundingUnit rounding_unit(ledger::Currency currency,
                                         AmountResolution resolution) noexcept;

/// Round with a precomputed unit. The currency overload delegates
/// here; columnar scans hoist the rounding_unit lookup out of the
/// per-payment loop (one lookup per currency group, not per row).
[[nodiscard]] ledger::IouAmount round_amount(ledger::IouAmount value,
                                             RoundingUnit unit) noexcept;

}  // namespace xrpl::core
