#include "core/clustering.hpp"

#include <unordered_set>

#include "core/fingerprint.hpp"

namespace xrpl::core {

ledger::AccountID AccountClusters::find(const ledger::AccountID& account) const {
    auto it = parent_.find(account);
    if (it == parent_.end()) return account;
    // Path compression: point every node on the chain at the root.
    std::vector<ledger::AccountID> chain;
    ledger::AccountID cursor = account;
    while (true) {
        const auto parent_it = parent_.find(cursor);
        if (parent_it == parent_.end() || parent_it->second == cursor) break;
        chain.push_back(cursor);
        cursor = parent_it->second;
    }
    for (const ledger::AccountID& node : chain) parent_[node] = cursor;
    return cursor;
}

void AccountClusters::link(const ledger::AccountID& a, const ledger::AccountID& b) {
    parent_.try_emplace(a, a);
    parent_.try_emplace(b, b);
    size_.try_emplace(a, 1);
    size_.try_emplace(b, 1);

    ledger::AccountID root_a = find(a);
    ledger::AccountID root_b = find(b);
    if (root_a == root_b) return;
    // Union by size.
    if (size_[root_a] < size_[root_b]) std::swap(root_a, root_b);
    parent_[root_b] = root_a;
    size_[root_a] += size_[root_b];
}

ledger::AccountID AccountClusters::representative(
    const ledger::AccountID& account) const {
    return find(account);
}

std::size_t AccountClusters::cluster_count() const {
    std::unordered_set<ledger::AccountID> roots;
    for (const auto& [account, parent] : parent_) roots.insert(find(account));
    return roots.size();
}

std::vector<std::vector<ledger::AccountID>> AccountClusters::clusters(
    std::size_t min_size) const {
    std::unordered_map<ledger::AccountID, std::vector<ledger::AccountID>> groups;
    for (const auto& [account, parent] : parent_) {
        groups[find(account)].push_back(account);
    }
    std::vector<std::vector<ledger::AccountID>> out;
    for (auto& [root, members] : groups) {
        if (members.size() >= min_size) out.push_back(std::move(members));
    }
    return out;
}

AccountClusters cluster_by_activation(std::span<const ActivationEdge> edges) {
    AccountClusters clusters;
    for (const ActivationEdge& edge : edges) {
        clusters.link(edge.funder, edge.account);
    }
    return clusters;
}

IgResult clustered_information_gain(std::span<const ledger::TxRecord> records,
                                    const ResolutionConfig& config,
                                    const AccountClusters& clusters) {
    struct Bucket {
        ledger::AccountID entity;
        bool multi = false;
    };
    std::unordered_map<std::uint64_t, Bucket> buckets;
    buckets.reserve(records.size());

    for (const ledger::TxRecord& record : records) {
        const std::uint64_t fp = fingerprint(record, config);
        const ledger::AccountID entity = clusters.representative(record.sender);
        auto [it, inserted] = buckets.try_emplace(fp, Bucket{entity, false});
        if (!inserted && !(it->second.entity == entity)) it->second.multi = true;
    }

    IgResult result;
    result.total_payments = records.size();
    for (const ledger::TxRecord& record : records) {
        if (!buckets.at(fingerprint(record, config)).multi) {
            ++result.uniquely_identified;
        }
    }
    return result;
}

}  // namespace xrpl::core
