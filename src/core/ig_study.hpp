// The Fig 3 study: IG across the paper's ten feature/resolution
// configurations, with the paper's reported values alongside for
// comparison.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "core/deanonymizer.hpp"
#include "core/features.hpp"

namespace xrpl::core {

/// One Fig 3 bar.
struct IgStudyRow {
    ResolutionConfig config;
    IgResult result;
    /// The value the paper reports (exact where stated in the text,
    /// read off the figure otherwise); nullopt when the bar has no
    /// quotable value.
    std::optional<double> paper_value;
    bool paper_value_exact = false;
};

/// The ten configurations of Fig 3, top to bottom.
[[nodiscard]] std::vector<ResolutionConfig> fig3_configurations();

/// Paper-reported IG for configuration `index` (same order), if any.
struct PaperReference {
    std::optional<double> value;
    bool exact = false;
};
[[nodiscard]] PaperReference fig3_paper_reference(std::size_t index) noexcept;

/// Run the whole study over a payment history (legacy row path).
[[nodiscard]] std::vector<IgStudyRow> run_ig_study(
    std::span<const ledger::TxRecord> records);

/// Column-native overloads: same IgResults, one batched fingerprint
/// pass per configuration instead of two row scans.
[[nodiscard]] std::vector<IgStudyRow> run_ig_study(
    const ledger::PaymentColumns& payments);
[[nodiscard]] std::vector<IgStudyRow> run_ig_study(ledger::PaymentView view);

}  // namespace xrpl::core
