#include "core/fingerprint.hpp"

#include "core/resolution.hpp"
#include "ledger/types.hpp"
#include "util/ripple_time.hpp"

namespace xrpl::core {

namespace {

std::uint64_t avalanche(std::uint64_t x) noexcept {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

std::uint64_t account_word(const ledger::AccountID& id) noexcept {
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < 8; ++i) {
        word = (word << 8) | id.bytes[i];
    }
    // The remaining 12 bytes, folded in.
    std::uint64_t rest = 0;
    for (std::size_t i = 8; i < id.bytes.size(); ++i) {
        rest = rest * 131 + id.bytes[i];
    }
    return word ^ avalanche(rest);
}

}  // namespace

void FingerprintHasher::mix(std::uint64_t value) noexcept {
    state_ = avalanche(state_ ^ avalanche(value));
}

std::uint64_t fingerprint(const ledger::TxRecord& record,
                          const ResolutionConfig& config) noexcept {
    FingerprintHasher hasher;

    if (config.amount) {
        const ledger::IouAmount rounded =
            round_amount(record.amount, record.currency, *config.amount);
        hasher.mix(static_cast<std::uint64_t>(rounded.mantissa()));
        hasher.mix(static_cast<std::uint64_t>(
            static_cast<std::int64_t>(rounded.exponent())));
    }
    if (config.time) {
        const util::RippleTime truncated = util::truncate(record.time, *config.time);
        hasher.mix(static_cast<std::uint64_t>(truncated.seconds));
    }
    if (config.use_currency) {
        std::uint64_t code = 0;
        for (const char c : record.currency.code) {
            code = (code << 8) | static_cast<unsigned char>(c);
        }
        hasher.mix(code | (1ULL << 62));  // tag so "no currency" differs
    }
    if (config.use_destination) {
        hasher.mix(account_word(record.destination));
    }
    return hasher.digest();
}

}  // namespace xrpl::core
