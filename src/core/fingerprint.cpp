#include "core/fingerprint.hpp"

#include "exec/chunked_view.hpp"
#include "exec/parallel.hpp"
#include "ledger/types.hpp"
#include "obs/metrics.hpp"
#include "util/contract.hpp"
#include "util/ripple_time.hpp"

namespace xrpl::core {

namespace {

// Per-field domain tags, XORed into the first word a field mixes.
// All four are distinct, so the mixed stream of one feature subset can
// never reproduce the stream of another (⟨A,−,−,−⟩ vs ⟨−,T,−,−⟩ used
// to be separated only by mix count; ⟨−,−,C,−⟩ carried the lone tag).
constexpr std::uint64_t kAmountDomain = 0xa24baed4963ee407ULL;
constexpr std::uint64_t kTimeDomain = 0x9fb21c651e98df25ULL;
constexpr std::uint64_t kCurrencyDomain = 0x4000000000000000ULL;  // 1<<62, as before
constexpr std::uint64_t kDestinationDomain = 0x2b7e151628aed2a6ULL;

std::uint64_t avalanche(std::uint64_t x) noexcept {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

std::uint64_t account_word(const ledger::AccountID& id) noexcept {
    std::uint64_t word = 0;
    for (std::size_t i = 0; i < 8; ++i) {
        word = (word << 8) | id.bytes[i];
    }
    // The remaining 12 bytes, folded in.
    std::uint64_t rest = 0;
    for (std::size_t i = 8; i < id.bytes.size(); ++i) {
        rest = rest * 131 + id.bytes[i];
    }
    return word ^ avalanche(rest);
}

std::uint64_t currency_word(const ledger::Currency& currency) noexcept {
    std::uint64_t code = 0;
    for (const char c : currency.code) {
        code = (code << 8) | static_cast<unsigned char>(c);
    }
    return code;
}

void mix_amount(FingerprintHasher& hasher, const ledger::IouAmount& rounded) noexcept {
    hasher.mix(static_cast<std::uint64_t>(rounded.mantissa()) ^ kAmountDomain);
    hasher.mix(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(rounded.exponent())));
}

}  // namespace

void FingerprintHasher::mix(std::uint64_t value) noexcept {
    state_ = avalanche(state_ ^ avalanche(value));
}

std::uint64_t fingerprint(const ledger::TxRecord& record,
                          const ResolutionConfig& config) noexcept {
    FingerprintHasher hasher;

    if (config.amount) {
        mix_amount(hasher,
                   round_amount(record.amount, record.currency, *config.amount));
    }
    if (config.time) {
        const util::RippleTime truncated = util::truncate(record.time, *config.time);
        hasher.mix(static_cast<std::uint64_t>(truncated.seconds) ^ kTimeDomain);
    }
    if (config.use_currency) {
        hasher.mix(currency_word(record.currency) ^ kCurrencyDomain);
    }
    if (config.use_destination) {
        hasher.mix(account_word(record.destination) ^ kDestinationDomain);
    }
    return hasher.digest();
}

FingerprintPlan::FingerprintPlan(const ledger::PaymentColumns& columns,
                                 const ResolutionConfig& config)
    : columns_(&columns), config_(config) {
    // Destination hash words: fold each distinct account once instead
    // of re-folding 20 bytes per payment.
    if (config_.use_destination) {
        dest_words_.resize(columns.accounts.size());
        for (std::uint32_t a = 0; a < dest_words_.size(); ++a) {
            dest_words_[a] =
                account_word(columns.accounts.at(a)) ^ kDestinationDomain;
        }
    }

    // Per-currency context: code word and Table I rounding unit, each
    // resolved once per currency group instead of once per payment.
    currency_context_.resize(columns.currencies.size());
    for (std::uint16_t c = 0; c < currency_context_.size(); ++c) {
        const ledger::Currency& currency = columns.currencies.at(c);
        currency_context_[c].word = currency_word(currency) ^ kCurrencyDomain;
        if (config_.amount) {
            currency_context_[c].unit = rounding_unit(currency, *config_.amount);
        }
    }
}

void FingerprintPlan::rows(std::size_t begin, std::size_t end,
                           std::uint64_t* out) const {
    const ledger::PaymentColumns& columns = *columns_;
    // The range and every interned id it dereferences must lie inside
    // the backing store; the per-row loop below indexes columns and
    // dictionary tables unchecked on that strength.
    XRPL_ASSERT(begin <= end && end <= columns.size(),
                "fingerprint row range must lie inside the store");

    // One striped add per RANGE, not per row — the row loop below is
    // the hottest code in the repo.
    static obs::Counter& rows_hashed = obs::counter("core.fingerprint.rows");
    rows_hashed.add(end - begin);

    for (std::size_t r = begin; r < end; ++r) {
        XRPL_ASSERT(columns.currency_id[r] < currency_context_.size() &&
                        (!config_.use_destination ||
                         columns.dest_id[r] < dest_words_.size()),
                    "interned column ids must resolve in their dictionaries");
        FingerprintHasher hasher;
        if (config_.amount) {
            const ledger::IouAmount amount =
                ledger::IouAmount::from_mantissa_exponent(
                    columns.amount_mantissa[r], columns.amount_exponent[r]);
            mix_amount(hasher,
                       round_amount(
                           amount, currency_context_[columns.currency_id[r]].unit));
        }
        if (config_.time) {
            const util::RippleTime truncated = util::truncate(
                util::RippleTime{columns.time_seconds[r]}, *config_.time);
            hasher.mix(static_cast<std::uint64_t>(truncated.seconds) ^ kTimeDomain);
        }
        if (config_.use_currency) {
            hasher.mix(currency_context_[columns.currency_id[r]].word);
        }
        if (config_.use_destination) {
            hasher.mix(dest_words_[columns.dest_id[r]]);
        }
        out[r - begin] = hasher.digest();
    }
}

std::vector<std::uint64_t> fingerprint_column(const ledger::PaymentView& view,
                                              const ResolutionConfig& config) {
    const std::size_t offset = view.offset();
    const std::size_t n = view.size();
    std::vector<std::uint64_t> fingerprints(n);
    if (n == 0) return fingerprints;
    XRPL_ASSERT(offset + n <= view.columns().size(),
                "payment view window must lie inside its columns");

    const FingerprintPlan plan(view.columns(), config);
    // Chunks write disjoint slices of one output vector: bit-identical
    // for every thread count, no merge step needed.
    exec::parallel_for(n, exec::kDefaultChunkRows,
                       [&](std::size_t begin, std::size_t end) {
                           plan.rows(offset + begin, offset + end,
                                     fingerprints.data() + begin);
                       });
    return fingerprints;
}

}  // namespace xrpl::core
