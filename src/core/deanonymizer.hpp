// The de-anonymizer — §V's attack, as a reusable component.
//
// Given the public payment history (the ledger's TxRecords) it
// answers two questions:
//
//  * information_gain(config): what fraction of all payments have a
//    fingerprint shared by exactly one sender? This is the IG metric
//    of Fig 3 — the probability that observing a random payment at
//    the configured resolution pins down its sender.
//
//  * attack(observation, config): the latte scenario. Alice saw an
//    (approximate) amount, time, currency, destination; the attack
//    returns every candidate sender, and history_of() then dumps the
//    victim's entire financial life.
//
// Two storage backends, identical results: the legacy row span
// (std::span<const TxRecord>) and the columnar PaymentColumns /
// PaymentView. The columnar path computes fingerprints in one batched
// column pass and compares interned u32 sender ids instead of 20-byte
// accounts — measurably faster per configuration scanned.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/features.hpp"
#include "core/fingerprint.hpp"
#include "ledger/payment_columns.hpp"
#include "ledger/transaction.hpp"

namespace xrpl::core {

/// Result of running the IG computation for one configuration.
struct IgResult {
    std::uint64_t total_payments = 0;
    std::uint64_t uniquely_identified = 0;

    [[nodiscard]] double information_gain() const noexcept {
        return total_payments == 0
                   ? 0.0
                   : static_cast<double>(uniquely_identified) /
                         static_cast<double>(total_payments);
    }
};

class Deanonymizer {
public:
    /// The records are referenced, not copied; the caller keeps them
    /// alive for the Deanonymizer's lifetime.
    explicit Deanonymizer(std::span<const ledger::TxRecord> records) noexcept
        : records_(records) {}

    /// Columnar backends; the store outlives the Deanonymizer.
    explicit Deanonymizer(const ledger::PaymentColumns& payments) noexcept
        : view_(payments.view()) {}
    explicit Deanonymizer(ledger::PaymentView view) noexcept : view_(view) {}

    /// Fig 3's IG for one resolution configuration. O(n) time,
    /// O(#distinct fingerprints) memory.
    [[nodiscard]] IgResult information_gain(const ResolutionConfig& config) const;

    /// All candidate senders matching an observed payment at the given
    /// resolution (deduplicated, in first-seen order). The observation
    /// is expressed as a TxRecord whose sender field is ignored.
    [[nodiscard]] std::vector<ledger::AccountID> attack(
        const ledger::TxRecord& observation, const ResolutionConfig& config) const;

    /// Every payment sent by `account` — the victim's "entire
    /// financial life" once the attack singled them out.
    [[nodiscard]] std::vector<ledger::TxRecord> history_of(
        const ledger::AccountID& account) const;

    [[nodiscard]] std::size_t record_count() const noexcept {
        return view_ ? view_->size() : records_.size();
    }

private:
    [[nodiscard]] IgResult information_gain_rows(const ResolutionConfig& config) const;
    [[nodiscard]] IgResult information_gain_columns(
        const ResolutionConfig& config) const;

    std::span<const ledger::TxRecord> records_;
    std::optional<ledger::PaymentView> view_;
};

/// Precomputed fingerprint index for repeated attack queries at one
/// fixed resolution (the interactive examples use this).
class AttackIndex {
public:
    AttackIndex(std::span<const ledger::TxRecord> records, ResolutionConfig config);
    AttackIndex(const ledger::PaymentColumns& payments, ResolutionConfig config);
    AttackIndex(ledger::PaymentView view, ResolutionConfig config);

    /// Indices of all records matching the observation's fingerprint.
    [[nodiscard]] const std::vector<std::uint32_t>& matches(
        const ledger::TxRecord& observation) const;

    /// Distinct senders among the matches.
    [[nodiscard]] std::vector<ledger::AccountID> candidate_senders(
        const ledger::TxRecord& observation) const;

    [[nodiscard]] const ResolutionConfig& config() const noexcept { return config_; }
    [[nodiscard]] std::size_t bucket_count() const noexcept { return index_.size(); }

private:
    [[nodiscard]] const ledger::AccountID& sender_of(std::uint32_t i) const noexcept;

    std::span<const ledger::TxRecord> records_;
    std::optional<ledger::PaymentView> view_;
    ResolutionConfig config_;
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> index_;
};

}  // namespace xrpl::core
