#include "core/mitigation.hpp"

#include <string>
#include <unordered_set>

#include "core/fingerprint.hpp"

namespace xrpl::core {

namespace {

/// Deterministic wallet id for (owner, index).
ledger::AccountID wallet_id(const ledger::AccountID& owner, std::size_t index) {
    return ledger::AccountID::from_seed(owner.to_address() + "/wallet/" +
                                        std::to_string(index));
}

}  // namespace

RotatedHistory apply_wallet_rotation(
    std::span<const ledger::TxRecord> records, const WalletRotationConfig& config,
    const std::function<std::size_t(const ledger::AccountID&)>& trustlines_of) {
    RotatedHistory out;
    out.records.reserve(records.size());

    const std::size_t pool =
        config.wallets_per_sender == 0 ? 1 : config.wallets_per_sender;

    // Round-robin cursor per owner: rotation "unique to every single
    // transaction" in the limit pool >= payments.
    std::unordered_map<ledger::AccountID, std::size_t> cursor;
    std::unordered_set<ledger::AccountID> owners;

    for (const ledger::TxRecord& record : records) {
        ledger::TxRecord rotated = record;
        const std::size_t index = cursor[record.sender]++ % pool;
        const ledger::AccountID wallet = wallet_id(record.sender, index);
        rotated.sender = wallet;
        out.wallet_owner.emplace(wallet, record.sender);
        owners.insert(record.sender);
        out.records.push_back(rotated);
    }

    // Bootstrap pricing: every owner activates `pool` wallets, each of
    // which must re-create the owner's trust lines to be able to pay
    // (and to be paid — the paper notes the receiver must trust it too,
    // which this lower bound does not even include).
    for (const ledger::AccountID& owner : owners) {
        const std::size_t lines = trustlines_of(owner);
        out.wallets_created += pool;
        out.trustlines_created += pool * lines;
        out.xrp_reserve_cost +=
            static_cast<double>(pool) * config.xrp_reserve_per_wallet +
            static_cast<double>(pool * lines) * config.xrp_reserve_per_trustline;
    }
    return out;
}

IgResult linked_information_gain(const RotatedHistory& rotated,
                                 const ResolutionConfig& config) {
    // The attacker clusters wallets by activator; a bucket identifies
    // a CLUSTER when all its payments map to the same owner.
    struct Bucket {
        ledger::AccountID owner;
        bool multi = false;
    };
    std::unordered_map<std::uint64_t, Bucket> buckets;
    buckets.reserve(rotated.records.size());

    const auto owner_of = [&](const ledger::AccountID& wallet) {
        const auto it = rotated.wallet_owner.find(wallet);
        return it == rotated.wallet_owner.end() ? wallet : it->second;
    };

    for (const ledger::TxRecord& record : rotated.records) {
        const std::uint64_t fp = fingerprint(record, config);
        const ledger::AccountID owner = owner_of(record.sender);
        auto [it, inserted] = buckets.try_emplace(fp, Bucket{owner, false});
        if (!inserted && !(it->second.owner == owner)) it->second.multi = true;
    }

    IgResult result;
    result.total_payments = rotated.records.size();
    for (const ledger::TxRecord& record : rotated.records) {
        if (!buckets.at(fingerprint(record, config)).multi) {
            ++result.uniquely_identified;
        }
    }
    return result;
}

MitigationReport evaluate_wallet_rotation(
    std::span<const ledger::TxRecord> records, const ResolutionConfig& resolution,
    const WalletRotationConfig& config,
    const std::function<std::size_t(const ledger::AccountID&)>& trustlines_of) {
    MitigationReport report;

    const Deanonymizer baseline(records);
    report.baseline = baseline.information_gain(resolution);

    const RotatedHistory rotated =
        apply_wallet_rotation(records, config, trustlines_of);
    const Deanonymizer after(rotated.records);
    report.rotated = after.information_gain(resolution);
    report.linked = linked_information_gain(rotated, resolution);

    report.wallets_created = rotated.wallets_created;
    report.trustlines_created = rotated.trustlines_created;
    report.xrp_reserve_cost = rotated.xrp_reserve_cost;
    return report;
}

RotatedColumns apply_wallet_rotation(
    const ledger::PaymentColumns& payments, const WalletRotationConfig& config,
    const std::function<std::size_t(const ledger::AccountID&)>& trustlines_of) {
    RotatedColumns out;
    out.payments = payments;
    out.owner_id.assign(payments.sender_id.begin(), payments.sender_id.end());

    const std::size_t pool =
        config.wallets_per_sender == 0 ? 1 : config.wallets_per_sender;

    // The interner makes owners dense: build each owner's wallet pool
    // at most once (the row path derives a base58 seed per payment).
    struct OwnerState {
        std::vector<std::uint32_t> wallets;  // interned wallet ids
        std::size_t cursor = 0;
    };
    std::unordered_map<std::uint32_t, OwnerState> state;

    for (std::size_t i = 0; i < out.payments.size(); ++i) {
        const std::uint32_t owner = out.owner_id[i];
        auto [it, inserted] = state.try_emplace(owner);
        OwnerState& owner_state = it->second;
        if (inserted) {
            const ledger::AccountID owner_account = out.payments.accounts.at(owner);
            owner_state.wallets.reserve(pool);
            for (std::size_t k = 0; k < pool; ++k) {
                const ledger::AccountID wallet = wallet_id(owner_account, k);
                owner_state.wallets.push_back(out.payments.accounts.intern(wallet));
                out.wallet_owner.emplace(wallet, owner_account);
            }
        }
        out.payments.sender_id[i] =
            owner_state.wallets[owner_state.cursor++ % pool];
    }

    for (const auto& [owner, owner_state] : state) {
        const std::size_t lines = trustlines_of(out.payments.accounts.at(owner));
        out.wallets_created += pool;
        out.trustlines_created += pool * lines;
        out.xrp_reserve_cost +=
            static_cast<double>(pool) * config.xrp_reserve_per_wallet +
            static_cast<double>(pool * lines) * config.xrp_reserve_per_trustline;
    }
    return out;
}

IgResult linked_information_gain(const RotatedColumns& rotated,
                                 const ResolutionConfig& config) {
    const std::vector<std::uint64_t> fingerprints =
        fingerprint_column(rotated.payments.view(), config);

    struct Bucket {
        std::uint32_t owner;
        bool multi = false;
    };
    std::unordered_map<std::uint64_t, Bucket> buckets;
    buckets.reserve(fingerprints.size());

    for (std::size_t i = 0; i < fingerprints.size(); ++i) {
        const std::uint32_t owner = rotated.owner_id[i];
        auto [it, inserted] =
            buckets.try_emplace(fingerprints[i], Bucket{owner, false});
        if (!inserted && it->second.owner != owner) it->second.multi = true;
    }

    IgResult result;
    result.total_payments = fingerprints.size();
    for (const std::uint64_t fp : fingerprints) {
        if (!buckets.at(fp).multi) ++result.uniquely_identified;
    }
    return result;
}

MitigationReport evaluate_wallet_rotation(
    const ledger::PaymentColumns& payments, const ResolutionConfig& resolution,
    const WalletRotationConfig& config,
    const std::function<std::size_t(const ledger::AccountID&)>& trustlines_of) {
    MitigationReport report;

    const Deanonymizer baseline(payments);
    report.baseline = baseline.information_gain(resolution);

    const RotatedColumns rotated =
        apply_wallet_rotation(payments, config, trustlines_of);
    const Deanonymizer after(rotated.payments);
    report.rotated = after.information_gain(resolution);
    report.linked = linked_information_gain(rotated, resolution);

    report.wallets_created = rotated.wallets_created;
    report.trustlines_created = rotated.trustlines_created;
    report.xrp_reserve_cost = rotated.xrp_reserve_cost;
    return report;
}

}  // namespace xrpl::core
