// Account clustering — the companion attack the paper cites.
//
// Moreno-Sanchez et al. [10] "cluster different, apparently
// non-correlated, Ripple accounts that are actually owned by the same
// entity". This module provides the machinery: a union-find over
// accounts, evidence feeders (activation/funding edges — the account
// that sent a wallet its first XRP — and explicit links), and a
// cluster-aware IG so the fingerprint study can be run at the ENTITY
// level rather than the address level. §V-B's wallet-rotation
// discussion is exactly the case where the two differ.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/deanonymizer.hpp"
#include "core/features.hpp"
#include "ledger/transaction.hpp"

namespace xrpl::core {

/// Union-find over account ids (path compression + union by size).
class AccountClusters {
public:
    /// Record evidence that `a` and `b` belong to the same entity.
    void link(const ledger::AccountID& a, const ledger::AccountID& b);

    /// Canonical representative of `account`'s cluster (the account
    /// itself when nothing links it).
    [[nodiscard]] ledger::AccountID representative(
        const ledger::AccountID& account) const;

    [[nodiscard]] bool same_cluster(const ledger::AccountID& a,
                                    const ledger::AccountID& b) const {
        return representative(a) == representative(b);
    }

    /// Number of accounts that appear in any link.
    [[nodiscard]] std::size_t tracked_accounts() const noexcept {
        return parent_.size();
    }

    /// Distinct clusters among the tracked accounts.
    [[nodiscard]] std::size_t cluster_count() const;

    /// All clusters of size >= min_size, each as its member list.
    [[nodiscard]] std::vector<std::vector<ledger::AccountID>> clusters(
        std::size_t min_size = 2) const;

private:
    ledger::AccountID find(const ledger::AccountID& account) const;

    // Mutable for path compression in const lookups.
    mutable std::unordered_map<ledger::AccountID, ledger::AccountID> parent_;
    std::unordered_map<ledger::AccountID, std::size_t> size_;
};

/// An activation edge: `funder` sent `account` its first XRP
/// (§App-D: the two mystery nodes were both "activated" by ~akhavr —
/// exactly the evidence this heuristic consumes).
struct ActivationEdge {
    ledger::AccountID funder;
    ledger::AccountID account;
};

/// Cluster accounts sharing an activator: every activated account is
/// linked to its funder's cluster.
[[nodiscard]] AccountClusters cluster_by_activation(
    std::span<const ActivationEdge> edges);

/// The IG computed at entity level: a fingerprint identifies when all
/// of its payments come from ONE cluster. With the identity map this
/// equals Deanonymizer::information_gain.
[[nodiscard]] IgResult clustered_information_gain(
    std::span<const ledger::TxRecord> records, const ResolutionConfig& config,
    const AccountClusters& clusters);

}  // namespace xrpl::core
