#include "core/features.hpp"

namespace xrpl::core {

std::string ResolutionConfig::label() const {
    std::string out = "<";
    out += amount ? std::string("A") + amount_resolution_label(*amount) : "-";
    out += "; ";
    out += time ? std::string("T") + util::resolution_label(*time) : "-";
    out += "; ";
    out += use_currency ? "C" : "-";
    out += "; ";
    out += use_destination ? "D" : "-";
    out += ">";
    return out;
}

ResolutionConfig full_resolution() {
    return ResolutionConfig{AmountResolution::kMax, util::TimeResolution::kSeconds,
                            true, true};
}

}  // namespace xrpl::core
