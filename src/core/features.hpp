// Feature tuples and resolution configurations (§V-A of the paper).
//
// Every payment yields the feature list ⟨A, T, C, D⟩ — amount,
// timestamp, currency, destination — plus the sender S that the
// attack tries to recover. A ResolutionConfig states, per feature,
// whether the attacker knows it and how precisely: amounts round per
// Table I, timestamps truncate to sec/min/hour/day, currency and
// destination are all-or-nothing ("their resolution is binary").
#pragma once

#include <optional>
#include <string>

#include "core/resolution.hpp"
#include "ledger/transaction.hpp"
#include "util/ripple_time.hpp"

namespace xrpl::core {

/// The attacker's knowledge about one payment.
struct ResolutionConfig {
    /// Amount resolution; nullopt = attacker ignores the amount.
    std::optional<AmountResolution> amount = AmountResolution::kMax;
    /// Timestamp resolution; nullopt = ignored.
    std::optional<util::TimeResolution> time = util::TimeResolution::kSeconds;
    bool use_currency = true;
    bool use_destination = true;

    /// The paper's notation, e.g. "<Am; Tsc; C; D>" or "<Al; Tdy; -; ->".
    [[nodiscard]] std::string label() const;
};

/// Convenience factories for the named configurations.
[[nodiscard]] ResolutionConfig full_resolution();

}  // namespace xrpl::core
