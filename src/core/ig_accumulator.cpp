#include "core/ig_accumulator.hpp"

#include <vector>

#include "obs/metrics.hpp"
#include "util/contract.hpp"

namespace xrpl::core {

IgPartial ig_map_chunk(ledger::PaymentView view, const FingerprintPlan& plan,
                       std::size_t begin, std::size_t end) {
    const ledger::PaymentColumns& columns = view.columns();
    const std::size_t offset = view.offset();
    const std::size_t n = end - begin;

    std::vector<std::uint64_t> fingerprints(n);
    plan.rows(offset + begin, offset + end, fingerprints.data());

    static obs::Counter& chunks = obs::counter("core.ig.chunks");
    static obs::Counter& rows = obs::counter("core.ig.rows");
    chunks.add();
    rows.add(n);

    IgPartial partial;
    partial.total_rows = n;
    partial.buckets.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t sender = columns.sender_id[offset + begin + i];
        auto [it, inserted] = partial.buckets.try_emplace(
            fingerprints[i], IgPartial::Bucket{sender, 1, false});
        if (!inserted) {
            ++it->second.rows;
            if (it->second.sender != sender) it->second.multi = true;
        }
    }
    return partial;
}

void ig_reduce(IgPartial& acc, IgPartial&& part) {
    static obs::Counter& merges = obs::counter("core.ig.merges");
    merges.add();
    if (acc.buckets.empty()) {
        acc.total_rows += part.total_rows;
        acc.buckets = std::move(part.buckets);
        return;
    }
    acc.total_rows += part.total_rows;
    for (auto& [fp, bucket] : part.buckets) {
        auto [it, inserted] = acc.buckets.try_emplace(fp, bucket);
        if (!inserted) {
            it->second.rows += bucket.rows;
            if (bucket.multi || it->second.sender != bucket.sender) {
                it->second.multi = true;
            }
        }
    }
}

IgResult ig_finalize(const IgPartial& merged) {
    IgResult result;
    result.total_payments = merged.total_rows;
    for (const auto& [fp, bucket] : merged.buckets) {
        if (!bucket.multi) result.uniquely_identified += bucket.rows;
    }
    // IG is a probability (Fig 3 plots it in [0, 1]): the uniquely
    // identified payments are a subset of all payments, and there are
    // at most as many fingerprint buckets as payments.
    XRPL_INVARIANT(result.uniquely_identified <= result.total_payments,
                   "IG numerator must be a subset of the payment count");
    XRPL_INVARIANT(merged.buckets.size() <= result.total_payments,
                   "fingerprint buckets cannot outnumber payments");
    return result;
}

}  // namespace xrpl::core
