#include "core/ig_study.hpp"

#include "core/ig_accumulator.hpp"
#include "exec/chunked_view.hpp"
#include "exec/thread_pool.hpp"
#include "obs/phase.hpp"
#include "util/contract.hpp"

namespace xrpl::core {

std::vector<ResolutionConfig> fig3_configurations() {
    using A = AmountResolution;
    using T = util::TimeResolution;
    const std::optional<A> no_amount;
    const std::optional<T> no_time;

    return {
        {A::kMax, T::kSeconds, true, true},    // <Am; Tsc; C; D>
        {A::kMax, T::kSeconds, false, true},   // <Am; Tsc; -; D>
        {A::kMax, T::kSeconds, true, false},   // <Am; Tsc; C; ->
        {no_amount, T::kSeconds, true, true},  // <-;  Tsc; C; D>
        {A::kHigh, T::kMinutes, true, true},   // <Ah; Tmn; C; D>
        {A::kAverage, T::kHours, true, true},  // <Aa; Thr; C; D>
        {A::kLow, T::kDays, true, true},       // <Al; Tdy; C; D>
        {A::kMax, no_time, true, true},        // <Am; -;   C; D>
        {A::kMax, no_time, false, false},      // <Am; -;   -; ->
        {A::kLow, T::kDays, false, false},     // <Al; Tdy; -; ->
    };
}

PaperReference fig3_paper_reference(std::size_t index) noexcept {
    // Exact values quoted in §V-B; approximate ones read off Fig 3.
    switch (index) {
        case 0: return {0.9983, true};   // "more than 99.83%"
        case 1: return {0.9983, true};   // "still ... 99.83%"
        case 2: return {0.9378, true};   // "decreases to 93.78%"
        case 3: return {0.8986, true};   // "drops to 89.86%"
        case 4: return {0.97, false};    // read off the figure
        case 5: return {0.88, false};    // read off the figure
        case 6: return {0.52, false};    // "slightly more than 50%"
        case 7: return {0.4884, true};   // "48.84%, less than a coin toss"
        case 8: return {0.30, false};    // read off the figure
        case 9: return {0.0128, true};   // "drops down to 1.28%"
        default: return {std::nullopt, false};
    }
}

namespace {

std::vector<IgStudyRow> attach_paper_references(std::vector<IgResult> results,
                                                const std::vector<ResolutionConfig>& configs) {
    std::vector<IgStudyRow> rows;
    rows.reserve(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        IgStudyRow row;
        row.config = configs[i];
        row.result = results[i];
        const PaperReference reference = fig3_paper_reference(i);
        row.paper_value = reference.value;
        row.paper_value_exact = reference.exact;
        rows.push_back(std::move(row));
    }
    return rows;
}

}  // namespace

std::vector<IgStudyRow> run_ig_study(std::span<const ledger::TxRecord> records) {
    const Deanonymizer deanonymizer(records);
    const std::vector<ResolutionConfig> configs = fig3_configurations();
    std::vector<IgResult> results;
    results.reserve(configs.size());
    for (const ResolutionConfig& config : configs) {
        results.push_back(deanonymizer.information_gain(config));
    }
    return attach_paper_references(std::move(results), configs);
}

std::vector<IgStudyRow> run_ig_study(const ledger::PaymentColumns& payments) {
    return run_ig_study(payments.view());
}

std::vector<IgStudyRow> run_ig_study(ledger::PaymentView view) {
    const obs::Phase phase("core.ig_study");
    // The whole study is one flat (configuration x chunk) task grid:
    // chunks parallelize within a configuration, configurations
    // parallelize against each other, and the pool load-balances
    // across both dimensions at once — no per-config barrier. The
    // per-config fingerprint plans are built up front (cheap: one
    // pass over the two dictionary tables each) and shared read-only
    // by every chunk task of that configuration.
    const std::vector<ResolutionConfig> configs = fig3_configurations();
    const exec::ChunkedView chunks(view);
    const std::size_t k = chunks.chunk_count();

    std::vector<FingerprintPlan> plans;
    plans.reserve(configs.size());
    for (const ResolutionConfig& config : configs) {
        plans.emplace_back(view.columns(), config);
    }

    std::vector<std::vector<IgPartial>> partials(configs.size());
    for (std::vector<IgPartial>& per_config : partials) per_config.resize(k);
    exec::ThreadPool::shared().run(configs.size() * k, [&](std::size_t t) {
        const std::size_t config = t / k;
        const std::size_t chunk = t % k;
        const exec::ChunkedView::Bounds b = chunks.bounds(chunk);
        partials[config][chunk] = ig_map_chunk(view, plans[config], b.begin, b.end);
    });

    // Per-configuration ordered folds, themselves parallel across
    // configurations (each fold is independent, and within one
    // configuration partials merge strictly in chunk order).
    std::vector<IgResult> results(configs.size());
    exec::ThreadPool::shared().run(configs.size(), [&](std::size_t config) {
        IgPartial merged;
        std::size_t folded = 0;
        for (std::size_t c = 0; c < k; ++c) {
            XRPL_INVARIANT(folded == c, "partials must merge in chunk order");
            ig_reduce(merged, std::move(partials[config][c]));
            ++folded;
        }
        results[config] = ig_finalize(merged);
    });
    return attach_paper_references(std::move(results), configs);
}

}  // namespace xrpl::core
