#include "core/ig_study.hpp"

namespace xrpl::core {

std::vector<ResolutionConfig> fig3_configurations() {
    using A = AmountResolution;
    using T = util::TimeResolution;
    const std::optional<A> no_amount;
    const std::optional<T> no_time;

    return {
        {A::kMax, T::kSeconds, true, true},    // <Am; Tsc; C; D>
        {A::kMax, T::kSeconds, false, true},   // <Am; Tsc; -; D>
        {A::kMax, T::kSeconds, true, false},   // <Am; Tsc; C; ->
        {no_amount, T::kSeconds, true, true},  // <-;  Tsc; C; D>
        {A::kHigh, T::kMinutes, true, true},   // <Ah; Tmn; C; D>
        {A::kAverage, T::kHours, true, true},  // <Aa; Thr; C; D>
        {A::kLow, T::kDays, true, true},       // <Al; Tdy; C; D>
        {A::kMax, no_time, true, true},        // <Am; -;   C; D>
        {A::kMax, no_time, false, false},      // <Am; -;   -; ->
        {A::kLow, T::kDays, false, false},     // <Al; Tdy; -; ->
    };
}

PaperReference fig3_paper_reference(std::size_t index) noexcept {
    // Exact values quoted in §V-B; approximate ones read off Fig 3.
    switch (index) {
        case 0: return {0.9983, true};   // "more than 99.83%"
        case 1: return {0.9983, true};   // "still ... 99.83%"
        case 2: return {0.9378, true};   // "decreases to 93.78%"
        case 3: return {0.8986, true};   // "drops to 89.86%"
        case 4: return {0.97, false};    // read off the figure
        case 5: return {0.88, false};    // read off the figure
        case 6: return {0.52, false};    // "slightly more than 50%"
        case 7: return {0.4884, true};   // "48.84%, less than a coin toss"
        case 8: return {0.30, false};    // read off the figure
        case 9: return {0.0128, true};   // "drops down to 1.28%"
        default: return {std::nullopt, false};
    }
}

namespace {

std::vector<IgStudyRow> run_study(const Deanonymizer& deanonymizer) {
    std::vector<IgStudyRow> rows;
    const std::vector<ResolutionConfig> configs = fig3_configurations();
    rows.reserve(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
        IgStudyRow row;
        row.config = configs[i];
        row.result = deanonymizer.information_gain(configs[i]);
        const PaperReference reference = fig3_paper_reference(i);
        row.paper_value = reference.value;
        row.paper_value_exact = reference.exact;
        rows.push_back(std::move(row));
    }
    return rows;
}

}  // namespace

std::vector<IgStudyRow> run_ig_study(std::span<const ledger::TxRecord> records) {
    return run_study(Deanonymizer(records));
}

std::vector<IgStudyRow> run_ig_study(const ledger::PaymentColumns& payments) {
    return run_study(Deanonymizer(payments));
}

std::vector<IgStudyRow> run_ig_study(ledger::PaymentView view) {
    return run_study(Deanonymizer(view));
}

}  // namespace xrpl::core
