// Anonymity-set analysis — an extension of the paper's IG metric.
//
// IG only asks whether a fingerprint pins down ONE sender. The
// natural refinement (following de Montjoye et al., the credit-card
// unicity study the paper builds on) is the full distribution of
// anonymity-set sizes: for each payment, how many distinct senders
// share its fingerprint? A payment with anonymity set 2 is barely
// safer than one with set 1 — a fact Fig 3's single percentage hides.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "core/features.hpp"
#include "ledger/payment_columns.hpp"
#include "ledger/transaction.hpp"

namespace xrpl::core {

/// Distribution of anonymity-set sizes under one resolution config.
class AnonymityProfile {
public:
    /// set_size -> number of payments whose fingerprint is shared by
    /// exactly that many distinct senders.
    [[nodiscard]] const std::map<std::uint32_t, std::uint64_t>& histogram()
        const noexcept {
        return histogram_;
    }

    [[nodiscard]] std::uint64_t total_payments() const noexcept { return total_; }

    /// Fraction of payments with anonymity set <= k ("k-identifiable").
    /// k = 1 equals the paper's IG.
    [[nodiscard]] double identifiable_within(std::uint32_t k) const noexcept;

    /// Mean anonymity-set size (payment-weighted).
    [[nodiscard]] double mean_set_size() const noexcept;

    /// Smallest k covering at least `fraction` of payments.
    [[nodiscard]] std::uint32_t set_size_quantile(double fraction) const noexcept;

    void add(std::uint32_t set_size, std::uint64_t payments);

private:
    std::map<std::uint32_t, std::uint64_t> histogram_;
    std::uint64_t total_ = 0;
};

/// Analyze the whole history under `config`.
[[nodiscard]] AnonymityProfile analyze_anonymity(
    std::span<const ledger::TxRecord> records, const ResolutionConfig& config);

/// Column-native overload: identical profile, computed from one
/// batched fingerprint pass with interned u32 sender sets.
[[nodiscard]] AnonymityProfile analyze_anonymity(ledger::PaymentView view,
                                                 const ResolutionConfig& config);

}  // namespace xrpl::core
