#include "core/deanonymizer.hpp"

#include <algorithm>

namespace xrpl::core {

namespace {
const std::vector<std::uint32_t> kNoMatches;
}  // namespace

IgResult Deanonymizer::information_gain(const ResolutionConfig& config) const {
    // fingerprint -> (first sender seen, is-multi-sender flag)
    struct Bucket {
        ledger::AccountID sender;
        bool multi = false;
    };
    std::unordered_map<std::uint64_t, Bucket> buckets;
    buckets.reserve(records_.size());

    for (const ledger::TxRecord& record : records_) {
        const std::uint64_t fp = fingerprint(record, config);
        auto [it, inserted] = buckets.try_emplace(fp, Bucket{record.sender, false});
        if (!inserted && !(it->second.sender == record.sender)) {
            it->second.multi = true;
        }
    }

    IgResult result;
    result.total_payments = records_.size();
    for (const ledger::TxRecord& record : records_) {
        const std::uint64_t fp = fingerprint(record, config);
        if (!buckets.at(fp).multi) ++result.uniquely_identified;
    }
    return result;
}

std::vector<ledger::AccountID> Deanonymizer::attack(
    const ledger::TxRecord& observation, const ResolutionConfig& config) const {
    const std::uint64_t fp = fingerprint(observation, config);
    std::vector<ledger::AccountID> senders;
    for (const ledger::TxRecord& record : records_) {
        if (fingerprint(record, config) != fp) continue;
        if (std::find(senders.begin(), senders.end(), record.sender) ==
            senders.end()) {
            senders.push_back(record.sender);
        }
    }
    return senders;
}

std::vector<ledger::TxRecord> Deanonymizer::history_of(
    const ledger::AccountID& account) const {
    std::vector<ledger::TxRecord> history;
    for (const ledger::TxRecord& record : records_) {
        if (record.sender == account) history.push_back(record);
    }
    return history;
}

AttackIndex::AttackIndex(std::span<const ledger::TxRecord> records,
                         ResolutionConfig config)
    : records_(records), config_(config) {
    index_.reserve(records.size());
    for (std::uint32_t i = 0; i < records.size(); ++i) {
        index_[fingerprint(records[i], config_)].push_back(i);
    }
}

const std::vector<std::uint32_t>& AttackIndex::matches(
    const ledger::TxRecord& observation) const {
    const auto it = index_.find(fingerprint(observation, config_));
    return it == index_.end() ? kNoMatches : it->second;
}

std::vector<ledger::AccountID> AttackIndex::candidate_senders(
    const ledger::TxRecord& observation) const {
    std::vector<ledger::AccountID> senders;
    for (const std::uint32_t i : matches(observation)) {
        const ledger::AccountID& sender = records_[i].sender;
        if (std::find(senders.begin(), senders.end(), sender) == senders.end()) {
            senders.push_back(sender);
        }
    }
    return senders;
}

}  // namespace xrpl::core
