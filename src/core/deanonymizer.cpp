#include "core/deanonymizer.hpp"

#include <algorithm>
#include <unordered_set>

#include "core/ig_accumulator.hpp"
#include "exec/chunked_view.hpp"
#include "exec/parallel.hpp"
#include "util/contract.hpp"

namespace xrpl::core {

namespace {
const std::vector<std::uint32_t> kNoMatches;
}  // namespace

IgResult Deanonymizer::information_gain(const ResolutionConfig& config) const {
    return view_ ? information_gain_columns(config) : information_gain_rows(config);
}

IgResult Deanonymizer::information_gain_rows(const ResolutionConfig& config) const {
    // fingerprint -> (first sender seen, is-multi-sender flag)
    struct Bucket {
        ledger::AccountID sender;
        bool multi = false;
    };
    std::unordered_map<std::uint64_t, Bucket> buckets;
    buckets.reserve(records_.size());

    for (const ledger::TxRecord& record : records_) {
        const std::uint64_t fp = fingerprint(record, config);
        auto [it, inserted] = buckets.try_emplace(fp, Bucket{record.sender, false});
        if (!inserted && !(it->second.sender == record.sender)) {
            it->second.multi = true;
        }
    }

    IgResult result;
    result.total_payments = records_.size();
    for (const ledger::TxRecord& record : records_) {
        const std::uint64_t fp = fingerprint(record, config);
        if (!buckets.at(fp).multi) ++result.uniquely_identified;
    }
    return result;
}

IgResult Deanonymizer::information_gain_columns(
    const ResolutionConfig& config) const {
    // Chunk-parallel map (fingerprint + bucket each chunk on the
    // pool), then the ordered associative merge — identical counts for
    // every thread count; see ig_accumulator.hpp.
    const FingerprintPlan plan(view_->columns(), config);
    const exec::ChunkedView chunks(*view_);
    const IgPartial merged = exec::map_reduce<IgPartial>(
        chunks.chunk_count(),
        [&](std::size_t c) {
            const exec::ChunkedView::Bounds b = chunks.bounds(c);
            return ig_map_chunk(*view_, plan, b.begin, b.end);
        },
        [](IgPartial& acc, IgPartial&& part) {
            ig_reduce(acc, std::move(part));
        });
    return ig_finalize(merged);
}

std::vector<ledger::AccountID> Deanonymizer::attack(
    const ledger::TxRecord& observation, const ResolutionConfig& config) const {
    const std::uint64_t fp = fingerprint(observation, config);
    std::vector<ledger::AccountID> senders;

    if (view_) {
        const std::vector<std::uint64_t> fingerprints =
            fingerprint_column(*view_, config);
        const ledger::PaymentColumns& columns = view_->columns();
        const std::size_t offset = view_->offset();
        std::unordered_set<std::uint32_t> seen;
        for (std::size_t i = 0; i < fingerprints.size(); ++i) {
            if (fingerprints[i] != fp) continue;
            const std::uint32_t sender = columns.sender_id[offset + i];
            if (seen.insert(sender).second) {
                senders.push_back(columns.accounts.at(sender));
            }
        }
        return senders;
    }

    for (const ledger::TxRecord& record : records_) {
        if (fingerprint(record, config) != fp) continue;
        if (std::find(senders.begin(), senders.end(), record.sender) ==
            senders.end()) {
            senders.push_back(record.sender);
        }
    }
    return senders;
}

std::vector<ledger::TxRecord> Deanonymizer::history_of(
    const ledger::AccountID& account) const {
    std::vector<ledger::TxRecord> history;

    if (view_) {
        const ledger::PaymentColumns& columns = view_->columns();
        const std::optional<std::uint32_t> id = columns.accounts.find(account);
        if (!id) return history;
        const std::size_t offset = view_->offset();
        for (std::size_t i = 0; i < view_->size(); ++i) {
            if (columns.sender_id[offset + i] == *id) {
                history.push_back(columns.row(offset + i));
            }
        }
        return history;
    }

    for (const ledger::TxRecord& record : records_) {
        if (record.sender == account) history.push_back(record);
    }
    return history;
}

AttackIndex::AttackIndex(std::span<const ledger::TxRecord> records,
                         ResolutionConfig config)
    : records_(records), config_(config) {
    index_.reserve(records.size());
    for (std::uint32_t i = 0; i < records.size(); ++i) {
        index_[fingerprint(records[i], config_)].push_back(i);
    }
}

AttackIndex::AttackIndex(const ledger::PaymentColumns& payments,
                         ResolutionConfig config)
    : AttackIndex(payments.view(), config) {}

AttackIndex::AttackIndex(ledger::PaymentView view, ResolutionConfig config)
    : view_(view), config_(config) {
    // Chunk-local fingerprint->rows maps, appended in chunk order:
    // chunk c's row indices all precede chunk c+1's, so every bucket
    // comes out ascending — byte-identical to the serial build.
    const FingerprintPlan plan(view.columns(), config_);
    const exec::ChunkedView chunks(view);
    using PartialIndex =
        std::unordered_map<std::uint64_t, std::vector<std::uint32_t>>;
    index_ = exec::map_reduce<PartialIndex>(
        chunks.chunk_count(),
        [&](std::size_t c) {
            const exec::ChunkedView::Bounds b = chunks.bounds(c);
            const std::size_t n = b.end - b.begin;
            std::vector<std::uint64_t> fingerprints(n);
            plan.rows(view.offset() + b.begin, view.offset() + b.end,
                      fingerprints.data());
            PartialIndex local;
            local.reserve(n);
            for (std::size_t i = 0; i < n; ++i) {
                local[fingerprints[i]].push_back(
                    static_cast<std::uint32_t>(b.begin + i));
            }
            return local;
        },
        [](PartialIndex& acc, PartialIndex&& part) {
            if (acc.empty()) {
                acc = std::move(part);
                return;
            }
            for (auto& [fp, rows] : part) {
                std::vector<std::uint32_t>& bucket = acc[fp];
                bucket.insert(bucket.end(), rows.begin(), rows.end());
            }
        });
#if XRPL_CONTRACTS_ENABLED
    // Bucket consistency: the buckets partition the record range —
    // every record indexed exactly once, every stored index in range.
    // O(n) sweep, so contract builds only.
    std::size_t indexed = 0;
    for (const auto& [fp, rows] : index_) {
        indexed += rows.size();
        for (const std::uint32_t row : rows) {
            XRPL_INVARIANT(row < view.size(),
                           "attack-index buckets must reference real records");
        }
    }
    XRPL_INVARIANT(indexed == view.size(),
                   "attack-index buckets must partition the record range");
#endif
}

const ledger::AccountID& AttackIndex::sender_of(std::uint32_t i) const noexcept {
    if (view_) {
        const ledger::PaymentColumns& columns = view_->columns();
        return columns.accounts.at(columns.sender_id[view_->offset() + i]);
    }
    return records_[i].sender;
}

const std::vector<std::uint32_t>& AttackIndex::matches(
    const ledger::TxRecord& observation) const {
    const auto it = index_.find(fingerprint(observation, config_));
    return it == index_.end() ? kNoMatches : it->second;
}

std::vector<ledger::AccountID> AttackIndex::candidate_senders(
    const ledger::TxRecord& observation) const {
    std::vector<ledger::AccountID> senders;
    for (const std::uint32_t i : matches(observation)) {
        const ledger::AccountID& sender = sender_of(i);
        if (std::find(senders.begin(), senders.end(), sender) == senders.end()) {
            senders.push_back(sender);
        }
    }
    return senders;
}

}  // namespace xrpl::core
