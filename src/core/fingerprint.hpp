// Transaction fingerprints.
//
// A fingerprint is the hash of the feature subset an attacker knows,
// each feature coarsened to its configured resolution. Two payments
// with equal fingerprints are indistinguishable to that attacker;
// the sender is "uniquely identified" when every payment sharing a
// fingerprint has the same sender (§V-B).
#pragma once

#include <cstdint>

#include "core/features.hpp"
#include "ledger/transaction.hpp"

namespace xrpl::core {

/// 64-bit mixing hash (xxhash-style avalanche); collision probability
/// over a few million fingerprints is negligible (~1e-7).
class FingerprintHasher {
public:
    void mix(std::uint64_t value) noexcept;
    [[nodiscard]] std::uint64_t digest() const noexcept { return state_; }

private:
    std::uint64_t state_ = 0x9e3779b97f4a7c15ULL;
};

/// Fingerprint of `record` under `config`. The sender field is never
/// part of the fingerprint — it is what the attacker wants to learn.
[[nodiscard]] std::uint64_t fingerprint(const ledger::TxRecord& record,
                                        const ResolutionConfig& config) noexcept;

}  // namespace xrpl::core
