// Transaction fingerprints.
//
// A fingerprint is the hash of the feature subset an attacker knows,
// each feature coarsened to its configured resolution. Two payments
// with equal fingerprints are indistinguishable to that attacker;
// the sender is "uniquely identified" when every payment sharing a
// fingerprint has the same sender (§V-B).
//
// Every field mixes under its own 64-bit domain tag (amount, time,
// currency, destination all distinct), so fingerprints built from
// different feature subsets — e.g. ⟨A,−,−,−⟩ vs ⟨−,T,−,−⟩ — can never
// collide structurally, only through (negligible) hash accident.
//
// Two evaluation paths produce bit-identical fingerprints:
//  * fingerprint(record, config): one row at a time (legacy callers).
//  * fingerprint_column(view, config): the whole history in one pass
//    over the columnar store, with per-column precomputation — each
//    distinct account is folded to its hash word once, each currency
//    resolves its code word and Table I rounding unit once, and the
//    per-row loop touches only dense columns.
#pragma once

#include <cstdint>
#include <vector>

#include "core/features.hpp"
#include "core/resolution.hpp"
#include "ledger/payment_columns.hpp"
#include "ledger/transaction.hpp"

namespace xrpl::core {

/// 64-bit mixing hash (xxhash-style avalanche); collision probability
/// over a few million fingerprints is negligible (~1e-7).
class FingerprintHasher {
public:
    void mix(std::uint64_t value) noexcept;
    [[nodiscard]] std::uint64_t digest() const noexcept { return state_; }

private:
    std::uint64_t state_ = 0x9e3779b97f4a7c15ULL;
};

/// Fingerprint of `record` under `config`. The sender field is never
/// part of the fingerprint — it is what the attacker wants to learn.
[[nodiscard]] std::uint64_t fingerprint(const ledger::TxRecord& record,
                                        const ResolutionConfig& config) noexcept;

/// Fingerprints of every payment in `view`, in row order. Bit-identical
/// to calling fingerprint() on each reconstructed row, but computed
/// column-wise with interner-table precomputation, chunk-parallel on
/// the shared pool (each chunk writes its own disjoint output slots,
/// so the result is thread-count independent by construction).
[[nodiscard]] std::vector<std::uint64_t> fingerprint_column(
    const ledger::PaymentView& view, const ResolutionConfig& config);

/// The precomputed per-configuration context fingerprint_column
/// amortizes: destination hash words (each distinct account folded
/// once) and per-currency code word + Table I rounding unit. Built
/// once per (store, config); rows() then fingerprints any absolute
/// row range — the chunk-parallel runtime calls it per chunk, and the
/// ten-configuration IG study shares one plan per configuration
/// across all of its chunk tasks.
class FingerprintPlan {
public:
    FingerprintPlan(const ledger::PaymentColumns& columns,
                    const ResolutionConfig& config);

    /// Fingerprints of rows [begin, end) of the store (absolute row
    /// indices) into out[0 .. end-begin). Read-only on the store and
    /// the plan: safe to call concurrently.
    void rows(std::size_t begin, std::size_t end, std::uint64_t* out) const;

    [[nodiscard]] const ResolutionConfig& config() const noexcept {
        return config_;
    }

private:
    struct CurrencyContext {
        std::uint64_t word = 0;  // code word ^ kCurrencyDomain
        RoundingUnit unit;       // Table I unit (amount configs only)
    };

    const ledger::PaymentColumns* columns_;
    ResolutionConfig config_;
    std::vector<std::uint64_t> dest_words_;  // tagged, by interned account id
    std::vector<CurrencyContext> currency_context_;  // by interned currency id
};

}  // namespace xrpl::core
