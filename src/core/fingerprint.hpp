// Transaction fingerprints.
//
// A fingerprint is the hash of the feature subset an attacker knows,
// each feature coarsened to its configured resolution. Two payments
// with equal fingerprints are indistinguishable to that attacker;
// the sender is "uniquely identified" when every payment sharing a
// fingerprint has the same sender (§V-B).
//
// Every field mixes under its own 64-bit domain tag (amount, time,
// currency, destination all distinct), so fingerprints built from
// different feature subsets — e.g. ⟨A,−,−,−⟩ vs ⟨−,T,−,−⟩ — can never
// collide structurally, only through (negligible) hash accident.
//
// Two evaluation paths produce bit-identical fingerprints:
//  * fingerprint(record, config): one row at a time (legacy callers).
//  * fingerprint_column(view, config): the whole history in one pass
//    over the columnar store, with per-column precomputation — each
//    distinct account is folded to its hash word once, each currency
//    resolves its code word and Table I rounding unit once, and the
//    per-row loop touches only dense columns.
#pragma once

#include <cstdint>
#include <vector>

#include "core/features.hpp"
#include "ledger/payment_columns.hpp"
#include "ledger/transaction.hpp"

namespace xrpl::core {

/// 64-bit mixing hash (xxhash-style avalanche); collision probability
/// over a few million fingerprints is negligible (~1e-7).
class FingerprintHasher {
public:
    void mix(std::uint64_t value) noexcept;
    [[nodiscard]] std::uint64_t digest() const noexcept { return state_; }

private:
    std::uint64_t state_ = 0x9e3779b97f4a7c15ULL;
};

/// Fingerprint of `record` under `config`. The sender field is never
/// part of the fingerprint — it is what the attacker wants to learn.
[[nodiscard]] std::uint64_t fingerprint(const ledger::TxRecord& record,
                                        const ResolutionConfig& config) noexcept;

/// Fingerprints of every payment in `view`, in row order. Bit-identical
/// to calling fingerprint() on each reconstructed row, but computed
/// column-wise with interner-table precomputation.
[[nodiscard]] std::vector<std::uint64_t> fingerprint_column(
    const ledger::PaymentView& view, const ResolutionConfig& config);

}  // namespace xrpl::core
