// Wallet-rotation countermeasure — the defence §V-B discusses and
// dismisses, implemented so its failure can be measured.
//
// "A possible solution is to create multiple Bitcoin wallets unique
// to every single transaction ... a similar approach is difficult to
// achieve in Ripple due to its underlying trust backbone — every new
// wallet would need to create enough new trustlines ... This makes
// the bootstrapping very complex and expensive ... possibly allowing
// the different wallets to be linked back together."
//
// This module (1) rewrites a history so every sender rotates across k
// wallets, (2) prices the bootstrap (trust lines and XRP reserves per
// wallet), and (3) runs the linkage attack the paper anticipates:
// wallets are clustered by the account that activated them (the
// Moreno-Sanchez et al. heuristic the paper cites), which collapses
// the defence entirely.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/anonymity.hpp"
#include "core/deanonymizer.hpp"
#include "core/features.hpp"
#include "ledger/payment_columns.hpp"
#include "ledger/transaction.hpp"

namespace xrpl::core {

struct WalletRotationConfig {
    /// Wallets each sender rotates across (1 disables the defence).
    std::size_t wallets_per_sender = 4;
    /// XRP locked per activated account (the 2015-era base reserve).
    double xrp_reserve_per_wallet = 20.0;
    /// XRP locked per trust line the wallet must re-create.
    double xrp_reserve_per_trustline = 5.0;
};

/// Outcome of rewriting a history under wallet rotation.
struct RotatedHistory {
    std::vector<ledger::TxRecord> records;
    /// Ground truth (and exactly what the linkage attack recovers):
    /// wallet -> owner.
    std::unordered_map<ledger::AccountID, ledger::AccountID> wallet_owner;
    std::uint64_t wallets_created = 0;
    std::uint64_t trustlines_created = 0;
    double xrp_reserve_cost = 0.0;
};

/// Rewrite `records` so each sender's payments are spread across its
/// wallet pool. `trustlines_of` reports how many trust lines an owner
/// holds (each wallet must re-create them to be able to pay at all).
[[nodiscard]] RotatedHistory apply_wallet_rotation(
    std::span<const ledger::TxRecord> records, const WalletRotationConfig& config,
    const std::function<std::size_t(const ledger::AccountID&)>& trustlines_of);

/// IG over a rotated history after the activation-linkage attack:
/// every wallet is mapped back to the cluster of its activator, so a
/// fingerprint is "unique" when all its payments come from ONE
/// cluster. With perfect linkage this equals the original IG.
[[nodiscard]] IgResult linked_information_gain(const RotatedHistory& rotated,
                                               const ResolutionConfig& config);

/// Columnar counterpart of RotatedHistory: the rotated payments stay
/// in columnar form (wallet accounts appended to the interner, the
/// sender column remapped) and the ground-truth owner of each payment
/// rides along as a parallel column of interned ids.
struct RotatedColumns {
    ledger::PaymentColumns payments;
    /// Per payment: interned id (in payments.accounts) of the owner.
    std::vector<std::uint32_t> owner_id;
    std::unordered_map<ledger::AccountID, ledger::AccountID> wallet_owner;
    std::uint64_t wallets_created = 0;
    std::uint64_t trustlines_created = 0;
    double xrp_reserve_cost = 0.0;
};

/// Column-native rotation: derives each owner's wallet pool once (the
/// row path re-derives the wallet id per payment) and rewrites only
/// the sender column.
[[nodiscard]] RotatedColumns apply_wallet_rotation(
    const ledger::PaymentColumns& payments, const WalletRotationConfig& config,
    const std::function<std::size_t(const ledger::AccountID&)>& trustlines_of);

[[nodiscard]] IgResult linked_information_gain(const RotatedColumns& rotated,
                                               const ResolutionConfig& config);

/// The full before/after/linked comparison for one resolution config.
struct MitigationReport {
    IgResult baseline;        // original history
    IgResult rotated;         // after wallet rotation
    IgResult linked;          // after the linkage attack
    std::uint64_t wallets_created = 0;
    std::uint64_t trustlines_created = 0;
    double xrp_reserve_cost = 0.0;
};

[[nodiscard]] MitigationReport evaluate_wallet_rotation(
    std::span<const ledger::TxRecord> records, const ResolutionConfig& resolution,
    const WalletRotationConfig& config,
    const std::function<std::size_t(const ledger::AccountID&)>& trustlines_of);

/// Column-native evaluation; same report, one batched fingerprint
/// pass per IG instead of two row scans each.
[[nodiscard]] MitigationReport evaluate_wallet_rotation(
    const ledger::PaymentColumns& payments, const ResolutionConfig& resolution,
    const WalletRotationConfig& config,
    const std::function<std::size_t(const ledger::AccountID&)>& trustlines_of);

}  // namespace xrpl::core
