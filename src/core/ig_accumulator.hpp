// Chunk-local information-gain accumulation — the map/reduce halves
// that Deanonymizer::information_gain (one configuration) and
// run_ig_study (the ten-configuration Fig 3 grid) both scan through.
//
// A partial buckets one chunk's payments by fingerprint, remembering
// per bucket the first interned sender seen, the number of rows, and
// whether a second distinct sender ever shared the fingerprint.
// The merge is associative over ADJACENT chunks (the earlier chunk's
// representative sender survives), so folding partials in chunk order
// — exec::map_reduce's contract — reproduces the serial left-to-right
// scan exactly, for every thread count.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/deanonymizer.hpp"
#include "core/fingerprint.hpp"
#include "ledger/payment_columns.hpp"

namespace xrpl::core {

/// Fingerprint buckets of one chunk (or of a prefix of merged chunks).
struct IgPartial {
    struct Bucket {
        std::uint32_t sender = 0;   // first interned sender seen
        std::uint64_t rows = 0;     // payments sharing the fingerprint
        bool multi = false;         // a second distinct sender appeared
    };
    std::unordered_map<std::uint64_t, Bucket> buckets;
    std::uint64_t total_rows = 0;
};

/// Bucket rows [begin, end) of `view` (view-relative indices) under
/// `plan`. Read-only on the store and plan: chunk tasks run it
/// concurrently.
[[nodiscard]] IgPartial ig_map_chunk(ledger::PaymentView view,
                                     const FingerprintPlan& plan,
                                     std::size_t begin, std::size_t end);

/// Ordered associative merge: fold `part` (the LATER chunk) into
/// `acc`. Buckets in both keep acc's representative sender and turn
/// multi when the representatives differ.
void ig_reduce(IgPartial& acc, IgPartial&& part);

/// The Fig 3 counts from fully merged buckets: every payment in a
/// single-sender bucket is uniquely identified.
[[nodiscard]] IgResult ig_finalize(const IgPartial& merged);

}  // namespace xrpl::core
