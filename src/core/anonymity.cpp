#include "core/anonymity.hpp"

#include <unordered_map>
#include <unordered_set>

#include "core/fingerprint.hpp"

namespace xrpl::core {

void AnonymityProfile::add(std::uint32_t set_size, std::uint64_t payments) {
    histogram_[set_size] += payments;
    total_ += payments;
}

double AnonymityProfile::identifiable_within(std::uint32_t k) const noexcept {
    if (total_ == 0) return 0.0;
    std::uint64_t covered = 0;
    for (const auto& [size, payments] : histogram_) {
        if (size > k) break;
        covered += payments;
    }
    return static_cast<double>(covered) / static_cast<double>(total_);
}

double AnonymityProfile::mean_set_size() const noexcept {
    if (total_ == 0) return 0.0;
    double weighted = 0.0;
    for (const auto& [size, payments] : histogram_) {
        weighted += static_cast<double>(size) * static_cast<double>(payments);
    }
    return weighted / static_cast<double>(total_);
}

std::uint32_t AnonymityProfile::set_size_quantile(double fraction) const noexcept {
    if (total_ == 0) return 0;
    const auto threshold = static_cast<std::uint64_t>(
        fraction * static_cast<double>(total_));
    std::uint64_t covered = 0;
    for (const auto& [size, payments] : histogram_) {
        covered += payments;
        if (covered >= threshold) return size;
    }
    return histogram_.empty() ? 0 : histogram_.rbegin()->first;
}

AnonymityProfile analyze_anonymity(std::span<const ledger::TxRecord> records,
                                   const ResolutionConfig& config) {
    // fingerprint -> (payment count, distinct senders).
    struct Bucket {
        std::uint64_t payments = 0;
        std::unordered_set<ledger::AccountID> senders;
    };
    std::unordered_map<std::uint64_t, Bucket> buckets;
    buckets.reserve(records.size());
    for (const ledger::TxRecord& record : records) {
        Bucket& bucket = buckets[fingerprint(record, config)];
        ++bucket.payments;
        bucket.senders.insert(record.sender);
    }

    AnonymityProfile profile;
    for (const auto& [fp, bucket] : buckets) {
        profile.add(static_cast<std::uint32_t>(bucket.senders.size()),
                    bucket.payments);
    }
    return profile;
}

AnonymityProfile analyze_anonymity(ledger::PaymentView view,
                                   const ResolutionConfig& config) {
    const std::vector<std::uint64_t> fingerprints = fingerprint_column(view, config);
    const ledger::PaymentColumns& columns = view.columns();
    const std::size_t offset = view.offset();

    struct Bucket {
        std::uint64_t payments = 0;
        std::unordered_set<std::uint32_t> senders;
    };
    std::unordered_map<std::uint64_t, Bucket> buckets;
    buckets.reserve(fingerprints.size());
    for (std::size_t i = 0; i < fingerprints.size(); ++i) {
        Bucket& bucket = buckets[fingerprints[i]];
        ++bucket.payments;
        bucket.senders.insert(columns.sender_id[offset + i]);
    }

    AnonymityProfile profile;
    for (const auto& [fp, bucket] : buckets) {
        profile.add(static_cast<std::uint32_t>(bucket.senders.size()),
                    bucket.payments);
    }
    return profile;
}

}  // namespace xrpl::core
