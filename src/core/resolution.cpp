#include "core/resolution.hpp"

#include <array>
#include <string_view>

namespace xrpl::core {

namespace {

constexpr std::array<std::string_view, 4> kPowerful = {"BTC", "XAG", "XAU", "XPT"};
constexpr std::array<std::string_view, 6> kMedium = {"CNY", "EUR", "USD",
                                                     "AUD", "GBP", "JPY"};
constexpr std::array<std::string_view, 5> kWeak = {"XRP", "CCK", "STR", "KRW", "MTL"};

bool in_group(ledger::Currency c, const auto& group) noexcept {
    const std::array<char, 3>& code = c.code;
    for (const std::string_view name : group) {
        if (code[0] == name[0] && code[1] == name[1] && code[2] == name[2]) {
            return true;
        }
    }
    return false;
}

}  // namespace

Strength strength_of(ledger::Currency currency) noexcept {
    if (in_group(currency, kPowerful)) return Strength::kPowerful;
    if (in_group(currency, kWeak)) return Strength::kWeak;
    if (in_group(currency, kMedium)) return Strength::kMedium;
    // Unlisted currencies: the paper groups "currencies with similar
    // market strength"; without a quote we default to Medium.
    return Strength::kMedium;
}

int base_power(Strength strength) noexcept {
    switch (strength) {
        case Strength::kPowerful: return -3;
        case Strength::kMedium: return 1;
        case Strength::kWeak: return 5;
    }
    return 1;
}

const char* amount_resolution_label(AmountResolution res) noexcept {
    switch (res) {
        case AmountResolution::kMax: return "m";
        case AmountResolution::kHigh: return "h";
        case AmountResolution::kAverage: return "a";
        case AmountResolution::kLow: return "l";
    }
    return "?";
}

RoundingUnit rounding_unit(ledger::Currency currency,
                           AmountResolution resolution) noexcept {
    const int p0 = base_power(strength_of(currency));
    switch (resolution) {
        case AmountResolution::kMax: return {1, p0};
        case AmountResolution::kHigh: return {5, p0};
        case AmountResolution::kAverage: return {1, p0 + 1};
        case AmountResolution::kLow: return {1, p0 + 2};
    }
    return {1, p0};
}

ledger::IouAmount round_amount(ledger::IouAmount value,
                               RoundingUnit unit) noexcept {
    if (unit.digit == 1) {
        return value.round_to_power_of_ten(unit.power);
    }
    // Nearest multiple of 5*10^p: scale by 1/5, round to 10^p, scale
    // back. The scalings are exact in decimal (x0.2 and x5 shift the
    // mantissa by a digit).
    return value.scaled_by(0.2).round_to_power_of_ten(unit.power).scaled_by(5.0);
}

ledger::IouAmount round_amount(ledger::IouAmount value, ledger::Currency currency,
                               AmountResolution resolution) noexcept {
    return round_amount(value, rounding_unit(currency, resolution));
}

}  // namespace xrpl::core
