// Point-in-time view of the whole observability registry, and its
// deterministic JSON serialization.
//
// Determinism contract: the JSON SHAPE is a pure function of which
// metrics fired — object keys are alphabetical, metric lists are
// name-sorted, phase children are name-sorted, and zero-valued
// metrics are omitted (so a freshly reset registry serializes the
// same whatever ran in the process before). Only the measured
// durations themselves vary run to run. See DESIGN.md §13 for the
// schema.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/phase.hpp"

namespace xrpl::obs {

struct HistogramSnapshot {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    /// (inclusive upper bound, count) per non-empty power-of-two
    /// bucket, ascending.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
};

struct Snapshot {
    bool enabled = false;
    std::vector<std::pair<std::string, std::uint64_t>> counters;  // name-sorted
    std::vector<std::pair<std::string, std::int64_t>> gauges;     // name-sorted
    std::vector<HistogramSnapshot> histograms;                    // name-sorted
    PhaseSnapshot phases;
};

/// Materialize every non-zero metric plus the phase tree.
[[nodiscard]] Snapshot snapshot();

/// Serialize (no trailing newline). Keys are emitted in alphabetical
/// order at every level; byte-stable given equal snapshot contents.
void write_json(std::ostream& os, const Snapshot& snap);

/// snapshot() + write_json() in one call.
void write_json(std::ostream& os);

[[nodiscard]] std::string to_json();

/// Zero all metrics and drop all phases — the bench harness calls
/// this before each run so BENCH_*.json reflects only that run.
void reset_all() noexcept;

}  // namespace xrpl::obs
