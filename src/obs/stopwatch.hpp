// The repo's ONE wall-clock site.
//
// Every duration this codebase measures — phase timings, per-chunk
// scan histograms, bench wall time — flows through Stopwatch, so the
// `no-adhoc-timing` lint rule can ban raw std::chrono clocks
// everywhere else. Centralizing the clock keeps timing observable
// (recorded into the obs registry, not printed ad hoc) and makes the
// overhead budget auditable: one steady_clock::now() per reading.
#pragma once

#include <chrono>
#include <cstdint>

namespace xrpl::obs {

class Stopwatch {
public:
    Stopwatch() : start_(Clock::now()) {}

    void restart() { start_ = Clock::now(); }

    [[nodiscard]] std::uint64_t elapsed_ns() const {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                 start_)
                .count());
    }

    [[nodiscard]] double elapsed_seconds() const {
        return static_cast<double>(elapsed_ns()) * 1e-9;
    }

    /// Monotonic nanosecond reading (epoch unspecified); differences
    /// between two readings are durations.
    [[nodiscard]] static std::uint64_t now_ns() {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now().time_since_epoch())
                .count());
    }

private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

}  // namespace xrpl::obs
