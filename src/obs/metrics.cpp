#include "obs/metrics.hpp"

#include <bit>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "obs/registry_visit.hpp"

namespace xrpl::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool on) noexcept {
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

void Histogram::record(std::uint64_t value) noexcept {
    if (!enabled()) return;
    const auto b = static_cast<std::size_t>(std::bit_width(value));
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const noexcept {
    std::uint64_t total = 0;
    for (const auto& bucket : buckets_) {
        total += bucket.load(std::memory_order_relaxed);
    }
    return total;
}

std::uint64_t Histogram::bucket_bound(std::size_t b) noexcept {
    if (b >= 64) return std::numeric_limits<std::uint64_t>::max();
    return (std::uint64_t{1} << b) - 1;
}

void Histogram::reset() noexcept {
    for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
}

namespace {

/// One name->metric map per kind. std::map keeps snapshot iteration
/// sorted; unique_ptr keeps metric addresses stable across rehash-free
/// inserts. Leaked on purpose: function-local statics elsewhere hold
/// references into the registry, and static destruction order must
/// never invalidate them.
template <typename Metric>
struct Registry {
    std::mutex mutex;
    std::map<std::string, std::unique_ptr<Metric>, std::less<>> metrics;

    Metric& find_or_create(std::string_view name) {
        const std::lock_guard<std::mutex> lock(mutex);
        const auto it = metrics.find(name);
        if (it != metrics.end()) return *it->second;
        return *metrics.emplace(std::string(name), std::make_unique<Metric>())
                    .first->second;
    }

    template <typename Visit>
    void for_each_sorted(const Visit& visit) {
        const std::lock_guard<std::mutex> lock(mutex);
        for (const auto& [name, metric] : metrics) visit(name, *metric);
    }
};

Registry<Counter>& counters() {
    static auto* registry = new Registry<Counter>();
    return *registry;
}
Registry<Gauge>& gauges() {
    static auto* registry = new Registry<Gauge>();
    return *registry;
}
Registry<Histogram>& histograms() {
    static auto* registry = new Registry<Histogram>();
    return *registry;
}

}  // namespace

Counter& counter(std::string_view name) {
    return counters().find_or_create(name);
}
Gauge& gauge(std::string_view name) { return gauges().find_or_create(name); }
Histogram& histogram(std::string_view name) {
    return histograms().find_or_create(name);
}

void reset_metrics() noexcept {
    counters().for_each_sorted(
        [](std::string_view, Counter& c) { c.reset(); });
    gauges().for_each_sorted([](std::string_view, Gauge& g) { g.reset(); });
    histograms().for_each_sorted(
        [](std::string_view, Histogram& h) { h.reset(); });
}

namespace detail {

void visit_counters(
    const std::function<void(std::string_view, const Counter&)>& visit) {
    counters().for_each_sorted(visit);
}
void visit_gauges(
    const std::function<void(std::string_view, const Gauge&)>& visit) {
    gauges().for_each_sorted(visit);
}
void visit_histograms(
    const std::function<void(std::string_view, const Histogram&)>& visit) {
    histograms().for_each_sorted(visit);
}

}  // namespace detail

}  // namespace xrpl::obs
