// Internal: sorted read access to the metric registries, used by
// obs::snapshot(). Not part of the instrumentation API — hot paths
// hold direct references (see metrics.hpp).
#pragma once

#include <functional>
#include <string_view>

#include "obs/metrics.hpp"

namespace xrpl::obs::detail {

void visit_counters(
    const std::function<void(std::string_view, const Counter&)>& visit);
void visit_gauges(
    const std::function<void(std::string_view, const Gauge&)>& visit);
void visit_histograms(
    const std::function<void(std::string_view, const Histogram&)>& visit);

}  // namespace xrpl::obs::detail
