// Hierarchical phase tracing and scoped histogram timers.
//
// A Phase is a named RAII scope on the CALLING thread: nested phases
// build a tree ("fig3_deanon" -> "datagen.generate" ->
// "datagen.slices"), each node accumulating enter count and total
// wall time. The tree is global and mutex-guarded — phases mark
// coarse stages (a generation stage, a study, a bench body), entered
// at most a few hundred times per run, so the lock is noise.
//
// Discipline: do NOT open a Phase inside an exec::ThreadPool task.
// The caller participates in its own batches, so the same task body
// runs sometimes under the caller's current phase and sometimes under
// a worker's root — the tree SHAPE would depend on scheduling. Inside
// pool tasks use ScopedTimer (order-free histogram) instead; that
// split is what keeps obs::snapshot() deterministically shaped at
// every thread count.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace xrpl::obs {

/// RAII phase scope. No-op (one enabled() check) when obs is off;
/// a Phase that outlives a set_enabled(false) still closes cleanly.
class Phase {
public:
    explicit Phase(std::string_view name);
    ~Phase();

    Phase(const Phase&) = delete;
    Phase& operator=(const Phase&) = delete;

private:
    bool active_ = false;
    std::uint64_t start_ns_ = 0;
};

/// RAII timer recording its scope's duration (ns) into a Histogram.
/// Safe inside pool tasks: histograms are merge-order-free.
class ScopedTimer {
public:
    explicit ScopedTimer(Histogram& into);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

private:
    Histogram* into_;
    bool active_ = false;
    std::uint64_t start_ns_ = 0;
};

/// Materialized phase tree: children sorted by name, so serialization
/// order never depends on timing.
struct PhaseSnapshot {
    std::string name;
    std::uint64_t count = 0;     // completed entries
    std::uint64_t total_ns = 0;  // wall time summed over entries
    std::vector<PhaseSnapshot> children;
};

/// Snapshot of the whole tree (root is the synthetic node "root").
[[nodiscard]] PhaseSnapshot phase_snapshot();

/// Drop all recorded phases. Phases currently open keep recording
/// into fresh nodes when they close.
void reset_phases() noexcept;

}  // namespace xrpl::obs
