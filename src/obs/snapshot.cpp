#include "obs/snapshot.hpp"

#include <ostream>
#include <sstream>

#include "obs/registry_visit.hpp"

namespace xrpl::obs {

namespace {

/// Minimal JSON string escape. Metric/phase names are plain
/// dot-separated identifiers by convention, but a stray quote must
/// not produce invalid JSON.
void write_escaped(std::ostream& os, std::string_view text) {
    os << '"';
    for (const char c : text) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\t': os << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    const char* hex = "0123456789abcdef";
                    os << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
                } else {
                    os << c;
                }
        }
    }
    os << '"';
}

void write_phase(std::ostream& os, const PhaseSnapshot& phase) {
    // Keys alphabetical: children, count, name, total_ns.
    os << "{\"children\":[";
    for (std::size_t i = 0; i < phase.children.size(); ++i) {
        if (i != 0) os << ',';
        write_phase(os, phase.children[i]);
    }
    os << "],\"count\":" << phase.count << ",\"name\":";
    write_escaped(os, phase.name);
    os << ",\"total_ns\":" << phase.total_ns << '}';
}

}  // namespace

Snapshot snapshot() {
    Snapshot snap;
    snap.enabled = enabled();
    detail::visit_counters([&](std::string_view name, const Counter& c) {
        const std::uint64_t value = c.value();
        if (value != 0) snap.counters.emplace_back(std::string(name), value);
    });
    detail::visit_gauges([&](std::string_view name, const Gauge& g) {
        const std::int64_t value = g.value();
        if (value != 0) snap.gauges.emplace_back(std::string(name), value);
    });
    detail::visit_histograms([&](std::string_view name, const Histogram& h) {
        HistogramSnapshot row;
        row.name = std::string(name);
        for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
            const std::uint64_t count = h.bucket(b);
            if (count == 0) continue;
            row.count += count;
            row.buckets.emplace_back(Histogram::bucket_bound(b), count);
        }
        if (row.count == 0) return;  // omit empty, like zero counters
        row.sum = h.sum();
        snap.histograms.push_back(std::move(row));
    });
    snap.phases = phase_snapshot();
    return snap;
}

void write_json(std::ostream& os, const Snapshot& snap) {
    // Top-level keys alphabetical: counters, enabled, gauges,
    // histograms, phases.
    os << "{\"counters\":{";
    for (std::size_t i = 0; i < snap.counters.size(); ++i) {
        if (i != 0) os << ',';
        write_escaped(os, snap.counters[i].first);
        os << ':' << snap.counters[i].second;
    }
    os << "},\"enabled\":" << (snap.enabled ? "true" : "false")
       << ",\"gauges\":{";
    for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
        if (i != 0) os << ',';
        write_escaped(os, snap.gauges[i].first);
        os << ':' << snap.gauges[i].second;
    }
    os << "},\"histograms\":{";
    for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
        const HistogramSnapshot& row = snap.histograms[i];
        if (i != 0) os << ',';
        write_escaped(os, row.name);
        os << ":{\"buckets\":[";
        for (std::size_t b = 0; b < row.buckets.size(); ++b) {
            if (b != 0) os << ',';
            os << '[' << row.buckets[b].first << ',' << row.buckets[b].second
               << ']';
        }
        os << "],\"count\":" << row.count << ",\"sum\":" << row.sum << '}';
    }
    os << "},\"phases\":";
    write_phase(os, snap.phases);
    os << '}';
}

void write_json(std::ostream& os) { write_json(os, snapshot()); }

std::string to_json() {
    std::ostringstream os;
    write_json(os);
    return os.str();
}

void reset_all() noexcept {
    reset_metrics();
    reset_phases();
}

}  // namespace xrpl::obs
