// Process-wide metrics registry: named counters, gauges, and
// fixed-bucket histograms.
//
// Design constraints, in priority order:
//
//  1. Near-zero cost when disabled: every record path starts with one
//     relaxed atomic-bool load (obs::enabled()); with XRPL_OBS off the
//     instrumented binaries run the same loops they ran before this
//     layer existed, and analytical outputs are byte-identical either
//     way (metrics only count, they never steer).
//  2. Safe and cheap from pool workers: counters stripe their cells by
//     thread (cache-line-padded relaxed fetch_add, no locks), so
//     exec::parallel_for chunks can record without contending.
//  3. Stable addresses: lookup once, cache the reference in a
//     function-local static. The registry never destroys a metric, so
//     `static obs::Counter& c = obs::counter("exec.tasks");` is the
//     intended (and only) hot-path pattern.
//
// Metric naming: dot-separated `<layer>.<what>[.<detail>]`, lower
// case — "exec.tasks", "consensus.pages.main", "datagen.slice_ns"
// (histograms of durations end in `_ns`). See DESIGN.md §13.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string_view>

namespace xrpl::obs {

namespace detail {
extern std::atomic<bool> g_enabled;

/// Stripe index of the calling thread: a thread-local's address mixed
/// down to log2(kStripes) bits. (No std::thread::id — the hash is
/// cheaper and keeps this header out of the no-raw-thread rule.)
inline std::size_t thread_stripe() noexcept {
    thread_local constinit char marker = 0;
    const auto p = reinterpret_cast<std::uintptr_t>(&marker);
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(p) * 0x9e3779b97f4a7c15ULL) >> 61);
}
}  // namespace detail

/// Whether metric recording is on (the XRPL_OBS toggle; the bench
/// harness force-enables it). One relaxed load — the entire cost of
/// every instrumentation site when off.
[[nodiscard]] inline bool enabled() noexcept {
    return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on) noexcept;

inline constexpr std::size_t kCounterStripes = 8;

/// Monotonic event count. add() is wait-free: one relaxed fetch_add on
/// the caller's stripe.
class Counter {
public:
    void add(std::uint64_t delta = 1) noexcept {
        if (!enabled()) return;
        cells_[detail::thread_stripe()].v.fetch_add(delta,
                                                    std::memory_order_relaxed);
    }

    /// Sum over stripes. Exact once concurrent writers have finished.
    [[nodiscard]] std::uint64_t value() const noexcept {
        std::uint64_t sum = 0;
        for (const Cell& cell : cells_) {
            sum += cell.v.load(std::memory_order_relaxed);
        }
        return sum;
    }

    void reset() noexcept {
        for (Cell& cell : cells_) cell.v.store(0, std::memory_order_relaxed);
    }

private:
    struct alignas(64) Cell {
        std::atomic<std::uint64_t> v{0};
    };
    std::array<Cell, kCounterStripes> cells_{};
};

/// Last-written level (pool width, queue depth, ...). Signed, because
/// levels can legitimately go negative.
class Gauge {
public:
    void set(std::int64_t value) noexcept {
        if (!enabled()) return;
        value_.store(value, std::memory_order_relaxed);
    }
    void add(std::int64_t delta) noexcept {
        if (!enabled()) return;
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    [[nodiscard]] std::int64_t value() const noexcept {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram over unsigned values (typically durations in
/// nanoseconds). Buckets are powers of two: bucket b counts values
/// with bit_width b, i.e. [2^(b-1), 2^b). Recording is two relaxed
/// fetch_adds — no stripes; histogram sites are per-chunk or per-slice,
/// not per-row.
class Histogram {
public:
    static constexpr std::size_t kBuckets = 65;  // bit_width(u64) in [0, 64]

    void record(std::uint64_t value) noexcept;

    [[nodiscard]] std::uint64_t count() const noexcept;
    [[nodiscard]] std::uint64_t sum() const noexcept {
        return sum_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::uint64_t bucket(std::size_t b) const noexcept {
        return buckets_[b].load(std::memory_order_relaxed);
    }
    /// Inclusive upper bound of bucket b (the largest value it counts).
    [[nodiscard]] static std::uint64_t bucket_bound(std::size_t b) noexcept;

    void reset() noexcept;

private:
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> sum_{0};
};

/// Registry lookups: find-or-create the named metric. Registration
/// takes a mutex; cache the reference (function-local static) so each
/// site pays it once per process. Names live for the process lifetime
/// and are reported in sorted order by obs::snapshot().
[[nodiscard]] Counter& counter(std::string_view name);
[[nodiscard]] Gauge& gauge(std::string_view name);
[[nodiscard]] Histogram& histogram(std::string_view name);

/// Zero every registered metric (values only — metrics stay
/// registered, cached references stay valid). Tests and the bench
/// harness call this between runs.
void reset_metrics() noexcept;

}  // namespace xrpl::obs
