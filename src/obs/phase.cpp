#include "obs/phase.hpp"

#include <map>
#include <memory>
#include <mutex>

#include "obs/stopwatch.hpp"

namespace xrpl::obs {

namespace {

struct Node {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::map<std::string, std::unique_ptr<Node>, std::less<>> children;
};

std::mutex& tree_mutex() {
    static auto* mutex = new std::mutex();
    return *mutex;
}
Node& tree_root() {
    static auto* root = new Node();  // leaked: see metrics.cpp rationale
    return *root;
}

/// The calling thread's open-phase path. Names, not node pointers, so
/// reset_phases() can drop the tree while phases are open — a closing
/// phase re-resolves (and recreates) its path under the lock.
std::vector<std::string>& thread_phase_path() {
    thread_local std::vector<std::string> path;
    return path;
}

void copy_sorted(const Node& node, PhaseSnapshot& out) {
    out.count = node.count;
    out.total_ns = node.total_ns;
    out.children.reserve(node.children.size());
    for (const auto& [name, child] : node.children) {  // map order == sorted
        PhaseSnapshot snap;
        snap.name = name;
        copy_sorted(*child, snap);
        out.children.push_back(std::move(snap));
    }
}

}  // namespace

Phase::Phase(std::string_view name) {
    if (!enabled()) return;
    active_ = true;
    thread_phase_path().emplace_back(name);
    start_ns_ = Stopwatch::now_ns();
}

Phase::~Phase() {
    if (!active_) return;
    const std::uint64_t elapsed = Stopwatch::now_ns() - start_ns_;
    std::vector<std::string>& path = thread_phase_path();
    {
        const std::lock_guard<std::mutex> lock(tree_mutex());
        Node* node = &tree_root();
        for (const std::string& segment : path) {
            std::unique_ptr<Node>& child = node->children[segment];
            if (!child) child = std::make_unique<Node>();
            node = child.get();
        }
        ++node->count;
        node->total_ns += elapsed;
    }
    path.pop_back();
}

ScopedTimer::ScopedTimer(Histogram& into) : into_(&into) {
    if (!enabled()) return;
    active_ = true;
    start_ns_ = Stopwatch::now_ns();
}

ScopedTimer::~ScopedTimer() {
    if (!active_) return;
    into_->record(Stopwatch::now_ns() - start_ns_);
}

PhaseSnapshot phase_snapshot() {
    PhaseSnapshot out;
    out.name = "root";
    const std::lock_guard<std::mutex> lock(tree_mutex());
    copy_sorted(tree_root(), out);
    return out;
}

void reset_phases() noexcept {
    const std::lock_guard<std::mutex> lock(tree_mutex());
    tree_root().children.clear();
    tree_root().count = 0;
    tree_root().total_ns = 0;
}

}  // namespace xrpl::obs
