// Path-structure statistics (Fig 6).
//
// Consumes the hop / parallel-path histograms the history builder
// collects and exposes the shares the paper quotes (16.3% unsplit,
// 28.9% four-way, the 8-hop MTL spike, ...).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "analytics/histogram.hpp"

namespace xrpl::analytics {

struct PathStats {
    CountHistogram hops;      // key = intermediate hop count (>= 1)
    CountHistogram parallel;  // key = parallel path count (>= 1)

    [[nodiscard]] std::uint64_t multi_hop_total() const noexcept {
        return hops.total();
    }

    /// The hop count with the largest anomalous mass above the
    /// monotone-decay trend (the paper finds 8, the MTL spam). Returns
    /// 0 when no anomaly stands out.
    [[nodiscard]] std::uint32_t hop_anomaly() const;
};

/// Build from raw histogram arrays (index = key).
[[nodiscard]] PathStats make_path_stats(std::span<const std::uint64_t> hop_histogram,
                                        std::span<const std::uint64_t> parallel_histogram);

/// Build from per-payment columns: hops_per_payment[i] / parallel_per_payment[i]
/// are payment i's intermediate-hop and parallel-path counts (0 = direct
/// transfer, not histogrammed — matching the history builder). The two
/// spans must be equally long. Chunk-parallel: per-chunk PathStats,
/// merged in chunk order.
[[nodiscard]] PathStats accumulate_path_stats(
    std::span<const std::uint32_t> hops_per_payment,
    std::span<const std::uint32_t> parallel_per_payment);

}  // namespace xrpl::analytics
