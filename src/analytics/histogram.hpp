// Simple integer-keyed and log-bucketed histograms used by the
// appendix analyses.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace xrpl::analytics {

/// Histogram over small non-negative integer keys (hop counts,
/// parallel-path counts).
class CountHistogram {
public:
    void add(std::uint32_t key, std::uint64_t weight = 1);

    /// Fold another histogram in (keywise sum). The chunked scans
    /// build one histogram per chunk and merge them in chunk order.
    void merge(const CountHistogram& other);

    [[nodiscard]] std::uint64_t count(std::uint32_t key) const noexcept;
    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
    [[nodiscard]] double share(std::uint32_t key) const noexcept;

    /// All (key, count) pairs with nonzero count, ascending by key.
    [[nodiscard]] std::vector<std::pair<std::uint32_t, std::uint64_t>> items() const;

private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

/// Histogram over log10-sized buckets of positive doubles.
class LogHistogram {
public:
    void add(double value, std::uint64_t weight = 1);

    [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
    /// (decade exponent, count) ascending.
    [[nodiscard]] std::vector<std::pair<int, std::uint64_t>> items() const;

private:
    std::map<int, std::uint64_t> buckets_;
    std::uint64_t total_ = 0;
};

}  // namespace xrpl::analytics
