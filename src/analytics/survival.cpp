#include "analytics/survival.hpp"

#include <algorithm>
#include <cmath>

namespace xrpl::analytics {

SurvivalFunction::SurvivalFunction(std::span<const float> samples)
    : sorted_(samples.begin(), samples.end()) {
    std::sort(sorted_.begin(), sorted_.end());
}

double SurvivalFunction::survival(double value) const noexcept {
    if (sorted_.empty()) return 0.0;
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(),
                                     static_cast<float>(value));
    const auto above = static_cast<std::size_t>(sorted_.end() - it);
    return static_cast<double>(above) / static_cast<double>(sorted_.size());
}

double SurvivalFunction::median() const noexcept { return quantile(0.5); }

double SurvivalFunction::quantile(double q) const noexcept {
    if (sorted_.empty()) return 0.0;
    const double clamped = std::clamp(q, 0.0, 1.0);
    const auto index = static_cast<std::size_t>(
        clamped * static_cast<double>(sorted_.size() - 1));
    return sorted_[index];
}

std::vector<SurvivalFunction::Point> SurvivalFunction::curve(
    double log10_min, double log10_max, int per_decade) const {
    std::vector<Point> points;
    if (per_decade <= 0 || log10_max < log10_min) return points;
    const double step = 1.0 / per_decade;
    for (double e = log10_min; e <= log10_max + 1e-9; e += step) {
        const double amount = std::pow(10.0, e);
        points.push_back(Point{amount, survival(amount)});
    }
    return points;
}

}  // namespace xrpl::analytics
