#include "analytics/survival.hpp"

#include <algorithm>
#include <cmath>

#include "exec/chunked_view.hpp"
#include "exec/parallel.hpp"
#include "ledger/amount.hpp"
#include "obs/metrics.hpp"

namespace xrpl::analytics {

namespace {

float amount_at(const ledger::PaymentColumns& columns, std::size_t row) noexcept {
    return static_cast<float>(ledger::IouAmount::from_mantissa_exponent(
                                  columns.amount_mantissa[row],
                                  columns.amount_exponent[row])
                                  .to_double());
}

}  // namespace

std::vector<float> amount_samples(ledger::PaymentView view) {
    static obs::Counter& scans = obs::counter("analytics.scans");
    scans.add();
    const ledger::PaymentColumns& columns = view.columns();
    const std::size_t offset = view.offset();
    std::vector<float> samples(view.size());
    exec::parallel_for(view.size(), exec::kDefaultChunkRows,
                       [&](std::size_t begin, std::size_t end) {
                           for (std::size_t r = begin; r < end; ++r) {
                               samples[r] = amount_at(columns, offset + r);
                           }
                       });
    return samples;
}

std::vector<float> amount_samples(ledger::PaymentView view,
                                  const ledger::Currency& currency) {
    const ledger::PaymentColumns& columns = view.columns();
    const std::optional<std::uint16_t> id = columns.currencies.find(currency);
    if (!id) return {};

    const std::size_t offset = view.offset();
    const exec::ChunkedView chunks(view);
    return exec::map_reduce<std::vector<float>>(
        chunks.chunk_count(),
        [&](std::size_t c) {
            const exec::ChunkedView::Bounds b = chunks.bounds(c);
            std::vector<float> local;
            for (std::size_t r = b.begin; r < b.end; ++r) {
                if (columns.currency_id[offset + r] == *id) {
                    local.push_back(amount_at(columns, offset + r));
                }
            }
            return local;
        },
        [](std::vector<float>& acc, std::vector<float>&& part) {
            if (acc.empty()) {
                acc = std::move(part);
                return;
            }
            acc.insert(acc.end(), part.begin(), part.end());
        });
}

SurvivalFunction survival_of(ledger::PaymentView view,
                             const ledger::Currency& currency) {
    const std::vector<float> samples = amount_samples(view, currency);
    return SurvivalFunction(samples);
}

SurvivalFunction::SurvivalFunction(std::span<const float> samples)
    : sorted_(samples.begin(), samples.end()) {
    std::sort(sorted_.begin(), sorted_.end());
}

double SurvivalFunction::survival(double value) const noexcept {
    if (sorted_.empty()) return 0.0;
    const auto it = std::upper_bound(sorted_.begin(), sorted_.end(),
                                     static_cast<float>(value));
    const auto above = static_cast<std::size_t>(sorted_.end() - it);
    return static_cast<double>(above) / static_cast<double>(sorted_.size());
}

double SurvivalFunction::median() const noexcept { return quantile(0.5); }

double SurvivalFunction::quantile(double q) const noexcept {
    if (sorted_.empty()) return 0.0;
    const double clamped = std::clamp(q, 0.0, 1.0);
    const auto index = static_cast<std::size_t>(
        clamped * static_cast<double>(sorted_.size() - 1));
    return sorted_[index];
}

std::vector<SurvivalFunction::Point> SurvivalFunction::curve(
    double log10_min, double log10_max, int per_decade) const {
    std::vector<Point> points;
    if (per_decade <= 0 || log10_max < log10_min) return points;
    const double step = 1.0 / per_decade;
    for (double e = log10_min; e <= log10_max + 1e-9; e += step) {
        const double amount = std::pow(10.0, e);
        points.push_back(Point{amount, survival(amount)});
    }
    return points;
}

}  // namespace xrpl::analytics
