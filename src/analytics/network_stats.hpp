// Trust-network statistics (the appendix's ecosystem framing:
// "As of August 2015, Ripple counted more than 165K users, +55K of
// which were actively participating").
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <unordered_map>
#include <vector>

#include "ledger/ledger.hpp"
#include "ledger/payment_columns.hpp"
#include "ledger/transaction.hpp"

namespace xrpl::analytics {

struct NetworkStats {
    std::uint64_t accounts = 0;
    /// Accounts that sent at least one payment in the history.
    std::uint64_t active_senders = 0;
    /// Accounts that sent or received at least one payment.
    std::uint64_t active_participants = 0;
    std::uint64_t trust_lines = 0;
    std::uint64_t live_offers = 0;
    /// Trust-line degree distribution: degree -> number of accounts.
    std::map<std::uint32_t, std::uint64_t> degree_histogram;
    double mean_degree = 0.0;
    std::uint32_t max_degree = 0;
};

/// Row-path entry point, kept as a thin shim: interns the records into
/// PaymentColumns and runs the column-native overload. Callers that
/// already hold columns (every figure pipeline does) should pass a
/// PaymentView instead and skip the conversion.
[[deprecated(
    "intern once with PaymentColumns::from_records and call the "
    "PaymentView overload")]] [[nodiscard]] NetworkStats
compute_network_stats(const ledger::LedgerState& ledger,
                      std::span<const ledger::TxRecord> records);

/// Column-native overload: distinct-sender/participant counts come
/// from flag vectors over the interner (no AccountID hashing).
[[nodiscard]] NetworkStats compute_network_stats(
    const ledger::LedgerState& ledger, ledger::PaymentView view);

/// Gini coefficient of a non-negative weight vector (0 = egalitarian,
/// ->1 = fully concentrated). Used for the intermediary-concentration
/// claim behind Fig 7(a).
[[nodiscard]] double gini(std::vector<double> weights);

}  // namespace xrpl::analytics
