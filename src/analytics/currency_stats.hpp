// Per-currency payment statistics (Fig 4).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ledger/payment_columns.hpp"
#include "ledger/types.hpp"

namespace xrpl::analytics {

struct CurrencyCount {
    ledger::Currency currency;
    std::uint64_t payments = 0;
    double share = 0.0;  // of all payments
};

/// Column-native scan: payments per currency. Chunk-parallel over the
/// currency-id column (dense per-chunk count vectors, elementwise
/// sum), so the result matches the counts the history builder streams
/// out row by row — for every thread count.
[[nodiscard]] std::unordered_map<ledger::Currency, std::uint64_t> count_currencies(
    ledger::PaymentView view);

/// Rank currencies by payment count, descending (Fig 4's x-axis order).
[[nodiscard]] std::vector<CurrencyCount> rank_currencies(
    const std::unordered_map<ledger::Currency, std::uint64_t>& counts);

/// count_currencies + rank_currencies in one call.
[[nodiscard]] std::vector<CurrencyCount> rank_currencies(ledger::PaymentView view);

}  // namespace xrpl::analytics
