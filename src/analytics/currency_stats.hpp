// Per-currency payment statistics (Fig 4).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ledger/types.hpp"

namespace xrpl::analytics {

struct CurrencyCount {
    ledger::Currency currency;
    std::uint64_t payments = 0;
    double share = 0.0;  // of all payments
};

/// Rank currencies by payment count, descending (Fig 4's x-axis order).
[[nodiscard]] std::vector<CurrencyCount> rank_currencies(
    const std::unordered_map<ledger::Currency, std::uint64_t>& counts);

}  // namespace xrpl::analytics
