#include "analytics/currency_stats.hpp"

#include <algorithm>

namespace xrpl::analytics {

std::vector<CurrencyCount> rank_currencies(
    const std::unordered_map<ledger::Currency, std::uint64_t>& counts) {
    std::uint64_t total = 0;
    for (const auto& [currency, payments] : counts) total += payments;

    std::vector<CurrencyCount> out;
    out.reserve(counts.size());
    for (const auto& [currency, payments] : counts) {
        CurrencyCount row;
        row.currency = currency;
        row.payments = payments;
        row.share = total == 0 ? 0.0
                               : static_cast<double>(payments) /
                                     static_cast<double>(total);
        out.push_back(row);
    }
    std::sort(out.begin(), out.end(),
              [](const CurrencyCount& a, const CurrencyCount& b) {
                  if (a.payments != b.payments) return a.payments > b.payments;
                  return a.currency < b.currency;
              });
    return out;
}

}  // namespace xrpl::analytics
