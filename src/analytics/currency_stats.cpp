#include "analytics/currency_stats.hpp"

#include <algorithm>

#include "exec/chunked_view.hpp"
#include "exec/parallel.hpp"
#include "obs/metrics.hpp"

namespace xrpl::analytics {

std::unordered_map<ledger::Currency, std::uint64_t> count_currencies(
    ledger::PaymentView view) {
    static obs::Counter& scans = obs::counter("analytics.scans");
    scans.add();
    const ledger::PaymentColumns& columns = view.columns();
    const std::size_t offset = view.offset();
    const exec::ChunkedView chunks(view);

    // Partial = counts by interned currency id. The currency dictionary
    // is small (u16 ids), so dense per-chunk vectors beat hash maps.
    using Partial = std::vector<std::uint64_t>;
    const Partial merged = exec::map_reduce<Partial>(
        chunks.chunk_count(),
        [&](std::size_t c) {
            const exec::ChunkedView::Bounds b = chunks.bounds(c);
            Partial local(columns.currencies.size(), 0);
            for (std::size_t r = b.begin; r < b.end; ++r) {
                ++local[columns.currency_id[offset + r]];
            }
            return local;
        },
        [](Partial& acc, Partial&& part) {
            if (acc.empty()) {
                acc = std::move(part);
                return;
            }
            for (std::size_t i = 0; i < part.size(); ++i) acc[i] += part[i];
        });

    std::unordered_map<ledger::Currency, std::uint64_t> counts;
    counts.reserve(merged.size());
    for (std::size_t c = 0; c < merged.size(); ++c) {
        if (merged[c] != 0) {
            counts.emplace(columns.currencies.at(static_cast<std::uint16_t>(c)),
                           merged[c]);
        }
    }
    return counts;
}

std::vector<CurrencyCount> rank_currencies(ledger::PaymentView view) {
    return rank_currencies(count_currencies(view));
}

std::vector<CurrencyCount> rank_currencies(
    const std::unordered_map<ledger::Currency, std::uint64_t>& counts) {
    std::uint64_t total = 0;
    for (const auto& [currency, payments] : counts) total += payments;

    std::vector<CurrencyCount> out;
    out.reserve(counts.size());
    for (const auto& [currency, payments] : counts) {
        CurrencyCount row;
        row.currency = currency;
        row.payments = payments;
        row.share = total == 0 ? 0.0
                               : static_cast<double>(payments) /
                                     static_cast<double>(total);
        out.push_back(row);
    }
    std::sort(out.begin(), out.end(),
              [](const CurrencyCount& a, const CurrencyCount& b) {
                  if (a.payments != b.payments) return a.payments > b.payments;
                  return a.currency < b.currency;
              });
    return out;
}

}  // namespace xrpl::analytics
