#include "analytics/histogram.hpp"

#include <cmath>

namespace xrpl::analytics {

void CountHistogram::add(std::uint32_t key, std::uint64_t weight) {
    if (counts_.size() <= key) counts_.resize(key + 1, 0);
    counts_[key] += weight;
    total_ += weight;
}

void CountHistogram::merge(const CountHistogram& other) {
    if (counts_.size() < other.counts_.size()) {
        counts_.resize(other.counts_.size(), 0);
    }
    for (std::size_t key = 0; key < other.counts_.size(); ++key) {
        counts_[key] += other.counts_[key];
    }
    total_ += other.total_;
}

std::uint64_t CountHistogram::count(std::uint32_t key) const noexcept {
    return key < counts_.size() ? counts_[key] : 0;
}

double CountHistogram::share(std::uint32_t key) const noexcept {
    return total_ == 0 ? 0.0
                       : static_cast<double>(count(key)) /
                             static_cast<double>(total_);
}

std::vector<std::pair<std::uint32_t, std::uint64_t>> CountHistogram::items() const {
    std::vector<std::pair<std::uint32_t, std::uint64_t>> out;
    for (std::uint32_t key = 0; key < counts_.size(); ++key) {
        if (counts_[key] != 0) out.emplace_back(key, counts_[key]);
    }
    return out;
}

void LogHistogram::add(double value, std::uint64_t weight) {
    if (value <= 0.0 || !std::isfinite(value)) return;
    buckets_[static_cast<int>(std::floor(std::log10(value)))] += weight;
    total_ += weight;
}

std::vector<std::pair<int, std::uint64_t>> LogHistogram::items() const {
    return {buckets_.begin(), buckets_.end()};
}

}  // namespace xrpl::analytics
