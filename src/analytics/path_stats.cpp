#include "analytics/path_stats.hpp"

namespace xrpl::analytics {

std::uint32_t PathStats::hop_anomaly() const {
    // A bucket is anomalous when it exceeds its predecessor — the
    // organic distribution decays monotonically with hop count.
    std::uint32_t anomaly = 0;
    std::uint64_t anomaly_mass = 0;
    const auto items = hops.items();
    for (std::size_t i = 1; i < items.size(); ++i) {
        const auto [key, count] = items[i];
        const auto [prev_key, prev_count] = items[i - 1];
        if (key == prev_key + 1 && count > prev_count && count > anomaly_mass) {
            anomaly = key;
            anomaly_mass = count;
        }
    }
    return anomaly;
}

PathStats make_path_stats(std::span<const std::uint64_t> hop_histogram,
                          std::span<const std::uint64_t> parallel_histogram) {
    PathStats stats;
    for (std::uint32_t key = 1; key < hop_histogram.size(); ++key) {
        if (hop_histogram[key] != 0) stats.hops.add(key, hop_histogram[key]);
    }
    for (std::uint32_t key = 1; key < parallel_histogram.size(); ++key) {
        if (parallel_histogram[key] != 0) {
            stats.parallel.add(key, parallel_histogram[key]);
        }
    }
    return stats;
}

}  // namespace xrpl::analytics
