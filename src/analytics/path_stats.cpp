#include "analytics/path_stats.hpp"

#include <algorithm>

#include "exec/chunked_view.hpp"
#include "exec/parallel.hpp"
#include "util/contract.hpp"

namespace xrpl::analytics {

std::uint32_t PathStats::hop_anomaly() const {
    // A bucket is anomalous when it exceeds its predecessor — the
    // organic distribution decays monotonically with hop count.
    std::uint32_t anomaly = 0;
    std::uint64_t anomaly_mass = 0;
    const auto items = hops.items();
    for (std::size_t i = 1; i < items.size(); ++i) {
        const auto [key, count] = items[i];
        const auto [prev_key, prev_count] = items[i - 1];
        if (key == prev_key + 1 && count > prev_count && count > anomaly_mass) {
            anomaly = key;
            anomaly_mass = count;
        }
    }
    return anomaly;
}

PathStats make_path_stats(std::span<const std::uint64_t> hop_histogram,
                          std::span<const std::uint64_t> parallel_histogram) {
    PathStats stats;
    for (std::uint32_t key = 1; key < hop_histogram.size(); ++key) {
        if (hop_histogram[key] != 0) stats.hops.add(key, hop_histogram[key]);
    }
    for (std::uint32_t key = 1; key < parallel_histogram.size(); ++key) {
        if (parallel_histogram[key] != 0) {
            stats.parallel.add(key, parallel_histogram[key]);
        }
    }
    return stats;
}

PathStats accumulate_path_stats(
    std::span<const std::uint32_t> hops_per_payment,
    std::span<const std::uint32_t> parallel_per_payment) {
    XRPL_ASSERT(hops_per_payment.size() == parallel_per_payment.size(),
                "hop and parallel-path columns must be equally long");
    const std::size_t n = hops_per_payment.size();
    const std::size_t chunks = exec::chunk_count_for(n, exec::kDefaultChunkRows);
    return exec::map_reduce<PathStats>(
        chunks,
        [&](std::size_t c) {
            const std::size_t begin = c * exec::kDefaultChunkRows;
            const std::size_t end =
                std::min(begin + exec::kDefaultChunkRows, n);
            PathStats local;
            for (std::size_t i = begin; i < end; ++i) {
                if (hops_per_payment[i] != 0) local.hops.add(hops_per_payment[i]);
                if (parallel_per_payment[i] != 0) {
                    local.parallel.add(parallel_per_payment[i]);
                }
            }
            return local;
        },
        [](PathStats& acc, PathStats&& part) {
            acc.hops.merge(part.hops);
            acc.parallel.merge(part.parallel);
        });
}

}  // namespace xrpl::analytics
