// The influential-user analysis (Fig 7).
//
// Ranks accounts by how often they appear as intermediate hops in
// payment paths, then attaches the two discriminating signals the
// paper studies: total trust received/given (gateways receive lots,
// declare little) and net IOU balance in a reference currency
// (gateways are in debt, common hub users in credit).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ledger/ledger.hpp"
#include "ledger/payment_columns.hpp"

namespace xrpl::analytics {

struct TopUser {
    ledger::AccountID account;
    std::string label;
    bool is_gateway = false;
    std::uint64_t times_intermediate = 0;
    double trust_received = 0.0;  // positive trust of Fig 7(b)
    double trust_given = 0.0;     // negative trust of Fig 7(b)
    double balance = 0.0;         // Fig 7(c), reference currency
};

/// Top `k` intermediaries with their trust and balance profile.
/// `rate_to_reference` converts one unit of a currency to the
/// reference (the paper aggregates in EUR); `label_of` supplies
/// display names.
[[nodiscard]] std::vector<TopUser> top_intermediaries(
    const std::unordered_map<ledger::AccountID, std::uint64_t>& intermediary_counts,
    const ledger::LedgerState& ledger, std::size_t k,
    const std::function<double(ledger::Currency)>& rate_to_reference,
    const std::function<std::string(const ledger::AccountID&)>& label_of);

/// Share of all intermediate-hop appearances covered by the top `k`
/// accounts (the paper: 50 peers cover ~86% of multi-hop traffic).
[[nodiscard]] double coverage_of_top(
    const std::unordered_map<ledger::AccountID, std::uint64_t>& intermediary_counts,
    std::size_t k);

/// Column-native scan: payments sent per account. Chunk-parallel over
/// the sender-id column; per-chunk (id, count) runs sorted by interned
/// id merge into one dense accumulator, so the table is identical for
/// every thread count. Feed the result to top_intermediaries /
/// coverage_of_top when ranking by send volume instead of
/// intermediate-hop appearances.
[[nodiscard]] std::unordered_map<ledger::AccountID, std::uint64_t> sender_activity(
    ledger::PaymentView view);

}  // namespace xrpl::analytics
