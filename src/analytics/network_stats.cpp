#include "analytics/network_stats.hpp"

#include <algorithm>

#include "exec/chunked_view.hpp"
#include "exec/parallel.hpp"
#include "obs/metrics.hpp"

namespace xrpl::analytics {

namespace {

/// The ledger-side stats shared by both overloads.
void fill_ledger_stats(NetworkStats& stats, const ledger::LedgerState& ledger) {
    stats.accounts = ledger.account_count();
    stats.trust_lines = ledger.trustline_count();
    stats.live_offers = ledger.offer_count();

    std::uint64_t degree_total = 0;
    for (std::uint32_t i = 0; i < ledger.account_count(); ++i) {
        const ledger::AccountID& id = ledger.account_by_index(i);
        const auto degree =
            static_cast<std::uint32_t>(ledger.lines_of(id).size());
        ++stats.degree_histogram[degree];
        degree_total += degree;
        stats.max_degree = std::max(stats.max_degree, degree);
    }
    stats.mean_degree = stats.accounts == 0
                            ? 0.0
                            : static_cast<double>(degree_total) /
                                  static_cast<double>(stats.accounts);
}

}  // namespace

// Deprecated shim (see header): one interning pass, then the columnar
// scan — so both overloads share a single counting implementation.
NetworkStats compute_network_stats(const ledger::LedgerState& ledger,
                                   std::span<const ledger::TxRecord> records) {
    const ledger::PaymentColumns columns =
        ledger::PaymentColumns::from_records(records);
    return compute_network_stats(ledger, columns.view());
}

namespace {

/// Sorted, deduplicated interned-account ids seen by one chunk (or a
/// merged prefix of chunks).
struct ActivityPartial {
    std::vector<std::uint32_t> sent;
    std::vector<std::uint32_t> touched;
};

std::vector<std::uint32_t> sorted_union(const std::vector<std::uint32_t>& a,
                                        const std::vector<std::uint32_t>& b) {
    std::vector<std::uint32_t> out;
    out.reserve(a.size() + b.size());
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(out));
    return out;
}

void sort_unique(std::vector<std::uint32_t>& ids) {
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
}

}  // namespace

NetworkStats compute_network_stats(const ledger::LedgerState& ledger,
                                   ledger::PaymentView view) {
    static obs::Counter& scans = obs::counter("analytics.scans");
    scans.add();
    NetworkStats stats;
    fill_ledger_stats(stats, ledger);

    // Distinct senders / participants as sorted interned-id sets:
    // each chunk collects and dedups its own ids, merges are sorted
    // set unions — associative, and memory-bounded by the chunk, not
    // the account dictionary.
    const ledger::PaymentColumns& columns = view.columns();
    const std::size_t offset = view.offset();
    const exec::ChunkedView chunks(view);
    const ActivityPartial merged = exec::map_reduce<ActivityPartial>(
        chunks.chunk_count(),
        [&](std::size_t c) {
            const exec::ChunkedView::Bounds b = chunks.bounds(c);
            ActivityPartial local;
            local.sent.reserve(b.end - b.begin);
            local.touched.reserve(2 * (b.end - b.begin));
            for (std::size_t r = b.begin; r < b.end; ++r) {
                local.sent.push_back(columns.sender_id[offset + r]);
                local.touched.push_back(columns.sender_id[offset + r]);
                local.touched.push_back(columns.dest_id[offset + r]);
            }
            sort_unique(local.sent);
            sort_unique(local.touched);
            return local;
        },
        [](ActivityPartial& acc, ActivityPartial&& part) {
            if (acc.sent.empty() && acc.touched.empty()) {
                acc = std::move(part);
                return;
            }
            acc.sent = sorted_union(acc.sent, part.sent);
            acc.touched = sorted_union(acc.touched, part.touched);
        });
    stats.active_senders = merged.sent.size();
    stats.active_participants = merged.touched.size();
    return stats;
}

double gini(std::vector<double> weights) {
    std::erase_if(weights, [](double w) { return w < 0.0; });
    if (weights.size() < 2) return 0.0;
    std::sort(weights.begin(), weights.end());
    double cumulative = 0.0;
    double weighted_rank_sum = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        cumulative += weights[i];
        weighted_rank_sum += static_cast<double>(i + 1) * weights[i];
    }
    if (cumulative <= 0.0) return 0.0;
    const auto n = static_cast<double>(weights.size());
    return (2.0 * weighted_rank_sum) / (n * cumulative) - (n + 1.0) / n;
}

}  // namespace xrpl::analytics
