#include "analytics/network_stats.hpp"

#include <algorithm>
#include <unordered_set>

namespace xrpl::analytics {

namespace {

/// The ledger-side stats shared by both overloads.
void fill_ledger_stats(NetworkStats& stats, const ledger::LedgerState& ledger) {
    stats.accounts = ledger.account_count();
    stats.trust_lines = ledger.trustline_count();
    stats.live_offers = ledger.offer_count();

    std::uint64_t degree_total = 0;
    for (std::uint32_t i = 0; i < ledger.account_count(); ++i) {
        const ledger::AccountID& id = ledger.account_by_index(i);
        const auto degree =
            static_cast<std::uint32_t>(ledger.lines_of(id).size());
        ++stats.degree_histogram[degree];
        degree_total += degree;
        stats.max_degree = std::max(stats.max_degree, degree);
    }
    stats.mean_degree = stats.accounts == 0
                            ? 0.0
                            : static_cast<double>(degree_total) /
                                  static_cast<double>(stats.accounts);
}

}  // namespace

NetworkStats compute_network_stats(const ledger::LedgerState& ledger,
                                   std::span<const ledger::TxRecord> records) {
    NetworkStats stats;
    fill_ledger_stats(stats, ledger);

    std::unordered_set<ledger::AccountID> senders;
    std::unordered_set<ledger::AccountID> participants;
    for (const ledger::TxRecord& record : records) {
        senders.insert(record.sender);
        participants.insert(record.sender);
        participants.insert(record.destination);
    }
    stats.active_senders = senders.size();
    stats.active_participants = participants.size();
    return stats;
}

NetworkStats compute_network_stats(const ledger::LedgerState& ledger,
                                   ledger::PaymentView view) {
    NetworkStats stats;
    fill_ledger_stats(stats, ledger);

    // Interned ids are dense, so set membership is two flag vectors.
    const ledger::PaymentColumns& columns = view.columns();
    const std::size_t offset = view.offset();
    std::vector<bool> sent(columns.accounts.size(), false);
    std::vector<bool> touched(columns.accounts.size(), false);
    for (std::size_t i = 0; i < view.size(); ++i) {
        sent[columns.sender_id[offset + i]] = true;
        touched[columns.sender_id[offset + i]] = true;
        touched[columns.dest_id[offset + i]] = true;
    }
    stats.active_senders =
        static_cast<std::uint64_t>(std::count(sent.begin(), sent.end(), true));
    stats.active_participants = static_cast<std::uint64_t>(
        std::count(touched.begin(), touched.end(), true));
    return stats;
}

double gini(std::vector<double> weights) {
    std::erase_if(weights, [](double w) { return w < 0.0; });
    if (weights.size() < 2) return 0.0;
    std::sort(weights.begin(), weights.end());
    double cumulative = 0.0;
    double weighted_rank_sum = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        cumulative += weights[i];
        weighted_rank_sum += static_cast<double>(i + 1) * weights[i];
    }
    if (cumulative <= 0.0) return 0.0;
    const auto n = static_cast<double>(weights.size());
    return (2.0 * weighted_rank_sum) / (n * cumulative) - (n + 1.0) / n;
}

}  // namespace xrpl::analytics
