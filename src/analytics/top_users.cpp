#include "analytics/top_users.hpp"

#include <algorithm>

#include "exec/chunked_view.hpp"
#include "exec/parallel.hpp"
#include "obs/metrics.hpp"

namespace xrpl::analytics {

namespace {

std::vector<std::pair<ledger::AccountID, std::uint64_t>> ranked(
    const std::unordered_map<ledger::AccountID, std::uint64_t>& counts) {
    std::vector<std::pair<ledger::AccountID, std::uint64_t>> entries(
        counts.begin(), counts.end());
    std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
        if (a.second != b.second) return a.second > b.second;
        return a.first < b.first;
    });
    return entries;
}

}  // namespace

std::vector<TopUser> top_intermediaries(
    const std::unordered_map<ledger::AccountID, std::uint64_t>& intermediary_counts,
    const ledger::LedgerState& ledger, std::size_t k,
    const std::function<double(ledger::Currency)>& rate_to_reference,
    const std::function<std::string(const ledger::AccountID&)>& label_of) {
    const auto entries = ranked(intermediary_counts);

    std::vector<TopUser> out;
    out.reserve(std::min(k, entries.size()));
    for (std::size_t i = 0; i < entries.size() && i < k; ++i) {
        TopUser user;
        user.account = entries[i].first;
        user.times_intermediate = entries[i].second;
        user.label = label_of(user.account);
        if (const ledger::AccountRoot* root = ledger.account(user.account)) {
            user.is_gateway = root->is_gateway;
        }
        const ledger::LedgerState::TrustSummary trust =
            ledger.trust_summary(user.account, rate_to_reference);
        user.trust_received = trust.received;
        user.trust_given = trust.given;
        user.balance = ledger.net_iou_balance(user.account, rate_to_reference);
        out.push_back(std::move(user));
    }
    return out;
}

double coverage_of_top(
    const std::unordered_map<ledger::AccountID, std::uint64_t>& intermediary_counts,
    std::size_t k) {
    const auto entries = ranked(intermediary_counts);
    std::uint64_t total = 0;
    std::uint64_t covered = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        total += entries[i].second;
        if (i < k) covered += entries[i].second;
    }
    return total == 0 ? 0.0
                      : static_cast<double>(covered) / static_cast<double>(total);
}

std::unordered_map<ledger::AccountID, std::uint64_t> sender_activity(
    ledger::PaymentView view) {
    static obs::Counter& scans = obs::counter("analytics.scans");
    scans.add();
    const ledger::PaymentColumns& columns = view.columns();
    const std::size_t offset = view.offset();
    const exec::ChunkedView chunks(view);

    // Per-chunk partials stay sparse — (interned id, count) pairs
    // sorted by id, at most chunk_rows entries — so memory scales with
    // the chunk, not with the account dictionary. Two sorted runs
    // merge like a merge sort pass.
    using Partial = std::vector<std::pair<std::uint32_t, std::uint64_t>>;
    const Partial merged = exec::map_reduce<Partial>(
        chunks.chunk_count(),
        [&](std::size_t c) {
            const exec::ChunkedView::Bounds b = chunks.bounds(c);
            std::unordered_map<std::uint32_t, std::uint64_t> local;
            local.reserve(b.end - b.begin);
            for (std::size_t r = b.begin; r < b.end; ++r) {
                ++local[columns.sender_id[offset + r]];
            }
            Partial sparse(local.begin(), local.end());
            std::sort(sparse.begin(), sparse.end());
            return sparse;
        },
        [](Partial& acc, Partial&& part) {
            if (acc.empty()) {
                acc = std::move(part);
                return;
            }
            Partial combined;
            combined.reserve(acc.size() + part.size());
            std::size_t a = 0;
            std::size_t p = 0;
            while (a < acc.size() && p < part.size()) {
                if (acc[a].first < part[p].first) {
                    combined.push_back(acc[a++]);
                } else if (part[p].first < acc[a].first) {
                    combined.push_back(part[p++]);
                } else {
                    combined.emplace_back(acc[a].first,
                                          acc[a].second + part[p].second);
                    ++a;
                    ++p;
                }
            }
            combined.insert(combined.end(), acc.begin() + static_cast<std::ptrdiff_t>(a),
                            acc.end());
            combined.insert(combined.end(),
                            part.begin() + static_cast<std::ptrdiff_t>(p),
                            part.end());
            acc = std::move(combined);
        });

    std::unordered_map<ledger::AccountID, std::uint64_t> counts;
    counts.reserve(merged.size());
    for (const auto& [id, sent] : merged) {
        counts.emplace(columns.accounts.at(id), sent);
    }
    return counts;
}

}  // namespace xrpl::analytics
