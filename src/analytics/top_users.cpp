#include "analytics/top_users.hpp"

#include <algorithm>

namespace xrpl::analytics {

namespace {

std::vector<std::pair<ledger::AccountID, std::uint64_t>> ranked(
    const std::unordered_map<ledger::AccountID, std::uint64_t>& counts) {
    std::vector<std::pair<ledger::AccountID, std::uint64_t>> entries(
        counts.begin(), counts.end());
    std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
        if (a.second != b.second) return a.second > b.second;
        return a.first < b.first;
    });
    return entries;
}

}  // namespace

std::vector<TopUser> top_intermediaries(
    const std::unordered_map<ledger::AccountID, std::uint64_t>& intermediary_counts,
    const ledger::LedgerState& ledger, std::size_t k,
    const std::function<double(ledger::Currency)>& rate_to_reference,
    const std::function<std::string(const ledger::AccountID&)>& label_of) {
    const auto entries = ranked(intermediary_counts);

    std::vector<TopUser> out;
    out.reserve(std::min(k, entries.size()));
    for (std::size_t i = 0; i < entries.size() && i < k; ++i) {
        TopUser user;
        user.account = entries[i].first;
        user.times_intermediate = entries[i].second;
        user.label = label_of(user.account);
        if (const ledger::AccountRoot* root = ledger.account(user.account)) {
            user.is_gateway = root->is_gateway;
        }
        const ledger::LedgerState::TrustSummary trust =
            ledger.trust_summary(user.account, rate_to_reference);
        user.trust_received = trust.received;
        user.trust_given = trust.given;
        user.balance = ledger.net_iou_balance(user.account, rate_to_reference);
        out.push_back(std::move(user));
    }
    return out;
}

double coverage_of_top(
    const std::unordered_map<ledger::AccountID, std::uint64_t>& intermediary_counts,
    std::size_t k) {
    const auto entries = ranked(intermediary_counts);
    std::uint64_t total = 0;
    std::uint64_t covered = 0;
    for (std::size_t i = 0; i < entries.size(); ++i) {
        total += entries[i].second;
        if (i < k) covered += entries[i].second;
    }
    return total == 0 ? 0.0
                      : static_cast<double>(covered) / static_cast<double>(total);
}

}  // namespace xrpl::analytics
