// Survival functions (Fig 5).
//
// "The survival function for a given currency is defined as the
// percentage of payments in that currency exchanging an amount larger
// than a certain value." Evaluated on a log-spaced grid spanning the
// paper's 1e-4 .. 1e12 x-axis.
#pragma once

#include <span>
#include <vector>

#include "ledger/payment_columns.hpp"
#include "ledger/types.hpp"

namespace xrpl::analytics {

class SurvivalFunction {
public:
    /// Builds from raw samples (copied and sorted once).
    explicit SurvivalFunction(std::span<const float> samples);

    /// P(X > value).
    [[nodiscard]] double survival(double value) const noexcept;

    [[nodiscard]] std::size_t sample_count() const noexcept {
        return sorted_.size();
    }

    /// Median (0 for empty).
    [[nodiscard]] double median() const noexcept;
    /// Arbitrary quantile q in [0,1].
    [[nodiscard]] double quantile(double q) const noexcept;

    struct Point {
        double amount = 0.0;
        double survival = 0.0;
    };
    /// Evaluate on a log grid from 10^log10_min to 10^log10_max with
    /// `per_decade` points per decade.
    [[nodiscard]] std::vector<Point> curve(double log10_min, double log10_max,
                                           int per_decade = 1) const;

private:
    std::vector<float> sorted_;
};

/// Column-native scan: the amount of every payment in `view`, in row
/// order, as the float samples the history builder streams out.
/// Chunk-parallel with disjoint output slots.
[[nodiscard]] std::vector<float> amount_samples(ledger::PaymentView view);

/// Amounts of payments in `currency` only, in row order. Chunk-local
/// sample vectors concatenated in chunk order — concatenation is the
/// one merge here that is NOT commutative, so the ordered-merge
/// contract is what keeps the output byte-identical across thread
/// counts.
[[nodiscard]] std::vector<float> amount_samples(ledger::PaymentView view,
                                                const ledger::Currency& currency);

/// SurvivalFunction over `currency`'s payments in `view` (Fig 5).
[[nodiscard]] SurvivalFunction survival_of(ledger::PaymentView view,
                                           const ledger::Currency& currency);

}  // namespace xrpl::analytics
