#include "consensus/period_config.hpp"

#include <algorithm>

#include "util/ripple_time.hpp"

namespace xrpl::consensus {

namespace {

using enum ValidatorBehavior;

ValidatorSpec core(const std::string& label) {
    ValidatorSpec v;
    v.label = label;
    v.behavior = kCore;
    v.on_unl = true;
    return v;
}

ValidatorSpec make(const std::string& label, ValidatorBehavior behavior,
                   double availability = -1.0, bool on_unl = false) {
    ValidatorSpec v;
    v.label = label;
    v.behavior = behavior;
    v.availability = availability;
    v.on_unl = on_unl;
    return v;
}

void add_cores(std::vector<ValidatorSpec>& out) {
    for (const char* label : {"R1", "R2", "R3", "R4", "R5"}) {
        out.push_back(core(label));
    }
}

}  // namespace

PeriodSpec december_2015() {
    PeriodSpec period;
    period.name = "December 2015 (first half)";
    auto& v = period.validators;
    add_cores(v);

    // The actively contributing unidentified validators. Together
    // with R1-R5 these four persist as actives through all three
    // periods, forming the paper's "only 9 shared active
    // contributors" (n9KsiC barely qualifies in this period).
    v.push_back(make("n9KDJn...Q7KhQ2", kActive, 0.96));
    v.push_back(make("n9KDWe...aFsVox", kActive, 0.93));
    v.push_back(make("n9L6Xc...tzbS3G", kActive, 0.90));
    v.push_back(make("n9KsiC...nWfDbS", kActive, 0.55));

    // 5 struggling to stay in sync: few pages, tiny valid fraction.
    v.push_back(make("mycooldomain.com", kLaggard, 0.38));
    v.push_back(make("n94a8g...endSoo", kLaggard, 0.52));
    v.push_back(make("n94aaY...RjEhVa", kLaggard, 0.31));
    v.push_back(make("n9JbRC...nfAF1o", kLaggard, 0.44));
    v.push_back(make("n9K4vf...7FUDUu", kLaggard, 0.27));

    // 20 validators with zero valid pages (private ledgers or hopeless
    // latency — the paper cannot tell the two apart, neither can the
    // stream).
    const char* forked[] = {
        "xagate.com",        "n9KewxVWJ4xP",     "n9KkJS...L7aGM9",
        "n9L21J...KXMxyZ",   "n9LD3q...SdAjfC",
        "n9LFrq...2N4tqt",   "n9LWm9...uBXfEH",  "n9LXgn...VfrY42",
        "n9LsfY...9yuez6",   "n9M15o...2Fct7s",  "n9M3WR...C3qjsR",
        "n9M4pt...vFuyDP",   "n9MKk7...F4SG8T",  "n9MLVG...j21tX3",
        "n9MQeS...quKwzA",   "n9MabQ...M3BzeL",  "n9Mb8Z...aKiCnD",
        "n9MfTP...fHrELR",   "n9Mjcq...4ZkRgp",  "n9MoY1...MjPjd4",
    };
    for (const char* label : forked) v.push_back(make(label, kForked));
    return period;
}

PeriodSpec july_2016() {
    PeriodSpec period;
    period.name = "July 2016 (first half)";
    auto& v = period.validators;
    add_cores(v);

    // 10 actives with a number of valid pages comparable to R1-R5;
    // 4 carried a public domain at the time.
    v.push_back(make("bougalis.net", kActive, 0.97));
    v.push_back(make("bougalis.net (2)", kActive, 0.95));
    v.push_back(make("freewallet1.net", kActive, 0.92));
    v.push_back(make("freewallet2.net", kActive, 0.90));
    v.push_back(make("mduo13.com", kActive, 0.88));
    v.push_back(make("youwant.to", kActive, 0.85));
    v.push_back(make("n9KDJn...Q7KhQ2", kActive, 0.96));
    v.push_back(make("n9KDWe...aFsVox", kActive, 0.93));
    v.push_back(make("n9L6Xc...tzbS3G", kActive, 0.90));
    v.push_back(make("n9KsiC...nWfDbS", kActive, 0.87));

    // Ripple's public test network: a parallel ledger instance.
    for (int i = 1; i <= 5; ++i) {
        v.push_back(make("testnet.ripple.com #" + std::to_string(i), kTestnet));
    }

    // The tail: observed on the stream, barely or badly contributing.
    v.push_back(make("rippled.media.mit.edu", kLaggard, 0.33));
    v.push_back(make("rippled.mr.exchange", kLaggard, 0.26));
    v.push_back(make("n9JYcW...ztYoFP", kLaggard, 0.40));
    v.push_back(make("n9KwAL...YgCEag", kLaggard, 0.22));
    v.push_back(make("n9LiYQ...AHKqhh", kIdler));
    v.push_back(make("n9LxcZ...BniGHJ", kIdler));
    v.push_back(make("n9Lxmk...TgbQ3E", kForked));
    v.push_back(make("n9MGPp...eLsX2X", kForked));
    v.push_back(make("n9MHcZ...kdi37U", kForked));
    v.push_back(make("n9ML3u...ZW3J3M", kForked));
    v.push_back(make("n9MabQ...M3BzeL", kForked));
    v.push_back(make("n9Mb8Z...aKiCnD", kForked));
    v.push_back(make("n9Mi2w...eG1ABs", kIdler));
    return period;
}

PeriodSpec november_2016() {
    PeriodSpec period;
    period.name = "November 2016 (first half)";
    auto& v = period.validators;
    add_cores(v);

    // Only 8 of the 34 non-Ripple-Labs validators remain comparable to
    // R1-R5.
    v.push_back(make("awsstatic.com/fin-serv", kActive, 0.93));
    v.push_back(make("duke67.com", kActive, 0.89));
    v.push_back(make("paleorbglow.com", kActive, 0.86));
    v.push_back(make("n9KDJn...Q7KhQ2", kActive, 0.96));
    v.push_back(make("n9KDWe...aFsVox", kActive, 0.93));
    v.push_back(make("n9L6Xc...tzbS3G", kActive, 0.90));
    v.push_back(make("n9KsiC...nWfDbS", kActive, 0.87));
    v.push_back(make("n9KwAL...YgCEag", kActive, 0.84));

    // July's champions collapsed: an order of magnitude fewer rounds.
    v.push_back(make("freewallet1.net", kActive, 0.075));
    v.push_back(make("freewallet2.net", kActive, 0.070));
    v.push_back(make("bougalis.net", kActive, 0.058));

    for (int i = 1; i <= 5; ++i) {
        v.push_back(make("testnet.ripple.com #" + std::to_string(i), kTestnet));
    }

    v.push_back(make("rippled.media.mit.edu", kLaggard, 0.30));
    v.push_back(make("rippled.mr.exchange", kLaggard, 0.24));
    v.push_back(make("n94RVq...zYLazo", kLaggard, 0.35));
    v.push_back(make("n94rRX...QSpVQM", kLaggard, 0.28));
    v.push_back(make("n9J2fT...rK2ymG", kIdler));
    v.push_back(make("n9Jt1u...9fpxMz", kIdler));
    v.push_back(make("n9K6Yb...xsMTuo", kForked));
    v.push_back(make("n9KTpi...avNAUX", kForked));
    v.push_back(make("n9Kewx...VWJ4xP", kForked));
    v.push_back(make("n9Kszs...tRmcav", kForked));
    v.push_back(make("n9KvK2...pzssZL", kForked));
    v.push_back(make("n9LiYQ...AHKqhh", kIdler));
    v.push_back(make("n9MH5P...3Zs1ky", kForked));
    v.push_back(make("n9MHog...SYqH9c", kForked));
    v.push_back(make("n9MKk7...F4SG8T", kForked));
    v.push_back(make("n9Mb8Z...aKiCnD", kForked));
    v.push_back(make("n9MbL5...rwSuXm", kIdler));
    v.push_back(make("n9Mm3t...nQWpg7", kIdler));
    return period;
}

std::vector<PeriodSpec> all_periods() {
    return {december_2015(), july_2016(), november_2016()};
}

ConsensusConfig two_week_config(double scale, const util::RngStream& stream) {
    ConsensusConfig config;
    config.quorum = 0.80;
    config.round_interval_seconds = 4.8;
    // Two weeks of 4.8s rounds = 252,000 pages at scale 1.
    const double rounds = 252'000.0 * std::clamp(scale, 0.0001, 1.0);
    config.rounds = static_cast<std::uint64_t>(rounds);
    config.start_time = util::from_calendar(2015, 12, 1);
    // ConsensusConfig stays trivially copyable: store the derivation
    // key; the simulation rebuilds the stream from it.
    config.seed = stream.key();
    return config;
}

}  // namespace xrpl::consensus
