// Validator identities and behaviour profiles.
//
// Fig 2 of the paper classifies the validators it observed into
// recognizable behaviour classes; the simulator reproduces those
// classes directly:
//   kCore     - Ripple Labs' R1..R5: always on, always in sync.
//   kActive   - independent, highly available, in sync.
//   kLaggard  - "struggling to stay in sync ... due to limited
//               hardware or network performance": participates, but
//               its signed pages mostly miss the main chain.
//   kForked   - "contributing to a different, private Ripple ledger":
//               signs plenty of pages, none of them valid.
//   kTestnet  - validates testnet.ripple.com's parallel chain: ~full
//               participation there, zero pages on the main ledger.
//   kIdler    - seen in the stream but hardly ever participates.
#pragma once

#include <cstdint>
#include <string>

#include "ledger/types.hpp"

namespace xrpl::consensus {

enum class ValidatorBehavior : std::uint8_t {
    kCore,
    kActive,
    kLaggard,
    kForked,
    kTestnet,
    kIdler,
};

/// Static description of one validator in a simulated period.
struct ValidatorSpec {
    /// Display label: an internet domain when the operator announced
    /// one, otherwise the abbreviated node public key (the paper's
    /// "n94a8g...endSoo" style).
    std::string label;
    ValidatorBehavior behavior = ValidatorBehavior::kActive;
    /// Probability of emitting a validation in any given round.
    /// Negative means "use the behaviour default".
    double availability = -1.0;
    /// Probability that an emitted validation matches the main-chain
    /// candidate (only meaningful for laggards; cores/actives are 1,
    /// forked/testnet are 0). Negative = behaviour default.
    double sync_probability = -1.0;
    /// Whether mainnet consensus counts this validator's vote towards
    /// the 80% quorum (the curated UNL).
    bool on_unl = false;
};

/// Behaviour-derived defaults.
[[nodiscard]] double default_availability(ValidatorBehavior b) noexcept;
[[nodiscard]] double default_sync_probability(ValidatorBehavior b) noexcept;

/// A registered validator with its derived node key.
struct Validator {
    std::uint32_t index = 0;
    ValidatorSpec spec;
    /// Node public key id, derived deterministically from the label;
    /// rendered base58check with the node-public prefix ("n...").
    std::string node_key;

    [[nodiscard]] double availability() const noexcept {
        return spec.availability >= 0.0 ? spec.availability
                                        : default_availability(spec.behavior);
    }
    [[nodiscard]] double sync_probability() const noexcept {
        return spec.sync_probability >= 0.0
                   ? spec.sync_probability
                   : default_sync_probability(spec.behavior);
    }
    [[nodiscard]] bool is_testnet() const noexcept {
        return spec.behavior == ValidatorBehavior::kTestnet;
    }
};

/// Derive the "n..." node key string for a label (deterministic).
[[nodiscard]] std::string derive_node_key(const std::string& label);

/// Human-readable behaviour name (for reports).
[[nodiscard]] const char* behavior_name(ValidatorBehavior b) noexcept;

}  // namespace xrpl::consensus
