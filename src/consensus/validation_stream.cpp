#include "consensus/validation_stream.hpp"

// Header-only (inline pub/sub); the translation unit keeps the build
// inventory aligned with DESIGN.md.
