// Robustness experiments for §IV's discussion.
//
// The paper's concern: "a malicious party hijacking or compromising
// the majority of these validators could endanger the whole Ripple
// system". takeover_sweep() measures it directly — knock out the k
// most available UNL validators and watch the close rate.
//
// The paper's proposed remedy: "introducing a carefully crafted
// reward system ... defined as an added tax value to the transactions
// that go through in each validation round. A larger number of
// validators would lead to a better distributed validation process."
// simulate_reward_adoption() models that economy: validators join
// while per-validator revenue beats operating cost, and the takeover
// resistance of the grown population is reported each epoch.
#pragma once

#include <cstdint>
#include <vector>

#include "consensus/period_config.hpp"
#include "consensus/rpca.hpp"
#include "util/rng.hpp"

namespace xrpl::consensus {

/// One point of the takeover sweep.
struct TakeoverResult {
    std::size_t compromised = 0;  // UNL validators knocked out
    std::uint64_t rounds = 0;
    std::uint64_t pages_closed = 0;

    [[nodiscard]] double close_rate() const noexcept {
        return rounds == 0 ? 0.0
                           : static_cast<double>(pages_closed) /
                                 static_cast<double>(rounds);
    }
};

/// Re-run the period's consensus with 0..max_compromised of its most
/// available UNL validators disabled (availability forced to zero).
[[nodiscard]] std::vector<TakeoverResult> takeover_sweep(
    const PeriodSpec& period, const ConsensusConfig& config,
    std::size_t max_compromised);

/// Probability that a round closes when `validators` independent UNL
/// members are each up with probability `availability` and quorum is
/// `quorum` — the analytic binomial tail P(up >= ceil(quorum * n)).
[[nodiscard]] double close_probability(std::size_t validators,
                                       double availability, double quorum);

/// The reward economy.
struct RewardPolicy {
    /// Fee income a validator collects per epoch when validating
    /// (the paper's "added tax value"), in XRP.
    double reward_per_epoch = 1'000.0;
    /// What running a validator costs per epoch ("powerful machines
    /// with broadband internet"), in XRP.
    double operating_cost_per_epoch = 400.0;
    /// Marginal reward dilution: income is split across validators.
    /// Effective income per validator = reward_per_epoch * initial /
    /// current (the tax pool is roughly constant).
    std::size_t initial_validators = 5;
    /// Adoption responsiveness: expected joiners per epoch per unit of
    /// profit ratio above break-even.
    double adoption_rate = 3.0;
    /// Validator availability assumed for the robustness metric.
    double availability = 0.95;
    double quorum = 0.80;
};

/// P(a round closes) when an attacker has knocked out `compromised`
/// of the `validators` UNL members: the survivors must still carry
/// the quorum computed over the FULL list.
[[nodiscard]] double close_probability_after_takeover(std::size_t validators,
                                                      std::size_t compromised,
                                                      double availability,
                                                      double quorum);

struct RewardEpoch {
    std::size_t epoch = 0;
    std::size_t validators = 0;
    double income_per_validator = 0.0;
    /// P(a round closes) if an attacker takes out the 8 busiest
    /// validators — roughly today's entire independent active set.
    double close_rate_under_takeover_of_8 = 0.0;
};

/// Simulate `epochs` of validator-population dynamics under `policy`,
/// drawing the adoption noise from `stream`.
[[nodiscard]] std::vector<RewardEpoch> simulate_reward_adoption(
    const RewardPolicy& policy, std::size_t epochs,
    const util::RngStream& stream);

}  // namespace xrpl::consensus
