// The three collection periods of §IV, as validator populations.
//
// Labels follow Fig 2 (domains where the paper saw one, abbreviated
// "n9..." node keys otherwise). Behaviour classes and availability
// overrides encode what the paper measured:
//   Dec 2015 — 5 Ripple Labs cores + 3 active independents, 5
//     laggards "struggling to stay in sync", and 21 validators none
//     of whose pages were valid (private forks / hopeless latency).
//   Jul 2016 — 10 actives (bougalis.net x2, freewallet1/2.net,
//     mduo13.com, youwant.to + 4 unidentified), 5 testnet validators
//     near 200K pages each, and an idle/laggard tail.
//   Nov 2016 — 8 actives; freewallet1/2.net collapse to <20K pages,
//     one bougalis.net machine disappears and the other shows ~15K
//     rounds; the 5 testnet validators persist.
#pragma once

#include <string>
#include <vector>

#include "consensus/rpca.hpp"
#include "consensus/validator.hpp"

namespace xrpl::consensus {

struct PeriodSpec {
    std::string name;
    std::vector<ValidatorSpec> validators;
};

[[nodiscard]] PeriodSpec december_2015();
[[nodiscard]] PeriodSpec july_2016();
[[nodiscard]] PeriodSpec november_2016();

/// All three, in order.
[[nodiscard]] std::vector<PeriodSpec> all_periods();

/// Consensus config for a two-week capture at the given scale
/// (scale=1.0 reproduces the full ~252K rounds; benches default to a
/// tenth for speed — counts shrink proportionally, shape is identical).
/// The simulation seeds from `stream` (conventionally
/// root.derive("period", i)), so periods can run concurrently or
/// reordered without their draw sequences colliding — unlike the old
/// `seed + i` convention this replaces.
[[nodiscard]] ConsensusConfig two_week_config(double scale,
                                              const util::RngStream& stream);

}  // namespace xrpl::consensus
