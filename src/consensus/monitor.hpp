// The validation monitor — the paper's measurement server.
//
// Subscribes to the validation stream and, like the authors' ad-hoc
// collector, reconstructs per-validator statistics: how many pages
// each validator signed in total, and how many of those signatures
// match pages that actually sealed on the main public ledger ("valid
// pages", Fig 2). Signatures are held in a small pending window until
// the matching PageClosed event arrives; signatures whose page never
// closes on the main chain (laggards, forks, testnet) count only
// toward the total.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "consensus/validation_stream.hpp"
#include "consensus/validator.hpp"

namespace xrpl::consensus {

/// Per-validator roll-up for one collection period (one Fig 2 bar pair).
struct ValidatorReport {
    std::uint32_t index = 0;
    std::string label;
    std::string node_key;
    ValidatorBehavior behavior = ValidatorBehavior::kActive;
    std::uint64_t total_pages = 0;
    std::uint64_t valid_pages = 0;
};

class ValidationMonitor {
public:
    /// `validators` provides the labels; `pending_window_rounds` is how
    /// long a signature waits for its page before being written off.
    explicit ValidationMonitor(const std::vector<Validator>& validators,
                               std::uint64_t pending_window_rounds = 4);

    /// Wire the monitor into a stream (subscribes both event kinds).
    void attach(ValidationStream& stream);

    void on_validation(const ValidationMessage& message);
    void on_page(const PageClosed& event);

    /// Reports sorted by label, as the paper's plots are.
    [[nodiscard]] std::vector<ValidatorReport> report() const;

    /// Count of validators whose valid-page count is at least
    /// `fraction` of the busiest core validator's — the paper's
    /// "actively contributing" criterion.
    [[nodiscard]] std::size_t active_count(double fraction) const;

    [[nodiscard]] std::uint64_t pending_size() const noexcept;

private:
    void prune(std::uint64_t current_round);

    struct Counters {
        std::uint64_t total = 0;
        std::uint64_t valid = 0;
    };

    const std::vector<Validator>* validators_;
    std::uint64_t window_;
    std::vector<Counters> counters_;
    std::unordered_map<ledger::Hash256, std::vector<std::uint32_t>> pending_;
    std::deque<std::pair<std::uint64_t, ledger::Hash256>> expiry_;
    std::uint64_t last_round_ = 0;
};

}  // namespace xrpl::consensus
