#include "consensus/validator.hpp"

#include <vector>

#include "util/base58.hpp"
#include "util/sha256.hpp"

namespace xrpl::consensus {

double default_availability(ValidatorBehavior b) noexcept {
    switch (b) {
        case ValidatorBehavior::kCore: return 0.995;
        case ValidatorBehavior::kActive: return 0.94;
        case ValidatorBehavior::kLaggard: return 0.45;
        case ValidatorBehavior::kForked: return 0.80;
        case ValidatorBehavior::kTestnet: return 0.97;
        case ValidatorBehavior::kIdler: return 0.02;
    }
    return 0.0;
}

double default_sync_probability(ValidatorBehavior b) noexcept {
    switch (b) {
        case ValidatorBehavior::kCore: return 1.0;
        case ValidatorBehavior::kActive: return 0.995;
        case ValidatorBehavior::kLaggard: return 0.12;
        case ValidatorBehavior::kForked: return 0.0;
        case ValidatorBehavior::kTestnet: return 0.0;
        case ValidatorBehavior::kIdler: return 0.9;
    }
    return 0.0;
}

std::string derive_node_key(const std::string& label) {
    const util::Sha256Digest digest = util::sha256("validator-node-key:" + label);
    // Node public keys are 33 bytes on the real network (compressed
    // secp256k1 points); pad the digest to that length so the
    // base58check form carries the familiar leading 'n'.
    std::vector<std::uint8_t> payload(digest.begin(), digest.end());
    payload.push_back(0x02);
    return util::base58check_encode(util::kTokenNodePublic, payload);
}

const char* behavior_name(ValidatorBehavior b) noexcept {
    switch (b) {
        case ValidatorBehavior::kCore: return "core";
        case ValidatorBehavior::kActive: return "active";
        case ValidatorBehavior::kLaggard: return "laggard";
        case ValidatorBehavior::kForked: return "forked";
        case ValidatorBehavior::kTestnet: return "testnet";
        case ValidatorBehavior::kIdler: return "idler";
    }
    return "?";
}

}  // namespace xrpl::consensus
