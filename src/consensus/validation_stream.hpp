// The validation stream — the event feed the paper's collection
// server subscribed to ("we set up a Ripple server that made use of
// the Ripple's validation stream to capture and store" §IV).
//
// Publishers emit one ValidationMessage per validator signature plus
// a PageClosed event whenever a round seals a page on some chain.
// Subscribers (the monitor, the example's live printer) receive
// events in publication order.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "ledger/types.hpp"

namespace xrpl::consensus {

/// Which chain an event belongs to.
enum class ChainTag : std::uint8_t { kMain, kTestnet, kPrivateFork };

/// One signed validation as seen on the stream.
struct ValidationMessage {
    std::uint64_t round = 0;
    std::uint32_t validator_index = 0;
    ledger::Hash256 page_hash;
};

/// A page reaching quorum on a chain.
struct PageClosed {
    std::uint64_t round = 0;
    ChainTag chain = ChainTag::kMain;
    ledger::Hash256 page_hash;
};

/// Synchronous pub/sub stream.
class ValidationStream {
public:
    using ValidationHandler = std::function<void(const ValidationMessage&)>;
    using PageClosedHandler = std::function<void(const PageClosed&)>;

    void subscribe_validations(ValidationHandler handler) {
        validation_handlers_.push_back(std::move(handler));
    }
    void subscribe_pages(PageClosedHandler handler) {
        page_handlers_.push_back(std::move(handler));
    }

    void publish(const ValidationMessage& message) {
        ++validations_published_;
        for (const auto& handler : validation_handlers_) handler(message);
    }
    void publish(const PageClosed& event) {
        ++pages_published_;
        for (const auto& handler : page_handlers_) handler(event);
    }

    [[nodiscard]] std::uint64_t validations_published() const noexcept {
        return validations_published_;
    }
    [[nodiscard]] std::uint64_t pages_published() const noexcept {
        return pages_published_;
    }

private:
    std::vector<ValidationHandler> validation_handlers_;
    std::vector<PageClosedHandler> page_handlers_;
    std::uint64_t validations_published_ = 0;
    std::uint64_t pages_published_ = 0;
};

}  // namespace xrpl::consensus
