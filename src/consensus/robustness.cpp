#include "consensus/robustness.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace xrpl::consensus {

std::vector<TakeoverResult> takeover_sweep(const PeriodSpec& period,
                                           const ConsensusConfig& config,
                                           std::size_t max_compromised) {
    // UNL validators, most available first — the attacker goes after
    // the workhorses.
    std::vector<std::size_t> unl_indices;
    for (std::size_t i = 0; i < period.validators.size(); ++i) {
        if (period.validators[i].on_unl) unl_indices.push_back(i);
    }
    std::sort(unl_indices.begin(), unl_indices.end(),
              [&](std::size_t a, std::size_t b) {
                  const auto avail = [&](std::size_t i) {
                      const ValidatorSpec& v = period.validators[i];
                      return v.availability >= 0.0
                                 ? v.availability
                                 : default_availability(v.behavior);
                  };
                  return avail(a) > avail(b);
              });

    std::vector<TakeoverResult> results;
    for (std::size_t k = 0; k <= std::min(max_compromised, unl_indices.size());
         ++k) {
        std::vector<ValidatorSpec> validators = period.validators;
        for (std::size_t i = 0; i < k; ++i) {
            validators[unl_indices[i]].availability = 0.0;
        }
        ConsensusSimulation sim(validators, config);
        ValidationStream stream;
        const ConsensusStats stats = sim.run(stream);

        TakeoverResult result;
        result.compromised = k;
        result.rounds = stats.rounds;
        result.pages_closed = stats.main_pages_closed;
        results.push_back(result);
    }
    return results;
}

double close_probability(std::size_t validators, double availability,
                         double quorum) {
    if (validators == 0) return 0.0;
    const auto needed = static_cast<std::size_t>(
        std::ceil(quorum * static_cast<double>(validators)));
    if (availability >= 1.0) return needed <= validators ? 1.0 : 0.0;
    if (availability <= 0.0) return needed == 0 ? 1.0 : 0.0;
    // Binomial tail P(X >= needed), X ~ Bin(validators, availability).
    double probability = 0.0;
    double term = std::pow(1.0 - availability, validators);  // P(X = 0)
    // Iterate k = 0..n using the ratio recurrence to avoid overflow.
    for (std::size_t k = 0; k <= validators; ++k) {
        if (k >= needed) probability += term;
        if (k < validators) {
            term *= (static_cast<double>(validators - k) /
                     static_cast<double>(k + 1)) *
                    (availability / (1.0 - availability));
        }
    }
    return std::min(probability, 1.0);
}

double close_probability_after_takeover(std::size_t validators,
                                        std::size_t compromised,
                                        double availability, double quorum) {
    if (validators == 0 || compromised >= validators) return 0.0;
    const auto needed = static_cast<std::size_t>(
        std::ceil(quorum * static_cast<double>(validators)));
    const std::size_t survivors = validators - compromised;
    if (needed > survivors) return 0.0;
    if (availability >= 1.0) return 1.0;
    if (availability <= 0.0) return needed == 0 ? 1.0 : 0.0;
    // P(Bin(survivors, availability) >= needed).
    double probability = 0.0;
    double term = std::pow(1.0 - availability, survivors);
    for (std::size_t k = 0; k <= survivors; ++k) {
        if (k >= needed) probability += term;
        if (k < survivors) {
            term *= (static_cast<double>(survivors - k) /
                     static_cast<double>(k + 1)) *
                    (availability / (1.0 - availability));
        }
    }
    return std::min(probability, 1.0);
}

std::vector<RewardEpoch> simulate_reward_adoption(
    const RewardPolicy& policy, std::size_t epochs,
    const util::RngStream& stream) {
    util::Rng rng = stream.rng();
    std::vector<RewardEpoch> trajectory;
    trajectory.reserve(epochs);

    std::size_t validators = policy.initial_validators;
    for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
        const double income =
            policy.reward_per_epoch *
            static_cast<double>(policy.initial_validators) /
            static_cast<double>(std::max<std::size_t>(validators, 1));

        RewardEpoch point;
        point.epoch = epoch;
        point.validators = validators;
        point.income_per_validator = income;
        point.close_rate_under_takeover_of_8 = close_probability_after_takeover(
            validators, 8, policy.availability, policy.quorum);
        trajectory.push_back(point);

        // Population dynamics: profit attracts, loss repels.
        const double ratio = income / policy.operating_cost_per_epoch;
        if (ratio > 1.0) {
            const double expected = policy.adoption_rate * (ratio - 1.0);
            std::size_t joiners = 0;
            // Poisson via repeated Bernoulli thinning (small means).
            double remaining = expected;
            while (remaining > 0.0) {
                if (rng.bernoulli(std::min(1.0, remaining))) ++joiners;
                remaining -= 1.0;
            }
            validators += joiners;
        } else if (ratio < 0.8 && validators > policy.initial_validators) {
            // Operators shut down when clearly under water, but the
            // original core never leaves (as the paper expects of
            // Ripple Labs' R1-R5).
            --validators;
        }
    }
    return trajectory;
}

}  // namespace xrpl::consensus
