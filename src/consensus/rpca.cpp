#include "consensus/rpca.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "util/contract.hpp"
#include "util/sha256.hpp"

namespace xrpl::consensus {

namespace {

/// The testnet is a different ledger instance with its own genesis;
/// a constant marker folded into every testnet page hash keeps the
/// two chains disjoint even when their headers coincide.
ledger::Hash256 testnet_tag() {
    ledger::Hash256 tag;
    tag.bytes[0] = 0x7e;  // 't'-ish
    tag.bytes[1] = 0x57;
    return tag;
}

/// A page hash that is NOT on any chain: what a stale or forked
/// validator signs. Unique per (round, validator) so forks don't
/// accidentally collide with real pages.
ledger::Hash256 divergent_hash(std::uint64_t round, std::uint32_t validator_index) {
    util::Sha256 hasher;
    hasher.update("divergent");
    std::array<std::uint8_t, 12> buf;
    for (int i = 0; i < 8; ++i) {
        buf[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(round >> (56 - 8 * i));
    }
    for (int i = 0; i < 4; ++i) {
        buf[static_cast<std::size_t>(8 + i)] =
            static_cast<std::uint8_t>(validator_index >> (24 - 8 * i));
    }
    hasher.update(buf);
    const util::Sha256Digest digest = hasher.finish();
    ledger::Hash256 h;
    std::copy(digest.begin(), digest.end(), h.bytes.begin());
    return h;
}

}  // namespace

ConsensusSimulation::ConsensusSimulation(std::vector<ValidatorSpec> specs,
                                         ConsensusConfig config)
    : config_(config) {
    validators_.reserve(specs.size());
    std::uint32_t index = 0;
    for (ValidatorSpec& spec : specs) {
        Validator v;
        v.index = index++;
        v.node_key = derive_node_key(spec.label);
        v.spec = std::move(spec);
        if (v.spec.on_unl) ++unl_size_;
        validators_.push_back(std::move(v));
    }
}

RoundOutcome ConsensusSimulation::run_round(std::uint64_t round,
                                            util::RippleTime close_time,
                                            std::vector<ledger::Hash256> tx_ids,
                                            ValidationStream& stream) {
    if (!rng_seeded_) {
        // config_.seed is a derivation key (see two_week_config);
        // materializing the stream's root generator draws the same
        // sequence the plain seeding convention did.
        rng_ = util::RngStream(config_.seed).rng();
        rng_seeded_ = true;
    }
    // A round number reused (or run backwards) would let one validator
    // validate two different pages at the same sequence — exactly the
    // conflicting-validation fault the protocol's safety argument
    // excludes. One run_round() call per round keeps signatures unique
    // per (validator, sequence).
    XRPL_ASSERT(round > last_round_,
                "rounds must increase monotonically across run_round calls");
    last_round_ = round;
    // 0.8 is the post-2015 value the paper cites; anything outside
    // (0, 1] is not a vote fraction at all. (The pre-2015 0.5 ablation
    // in micro_benchmarks stays legal.)
    XRPL_ASSERT(config_.quorum > 0.0 && config_.quorum <= 1.0,
                "quorum must be a fraction of the UNL in (0, 1]");
    const auto quorum_votes = static_cast<std::size_t>(
        std::ceil(config_.quorum * static_cast<double>(unl_size_)));
    XRPL_INVARIANT(quorum_votes <= unl_size_,
                   "required votes cannot exceed the UNL size");

    // Candidate pages this round. Their hashes depend on the entire
    // history below them, via the parent-hash chain.
    const ledger::Hash256 main_parent =
        main_chain_.empty() ? ledger::Hash256{} : main_chain_.last().hash;
    const ledger::Hash256 main_candidate = ledger::compute_page_hash(
        static_cast<std::uint32_t>(main_chain_.size() + 1), main_parent,
        close_time, tx_ids);
    const ledger::Hash256 testnet_parent =
        testnet_chain_.empty() ? ledger::Hash256{} : testnet_chain_.last().hash;
    const ledger::Hash256 testnet_candidate = ledger::compute_page_hash(
        static_cast<std::uint32_t>(testnet_chain_.size() + 1), testnet_parent,
        close_time, {testnet_tag()});

    std::size_t unl_candidate_votes = 0;
    std::size_t testnet_votes = 0;
    std::size_t testnet_population = 0;
    std::size_t validations_published = 0;

    for (const Validator& v : validators_) {
        if (v.is_testnet()) ++testnet_population;
        if (!rng_.bernoulli(v.availability())) continue;

        ledger::Hash256 signed_hash;
        bool votes_main_candidate = false;
        if (v.is_testnet()) {
            signed_hash = testnet_candidate;
            ++testnet_votes;
        } else if (v.spec.behavior == ValidatorBehavior::kForked) {
            signed_hash = divergent_hash(round, v.index);
        } else if (rng_.bernoulli(v.sync_probability())) {
            signed_hash = main_candidate;
            votes_main_candidate = true;
        } else {
            signed_hash = divergent_hash(round, v.index);
        }

        if (votes_main_candidate && v.spec.on_unl) ++unl_candidate_votes;
        stream.publish(ValidationMessage{round, v.index, signed_hash});
        ++validations_published;
    }

    // One registry touch per round with locally accumulated totals —
    // the per-validator loop above stays metric-free.
    static obs::Counter& rounds_run = obs::counter("consensus.rounds");
    static obs::Counter& validations = obs::counter("consensus.validations");
    static obs::Counter& unl_votes = obs::counter("consensus.votes.unl");
    static obs::Counter& tn_votes = obs::counter("consensus.votes.testnet");
    rounds_run.add();
    validations.add(validations_published);
    unl_votes.add(unl_candidate_votes);
    tn_votes.add(testnet_votes);

    RoundOutcome outcome;
    ++cumulative_.rounds;
    XRPL_INVARIANT(unl_candidate_votes <= unl_size_,
                   "candidate votes are a subset of the UNL");

    // Main chain quorum check.
    if (unl_candidate_votes >= quorum_votes && unl_size_ > 0) {
        main_chain_.append(close_time, std::move(tx_ids));
        ++cumulative_.main_pages_closed;
        outcome.main_closed = true;
        outcome.main_page = main_candidate;
        stream.publish(PageClosed{round, ChainTag::kMain, main_candidate});
        static obs::Counter& pages_main = obs::counter("consensus.pages.main");
        pages_main.add();
    } else {
        ++cumulative_.main_rounds_failed;
        static obs::Counter& failed = obs::counter("consensus.rounds_failed");
        failed.add();
    }

    // Testnet: same 80% rule among testnet validators.
    if (testnet_population > 0) {
        const auto testnet_quorum = static_cast<std::size_t>(
            std::ceil(config_.quorum * static_cast<double>(testnet_population)));
        if (testnet_votes >= testnet_quorum) {
            testnet_chain_.append(close_time, {testnet_tag()});
            ++cumulative_.testnet_pages_closed;
            outcome.testnet_closed = true;
            stream.publish(PageClosed{round, ChainTag::kTestnet, testnet_candidate});
            static obs::Counter& pages_tn =
                obs::counter("consensus.pages.testnet");
            pages_tn.add();
        }
    }
    return outcome;
}

ConsensusStats ConsensusSimulation::run(ValidationStream& stream) {
    double clock = 0.0;
    for (std::uint64_t round = 1; round <= config_.rounds; ++round) {
        clock += config_.round_interval_seconds;
        const util::RippleTime close_time{
            config_.start_time.seconds + static_cast<std::int64_t>(clock)};
        (void)run_round(round, close_time, {}, stream);
    }
    return cumulative_;
}

}  // namespace xrpl::consensus
