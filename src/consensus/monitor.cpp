#include "consensus/monitor.hpp"

#include <algorithm>

#include "util/contract.hpp"

namespace xrpl::consensus {

ValidationMonitor::ValidationMonitor(const std::vector<Validator>& validators,
                                     std::uint64_t pending_window_rounds)
    : validators_(&validators),
      window_(pending_window_rounds),
      counters_(validators.size()) {}

void ValidationMonitor::attach(ValidationStream& stream) {
    stream.subscribe_validations(
        [this](const ValidationMessage& m) { on_validation(m); });
    stream.subscribe_pages([this](const PageClosed& p) { on_page(p); });
}

void ValidationMonitor::on_validation(const ValidationMessage& message) {
    if (message.validator_index >= counters_.size()) return;
    prune(message.round);
    ++counters_[message.validator_index].total;
    auto [it, inserted] = pending_.try_emplace(message.page_hash);
    it->second.push_back(message.validator_index);
    if (inserted) expiry_.emplace_back(message.round, message.page_hash);
}

void ValidationMonitor::on_page(const PageClosed& event) {
    // Only the main public ledger defines "valid" — the testnet chain
    // is the parallel instance whose validators show zero valid pages
    // in Fig 2(b,c).
    if (event.chain != ChainTag::kMain) return;
    const auto it = pending_.find(event.page_hash);
    if (it == pending_.end()) return;
    for (const std::uint32_t index : it->second) {
        if (index < counters_.size()) {
            ++counters_[index].valid;
            // Fig 2 plots valid/total per validator; a valid count
            // overtaking its total means a signature was credited to a
            // page the validator never signed.
            XRPL_INVARIANT(counters_[index].valid <= counters_[index].total,
                           "valid pages are a subset of signed pages");
        }
    }
    pending_.erase(it);
}

void ValidationMonitor::prune(std::uint64_t current_round) {
    last_round_ = std::max(last_round_, current_round);
    while (!expiry_.empty() &&
           expiry_.front().first + window_ < last_round_) {
        pending_.erase(expiry_.front().second);
        expiry_.pop_front();
    }
    // Every pending page hash is tracked by exactly one expiry entry
    // (try_emplace inserts the pair atomically); a skew would leak
    // signatures past the window.
    XRPL_INVARIANT(pending_.size() <= expiry_.size(),
                   "every pending page must carry an expiry entry");
}

std::vector<ValidatorReport> ValidationMonitor::report() const {
    std::vector<ValidatorReport> out;
    out.reserve(validators_->size());
    for (const Validator& v : *validators_) {
        ValidatorReport r;
        r.index = v.index;
        r.label = v.spec.label;
        r.node_key = v.node_key;
        r.behavior = v.spec.behavior;
        r.total_pages = counters_[v.index].total;
        r.valid_pages = counters_[v.index].valid;
        out.push_back(std::move(r));
    }
    std::sort(out.begin(), out.end(),
              [](const ValidatorReport& a, const ValidatorReport& b) {
                  return a.label < b.label;
              });
    return out;
}

std::size_t ValidationMonitor::active_count(double fraction) const {
    std::uint64_t core_best = 0;
    for (const Validator& v : *validators_) {
        if (v.spec.behavior == ValidatorBehavior::kCore) {
            core_best = std::max(core_best, counters_[v.index].valid);
        }
    }
    if (core_best == 0) return 0;
    std::size_t active = 0;
    const auto threshold =
        static_cast<std::uint64_t>(fraction * static_cast<double>(core_best));
    for (const Validator& v : *validators_) {
        if (counters_[v.index].valid >= threshold) ++active;
    }
    return active;
}

std::uint64_t ValidationMonitor::pending_size() const noexcept {
    return pending_.size();
}

}  // namespace xrpl::consensus
