// RPCA — the Ripple Protocol Consensus Algorithm, simulated.
//
// Each round a candidate page is proposed on the main chain; every
// mainnet validator that participates signs either the candidate
// (if in sync) or a divergent page (laggards sign stale pages, forked
// validators sign their private chain). The page seals when at least
// `quorum` (80% after the 2015 protocol change the paper cites) of
// the curated UNL signed the candidate. Testnet validators run the
// same protocol on their own parallel chain.
//
// All signatures flow through the ValidationStream, which is exactly
// what the paper's measurement server saw.
#pragma once

#include <cstdint>
#include <vector>

#include "consensus/validation_stream.hpp"
#include "consensus/validator.hpp"
#include "ledger/ledger_history.hpp"
#include "util/ripple_time.hpp"
#include "util/rng.hpp"

namespace xrpl::consensus {

struct ConsensusConfig {
    /// Fraction of UNL validations required to seal a page.
    double quorum = 0.80;
    /// Wall-clock spacing between rounds. The paper's two-week
    /// captures top out near 250K pages, implying ~4.8s per round.
    double round_interval_seconds = 4.8;
    /// Number of rounds to simulate.
    std::uint64_t rounds = 252'000;
    util::RippleTime start_time{};
    std::uint64_t seed = 1;
};

/// Aggregate outcome of a simulation run.
struct ConsensusStats {
    std::uint64_t rounds = 0;
    std::uint64_t main_pages_closed = 0;
    std::uint64_t main_rounds_failed = 0;   // quorum not reached
    std::uint64_t testnet_pages_closed = 0;
};

/// Outcome of one consensus round on the main chain.
struct RoundOutcome {
    bool main_closed = false;
    bool testnet_closed = false;
    /// Hash of the page sealed on the main chain (when main_closed).
    ledger::Hash256 main_page;
};

/// The network simulator.
class ConsensusSimulation {
public:
    ConsensusSimulation(std::vector<ValidatorSpec> specs, ConsensusConfig config);

    /// Run every round, publishing to `stream`.
    ConsensusStats run(ValidationStream& stream);

    /// Run a single round whose main-chain candidate page carries
    /// `tx_ids` (a full node drives this to seal real transactions).
    /// `round` must increase monotonically across calls.
    RoundOutcome run_round(std::uint64_t round, util::RippleTime close_time,
                           std::vector<ledger::Hash256> tx_ids,
                           ValidationStream& stream);

    [[nodiscard]] const std::vector<Validator>& validators() const noexcept {
        return validators_;
    }
    [[nodiscard]] const ledger::LedgerHistory& main_chain() const noexcept {
        return main_chain_;
    }
    [[nodiscard]] const ledger::LedgerHistory& testnet_chain() const noexcept {
        return testnet_chain_;
    }
    [[nodiscard]] const ConsensusConfig& config() const noexcept { return config_; }

    /// Size of the curated UNL (quorum denominator).
    [[nodiscard]] std::size_t unl_size() const noexcept { return unl_size_; }

private:
    std::vector<Validator> validators_;
    ConsensusConfig config_;
    ledger::LedgerHistory main_chain_;
    ledger::LedgerHistory testnet_chain_;
    std::size_t unl_size_ = 0;
    // Placeholder generator; re-seeded from config_.seed (a stream
    // key) on the first round.
    util::Rng rng_ = util::RngStream(0).rng();
    bool rng_seeded_ = false;
    ConsensusStats cumulative_;
    // Last round run_round() saw; enforces its monotonicity contract
    // (one candidate per round, so no validator can sign twice for the
    // same sequence number).
    std::uint64_t last_round_ = 0;
};

}  // namespace xrpl::consensus
