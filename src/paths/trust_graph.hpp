// A search view over the ledger's trust lines.
//
// The path finder sees the network through this class: per-account
// neighbor enumeration filtered by currency and positive capacity,
// plus an exclusion set used by the replay harness to simulate
// removed accounts (the paper's Market-Maker-removal experiment,
// Table II) without destroying ledger state.
//
// Two engines answer neighbor queries (selected by the XRPL_PATH_INDEX
// option, overridable per instance):
//  * indexed (default) — a lazily built, currency-partitioned CSR
//    GraphIndex; the BFS inner loop walks flat uint32 spans.
//  * legacy scan — the original lines_of() scan, kept as the parity
//    reference (for_each_neighbor / for_each_in_neighbor below).
// Both produce identical paths and ReplayStats; the parity suite
// (tests/integration/test_replay_parity.cpp) enforces it.
#pragma once

#include <unordered_set>
#include <vector>

#include "ledger/ledger.hpp"
#include "paths/graph_index.hpp"
#include "util/contract.hpp"
#include "util/options.hpp"

namespace xrpl::paths {

class TrustGraph {
public:
    explicit TrustGraph(const ledger::LedgerState& ledger,
                        bool use_index = util::options().path_index) noexcept
        : ledger_(&ledger), use_index_(use_index) {}

    /// Mark an account as removed: it will not be offered as a
    /// neighbor, endpoint checks are the caller's job.
    void exclude(const ledger::AccountID& account);
    void clear_exclusions() noexcept;
    [[nodiscard]] bool is_excluded(const ledger::AccountID& account) const {
        return excluded_.contains(account);
    }
    /// Index-space probe for the CSR engine: one bounds check + one
    /// load against the epoch-stamped exclusion array (clearing bumps
    /// the epoch instead of rewriting stamps).
    [[nodiscard]] bool is_excluded_index(std::uint32_t index) const noexcept {
        return index < excluded_stamp_.size() &&
               excluded_stamp_[index] == exclusion_epoch_;
    }
    [[nodiscard]] std::size_t exclusion_count() const noexcept {
        return excluded_.size();
    }
    [[nodiscard]] const std::unordered_set<ledger::AccountID>& exclusions()
        const noexcept {
        return excluded_;
    }

    /// Which engine this graph's searches use.
    [[nodiscard]] bool uses_index() const noexcept { return use_index_; }

    /// The CSR index, rebuilt here if the ledger topology moved since
    /// the last query. Exclusions never invalidate it (they are
    /// visit-time filters), and neither do balance/limit updates.
    [[nodiscard]] const GraphIndex& index() const {
        index_.ensure(*ledger_);
        return index_;
    }

    /// Invoke `fn(peer, line)` for every neighbor reachable from
    /// `from` over a `currency` trust line with positive capacity in
    /// the from->peer direction. Excluded peers are skipped. (Legacy
    /// scan enumeration — the parity reference for the CSR engine.)
    template <typename Fn>
    void for_each_neighbor(const ledger::AccountID& from, ledger::Currency currency,
                           Fn&& fn) const {
        for (const ledger::TrustLine* line : ledger_->lines_of(from)) {
            if (line->key().currency != currency) continue;
            const ledger::AccountID& peer = line->peer_of(from);
            // lines_of(a) must only return lines with `a` as one of two
            // DISTINCT endpoints; a self-loop would let the path finder
            // "ripple" value without moving it.
            XRPL_ASSERT(!(peer == from),
                        "trust lines must connect two distinct accounts");
            if (is_excluded(peer)) continue;
            const ledger::IouAmount capacity = line->capacity_from(from);
            if (capacity.is_zero() || capacity.is_negative()) continue;
            fn(peer, line);
        }
    }

    /// Degree of `from` in `currency` counting only positive-capacity,
    /// non-excluded edges. Used to pick which frontier to expand in
    /// the bidirectional search.
    [[nodiscard]] std::size_t out_degree(const ledger::AccountID& from,
                                         ledger::Currency currency) const {
        std::size_t n = 0;
        for_each_neighbor(from, currency,
                          [&](const ledger::AccountID&, const ledger::TrustLine*) { ++n; });
        return n;
    }

    /// Neighbors in the reverse direction: peers that can send TO
    /// `to` over a positive-capacity `currency` line.
    template <typename Fn>
    void for_each_in_neighbor(const ledger::AccountID& to, ledger::Currency currency,
                              Fn&& fn) const {
        for (const ledger::TrustLine* line : ledger_->lines_of(to)) {
            if (line->key().currency != currency) continue;
            const ledger::AccountID& peer = line->peer_of(to);
            if (is_excluded(peer)) continue;
            const ledger::IouAmount capacity = line->capacity_from(peer);
            if (capacity.is_zero() || capacity.is_negative()) continue;
            fn(peer, line);
        }
    }

    [[nodiscard]] const ledger::LedgerState& ledger() const noexcept { return *ledger_; }

private:
    const ledger::LedgerState* ledger_;
    std::unordered_set<ledger::AccountID> excluded_;
    /// excluded_stamp_[i] == exclusion_epoch_ means account index i is
    /// excluded. clear_exclusions() bumps the epoch: O(1), no rewrite.
    std::vector<std::uint64_t> excluded_stamp_;
    std::uint64_t exclusion_epoch_ = 1;
    bool use_index_;
    mutable GraphIndex index_;
};

}  // namespace xrpl::paths
