// A search view over the ledger's trust lines.
//
// The path finder sees the network through this class: per-account
// neighbor enumeration filtered by currency and positive capacity,
// plus an exclusion set used by the replay harness to simulate
// removed accounts (the paper's Market-Maker-removal experiment,
// Table II) without destroying ledger state.
#pragma once

#include <unordered_set>

#include "ledger/ledger.hpp"
#include "util/contract.hpp"

namespace xrpl::paths {

class TrustGraph {
public:
    explicit TrustGraph(const ledger::LedgerState& ledger) noexcept
        : ledger_(&ledger) {}

    /// Mark an account as removed: it will not be offered as a
    /// neighbor, endpoint checks are the caller's job.
    void exclude(const ledger::AccountID& account) { excluded_.insert(account); }
    void clear_exclusions() noexcept { excluded_.clear(); }
    [[nodiscard]] bool is_excluded(const ledger::AccountID& account) const {
        return excluded_.contains(account);
    }
    [[nodiscard]] std::size_t exclusion_count() const noexcept {
        return excluded_.size();
    }
    [[nodiscard]] const std::unordered_set<ledger::AccountID>& exclusions()
        const noexcept {
        return excluded_;
    }

    /// Invoke `fn(peer, line)` for every neighbor reachable from
    /// `from` over a `currency` trust line with positive capacity in
    /// the from->peer direction. Excluded peers are skipped.
    template <typename Fn>
    void for_each_neighbor(const ledger::AccountID& from, ledger::Currency currency,
                           Fn&& fn) const {
        for (const ledger::TrustLine* line : ledger_->lines_of(from)) {
            if (line->key().currency != currency) continue;
            const ledger::AccountID& peer = line->peer_of(from);
            // lines_of(a) must only return lines with `a` as one of two
            // DISTINCT endpoints; a self-loop would let the path finder
            // "ripple" value without moving it.
            XRPL_ASSERT(!(peer == from),
                        "trust lines must connect two distinct accounts");
            if (is_excluded(peer)) continue;
            if (line->capacity_from(from).is_zero() ||
                line->capacity_from(from).is_negative()) {
                continue;
            }
            fn(peer, line);
        }
    }

    /// Degree of `from` in `currency` counting only positive-capacity,
    /// non-excluded edges. Used to pick which frontier to expand in
    /// the bidirectional search.
    [[nodiscard]] std::size_t out_degree(const ledger::AccountID& from,
                                         ledger::Currency currency) const {
        std::size_t n = 0;
        for_each_neighbor(from, currency,
                          [&](const ledger::AccountID&, const ledger::TrustLine*) { ++n; });
        return n;
    }

    /// Neighbors in the reverse direction: peers that can send TO
    /// `to` over a positive-capacity `currency` line.
    template <typename Fn>
    void for_each_in_neighbor(const ledger::AccountID& to, ledger::Currency currency,
                              Fn&& fn) const {
        for (const ledger::TrustLine* line : ledger_->lines_of(to)) {
            if (line->key().currency != currency) continue;
            const ledger::AccountID& peer = line->peer_of(to);
            if (is_excluded(peer)) continue;
            if (line->capacity_from(peer).is_zero() ||
                line->capacity_from(peer).is_negative()) {
                continue;
            }
            fn(peer, line);
        }
    }

    [[nodiscard]] const ledger::LedgerState& ledger() const noexcept { return *ledger_; }

private:
    const ledger::LedgerState* ledger_;
    std::unordered_set<ledger::AccountID> excluded_;
};

}  // namespace xrpl::paths
