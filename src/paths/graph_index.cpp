#include "paths/graph_index.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/stopwatch.hpp"
#include "util/contract.hpp"

namespace xrpl::paths {

void GraphIndex::build(const ledger::LedgerState& ledger) {
    const auto account_count =
        static_cast<std::uint32_t>(ledger.account_count());

    // Pass 1 — discover the currency set. Iterating accounts in dense
    // index order (not the unordered line map) keeps the build
    // deterministic and gives each line exactly two visits, one per
    // endpoint.
    std::vector<ledger::Currency> currencies;
    for (std::uint32_t i = 0; i < account_count; ++i) {
        for (const ledger::TrustLine* line :
             ledger.lines_of(ledger.account_by_index(i))) {
            currencies.push_back(line->key().currency);
        }
    }
    std::sort(currencies.begin(), currencies.end());
    currencies.erase(std::unique(currencies.begin(), currencies.end()),
                     currencies.end());

    partitions_.clear();
    partitions_.resize(currencies.size());
    for (std::size_t p = 0; p < currencies.size(); ++p) {
        partitions_[p].currency = currencies[p];
        partitions_[p].offsets.assign(account_count + 1, 0);
    }
    const auto part_of = [&](ledger::Currency currency) -> Partition& {
        const auto it = std::lower_bound(
            currencies.begin(), currencies.end(), currency);
        return partitions_[static_cast<std::size_t>(it - currencies.begin())];
    };

    // Pass 2 — per-partition degree counts into the offset slots.
    for (std::uint32_t i = 0; i < account_count; ++i) {
        for (const ledger::TrustLine* line :
             ledger.lines_of(ledger.account_by_index(i))) {
            ++part_of(line->key().currency).offsets[i + 1];
        }
    }
    for (Partition& part : partitions_) {
        for (std::size_t i = 1; i < part.offsets.size(); ++i) {
            part.offsets[i] += part.offsets[i - 1];
        }
        part.edges.resize(part.offsets.back());
    }

    // Pass 3 — fill. Per-node edge order within a partition preserves
    // lines_of() insertion order (the legacy scan's enumeration
    // order), which is what makes the two engines return identical
    // paths when ties exist.
    std::vector<std::uint32_t> cursor;
    for (Partition& part : partitions_) {
        cursor.assign(part.offsets.begin(), part.offsets.end() - 1);
        // Reuse: each partition fills from its own row pointers.
        for (std::uint32_t i = 0; i < account_count; ++i) {
            const ledger::AccountID& node = ledger.account_by_index(i);
            for (const ledger::TrustLine* line : ledger.lines_of(node)) {
                if (!(line->key().currency == part.currency)) continue;
                const bool node_is_low = node == line->key().low;
                const ledger::AccountID& peer_id =
                    node_is_low ? line->key().high : line->key().low;
                const ledger::AccountRoot* peer = ledger.account(peer_id);
                XRPL_ASSERT(peer != nullptr,
                            "trust lines must connect existing accounts");
                part.edges[cursor[i]++] =
                    Edge{peer->index, line, node_is_low, peer->allows_rippling};
            }
        }
    }

    built_ = true;
    built_generation_ = ledger.topology_generation();
}

void GraphIndex::ensure(const ledger::LedgerState& ledger) {
    if (built_ && built_generation_ == ledger.topology_generation()) {
        static obs::Counter& hits = obs::counter("paths.index.hits");
        hits.add(1);
        return;
    }
    static obs::Counter& builds = obs::counter("paths.index.builds");
    static obs::Counter& rebuilds = obs::counter("paths.index.rebuilds");
    static obs::Histogram& build_ns = obs::histogram("paths.index.build_ns");
    const bool rebuild = built_;
    const obs::Stopwatch watch;
    build(ledger);
    build_ns.record(watch.elapsed_ns());
    builds.add(1);
    if (rebuild) rebuilds.add(1);
}

const GraphIndex::Partition* GraphIndex::partition(
    ledger::Currency currency) const noexcept {
    const auto it = std::lower_bound(
        partitions_.begin(), partitions_.end(), currency,
        [](const Partition& part, ledger::Currency c) {
            return part.currency < c;
        });
    if (it == partitions_.end() || !(it->currency == currency)) return nullptr;
    return &*it;
}

std::size_t GraphIndex::edge_count() const noexcept {
    std::size_t total = 0;
    for (const Partition& part : partitions_) total += part.edges.size();
    return total;
}

}  // namespace xrpl::paths
