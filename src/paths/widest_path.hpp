// Widest-path search — the ablation partner of the BFS finder.
//
// PathFinder returns a SHORTEST positive-capacity path; this finder
// returns the path with the MAXIMUM bottleneck capacity (bounded by
// the same hop cap), a Dijkstra variant ordered by bottleneck. Wider
// paths move more value per path, so payments need fewer parallel
// paths at the cost of longer routes — the trade the
// `micro_benchmarks` ablation and DESIGN.md §6 examine.
//
// Like PathFinder, the relaxation core is one template instantiated
// over the CSR GraphIndex expander (default) and the legacy lines_of()
// scan; labels live in an epoch-stamped flat scratch vector keyed by
// dense account index (no per-call hash map).
#pragma once

#include <optional>
#include <vector>

#include "paths/path_finder.hpp"

namespace xrpl::paths {

class WidestPathFinder {
public:
    explicit WidestPathFinder(PathFinderConfig config = {}) noexcept
        : config_(config) {}

    /// The positive-capacity path from `from` to `to` in `currency`
    /// maximizing the bottleneck, or nullopt. Honors graph exclusions
    /// and DefaultRipple exactly like PathFinder.
    [[nodiscard]] std::optional<TrustPath> find(const TrustGraph& graph,
                                                const ledger::AccountID& from,
                                                const ledger::AccountID& to,
                                                ledger::Currency currency);

    [[nodiscard]] const PathFinderConfig& config() const noexcept { return config_; }

private:
    /// Engine-agnostic max-bottleneck Dijkstra. `expand.out(i, visit)`
    /// calls visit(peer_index, peer_ripples, capacity) for every
    /// positive-capacity, non-excluded out-neighbor of dense index i.
    /// Defined in widest_path.cpp; instantiated for the two expanders.
    template <typename Expander>
    std::optional<TrustPath> run_search(const TrustGraph& graph,
                                        const Expander& expand,
                                        const ledger::AccountID& from,
                                        const ledger::AccountID& to,
                                        std::uint32_t src_index,
                                        std::uint32_t dst_index);

    PathFinderConfig config_;

    // Scratch labels, keyed by dense account index; `epoch` marks
    // entries live for the current search (no clearing between calls).
    struct NodeLabel {
        std::uint64_t epoch = 0;
        ledger::IouAmount best;  // widest bottleneck found so far
        std::uint32_t parent = 0;
        std::uint8_t depth = 0;
        bool settled = false;
    };
    std::vector<NodeLabel> labels_;
    std::uint64_t epoch_ = 0;
};

}  // namespace xrpl::paths
