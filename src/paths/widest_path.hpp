// Widest-path search — the ablation partner of the BFS finder.
//
// PathFinder returns a SHORTEST positive-capacity path; this finder
// returns the path with the MAXIMUM bottleneck capacity (bounded by
// the same hop cap), a Dijkstra variant ordered by bottleneck. Wider
// paths move more value per path, so payments need fewer parallel
// paths at the cost of longer routes — the trade the
// `micro_benchmarks` ablation and DESIGN.md §6 examine.
#pragma once

#include <optional>

#include "paths/path_finder.hpp"

namespace xrpl::paths {

class WidestPathFinder {
public:
    explicit WidestPathFinder(PathFinderConfig config = {}) noexcept
        : config_(config) {}

    /// The positive-capacity path from `from` to `to` in `currency`
    /// maximizing the bottleneck, or nullopt. Honors graph exclusions
    /// and DefaultRipple exactly like PathFinder.
    [[nodiscard]] std::optional<TrustPath> find(const TrustGraph& graph,
                                                const ledger::AccountID& from,
                                                const ledger::AccountID& to,
                                                ledger::Currency currency);

    [[nodiscard]] const PathFinderConfig& config() const noexcept { return config_; }

private:
    PathFinderConfig config_;
};

}  // namespace xrpl::paths
