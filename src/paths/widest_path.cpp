#include "paths/widest_path.hpp"

#include <algorithm>
#include <queue>

#include "paths/graph_index.hpp"
#include "util/contract.hpp"

namespace xrpl::paths {

namespace {

using ledger::AccountID;
using ledger::IouAmount;
using ledger::LedgerState;

struct QueueEntry {
    IouAmount bottleneck;
    std::uint32_t index;

    bool operator<(const QueueEntry& other) const noexcept {
        // priority_queue is a max-heap on operator<.
        return bottleneck < other.bottleneck;
    }
};

/// Legacy engine: lines_of() scan with per-visit account() lookups.
/// Capacity is re-read from the line (same value the scan's own
/// positive-capacity filter computed).
struct ScanExpander {
    const TrustGraph& graph;
    ledger::Currency currency;

    template <typename Visit>
    void out(std::uint32_t node_index, Visit&& visit) const {
        const LedgerState& ledger = graph.ledger();
        const AccountID& node = ledger.account_by_index(node_index);
        graph.for_each_neighbor(
            node, currency,
            [&](const AccountID& peer, const ledger::TrustLine* line) {
                const ledger::AccountRoot* root = ledger.account(peer);
                if (root == nullptr) return;
                visit(root->index, root->allows_rippling,
                      line->capacity_from(node));
            });
    }
};

/// Indexed engine: flat CSR span walk; capacity read live through the
/// stored TrustLine pointer, direction resolved by the edge's bit.
struct IndexedExpander {
    const TrustGraph& graph;
    const GraphIndex::Partition* part;

    template <typename Visit>
    void out(std::uint32_t node_index, Visit&& visit) const {
        if (part == nullptr) return;
        for (const GraphIndex::Edge& edge : part->edges_of(node_index)) {
            if (graph.is_excluded_index(edge.peer)) continue;
            const IouAmount cap = edge.line->directed_capacity(edge.node_is_low);
            if (cap.is_zero() || cap.is_negative()) continue;
            visit(edge.peer, edge.peer_ripples, cap);
        }
    }
};

}  // namespace

template <typename Expander>
std::optional<TrustPath> WidestPathFinder::run_search(
    const TrustGraph& graph, const Expander& expand, const AccountID& from,
    const AccountID& to, std::uint32_t src_index, std::uint32_t dst_index) {
    const LedgerState& ledger = graph.ledger();

    if (labels_.size() < ledger.account_count()) {
        labels_.resize(ledger.account_count());
    }
    ++epoch_;

    auto label_of = [&](std::uint32_t index) -> NodeLabel& {
        NodeLabel& label = labels_[index];
        if (label.epoch != epoch_) {
            label = NodeLabel{};
            label.epoch = epoch_;
        }
        return label;
    };
    auto seen = [&](std::uint32_t index) {
        return labels_[index].epoch == epoch_;
    };

    std::priority_queue<QueueEntry> frontier;

    NodeLabel& origin = label_of(src_index);
    origin.best = IouAmount::from_double(1e90);  // effectively infinite
    origin.parent = src_index;
    frontier.push(QueueEntry{origin.best, src_index});

    std::size_t visited = 0;
    while (!frontier.empty()) {
        const QueueEntry top = frontier.top();
        frontier.pop();
        NodeLabel& label = label_of(top.index);
        if (label.settled) continue;
        if (!(top.bottleneck == label.best)) continue;  // stale entry
        label.settled = true;
        if (top.index == dst_index) break;
        if (++visited > config_.max_visited) return std::nullopt;
        if (label.depth >= config_.max_intermediate_hops + 1) continue;

        expand.out(top.index, [&](std::uint32_t peer_index, bool peer_ripples,
                                  IouAmount edge) {
            if (!peer_ripples && peer_index != dst_index) return;
            // The expanders filter non-positive capacities; a negative
            // edge here means the filter and this relaxation disagree
            // about direction.
            XRPL_ASSERT(!edge.is_negative(),
                        "trust graph must only offer positive-capacity edges");
            const IouAmount bottleneck = edge < label.best ? edge : label.best;
            if (bottleneck.is_zero() || bottleneck.is_negative()) return;
            NodeLabel& peer_label = label_of(peer_index);
            if (peer_label.settled) return;
            if (peer_label.best.is_zero() || peer_label.best < bottleneck) {
                peer_label.best = bottleneck;
                peer_label.parent = top.index;
                peer_label.depth = static_cast<std::uint8_t>(label.depth + 1);
                frontier.push(QueueEntry{bottleneck, peer_index});
            }
        });
    }

    if (!seen(dst_index)) return std::nullopt;

    TrustPath path;
    path.capacity = labels_[dst_index].best;
    std::uint32_t cursor = dst_index;
    while (true) {
        path.nodes.push_back(ledger.account_by_index(cursor));
        const NodeLabel& label = labels_[cursor];
        if (label.parent == cursor) break;
        cursor = label.parent;
    }
    std::reverse(path.nodes.begin(), path.nodes.end());
    if (path.nodes.front() != from || path.nodes.back() != to) return std::nullopt;
    if (path.nodes.size() - 2 > config_.max_intermediate_hops) return std::nullopt;
    // A settled destination label is the min over positive edge
    // capacities along the path — the capacity the payment engine will
    // try to move. Zero or negative would send nothing (or reverse a
    // trust balance).
    XRPL_INVARIANT(!path.capacity.is_zero() && !path.capacity.is_negative(),
                   "widest-path bottleneck capacity must be positive");
    return path;
}

std::optional<TrustPath> WidestPathFinder::find(const TrustGraph& graph,
                                                const AccountID& from,
                                                const AccountID& to,
                                                ledger::Currency currency) {
    const LedgerState& ledger = graph.ledger();
    const ledger::AccountRoot* src = ledger.account(from);
    const ledger::AccountRoot* dst = ledger.account(to);
    if (src == nullptr || dst == nullptr || from == to) return std::nullopt;
    if (graph.is_excluded(from) || graph.is_excluded(to)) return std::nullopt;

    if (graph.uses_index()) {
        const IndexedExpander expand{graph, graph.index().partition(currency)};
        return run_search(graph, expand, from, to, src->index, dst->index);
    }
    const ScanExpander expand{graph, currency};
    return run_search(graph, expand, from, to, src->index, dst->index);
}

}  // namespace xrpl::paths
