#include "paths/widest_path.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "util/contract.hpp"

namespace xrpl::paths {

namespace {

using ledger::AccountID;
using ledger::IouAmount;

struct NodeLabel {
    IouAmount best;         // widest bottleneck found so far
    std::uint32_t parent = 0;
    std::uint8_t depth = 0;
    bool settled = false;
    bool seen = false;
};

struct QueueEntry {
    IouAmount bottleneck;
    std::uint32_t index;

    bool operator<(const QueueEntry& other) const noexcept {
        // priority_queue is a max-heap on operator<.
        return bottleneck < other.bottleneck;
    }
};

}  // namespace

std::optional<TrustPath> WidestPathFinder::find(const TrustGraph& graph,
                                                const AccountID& from,
                                                const AccountID& to,
                                                ledger::Currency currency) {
    const ledger::LedgerState& ledger = graph.ledger();
    const ledger::AccountRoot* src = ledger.account(from);
    const ledger::AccountRoot* dst = ledger.account(to);
    if (src == nullptr || dst == nullptr || from == to) return std::nullopt;
    if (graph.is_excluded(from) || graph.is_excluded(to)) return std::nullopt;

    std::unordered_map<std::uint32_t, NodeLabel> labels;
    std::priority_queue<QueueEntry> frontier;

    NodeLabel& origin = labels[src->index];
    origin.best = IouAmount::from_double(1e90);  // effectively infinite
    origin.parent = src->index;
    origin.seen = true;
    frontier.push(QueueEntry{origin.best, src->index});

    std::size_t visited = 0;
    while (!frontier.empty()) {
        const QueueEntry top = frontier.top();
        frontier.pop();
        NodeLabel& label = labels[top.index];
        if (label.settled) continue;
        if (!(top.bottleneck == label.best)) continue;  // stale entry
        label.settled = true;
        if (top.index == dst->index) break;
        if (++visited > config_.max_visited) return std::nullopt;
        if (label.depth >= config_.max_intermediate_hops + 1) continue;

        const AccountID& node = ledger.account_by_index(top.index);
        graph.for_each_neighbor(
            node, currency,
            [&](const AccountID& peer, const ledger::TrustLine* line) {
                const ledger::AccountRoot* peer_root = ledger.account(peer);
                if (peer_root == nullptr) return;
                if (!peer_root->allows_rippling && !(peer == to)) return;
                const IouAmount edge = line->capacity_from(node);
                // TrustGraph::for_each_neighbor filters non-positive
                // capacities; a negative edge here means the filter and
                // this relaxation disagree about direction.
                XRPL_ASSERT(!edge.is_negative(),
                            "trust graph must only offer positive-capacity edges");
                const IouAmount bottleneck =
                    edge < label.best ? edge : label.best;
                if (bottleneck.is_zero() || bottleneck.is_negative()) return;
                NodeLabel& peer_label = labels[peer_root->index];
                if (peer_label.settled) return;
                if (!peer_label.seen || peer_label.best < bottleneck) {
                    peer_label.seen = true;
                    peer_label.best = bottleneck;
                    peer_label.parent = top.index;
                    peer_label.depth = static_cast<std::uint8_t>(label.depth + 1);
                    frontier.push(QueueEntry{bottleneck, peer_root->index});
                }
            });
    }

    const auto it = labels.find(dst->index);
    if (it == labels.end() || !it->second.seen) return std::nullopt;

    TrustPath path;
    path.capacity = it->second.best;
    std::uint32_t cursor = dst->index;
    while (true) {
        path.nodes.push_back(ledger.account_by_index(cursor));
        const NodeLabel& label = labels.at(cursor);
        if (label.parent == cursor) break;
        cursor = label.parent;
    }
    std::reverse(path.nodes.begin(), path.nodes.end());
    if (path.nodes.front() != from || path.nodes.back() != to) return std::nullopt;
    if (path.nodes.size() - 2 > config_.max_intermediate_hops) return std::nullopt;
    // A settled destination label is the min over positive edge
    // capacities along the path — the capacity the payment engine will
    // try to move. Zero or negative would send nothing (or reverse a
    // trust balance).
    XRPL_INVARIANT(!path.capacity.is_zero() && !path.capacity.is_negative(),
                   "widest-path bottleneck capacity must be positive");
    return path;
}

}  // namespace xrpl::paths
