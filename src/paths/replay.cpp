#include "paths/replay.hpp"

namespace xrpl::paths {

ReplayStats replay(PaymentEngine& engine, std::span<const PaymentRequest> payments) {
    ReplayStats stats;
    for (const PaymentRequest& request : payments) {
        const bool cross = request.cross_currency();
        if (cross) {
            ++stats.cross_submitted;
        } else {
            ++stats.single_submitted;
        }
        const ledger::TxResult result = engine.execute(request);
        if (result.success) {
            if (cross) {
                ++stats.cross_delivered;
            } else {
                ++stats.single_delivered;
            }
        }
    }
    return stats;
}

ReplayStats replay_without(PaymentEngine& engine,
                           std::span<const PaymentRequest> payments,
                           std::span<const ledger::AccountID> accounts,
                           bool remove_all_offers) {
    for (const ledger::AccountID& account : accounts) {
        engine.graph().exclude(account);
        engine.ledger().remove_offers_of(account);
    }
    if (remove_all_offers) engine.ledger().clear_all_offers();
    return replay(engine, payments);
}

}  // namespace xrpl::paths
