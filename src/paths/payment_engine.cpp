#include "paths/payment_engine.hpp"

#include <algorithm>
#include <cmath>

namespace xrpl::paths {

using ledger::AccountID;
using ledger::Amount;
using ledger::BookKey;
using ledger::Currency;
using ledger::IouAmount;
using ledger::Transaction;
using ledger::TxResult;
using ledger::XrpAmount;

namespace {

/// Treat `remaining` as fully delivered when it is zero or vanishing
/// relative to the requested total (decimal arithmetic can leave
/// 1-ulp residues when path capacities had wildly different exponents).
bool effectively_zero(const IouAmount& remaining, const IouAmount& total) noexcept {
    if (remaining.is_zero() || remaining.is_negative()) return true;
    return remaining < total.abs().scaled_by(1e-12);
}

XrpAmount to_drops(const IouAmount& xrp_value) noexcept {
    // Round, don't truncate: 1e10 drops must not become 9'999'999'999.
    return XrpAmount{std::llround(xrp_value.scaled_by(1e6).to_double())};
}

}  // namespace

void PaymentEngine::rollback(const Journal& journal) {
    // Undo in strict reverse order of application.
    for (auto it = journal.fills.rbegin(); it != journal.fills.rend(); ++it) {
        restore_offer(*ledger_, it->key, it->before);
    }
    for (auto it = journal.xrp.rbegin(); it != journal.xrp.rend(); ++it) {
        ledger::AccountRoot* from = ledger_->account(it->from);
        ledger::AccountRoot* to = ledger_->account(it->to);
        if (from != nullptr && to != nullptr) {
            from->balance.drops += it->amount.drops;
            to->balance.drops -= it->amount.drops;
        }
    }
    for (auto it = journal.lines.rbegin(); it != journal.lines.rend(); ++it) {
        it->line->restore_balance(it->balance_before);
    }
}

bool PaymentEngine::send_along_path(const TrustPath& path, IouAmount amount,
                                    Currency currency, Journal& journal) {
    const std::size_t start = journal.lines.size();
    for (std::size_t i = 0; i + 1 < path.nodes.size(); ++i) {
        ledger::TrustLine* line =
            ledger_->trustline(path.nodes[i], path.nodes[i + 1], currency);
        const ledger::IouAmount before =
            line == nullptr ? ledger::IouAmount{} : line->balance();
        if (line == nullptr || !line->transfer_from(path.nodes[i], amount)) {
            // Undo the hops applied so far in this call.
            while (journal.lines.size() > start) {
                const LineTransfer& entry = journal.lines.back();
                entry.line->restore_balance(entry.balance_before);
                journal.lines.pop_back();
            }
            return false;
        }
        journal.lines.push_back(LineTransfer{line, before});
    }
    return true;
}

bool PaymentEngine::send_xrp(const AccountID& from, const AccountID& to,
                             IouAmount amount, Journal& journal) {
    const XrpAmount drops = to_drops(amount);
    if (drops.drops <= 0) return false;
    ledger::AccountRoot* src = ledger_->account(from);
    ledger::AccountRoot* dst = ledger_->account(to);
    if (src == nullptr || dst == nullptr) return false;
    if (src->balance.drops < drops.drops) return false;
    src->balance.drops -= drops.drops;
    dst->balance.drops += drops.drops;
    journal.xrp.push_back(XrpTransfer{from, to, drops});
    return true;
}

bool PaymentEngine::deliver_same_currency(const AccountID& from, const AccountID& to,
                                          IouAmount amount, Currency currency,
                                          std::size_t max_paths, Journal& journal,
                                          TxResult& result) {
    if (from == to) return false;
    if (currency.is_xrp()) {
        if (!send_xrp(from, to, amount, journal)) return false;
        result.parallel_paths += 1;
        return true;
    }

    IouAmount remaining = amount;
    std::size_t used = 0;
    while (!effectively_zero(remaining, amount) && used < max_paths) {
        const std::optional<TrustPath> path =
            config_.strategy == PathStrategy::kWidestFirst
                ? widest_finder_.find(graph_, from, to, currency)
                : finder_.find(graph_, from, to, currency);
        if (!path) return false;

        const IouAmount send = path->capacity < remaining ? path->capacity : remaining;
        if (send.is_zero() || send.is_negative()) return false;
        if (!send_along_path(*path, send, currency, journal)) return false;

        result.parallel_paths += 1;
        result.intermediate_hops = std::max(
            result.intermediate_hops,
            static_cast<std::uint32_t>(path->intermediate_hops()));
        result.intermediaries.insert(result.intermediaries.end(),
                                     path->nodes.begin() + 1, path->nodes.end() - 1);
        remaining = remaining - send;
        ++used;
    }
    return effectively_zero(remaining, amount);
}

bool PaymentEngine::deliver_cross_currency(const PaymentRequest& request,
                                           Journal& journal, TxResult& result) {
    if (!config_.allow_order_books) return false;

    const Currency src_currency = request.source_currency;
    const Currency dst_currency = request.deliver.currency;
    const IouAmount target = request.deliver.value;

    // --- attempt 1: the direct book src -> dst -----------------------
    const BookKey direct_key{src_currency, dst_currency};
    std::vector<Fill> plan =
        plan_fills(*ledger_, direct_key, target, graph_.exclusions());
    IouAmount planned;
    for (const Fill& fill : plan) planned = planned + fill.gets;

    if (effectively_zero(target - planned, target) && !plan.empty()) {
        bool ok = true;
        for (const Fill& fill : plan) {
            TxResult leg1;
            TxResult leg2;
            if (!deliver_same_currency(request.sender, fill.owner, fill.pays,
                                       src_currency, 2, journal, leg1)) {
                ok = false;
                break;
            }
            const ledger::Offer* before =
                find_offer(*ledger_, direct_key, fill.offer_id);
            if (before == nullptr) {
                ok = false;
                break;
            }
            const OfferSnapshot snapshot{direct_key, *before};
            if (!consume_fill(*ledger_, direct_key, fill)) {
                ok = false;
                break;
            }
            journal.fills.push_back(snapshot);
            if (!deliver_same_currency(fill.owner, request.destination, fill.gets,
                                       dst_currency, 2, journal, leg2)) {
                ok = false;
                break;
            }
            // One "parallel path" per offer crossed; its length is the
            // two trust legs plus the Market Maker itself.
            result.parallel_paths += 1;
            result.intermediate_hops = std::max(
                result.intermediate_hops,
                leg1.intermediate_hops + leg2.intermediate_hops + 1);
            result.intermediaries.insert(result.intermediaries.end(),
                                         leg1.intermediaries.begin(),
                                         leg1.intermediaries.end());
            result.intermediaries.push_back(fill.owner);
            result.intermediaries.insert(result.intermediaries.end(),
                                         leg2.intermediaries.begin(),
                                         leg2.intermediaries.end());
        }
        if (ok) {
            result.used_order_book = true;
            return true;
        }
        return false;
    }

    // --- attempt 2: the XRP auto-bridge src -> XRP -> dst -------------
    if (!config_.allow_xrp_bridge || src_currency.is_xrp() || dst_currency.is_xrp()) {
        return false;
    }
    return deliver_via_xrp_bridge(request.sender, request.destination, target,
                                  src_currency, dst_currency, journal, result);
}

bool PaymentEngine::deliver_via_xrp_bridge(
    const AccountID& sender, const AccountID& destination, IouAmount target,
    Currency src_currency, Currency dst_currency, Journal& journal,
    TxResult& result) {
    const BookKey out_key{Currency::xrp(), dst_currency};
    std::vector<Fill> out_plan =
        plan_fills(*ledger_, out_key, target, graph_.exclusions());
    IouAmount out_planned;
    IouAmount xrp_needed;
    for (const Fill& fill : out_plan) {
        out_planned = out_planned + fill.gets;
        xrp_needed = xrp_needed + fill.pays;
    }
    if (!effectively_zero(target - out_planned, target) || out_plan.empty()) {
        return false;
    }

    const BookKey in_key{src_currency, Currency::xrp()};
    std::vector<Fill> in_plan =
        plan_fills(*ledger_, in_key, xrp_needed, graph_.exclusions());
    IouAmount in_planned;
    for (const Fill& fill : in_plan) in_planned = in_planned + fill.gets;
    if (!effectively_zero(xrp_needed - in_planned, xrp_needed) || in_plan.empty()) {
        return false;
    }

    std::uint32_t max_in_hops = 0;
    for (const Fill& fill : in_plan) {
        TxResult leg;
        if (!deliver_same_currency(sender, fill.owner, fill.pays, src_currency, 2,
                                   journal, leg)) {
            return false;
        }
        const ledger::Offer* before = find_offer(*ledger_, in_key, fill.offer_id);
        if (before == nullptr) return false;
        const OfferSnapshot snapshot{in_key, *before};
        if (!consume_fill(*ledger_, in_key, fill)) return false;
        journal.fills.push_back(snapshot);
        // The maker hands the taker XRP; route it through the sender's
        // own XRP balance so every move is a plain balance transfer.
        if (!send_xrp(fill.owner, sender, fill.gets, journal)) return false;
        max_in_hops = std::max(max_in_hops, leg.intermediate_hops);
        result.intermediaries.insert(result.intermediaries.end(),
                                     leg.intermediaries.begin(),
                                     leg.intermediaries.end());
        result.intermediaries.push_back(fill.owner);
    }

    std::uint32_t max_out_hops = 0;
    for (const Fill& fill : out_plan) {
        TxResult leg;
        if (!send_xrp(sender, fill.owner, fill.pays, journal)) return false;
        const ledger::Offer* before = find_offer(*ledger_, out_key, fill.offer_id);
        if (before == nullptr) return false;
        const OfferSnapshot snapshot{out_key, *before};
        if (!consume_fill(*ledger_, out_key, fill)) return false;
        journal.fills.push_back(snapshot);
        if (!deliver_same_currency(fill.owner, destination, fill.gets,
                                   dst_currency, 2, journal, leg)) {
            return false;
        }
        result.parallel_paths += 1;
        max_out_hops = std::max(max_out_hops, leg.intermediate_hops);
        result.intermediaries.push_back(fill.owner);
        result.intermediaries.insert(result.intermediaries.end(),
                                     leg.intermediaries.begin(),
                                     leg.intermediaries.end());
    }

    // Chain length: in-leg, the two makers, and the out-leg.
    result.intermediate_hops =
        std::max(result.intermediate_hops, max_in_hops + max_out_hops + 2);
    result.used_order_book = true;
    return true;
}

TxResult PaymentEngine::execute(const PaymentRequest& request) {
    TxResult result;
    result.cross_currency = request.cross_currency();

    if (graph_.is_excluded(request.sender) ||
        graph_.is_excluded(request.destination)) {
        return result;
    }
    if (request.deliver.value.is_zero() || request.deliver.value.is_negative()) {
        return result;
    }

    Journal journal;
    bool ok;
    if (!request.cross_currency()) {
        ok = deliver_same_currency(request.sender, request.destination,
                                   request.deliver.value, request.deliver.currency,
                                   config_.max_parallel_paths, journal, result);
        if (!ok && config_.allow_order_books && config_.allow_xrp_bridge &&
            !request.deliver.currency.is_xrp()) {
            // No usable trust path: same-currency payments can still
            // clear through Market-Maker offers (currency -> XRP ->
            // same currency), effectively converting one issuer's IOUs
            // into another's.
            rollback(journal);
            journal = Journal{};
            result.parallel_paths = 0;
            result.intermediate_hops = 0;
            result.intermediaries.clear();
            ok = deliver_via_xrp_bridge(
                request.sender, request.destination, request.deliver.value,
                request.deliver.currency, request.deliver.currency, journal,
                result);
        }
    } else {
        ok = deliver_cross_currency(request, journal, result);
    }

    if (!ok) {
        rollback(journal);
        result.success = false;
        result.parallel_paths = 0;
        result.intermediate_hops = 0;
        result.used_order_book = false;
        result.intermediaries.clear();
        return result;
    }

    result.success = true;
    result.delivered = request.deliver;

    // Burn the fee if the sender can afford it (fees are destroyed,
    // never redistributed — paper §III-A).
    ledger_->burn_fee(request.sender, config_.fee);
    if (ledger::AccountRoot* sender = ledger_->account(request.sender)) {
        ++sender->sequence;
    }
    return result;
}

TxResult PaymentEngine::execute_along(
    const PaymentRequest& request,
    std::span<const std::vector<AccountID>> explicit_paths) {
    TxResult result;
    result.cross_currency = request.cross_currency();
    if (explicit_paths.empty() || request.cross_currency()) return result;
    if (request.deliver.value.is_zero() || request.deliver.value.is_negative()) {
        return result;
    }

    const Currency currency = request.deliver.currency;
    const IouAmount share = request.deliver.value.scaled_by(
        1.0 / static_cast<double>(explicit_paths.size()));

    Journal journal;
    for (const std::vector<AccountID>& nodes : explicit_paths) {
        if (nodes.size() < 2 || nodes.front() != request.sender ||
            nodes.back() != request.destination) {
            rollback(journal);
            return result;
        }
        // Explicit paths still obey DefaultRipple: every interior node
        // must permit rippling.
        for (std::size_t i = 1; i + 1 < nodes.size(); ++i) {
            const ledger::AccountRoot* root = ledger_->account(nodes[i]);
            if (root == nullptr || !root->allows_rippling) {
                rollback(journal);
                return result;
            }
        }
        TrustPath path;
        path.nodes = nodes;
        if (!send_along_path(path, share, currency, journal)) {
            rollback(journal);
            return result;
        }
        result.parallel_paths += 1;
        result.intermediate_hops = std::max(
            result.intermediate_hops,
            static_cast<std::uint32_t>(path.intermediate_hops()));
        result.intermediaries.insert(result.intermediaries.end(),
                                     nodes.begin() + 1, nodes.end() - 1);
    }

    result.success = true;
    result.delivered = request.deliver;
    ledger_->burn_fee(request.sender, config_.fee);
    if (ledger::AccountRoot* sender = ledger_->account(request.sender)) {
        ++sender->sequence;
    }
    return result;
}

TxResult PaymentEngine::apply(const Transaction& tx) {
    TxResult result;
    switch (tx.type) {
        case ledger::TxType::kPayment: {
            PaymentRequest request;
            request.sender = tx.sender;
            request.destination = tx.destination;
            request.deliver = tx.amount;
            request.source_currency = tx.source_currency;
            result = tx.paths.empty() ? execute(request)
                                      : execute_along(request, tx.paths);
            break;
        }
        case ledger::TxType::kAccountCreate: {
            // Activation: fund a new account with the XRP amount.
            if (!ledger_->account(tx.destination)) {
                ledger_->create_account(tx.destination, XrpAmount{0});
            }
            result.success = ledger_->xrp_payment(
                tx.sender, tx.destination, to_drops(tx.amount.value), config_.fee);
            if (result.success) result.delivered = tx.amount;
            break;
        }
        case ledger::TxType::kTrustSet: {
            ledger_->set_trust(tx.sender, tx.trust_peer, tx.trust_currency,
                               tx.trust_limit);
            result.success = true;
            break;
        }
        case ledger::TxType::kOfferCreate: {
            ledger_->place_offer(tx.sender, tx.taker_pays, tx.taker_gets);
            result.success = true;
            break;
        }
    }
    return result;
}

}  // namespace xrpl::paths
