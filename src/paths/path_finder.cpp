#include "paths/path_finder.hpp"

#include <algorithm>
#include <deque>

#include "obs/metrics.hpp"
#include "paths/graph_index.hpp"

namespace xrpl::paths {

namespace {

using ledger::AccountID;
using ledger::IouAmount;
using ledger::LedgerState;

/// Bottleneck capacity of a node path.
IouAmount path_capacity(const LedgerState& ledger,
                        const std::vector<AccountID>& nodes,
                        ledger::Currency currency) {
    IouAmount best;
    bool first = true;
    for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
        const ledger::TrustLine* line =
            ledger.trustline(nodes[i], nodes[i + 1], currency);
        if (line == nullptr) return {};
        const IouAmount cap = line->capacity_from(nodes[i]);
        if (first || cap < best) {
            best = cap;
            first = false;
        }
    }
    return best;
}

/// Legacy engine: enumerate via the lines_of() scan, resolving each
/// peer's dense index and rippling flag through account() lookups.
struct ScanExpander {
    const TrustGraph& graph;
    ledger::Currency currency;

    template <typename Visit>
    void out(std::uint32_t node_index, Visit&& visit) const {
        const LedgerState& ledger = graph.ledger();
        graph.for_each_neighbor(
            ledger.account_by_index(node_index), currency,
            [&](const AccountID& peer, const ledger::TrustLine*) {
                const ledger::AccountRoot* root = ledger.account(peer);
                if (root == nullptr) return;
                visit(root->index, root->allows_rippling);
            });
    }

    template <typename Visit>
    void in(std::uint32_t node_index, Visit&& visit) const {
        const LedgerState& ledger = graph.ledger();
        graph.for_each_in_neighbor(
            ledger.account_by_index(node_index), currency,
            [&](const AccountID& peer, const ledger::TrustLine*) {
                const ledger::AccountRoot* root = ledger.account(peer);
                if (root == nullptr) return;
                visit(root->index, root->allows_rippling);
            });
    }
};

/// Indexed engine: walk the currency partition's CSR spans. No
/// hashing, no account() lookups — peer index, direction bit, and
/// rippling flag are all in the 16-byte Edge record; only capacity is
/// read live through the TrustLine pointer. A null partition (no line
/// in this currency) behaves as an empty graph so both engines walk
/// the same trivial frontier.
struct IndexedExpander {
    const TrustGraph& graph;
    const GraphIndex::Partition* part;

    template <typename Visit>
    void out(std::uint32_t node_index, Visit&& visit) const {
        if (part == nullptr) return;
        for (const GraphIndex::Edge& edge : part->edges_of(node_index)) {
            if (graph.is_excluded_index(edge.peer)) continue;
            const IouAmount cap = edge.line->directed_capacity(edge.node_is_low);
            if (cap.is_zero() || cap.is_negative()) continue;
            visit(edge.peer, edge.peer_ripples);
        }
    }

    template <typename Visit>
    void in(std::uint32_t node_index, Visit&& visit) const {
        if (part == nullptr) return;
        for (const GraphIndex::Edge& edge : part->edges_of(node_index)) {
            if (graph.is_excluded_index(edge.peer)) continue;
            const IouAmount cap = edge.line->directed_capacity(!edge.node_is_low);
            if (cap.is_zero() || cap.is_negative()) continue;
            visit(edge.peer, edge.peer_ripples);
        }
    }
};

}  // namespace

template <typename Expander>
std::optional<TrustPath> PathFinder::run_search(
    const TrustGraph& graph, const Expander& expand, const AccountID& from,
    const AccountID& to, std::uint32_t src_index, std::uint32_t dst_index,
    ledger::Currency currency) {
    const LedgerState& ledger = graph.ledger();

    if (nodes_.size() < ledger.account_count()) {
        nodes_.resize(ledger.account_count());
    }
    ++epoch_;

    auto state = [&](std::uint32_t index) -> NodeState& { return nodes_[index]; };
    auto mark = [&](std::uint32_t index, std::uint8_t direction,
                    std::uint32_t parent, std::uint8_t depth) {
        NodeState& ns = state(index);
        ns.epoch = epoch_;
        ns.direction = direction;
        ns.parent = parent;
        ns.depth = depth;
    };
    auto seen = [&](std::uint32_t index) {
        return state(index).epoch == epoch_;
    };

    std::deque<std::uint32_t> forward{src_index};
    std::deque<std::uint32_t> backward{dst_index};
    mark(src_index, 1, src_index, 0);
    mark(dst_index, 2, dst_index, 0);

    // Total path length cap: intermediate hops + the two endpoints.
    const std::size_t max_edges = config_.max_intermediate_hops + 1;
    std::size_t visited = 2;
    std::optional<std::uint32_t> meeting;

    std::uint8_t forward_depth = 0;
    std::uint8_t backward_depth = 0;

    while (!forward.empty() && !backward.empty() && !meeting) {
        if (static_cast<std::size_t>(forward_depth) +
                static_cast<std::size_t>(backward_depth) >= max_edges) {
            break;
        }
        if (visited > config_.max_visited) break;

        // Expand the smaller frontier one full level.
        const bool expand_forward = forward.size() <= backward.size();
        auto& frontier = expand_forward ? forward : backward;
        const std::uint8_t direction = expand_forward ? 1 : 2;
        const std::uint8_t next_depth =
            static_cast<std::uint8_t>((expand_forward ? forward_depth
                                                      : backward_depth) + 1);

        std::deque<std::uint32_t> next_frontier;
        for (const std::uint32_t node_index : frontier) {
            if (meeting) break;
            auto visit = [&](std::uint32_t peer_index, bool peer_ripples) {
                if (meeting) return;
                // DefaultRipple: only rippling-enabled accounts may sit
                // in the interior of a path; the two endpoints always may.
                if (!peer_ripples && peer_index != src_index &&
                    peer_index != dst_index) {
                    return;
                }
                if (seen(peer_index)) {
                    if (state(peer_index).direction != direction) {
                        // Frontiers met: peer was reached from the other
                        // side. Record the bridging edge.
                        mark_meeting_ = {node_index, peer_index, direction};
                        meeting = peer_index;
                    }
                    return;
                }
                mark(peer_index, direction, node_index, next_depth);
                next_frontier.push_back(peer_index);
                ++visited;
            };
            if (expand_forward) {
                expand.out(node_index, visit);
            } else {
                expand.in(node_index, visit);
            }
        }
        frontier = std::move(next_frontier);
        if (expand_forward) {
            forward_depth = next_depth;
        } else {
            backward_depth = next_depth;
        }
    }

    // One add per search with the whole BFS's node total, not one per
    // visit — find() is on the payment hot path.
    static obs::Counter& nodes_expanded = obs::counter("paths.nodes_expanded");
    nodes_expanded.add(visited);

    if (!meeting) return std::nullopt;

    // Reconstruct: walk from the touch point back to both endpoints.
    const auto [near_index, far_index, bridge_direction] = mark_meeting_;
    // `far_index` holds the node already labeled by the *other* side.
    // Forward half: chain of parents with direction 1; backward half:
    // chain with direction 2 (parents point toward the destination).
    std::vector<AccountID> forward_part;   // sender ... bridgeA
    std::vector<AccountID> backward_part;  // bridgeB ... receiver

    auto collect = [&](std::uint32_t start, std::uint8_t direction,
                       std::vector<AccountID>& out) {
        std::uint32_t cursor = start;
        while (true) {
            out.push_back(ledger.account_by_index(cursor));
            const NodeState& ns = state(cursor);
            if (ns.parent == cursor || ns.direction != direction) break;
            if (ns.depth == 0) break;
            cursor = ns.parent;
        }
    };

    const std::uint32_t forward_end = bridge_direction == 1 ? near_index : far_index;
    const std::uint32_t backward_start = bridge_direction == 1 ? far_index : near_index;

    collect(forward_end, 1, forward_part);
    std::reverse(forward_part.begin(), forward_part.end());
    collect(backward_start, 2, backward_part);

    TrustPath path;
    path.nodes = std::move(forward_part);
    path.nodes.insert(path.nodes.end(), backward_part.begin(), backward_part.end());

    if (path.nodes.size() < 2 || path.nodes.front() != from ||
        path.nodes.back() != to) {
        return std::nullopt;
    }
    if (path.nodes.size() - 2 > config_.max_intermediate_hops) return std::nullopt;

    path.capacity = path_capacity(ledger, path.nodes, currency);
    if (path.capacity.is_zero() || path.capacity.is_negative()) return std::nullopt;
    return path;
}

std::optional<TrustPath> PathFinder::find(const TrustGraph& graph,
                                          const AccountID& from,
                                          const AccountID& to,
                                          ledger::Currency currency) {
    const LedgerState& ledger = graph.ledger();
    const ledger::AccountRoot* src = ledger.account(from);
    const ledger::AccountRoot* dst = ledger.account(to);
    if (src == nullptr || dst == nullptr) return std::nullopt;
    if (graph.is_excluded(from) || graph.is_excluded(to)) return std::nullopt;

    if (from == to) return std::nullopt;

    if (graph.uses_index()) {
        const IndexedExpander expand{graph, graph.index().partition(currency)};
        return run_search(graph, expand, from, to, src->index, dst->index,
                          currency);
    }
    const ScanExpander expand{graph, currency};
    return run_search(graph, expand, from, to, src->index, dst->index, currency);
}

}  // namespace xrpl::paths
