// Order-book operations: quoting and crossing offers.
//
// Offers live in the LedgerState; this module implements the taker
// side — walking a book best-rate-first, consuming offers (partially
// or fully), and undoing consumption when a payment aborts. Market
// Makers are simply the accounts that own offers (paper §III-C).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "ledger/ledger.hpp"

namespace xrpl::paths {

/// One slice taken from an offer.
struct Fill {
    std::uint64_t offer_id = 0;
    ledger::AccountID owner;          // the Market Maker
    ledger::IouAmount pays;           // what the taker pays (book's pays currency)
    ledger::IouAmount gets;           // what the taker receives (gets currency)
};

/// Read side: best available rate, or nullopt for an empty book.
[[nodiscard]] std::optional<double> best_rate(const ledger::LedgerState& ledger,
                                              const ledger::BookKey& key);

/// Total `gets` liquidity in the book (ignoring rate).
[[nodiscard]] ledger::IouAmount book_depth(const ledger::LedgerState& ledger,
                                           const ledger::BookKey& key);

/// Plan fills to obtain `gets_target` from the book, best rate first,
/// WITHOUT mutating the book. Owners in `excluded` are skipped (the
/// Market-Maker-removal replay). The plan may cover less than the
/// target if liquidity runs out.
[[nodiscard]] std::vector<Fill> plan_fills(
    const ledger::LedgerState& ledger, const ledger::BookKey& key,
    ledger::IouAmount gets_target,
    const std::unordered_set<ledger::AccountID>& excluded = {});

/// Apply a planned fill: shrink (or remove) the offer in the book.
/// Returns false if the offer no longer has the planned liquidity.
[[nodiscard]] bool consume_fill(ledger::LedgerState& ledger,
                                const ledger::BookKey& key, const Fill& fill);

/// Undo a consumed fill: restore the liquidity to the offer (re-adding
/// the offer if it had been fully consumed). NOTE: fill.pays is the
/// taker-side recomputation of the price, so this restore is exact
/// only up to decimal rounding; rollback paths that must be byte-exact
/// snapshot the offer and use restore_offer instead.
void restore_fill(ledger::LedgerState& ledger, const ledger::BookKey& key,
                  const Fill& fill);

/// The current state of offer `id` in the book, or nullptr.
[[nodiscard]] const ledger::Offer* find_offer(const ledger::LedgerState& ledger,
                                              const ledger::BookKey& key,
                                              std::uint64_t id);

/// Byte-exact restore: put `before` back (overwriting the surviving
/// entry with the same id, or re-inserting it sorted if it was fully
/// consumed and removed).
void restore_offer(ledger::LedgerState& ledger, const ledger::BookKey& key,
                   const ledger::Offer& before);

/// The distinct owners (Market Makers) quoting in any book, ranked by
/// number of offers placed — the paper's "50% of offers come from 10
/// Market Makers" concentration analysis.
struct MakerShare {
    ledger::AccountID maker;
    std::size_t offers = 0;
};
[[nodiscard]] std::vector<MakerShare> maker_concentration(
    const ledger::LedgerState& ledger);

}  // namespace xrpl::paths
