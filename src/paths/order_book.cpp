#include "paths/order_book.hpp"

#include <algorithm>
#include <unordered_map>

#include "obs/metrics.hpp"

namespace xrpl::paths {

using ledger::Amount;
using ledger::BookKey;
using ledger::IouAmount;
using ledger::LedgerState;
using ledger::Offer;

std::optional<double> best_rate(const LedgerState& ledger, const BookKey& key) {
    const auto& entries = ledger.book(key);
    if (entries.empty()) return std::nullopt;
    return entries.front().rate();
}

IouAmount book_depth(const LedgerState& ledger, const BookKey& key) {
    IouAmount total;
    for (const Offer& offer : ledger.book(key)) {
        total = total + offer.taker_gets.value;
    }
    return total;
}

std::vector<Fill> plan_fills(const LedgerState& ledger, const BookKey& key,
                             IouAmount gets_target,
                             const std::unordered_set<ledger::AccountID>& excluded) {
    std::vector<Fill> plan;
    IouAmount remaining = gets_target;
    for (const Offer& offer : ledger.book(key)) {
        if (remaining.is_zero() || remaining.is_negative()) break;
        if (excluded.contains(offer.owner)) continue;

        const IouAmount take =
            offer.taker_gets.value < remaining ? offer.taker_gets.value : remaining;
        if (take.is_zero() || take.is_negative()) continue;

        Fill fill;
        fill.offer_id = offer.id;
        fill.owner = offer.owner;
        fill.gets = take;
        fill.pays = take.scaled_by(offer.rate());
        plan.push_back(fill);
        remaining = remaining - take;
    }
    return plan;
}

bool consume_fill(LedgerState& ledger, const BookKey& key, const Fill& fill) {
    auto& entries = ledger.book_mutable(key);
    const auto it = std::find_if(entries.begin(), entries.end(),
                                 [&](const Offer& o) { return o.id == fill.offer_id; });
    if (it == entries.end()) return false;
    if (it->taker_gets.value < fill.gets) return false;

    it->taker_gets.value = it->taker_gets.value - fill.gets;
    it->taker_pays.value = it->taker_pays.value - fill.pays;
    if (it->taker_gets.value.is_zero() || it->taker_gets.value.is_negative()) {
        entries.erase(it);
    }
    static obs::Counter& consumed = obs::counter("paths.offers_consumed");
    consumed.add();
    return true;
}

void restore_fill(LedgerState& ledger, const BookKey& key, const Fill& fill) {
    auto& entries = ledger.book_mutable(key);
    const auto it = std::find_if(entries.begin(), entries.end(),
                                 [&](const Offer& o) { return o.id == fill.offer_id; });
    if (it != entries.end()) {
        it->taker_gets.value = it->taker_gets.value + fill.gets;
        it->taker_pays.value = it->taker_pays.value + fill.pays;
        return;
    }
    // The offer was fully consumed and removed: re-insert the restored
    // remainder with its original id, keeping the book sorted.
    Offer offer;
    offer.id = fill.offer_id;
    offer.owner = fill.owner;
    offer.taker_pays = Amount{key.pays, fill.pays};
    offer.taker_gets = Amount{key.gets, fill.gets};
    const auto pos = std::upper_bound(
        entries.begin(), entries.end(), offer,
        [](const Offer& a, const Offer& b) { return a.rate() < b.rate(); });
    entries.insert(pos, offer);
}

const Offer* find_offer(const LedgerState& ledger, const BookKey& key,
                        std::uint64_t id) {
    for (const Offer& offer : ledger.book(key)) {
        if (offer.id == id) return &offer;
    }
    return nullptr;
}

void restore_offer(LedgerState& ledger, const BookKey& key, const Offer& before) {
    auto& entries = ledger.book_mutable(key);
    const auto it = std::find_if(entries.begin(), entries.end(),
                                 [&](const Offer& o) { return o.id == before.id; });
    if (it != entries.end()) {
        *it = before;
        return;
    }
    const auto pos = std::upper_bound(
        entries.begin(), entries.end(), before,
        [](const Offer& a, const Offer& b) { return a.rate() < b.rate(); });
    entries.insert(pos, before);
}

std::vector<MakerShare> maker_concentration(const LedgerState& ledger) {
    std::unordered_map<ledger::AccountID, std::size_t> counts;
    for (const auto& [key, entries] : ledger.books()) {
        for (const Offer& offer : entries) ++counts[offer.owner];
    }
    std::vector<MakerShare> out;
    out.reserve(counts.size());
    for (const auto& [maker, offers] : counts) out.push_back({maker, offers});
    std::sort(out.begin(), out.end(), [](const MakerShare& a, const MakerShare& b) {
        if (a.offers != b.offers) return a.offers > b.offers;
        return a.maker < b.maker;
    });
    return out;
}

}  // namespace xrpl::paths
