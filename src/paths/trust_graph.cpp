#include "paths/trust_graph.hpp"

namespace xrpl::paths {

void TrustGraph::exclude(const ledger::AccountID& account) {
    excluded_.insert(account);
    if (const ledger::AccountRoot* root = ledger_->account(account)) {
        if (excluded_stamp_.size() < ledger_->account_count()) {
            excluded_stamp_.resize(ledger_->account_count(), 0);
        }
        excluded_stamp_[root->index] = exclusion_epoch_;
    }
}

void TrustGraph::clear_exclusions() noexcept {
    excluded_.clear();
    ++exclusion_epoch_;
}

}  // namespace xrpl::paths
