#include "paths/trust_graph.hpp"

// TrustGraph is header-only (template members); this translation unit
// exists so the build file mirrors the module inventory in DESIGN.md.
