// The payment engine: executes payments over the trust network.
//
// Implements the three payment shapes of the paper's §III:
//   * direct XRP transfers (balance-to-balance, fee burned);
//   * same-currency IOU payments rippling along trust paths, split
//     across parallel paths when no single path has enough capacity
//     (Fig 6(b));
//   * cross-currency payments bridged by Market-Maker offers, either
//     through the direct order book or auto-bridged through XRP
//     (§III-C).
//
// Payments are all-or-nothing: every state mutation is journaled and
// rolled back if the full amount cannot be delivered.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ledger/ledger.hpp"
#include "ledger/transaction.hpp"
#include "paths/order_book.hpp"
#include "paths/path_finder.hpp"
#include "paths/trust_graph.hpp"
#include "paths/widest_path.hpp"

namespace xrpl::paths {

/// What the engine is asked to do.
struct PaymentRequest {
    ledger::AccountID sender;
    ledger::AccountID destination;
    /// Amount the destination must receive.
    ledger::Amount deliver;
    /// Currency the sender pays with (equals deliver.currency for
    /// same-currency payments).
    ledger::Currency source_currency;

    [[nodiscard]] bool cross_currency() const noexcept {
        return !(source_currency == deliver.currency);
    }
};

/// Which trust-path search the engine uses (DESIGN.md §6 ablation).
enum class PathStrategy : std::uint8_t {
    kShortestFirst,  // BFS: fewest intermediaries (rippled-like)
    kWidestFirst,    // max-bottleneck Dijkstra: fewest parallel paths
};

struct EngineConfig {
    /// Cap on parallel paths per payment (the paper observes up to 6).
    std::size_t max_parallel_paths = 6;
    PathFinderConfig path;
    PathStrategy strategy = PathStrategy::kShortestFirst;
    /// Allow crossing Market-Maker offers.
    bool allow_order_books = true;
    /// Allow the two-book XRP auto-bridge for cross-currency payments.
    bool allow_xrp_bridge = true;
    /// Flat fee burned per transaction, in drops.
    ledger::XrpAmount fee{10};
    /// Answer neighbor queries through the CSR GraphIndex (default,
    /// the XRPL_PATH_INDEX option) or the legacy lines_of() scan.
    /// Both engines return identical paths and ReplayStats.
    bool use_path_index = util::options().path_index;
};

/// Executes payments against a LedgerState.
class PaymentEngine {
public:
    explicit PaymentEngine(ledger::LedgerState& ledger, EngineConfig config = {})
        : ledger_(&ledger),
          graph_(ledger, config.use_path_index),
          finder_(config.path),
          widest_finder_(config.path),
          config_(config) {}

    /// Execute a payment request. On failure the ledger state is
    /// exactly as before the call (minus nothing: even the fee is only
    /// charged on success).
    ledger::TxResult execute(const PaymentRequest& request);

    /// Convenience: run a Payment/AccountCreate transaction.
    ledger::TxResult apply(const ledger::Transaction& tx);

    /// Execute a same-currency payment along caller-supplied explicit
    /// paths (the real ledger's "Paths" field), splitting the amount
    /// evenly. Used by the MTL spam campaign, whose transactions were
    /// "intentionally forced to be routed through exactly 8
    /// intermediate hops ... and exactly 6 parallel paths" (App. A/B).
    /// Each path is the full node list [sender, ..., destination].
    ledger::TxResult execute_along(
        const PaymentRequest& request,
        std::span<const std::vector<ledger::AccountID>> explicit_paths);

    /// Exclusion interface (replay experiments remove accounts here).
    [[nodiscard]] TrustGraph& graph() noexcept { return graph_; }
    [[nodiscard]] const TrustGraph& graph() const noexcept { return graph_; }

    [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }
    [[nodiscard]] ledger::LedgerState& ledger() noexcept { return *ledger_; }

private:
    // --- journal -------------------------------------------------------
    /// Byte-exact snapshot of a trust line's balance taken before a
    /// hop executes (adding back the transferred amount can differ by
    /// a decimal ulp when exponents differ, so inverses don't cut it).
    struct LineTransfer {
        ledger::TrustLine* line;
        ledger::IouAmount balance_before;
    };
    struct XrpTransfer {
        ledger::AccountID from;
        ledger::AccountID to;
        ledger::XrpAmount amount;
    };
    /// Byte-exact snapshot of an offer taken before it is consumed,
    /// so rollback restores the book without decimal re-rounding.
    struct OfferSnapshot {
        ledger::BookKey key;
        ledger::Offer before;
    };
    struct Journal {
        std::vector<LineTransfer> lines;
        std::vector<XrpTransfer> xrp;
        std::vector<OfferSnapshot> fills;
    };
    void rollback(const Journal& journal);

    /// Move `amount` along `path` (trust lines), journaling each hop.
    /// Returns false (nothing journaled from this call) on failure.
    bool send_along_path(const TrustPath& path, ledger::IouAmount amount,
                         ledger::Currency currency, Journal& journal);

    /// Raw XRP move (no fee), journaled. Fails on insufficient funds.
    bool send_xrp(const ledger::AccountID& from, const ledger::AccountID& to,
                  ledger::IouAmount amount, Journal& journal);

    /// Deliver `amount` of `currency` from `from` to `to` using up to
    /// `max_paths` parallel trust paths (or a direct XRP move when
    /// `currency` is XRP). Appends used paths' intermediaries and hop
    /// counts to `result`. Returns false if the full amount cannot move.
    bool deliver_same_currency(const ledger::AccountID& from,
                               const ledger::AccountID& to,
                               ledger::IouAmount amount, ledger::Currency currency,
                               std::size_t max_paths, Journal& journal,
                               ledger::TxResult& result);

    /// Cross-currency delivery via one order book (direct) or two
    /// (XRP auto-bridge).
    bool deliver_cross_currency(const PaymentRequest& request, Journal& journal,
                                ledger::TxResult& result);

    /// Two-book XRP bridge: src_currency -> XRP -> dst_currency. Also
    /// used with src == dst, which is how same-currency payments "use
    /// one or more exchange offers to make up for the lack of direct
    /// trust" (paper §III-C).
    bool deliver_via_xrp_bridge(const ledger::AccountID& sender,
                                const ledger::AccountID& destination,
                                ledger::IouAmount target,
                                ledger::Currency src_currency,
                                ledger::Currency dst_currency, Journal& journal,
                                ledger::TxResult& result);

    ledger::LedgerState* ledger_;
    TrustGraph graph_;
    PathFinder finder_;
    WidestPathFinder widest_finder_;
    EngineConfig config_;
};

}  // namespace xrpl::paths
