// Replay harness — the paper's Market-Maker-removal experiment.
//
// Table II: take a stable snapshot of the network, replay six months
// of recorded payments against it, then repeat with every Market
// Maker (and all exchange offers) removed, "carefully handling user
// balances by updating them after each successful payment". The
// harness mirrors that: payments execute through the real engine, so
// balances, trust-line debt, and offer consumption all evolve.
#pragma once

#include <span>
#include <vector>

#include "paths/payment_engine.hpp"

namespace xrpl::paths {

/// Delivery counts split the way Table II reports them.
struct ReplayStats {
    std::uint64_t cross_submitted = 0;
    std::uint64_t cross_delivered = 0;
    std::uint64_t single_submitted = 0;
    std::uint64_t single_delivered = 0;

    [[nodiscard]] std::uint64_t submitted() const noexcept {
        return cross_submitted + single_submitted;
    }
    [[nodiscard]] std::uint64_t delivered() const noexcept {
        return cross_delivered + single_delivered;
    }
    [[nodiscard]] double cross_rate() const noexcept {
        return cross_submitted == 0
                   ? 0.0
                   : static_cast<double>(cross_delivered) /
                         static_cast<double>(cross_submitted);
    }
    [[nodiscard]] double single_rate() const noexcept {
        return single_submitted == 0
                   ? 0.0
                   : static_cast<double>(single_delivered) /
                         static_cast<double>(single_submitted);
    }
    [[nodiscard]] double total_rate() const noexcept {
        return submitted() == 0 ? 0.0
                                : static_cast<double>(delivered()) /
                                      static_cast<double>(submitted());
    }
};

/// Replay `payments` in order through `engine`, tallying Table II stats.
[[nodiscard]] ReplayStats replay(PaymentEngine& engine,
                                 std::span<const PaymentRequest> payments);

/// Remove `accounts` from the network seen by `engine` — exclude them
/// from path finding and delete their offers — then replay. When
/// `remove_all_offers` is set every offer is deleted (the paper removes
/// "them and the exchange orders from the system").
[[nodiscard]] ReplayStats replay_without(PaymentEngine& engine,
                                         std::span<const PaymentRequest> payments,
                                         std::span<const ledger::AccountID> accounts,
                                         bool remove_all_offers);

}  // namespace xrpl::paths
