// Capacity-aware shortest-path search over the trust graph.
//
// Finds a shortest trust path carrying positive capacity from sender
// to receiver in one currency, using bidirectional BFS (gateways have
// enormous degree; expanding the smaller frontier keeps searches to a
// few hundred node visits on realistic topologies). The payment
// engine calls this repeatedly — executing each found path — to build
// the parallel-path splits of Fig 6(b).
//
// The BFS core is one template, instantiated over two neighbor
// expanders: the CSR GraphIndex (flat index-space spans, the default)
// and the legacy lines_of() scan. Both enumerate neighbors in the
// same order, so they return identical paths — the expander is the
// ONLY thing that differs between the engines.
#pragma once

#include <optional>
#include <vector>

#include "ledger/amount.hpp"
#include "ledger/types.hpp"
#include "paths/trust_graph.hpp"

namespace xrpl::paths {

/// A discovered trust path: the full node sequence, endpoints
/// included, plus its bottleneck capacity.
struct TrustPath {
    std::vector<ledger::AccountID> nodes;  // [sender, ..., receiver]
    ledger::IouAmount capacity;            // min line capacity along the path

    /// Intermediate node count (paper's Fig 6(a) x-axis).
    [[nodiscard]] std::size_t intermediate_hops() const noexcept {
        return nodes.size() >= 2 ? nodes.size() - 2 : 0;
    }
};

struct PathFinderConfig {
    /// Maximum number of intermediate nodes to consider.
    std::size_t max_intermediate_hops = 10;
    /// Give up after visiting this many nodes (defensive cap).
    std::size_t max_visited = 50'000;
};

/// Stateless-but-buffered path searcher. Reuses internal scratch
/// buffers between calls; not thread-safe, create one per thread.
class PathFinder {
public:
    explicit PathFinder(PathFinderConfig config = {}) noexcept : config_(config) {}

    /// Shortest positive-capacity path from `from` to `to` in
    /// `currency`, or nullopt. `graph` exclusions are honored; the
    /// engine (CSR index vs legacy scan) follows graph.uses_index().
    [[nodiscard]] std::optional<TrustPath> find(const TrustGraph& graph,
                                                const ledger::AccountID& from,
                                                const ledger::AccountID& to,
                                                ledger::Currency currency);

    [[nodiscard]] const PathFinderConfig& config() const noexcept { return config_; }

private:
    /// The engine-agnostic bidirectional BFS. `expand.out(i, visit)` /
    /// `expand.in(i, visit)` call visit(peer_index, peer_ripples) for
    /// every positive-capacity, non-excluded neighbor of dense account
    /// index i. Defined in path_finder.cpp; instantiated there for the
    /// two expanders.
    template <typename Expander>
    std::optional<TrustPath> run_search(const TrustGraph& graph,
                                        const Expander& expand,
                                        const ledger::AccountID& from,
                                        const ledger::AccountID& to,
                                        std::uint32_t src_index,
                                        std::uint32_t dst_index,
                                        ledger::Currency currency);

    PathFinderConfig config_;

    // Scratch state, keyed by the ledger's dense account index.
    // `visit_epoch_` avoids clearing between searches.
    struct NodeState {
        std::uint64_t epoch = 0;
        std::uint8_t direction = 0;  // 1 = forward, 2 = backward
        std::uint32_t parent = 0;    // dense index of predecessor/successor
        std::uint8_t depth = 0;
    };
    std::vector<NodeState> nodes_;
    std::uint64_t epoch_ = 0;

    /// The bridging edge where the two frontiers met.
    struct Meeting {
        std::uint32_t near_index = 0;  // node on the expanding side
        std::uint32_t far_index = 0;   // node already labeled by the other side
        std::uint8_t direction = 0;    // direction of the expanding side
    };
    Meeting mark_meeting_;
};

}  // namespace xrpl::paths
