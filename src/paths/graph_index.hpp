// Currency-partitioned CSR adjacency over the ledger's trust lines —
// the path subsystem's answer to the columnar refactors every scan
// layer already had (DESIGN.md §16).
//
// The legacy TrustGraph answers a neighbor query by scanning
// lines_of(account) — ALL currencies mixed — filtering by currency,
// hashing AccountIDs, and re-looking-up AccountRoot per visit. This
// index is built once per topology: for each currency, a
// compressed-sparse-row table of (peer index, TrustLine*, direction
// bit, cached rippling flag) keyed by the ledger's dense account
// index, so the bidirectional-BFS inner loop becomes a flat span walk
// over uint32 indices with zero hashing and zero account() lookups.
//
// Invalidation contract: CAPACITY is read live through the stored
// TrustLine* at visit time, so balance/limit mutations by the payment
// engine never invalidate the index. TOPOLOGY mutations (new account,
// new trust line) bump LedgerState::topology_generation(); ensure()
// compares generations and lazily rebuilds. Rippling flags are fixed
// at account creation, so caching them per edge is safe.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ledger/ledger.hpp"

namespace xrpl::paths {

class GraphIndex {
public:
    struct Edge {
        std::uint32_t peer;             // dense account index of the far end
        const ledger::TrustLine* line;  // capacity read live at visit time
        bool node_is_low;               // the owning node is line->key().low
        bool peer_ripples;              // cached peer allows_rippling
    };

    /// One currency's CSR table. An out-edge and its mirror in-edge
    /// share one Edge record: edges_of(i) lists every line touching
    /// node i in this currency, and the DIRECTION decides which end's
    /// capacity to read — from node i: directed_capacity(node_is_low);
    /// towards node i: directed_capacity(!node_is_low). Per-node edge
    /// order equals lines_of(account) insertion order, so both engines
    /// enumerate neighbors identically.
    struct Partition {
        ledger::Currency currency;
        std::vector<std::uint32_t> offsets;  // account_count + 1 row pointers
        std::vector<Edge> edges;

        [[nodiscard]] std::span<const Edge> edges_of(
            std::uint32_t index) const noexcept {
            if (index + 1 >= offsets.size()) return {};
            return std::span<const Edge>(edges).subspan(
                offsets[index], offsets[index + 1] - offsets[index]);
        }
    };

    /// Rebuild from scratch (unconditionally).
    void build(const ledger::LedgerState& ledger);

    /// Lazy freshness: rebuild only if the ledger's topology
    /// generation moved since the last build. Records paths.index.*
    /// metrics (builds/rebuilds/build_ns on a rebuild, hits on a
    /// served query).
    void ensure(const ledger::LedgerState& ledger);

    /// The CSR table for `currency`, or nullptr when no trust line in
    /// that currency exists (partitions are sorted by currency).
    [[nodiscard]] const Partition* partition(
        ledger::Currency currency) const noexcept;

    [[nodiscard]] bool built() const noexcept { return built_; }
    [[nodiscard]] std::uint64_t built_generation() const noexcept {
        return built_generation_;
    }
    [[nodiscard]] std::size_t partition_count() const noexcept {
        return partitions_.size();
    }
    /// Total Edge records across partitions (2 per trust line: one per
    /// endpoint).
    [[nodiscard]] std::size_t edge_count() const noexcept;

private:
    std::vector<Partition> partitions_;  // sorted by currency
    std::uint64_t built_generation_ = 0;
    bool built_ = false;
};

}  // namespace xrpl::paths
