#include "exec/parallel.hpp"

#include "obs/phase.hpp"

namespace xrpl::exec {

void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body) {
    const std::size_t chunks = chunk_count_for(n, grain);
    static obs::Histogram& chunk_ns = obs::histogram("exec.chunk_ns");
    ThreadPool::shared().run(chunks, [&](std::size_t c) {
        const std::size_t begin = c * grain;
        const std::size_t end = begin + grain < n ? begin + grain : n;
        // A histogram, not a phase: workers record concurrently and a
        // histogram is order-free, so the snapshot stays deterministic.
        // analyze-shared: order-free histogram; record() is striped-atomic
        const obs::ScopedTimer timer(chunk_ns);
        body(begin, end);
    });
}

}  // namespace xrpl::exec
