// Fixed-size chunking of a columnar payment window.
//
// Every whole-dataset scan (Fig 3's IG, the Fig 4–7 analytics, the
// attack index build) runs as: map each chunk to a chunk-local
// partial on the pool, then merge the partials IN CHUNK ORDER on the
// calling thread. ChunkedView provides the first half of that
// contract: a deterministic partition of [0, view.size()) into
// contiguous runs of at most `chunk_rows` rows — the partition
// depends only on the view size and the chunk size, never on the
// thread count, which is what makes the ordered merge reproducible.
#pragma once

#include <cstddef>

#include "ledger/payment_columns.hpp"
#include "util/contract.hpp"

namespace xrpl::exec {

/// Default rows per chunk. Large enough that per-chunk hash maps and
/// scheduling amortize to noise (a task is ~8k rows of hashing, a
/// claim is one mutex round-trip), small enough that the default
/// 250k-payment bench dataset still splits ~31 ways — and the ten
/// Fig 3 configurations × chunks grid keeps every worker busy.
inline constexpr std::size_t kDefaultChunkRows = 8192;

class ChunkedView {
public:
    explicit ChunkedView(ledger::PaymentView view,
                         std::size_t chunk_rows = kDefaultChunkRows);

    [[nodiscard]] std::size_t size() const noexcept { return view_.size(); }
    [[nodiscard]] std::size_t chunk_rows() const noexcept { return chunk_rows_; }
    /// Number of chunks (0 for an empty view).
    [[nodiscard]] std::size_t chunk_count() const noexcept {
        return chunk_count_;
    }

    /// Half-open row range of chunk `c`, relative to the view.
    struct Bounds {
        std::size_t begin = 0;
        std::size_t end = 0;
    };
    [[nodiscard]] Bounds bounds(std::size_t c) const noexcept {
        XRPL_ASSERT(c < chunk_count_, "chunk index must be within the view");
        const std::size_t begin = c * chunk_rows_;
        const std::size_t end = begin + chunk_rows_;
        return Bounds{begin, end < view_.size() ? end : view_.size()};
    }

    /// Chunk `c` as a zero-copy payment window.
    [[nodiscard]] ledger::PaymentView chunk(std::size_t c) const noexcept {
        const Bounds b = bounds(c);
        return view_.subview(b.begin, b.end - b.begin);
    }

    [[nodiscard]] const ledger::PaymentView& view() const noexcept {
        return view_;
    }

private:
    ledger::PaymentView view_;
    std::size_t chunk_rows_;
    std::size_t chunk_count_;
};

}  // namespace xrpl::exec
