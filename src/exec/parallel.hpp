// Deterministic data-parallel primitives over the shared ThreadPool.
//
// The contract both primitives enforce: the RESULT of a parallel scan
// is bit-identical for every thread count, because
//
//  * parallel_for hands each chunk a disjoint index range — outputs
//    go into per-row slots, so interleaving cannot reorder them;
//  * map_reduce stores one partial per chunk and folds them on the
//    calling thread IN CHUNK ORDER (asserted), so any merge that is
//    associative over adjacent chunks reproduces the serial
//    left-to-right fold exactly.
//
// What dynamic scheduling may change — which worker computes which
// chunk, and when — is invisible to both.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "exec/thread_pool.hpp"
#include "util/contract.hpp"

namespace xrpl::exec {

/// Number of `grain`-sized chunks covering `n` items.
[[nodiscard]] constexpr std::size_t chunk_count_for(std::size_t n,
                                                    std::size_t grain) noexcept {
    return grain == 0 ? 0 : (n + grain - 1) / grain;
}

/// body(begin, end) over [0, n) in contiguous chunks of at most
/// `grain` items, in parallel on the shared pool. The body must write
/// only state owned by its range.
void parallel_for(std::size_t n, std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& body);

/// Chunk-local map + ordered associative merge. `map(c)` produces the
/// partial of chunk c on the pool; `reduce(acc, std::move(partial))`
/// folds partials into `init` on the calling thread, strictly in
/// chunk order 0, 1, ..., chunks-1.
template <typename Partial, typename Map, typename Reduce>
[[nodiscard]] Partial map_reduce(std::size_t chunks, Map&& map, Reduce&& reduce,
                                 Partial init = Partial{}) {
    std::vector<Partial> partials(chunks);
    ThreadPool::shared().run(
        chunks, [&](std::size_t c) { partials[c] = map(c); });
    std::size_t merged = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
        // Merge order IS the determinism contract: partial c folds in
        // exactly after partials 0..c-1, same as the serial scan.
        XRPL_INVARIANT(merged == c, "partials must merge in chunk order");
        reduce(init, std::move(partials[c]));
        ++merged;
    }
    return init;
}

}  // namespace xrpl::exec
