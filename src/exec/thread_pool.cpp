#include "exec/thread_pool.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/contract.hpp"
#include "util/options.hpp"

namespace xrpl::exec {

namespace {

// The shared pool and its test override live behind one mutex; the
// pointers are read once per run() call, so contention is noise.
// analyze-shared: guards the one sanctioned singleton (the shared pool)
std::mutex g_shared_mutex;
std::unique_ptr<ThreadPool>& shared_slot() {
    static std::unique_ptr<ThreadPool> pool;
    return pool;
}
// analyze-shared: ScopedParallelism test hook; reads/writes hold g_shared_mutex
ThreadPool* g_override = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t parallelism)
    : parallelism_(std::max<std::size_t>(parallelism, 1)) {
    workers_.reserve(parallelism_ - 1);
    for (std::size_t i = 0; i + 1 < parallelism_; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        // Batches drain before their run() returns, so nothing can be
        // in flight when the owner destroys the pool.
        XRPL_ASSERT(active_.empty(), "thread pool destroyed with active batches");
        stopping_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::execute_one(std::unique_lock<std::mutex>& lock,
                             const std::shared_ptr<Batch>& batch) {
    const std::size_t index = batch->next++;
    if (batch->next == batch->count) {
        // Last index claimed: nobody else should pick this batch up.
        std::erase(active_, batch);
    }
    lock.unlock();
    std::exception_ptr error;
    try {
        (*batch->task)(index);
    } catch (...) {
        error = std::current_exception();
    }
    lock.lock();
    if (error && !batch->error) batch->error = error;
    if (++batch->done == batch->count) done_cv_.notify_all();
}

void ThreadPool::worker_loop() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        work_cv_.wait(lock, [this] { return stopping_ || !active_.empty(); });
        if (active_.empty()) return;  // stopping_, nothing left to help with
        // Copy, not reference: execute_one erases the vector element
        // when it claims the batch's last index.
        const std::shared_ptr<Batch> batch = active_.front();
        execute_one(lock, batch);
    }
}

void ThreadPool::run(std::size_t count,
                     const std::function<void(std::size_t)>& task) {
    if (count == 0) return;
    static obs::Counter& batches = obs::counter("exec.batches");
    static obs::Counter& tasks = obs::counter("exec.tasks");
    batches.add();
    tasks.add(count);
    if (workers_.empty() || count == 1) {
        // Serial fast path: no queueing, no locks — XRPL_THREADS=1 is
        // exactly the plain loop.
        static obs::Counter& serial = obs::counter("exec.batches_serial");
        serial.add();
        for (std::size_t i = 0; i < count; ++i) task(i);
        return;
    }

    const auto batch = std::make_shared<Batch>();
    batch->task = &task;
    batch->count = count;

    std::unique_lock<std::mutex> lock(mutex_);
    active_.push_back(batch);
    // Depth of the shared queue at submission — a live view of how
    // much nested fan-out is stacking up behind this batch.
    static obs::Gauge& depth = obs::gauge("exec.queue_depth");
    depth.set(static_cast<std::int64_t>(active_.size()));
    work_cv_.notify_all();
    // Drain our own batch: guarantees forward progress even when every
    // worker is busy (or executing the task that called us).
    while (batch->next < batch->count) execute_one(lock, batch);
    done_cv_.wait(lock, [&] { return batch->done == batch->count; });
    if (batch->error) {
        const std::exception_ptr error = batch->error;
        lock.unlock();
        std::rethrow_exception(error);
    }
}

ThreadPool& ThreadPool::shared() {
    const std::lock_guard<std::mutex> lock(g_shared_mutex);
    if (g_override != nullptr) return *g_override;
    std::unique_ptr<ThreadPool>& pool = shared_slot();
    if (!pool) pool = std::make_unique<ThreadPool>(configured_parallelism());
    return *pool;
}

std::size_t ThreadPool::configured_parallelism() {
    // from_env(), not options(): this probe documents re-read
    // semantics (tests flip XRPL_THREADS between calls); the cached
    // options() snapshot is for steady-state consumers.
    return util::Options::from_env().threads;
}

ScopedParallelism::ScopedParallelism(std::size_t parallelism)
    : pool_(std::make_unique<ThreadPool>(parallelism)) {
    const std::lock_guard<std::mutex> lock(g_shared_mutex);
    previous_ = g_override;
    g_override = pool_.get();
}

ScopedParallelism::~ScopedParallelism() {
    const std::lock_guard<std::mutex> lock(g_shared_mutex);
    XRPL_ASSERT(g_override == pool_.get(),
                "ScopedParallelism overrides must unwind in LIFO order");
    g_override = previous_;
}

}  // namespace xrpl::exec
