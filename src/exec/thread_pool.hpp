// The shared worker pool — the ONLY place this repo spawns threads
// (tools/lint.py bans raw std::thread / std::async everywhere else).
//
// Design constraints, in priority order:
//
//  1. Determinism is delegated, not provided: the pool schedules task
//     indices dynamically (whichever worker is free grabs the next
//     one), so callers MUST write results into per-index slots and
//     merge them in index order. exec::map_reduce packages that
//     contract; nothing downstream should touch run() directly unless
//     it writes disjoint output.
//  2. The calling thread participates: run() drains its own batch, so
//     a pool of parallelism 1 spawns zero workers and executes
//     serially in the caller — XRPL_THREADS=1 is genuinely
//     single-threaded, and nested run() calls (a task fanning out
//     again) can never deadlock waiting for a free worker.
//  3. All bookkeeping sits behind one mutex. Chunks are thousands of
//     rows, so a lock per claimed index is noise — and it keeps the
//     pool boring under ThreadSanitizer.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace xrpl::exec {

class ThreadPool {
public:
    /// A pool of total parallelism `parallelism` (the calling thread
    /// plus `parallelism - 1` workers, spawned immediately).
    explicit ThreadPool(std::size_t parallelism);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Total parallelism (workers + the participating caller).
    [[nodiscard]] std::size_t parallelism() const noexcept {
        return parallelism_;
    }

    /// Execute task(0) .. task(count - 1), each exactly once, and
    /// return when all have finished. Task indices are claimed
    /// dynamically; completion order is unspecified. The first
    /// exception a task throws is rethrown here (remaining tasks
    /// still run). Tasks may call run() themselves.
    void run(std::size_t count, const std::function<void(std::size_t)>& task);

    /// The process-wide pool, created on first use with
    /// configured_parallelism() workers. XRPL_THREADS is read once,
    /// at that first call.
    [[nodiscard]] static ThreadPool& shared();

    /// Strict-parsed XRPL_THREADS, defaulting to
    /// hardware_concurrency() (minimum 1). Re-reads the environment
    /// on every call; shared() snapshots it once.
    [[nodiscard]] static std::size_t configured_parallelism();

private:
    friend class ScopedParallelism;

    struct Batch {
        const std::function<void(std::size_t)>* task = nullptr;
        std::size_t count = 0;
        std::size_t next = 0;  // next unclaimed index   (guarded by mutex_)
        std::size_t done = 0;  // finished tasks         (guarded by mutex_)
        std::exception_ptr error;  // first failure      (guarded by mutex_)
    };

    void worker_loop();
    /// Claim and execute one task of `batch`; `lock` is held on entry
    /// and exit, released around the task body.
    void execute_one(std::unique_lock<std::mutex>& lock,
                     const std::shared_ptr<Batch>& batch);

    std::size_t parallelism_;
    std::mutex mutex_;
    std::condition_variable work_cv_;  // workers: a batch arrived / shutdown
    std::condition_variable done_cv_;  // callers: a batch completed
    std::vector<std::shared_ptr<Batch>> active_;  // batches with unclaimed work
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

/// RAII override of the shared pool's parallelism, for tests and the
/// bench thread-count sweep. While alive, ThreadPool::shared() returns
/// a private pool of the requested width; overrides nest.
class ScopedParallelism {
public:
    explicit ScopedParallelism(std::size_t parallelism);
    ~ScopedParallelism();

    ScopedParallelism(const ScopedParallelism&) = delete;
    ScopedParallelism& operator=(const ScopedParallelism&) = delete;

private:
    std::unique_ptr<ThreadPool> pool_;
    ThreadPool* previous_;
};

}  // namespace xrpl::exec
