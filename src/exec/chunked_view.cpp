#include "exec/chunked_view.hpp"

namespace xrpl::exec {

ChunkedView::ChunkedView(ledger::PaymentView view, std::size_t chunk_rows)
    : view_(view),
      chunk_rows_(chunk_rows == 0 ? 1 : chunk_rows),
      chunk_count_((view.size() + chunk_rows_ - 1) / chunk_rows_) {
#if XRPL_CONTRACTS_ENABLED
    // The chunks must partition the view exactly: contiguous,
    // non-overlapping, covering every row once. Every ordered merge
    // downstream assumes this; O(#chunks) sweep, contract builds only.
    std::size_t covered = 0;
    for (std::size_t c = 0; c < chunk_count_; ++c) {
        const Bounds b = bounds(c);
        XRPL_INVARIANT(b.begin == covered && b.end > b.begin,
                       "chunks must be contiguous and non-empty");
        covered = b.end;
    }
    XRPL_INVARIANT(covered == view_.size(),
                   "chunks must partition the view exactly");
#endif
}

}  // namespace xrpl::exec
