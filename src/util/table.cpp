#include "util/table.hpp"

#include <cstdint>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace xrpl::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
    alignment_.assign(header_.size(), Align::kRight);
    if (!alignment_.empty()) alignment_[0] = Align::kLeft;
}

void TextTable::add_row(std::vector<std::string> row) {
    if (row.size() != header_.size()) {
        throw std::invalid_argument("TextTable: row arity mismatch");
    }
    rows_.push_back(std::move(row));
}

void TextTable::set_alignment(std::vector<Align> alignment) {
    if (alignment.size() != header_.size()) {
        throw std::invalid_argument("TextTable: alignment arity mismatch");
    }
    alignment_ = std::move(alignment);
}

void TextTable::render(std::ostream& os) const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }

    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            const std::size_t pad = widths[c] - row[c].size();
            if (alignment_[c] == Align::kRight) os << std::string(pad, ' ');
            os << row[c];
            if (alignment_[c] == Align::kLeft) os << std::string(pad, ' ');
            os << (c + 1 == row.size() ? "" : "  ");
        }
        os << '\n';
    };

    emit(header_);
    std::size_t total = 0;
    for (const std::size_t w : widths) total += w + 2;
    os << std::string(total >= 2 ? total - 2 : total, '-') << '\n';
    for (const auto& row : rows_) emit(row);
}

std::string format_count(std::uint64_t n) {
    std::string digits = std::to_string(n);
    std::string out;
    out.reserve(digits.size() + digits.size() / 3);
    int counter = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (counter != 0 && counter % 3 == 0) out.push_back(',');
        out.push_back(*it);
        ++counter;
    }
    return {out.rbegin(), out.rend()};
}

std::string format_percent(double fraction) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f%%", fraction * 100.0);
    return buf;
}

std::string format_double(double v, int digits) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

}  // namespace xrpl::util
