// Hex encoding/decoding helpers.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace xrpl::util {

/// Lowercase hex rendering of a byte span.
[[nodiscard]] std::string hex_encode(std::span<const std::uint8_t> data);

/// Parse a hex string (case-insensitive). Returns nullopt on malformed
/// input (odd length or non-hex characters).
[[nodiscard]] std::optional<std::vector<std::uint8_t>> hex_decode(std::string_view text);

}  // namespace xrpl::util
