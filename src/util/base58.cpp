#include "util/base58.hpp"

#include <algorithm>
#include <array>

#include "util/sha256.hpp"

namespace xrpl::util {

namespace {

// Reverse lookup table: character -> digit value, or -1.
constexpr std::array<int, 256> make_reverse_table() {
    std::array<int, 256> table{};
    for (auto& v : table) v = -1;
    for (std::size_t i = 0; i < kRippleAlphabet.size(); ++i) {
        table[static_cast<unsigned char>(kRippleAlphabet[i])] = static_cast<int>(i);
    }
    return table;
}

constexpr std::array<int, 256> kReverse = make_reverse_table();

}  // namespace

std::string base58_encode(std::span<const std::uint8_t> data) {
    // Count leading zero bytes; each maps to the alphabet's zero digit.
    std::size_t zeros = 0;
    while (zeros < data.size() && data[zeros] == 0) ++zeros;

    // Big-number base conversion, digits accumulated little-endian.
    std::vector<std::uint8_t> digits;
    digits.reserve(data.size() * 138 / 100 + 1);
    for (std::size_t i = zeros; i < data.size(); ++i) {
        int carry = data[i];
        for (auto& digit : digits) {
            carry += digit << 8;
            digit = static_cast<std::uint8_t>(carry % 58);
            carry /= 58;
        }
        while (carry > 0) {
            digits.push_back(static_cast<std::uint8_t>(carry % 58));
            carry /= 58;
        }
    }

    std::string out;
    out.reserve(zeros + digits.size());
    out.append(zeros, kRippleAlphabet[0]);
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        out.push_back(kRippleAlphabet[*it]);
    }
    return out;
}

std::optional<std::vector<std::uint8_t>> base58_decode(std::string_view text) {
    std::size_t zeros = 0;
    while (zeros < text.size() && text[zeros] == kRippleAlphabet[0]) ++zeros;

    std::vector<std::uint8_t> bytes;  // little-endian accumulator
    bytes.reserve(text.size() * 733 / 1000 + 1);
    for (std::size_t i = zeros; i < text.size(); ++i) {
        const int value = kReverse[static_cast<unsigned char>(text[i])];
        if (value < 0) return std::nullopt;
        int carry = value;
        for (auto& b : bytes) {
            carry += b * 58;
            b = static_cast<std::uint8_t>(carry & 0xff);
            carry >>= 8;
        }
        while (carry > 0) {
            bytes.push_back(static_cast<std::uint8_t>(carry & 0xff));
            carry >>= 8;
        }
    }

    std::vector<std::uint8_t> out(zeros, 0);
    out.insert(out.end(), bytes.rbegin(), bytes.rend());
    return out;
}

std::string base58check_encode(std::uint8_t type_prefix,
                               std::span<const std::uint8_t> payload) {
    std::vector<std::uint8_t> buffer;
    buffer.reserve(1 + payload.size() + 4);
    buffer.push_back(type_prefix);
    buffer.insert(buffer.end(), payload.begin(), payload.end());
    const Sha256Digest checksum = sha256d(buffer);
    buffer.insert(buffer.end(), checksum.begin(), checksum.begin() + 4);
    return base58_encode(buffer);
}

std::optional<std::vector<std::uint8_t>> base58check_decode(
    std::uint8_t expected_type_prefix, std::string_view text) {
    auto decoded = base58_decode(text);
    if (!decoded || decoded->size() < 5) return std::nullopt;
    auto& bytes = *decoded;
    if (bytes.front() != expected_type_prefix) return std::nullopt;

    const std::span<const std::uint8_t> body(bytes.data(), bytes.size() - 4);
    const Sha256Digest checksum = sha256d(body);
    if (!std::equal(checksum.begin(), checksum.begin() + 4, bytes.end() - 4)) {
        return std::nullopt;
    }
    return std::vector<std::uint8_t>(bytes.begin() + 1, bytes.end() - 4);
}

}  // namespace xrpl::util
