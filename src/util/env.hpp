// Strict environment-variable parsing — the PARSER layer under
// util::Options.
//
// Every knob this repo reads from the environment goes through these
// helpers: the whole string must parse, anything else warns once on
// stderr and falls back — never a silent half-parse (the atoi-family
// failure mode tools/lint.py bans). Call sites outside src/util must
// go through the typed util::Options registry (options.hpp); the
// `no-adhoc-env` lint rule enforces that.
#pragma once

#include <cstdint>
#include <string>

namespace xrpl::util {

/// Value of the environment variable `name` as a positive integer.
/// Unset, malformed (trailing garbage, sign, overflow), or zero
/// values yield `fallback`; malformed and zero additionally warn on
/// stderr so a typo'd knob never passes silently.
[[nodiscard]] std::uint64_t env_u64(const char* name, std::uint64_t fallback);

/// Boolean toggle: exactly "0" or "1". Unset yields `fallback`;
/// anything else warns on stderr and yields `fallback`.
[[nodiscard]] bool env_flag(const char* name, bool fallback);

/// Raw string value; unset (or empty) yields `fallback`.
[[nodiscard]] std::string env_string(const char* name,
                                     const std::string& fallback);

/// Whether `name` is present in the environment at all (even if its
/// value is malformed) — lets callers distinguish "defaulted" from
/// "explicitly configured".
[[nodiscard]] bool env_present(const char* name);

}  // namespace xrpl::util
