// Strict environment-variable parsing.
//
// Every knob this repo reads from the environment (XRPL_THREADS,
// XRPL_BENCH_PAYMENTS, ...) goes through env_u64: the whole string
// must parse as a positive integer, anything else warns once on
// stderr and falls back — never a silent half-parse (the atoi-family
// failure mode tools/lint.py bans).
#pragma once

#include <cstdint>

namespace xrpl::util {

/// Value of the environment variable `name` as a positive integer.
/// Unset, malformed (trailing garbage, sign, overflow), or zero
/// values yield `fallback`; malformed and zero additionally warn on
/// stderr so a typo'd knob never passes silently.
[[nodiscard]] std::uint64_t env_u64(const char* name, std::uint64_t fallback);

}  // namespace xrpl::util
