// Ripple epoch time.
//
// The XRP ledger timestamps everything in seconds since the Ripple
// epoch, 2000-01-01T00:00:00Z (946684800 Unix). Transactions inherit
// the close time of the ledger page that sealed them — this is the
// `T` feature of the de-anonymization study, and its truncation to
// minutes/hours/days is one of the paper's resolution knobs.
#pragma once

#include <cstdint>
#include <string>

namespace xrpl::util {

/// Seconds between the Unix epoch and the Ripple epoch.
inline constexpr std::int64_t kRippleEpochOffset = 946684800;

/// A timestamp in seconds since the Ripple epoch.
struct RippleTime {
    std::int64_t seconds = 0;

    friend auto operator<=>(const RippleTime&, const RippleTime&) = default;
};

/// Time resolution used when coarsening the timestamp feature
/// (Fig 3: T_sc, T_mn, T_hr, T_dy).
enum class TimeResolution {
    kSeconds,
    kMinutes,
    kHours,
    kDays,
};

/// Truncate `t` downward to the given resolution.
[[nodiscard]] RippleTime truncate(RippleTime t, TimeResolution res) noexcept;

/// Convert to/from Unix seconds.
[[nodiscard]] std::int64_t to_unix(RippleTime t) noexcept;
[[nodiscard]] RippleTime from_unix(std::int64_t unix_seconds) noexcept;

/// Build a RippleTime from a UTC calendar date/time.
/// Valid for dates in [2000, 2100); no leap seconds.
[[nodiscard]] RippleTime from_calendar(int year, int month, int day, int hour = 0,
                                       int minute = 0, int second = 0) noexcept;

/// Render as "YYYY-MM-DD HH:MM:SS" (UTC).
[[nodiscard]] std::string format(RippleTime t);

/// Short form "YYYY-MM-DD".
[[nodiscard]] std::string format_date(RippleTime t);

/// Name suitable for output labels: "sc", "mn", "hr", "dy".
[[nodiscard]] const char* resolution_label(TimeResolution res) noexcept;

}  // namespace xrpl::util
