#include "util/rng.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numbers>

namespace xrpl::util {

namespace {
constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ULL;

/// The splitmix64 finalizer: a bijective avalanche over u64.
constexpr std::uint64_t fmix64(std::uint64_t z) noexcept {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
    x += kGolden;
    return fmix64(x);
}

/// FNV-1a over the label bytes; the label is a tree-edge name, so a
/// cheap well-mixed hash is plenty (fmix64 avalanches it afterwards).
constexpr std::uint64_t label_hash(std::string_view label) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : label) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
    std::uint64_t s = seed;
    for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() noexcept {
    const std::uint64_t result = std::rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = std::rotl(state_[3], 45);
    return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept {
    const std::uint64_t range = hi - lo;  // inclusive width - 1
    if (range == ~std::uint64_t{0}) return next();
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t bound = range + 1;
    const std::uint64_t limit = (~std::uint64_t{0}) - (~std::uint64_t{0}) % bound;
    std::uint64_t value = next();
    while (value >= limit) value = next();
    return lo + value % bound;
}

std::int64_t Rng::uniform_i64(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo);
    return lo + static_cast<std::int64_t>(uniform_u64(0, span));
}

double Rng::uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
}

namespace {
/// Uniform double in (0, 1] from one raw draw: (next >> 11) + 1 spans
/// [1, 2^53], so log() is always finite and the draw count is fixed —
/// a rejection loop here would make the per-call draw count depend on
/// the value stream, breaking stream-split reproducibility.
double uniform01_open(std::uint64_t raw) noexcept {
    return static_cast<double>((raw >> 11) + 1) * 0x1.0p-53;
}
}  // namespace

double Rng::exponential(double mean) noexcept {
    return -mean * std::log(uniform01_open(next()));
}

double Rng::normal(double mu, double sigma) noexcept {
    // Box-Muller, cosine branch only: exactly two raw draws per call.
    // No spare-value cache — the sine branch would be per-call hidden
    // state that desynchronizes split streams (see test_rng's
    // NormalConsumesExactlyTwoDraws regression).
    const double u1 = uniform01_open(next());
    const double u2 = uniform01();
    const double z = std::sqrt(-2.0 * std::log(u1)) *
                     std::cos(2.0 * std::numbers::pi * u2);
    return mu + sigma * z;
}

double Rng::lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
}

double Rng::pareto(double x_min, double alpha) noexcept {
    return x_min / std::pow(uniform01_open(next()), 1.0 / alpha);
}

Rng Rng::fork() noexcept { return Rng(next()); }

RngStream RngStream::derive(std::string_view label,
                            std::uint64_t index) const noexcept {
    // Three finalizer rounds, absorbing one path component each:
    // advance off the parent key, fold in the edge label, fold in the
    // edge index. fmix64 is bijective, so distinct (key, label, index)
    // triples cannot systematically collide, and sequential indices
    // land avalanche-distance apart in the seed space.
    std::uint64_t k = fmix64(key_ + kGolden);
    k = fmix64(k ^ label_hash(label));
    k = fmix64(k ^ (index + kGolden));
    RngStream child(k);
    return child;
}

ZipfSampler::ZipfSampler(std::size_t n, double alpha) {
    cdf_.resize(n);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        total += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
        cdf_[i] = total;
    }
    for (auto& v : cdf_) v /= total;
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
    const double u = rng.uniform01();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return it == cdf_.end() ? cdf_.size() - 1
                            : static_cast<std::size_t>(it - cdf_.begin());
}

CategoricalSampler::CategoricalSampler(std::span<const double> weights) {
    cdf_.resize(weights.size());
    double total = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        total += std::max(0.0, weights[i]);
        cdf_[i] = total;
    }
    if (total > 0.0) {
        for (auto& v : cdf_) v /= total;
    }
}

std::size_t CategoricalSampler::sample(Rng& rng) const noexcept {
    const double u = rng.uniform01();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return it == cdf_.end() ? cdf_.size() - 1
                            : static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace xrpl::util
