// Buffered file I/O primitives — the ONE place (besides src/snap/)
// the repo opens files.
//
// The `no-adhoc-io` lint rule bans raw fopen/std::ofstream/
// std::ifstream everywhere else, so every byte that reaches disk goes
// through these audited helpers: whole-file reads into a byte vector,
// and writes that are ATOMIC by construction (write to `<path>.tmp`,
// fsync-free rename into place) — a half-written snapshot can never
// be observed under its final name, which is what lets the dataset
// cache treat file existence as artifact validity.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace xrpl::util {

/// Whole file as bytes; nullopt on any I/O error (missing file,
/// permission, short read).
[[nodiscard]] std::optional<std::vector<std::uint8_t>> read_file_bytes(
    const std::string& path);

/// Write `bytes` to `path` atomically: the payload lands in
/// `<path>.tmp` first and is renamed over `path` only when completely
/// written. Returns false on any failure (the temp file is removed).
bool write_file_bytes(const std::string& path,
                      std::span<const std::uint8_t> bytes);

/// write_file_bytes for text payloads (bench reports, tool output).
bool write_text_file(const std::string& path, std::string_view text);

/// Whether `path` names an existing regular file.
[[nodiscard]] bool file_exists(const std::string& path);

/// Size of the file in bytes, or nullopt if it does not exist.
[[nodiscard]] std::optional<std::uint64_t> file_size(const std::string& path);

/// Create `path` (and parents) as a directory if missing. Returns
/// false only when the directory does not exist afterwards.
bool ensure_directory(const std::string& path);

/// Remove a single file if present (best effort; returns whether the
/// file is absent afterwards).
bool remove_file(const std::string& path);

}  // namespace xrpl::util
