#include "util/ripple_time.hpp"

#include <array>
#include <cstdio>

namespace xrpl::util {

namespace {

constexpr std::array<int, 12> kDaysPerMonth = {31, 28, 31, 30, 31, 30,
                                               31, 31, 30, 31, 30, 31};

constexpr bool is_leap(int year) noexcept {
    return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

constexpr int days_in_month(int year, int month) noexcept {
    if (month == 2 && is_leap(year)) return 29;
    return kDaysPerMonth[static_cast<std::size_t>(month - 1)];
}

struct Calendar {
    int year, month, day, hour, minute, second;
};

Calendar to_calendar(RippleTime t) noexcept {
    std::int64_t s = t.seconds;
    // Clamp pre-epoch times to the epoch; the study never needs them.
    if (s < 0) s = 0;
    const auto days_total = s / 86400;
    std::int64_t rem = s % 86400;

    Calendar c{};
    c.hour = static_cast<int>(rem / 3600);
    rem %= 3600;
    c.minute = static_cast<int>(rem / 60);
    c.second = static_cast<int>(rem % 60);

    int year = 2000;
    std::int64_t days = days_total;
    while (true) {
        const int year_days = is_leap(year) ? 366 : 365;
        if (days < year_days) break;
        days -= year_days;
        ++year;
    }
    int month = 1;
    while (days >= days_in_month(year, month)) {
        days -= days_in_month(year, month);
        ++month;
    }
    c.year = year;
    c.month = month;
    c.day = static_cast<int>(days) + 1;
    return c;
}

}  // namespace

RippleTime truncate(RippleTime t, TimeResolution res) noexcept {
    switch (res) {
        case TimeResolution::kSeconds: return t;
        case TimeResolution::kMinutes: return {t.seconds - t.seconds % 60};
        case TimeResolution::kHours: return {t.seconds - t.seconds % 3600};
        case TimeResolution::kDays: return {t.seconds - t.seconds % 86400};
    }
    return t;
}

std::int64_t to_unix(RippleTime t) noexcept { return t.seconds + kRippleEpochOffset; }

RippleTime from_unix(std::int64_t unix_seconds) noexcept {
    return {unix_seconds - kRippleEpochOffset};
}

RippleTime from_calendar(int year, int month, int day, int hour, int minute,
                         int second) noexcept {
    std::int64_t days = 0;
    for (int y = 2000; y < year; ++y) days += is_leap(y) ? 366 : 365;
    for (int m = 1; m < month; ++m) days += days_in_month(year, m);
    days += day - 1;
    return {days * 86400 + hour * 3600 + minute * 60 + second};
}

std::string format(RippleTime t) {
    const Calendar c = to_calendar(t);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", c.year,
                  c.month, c.day, c.hour, c.minute, c.second);
    return buf;
}

std::string format_date(RippleTime t) {
    const Calendar c = to_calendar(t);
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", c.year, c.month, c.day);
    return buf;
}

const char* resolution_label(TimeResolution res) noexcept {
    switch (res) {
        case TimeResolution::kSeconds: return "sc";
        case TimeResolution::kMinutes: return "mn";
        case TimeResolution::kHours: return "hr";
        case TimeResolution::kDays: return "dy";
    }
    return "?";
}

}  // namespace xrpl::util
