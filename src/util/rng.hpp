// Deterministic random number generation for reproducible experiments.
//
// xoshiro256++ seeded via splitmix64, plus the distributions the
// workload generators need (uniform, bernoulli, exponential,
// lognormal, pareto, zipf, categorical). Every experiment in this
// repository takes a seed, so bench output is bit-stable across runs.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace xrpl::util {

/// xoshiro256++ PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed) noexcept;

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~result_type{0}; }

    result_type operator()() noexcept { return next(); }
    std::uint64_t next() noexcept;

    /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
    std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept;
    std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi) noexcept;

    /// Uniform double in [0, 1).
    double uniform01() noexcept;
    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) noexcept;

    /// True with probability p (clamped to [0,1]).
    bool bernoulli(double p) noexcept;

    /// Exponential with the given mean (mean > 0).
    double exponential(double mean) noexcept;

    /// Standard normal via Box-Muller.
    double normal(double mu, double sigma) noexcept;

    /// Log-normal: exp(normal(mu, sigma)).
    double lognormal(double mu, double sigma) noexcept;

    /// Pareto with scale x_min > 0 and shape alpha > 0.
    double pareto(double x_min, double alpha) noexcept;

    /// Fork a new, independent generator (for parallel sub-streams).
    Rng fork() noexcept;

private:
    std::array<std::uint64_t, 4> state_;
};

/// Zipf(α) sampler over {0, 1, ..., n-1} with precomputed CDF.
/// Rank 0 is the most popular element.
class ZipfSampler {
public:
    ZipfSampler(std::size_t n, double alpha);

    [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;
    [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

private:
    std::vector<double> cdf_;
};

/// Categorical sampler from explicit (unnormalized) weights.
class CategoricalSampler {
public:
    explicit CategoricalSampler(std::span<const double> weights);

    [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;
    [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

private:
    std::vector<double> cdf_;
};

}  // namespace xrpl::util
