// Deterministic random number generation for reproducible experiments.
//
// xoshiro256++ seeded via splitmix64, plus the distributions the
// workload generators need (uniform, bernoulli, exponential,
// lognormal, pareto, zipf, categorical). Every experiment in this
// repository takes a seed, so bench output is bit-stable across runs.
//
// RngStream is the splittable layer on top: a node in a key-derivation
// tree rooted at the experiment seed. Any entity — an account, a
// ledger-time slice, a consensus period, a spam campaign — derives its
// own stream by (label, index) and owns an independent generator,
// instead of owning a position in one global draw sequence. That is
// what lets sharded history generation run slices concurrently and
// still produce bit-identical output at any thread count (DESIGN.md
// §12). Every distribution consumes a FIXED number of raw draws per
// call (uniform_u64 being the one documented exception), so no hidden
// per-call state can leak across a stream split.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

namespace xrpl::util {

/// xoshiro256++ PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed) noexcept;

    static constexpr result_type min() noexcept { return 0; }
    static constexpr result_type max() noexcept { return ~result_type{0}; }

    result_type operator()() noexcept { return next(); }
    std::uint64_t next() noexcept;

    /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
    std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept;
    std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi) noexcept;

    /// Uniform double in [0, 1).
    double uniform01() noexcept;
    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi) noexcept;

    /// True with probability p (clamped to [0,1]).
    bool bernoulli(double p) noexcept;

    /// Exponential with the given mean (mean > 0). One raw draw.
    double exponential(double mean) noexcept;

    /// Normal via Box-Muller. Exactly two raw draws per call, never
    /// fewer (no rejection loop) and never more (no cached spare):
    /// stream splitting relies on every call consuming a fixed,
    /// state-free draw count.
    double normal(double mu, double sigma) noexcept;

    /// Log-normal: exp(normal(mu, sigma)).
    double lognormal(double mu, double sigma) noexcept;

    /// Pareto with scale x_min > 0 and shape alpha > 0. One raw draw.
    double pareto(double x_min, double alpha) noexcept;

    /// Fork a new, independent generator (for parallel sub-streams).
    /// Prefer RngStream::derive for anything that must stay stable
    /// when sibling draw counts change.
    Rng fork() noexcept;

private:
    std::array<std::uint64_t, 4> state_;
};

/// A node in the seed-derivation tree: splitmix64-style key derivation
/// over the xoshiro256++ seed space.
///
/// The root stream is the experiment seed; every child is addressed by
/// a (label, index) edge, e.g.
///
///   RngStream root(config.seed);
///   Rng users  = root.derive("population").derive("users").rng();
///   Rng slice7 = root.derive("slice", 7).derive("workload").rng();
///
/// Two different paths through the tree yield statistically
/// independent, non-overlapping generators, and a node's key depends
/// only on its path — never on how many draws (or sibling derivations)
/// happened elsewhere. `derive(label)` is shorthand for
/// `derive(label, 0)`.
///
/// RngStream is the ONLY sanctioned way to mint generators outside
/// src/util (lint rule [no-adhoc-rng]): ad-hoc `Rng(seed + i)`
/// arithmetic collides the moment two call sites pick overlapping
/// offsets, while derived keys cannot.
class RngStream {
public:
    /// The root of a derivation tree. `RngStream(s).rng()` draws the
    /// same sequence as `Rng(s)`, so roots are drop-in replacements
    /// for the pre-stream seeding convention.
    explicit RngStream(std::uint64_t root_seed) noexcept : key_(root_seed) {}

    /// The child stream addressed by (label, index).
    [[nodiscard]] RngStream derive(std::string_view label,
                                   std::uint64_t index = 0) const noexcept;

    /// Materialize the generator at this node. Repeated calls return
    /// identical generators; the stream itself is immutable.
    [[nodiscard]] Rng rng() const noexcept { return Rng(key_); }

    /// The derivation key (a root seed for Rng). Stored in configs
    /// that must stay trivially copyable (e.g. ConsensusConfig::seed);
    /// rebuild the stream with RngStream(key()).
    [[nodiscard]] std::uint64_t key() const noexcept { return key_; }

private:
    std::uint64_t key_;
};

/// Zipf(α) sampler over {0, 1, ..., n-1} with precomputed CDF.
/// Rank 0 is the most popular element.
class ZipfSampler {
public:
    ZipfSampler(std::size_t n, double alpha);

    [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;
    [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

private:
    std::vector<double> cdf_;
};

/// Categorical sampler from explicit (unnormalized) weights.
class CategoricalSampler {
public:
    explicit CategoricalSampler(std::span<const double> weights);

    [[nodiscard]] std::size_t sample(Rng& rng) const noexcept;
    [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

private:
    std::vector<double> cdf_;
};

}  // namespace xrpl::util
