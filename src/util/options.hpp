// The typed options registry — the ONE place XRPL_* environment knobs
// are read.
//
// Call sites never touch env_u64/getenv directly (the `no-adhoc-env`
// lint rule bans it outside src/util): they read a typed field off
// `util::options()`, which parses the whole environment once, or off
// `Options::from_env()` where re-reading matters (the shared pool's
// width probe). Every knob is declared exactly once in the
// kOptionTable below, so the README's option table, the strict
// parsers, and the struct fields cannot drift apart.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace xrpl::util {

struct Options {
    /// XRPL_THREADS — total parallelism of the shared exec pool
    /// (caller + workers). Default: hardware_concurrency(), min 1.
    std::size_t threads = 1;

    /// XRPL_OBS — metric/phase recording on (1) or off (0). The bench
    /// harness force-enables recording when the variable is absent;
    /// everything else defaults to off.
    bool obs = false;
    /// Whether XRPL_OBS was present in the environment at all.
    bool obs_explicit = false;

    /// XRPL_BENCH_PAYMENTS — shared bench history size.
    std::uint64_t bench_payments = 250'000;
    /// XRPL_BENCH_CONSENSUS_SCALE — percent of the full two-week
    /// capture per Fig 2 period.
    std::uint64_t bench_consensus_scale = 10;
    /// XRPL_BENCH_REPLAY_PAYMENTS — Table II replay stream size.
    std::uint64_t bench_replay_payments = 40'000;
    /// XRPL_BENCH_REPLAY_ACCOUNTS — ext_replay_scaling population
    /// size (user count; total accounts land slightly above).
    std::uint64_t bench_replay_accounts = 20'000;
    /// XRPL_BENCH_DATAGEN_PAYMENTS — ext_datagen_scaling history size.
    std::uint64_t bench_datagen_payments = 100'000;
    /// XRPL_BENCH_JSON_DIR — directory the harness writes
    /// BENCH_<name>.json into.
    std::string bench_json_dir = ".";

    /// XRPL_DATASET_DIR — root of the content-addressed XCOL dataset
    /// cache (src/snap/). Empty (the default) disables caching:
    /// histories are regenerated every run and no disk is touched.
    std::string dataset_dir;

    /// XRPL_PATH_INDEX — answer path-finder neighbor queries through
    /// the currency-partitioned CSR GraphIndex (1, the default) or the
    /// legacy per-visit lines_of() scan (0). Paths and ReplayStats are
    /// byte-identical either way; only speed differs.
    bool path_index = true;

    /// Parse the environment now (strict; malformed values warn and
    /// fall back). Pure read — no caching.
    [[nodiscard]] static Options from_env();
};

/// The process-wide options, parsed once on first use. Benches, tools,
/// and steady-state library code read this; only code that documents
/// re-read semantics (ThreadPool::configured_parallelism) goes back to
/// from_env().
[[nodiscard]] const Options& options();

/// One row per knob — the machine-readable registry behind the README
/// table and the tests that keep it complete.
struct OptionInfo {
    const char* name;         // environment variable
    const char* type;         // "u64" | "flag" | "string"
    const char* fallback;     // human-readable default
    const char* description;  // one line
};

[[nodiscard]] std::span<const OptionInfo> option_table() noexcept;

/// The option table as a GitHub-markdown table (the README's
/// "Environment knobs" section is generated from this — see
/// `<bench binary> --options`).
[[nodiscard]] std::string options_markdown();

}  // namespace xrpl::util
