// Plain-text table rendering for bench output.
//
// Every figure/table bench prints its series through this, so the
// output format is uniform: aligned columns, optional title and
// footer lines (used for the "paper:" reference values).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace xrpl::util {

/// Column alignment.
enum class Align { kLeft, kRight };

/// A simple text table. Add a header, then rows; render to a stream.
class TextTable {
public:
    explicit TextTable(std::vector<std::string> header);

    /// Append a row; must have the same arity as the header.
    void add_row(std::vector<std::string> row);

    /// Set per-column alignment (default: first column left, rest right).
    void set_alignment(std::vector<Align> alignment);

    /// Render with single-space-padded columns and a rule under the header.
    void render(std::ostream& os) const;

    [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<Align> alignment_;
};

/// Format helpers used across benches.
[[nodiscard]] std::string format_count(std::uint64_t n);      // "1,234,567"
[[nodiscard]] std::string format_percent(double fraction);    // "99.83%"
[[nodiscard]] std::string format_double(double v, int digits);

}  // namespace xrpl::util
