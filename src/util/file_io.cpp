#include "util/file_io.hpp"

#include <filesystem>
#include <fstream>
#include <system_error>

namespace xrpl::util {

namespace fs = std::filesystem;

std::optional<std::vector<std::uint8_t>> read_file_bytes(
    const std::string& path) {
    std::ifstream file(path, std::ios::binary | std::ios::ate);
    if (!file) return std::nullopt;
    const std::streamsize size = file.tellg();
    if (size < 0) return std::nullopt;
    file.seekg(0);
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
    if (size > 0) {
        file.read(reinterpret_cast<char*>(bytes.data()), size);
        if (!file) return std::nullopt;
    }
    return bytes;
}

bool write_file_bytes(const std::string& path,
                      std::span<const std::uint8_t> bytes) {
    const std::string tmp = path + ".tmp";
    {
        std::ofstream file(tmp, std::ios::binary | std::ios::trunc);
        if (!file) return false;
        file.write(reinterpret_cast<const char*>(bytes.data()),
                   static_cast<std::streamsize>(bytes.size()));
        if (!file) {
            file.close();
            remove_file(tmp);
            return false;
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        remove_file(tmp);
        return false;
    }
    return true;
}

bool write_text_file(const std::string& path, std::string_view text) {
    return write_file_bytes(
        path, std::span<const std::uint8_t>(
                  reinterpret_cast<const std::uint8_t*>(text.data()),
                  text.size()));
}

bool file_exists(const std::string& path) {
    std::error_code ec;
    return fs::is_regular_file(path, ec);
}

std::optional<std::uint64_t> file_size(const std::string& path) {
    std::error_code ec;
    const std::uintmax_t size = fs::file_size(path, ec);
    if (ec) return std::nullopt;
    return static_cast<std::uint64_t>(size);
}

bool ensure_directory(const std::string& path) {
    std::error_code ec;
    fs::create_directories(path, ec);
    return fs::is_directory(path, ec);
}

bool remove_file(const std::string& path) {
    std::error_code ec;
    fs::remove(path, ec);
    return !fs::exists(path, ec);
}

}  // namespace xrpl::util
