// Contract macros — the repo's assertion vocabulary.
//
// Three kinds, mirroring the taxonomy rippled's own instrumentation
// converged on:
//
//   XRPL_ASSERT(cond, msg)     precondition / argument check at an API
//                              boundary ("the caller gave us sane input").
//   XRPL_INVARIANT(cond, msg)  internal data-structure or paper-level
//                              invariant ("our own state is consistent").
//   XRPL_UNREACHABLE(msg)      control flow that must never execute.
//
// Contracts are ACTIVE when NDEBUG is not defined (Debug builds) or
// when XRPL_ENABLE_CONTRACTS is defined (the CMake option of the same
// name — the sanitizer presets turn it on so ASan/UBSan runs also
// check logical invariants). A violation prints the condition, the
// message, and the source location to stderr, then aborts — abort()
// rather than throw so sanitizers and GTest death tests both see a
// genuine crash and no stack unwinds past a corrupted invariant.
//
// In Release, XRPL_ASSERT / XRPL_INVARIANT expand to a no-op that
// type-checks the condition in an UNEVALUATED context (zero cost even
// at -O0, and variables used only in contracts don't trip
// -Wunused-variable). Deliberately NOT [[assume]]/__builtin_assume:
// promising the optimizer a condition that a bug has falsified would
// turn a detectable failure into silent miscompilation of the very
// figures the contracts protect. XRPL_UNREACHABLE is the exception —
// "this path never runs" is exactly what __builtin_unreachable()
// expresses, so Release keeps it as the optimizer hint.
//
// XRPL_CONTRACTS_ENABLED (0/1) is exposed for tests and for guarding
// expensive O(n) consistency sweeps that are too slow even for Debug
// hot loops.
#pragma once

namespace xrpl::util {

/// Reports a contract violation and aborts. `kind` is "assertion",
/// "invariant", or "unreachable"; `condition` is the stringized
/// expression. Never returns.
[[noreturn]] void contract_violation(const char* kind, const char* condition,
                                     const char* message, const char* file,
                                     long line) noexcept;

}  // namespace xrpl::util

#if !defined(NDEBUG) || defined(XRPL_ENABLE_CONTRACTS)
#define XRPL_CONTRACTS_ENABLED 1
#else
#define XRPL_CONTRACTS_ENABLED 0
#endif

#if XRPL_CONTRACTS_ENABLED

#define XRPL_ASSERT(cond, msg)                                              \
    ((cond) ? static_cast<void>(0)                                          \
            : ::xrpl::util::contract_violation("assertion", #cond, (msg),   \
                                               __FILE__, __LINE__))
#define XRPL_INVARIANT(cond, msg)                                           \
    ((cond) ? static_cast<void>(0)                                          \
            : ::xrpl::util::contract_violation("invariant", #cond, (msg),   \
                                               __FILE__, __LINE__))
#define XRPL_UNREACHABLE(msg)                                               \
    ::xrpl::util::contract_violation("unreachable", "reached", (msg),       \
                                     __FILE__, __LINE__)

#else

// sizeof keeps the condition compiled (typos still fail the build)
// without ever evaluating it.
#define XRPL_ASSERT(cond, msg) \
    static_cast<void>(sizeof(static_cast<void>(cond), 0))
#define XRPL_INVARIANT(cond, msg) \
    static_cast<void>(sizeof(static_cast<void>(cond), 0))
#define XRPL_UNREACHABLE(msg) __builtin_unreachable()

#endif
