#include "util/crc32c.hpp"

#include <array>

namespace xrpl::util {

namespace {

/// 8 tables of 256 entries: table[0] is the classic byte-at-a-time
/// table for the reflected polynomial, table[k] advances a byte k
/// positions further, letting the hot loop fold 8 bytes per step.
struct Tables {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
};

constexpr std::uint32_t kPoly = 0x82F63B78u;  // Castagnoli, reflected

constexpr Tables build_tables() {
    Tables tables;
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit) {
            crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
        }
        tables.t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = tables.t[0][i];
        for (std::size_t k = 1; k < 8; ++k) {
            crc = tables.t[0][crc & 0xFFu] ^ (crc >> 8);
            tables.t[k][i] = crc;
        }
    }
    return tables;
}

constexpr Tables kTables = build_tables();

}  // namespace

std::uint32_t crc32c(std::uint32_t seed,
                     std::span<const std::uint8_t> data) noexcept {
    std::uint32_t crc = ~seed;
    const std::uint8_t* p = data.data();
    std::size_t n = data.size();

    while (n >= 8) {
        // Slice-by-8: fold the current crc into the first 4 bytes and
        // advance all 8 through the precomputed distance tables.
        const std::uint32_t low = crc ^ (static_cast<std::uint32_t>(p[0]) |
                                         static_cast<std::uint32_t>(p[1]) << 8 |
                                         static_cast<std::uint32_t>(p[2]) << 16 |
                                         static_cast<std::uint32_t>(p[3]) << 24);
        crc = kTables.t[7][low & 0xFFu] ^ kTables.t[6][(low >> 8) & 0xFFu] ^
              kTables.t[5][(low >> 16) & 0xFFu] ^ kTables.t[4][low >> 24] ^
              kTables.t[3][p[4]] ^ kTables.t[2][p[5]] ^ kTables.t[1][p[6]] ^
              kTables.t[0][p[7]];
        p += 8;
        n -= 8;
    }
    while (n-- > 0) {
        crc = kTables.t[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
    }
    return ~crc;
}

}  // namespace xrpl::util
