#include "util/textplot.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "util/table.hpp"

namespace xrpl::util {

namespace {

double bar_measure(double value, bool log_scale) noexcept {
    if (value <= 0.0) return 0.0;
    return log_scale ? std::log10(1.0 + value) : value;
}

std::string make_bar(double value, double max_measure, bool log_scale,
                     int width, char fill) {
    if (max_measure <= 0.0) return {};
    const double measure = bar_measure(value, log_scale);
    const int len = static_cast<int>(std::lround(measure / max_measure * width));
    return std::string(static_cast<std::size_t>(std::clamp(len, 0, width)), fill);
}

std::string format_value(double v) {
    if (v == std::floor(v) && std::abs(v) < 1e15) {
        return format_count(static_cast<std::uint64_t>(std::max(0.0, v)));
    }
    return format_double(v, 4);
}

}  // namespace

void render_bar_chart(std::ostream& os, const std::vector<Bar>& bars,
                      const BarChartOptions& options) {
    double max_measure = 0.0;
    for (const Bar& b : bars) {
        max_measure = std::max(max_measure, bar_measure(b.value, options.log_scale));
        if (b.secondary >= 0.0) {
            max_measure =
                std::max(max_measure, bar_measure(b.secondary, options.log_scale));
        }
    }

    const bool two_series = !options.secondary_header.empty();
    std::vector<std::string> header = {"label", options.value_header};
    if (two_series) header.push_back(options.secondary_header);
    header.push_back(options.log_scale ? "bar(log)" : "bar");

    TextTable table(header);
    std::vector<Align> align(header.size(), Align::kRight);
    align.front() = Align::kLeft;
    align.back() = Align::kLeft;
    table.set_alignment(std::move(align));

    for (const Bar& b : bars) {
        std::vector<std::string> row = {b.label, format_value(b.value)};
        if (two_series) {
            row.push_back(b.secondary >= 0.0 ? format_value(b.secondary) : "-");
        }
        std::string bar = make_bar(b.value, max_measure, options.log_scale,
                                   options.width, '#');
        if (two_series && b.secondary >= 0.0) {
            // Overlay the secondary series with '=' up to its length.
            const std::string sec = make_bar(b.secondary, max_measure,
                                             options.log_scale, options.width, '=');
            for (std::size_t i = 0; i < sec.size() && i < bar.size(); ++i) bar[i] = '=';
            if (sec.size() > bar.size()) bar = sec;
        }
        row.push_back(std::move(bar));
        table.add_row(std::move(row));
    }
    table.render(os);
    if (two_series) {
        os << "('=' marks the " << options.secondary_header << " series)\n";
    }
}

void render_series(std::ostream& os, const std::string& x_name,
                   const std::string& y_name,
                   const std::vector<SeriesPoint>& points, bool log_scale) {
    std::vector<Bar> bars;
    bars.reserve(points.size());
    for (const SeriesPoint& p : points) {
        bars.push_back(Bar{format_value(p.x), p.y, -1.0});
    }
    BarChartOptions options;
    options.log_scale = log_scale;
    options.value_header = y_name;
    os << x_name << " vs " << y_name << ":\n";
    render_bar_chart(os, bars, options);
}

}  // namespace xrpl::util
