// SHA-256 implemented from scratch (FIPS 180-4).
//
// Used for ledger page hashes, transaction IDs, and Ripple
// base58check address checksums. Streaming interface plus one-shot
// helpers.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace xrpl::util {

/// A 32-byte SHA-256 digest.
using Sha256Digest = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 hasher.
///
/// Usage:
///   Sha256 h;
///   h.update(bytes_a);
///   h.update(bytes_b);
///   Sha256Digest d = h.finish();
///
/// After finish() the hasher must not be reused; construct a new one.
class Sha256 {
public:
    Sha256() noexcept;

    /// Absorb `data` into the hash state.
    void update(std::span<const std::uint8_t> data) noexcept;
    /// Convenience overload for text.
    void update(std::string_view text) noexcept;

    /// Pad, finalize, and return the digest.
    [[nodiscard]] Sha256Digest finish() noexcept;

private:
    void process_block(const std::uint8_t* block) noexcept;

    std::array<std::uint32_t, 8> state_;
    std::array<std::uint8_t, 64> buffer_;
    std::size_t buffer_len_ = 0;
    std::uint64_t total_bytes_ = 0;
};

/// One-shot hash of a byte span.
[[nodiscard]] Sha256Digest sha256(std::span<const std::uint8_t> data) noexcept;

/// One-shot hash of text.
[[nodiscard]] Sha256Digest sha256(std::string_view text) noexcept;

/// sha256(sha256(data)) — Ripple/Bitcoin "hash256" used for checksums.
[[nodiscard]] Sha256Digest sha256d(std::span<const std::uint8_t> data) noexcept;

/// Lowercase hex rendering of a digest.
[[nodiscard]] std::string to_hex(const Sha256Digest& digest);

}  // namespace xrpl::util
