#include "util/options.hpp"

#include <sstream>
#include <thread>

#include "util/env.hpp"

namespace xrpl::util {

namespace {

constexpr OptionInfo kOptionTable[] = {
    {"XRPL_THREADS", "u64", "all hardware threads",
     "total parallelism of the shared pool (`src/exec/`); accelerates the "
     "analytics scans and sharded history generation; results are "
     "byte-identical for every value, `1` is genuinely serial"},
    {"XRPL_OBS", "flag", "0 (benches: 1)",
     "metrics + phase tracing (`src/obs/`); analytical outputs are "
     "byte-identical on or off; the bench harness enables it unless "
     "explicitly set to 0"},
    {"XRPL_BENCH_PAYMENTS", "u64", "250000",
     "synthetic history size shared by the figure benches (paper: 23 M)"},
    {"XRPL_BENCH_CONSENSUS_SCALE", "u64", "10",
     "percent of the full 252 K-round fortnight per Fig 2 period"},
    {"XRPL_BENCH_REPLAY_PAYMENTS", "u64", "40000",
     "Table II replay stream size (paper: 1.7 M)"},
    {"XRPL_BENCH_REPLAY_ACCOUNTS", "u64", "20000",
     "`ext_replay_scaling` population size (user accounts; the "
     "index-vs-scan acceptance run uses 100000)"},
    {"XRPL_BENCH_DATAGEN_PAYMENTS", "u64", "100000",
     "history size for the `ext_datagen_scaling` thread sweep"},
    {"XRPL_BENCH_JSON_DIR", "string", ".",
     "directory the bench harness writes `BENCH_<name>.json` into"},
    {"XRPL_DATASET_DIR", "string", "(unset: caching off)",
     "root of the content-addressed `.xcol` dataset cache (`src/snap/`); "
     "when set, generated histories are saved once and re-runs load the "
     "snapshot instead of regenerating (bit-identical either way)"},
    {"XRPL_PATH_INDEX", "flag", "1",
     "path/replay neighbor queries via the currency-partitioned CSR "
     "`GraphIndex` (`src/paths/graph_index.*`); `0` falls back to the "
     "legacy `lines_of()` scan; paths and `ReplayStats` are byte-identical "
     "either way"},
};

std::size_t default_threads() {
    const unsigned hardware = std::thread::hardware_concurrency();
    return hardware == 0 ? 1 : hardware;
}

}  // namespace

Options Options::from_env() {
    Options opts;
    opts.threads = static_cast<std::size_t>(
        env_u64("XRPL_THREADS", default_threads()));
    opts.obs = env_flag("XRPL_OBS", false);
    opts.obs_explicit = env_present("XRPL_OBS");
    opts.bench_payments = env_u64("XRPL_BENCH_PAYMENTS", opts.bench_payments);
    opts.bench_consensus_scale =
        env_u64("XRPL_BENCH_CONSENSUS_SCALE", opts.bench_consensus_scale);
    opts.bench_replay_payments =
        env_u64("XRPL_BENCH_REPLAY_PAYMENTS", opts.bench_replay_payments);
    opts.bench_replay_accounts =
        env_u64("XRPL_BENCH_REPLAY_ACCOUNTS", opts.bench_replay_accounts);
    opts.bench_datagen_payments =
        env_u64("XRPL_BENCH_DATAGEN_PAYMENTS", opts.bench_datagen_payments);
    opts.bench_json_dir = env_string("XRPL_BENCH_JSON_DIR", opts.bench_json_dir);
    opts.dataset_dir = env_string("XRPL_DATASET_DIR", opts.dataset_dir);
    opts.path_index = env_flag("XRPL_PATH_INDEX", opts.path_index);
    return opts;
}

const Options& options() {
    static const Options parsed = Options::from_env();
    return parsed;
}

std::span<const OptionInfo> option_table() noexcept { return kOptionTable; }

std::string options_markdown() {
    std::ostringstream os;
    os << "| variable | type | default | meaning |\n|---|---|---|---|\n";
    for (const OptionInfo& row : option_table()) {
        os << "| `" << row.name << "` | " << row.type << " | " << row.fallback
           << " | " << row.description << " |\n";
    }
    return os.str();
}

}  // namespace xrpl::util
