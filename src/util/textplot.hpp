// ASCII bar charts for bench output.
//
// The paper's figures are bar charts and CDF-style curves; the bench
// binaries render them as horizontal bar plots (optionally on a log
// scale, since most of the paper's y-axes are logarithmic).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace xrpl::util {

/// One bar of a horizontal bar chart.
struct Bar {
    std::string label;
    double value = 0.0;
    /// Optional second series (e.g. Fig 2's "valid pages" next to
    /// "total pages"); negative means absent.
    double secondary = -1.0;
};

/// Render a horizontal bar chart.
///
/// If `log_scale` is set, bar lengths are proportional to
/// log10(1 + value); values still print exactly.
struct BarChartOptions {
    bool log_scale = false;
    int width = 50;               // max bar length in characters
    std::string value_header = "value";
    std::string secondary_header;  // non-empty enables the second column
};

void render_bar_chart(std::ostream& os, const std::vector<Bar>& bars,
                      const BarChartOptions& options);

/// Render an x/y series as rows (x, y, bar) — used for survival
/// functions and hop histograms.
struct SeriesPoint {
    double x = 0.0;
    double y = 0.0;
};

void render_series(std::ostream& os, const std::string& x_name,
                   const std::string& y_name,
                   const std::vector<SeriesPoint>& points, bool log_scale);

}  // namespace xrpl::util
