#include "util/contract.hpp"

#include <cstdio>
#include <cstdlib>

namespace xrpl::util {

void contract_violation(const char* kind, const char* condition,
                        const char* message, const char* file,
                        long line) noexcept {
    // fprintf, not iostreams: this must work mid-crash, with no
    // allocation and no interleaving with half-flushed cout state.
    std::fprintf(stderr, "%s:%ld: contract %s failed: %s — %s\n", file, line,
                 kind, condition, message);
    std::fflush(stderr);
    std::abort();
}

}  // namespace xrpl::util
