// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78).
//
// The per-chunk integrity check of the XCOL snapshot format
// (src/snap/): cheap enough to run on every 8 K-row chunk during a
// parallel decode, and — unlike the whole-file sha256 seal — local,
// so a corrupt artifact can be attributed to the exact chunk that
// flipped. Software slice-by-8 table implementation; no hardware
// intrinsics, so the digest is identical on every platform.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace xrpl::util {

/// CRC32C of `data` continued from `seed` (0 for a fresh checksum).
/// crc32c(crc32c(0, a), b) == crc32c(0, a||b).
[[nodiscard]] std::uint32_t crc32c(std::uint32_t seed,
                                   std::span<const std::uint8_t> data) noexcept;

/// One-shot CRC32C.
[[nodiscard]] inline std::uint32_t crc32c(
    std::span<const std::uint8_t> data) noexcept {
    return crc32c(0, data);
}

}  // namespace xrpl::util
