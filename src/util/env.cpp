#include "util/env.hpp"

#include <charconv>
#include <cstdlib>
#include <cstring>
#include <iostream>

namespace xrpl::util {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
    const char* value = std::getenv(name);
    if (value == nullptr) return fallback;
    std::uint64_t parsed = 0;
    const char* end = value + std::strlen(value);
    const auto [ptr, ec] = std::from_chars(value, end, parsed);
    if (ec != std::errc{} || ptr != end || parsed == 0) {
        std::cerr << "warning: ignoring malformed " << name << "='" << value
                  << "' (expected a positive integer); using " << fallback
                  << "\n";
        return fallback;
    }
    return parsed;
}

bool env_flag(const char* name, bool fallback) {
    const char* value = std::getenv(name);
    if (value == nullptr) return fallback;
    if (std::strcmp(value, "0") == 0) return false;
    if (std::strcmp(value, "1") == 0) return true;
    std::cerr << "warning: ignoring malformed " << name << "='" << value
              << "' (expected 0 or 1); using " << (fallback ? "1" : "0")
              << "\n";
    return fallback;
}

std::string env_string(const char* name, const std::string& fallback) {
    const char* value = std::getenv(name);
    if (value == nullptr || value[0] == '\0') return fallback;
    return value;
}

bool env_present(const char* name) { return std::getenv(name) != nullptr; }

}  // namespace xrpl::util
