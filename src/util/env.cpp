#include "util/env.hpp"

#include <charconv>
#include <cstdlib>
#include <cstring>
#include <iostream>

namespace xrpl::util {

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
    const char* value = std::getenv(name);
    if (value == nullptr) return fallback;
    std::uint64_t parsed = 0;
    const char* end = value + std::strlen(value);
    const auto [ptr, ec] = std::from_chars(value, end, parsed);
    if (ec != std::errc{} || ptr != end || parsed == 0) {
        std::cerr << "warning: ignoring malformed " << name << "='" << value
                  << "' (expected a positive integer); using " << fallback
                  << "\n";
        return fallback;
    }
    return parsed;
}

}  // namespace xrpl::util
