// Base58 and base58check codecs using the Ripple alphabet.
//
// Ripple account addresses are 20-byte account IDs wrapped in
// base58check: prepend a one-byte type prefix (0x00 for accounts,
// 0x1c for validator node public keys rendered as "n..." strings),
// append the first four bytes of sha256d(prefix || payload), and
// base58-encode the whole thing with Ripple's custom alphabet
// (which starts with 'r' — hence account addresses start with "r").
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace xrpl::util {

/// Ripple's base58 dictionary (not Bitcoin's!).
inline constexpr std::string_view kRippleAlphabet =
    "rpshnaf39wBUDNEGHJKLM4PQRST7VWXYZ2bcdeCg65jkm8oFqi1tuvAxyz";

/// Type prefix for account IDs ("r..." addresses).
inline constexpr std::uint8_t kTokenAccountId = 0x00;
/// Type prefix for node public keys ("n..." validator keys).
inline constexpr std::uint8_t kTokenNodePublic = 0x1c;

/// Raw base58 encode (no checksum, no prefix).
[[nodiscard]] std::string base58_encode(std::span<const std::uint8_t> data);

/// Raw base58 decode. Returns nullopt on characters outside the alphabet.
[[nodiscard]] std::optional<std::vector<std::uint8_t>> base58_decode(std::string_view text);

/// Encode `payload` as base58check with the given type prefix.
[[nodiscard]] std::string base58check_encode(std::uint8_t type_prefix,
                                             std::span<const std::uint8_t> payload);

/// Decode a base58check string. Returns the payload (prefix and
/// checksum stripped) or nullopt if the checksum or prefix mismatches.
[[nodiscard]] std::optional<std::vector<std::uint8_t>> base58check_decode(
    std::uint8_t expected_type_prefix, std::string_view text);

}  // namespace xrpl::util
