// XCOL — the versioned columnar snapshot container for
// PaymentColumns.
//
// A 250K-payment bench history takes seconds to regenerate and
// milliseconds to read back; at the paper's 23M scale the gap is
// minutes versus a couple of seconds. XCOL is the on-disk shape that
// closes it: each column is chunked into runs of kXcolChunkRows rows
// (the exec::ChunkedView grain, so a loaded store chunks exactly like
// a generated one), chunk bodies are varint/delta encoded (timestamps
// delta within the chunk, interned ids and mantissas as LEB128), and
// the interner dictionaries ride along verbatim so the loaded store is
// id-for-id identical to the saved one — columns_fingerprint round-
// trips bit-exactly.
//
// Layout (all integers little-endian):
//
//   header     magic "XCOL", version, flags, row_count, chunk_rows,
//              chunk_count, dict sizes, schema kind bytes, CRC32C
//   table      chunk_count × u32 blob length, CRC32C
//   chunks     per chunk: encoded body + CRC32C of the body
//   dicts      accounts (20 B each) + CRC32C, currencies (3 B) + CRC32C
//   seal       sha256 over everything above
//
// Every region carries its own CRC32C so decode_columns can say WHICH
// bytes rotted (LoadError below), and the whole-file seal catches
// anything the local checks cannot attribute. Encode and decode fan
// chunks out on the shared exec pool with slot-writes only and merge
// on the calling thread, so bytes and loaded stores are identical at
// every XRPL_THREADS.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "exec/chunked_view.hpp"
#include "ledger/payment_columns.hpp"

namespace xrpl::snap {

/// "XCOL" read as a little-endian u32.
inline constexpr std::uint32_t kXcolMagic = 0x4C4F4358u;

/// Format version. Bump on ANY layout change — including a
/// ledger::payment_schema() change, which alters chunk bodies.
inline constexpr std::uint16_t kXcolVersion = 1;

/// Rows per chunk — pinned to the scan grain so a loaded store
/// re-chunks identically under exec::ChunkedView.
inline constexpr std::uint32_t kXcolChunkRows =
    static_cast<std::uint32_t>(exec::kDefaultChunkRows);

/// Why a load was rejected. Each corruption mode maps to a distinct
/// value so tests (and `snapctl verify`) can assert the failure is
/// understood, not merely detected.
enum class LoadError : std::uint8_t {
    kIoError = 1,       // file missing / unreadable
    kTruncated,         // fewer bytes than the format promises
    kBadMagic,          // not an XCOL file at all
    kBadVersion,        // stale or future format version
    kHeaderCorrupt,     // header or chunk-table CRC mismatch
    kBadSchema,         // column layout differs from payment_schema()
    kChunkCorrupt,      // a chunk body failed its CRC
    kDictCorrupt,       // an interner dictionary failed its CRC
    kSealMismatch,      // whole-file sha256 trailer mismatch
    kMalformed,         // CRCs pass but the encoding is inconsistent
};

/// Stable lowercase name ("truncated", "bad_magic", ...) for logs and
/// snapctl output.
[[nodiscard]] const char* load_error_name(LoadError error) noexcept;

/// Outcome of decode_columns / load_columns: either a store or a
/// classified error with a human-readable detail line.
struct LoadResult {
    [[nodiscard]] bool ok() const noexcept { return !error.has_value(); }

    std::optional<LoadError> error;
    std::string detail;               // e.g. "chunk 3 CRC mismatch"
    ledger::PaymentColumns columns;   // meaningful only when ok()
};

/// Header + seal summary, readable without decoding any chunk —
/// `snapctl info` in struct form.
struct XcolInfo {
    std::uint16_t version = 0;
    std::uint64_t rows = 0;
    std::uint32_t chunk_rows = 0;
    std::uint32_t chunk_count = 0;
    std::uint64_t accounts = 0;
    std::uint64_t currencies = 0;
    std::uint64_t total_bytes = 0;  // expected file size per the header
    std::string seal_hex;           // sha256 trailer, lowercase hex
};

/// Serialize `columns` into XCOL bytes. Chunk bodies are encoded in
/// parallel on the shared pool; the byte stream is identical at every
/// thread width.
[[nodiscard]] std::vector<std::uint8_t> encode_columns(
    const ledger::PaymentColumns& columns);

/// Parse and verify XCOL bytes back into a PaymentColumns. All CRC
/// regions and the seal are checked before any chunk is trusted;
/// chunk decode runs in parallel with slot writes only.
[[nodiscard]] LoadResult decode_columns(std::span<const std::uint8_t> bytes);

/// encode_columns + atomic write. Returns false on I/O failure.
bool save_columns(const std::string& path,
                  const ledger::PaymentColumns& columns);

/// Whole-file read + decode_columns (kIoError when unreadable).
[[nodiscard]] LoadResult load_columns(const std::string& path);

/// Header/seal summary of XCOL bytes; nullopt when the bytes are not
/// a structurally sane XCOL header (truncated, wrong magic, bad CRC).
[[nodiscard]] std::optional<XcolInfo> read_info(
    std::span<const std::uint8_t> bytes);

/// read_info over a file.
[[nodiscard]] std::optional<XcolInfo> read_file_info(const std::string& path);

}  // namespace xrpl::snap
