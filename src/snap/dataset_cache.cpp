#include "snap/dataset_cache.hpp"

#include <iostream>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/stopwatch.hpp"
#include "snap/xcol.hpp"
#include "util/file_io.hpp"
#include "util/options.hpp"

namespace xrpl::snap {

DatasetCache::DatasetCache(std::string directory)
    : directory_(std::move(directory)) {}

DatasetCache DatasetCache::from_options() {
    return DatasetCache(util::options().dataset_dir);
}

std::string DatasetCache::path_for(const std::string& key) const {
    return directory_ + "/" + key + ".xcol";
}

std::optional<ledger::PaymentColumns> DatasetCache::try_load(
    const std::string& key) const {
    if (!enabled()) return std::nullopt;
    const std::string path = path_for(key);
    if (!util::file_exists(path)) return std::nullopt;
    LoadResult result = load_columns(path);
    if (result.ok()) return std::move(result.columns);
    // A present-but-broken artifact: evict so the slot can be
    // republished; the caller regenerates this once.
    static obs::Counter& evictions = obs::counter("snap.cache.evictions");
    evictions.add();
    std::cerr << "warning: evicting corrupt dataset cache entry " << path
              << " (" << load_error_name(*result.error) << ": "
              << result.detail << ")\n";
    util::remove_file(path);
    return std::nullopt;
}

bool DatasetCache::store(const std::string& key,
                         const ledger::PaymentColumns& columns) const {
    if (!enabled()) return false;
    if (!util::ensure_directory(directory_)) {
        std::cerr << "warning: cannot create dataset cache directory "
                  << directory_ << "\n";
        return false;
    }
    static obs::Counter& stores = obs::counter("snap.cache.stores");
    stores.add();
    return save_columns(path_for(key), columns);
}

ledger::PaymentColumns DatasetCache::load_or_generate(
    const std::string& key,
    const std::function<ledger::PaymentColumns()>& generate) const {
    static obs::Counter& hits = obs::counter("snap.cache.hits");
    static obs::Counter& misses = obs::counter("snap.cache.misses");
    static obs::Histogram& load_ns = obs::histogram("snap.cache.load_ns");
    static obs::Histogram& generate_ns =
        obs::histogram("snap.cache.generate_ns");

    {
        const obs::Stopwatch clock;
        std::optional<ledger::PaymentColumns> cached = try_load(key);
        if (cached) {
            hits.add();
            load_ns.record(clock.elapsed_ns());
            return std::move(*cached);
        }
    }

    misses.add();
    const obs::Stopwatch clock;
    ledger::PaymentColumns columns = generate();
    generate_ns.record(clock.elapsed_ns());
    if (enabled()) store(key, columns);
    return columns;
}

}  // namespace xrpl::snap
