#include "snap/xcol.hpp"

#include <cstring>

#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "obs/stopwatch.hpp"
#include "util/contract.hpp"
#include "util/crc32c.hpp"
#include "util/file_io.hpp"
#include "util/sha256.hpp"

namespace xrpl::snap {

namespace {

// Fixed header prefix: magic(4) version(2) flags(2) rows(8)
// chunk_rows(4) chunk_count(4) accounts(8) currencies(8) columns(1).
constexpr std::size_t kHeaderPrefixSize = 4 + 2 + 2 + 8 + 4 + 4 + 8 + 8 + 1;
constexpr std::size_t kCrcSize = 4;
constexpr std::size_t kSealSize = 32;
constexpr std::size_t kAccountBytes = 20;
constexpr std::size_t kCurrencyBytes = 3;
// LEB128 on u64 never exceeds ten bytes; an eleventh continuation
// byte is corruption, not a long value.
constexpr int kMaxVarintBytes = 10;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

std::uint16_t get_u16(const std::uint8_t* p) {
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
    return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    return v;
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>((v & 0x7F) | 0x80));
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

[[nodiscard]] std::uint64_t zigzag(std::int64_t v) noexcept {
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] std::int64_t unzigzag(std::uint64_t v) noexcept {
    return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/// Bounds-checked LEB128 reader over one chunk body.
class VarintReader {
public:
    explicit VarintReader(std::span<const std::uint8_t> bytes) noexcept
        : bytes_(bytes) {}

    [[nodiscard]] bool read(std::uint64_t& out) noexcept {
        std::uint64_t value = 0;
        for (int i = 0; i < kMaxVarintBytes; ++i) {
            if (pos_ >= bytes_.size()) return false;
            const std::uint8_t byte = bytes_[pos_++];
            value |= static_cast<std::uint64_t>(byte & 0x7F) << (7 * i);
            if ((byte & 0x80) == 0) {
                out = value;
                return true;
            }
        }
        return false;  // continuation bit past ten bytes
    }

    [[nodiscard]] bool read_byte(std::uint8_t& out) noexcept {
        if (pos_ >= bytes_.size()) return false;
        out = bytes_[pos_++];
        return true;
    }

    [[nodiscard]] bool exhausted() const noexcept {
        return pos_ == bytes_.size();
    }

private:
    std::span<const std::uint8_t> bytes_;
    std::size_t pos_ = 0;
};

/// One chunk's rows, column-major, varint/delta-encoded, with the
/// body CRC32C appended — the complete on-disk chunk blob. Pure
/// function of (columns, begin, end): pool workers each build their
/// own blob into a private slot.
std::vector<std::uint8_t> encode_chunk(const ledger::PaymentColumns& columns,
                                       std::size_t begin, std::size_t end) {
    std::vector<std::uint8_t> blob;
    blob.reserve((end - begin) * 12);
    for (std::size_t i = begin; i < end; ++i) {
        put_varint(blob, columns.sender_id[i]);
    }
    for (std::size_t i = begin; i < end; ++i) {
        put_varint(blob, columns.dest_id[i]);
    }
    for (std::size_t i = begin; i < end; ++i) {
        put_varint(blob, columns.currency_id[i]);
    }
    for (std::size_t i = begin; i < end; ++i) {
        put_varint(blob, zigzag(columns.amount_mantissa[i]));
    }
    for (std::size_t i = begin; i < end; ++i) {
        blob.push_back(static_cast<std::uint8_t>(columns.amount_exponent[i]));
    }
    // Timestamps are near-monotonic (~4.5 s page cadence), so chunk-
    // local deltas collapse most rows to two-byte varints.
    std::int64_t previous = 0;
    for (std::size_t i = begin; i < end; ++i) {
        put_varint(blob, zigzag(columns.time_seconds[i] - previous));
        previous = columns.time_seconds[i];
    }
    put_u32(blob, util::crc32c(blob));
    return blob;
}

/// Decode one chunk blob (CRC already verified, CRC bytes excluded)
/// into rows [begin, end) of the output columns. Writes only its own
/// row range. Returns "" on success, a detail message on corruption.
std::string decode_chunk_into(std::span<const std::uint8_t> body,
                              std::size_t chunk_index, std::size_t begin,
                              std::size_t end,
                              ledger::PaymentColumns& columns,
                              std::uint64_t account_count,
                              std::uint64_t currency_count) {
    const std::string where = "chunk " + std::to_string(chunk_index);
    VarintReader reader(body);
    std::uint64_t value = 0;
    for (std::size_t i = begin; i < end; ++i) {
        if (!reader.read(value) || value >= account_count) {
            return where + ": bad sender id";
        }
        columns.sender_id[i] = static_cast<std::uint32_t>(value);
    }
    for (std::size_t i = begin; i < end; ++i) {
        if (!reader.read(value) || value >= account_count) {
            return where + ": bad destination id";
        }
        columns.dest_id[i] = static_cast<std::uint32_t>(value);
    }
    for (std::size_t i = begin; i < end; ++i) {
        if (!reader.read(value) || value >= currency_count) {
            return where + ": bad currency id";
        }
        columns.currency_id[i] = static_cast<std::uint16_t>(value);
    }
    for (std::size_t i = begin; i < end; ++i) {
        if (!reader.read(value)) return where + ": bad mantissa";
        columns.amount_mantissa[i] = unzigzag(value);
    }
    for (std::size_t i = begin; i < end; ++i) {
        std::uint8_t byte = 0;
        if (!reader.read_byte(byte)) return where + ": bad exponent";
        columns.amount_exponent[i] = static_cast<std::int8_t>(byte);
    }
    std::int64_t previous = 0;
    for (std::size_t i = begin; i < end; ++i) {
        if (!reader.read(value)) return where + ": bad timestamp";
        previous += unzigzag(value);
        columns.time_seconds[i] = previous;
    }
    if (!reader.exhausted()) return where + ": trailing bytes";
    return std::string();
}

LoadResult fail(LoadError error, std::string detail) {
    static obs::Counter& errors = obs::counter("snap.load.errors");
    errors.add();
    LoadResult result;
    result.error = error;
    result.detail = std::move(detail);
    return result;
}

/// Offsets of every region, derived from a validated header + chunk
/// table. All bounds are checked by the caller before decode.
struct Regions {
    std::size_t table_begin = 0;   // chunk length table
    std::size_t chunks_begin = 0;  // first chunk blob
    std::vector<std::size_t> chunk_offsets;  // per chunk, absolute
    std::vector<std::size_t> chunk_sizes;    // blob size incl. CRC
    std::size_t accounts_begin = 0;
    std::size_t currencies_begin = 0;
    std::size_t seal_begin = 0;
    std::size_t total = 0;
};

}  // namespace

const char* load_error_name(LoadError error) noexcept {
    switch (error) {
        case LoadError::kIoError: return "io_error";
        case LoadError::kTruncated: return "truncated";
        case LoadError::kBadMagic: return "bad_magic";
        case LoadError::kBadVersion: return "bad_version";
        case LoadError::kHeaderCorrupt: return "header_corrupt";
        case LoadError::kBadSchema: return "bad_schema";
        case LoadError::kChunkCorrupt: return "chunk_corrupt";
        case LoadError::kDictCorrupt: return "dict_corrupt";
        case LoadError::kSealMismatch: return "seal_mismatch";
        case LoadError::kMalformed: return "malformed";
    }
    return "unknown";
}

std::vector<std::uint8_t> encode_columns(
    const ledger::PaymentColumns& columns) {
    const obs::Stopwatch clock;
    const std::size_t rows = columns.size();
    const std::size_t chunks = exec::chunk_count_for(rows, kXcolChunkRows);
    const auto schema = ledger::payment_schema();

    // Chunk bodies in parallel: slot writes only, merged in chunk
    // order below — the byte stream never depends on XRPL_THREADS.
    std::vector<std::vector<std::uint8_t>> blobs(chunks);
    exec::ThreadPool::shared().run(chunks, [&](std::size_t c) {
        const std::size_t begin = c * kXcolChunkRows;
        const std::size_t end =
            begin + kXcolChunkRows < rows ? begin + kXcolChunkRows : rows;
        blobs[c] = encode_chunk(columns, begin, end);
    });

    std::size_t blob_bytes = 0;
    for (const auto& blob : blobs) blob_bytes += blob.size();

    std::vector<std::uint8_t> out;
    out.reserve(kHeaderPrefixSize + schema.size() + kCrcSize +
                chunks * 4 + kCrcSize + blob_bytes +
                columns.accounts.size() * kAccountBytes + kCrcSize +
                columns.currencies.size() * kCurrencyBytes + kCrcSize +
                kSealSize);

    // Header.
    put_u32(out, kXcolMagic);
    put_u16(out, kXcolVersion);
    put_u16(out, 0);  // flags
    put_u64(out, rows);
    put_u32(out, kXcolChunkRows);
    put_u32(out, static_cast<std::uint32_t>(chunks));
    put_u64(out, columns.accounts.size());
    put_u64(out, columns.currencies.size());
    out.push_back(static_cast<std::uint8_t>(schema.size()));
    for (const ledger::ColumnInfo& column : schema) {
        out.push_back(static_cast<std::uint8_t>(column.kind));
    }
    put_u32(out, util::crc32c(out));

    // Chunk length table (blob sizes, CRC included in each size).
    const std::size_t table_begin = out.size();
    for (const auto& blob : blobs) {
        put_u32(out, static_cast<std::uint32_t>(blob.size()));
    }
    put_u32(out, util::crc32c(std::span<const std::uint8_t>(
                     out.data() + table_begin, out.size() - table_begin)));

    // Chunk blobs, in chunk order.
    for (const auto& blob : blobs) {
        out.insert(out.end(), blob.begin(), blob.end());
    }

    // Dictionaries.
    const std::size_t accounts_begin = out.size();
    for (std::size_t i = 0; i < columns.accounts.size(); ++i) {
        const auto& id = columns.accounts.at(static_cast<std::uint32_t>(i));
        out.insert(out.end(), id.bytes.begin(), id.bytes.end());
    }
    put_u32(out, util::crc32c(std::span<const std::uint8_t>(
                     out.data() + accounts_begin,
                     out.size() - accounts_begin)));
    const std::size_t currencies_begin = out.size();
    for (std::size_t i = 0; i < columns.currencies.size(); ++i) {
        const auto& code =
            columns.currencies.at(static_cast<std::uint16_t>(i)).code;
        for (const char c : code) {
            out.push_back(static_cast<std::uint8_t>(c));
        }
    }
    put_u32(out, util::crc32c(std::span<const std::uint8_t>(
                     out.data() + currencies_begin,
                     out.size() - currencies_begin)));

    // Whole-file seal.
    const util::Sha256Digest seal = util::sha256(out);
    out.insert(out.end(), seal.begin(), seal.end());

    static obs::Counter& saved_bytes = obs::counter("snap.encode.bytes");
    static obs::Counter& saved_chunks = obs::counter("snap.encode.chunks");
    static obs::Histogram& encode_ns = obs::histogram("snap.encode_ns");
    saved_bytes.add(out.size());
    saved_chunks.add(chunks);
    encode_ns.record(clock.elapsed_ns());
    return out;
}

LoadResult decode_columns(std::span<const std::uint8_t> bytes) {
    const obs::Stopwatch clock;

    // --- header: magic, version, CRC, schema — in that order, so a
    // foreign file says "bad magic", not "corrupt header". ------------
    if (bytes.size() < 4) return fail(LoadError::kTruncated, "no magic");
    if (get_u32(bytes.data()) != kXcolMagic) {
        return fail(LoadError::kBadMagic, "not an XCOL file");
    }
    if (bytes.size() < 6) return fail(LoadError::kTruncated, "no version");
    const std::uint16_t version = get_u16(bytes.data() + 4);
    if (version != kXcolVersion) {
        return fail(LoadError::kBadVersion,
                    "format version " + std::to_string(version) +
                        ", expected " + std::to_string(kXcolVersion));
    }
    if (bytes.size() < kHeaderPrefixSize) {
        return fail(LoadError::kTruncated, "header cut short");
    }
    const std::size_t column_count = bytes[kHeaderPrefixSize - 1];
    const std::size_t header_size =
        kHeaderPrefixSize + column_count + kCrcSize;
    if (bytes.size() < header_size) {
        return fail(LoadError::kTruncated, "schema bytes cut short");
    }
    const std::size_t header_body = header_size - kCrcSize;
    if (get_u32(bytes.data() + header_body) !=
        util::crc32c(bytes.subspan(0, header_body))) {
        return fail(LoadError::kHeaderCorrupt, "header CRC mismatch");
    }
    const auto schema = ledger::payment_schema();
    bool schema_matches = column_count == schema.size();
    for (std::size_t i = 0; schema_matches && i < column_count; ++i) {
        schema_matches = bytes[kHeaderPrefixSize + i] ==
                         static_cast<std::uint8_t>(schema[i].kind);
    }
    if (!schema_matches) {
        return fail(LoadError::kBadSchema,
                    "column layout differs from payment_schema()");
    }

    const std::uint64_t rows = get_u64(bytes.data() + 8);
    const std::uint32_t chunk_rows = get_u32(bytes.data() + 16);
    const std::uint32_t chunk_count = get_u32(bytes.data() + 20);
    const std::uint64_t account_count = get_u64(bytes.data() + 24);
    const std::uint64_t currency_count = get_u64(bytes.data() + 32);
    if (chunk_rows == 0 ||
        chunk_count != exec::chunk_count_for(static_cast<std::size_t>(rows),
                                             chunk_rows)) {
        return fail(LoadError::kMalformed, "row/chunk counts disagree");
    }
    if (account_count > UINT32_MAX || currency_count > UINT16_MAX) {
        return fail(LoadError::kMalformed, "dictionary too large for ids");
    }

    // --- chunk table + derived region offsets. -----------------------
    Regions regions;
    regions.table_begin = header_size;
    const std::size_t table_size = std::size_t{chunk_count} * 4 + kCrcSize;
    if (bytes.size() < regions.table_begin + table_size) {
        return fail(LoadError::kTruncated, "chunk table cut short");
    }
    if (get_u32(bytes.data() + regions.table_begin + table_size - kCrcSize) !=
        util::crc32c(
            bytes.subspan(regions.table_begin, table_size - kCrcSize))) {
        return fail(LoadError::kHeaderCorrupt, "chunk table CRC mismatch");
    }
    regions.chunks_begin = regions.table_begin + table_size;
    regions.chunk_offsets.resize(chunk_count);
    regions.chunk_sizes.resize(chunk_count);
    std::size_t offset = regions.chunks_begin;
    for (std::size_t c = 0; c < chunk_count; ++c) {
        const std::uint32_t size =
            get_u32(bytes.data() + regions.table_begin + c * 4);
        if (size < kCrcSize + 1) {
            return fail(LoadError::kMalformed,
                        "chunk " + std::to_string(c) + " blob too small");
        }
        regions.chunk_offsets[c] = offset;
        regions.chunk_sizes[c] = size;
        offset += size;
    }
    regions.accounts_begin = offset;
    regions.currencies_begin = regions.accounts_begin +
                               static_cast<std::size_t>(account_count) *
                                   kAccountBytes +
                               kCrcSize;
    regions.seal_begin = regions.currencies_begin +
                         static_cast<std::size_t>(currency_count) *
                             kCurrencyBytes +
                         kCrcSize;
    regions.total = regions.seal_begin + kSealSize;
    if (bytes.size() < regions.total) {
        return fail(LoadError::kTruncated,
                    "file is " + std::to_string(bytes.size()) +
                        " bytes, format promises " +
                        std::to_string(regions.total));
    }
    if (bytes.size() > regions.total) {
        return fail(LoadError::kMalformed, "trailing bytes after seal");
    }

    // --- local CRCs before the seal, so a flipped byte is attributed
    // to its region instead of reported as a global mismatch. ---------
    std::vector<std::uint8_t> chunk_ok(chunk_count, 0);
    exec::ThreadPool::shared().run(chunk_count, [&](std::size_t c) {
        const std::size_t body = regions.chunk_sizes[c] - kCrcSize;
        const auto blob = bytes.subspan(regions.chunk_offsets[c],
                                        regions.chunk_sizes[c]);
        chunk_ok[c] = static_cast<std::uint8_t>(
            get_u32(blob.data() + body) == util::crc32c(blob.subspan(0, body))
                ? 1
                : 0);
    });
    for (std::size_t c = 0; c < chunk_count; ++c) {
        if (!chunk_ok[c]) {
            return fail(LoadError::kChunkCorrupt,
                        "chunk " + std::to_string(c) + " CRC mismatch");
        }
    }
    const std::size_t accounts_body =
        regions.currencies_begin - kCrcSize - regions.accounts_begin;
    if (get_u32(bytes.data() + regions.currencies_begin - kCrcSize) !=
        util::crc32c(bytes.subspan(regions.accounts_begin, accounts_body))) {
        return fail(LoadError::kDictCorrupt, "account dictionary CRC mismatch");
    }
    const std::size_t currencies_body =
        regions.seal_begin - kCrcSize - regions.currencies_begin;
    if (get_u32(bytes.data() + regions.seal_begin - kCrcSize) !=
        util::crc32c(
            bytes.subspan(regions.currencies_begin, currencies_body))) {
        return fail(LoadError::kDictCorrupt,
                    "currency dictionary CRC mismatch");
    }
    const util::Sha256Digest seal =
        util::sha256(bytes.subspan(0, regions.seal_begin));
    if (std::memcmp(seal.data(), bytes.data() + regions.seal_begin,
                    kSealSize) != 0) {
        return fail(LoadError::kSealMismatch, "whole-file sha256 mismatch");
    }

    // --- rebuild the store: dictionaries first (serial; id order IS
    // first-seen order), then chunk bodies in parallel slot writes. ---
    LoadResult result;
    ledger::PaymentColumns& columns = result.columns;
    for (std::uint64_t i = 0; i < account_count; ++i) {
        ledger::AccountID id;
        std::memcpy(id.bytes.data(),
                    bytes.data() + regions.accounts_begin +
                        static_cast<std::size_t>(i) * kAccountBytes,
                    kAccountBytes);
        columns.accounts.intern(id);
    }
    for (std::uint64_t i = 0; i < currency_count; ++i) {
        const std::uint8_t* p = bytes.data() + regions.currencies_begin +
                                static_cast<std::size_t>(i) * kCurrencyBytes;
        ledger::Currency currency;
        currency.code = {static_cast<char>(p[0]), static_cast<char>(p[1]),
                         static_cast<char>(p[2])};
        columns.currencies.intern(currency);
    }
    if (columns.accounts.size() != account_count ||
        columns.currencies.size() != currency_count) {
        // A duplicate dictionary entry interned to one id: row ids
        // would silently alias.
        return fail(LoadError::kMalformed, "duplicate dictionary entry");
    }

    columns.sender_id.resize(rows);
    columns.dest_id.resize(rows);
    columns.currency_id.resize(rows);
    columns.amount_mantissa.resize(rows);
    columns.amount_exponent.resize(rows);
    columns.time_seconds.resize(rows);
    std::vector<std::string> chunk_errors(chunk_count);
    exec::ThreadPool::shared().run(chunk_count, [&](std::size_t c) {
        const std::size_t begin = c * chunk_rows;
        const std::size_t end = begin + chunk_rows < rows
                                    ? begin + chunk_rows
                                    : static_cast<std::size_t>(rows);
        chunk_errors[c] = decode_chunk_into(
            bytes.subspan(regions.chunk_offsets[c],
                          regions.chunk_sizes[c] - kCrcSize),
            c, begin, end, columns, account_count, currency_count);
    });
    for (std::size_t c = 0; c < chunk_count; ++c) {
        if (!chunk_errors[c].empty()) {
            return fail(LoadError::kMalformed, chunk_errors[c]);
        }
    }

    static obs::Counter& loaded_bytes = obs::counter("snap.decode.bytes");
    static obs::Counter& loaded_chunks = obs::counter("snap.decode.chunks");
    static obs::Counter& loaded_rows = obs::counter("snap.decode.rows");
    static obs::Histogram& decode_ns = obs::histogram("snap.decode_ns");
    loaded_bytes.add(bytes.size());
    loaded_chunks.add(chunk_count);
    loaded_rows.add(rows);
    decode_ns.record(clock.elapsed_ns());
    return result;
}

bool save_columns(const std::string& path,
                  const ledger::PaymentColumns& columns) {
    const obs::Phase phase("snap.save");
    return util::write_file_bytes(path, encode_columns(columns));
}

LoadResult load_columns(const std::string& path) {
    const obs::Phase phase("snap.load");
    const auto bytes = util::read_file_bytes(path);
    if (!bytes) {
        LoadResult result;
        result.error = LoadError::kIoError;
        result.detail = "cannot read " + path;
        return result;
    }
    return decode_columns(*bytes);
}

std::optional<XcolInfo> read_info(std::span<const std::uint8_t> bytes) {
    if (bytes.size() < kHeaderPrefixSize) return std::nullopt;
    if (get_u32(bytes.data()) != kXcolMagic) return std::nullopt;
    const std::size_t column_count = bytes[kHeaderPrefixSize - 1];
    const std::size_t header_size =
        kHeaderPrefixSize + column_count + kCrcSize;
    if (bytes.size() < header_size) return std::nullopt;
    const std::size_t header_body = header_size - kCrcSize;
    if (get_u32(bytes.data() + header_body) !=
        util::crc32c(bytes.subspan(0, header_body))) {
        return std::nullopt;
    }

    XcolInfo info;
    info.version = get_u16(bytes.data() + 4);
    info.rows = get_u64(bytes.data() + 8);
    info.chunk_rows = get_u32(bytes.data() + 16);
    info.chunk_count = get_u32(bytes.data() + 20);
    info.accounts = get_u64(bytes.data() + 24);
    info.currencies = get_u64(bytes.data() + 32);
    info.total_bytes = bytes.size();
    if (bytes.size() >= kSealSize) {
        util::Sha256Digest seal;
        std::memcpy(seal.data(), bytes.data() + bytes.size() - kSealSize,
                    kSealSize);
        info.seal_hex = util::to_hex(seal);
    }
    return info;
}

std::optional<XcolInfo> read_file_info(const std::string& path) {
    const auto bytes = util::read_file_bytes(path);
    if (!bytes) return std::nullopt;
    return read_info(*bytes);
}

}  // namespace xrpl::snap
