// Content-addressed snapshot cache over XCOL artifacts.
//
// A cache entry is `<directory>/<key>.xcol`, where the key is the
// caller's content hash of WHAT the artifact is (for generated
// histories: sha256 of the canonical GeneratorConfig text plus the
// XCOL format version — see datagen/dataset.hpp). Content addressing
// plus util::write_file_bytes's atomic publish is the whole
// consistency story: a file either exists under its final name and is
// a completely written artifact for exactly that key, or it does not
// exist — there is no "partially cached" state to repair, and
// concurrent writers of the same key race benignly toward identical
// bytes.
//
// Loads still verify every CRC and the seal (a cache directory on a
// flaky disk must degrade to a regeneration, not a crash), so a
// corrupt entry is evicted and regenerated in place.
//
// The cache is DISABLED unless a directory is configured
// (XRPL_DATASET_DIR, read through util::options()): default runs
// touch no disk, exactly as before this layer existed.
#pragma once

#include <functional>
#include <optional>
#include <string>

#include "ledger/payment_columns.hpp"

namespace xrpl::snap {

class DatasetCache {
public:
    /// A cache rooted at `directory`; empty means disabled (every
    /// lookup misses, nothing is stored).
    explicit DatasetCache(std::string directory);

    /// The process-wide configuration: rooted at XRPL_DATASET_DIR.
    [[nodiscard]] static DatasetCache from_options();

    [[nodiscard]] bool enabled() const noexcept { return !directory_.empty(); }
    [[nodiscard]] const std::string& directory() const noexcept {
        return directory_;
    }

    /// Artifact path for `key` (no existence implied).
    [[nodiscard]] std::string path_for(const std::string& key) const;

    /// The cached store for `key`, if present AND intact. A corrupt
    /// entry is removed (and counted in snap.cache.evictions) so the
    /// next store() can republish it.
    [[nodiscard]] std::optional<ledger::PaymentColumns> try_load(
        const std::string& key) const;

    /// Publish `columns` under `key` (atomic; false on I/O failure or
    /// when the cache is disabled).
    bool store(const std::string& key,
               const ledger::PaymentColumns& columns) const;

    /// try_load, falling back to generate() + store. The one
    /// cache-or-compute entry point consumers use; hit/miss counts and
    /// both path durations land in the snap.cache.* metrics, which is
    /// how the warm-cache smoke test proves the cache actually served.
    [[nodiscard]] ledger::PaymentColumns load_or_generate(
        const std::string& key,
        const std::function<ledger::PaymentColumns()>& generate) const;

private:
    std::string directory_;
};

}  // namespace xrpl::snap
