#include "datagen/spam.hpp"

#include <span>

namespace xrpl::datagen {

const char* spam_kind_name(SpamKind kind) noexcept {
    switch (kind) {
        case SpamKind::kOrganic: return "organic";
        case SpamKind::kMtlCampaign: return "mtl-campaign";
        case SpamKind::kCckCampaign: return "cck-campaign";
        case SpamKind::kAccountZeroPingPong: return "account-zero";
        case SpamKind::kGambling: return "gambling";
    }
    return "?";
}

SpamKind classify(const ledger::TxRecord& record,
                  const Population& population) noexcept {
    if (record.destination == population.account_zero ||
        record.sender == population.account_zero) {
        return SpamKind::kAccountZeroPingPong;
    }
    if (record.destination == population.ripple_spin) {
        return SpamKind::kGambling;
    }
    if (record.currency == cur("MTL")) {
        // MTL traffic is recognizable by its absurd amounts (~1e9).
        if (record.amount.to_double() > 1e6) return SpamKind::kMtlCampaign;
    }
    if (record.currency == cur("CCK")) {
        return SpamKind::kCckCampaign;
    }
    return SpamKind::kOrganic;
}

namespace {

void tally(SpamBreakdown& breakdown, SpamKind kind) noexcept {
    switch (kind) {
        case SpamKind::kOrganic: ++breakdown.organic; break;
        case SpamKind::kMtlCampaign: ++breakdown.mtl; break;
        case SpamKind::kCckCampaign: ++breakdown.cck; break;
        case SpamKind::kAccountZeroPingPong: ++breakdown.account_zero; break;
        case SpamKind::kGambling: ++breakdown.gambling; break;
    }
}

}  // namespace

SpamBreakdown spam_breakdown(std::span<const ledger::TxRecord> records,
                             const Population& population) {
    SpamBreakdown breakdown;
    for (const ledger::TxRecord& record : records) {
        tally(breakdown, classify(record, population));
    }
    return breakdown;
}

SpamBreakdown spam_breakdown(ledger::PaymentView view,
                             const Population& population) {
    const ledger::PaymentColumns& columns = view.columns();
    const std::size_t offset = view.offset();

    // Resolve the campaign markers to interned ids once; an absent id
    // means the history contains no such traffic at all.
    constexpr std::uint32_t kNoAccount = 0xffffffffU;
    constexpr std::uint16_t kNoCurrency = 0xffffU;
    const auto account_marker = [&](const ledger::AccountID& id) {
        return columns.accounts.find(id).value_or(kNoAccount);
    };
    const auto currency_marker = [&](const ledger::Currency& currency) {
        return columns.currencies.find(currency).value_or(kNoCurrency);
    };
    const std::uint32_t account_zero = account_marker(population.account_zero);
    const std::uint32_t ripple_spin = account_marker(population.ripple_spin);
    const std::uint16_t mtl = currency_marker(cur("MTL"));
    const std::uint16_t cck = currency_marker(cur("CCK"));

    SpamBreakdown breakdown;
    for (std::size_t i = 0; i < view.size(); ++i) {
        const std::size_t r = offset + i;
        // Same decision order as classify().
        if (columns.dest_id[r] == account_zero ||
            columns.sender_id[r] == account_zero) {
            tally(breakdown, SpamKind::kAccountZeroPingPong);
            continue;
        }
        if (columns.dest_id[r] == ripple_spin) {
            tally(breakdown, SpamKind::kGambling);
            continue;
        }
        const std::uint16_t currency = columns.currency_id[r];
        if (currency == mtl && currency != kNoCurrency) {
            const double amount =
                ledger::IouAmount::from_mantissa_exponent(
                    columns.amount_mantissa[r], columns.amount_exponent[r])
                    .to_double();
            if (amount > 1e6) {
                tally(breakdown, SpamKind::kMtlCampaign);
                continue;
            }
        }
        if (currency == cck && currency != kNoCurrency) {
            tally(breakdown, SpamKind::kCckCampaign);
            continue;
        }
        tally(breakdown, SpamKind::kOrganic);
    }
    return breakdown;
}

}  // namespace xrpl::datagen
