#include "datagen/spam.hpp"

#include <span>

namespace xrpl::datagen {

const char* spam_kind_name(SpamKind kind) noexcept {
    switch (kind) {
        case SpamKind::kOrganic: return "organic";
        case SpamKind::kMtlCampaign: return "mtl-campaign";
        case SpamKind::kCckCampaign: return "cck-campaign";
        case SpamKind::kAccountZeroPingPong: return "account-zero";
        case SpamKind::kGambling: return "gambling";
    }
    return "?";
}

SpamKind classify(const ledger::TxRecord& record,
                  const Population& population) noexcept {
    if (record.destination == population.account_zero ||
        record.sender == population.account_zero) {
        return SpamKind::kAccountZeroPingPong;
    }
    if (record.destination == population.ripple_spin) {
        return SpamKind::kGambling;
    }
    if (record.currency == cur("MTL")) {
        // MTL traffic is recognizable by its absurd amounts (~1e9).
        if (record.amount.to_double() > 1e6) return SpamKind::kMtlCampaign;
    }
    if (record.currency == cur("CCK")) {
        return SpamKind::kCckCampaign;
    }
    return SpamKind::kOrganic;
}

SpamBreakdown spam_breakdown(std::span<const ledger::TxRecord> records,
                             const Population& population) {
    SpamBreakdown breakdown;
    for (const ledger::TxRecord& record : records) {
        switch (classify(record, population)) {
            case SpamKind::kOrganic: ++breakdown.organic; break;
            case SpamKind::kMtlCampaign: ++breakdown.mtl; break;
            case SpamKind::kCckCampaign: ++breakdown.cck; break;
            case SpamKind::kAccountZeroPingPong: ++breakdown.account_zero; break;
            case SpamKind::kGambling: ++breakdown.gambling; break;
        }
    }
    return breakdown;
}

}  // namespace xrpl::datagen
