#include "datagen/workload.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace xrpl::datagen {

namespace {

using ledger::AccountID;
using ledger::Amount;
using ledger::Currency;
using ledger::IouAmount;
using ledger::TxRecord;
using ledger::TxResult;
using paths::PaymentRequest;

std::vector<double> category_weights(const GeneratorConfig& c) {
    return {c.xrp_organic_fraction, c.ripple_spin_fraction,
            c.account_zero_fraction, c.mtl_spam_fraction,
            c.cck_spam_fraction,     c.iou_retail_fraction,
            c.cross_currency_fraction};
}

TxRecord make_record(const PaymentRequest& request, util::RippleTime now) {
    TxRecord record;
    record.sender = request.sender;
    record.destination = request.destination;
    record.currency = request.deliver.currency;
    record.amount = request.deliver.value;
    record.time = now;
    return record;
}

/// Poisson sampler (Knuth; fine for small lambda).
std::uint32_t poisson(util::Rng& rng, double lambda) {
    const double limit = std::exp(-lambda);
    double product = rng.uniform01();
    std::uint32_t count = 0;
    while (product > limit) {
        ++count;
        product *= rng.uniform01();
    }
    return count;
}

}  // namespace

const char* category_name(PaymentCategory c) noexcept {
    switch (c) {
        case PaymentCategory::kXrpOrganic: return "xrp-organic";
        case PaymentCategory::kRippleSpin: return "ripple-spin";
        case PaymentCategory::kAccountZero: return "account-zero";
        case PaymentCategory::kMtlSpam: return "mtl-spam";
        case PaymentCategory::kCckSpam: return "cck-spam";
        case PaymentCategory::kIouRetail: return "iou-retail";
        case PaymentCategory::kCrossCurrency: return "cross-currency";
        case PaymentCategory::kRefill: return "refill";
    }
    return "?";
}

WorkloadGenerator::WorkloadGenerator(const GeneratorConfig& config,
                                     const Population& population,
                                     paths::PaymentEngine& engine,
                                     const util::RngStream& stream,
                                     bool emit_fortyfour)
    : config_(config),
      pop_(&population),
      engine_(&engine),
      rng_(stream.rng()),
      category_sampler_(category_weights(config)),
      maker_sampler_(population.market_makers.size(), 1.0),
      merchant_sampler_(std::max<std::size_t>(population.merchants.size(), 1), 1.0),
      currency_sampler_([] {
          std::vector<double> weights;
          for (const CurrencyInfo& info : organic_currency_catalog()) {
              weights.push_back(info.weight);
          }
          return util::CategoricalSampler(weights);
      }()),
      live_offers_(population.market_makers.size()),
      offer_placements_(population.market_makers.size(), 0),
      fortyfour_emitted_(!emit_fortyfour) {
    for (std::uint32_t i = 0; i < pop_->users.size(); ++i) {
        users_by_currency_[pop_->user_profiles[i].home].push_back(i);
    }

    // Which currencies each maker can deliver (has a deposit line in).
    maker_currencies_.resize(pop_->market_makers.size());
    const ledger::LedgerState& state = engine_->ledger();
    for (std::size_t i = 0; i < pop_->market_makers.size(); ++i) {
        std::unordered_set<Currency> seen;
        for (const ledger::TrustLine* line : state.lines_of(pop_->market_makers[i])) {
            if (seen.insert(line->key().currency).second) {
                maker_currencies_[i].push_back(line->key().currency);
            }
        }
    }
}

void WorkloadGenerator::emit_page(
    util::RippleTime close_time,
    const std::function<void(const WorkloadOutcome&)>& sink) {
    place_offers();
    // Bursts contribute ~3 payments each; the base rate is lowered so
    // the overall mean stays at payments_per_page.
    const double base_lambda = std::max(
        0.1, config_.payments_per_page - 3.0 * config_.burst_probability);
    const std::uint32_t payments = poisson(rng_, base_lambda);
    for (std::uint32_t i = 0; i < payments; ++i) {
        const auto category =
            static_cast<PaymentCategory>(category_sampler_.sample(rng_));
        attempt(category, close_time, sink);
    }
    if (rng_.bernoulli(config_.burst_probability)) {
        emit_burst(close_time, sink);
    }

    // Liquidity maintenance: hub operators replenish a drained
    // gateway line now and then (a real, recorded deposit payment).
    if (rng_.bernoulli(0.60) && !pop_->hubs.empty()) {
        const ledger::AccountID& hub =
            pop_->hubs[rng_.uniform_u64(0, pop_->hubs.size() - 1)];
        const auto& lines = engine_->ledger().lines_of(hub);
        if (!lines.empty()) {
            const ledger::TrustLine* line =
                lines[rng_.uniform_u64(0, lines.size() - 1)];
            const ledger::AccountID& gateway = line->peer_of(hub);
            const Currency currency = line->key().currency;
            const double unit = usd_value(currency);
            const double held = line->balance_for(hub).to_double();
            if (held < 5e4 / unit &&
                engine_->ledger().account(gateway) != nullptr &&
                engine_->ledger().account(gateway)->is_gateway) {
                PaymentRequest request;
                request.sender = gateway;
                request.destination = hub;
                request.deliver = Amount::iou(
                    currency,
                    (1e5 / unit - held) * rng_.uniform(0.9, 1.1));
                request.source_currency = currency;
                WorkloadOutcome out;
                out.category = PaymentCategory::kRefill;
                out.result = engine_->execute(request);
                out.record = make_record(request, close_time);
                stats_.count(PaymentCategory::kRefill, out.result.success);
                if (out.result.success) sink(out);
            }
        }
    }
}

void WorkloadGenerator::emit_burst(
    util::RippleTime now, const std::function<void(const WorkloadOutcome&)>& sink) {
    if (pop_->merchants.empty()) return;
    const std::size_t merchant_index = merchant_sampler_.sample(rng_);
    const MerchantProfile& merchant = pop_->merchant_profiles[merchant_index];
    const auto it = users_by_currency_.find(merchant.home);
    if (it == users_by_currency_.end() || it->second.size() < 2) return;

    const std::uint64_t size = rng_.uniform_u64(2, 4);
    const double typical = 20.0 / usd_value(merchant.home);
    for (std::uint64_t i = 0; i < size; ++i) {
        const std::uint32_t user_index =
            it->second[rng_.uniform_u64(0, it->second.size() - 1)];
        PaymentRequest request;
        request.sender = pop_->users[user_index];
        request.destination = pop_->merchants[merchant_index];
        request.deliver =
            Amount::iou(merchant.home, typical * rng_.lognormal(0.0, 1.8));
        request.source_currency = merchant.home;

        WorkloadOutcome out;
        out.category = PaymentCategory::kIouRetail;
        out.result = engine_->execute(request);
        if (!out.result.success) {
            refill_user(user_index, now, sink);
            out.result = engine_->execute(request);
        }
        out.record = make_record(request, now);
        stats_.count(PaymentCategory::kIouRetail, out.result.success);
        if (out.result.success) sink(out);
    }
}

void WorkloadGenerator::place_offers() {
    const std::uint32_t count = poisson(rng_, config_.offers_per_page);
    ledger::LedgerState& state = engine_->ledger();
    for (std::uint32_t n = 0; n < count; ++n) {
        const std::size_t maker_index = maker_sampler_.sample(rng_);
        const auto& currencies = maker_currencies_[maker_index];
        if (currencies.empty()) continue;
        const AccountID& maker = pop_->market_makers[maker_index];

        // 80% of quotes bridge a currency with XRP (the universal
        // bridge); the rest quote a direct pair the maker can serve.
        Currency pays;
        Currency gets;
        if (rng_.bernoulli(0.8) || currencies.size() < 2) {
            const Currency c = currencies[rng_.uniform_u64(0, currencies.size() - 1)];
            if (rng_.bernoulli(0.5)) {
                pays = Currency::xrp();
                gets = c;
            } else {
                pays = c;
                gets = Currency::xrp();
            }
        } else {
            const std::size_t a = rng_.uniform_u64(0, currencies.size() - 1);
            std::size_t b = rng_.uniform_u64(0, currencies.size() - 2);
            if (b >= a) ++b;
            pays = currencies[a];
            gets = currencies[b];
        }

        // Rate from USD values, with a small maker spread.
        const double fair = usd_value(gets) / usd_value(pays);
        const double rate = fair * rng_.uniform(1.002, 1.03);
        const double gets_amount =
            (2e5 / usd_value(gets)) * rng_.lognormal(0.0, 0.7);
        const double pays_amount = gets_amount * rate;

        const std::uint64_t id = state.place_offer(
            maker, Amount::iou(pays, pays_amount), Amount::iou(gets, gets_amount));
        ++offer_placements_[maker_index];
        ++offers_placed_total_;

        auto& live = live_offers_[maker_index];
        live.push_back(LiveOffer{ledger::BookKey{pays, gets}, id});
        // Churn: retire the maker's oldest quote beyond the cap.
        if (live.size() > config_.live_offers_per_maker) {
            const LiveOffer old = live.front();
            live.pop_front();
            auto& book = state.book_mutable(old.key);
            std::erase_if(book,
                          [&](const ledger::Offer& o) { return o.id == old.id; });
        }
    }
}

void WorkloadGenerator::attempt(
    PaymentCategory category, util::RippleTime now,
    const std::function<void(const WorkloadOutcome&)>& sink) {
    WorkloadOutcome out;
    out.category = category;
    bool ok = false;
    switch (category) {
        case PaymentCategory::kXrpOrganic: ok = do_xrp_organic(now, out); break;
        case PaymentCategory::kRippleSpin: ok = do_ripple_spin(now, out); break;
        case PaymentCategory::kAccountZero: ok = do_account_zero(now, out); break;
        case PaymentCategory::kMtlSpam: ok = do_mtl_spam(now, out); break;
        case PaymentCategory::kCckSpam: ok = do_cck_spam(now, out); break;
        case PaymentCategory::kIouRetail: ok = do_iou_retail(now, out, sink); break;
        case PaymentCategory::kCrossCurrency: ok = do_cross_currency(now, out); break;
        case PaymentCategory::kRefill: break;  // generated only internally
    }
    stats_.count(category, ok);
    if (ok) sink(out);
}

bool WorkloadGenerator::do_xrp_organic(util::RippleTime now, WorkloadOutcome& out) {
    PaymentRequest request;
    double draw;
    if (rng_.bernoulli(config_.xrp_whale_fraction)) {
        // Whale-sized treasury moves between Market Makers and hubs:
        // the far tail of Fig 5's global amount distribution.
        request.sender = pop_->market_makers[rng_.uniform_u64(
            0, pop_->market_makers.size() - 1)];
        request.destination = rng_.bernoulli(0.5)
                                  ? pop_->market_makers[rng_.uniform_u64(
                                        0, pop_->market_makers.size() - 1)]
                                  : pop_->hubs[rng_.uniform_u64(
                                        0, pop_->hubs.size() - 1)];
        if (request.destination == request.sender) return false;
        draw = rng_.lognormal(std::log(5e7), 2.5);
    } else {
        const std::size_t from = rng_.uniform_u64(0, pop_->users.size() - 1);
        std::size_t to = rng_.uniform_u64(0, pop_->users.size() - 1);
        if (to == from) to = (to + 1) % pop_->users.size();
        request.sender = pop_->users[from];
        request.destination = rng_.bernoulli(0.15) && !pop_->merchants.empty()
                                  ? pop_->merchants[merchant_sampler_.sample(rng_)]
                                  : pop_->users[to];
        draw = rng_.lognormal(std::log(8e4), 2.2);
    }

    // Heavy-tailed, but nobody sends more XRP than they own. The cap
    // is jittered so clamped payments don't pile on one exact amount.
    const double balance =
        engine_->ledger().account(request.sender)->balance.to_xrp();
    const double amount = std::min(draw, rng_.uniform(0.4, 0.8) * balance);
    if (amount < 1e-6) return false;
    request.deliver = Amount::xrp(amount);
    request.source_currency = Currency::xrp();

    out.result = engine_->execute(request);
    out.record = make_record(request, now);
    return out.result.success;
}

bool WorkloadGenerator::do_ripple_spin(util::RippleTime now, WorkloadOutcome& out) {
    PaymentRequest request;
    request.sender =
        pop_->users[rng_.uniform_u64(0, pop_->users.size() - 1)];
    request.destination = pop_->ripple_spin;
    // Gambling bets: small, round-ish XRP amounts.
    static constexpr double kBets[] = {1, 2, 5, 10, 20, 25, 50, 100};
    request.deliver = Amount::xrp(kBets[rng_.uniform_u64(0, 7)]);
    request.source_currency = Currency::xrp();

    out.result = engine_->execute(request);
    out.record = make_record(request, now);
    return out.result.success;
}

bool WorkloadGenerator::do_account_zero(util::RippleTime now, WorkloadOutcome& out) {
    const AccountID& spammer =
        pop_->zero_spammers[rng_.uniform_u64(0, pop_->zero_spammers.size() - 1)];
    PaymentRequest request;
    // "Repeatedly send back-and-forth to their accounts small amounts
    // of XRPs": the zero account's secret key is public.
    if (zero_spam_outbound_) {
        request.sender = spammer;
        request.destination = pop_->account_zero;
    } else {
        request.sender = pop_->account_zero;
        request.destination = spammer;
    }
    zero_spam_outbound_ = !zero_spam_outbound_;
    request.deliver = Amount::xrp(rng_.uniform(1.0, 10.0));
    request.source_currency = Currency::xrp();

    out.result = engine_->execute(request);
    out.record = make_record(request, now);
    return out.result.success;
}

bool WorkloadGenerator::do_mtl_spam(util::RippleTime now, WorkloadOutcome& out) {
    PaymentRequest request;
    request.sender = pop_->mtl_spammer;
    request.destination = pop_->mtl_target;

    // Exactly one payment in the whole history takes the 44-hop tour
    // (Fig 6(a)'s outlier bucket).
    if (!fortyfour_emitted_ && !pop_->fortyfour_chain.empty()) {
        fortyfour_emitted_ = true;
        request.deliver = Amount::iou(cur("MTL"), 1e9);
        request.source_currency = request.deliver.currency;
        const std::vector<std::vector<ledger::AccountID>> chain = {
            pop_->fortyfour_chain};
        out.result = engine_->execute_along(request, chain);
        out.record = make_record(request, now);
        return out.result.success;
    }
    // Machine-crafted round amounts around 1e9 (a multiple of 1e7:
    // spam scripts do not randomize decimals).
    const double amount =
        1e7 * std::floor(100.0 * rng_.lognormal(0.0, 0.25) + 0.5);
    request.deliver = Amount::iou(cur("MTL"), amount);
    request.source_currency = request.deliver.currency;

    out.result = engine_->execute_along(request, pop_->mtl_chains);
    out.record = make_record(request, now);
    return out.result.success;
}

bool WorkloadGenerator::do_cck_spam(util::RippleTime now, WorkloadOutcome& out) {
    PaymentRequest request;
    request.sender =
        pop_->cck_spammers[rng_.uniform_u64(0, pop_->cck_spammers.size() - 1)];
    request.destination =
        pop_->cck_targets[rng_.uniform_u64(0, pop_->cck_targets.size() - 1)];
    // Micro-transactions, "a survival function similar to the BTC".
    request.deliver =
        Amount::iou(cur("CCK"), 0.03 * rng_.lognormal(0.0, 1.6));
    request.source_currency = request.deliver.currency;

    // Explicitly railed through one of the two hyperactive accounts.
    const ledger::AccountID& rail =
        pop_->cck_rails[rng_.uniform_u64(0, pop_->cck_rails.size() - 1)];
    const std::vector<std::vector<ledger::AccountID>> paths = {
        {request.sender, rail, request.destination}};
    out.result = engine_->execute_along(request, paths);
    out.record = make_record(request, now);
    return out.result.success;
}

std::vector<double> WorkloadGenerator::user_capacities(std::size_t user_index) const {
    const UserProfile& profile = pop_->user_profiles[user_index];
    const ledger::LedgerState& state = engine_->ledger();
    std::vector<double> caps;
    caps.reserve(profile.deposit_gateways.size());
    for (const AccountID& gateway : profile.deposit_gateways) {
        const ledger::TrustLine* line =
            state.trustline(pop_->users[user_index], gateway, profile.home);
        caps.push_back(line == nullptr
                           ? 0.0
                           : line->capacity_from(pop_->users[user_index]).to_double());
    }
    return caps;
}

void WorkloadGenerator::refill_user(
    std::size_t user_index, util::RippleTime now,
    const std::function<void(const WorkloadOutcome&)>& sink) {
    const UserProfile& profile = pop_->user_profiles[user_index];
    const double target = config_.deposit_scale * profile.typical_amount;
    const std::vector<double> caps = user_capacities(user_index);
    for (std::size_t i = 0; i < profile.deposit_gateways.size(); ++i) {
        if (caps[i] > 0.3 * target) continue;
        PaymentRequest request;
        request.sender = profile.deposit_gateways[i];
        request.destination = pop_->users[user_index];
        // Jitter the top-up: simultaneous refills from two gateways
        // must not produce byte-identical amounts.
        const double top_up =
            (target - caps[i]) * rng_.uniform(0.92, 1.15);
        request.deliver = Amount::iou(profile.home, top_up);
        request.source_currency = profile.home;
        WorkloadOutcome out;
        out.category = PaymentCategory::kRefill;
        out.result = engine_->execute(request);
        out.record = make_record(request, now);
        stats_.count(PaymentCategory::kRefill, out.result.success);
        if (out.result.success) sink(out);
    }
}

bool WorkloadGenerator::do_iou_retail(
    util::RippleTime now, WorkloadOutcome& out,
    const std::function<void(const WorkloadOutcome&)>& sink) {
    const std::size_t user_index = rng_.uniform_u64(0, pop_->users.size() - 1);
    const UserProfile& profile = pop_->user_profiles[user_index];
    if (profile.favorite_merchants.empty() || profile.deposit_gateways.empty()) {
        return false;
    }

    const std::uint32_t merchant_index =
        profile.favorite_merchants[rng_.uniform_u64(
            0, profile.favorite_merchants.size() - 1)];

    // Parallel-path split target, drawn deliberately high: the routes
    // that actually exist between this user and merchant cap the
    // realized split, landing near the paper's Fig 6(b) organic shares
    // (16.3 / 10.4 / 9.3 / 28.9 over the non-spam 65%). Splits are
    // executed through the transaction's explicit Paths set (as
    // real Ripple clients do), spreading the amount evenly over the
    // user's gateways instead of draining lines one by one.
    static constexpr double kSplitWeights[] = {0.10, 0.17, 0.16, 0.57};
    double draw = rng_.uniform01();
    std::size_t split = 1;
    for (const double w : kSplitWeights) {
        if (draw < w) break;
        draw -= w;
        ++split;
    }
    split = std::min(split, std::size_t{4});

    const double amount = profile.typical_amount * rng_.lognormal(0.0, 1.0);
    if (amount <= 0.0) return false;

    PaymentRequest request;
    request.sender = pop_->users[user_index];
    request.destination = pop_->merchants[merchant_index];
    request.deliver = Amount::iou(profile.home, amount);
    request.source_currency = profile.home;

    if (split > 1) {
        // Build the transaction's explicit Paths set: first the
        // one-intermediate routes through gateways both parties use,
        // then longer routes bridged by liquidity nodes (user -> G_a ->
        // hub/maker -> G_b -> merchant). Shares drawn from the same
        // deposit line accumulate, so per-gateway spending capacity is
        // tracked.
        const ledger::LedgerState& state = engine_->ledger();
        const double share = amount / static_cast<double>(split);
        std::vector<std::vector<ledger::AccountID>> explicit_paths;
        std::unordered_map<ledger::AccountID, double> planned_outflow;

        auto user_line_allows = [&](const ledger::AccountID& gw) {
            const ledger::TrustLine* up =
                state.trustline(request.sender, gw, profile.home);
            if (up == nullptr) return false;
            return up->capacity_from(request.sender).to_double() >=
                   planned_outflow[gw] + share * 1.01;
        };

        for (const ledger::AccountID& gw : profile.deposit_gateways) {
            if (explicit_paths.size() == split) break;
            const ledger::TrustLine* down =
                state.trustline(gw, request.destination, profile.home);
            if (down == nullptr) continue;
            if (down->capacity_from(gw).to_double() < share * 1.01) continue;
            if (!user_line_allows(gw)) continue;
            planned_outflow[gw] += share;
            explicit_paths.push_back({request.sender, gw, request.destination});
        }

        // Two-intermediate routes through hubs the merchant trusts
        // directly: user -> G_a -> hub -> merchant.
        const MerchantProfile& merchant_profile =
            pop_->merchant_profiles[merchant_index];
        for (const ledger::AccountID& hub : merchant_profile.trusted_hubs) {
            if (explicit_paths.size() == split) break;
            const ledger::TrustLine* down =
                state.trustline(hub, request.destination, profile.home);
            if (down == nullptr ||
                down->capacity_from(hub).to_double() < share * 1.01) {
                continue;
            }
            for (const ledger::AccountID& ga : profile.deposit_gateways) {
                const ledger::TrustLine* in =
                    state.trustline(ga, hub, profile.home);
                if (in == nullptr ||
                    in->capacity_from(ga).to_double() < share * 1.01) {
                    continue;
                }
                if (!user_line_allows(ga)) continue;
                planned_outflow[ga] += share;
                explicit_paths.push_back(
                    {request.sender, ga, hub, request.destination});
                break;
            }
        }

        // Longer routes bridged by a liquidity node between two
        // gateways: hubs when their sparse coverage happens to fit,
        // otherwise Market Makers — "Market Makers, as any other user
        // in Ripple, often contribute as hops in single-currency
        // transaction paths" (paper, App. C). A random maker sample
        // keeps the search cheap and spreads the load.
        std::vector<ledger::AccountID> bridges = pop_->hubs;
        for (int i = 0; i < 8 && !pop_->market_makers.empty(); ++i) {
            bridges.push_back(pop_->market_makers[rng_.uniform_u64(
                0, pop_->market_makers.size() - 1)]);
        }

        for (const ledger::AccountID& ga : profile.deposit_gateways) {
            if (explicit_paths.size() == split) break;
            for (const ledger::AccountID& gb : merchant_profile.gateways) {
                if (explicit_paths.size() == split) break;
                if (ga == gb) continue;
                for (const ledger::AccountID& bridge : bridges) {
                    const ledger::TrustLine* in =
                        state.trustline(ga, bridge, profile.home);
                    const ledger::TrustLine* out_line =
                        state.trustline(bridge, gb, profile.home);
                    if (in == nullptr || out_line == nullptr) continue;
                    if (in->capacity_from(ga).to_double() < share * 1.01) continue;
                    if (out_line->capacity_from(bridge).to_double() <
                        share * 1.01) {
                        continue;
                    }
                    const ledger::TrustLine* down =
                        state.trustline(gb, request.destination, profile.home);
                    if (down == nullptr ||
                        down->capacity_from(gb).to_double() < share * 1.01) {
                        continue;
                    }
                    if (!user_line_allows(ga)) continue;
                    planned_outflow[ga] += share;
                    explicit_paths.push_back(
                        {request.sender, ga, bridge, gb, request.destination});
                    break;  // one bridged route per (ga, gb) pair
                }
            }
        }

        // Use whatever parallel liquidity exists (at least two routes,
        // at most the drawn target).
        if (explicit_paths.size() >= 2) {
            out.result = engine_->execute_along(request, explicit_paths);
            if (out.result.success) {
                out.record = make_record(request, now);
                return true;
            }
        }
        // Not enough parallel liquidity: fall through to the engine's
        // own path finding.
    }

    out.result = engine_->execute(request);
    if (!out.result.success) {
        // Liquidity hiccup: top up and retry once.
        refill_user(user_index, now, sink);
        out.result = engine_->execute(request);
    }
    out.record = make_record(request, now);
    return out.result.success;
}

bool WorkloadGenerator::do_cross_currency(util::RippleTime now,
                                          WorkloadOutcome& out) {
    const std::size_t user_index = rng_.uniform_u64(0, pop_->users.size() - 1);
    const UserProfile& profile = pop_->user_profiles[user_index];
    if (pop_->merchants.empty()) return false;

    const std::size_t merchant_index = merchant_sampler_.sample(rng_);
    const MerchantProfile& merchant = pop_->merchant_profiles[merchant_index];
    if (merchant.home == profile.home) return false;  // re-drawn next time

    PaymentRequest request;
    request.sender = pop_->users[user_index];
    request.destination = pop_->merchants[merchant_index];
    const double amount =
        (20.0 / usd_value(merchant.home)) * rng_.lognormal(0.0, 1.0);
    request.deliver = Amount::iou(merchant.home, amount);
    request.source_currency = profile.home;

    out.result = engine_->execute(request);
    out.record = make_record(request, now);
    return out.result.success;
}

}  // namespace xrpl::datagen
