// Generator configuration and the currency catalog.
//
// The catalog lists every currency of Fig 4, with payment-count
// weights shaped to the figure's log-scale profile and approximate
// 2014-era USD unit values (used for Market-Maker exchange rates,
// Table I strength fallback, and the Fig 7 balance aggregation).
//
// The generator substitutes for the paper's 500 GB ledger download:
// see DESIGN.md §2 for why the substitution preserves the study's
// behaviour. One deliberate liberty: simulated time is COMPRESSED —
// scaled histories keep the real per-ledger payment density (~1.44
// payments per 4.5 s close) and the real per-day volume (~25 K), so
// both the seconds-level fingerprint collisions and the hour/day
// coarsening behaviour match the paper; the calendar just spans
// fewer months.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ledger/types.hpp"
#include "util/ripple_time.hpp"

namespace xrpl::datagen {

struct GeneratorConfig {
    std::uint64_t seed = 42;

    // --- population --------------------------------------------------
    std::size_t num_users = 12'000;
    std::size_t num_gateways = 40;
    std::size_t num_market_makers = 120;
    std::size_t num_merchants = 600;
    std::size_t num_hubs = 50;  // influential non-gateway routing nodes

    // --- workload -----------------------------------------------------
    /// Total payments to generate (the paper's history has 23 M; the
    /// default keeps every rate intact at ~1/19 scale).
    std::uint64_t target_payments = 1'200'000;
    /// Mean payments per ledger page (23 M / 16 M pages ≈ 1.44).
    double payments_per_page = 1.44;
    double page_interval_seconds = 4.5;
    util::RippleTime start_time = util::from_calendar(2013, 1, 1);

    /// Sharding grain for parallel generation: each slice of this many
    /// payments runs on its own derived RNG stream against its own
    /// clone of the population snapshot. The slice count —
    /// ceil(target_payments / payments_per_slice) — depends only on
    /// the config, never on XRPL_THREADS, so output is bit-identical
    /// at any thread width (DESIGN.md §12).
    std::uint64_t payments_per_slice = 50'000;

    // --- mix (fractions of base per-page payments) ----------------------
    double xrp_organic_fraction = 0.500;
    double ripple_spin_fraction = 0.030;   // ~700K of 23M
    double account_zero_fraction = 0.043;  // ~1M of 23M
    double mtl_spam_fraction = 0.143;      // ~3.3M of 23M
    double cck_spam_fraction = 0.140;
    double iou_retail_fraction = 0.100;
    double cross_currency_fraction = 0.047;

    /// Probability that a page carries a "burst": 2-4 near-simultaneous
    /// payments from different senders to the same destination (bots,
    /// flash crowds). Bursts are what makes the amount feature earn its
    /// keep in Fig 3 — same page, same destination, only A differs.
    double burst_probability = 0.060;

    /// Share of organic XRP transfers that are whale-sized moves from
    /// Market-Maker float (the 1e8..1e10 tail of Fig 5's global curve).
    double xrp_whale_fraction = 0.080;

    // --- offers ---------------------------------------------------------
    /// Live offers per Market Maker (placements beyond this replace
    /// old ones; every placement still counts toward Fig-style
    /// concentration stats). ~90 M offers over 16 M pages real-scale.
    std::size_t live_offers_per_maker = 30;
    double offers_per_page = 5.6;  // 90M / 16M pages

    /// Standard per-user deposit size in units of the home currency's
    /// typical retail amount; parallel-path splitting is driven by
    /// payments exceeding one deposit.
    double deposit_scale = 40.0;
};

/// A catalog entry: currency, relative payment-count weight, and the
/// approximate USD value of one unit.
struct CurrencyInfo {
    ledger::Currency code;
    double weight = 0.0;
    double usd_value = 1.0;
};

/// All Fig 4 currencies (minus XRP/CCK/MTL, which the workload mix
/// handles explicitly), heaviest first.
[[nodiscard]] const std::vector<CurrencyInfo>& organic_currency_catalog();

/// USD value of one unit (1.0 for unknown codes).
[[nodiscard]] double usd_value(ledger::Currency currency) noexcept;

/// Convenience currency constants used across datagen and benches.
[[nodiscard]] ledger::Currency cur(const char* code) noexcept;

}  // namespace xrpl::datagen
