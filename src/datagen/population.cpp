#include "datagen/population.hpp"

#include <algorithm>
#include <cmath>

namespace xrpl::datagen {

namespace {

using ledger::AccountID;
using ledger::Currency;
using ledger::IouAmount;
using ledger::LedgerState;
using ledger::XrpAmount;

constexpr double kXrpPerUser = 1e6;
constexpr double kXrpPerMaker = 1e9;
constexpr double kXrpPerGateway = 1e6;
constexpr double kXrpPerHub = 1e6;

XrpAmount xrp(double value) noexcept { return XrpAmount::from_xrp(value); }

/// Create an account derived from a seed string and fund it from
/// ACCOUNT_ZERO (the paper's bootstrap: "all the funds in
/// ACCOUNT_ZERO are distributed to the other users").
AccountID spawn(LedgerState& ledger, const std::string& seed, double xrp_funding,
                bool is_gateway = false, bool allows_rippling = false) {
    const AccountID id = AccountID::from_seed(seed);
    ledger.create_account(id, XrpAmount{0}, is_gateway, allows_rippling);
    if (xrp_funding > 0.0) {
        const bool ok = ledger.xrp_payment(AccountID::zero(), id, xrp(xrp_funding),
                                           XrpAmount{0});
        (void)ok;
    }
    return id;
}

/// Give `holder` a deposit at `gateway`: establish the holder's trust
/// (if absent) and move `amount` of gateway IOUs onto the line.
void deposit(LedgerState& ledger, const AccountID& gateway, const AccountID& holder,
             Currency currency, double amount, double trust_limit) {
    ledger::TrustLine& line =
        ledger.set_trust(holder, gateway, currency,
                         IouAmount::from_double(trust_limit));
    const bool ok = line.transfer_from(gateway, IouAmount::from_double(amount));
    (void)ok;
}

/// A uniform random sample of k distinct indices from [0, n).
std::vector<std::size_t> sample_indices(util::Rng& rng, std::size_t n,
                                        std::size_t k) {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    k = std::min(k, n);
    for (std::size_t i = 0; i < k; ++i) {
        const std::size_t j = rng.uniform_u64(i, n - 1);
        std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
}

/// The gateway names the paper identifies in Fig 7(a), in order of
/// appearance.
const std::vector<std::pair<std::string, std::vector<const char*>>>&
named_gateways() {
    static const std::vector<std::pair<std::string, std::vector<const char*>>>
        gateways = {
            {"SnapSwap", {"USD", "BTC", "EUR"}},
            {"Ripple Fox", {"CNY"}},
            {"Bitstamp", {"USD", "BTC"}},
            {"RippleChina", {"CNY"}},
            {"Ripple Trade Japan", {"JPY"}},
            {"rippleCN", {"CNY"}},
            {"Justcoin", {"BTC", "USD"}},
            {"The Rock Trading", {"BTC", "EUR"}},
            {"TokyoJPY", {"JPY"}},
            {"Dividend Rippler", {"BTC", "USD"}},
            {"Ripple Exchange Tokyo", {"JPY"}},
            {"Digital Gate Japan", {"JPY"}},
            {"Payroutes", {"USD"}},
            {"Mr. Ripple", {"JPY", "BTC"}},
            {"WisePass", {"USD"}},
            {"Bitso", {"MXN", "BTC"}},
            {"DotPayco", {"USD"}},
            {"Coinex", {"NZD", "BTC"}},
            {"Ripple LatAm", {"USD", "BRL"}},
            {"Ripple Singapore", {"XAU", "USD"}},
        };
    return gateways;
}

}  // namespace

Population build_population(LedgerState& ledger, const GeneratorConfig& config,
                            const util::RngStream& stream) {
    Population pop;

    // One derived stream per section: the draw count of any section is
    // free to change without perturbing the others (the spam wiring is
    // draw-free and needs none).
    util::Rng issuer_rng = stream.derive("issuers").rng();
    util::Rng hub_rng = stream.derive("hubs").rng();
    util::Rng maker_rng = stream.derive("makers").rng();
    util::Rng merchant_rng = stream.derive("merchants").rng();
    util::Rng user_rng = stream.derive("users").rng();

    // --- genesis: ACCOUNT_ZERO owns every XRP ------------------------
    pop.account_zero = AccountID::zero();
    const double total_xrp =
        kXrpPerUser * static_cast<double>(config.num_users) +
        kXrpPerMaker * static_cast<double>(config.num_market_makers) +
        kXrpPerGateway * static_cast<double>(config.num_gateways) +
        kXrpPerHub * static_cast<double>(config.num_hubs) + 1e8;
    ledger.create_account(pop.account_zero, xrp(total_xrp));
    pop.labels[pop.account_zero] = "ACCOUNT_ZERO";

    // --- gateways ------------------------------------------------------
    const auto& named = named_gateways();
    for (std::size_t i = 0; i < config.num_gateways; ++i) {
        const bool has_name = i < named.size();
        const std::string label =
            has_name ? named[i].first : "gateway-" + std::to_string(i);
        const AccountID id = spawn(ledger, "gw:" + label, kXrpPerGateway, true);
        pop.gateways.push_back(id);
        pop.labels[id] = label;
        std::vector<Currency> currencies;
        if (has_name) {
            for (const char* code : named[i].second) {
                currencies.push_back(cur(code));
            }
        }
        pop.gateway_currencies.push_back(std::move(currencies));
    }

    // Every catalog currency needs a healthy issuer population (users
    // and merchants pick different subsets, which is what creates
    // multi-hop routes and the Market-Maker dependence of Table II).
    const auto& catalog = organic_currency_catalog();
    const std::size_t min_issuers = std::min<std::size_t>(12, config.num_gateways);
    for (const CurrencyInfo& info : catalog) {
        std::size_t issuers = 0;
        for (const auto& list : pop.gateway_currencies) {
            issuers += static_cast<std::size_t>(
                std::count(list.begin(), list.end(), info.code));
        }
        while (issuers < min_issuers) {
            const std::size_t g = static_cast<std::size_t>(
                issuer_rng.uniform_u64(0, config.num_gateways - 1));
            auto& list = pop.gateway_currencies[g];
            if (std::find(list.begin(), list.end(), info.code) == list.end()) {
                list.push_back(info.code);
                ++issuers;
            }
        }
    }
    for (std::size_t g = 0; g < pop.gateways.size(); ++g) {
        for (const Currency c : pop.gateway_currencies[g]) {
            pop.issuers_by_currency[c].push_back(pop.gateways[g]);
        }
    }

    // --- hubs: the influential non-gateway routing nodes ---------------
    // Each hub holds deposits at a modest sample of gateways; a hub
    // bridges a gateway pair only when its sample covers both, so
    // trust-only connectivity between disjoint gateway sets is real
    // but scarce (that scarcity is what Table II measures once the
    // Market Makers are gone).
    // Hub coverage is deliberately sparse (each hub holds positions at
    // ~3% of gateways): a specific gateway pair is hub-bridgeable only
    // ~15-20% of the time, so trust-only connectivity between disjoint
    // gateway sets exists but is scarce — scarcity that Table II
    // exposes the moment the Market Makers (with their near-total
    // coverage) are removed.
    for (std::size_t i = 0; i < config.num_hubs; ++i) {
        const AccountID id =
            spawn(ledger, "hub:" + std::to_string(i), kXrpPerHub, false, true);
        pop.hubs.push_back(id);
        for (std::size_t g = 0; g < pop.gateways.size(); ++g) {
            if (!hub_rng.bernoulli(0.03)) continue;
            for (const Currency c : pop.gateway_currencies[g]) {
                const double unit = usd_value(c);
                deposit(ledger, pop.gateways[g], id, c, 1e5 / unit,
                        1e12 / unit);
            }
        }
    }

    // --- Market Makers ---------------------------------------------------
    for (std::size_t i = 0; i < config.num_market_makers; ++i) {
        const AccountID id =
            spawn(ledger, "mm:" + std::to_string(i), kXrpPerMaker, false, true);
        pop.market_makers.push_back(id);
        for (std::size_t g = 0; g < pop.gateways.size(); ++g) {
            if (!maker_rng.bernoulli(i < 10 ? 0.8 : 0.3)) continue;
            for (const Currency c : pop.gateway_currencies[g]) {
                const double unit = usd_value(c);
                deposit(ledger, pop.gateways[g], id, c, 5e6 / unit, 1e12 / unit);
            }
        }
    }

    // --- merchants -------------------------------------------------------
    // Weighted home currencies, but guarantee coverage of the whole
    // catalog so every currency has someone to pay.
    std::vector<double> weights;
    weights.reserve(catalog.size());
    for (const CurrencyInfo& info : catalog) weights.push_back(info.weight);
    const util::CategoricalSampler currency_sampler(weights);

    for (std::size_t i = 0; i < config.num_merchants; ++i) {
        const Currency home =
            i < catalog.size()
                ? catalog[i].code
                : catalog[currency_sampler.sample(merchant_rng)].code;
        const AccountID id =
            spawn(ledger, "merchant:" + std::to_string(i), 100.0);
        pop.merchants.push_back(id);
        MerchantProfile profile;
        profile.home = home;
        const auto& issuers = pop.issuers_by_currency[home];
        // Trust a random 3-5 of the home currency's issuers with
        // generous limits (random, so user/merchant gateway sets only
        // partially overlap and longer hub routes appear).
        const std::size_t count = std::min<std::size_t>(
            issuers.size(),
            3 + static_cast<std::size_t>(merchant_rng.uniform_u64(0, 2)));
        for (const std::size_t k :
             sample_indices(merchant_rng, issuers.size(), count)) {
            const AccountID& gw = issuers[k];
            ledger.set_trust(id, gw, home,
                             IouAmount::from_double(1e13 / usd_value(home)));
            profile.gateways.push_back(gw);
        }
        // A third of merchants additionally trust a couple of hubs
        // directly (well-known liquidity providers), which is where
        // the two-intermediate routes of Fig 6(a) come from.
        if (!pop.hubs.empty() && merchant_rng.bernoulli(0.35)) {
            const std::size_t hub_count =
                1 + static_cast<std::size_t>(merchant_rng.uniform_u64(0, 1));
            for (const std::size_t k :
                 sample_indices(merchant_rng, pop.hubs.size(), hub_count)) {
                const AccountID& hub = pop.hubs[k];
                ledger.set_trust(id, hub, home,
                                 IouAmount::from_double(1e12 / usd_value(home)));
                profile.trusted_hubs.push_back(hub);
            }
        }
        pop.merchant_profiles.push_back(std::move(profile));
    }

    // Merchants per currency, for the users' favorite lists.
    std::unordered_map<Currency, std::vector<std::uint32_t>> merchants_by_currency;
    for (std::uint32_t i = 0; i < pop.merchants.size(); ++i) {
        merchants_by_currency[pop.merchant_profiles[i].home].push_back(i);
    }

    // --- users ------------------------------------------------------------
    for (std::size_t i = 0; i < config.num_users; ++i) {
        const Currency home = catalog[currency_sampler.sample(user_rng)].code;
        const AccountID id = spawn(ledger, "user:" + std::to_string(i), kXrpPerUser);
        pop.users.push_back(id);

        UserProfile profile;
        profile.home = home;
        const double unit = usd_value(home);
        profile.typical_amount = (20.0 / unit) * user_rng.lognormal(0.0, 0.8);

        const auto& issuers = pop.issuers_by_currency[home];
        const std::size_t deposit_count = std::min<std::size_t>(issuers.size(), 4);
        for (const std::size_t k :
             sample_indices(user_rng, issuers.size(), deposit_count)) {
            deposit(ledger, issuers[k], id, home,
                    config.deposit_scale * profile.typical_amount,
                    1e12 / unit);
            profile.deposit_gateways.push_back(issuers[k]);
        }

        const auto& local_merchants = merchants_by_currency[home];
        if (!local_merchants.empty()) {
            const std::size_t favorites =
                1 + static_cast<std::size_t>(user_rng.uniform_u64(0, 5));
            for (std::size_t k = 0; k < favorites; ++k) {
                profile.favorite_merchants.push_back(local_merchants[
                    user_rng.uniform_u64(0, local_merchants.size() - 1)]);
            }
        }
        pop.user_profiles.push_back(std::move(profile));
    }

    // --- spam infrastructure ------------------------------------------------
    pop.ripple_spin = spawn(ledger, "spam:ripple-spin", 1000.0);
    pop.labels[pop.ripple_spin] = "~Ripple Spin";

    for (int i = 0; i < 3; ++i) {
        pop.zero_spammers.push_back(
            spawn(ledger, "spam:zero-" + std::to_string(i), 1e6));
    }

    // The MTL attack: one spammer issuing its own worthless token,
    // six hand-built chains of eight intermediates each.
    pop.mtl_spammer = spawn(ledger, "spam:mtl-spammer", 1e6);
    pop.labels[pop.mtl_spammer] = "MTL spammer";
    pop.mtl_target = spawn(ledger, "spam:mtl-target", 1000.0);
    const Currency mtl = cur("MTL");
    for (int chain = 0; chain < 6; ++chain) {
        std::vector<AccountID> nodes;
        nodes.push_back(pop.mtl_spammer);
        for (int hop = 0; hop < 8; ++hop) {
            nodes.push_back(spawn(
                ledger,
                "spam:mtl-" + std::to_string(chain) + "-" + std::to_string(hop),
                100.0, false, true));
        }
        nodes.push_back(pop.mtl_target);
        // Wire capacity along the chain: each node trusts its
        // predecessor for an effectively unbounded MTL amount (the
        // paper observes the attacker piling up ~1e22 of MTL debt).
        for (std::size_t k = 0; k + 1 < nodes.size(); ++k) {
            ledger.set_trust(nodes[k + 1], nodes[k], mtl,
                             IouAmount::from_double(1e22));
        }
        pop.mtl_chains.push_back(std::move(nodes));
    }

    // The 44-hop curiosity: Fig 6(a) shows a single bucket at 44
    // intermediate hops — someone chained 44 of their own accounts
    // once. Wire it in the spammer's token.
    {
        std::vector<AccountID> nodes;
        nodes.push_back(pop.mtl_spammer);
        for (int hop = 0; hop < 44; ++hop) {
            nodes.push_back(spawn(ledger, "spam:44-" + std::to_string(hop),
                                  100.0, false, true));
        }
        nodes.push_back(pop.mtl_target);
        for (std::size_t k = 0; k + 1 < nodes.size(); ++k) {
            ledger.set_trust(nodes[k + 1], nodes[k], mtl,
                             IouAmount::from_double(1e22));
        }
        pop.fortyfour_chain = std::move(nodes);
    }

    // CCK: a handful of accounts exchanging micro-amounts of a mystery
    // token, every payment railing through the same two hyperactive
    // non-gateway accounts — our stand-ins for the paper's rp2PaY /
    // r42Ccn, the two most frequent intermediate hops of Fig 7(a),
    // both activated by the same third account and "almost an order of
    // magnitude" above every gateway.
    pop.cck_issuer = spawn(ledger, "spam:cck-rail-0", 1e6, false, true);
    const AccountID rail2 = spawn(ledger, "spam:cck-rail-1", 1e6, false, true);
    pop.cck_rails = {pop.cck_issuer, rail2};
    pop.labels[pop.cck_issuer] = "rp2PaY...X1mEx7";
    pop.labels[rail2] = "r42Ccn...Xqm5M3";
    const Currency cck = cur("CCK");
    // Both rails issue CCK; every spammer holds inventory at both and
    // every target accepts both, so each payment crosses exactly one
    // rail (one intermediate hop, like the bulk of Fig 6(a)).
    for (int i = 0; i < 5; ++i) {
        const AccountID id = spawn(ledger, "spam:cck-s" + std::to_string(i), 1e4);
        for (const AccountID& rail : pop.cck_rails) {
            deposit(ledger, rail, id, cck, 1e9, 1e12);
        }
        pop.cck_spammers.push_back(id);
    }
    for (int i = 0; i < 3; ++i) {
        const AccountID id = spawn(ledger, "spam:cck-t" + std::to_string(i), 100.0);
        for (const AccountID& rail : pop.cck_rails) {
            ledger.set_trust(id, rail, cck, IouAmount::from_double(1e12));
        }
        pop.cck_targets.push_back(id);
    }

    return pop;
}

}  // namespace xrpl::datagen
