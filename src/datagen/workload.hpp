// Workload generator: the payment stream of the paper's 2013-2015
// history, one ledger page at a time.
//
// Every page draws Poisson(payments_per_page) payments from the mix
// of GeneratorConfig: organic XRP transfers, ~Ripple Spin bets,
// ACCOUNT_ZERO ping-pong, the MTL 8-hop/6-path spam, CCK
// micro-transactions, same-currency retail (with deposit refills and
// deliberate parallel-path splits), and cross-currency purchases
// bridged by Market-Maker offers. Market Makers churn offers each
// page with a zipf-skewed placement distribution, reproducing the
// "50% of 90M offers from 10 makers" concentration.
//
// All payments execute through the real PaymentEngine, so trust-line
// balances, order books, and XRP balances evolve exactly as the
// ledger's would.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "datagen/config.hpp"
#include "datagen/population.hpp"
#include "paths/payment_engine.hpp"
#include "util/rng.hpp"

namespace xrpl::datagen {

enum class PaymentCategory : std::uint8_t {
    kXrpOrganic,
    kRippleSpin,
    kAccountZero,
    kMtlSpam,
    kCckSpam,
    kIouRetail,
    kCrossCurrency,
    kRefill,
};

[[nodiscard]] const char* category_name(PaymentCategory c) noexcept;

/// One successfully executed payment.
struct WorkloadOutcome {
    PaymentCategory category = PaymentCategory::kXrpOrganic;
    ledger::TxRecord record;
    ledger::TxResult result;
};

/// Failure tallies per category (engine refusals, liquidity gaps).
struct WorkloadStats {
    std::array<std::uint64_t, 8> attempts{};
    std::array<std::uint64_t, 8> failures{};

    void count(PaymentCategory c, bool success) noexcept {
        ++attempts[static_cast<std::size_t>(c)];
        if (!success) ++failures[static_cast<std::size_t>(c)];
    }
};

class WorkloadGenerator {
public:
    /// `stream` is the generator's private RNG stream (it owns the
    /// materialized generator, so sibling draw counts cannot shift its
    /// sequence). `emit_fortyfour` gates the history's single 44-hop
    /// payment: in sharded generation only slice 0 may emit it.
    WorkloadGenerator(const GeneratorConfig& config, const Population& population,
                      paths::PaymentEngine& engine,
                      const util::RngStream& stream, bool emit_fortyfour = true);

    /// Generate and execute one page worth of payments; every
    /// successful payment is passed to `sink`.
    void emit_page(util::RippleTime close_time,
                   const std::function<void(const WorkloadOutcome&)>& sink);

    [[nodiscard]] const WorkloadStats& stats() const noexcept { return stats_; }

    /// Lifetime offer placements per Market Maker (index-aligned with
    /// Population::market_makers) — drives the concentration stat.
    [[nodiscard]] const std::vector<std::uint64_t>& offer_placements() const noexcept {
        return offer_placements_;
    }
    [[nodiscard]] std::uint64_t offers_placed_total() const noexcept {
        return offers_placed_total_;
    }

private:
    void place_offers();
    void attempt(PaymentCategory category, util::RippleTime now,
                 const std::function<void(const WorkloadOutcome&)>& sink);

    /// A burst: several different senders pay the same destination
    /// within one ledger close (bot traffic / flash crowds).
    void emit_burst(util::RippleTime now,
                    const std::function<void(const WorkloadOutcome&)>& sink);

    bool do_xrp_organic(util::RippleTime now, WorkloadOutcome& out);
    bool do_ripple_spin(util::RippleTime now, WorkloadOutcome& out);
    bool do_account_zero(util::RippleTime now, WorkloadOutcome& out);
    bool do_mtl_spam(util::RippleTime now, WorkloadOutcome& out);
    bool do_cck_spam(util::RippleTime now, WorkloadOutcome& out);
    bool do_iou_retail(util::RippleTime now, WorkloadOutcome& out,
                       const std::function<void(const WorkloadOutcome&)>& sink);
    bool do_cross_currency(util::RippleTime now, WorkloadOutcome& out);

    /// Top up a user's gateway deposits; refills are real payments and
    /// go to `sink`.
    void refill_user(std::size_t user_index, util::RippleTime now,
                     const std::function<void(const WorkloadOutcome&)>& sink);

    /// Spendable capacity of one user towards each deposit gateway.
    [[nodiscard]] std::vector<double> user_capacities(std::size_t user_index) const;

    GeneratorConfig config_;  // stored by value: callers may pass temporaries
    const Population* pop_;
    paths::PaymentEngine* engine_;
    util::Rng rng_;
    WorkloadStats stats_;

    util::CategoricalSampler category_sampler_;
    util::ZipfSampler maker_sampler_;
    util::ZipfSampler merchant_sampler_;
    util::CategoricalSampler currency_sampler_;

    // Per-maker live offers (for the churn cap) and currencies the
    // maker can actually deliver.
    struct LiveOffer {
        ledger::BookKey key;
        std::uint64_t id;
    };
    std::vector<std::deque<LiveOffer>> live_offers_;
    std::vector<std::vector<ledger::Currency>> maker_currencies_;
    /// User indices grouped by home currency (burst sender pools).
    std::unordered_map<ledger::Currency, std::vector<std::uint32_t>>
        users_by_currency_;
    std::vector<std::uint64_t> offer_placements_;
    std::uint64_t offers_placed_total_ = 0;

    bool zero_spam_outbound_ = true;  // ping-pong direction
    bool fortyfour_emitted_;          // the single 44-hop payment
};

}  // namespace xrpl::datagen
