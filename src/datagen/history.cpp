#include "datagen/history.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "exec/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/phase.hpp"
#include "util/contract.hpp"

namespace xrpl::datagen {

using ledger::Amount;
using ledger::Currency;
using paths::PaymentRequest;

namespace {

/// Everything one generation slice produces. Records carry SLICE-LOCAL
/// close times (epoch 0); the merge rebases them onto the global
/// timeline. Aggregates are pre-reduced per slice so the merge is a
/// cheap order-independent sum — only the record stream and the
/// per-currency amount samples are order-sensitive, and those merge
/// strictly in slice order.
struct SliceResult {
    std::vector<ledger::TxRecord> records;
    std::array<std::uint64_t, 8> category_counts{};
    std::unordered_map<Currency, std::uint64_t> currency_counts;
    std::unordered_map<Currency, std::vector<float>> amounts_by_currency;
    std::vector<std::uint64_t> hop_histogram;
    std::vector<std::uint64_t> parallel_histogram;
    std::unordered_map<ledger::AccountID, std::uint64_t> intermediary_counts;
    std::uint64_t multi_hop_payments = 0;
    std::uint64_t pages = 0;
    /// Slice-local close time of the last page (== slice duration).
    std::int64_t duration_seconds = 0;
    WorkloadStats stats;
    std::vector<std::uint64_t> offer_placements;
    std::uint64_t offers_placed_total = 0;
    /// Populated only for the last slice (adopted as history.ledger);
    /// earlier slices drop their clone on return to bound memory.
    ledger::LedgerState final_ledger;
};

void add_histogram(std::vector<std::uint64_t>& into,
                   const std::vector<std::uint64_t>& from) {
    if (into.size() < from.size()) into.resize(from.size(), 0);
    for (std::size_t i = 0; i < from.size(); ++i) into[i] += from[i];
}

/// Run one slice against a private clone of the population snapshot,
/// on streams derived from root/"slice"/index — a pure function of
/// (config, base snapshot, slice index), whatever thread runs it.
SliceResult run_slice(const GeneratorConfig& config,
                      const Population& population,
                      const ledger::LedgerState& base,
                      const util::RngStream& root, std::size_t slice,
                      std::uint64_t slice_target, bool keep_ledger) {
    // ScopedTimer, not Phase: slices run on pool workers, where only
    // order-free histograms keep the snapshot deterministic.
    static obs::Histogram& slice_ns = obs::histogram("datagen.slice_ns");
    const obs::ScopedTimer timer(slice_ns);
    SliceResult out;
    ledger::LedgerState ledger = base.clone();
    paths::PaymentEngine engine(ledger);
    const util::RngStream slice_stream =
        root.derive("slice", static_cast<std::uint64_t>(slice));
    // Only slice 0 may emit the history's single 44-hop payment.
    WorkloadGenerator workload(config, population, engine,
                               slice_stream.derive("workload"),
                               /*emit_fortyfour=*/slice == 0);
    util::Rng clock_rng = slice_stream.derive("clock").rng();

    auto sink = [&](const WorkloadOutcome& outcome) {
        out.records.push_back(outcome.record);
        ++out.category_counts[static_cast<std::size_t>(outcome.category)];

        ++out.currency_counts[outcome.record.currency];
        out.amounts_by_currency[outcome.record.currency].push_back(
            static_cast<float>(outcome.record.amount.to_double()));

        const ledger::TxResult& result = outcome.result;
        if (result.intermediate_hops >= 1) {
            ++out.multi_hop_payments;
            if (out.hop_histogram.size() <= result.intermediate_hops) {
                out.hop_histogram.resize(result.intermediate_hops + 1, 0);
            }
            ++out.hop_histogram[result.intermediate_hops];
            if (out.parallel_histogram.size() <= result.parallel_paths) {
                out.parallel_histogram.resize(result.parallel_paths + 1, 0);
            }
            ++out.parallel_histogram[result.parallel_paths];
            // Fig 7 counts intermediaries over real traffic; the MTL
            // chains are the attacker's own sybil accounts, which the
            // paper's top-50 visibly excludes (48 equal-height sybils
            // would otherwise fill the whole plot).
            if (outcome.category != PaymentCategory::kMtlSpam) {
                for (const ledger::AccountID& hop : result.intermediaries) {
                    ++out.intermediary_counts[hop];
                }
            }
        }
    };

    util::RippleTime clock{};  // slice-local epoch; rebased at merge
    while (out.records.size() < slice_target) {
        clock.seconds += static_cast<std::int64_t>(
            config.page_interval_seconds + clock_rng.uniform(-0.5, 1.5));
        workload.emit_page(clock, sink);
        ++out.pages;
    }
    out.duration_seconds = clock.seconds;

    out.stats = workload.stats();
    out.offer_placements = workload.offer_placements();
    out.offers_placed_total = workload.offers_placed_total();
    if (keep_ledger) out.final_ledger = std::move(ledger);
    return out;
}

}  // namespace

PopulationSnapshot generate_population_only(const GeneratorConfig& config) {
    PopulationSnapshot snapshot;
    const util::RngStream root(config.seed);
    snapshot.population = build_population(snapshot.ledger, config,
                                           root.derive("population"));
    return snapshot;
}

GeneratedHistory generate_history(const GeneratorConfig& config) {
    const obs::Phase phase("datagen.generate");
    GeneratedHistory history;
    const util::RngStream root(config.seed);

    {
        // Through the shared stage so a cached-payments consumer that
        // rebuilds only the population gets the identical snapshot.
        const obs::Phase stage("population");
        PopulationSnapshot snapshot = generate_population_only(config);
        history.ledger = std::move(snapshot.ledger);
        history.population = std::move(snapshot.population);
    }

    // --- stage 1: slice fan-out ---------------------------------------
    // The slice count is a pure function of the config — NEVER of
    // XRPL_THREADS — and every slice owns derived streams plus a
    // private clone of the snapshot, so each SliceResult is
    // bit-identical whatever thread (or order) computed it.
    const std::uint64_t per_slice = std::max<std::uint64_t>(
        std::uint64_t{1}, config.payments_per_slice);
    const std::size_t num_slices = static_cast<std::size_t>(
        (config.target_payments + per_slice - 1) / per_slice);

    std::vector<SliceResult> slices(num_slices);
    {
        const obs::Phase stage("slices");
        exec::parallel_for(num_slices, 1,
                           [&](std::size_t begin, std::size_t end) {
            for (std::size_t s = begin; s < end; ++s) {
                const std::uint64_t slice_target =
                    s + 1 == num_slices
                        ? config.target_payments -
                              per_slice * static_cast<std::uint64_t>(s)
                        : per_slice;
                slices[s] =
                    run_slice(config, history.population, history.ledger, root,
                              s, slice_target, s + 1 == num_slices);
            }
        });
    }

    // --- stage 2: ordered merge ---------------------------------------
    // Strictly in slice order: records are rebased onto the global
    // timeline and interned into PaymentColumns sequentially (so the
    // dictionary keeps first-seen order), amount samples append, and
    // the pre-reduced aggregates sum.
    const obs::Phase merge_stage("merge");
    static obs::Counter& slices_done = obs::counter("datagen.slices");
    static obs::Counter& payments = obs::counter("datagen.payments");
    static obs::Counter& pages = obs::counter("datagen.pages");
    history.payments.reserve(config.target_payments);
    history.first_close = config.start_time;
    std::int64_t offset = config.start_time.seconds;
    for (SliceResult& slice : slices) {
        slices_done.add();
        payments.add(slice.records.size());
        pages.add(slice.pages);
        for (ledger::TxRecord record : slice.records) {
            record.time.seconds += offset;
            history.payments.push_back(record);
        }
        offset += slice.duration_seconds;

        for (std::size_t c = 0; c < slice.category_counts.size(); ++c) {
            history.category_counts[c] += slice.category_counts[c];
        }
        for (const auto& [currency, count] : slice.currency_counts) {
            history.currency_counts[currency] += count;
        }
        for (auto& [currency, amounts] : slice.amounts_by_currency) {
            auto& into = history.amounts_by_currency[currency];
            into.insert(into.end(), amounts.begin(), amounts.end());
        }
        add_histogram(history.hop_histogram, slice.hop_histogram);
        add_histogram(history.parallel_histogram, slice.parallel_histogram);
        for (const auto& [hop, count] : slice.intermediary_counts) {
            history.intermediary_counts[hop] += count;
        }
        history.multi_hop_payments += slice.multi_hop_payments;
        history.pages += slice.pages;

        for (std::size_t c = 0; c < slice.stats.attempts.size(); ++c) {
            history.workload_stats.attempts[c] += slice.stats.attempts[c];
            history.workload_stats.failures[c] += slice.stats.failures[c];
        }
        if (history.offer_placements.size() < slice.offer_placements.size()) {
            history.offer_placements.resize(slice.offer_placements.size(), 0);
        }
        for (std::size_t m = 0; m < slice.offer_placements.size(); ++m) {
            history.offer_placements[m] += slice.offer_placements[m];
        }
        history.offers_placed_total += slice.offers_placed_total;
    }
    history.last_close = util::RippleTime{offset};
    history.ledger = std::move(slices.back().final_ledger);

    XRPL_INVARIANT(history.payments.size() >= config.target_payments,
                   "generation must run until the payment target is met");
    XRPL_INVARIANT(history.first_close.seconds <= history.last_close.seconds,
                   "page close times must advance monotonically");
#if XRPL_CONTRACTS_ENABLED
    // Every payment lands in exactly one §IV traffic category, so the
    // category counts must re-sum to the history size (the per-figure
    // benches normalize by these counts).
    std::size_t categorized = 0;
    for (const std::uint64_t count : history.category_counts) {
        categorized += count;
    }
    XRPL_INVARIANT(categorized == history.payments.size(),
                   "traffic categories must partition the payment history");
#endif
    return history;
}

namespace {

/// Shared candidate machinery for the replay workload builders.
class ReplayCandidateSource {
public:
    ReplayCandidateSource(const Population& population, util::Rng& rng)
        : population_(&population),
          rng_(&rng),
          merchant_sampler_(
              std::max<std::size_t>(population.merchants.size(), 1), 1.0) {
        for (std::uint32_t i = 0; i < population.merchants.size(); ++i) {
            by_currency_[population.merchant_profiles[i].home].push_back(i);
        }
    }

    /// One candidate of the requested kind, or nullopt if the draw was
    /// unusable (caller just draws again).
    std::optional<PaymentRequest> next(bool cross) {
        const Population& population = *population_;
        util::Rng& rng = *rng_;
        const std::size_t user_index =
            rng.uniform_u64(0, population.users.size() - 1);
        const UserProfile& profile = population.user_profiles[user_index];
        PaymentRequest request;
        request.sender = population.users[user_index];

        if (cross) {
            const std::size_t merchant_index = merchant_sampler_.sample(rng);
            const MerchantProfile& merchant =
                population.merchant_profiles[merchant_index];
            if (merchant.home == profile.home) return std::nullopt;
            request.destination = population.merchants[merchant_index];
            const double amount =
                (20.0 / usd_value(merchant.home)) * rng.lognormal(0.0, 1.0);
            request.deliver = Amount::iou(merchant.home, amount);
            request.source_currency = profile.home;
            return request;
        }

        const auto it = by_currency_.find(profile.home);
        if (it == by_currency_.end() || it->second.empty()) return std::nullopt;
        std::uint32_t merchant_index =
            it->second[rng.uniform_u64(0, it->second.size() - 1)];
        // The paper's Feb-Aug 2015 slice depends heavily on Market
        // Makers even for single-currency traffic (Table II: only 36%
        // deliver without them). Most replayed payments therefore
        // target merchants whose gateway set is disjoint from the
        // sender's deposits — reachable only through maker liquidity
        // or the occasional hub bridge.
        if (rng.bernoulli(0.70)) {
            for (int attempt = 0; attempt < 24; ++attempt) {
                const std::uint32_t candidate =
                    it->second[rng.uniform_u64(0, it->second.size() - 1)];
                const auto& gws =
                    population.merchant_profiles[candidate].gateways;
                bool disjoint = true;
                for (const auto& user_gw : profile.deposit_gateways) {
                    if (std::find(gws.begin(), gws.end(), user_gw) !=
                        gws.end()) {
                        disjoint = false;
                        break;
                    }
                }
                if (disjoint) {
                    merchant_index = candidate;
                    break;
                }
            }
        }
        request.destination = population.merchants[merchant_index];
        request.deliver = Amount::iou(
            profile.home, profile.typical_amount * rng.lognormal(0.0, 1.0));
        request.source_currency = profile.home;
        return request;
    }

private:
    const Population* population_;
    util::Rng* rng_;
    util::ZipfSampler merchant_sampler_;
    std::unordered_map<Currency, std::vector<std::uint32_t>> by_currency_;
};

}  // namespace

std::vector<PaymentRequest> make_replay_workload(const Population& population,
                                                 std::size_t count,
                                                 double cross_fraction,
                                                 util::Rng& rng) {
    ReplayCandidateSource source(population, rng);
    std::vector<PaymentRequest> requests;
    requests.reserve(count);
    while (requests.size() < count) {
        auto candidate = source.next(rng.bernoulli(cross_fraction));
        if (candidate) requests.push_back(std::move(*candidate));
    }
    return requests;
}

std::vector<PaymentRequest> make_delivered_replay_workload(
    const Population& population, const ledger::LedgerState& snapshot,
    std::size_t count, double cross_fraction, util::Rng& rng) {
    ReplayCandidateSource source(population, rng);
    ledger::LedgerState scratch = snapshot.clone();
    paths::PaymentEngine engine(scratch);

    const auto cross_target =
        static_cast<std::size_t>(cross_fraction * static_cast<double>(count));
    std::size_t cross_kept = 0;
    std::size_t single_kept = 0;

    std::vector<PaymentRequest> requests;
    requests.reserve(count);
    // Bounded attempts so a mis-tuned topology cannot loop forever.
    for (std::size_t attempt = 0; attempt < count * 20; ++attempt) {
        if (requests.size() >= count) break;
        const bool want_cross = cross_kept < cross_target &&
                                (single_kept >= count - cross_target ||
                                 rng.bernoulli(cross_fraction));
        auto candidate = source.next(want_cross);
        if (!candidate) continue;
        if (!engine.execute(*candidate).success) continue;
        if (candidate->cross_currency()) {
            if (cross_kept >= cross_target) continue;
            ++cross_kept;
        } else {
            if (single_kept >= count - cross_target) continue;
            ++single_kept;
        }
        requests.push_back(std::move(*candidate));
    }
    return requests;
}

}  // namespace xrpl::datagen
