#include "datagen/history.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "util/contract.hpp"

namespace xrpl::datagen {

using ledger::Amount;
using ledger::Currency;
using paths::PaymentRequest;

GeneratedHistory generate_history(const GeneratorConfig& config) {
    GeneratedHistory history;
    util::Rng rng(config.seed);

    history.population = build_population(history.ledger, config, rng);
    paths::PaymentEngine engine(history.ledger);
    WorkloadGenerator workload(config, history.population, engine, rng);

    history.payments.reserve(config.target_payments);
    history.first_close = config.start_time;

    auto sink = [&](const WorkloadOutcome& outcome) {
        history.payments.push_back(outcome.record);
        ++history.category_counts[static_cast<std::size_t>(outcome.category)];

        ++history.currency_counts[outcome.record.currency];
        history.amounts_by_currency[outcome.record.currency].push_back(
            static_cast<float>(outcome.record.amount.to_double()));

        const ledger::TxResult& result = outcome.result;
        if (result.intermediate_hops >= 1) {
            ++history.multi_hop_payments;
            if (history.hop_histogram.size() <= result.intermediate_hops) {
                history.hop_histogram.resize(result.intermediate_hops + 1, 0);
            }
            ++history.hop_histogram[result.intermediate_hops];
            if (history.parallel_histogram.size() <= result.parallel_paths) {
                history.parallel_histogram.resize(result.parallel_paths + 1, 0);
            }
            ++history.parallel_histogram[result.parallel_paths];
            // Fig 7 counts intermediaries over real traffic; the MTL
            // chains are the attacker's own sybil accounts, which the
            // paper's top-50 visibly excludes (48 equal-height sybils
            // would otherwise fill the whole plot).
            if (outcome.category != PaymentCategory::kMtlSpam) {
                for (const ledger::AccountID& hop : result.intermediaries) {
                    ++history.intermediary_counts[hop];
                }
            }
        }
    };

    util::RippleTime clock = config.start_time;
    while (history.payments.size() < config.target_payments) {
        clock.seconds += static_cast<std::int64_t>(
            config.page_interval_seconds + rng.uniform(-0.5, 1.5));
        workload.emit_page(clock, sink);
        ++history.pages;
    }
    history.last_close = clock;

    XRPL_INVARIANT(history.payments.size() >= config.target_payments,
                   "generation must run until the payment target is met");
    XRPL_INVARIANT(history.first_close.seconds <= history.last_close.seconds,
                   "page close times must advance monotonically");
#if XRPL_CONTRACTS_ENABLED
    // Every payment lands in exactly one §IV traffic category, so the
    // category counts must re-sum to the history size (the per-figure
    // benches normalize by these counts).
    std::size_t categorized = 0;
    for (const std::uint64_t count : history.category_counts) {
        categorized += count;
    }
    XRPL_INVARIANT(categorized == history.payments.size(),
                   "traffic categories must partition the payment history");
#endif

    history.workload_stats = workload.stats();
    history.offer_placements = workload.offer_placements();
    history.offers_placed_total = workload.offers_placed_total();
    return history;
}

namespace {

/// Shared candidate machinery for the replay workload builders.
class ReplayCandidateSource {
public:
    ReplayCandidateSource(const Population& population, util::Rng& rng)
        : population_(&population),
          rng_(&rng),
          merchant_sampler_(
              std::max<std::size_t>(population.merchants.size(), 1), 1.0) {
        for (std::uint32_t i = 0; i < population.merchants.size(); ++i) {
            by_currency_[population.merchant_profiles[i].home].push_back(i);
        }
    }

    /// One candidate of the requested kind, or nullopt if the draw was
    /// unusable (caller just draws again).
    std::optional<PaymentRequest> next(bool cross) {
        const Population& population = *population_;
        util::Rng& rng = *rng_;
        const std::size_t user_index =
            rng.uniform_u64(0, population.users.size() - 1);
        const UserProfile& profile = population.user_profiles[user_index];
        PaymentRequest request;
        request.sender = population.users[user_index];

        if (cross) {
            const std::size_t merchant_index = merchant_sampler_.sample(rng);
            const MerchantProfile& merchant =
                population.merchant_profiles[merchant_index];
            if (merchant.home == profile.home) return std::nullopt;
            request.destination = population.merchants[merchant_index];
            const double amount =
                (20.0 / usd_value(merchant.home)) * rng.lognormal(0.0, 1.0);
            request.deliver = Amount::iou(merchant.home, amount);
            request.source_currency = profile.home;
            return request;
        }

        const auto it = by_currency_.find(profile.home);
        if (it == by_currency_.end() || it->second.empty()) return std::nullopt;
        std::uint32_t merchant_index =
            it->second[rng.uniform_u64(0, it->second.size() - 1)];
        // The paper's Feb-Aug 2015 slice depends heavily on Market
        // Makers even for single-currency traffic (Table II: only 36%
        // deliver without them). Most replayed payments therefore
        // target merchants whose gateway set is disjoint from the
        // sender's deposits — reachable only through maker liquidity
        // or the occasional hub bridge.
        if (rng.bernoulli(0.70)) {
            for (int attempt = 0; attempt < 24; ++attempt) {
                const std::uint32_t candidate =
                    it->second[rng.uniform_u64(0, it->second.size() - 1)];
                const auto& gws =
                    population.merchant_profiles[candidate].gateways;
                bool disjoint = true;
                for (const auto& user_gw : profile.deposit_gateways) {
                    if (std::find(gws.begin(), gws.end(), user_gw) !=
                        gws.end()) {
                        disjoint = false;
                        break;
                    }
                }
                if (disjoint) {
                    merchant_index = candidate;
                    break;
                }
            }
        }
        request.destination = population.merchants[merchant_index];
        request.deliver = Amount::iou(
            profile.home, profile.typical_amount * rng.lognormal(0.0, 1.0));
        request.source_currency = profile.home;
        return request;
    }

private:
    const Population* population_;
    util::Rng* rng_;
    util::ZipfSampler merchant_sampler_;
    std::unordered_map<Currency, std::vector<std::uint32_t>> by_currency_;
};

}  // namespace

std::vector<PaymentRequest> make_replay_workload(const Population& population,
                                                 std::size_t count,
                                                 double cross_fraction,
                                                 util::Rng& rng) {
    ReplayCandidateSource source(population, rng);
    std::vector<PaymentRequest> requests;
    requests.reserve(count);
    while (requests.size() < count) {
        auto candidate = source.next(rng.bernoulli(cross_fraction));
        if (candidate) requests.push_back(std::move(*candidate));
    }
    return requests;
}

std::vector<PaymentRequest> make_delivered_replay_workload(
    const Population& population, const ledger::LedgerState& snapshot,
    std::size_t count, double cross_fraction, util::Rng& rng) {
    ReplayCandidateSource source(population, rng);
    ledger::LedgerState scratch = snapshot.clone();
    paths::PaymentEngine engine(scratch);

    const auto cross_target =
        static_cast<std::size_t>(cross_fraction * static_cast<double>(count));
    std::size_t cross_kept = 0;
    std::size_t single_kept = 0;

    std::vector<PaymentRequest> requests;
    requests.reserve(count);
    // Bounded attempts so a mis-tuned topology cannot loop forever.
    for (std::size_t attempt = 0; attempt < count * 20; ++attempt) {
        if (requests.size() >= count) break;
        const bool want_cross = cross_kept < cross_target &&
                                (single_kept >= count - cross_target ||
                                 rng.bernoulli(cross_fraction));
        auto candidate = source.next(want_cross);
        if (!candidate) continue;
        if (!engine.execute(*candidate).success) continue;
        if (candidate->cross_currency()) {
            if (cross_kept >= cross_target) continue;
            ++cross_kept;
        } else {
            if (single_kept >= count - cross_target) continue;
            ++single_kept;
        }
        requests.push_back(std::move(*candidate));
    }
    return requests;
}

}  // namespace xrpl::datagen
