// Population builder: accounts, trust topology, deposits, spam wiring.
//
// Builds the "stable snapshot" the workload runs against:
//   * gateways (the Fig 7 names where the paper identifies them),
//     each issuing a handful of currencies;
//   * the 50 influential hub accounts (Fig 7(a)) — led by the two
//     mystery non-gateway nodes — holding deposits at many gateways
//     and trusted widely, which is what lets them appear as
//     intermediate hops;
//   * Market Makers with multi-currency deposits and XRP float;
//   * merchants trusting 2-4 gateways of their home currency;
//   * ordinary users with deposits at up to 4 gateways (deposits are
//     the per-path spending capacity, so payments larger than one
//     deposit split across parallel paths — Fig 6(b));
//   * the spam infrastructure: the MTL spammer with its 6 chains of 8
//     intermediates, CCK spammers, ACCOUNT_ZERO, and ~Ripple Spin.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "datagen/config.hpp"
#include "ledger/ledger.hpp"
#include "util/rng.hpp"

namespace xrpl::datagen {

struct UserProfile {
    ledger::Currency home;
    std::vector<ledger::AccountID> deposit_gateways;
    /// Typical retail payment size in the home currency.
    double typical_amount = 1.0;
    /// Indices into Population::merchants.
    std::vector<std::uint32_t> favorite_merchants;
};

struct MerchantProfile {
    ledger::Currency home;
    std::vector<ledger::AccountID> gateways;
    /// Hubs this merchant trusts directly (well-known liquidity
    /// providers) — the source of two-intermediate routes in Fig 6(a).
    std::vector<ledger::AccountID> trusted_hubs;
};

struct Population {
    std::vector<ledger::AccountID> gateways;
    /// Currencies each gateway issues (parallel to `gateways`).
    std::vector<std::vector<ledger::Currency>> gateway_currencies;
    std::vector<ledger::AccountID> hubs;
    std::vector<ledger::AccountID> market_makers;
    std::vector<ledger::AccountID> merchants;
    std::vector<MerchantProfile> merchant_profiles;
    std::vector<ledger::AccountID> users;
    std::vector<UserProfile> user_profiles;

    /// Gateways issuing each currency.
    std::unordered_map<ledger::Currency, std::vector<ledger::AccountID>>
        issuers_by_currency;

    /// Display labels (gateway names, hub abbreviations).
    std::unordered_map<ledger::AccountID, std::string> labels;

    // Spam infrastructure.
    ledger::AccountID account_zero;
    std::vector<ledger::AccountID> zero_spammers;
    ledger::AccountID ripple_spin;
    ledger::AccountID mtl_spammer;
    ledger::AccountID mtl_target;
    /// Six full node paths [spammer, 8 intermediates, target].
    std::vector<std::vector<ledger::AccountID>> mtl_chains;
    /// The one-off 44-intermediate chain behind Fig 6(a)'s lone
    /// outlier bucket (someone experimenting with the path engine).
    std::vector<ledger::AccountID> fortyfour_chain;
    std::vector<ledger::AccountID> cck_spammers;
    std::vector<ledger::AccountID> cck_targets;
    /// The CCK issuing account (first of the two rails).
    ledger::AccountID cck_issuer;
    /// The two hyperactive intermediate accounts every CCK payment
    /// rails through — the paper's mystery rp2PaY / r42Ccn nodes.
    std::vector<ledger::AccountID> cck_rails;

    [[nodiscard]] std::string label_of(const ledger::AccountID& id) const {
        const auto it = labels.find(id);
        return it == labels.end() ? id.short_display() : it->second;
    }
};

/// Build the snapshot into `ledger`. Deterministic for a given config
/// and stream: each section (issuer backfill, hubs, makers, merchants,
/// users) draws from its own derived sub-stream, so adding draws to
/// one section cannot shift any other.
[[nodiscard]] Population build_population(ledger::LedgerState& ledger,
                                          const GeneratorConfig& config,
                                          const util::RngStream& stream);

}  // namespace xrpl::datagen
