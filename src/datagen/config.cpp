#include "datagen/config.hpp"

#include <unordered_map>

namespace xrpl::datagen {

ledger::Currency cur(const char* code) noexcept {
    return ledger::Currency::from_code(code);
}

const std::vector<CurrencyInfo>& organic_currency_catalog() {
    // Order and rough magnitudes follow Fig 4 (log y-axis): BTC ~4.7%
    // of 23M, USD 3.8%, CNY 3.3%, JPY 2.1%, ... EUR 0.4% (11th), then
    // a long tail down to ~100 payments. Weights are relative payment
    // counts; the workload normalizes them.
    static const std::vector<CurrencyInfo> catalog = {
        {cur("BTC"), 1'080'000, 600.0},
        {cur("USD"), 870'000, 1.0},
        {cur("CNY"), 760'000, 0.16},
        {cur("JPY"), 480'000, 0.0095},
        {cur("SFO"), 310'000, 0.05},
        {cur("DVC"), 240'000, 0.0001},
        {cur("GWD"), 180'000, 0.02},
        {cur("EUR"), 92'000, 1.3},
        {cur("RSC"), 71'000, 0.01},
        {cur("ICE"), 55'000, 0.03},
        {cur("STR"), 43'000, 0.002},
        {cur("GKO"), 34'000, 0.05},
        {cur("KRW"), 27'000, 0.00095},
        {cur("TRC"), 21'000, 0.4},
        {cur("LTC"), 17'000, 3.5},
        {cur("CAD"), 13'500, 0.9},
        {cur("FMM"), 10'500, 0.01},
        {cur("MXN"), 8'300, 0.075},
        {cur("NXT"), 6'600, 0.02},
        {cur("XTC"), 5'200, 0.1},
        {cur("XNF"), 4'100, 0.01},
        {cur("BRL"), 3'300, 0.45},
        {cur("DNX"), 2'600, 0.005},
        {cur("WTC"), 2'100, 0.02},
        {cur("ILS"), 1'700, 0.28},
        {cur("DOG"), 1'350, 0.0002},
        {cur("GBP"), 1'100, 1.6},
        {cur("XEC"), 880, 0.01},
        {cur("NZD"), 700, 0.8},
        {cur("LWT"), 560, 0.05},
        {cur("YOU"), 450, 0.01},
        {cur("ONC"), 360, 0.02},
        {cur("TBC"), 290, 0.1},
        {cur("CSC"), 230, 0.005},
        {cur("MRH"), 190, 0.01},
        {cur("SWD"), 150, 0.15},
        {cur("AUD"), 125, 0.9},
        {cur("NMC"), 105, 1.2},
        {cur("CTC"), 90, 0.02},
        {cur("PCV"), 80, 0.01},
        {cur("IOU"), 70, 0.01},
        {cur("LIK"), 60, 0.005},
        {cur("UKN"), 55, 0.01},
        {cur("RES"), 50, 0.02},
        {cur("JED"), 45, 0.01},
        {cur("VTC"), 40, 0.08},
        {cur("RJP"), 35, 0.01},
    };
    return catalog;
}

double usd_value(ledger::Currency currency) noexcept {
    static const std::unordered_map<ledger::Currency, double> values = [] {
        std::unordered_map<ledger::Currency, double> map;
        for (const CurrencyInfo& info : organic_currency_catalog()) {
            map.emplace(info.code, info.usd_value);
        }
        // The three currencies the mix handles explicitly.
        map.emplace(cur("XRP"), 0.008);
        map.emplace(cur("CCK"), 500.0);  // "similar to the BTC" (Fig 5)
        map.emplace(cur("MTL"), 1e-9);   // spam token, no real value
        return map;
    }();
    const auto it = values.find(currency);
    return it == values.end() ? 1.0 : it->second;
}

}  // namespace xrpl::datagen
