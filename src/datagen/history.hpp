// Full-history builder: the substitute for the paper's 500 GB ledger
// download.
//
// A two-stage pipeline on splittable RNG streams (DESIGN.md §12):
// population builds the snapshot, then generation is SHARDED into
// fixed payment-count slices that run as exec::parallel_for tasks —
// each slice clones the snapshot, draws from streams derived from
// root/"slice"/i, and its shard merges strictly in slice order — so
// output is bit-identical for every XRPL_THREADS width. Collects
// everything the study and the appendix figures consume: the compact
// TxRecord rows (Fig 3), per-currency counts and amount samples
// (Fig 4, Fig 5), hop and parallel-path histograms (Fig 6),
// per-intermediary appearance counts (Fig 7(a)), and the final ledger
// state (trust and balances for Fig 7(b,c), the snapshot for
// Table II).
#pragma once

#include <array>
#include <unordered_map>
#include <vector>

#include "datagen/config.hpp"
#include "datagen/population.hpp"
#include "datagen/workload.hpp"
#include "ledger/ledger.hpp"
#include "ledger/payment_columns.hpp"
#include "ledger/transaction.hpp"
#include "paths/payment_engine.hpp"

namespace xrpl::datagen {

struct GeneratedHistory {
    ledger::LedgerState ledger;
    Population population;
    /// The canonical payment dataset: columnar, dictionary-encoded.
    /// Consumers needing AoS rows call to_records() (a copy) or
    /// payments.view() (zero-copy).
    ledger::PaymentColumns payments;

    [[nodiscard]] std::vector<ledger::TxRecord> to_records() const {
        return payments.to_records();
    }

    // --- aggregates, filled while the history streams past -----------
    std::unordered_map<ledger::Currency, std::uint64_t> currency_counts;
    std::unordered_map<ledger::Currency, std::vector<float>> amounts_by_currency;
    /// hop_histogram[h] = payments routed through exactly h
    /// intermediate accounts (h >= 1; direct transfers not counted).
    std::vector<std::uint64_t> hop_histogram;
    /// parallel_histogram[k] = multi-hop payments split across k paths.
    std::vector<std::uint64_t> parallel_histogram;
    std::unordered_map<ledger::AccountID, std::uint64_t> intermediary_counts;
    std::array<std::uint64_t, 8> category_counts{};

    std::uint64_t pages = 0;
    std::uint64_t multi_hop_payments = 0;
    util::RippleTime first_close;
    util::RippleTime last_close;

    WorkloadStats workload_stats;
    std::vector<std::uint64_t> offer_placements;  // per Market Maker
    std::uint64_t offers_placed_total = 0;
};

/// The population stage's complete output: the seeded ledger (trust
/// lines, deposits, maker float) plus the account roster. This is the
/// prefix of generate_history — cheap (no payment workload), and
/// byte-identical to the population inside a full generation of the
/// same config, so consumers that load payments from a snapshot can
/// still pair them with the exact population that produced them.
struct PopulationSnapshot {
    ledger::LedgerState ledger;
    Population population;
};

/// Run ONLY the population stage of the pipeline. Same RNG stream
/// derivation as generate_history, so the result is identical to the
/// full run's population/initial ledger.
[[nodiscard]] PopulationSnapshot generate_population_only(
    const GeneratorConfig& config);

/// Generate a complete history. Deterministic in the config seed
/// alone: the same config yields byte-identical output at any
/// XRPL_THREADS width (slicing is governed by
/// GeneratorConfig::payments_per_slice, never by the thread count).
[[nodiscard]] GeneratedHistory generate_history(const GeneratorConfig& config);

/// Build the Table II replay workload against an existing population:
/// `count` payments, `cross_fraction` of them cross-currency (the
/// paper's Feb-Aug 2015 slice is 68.7% cross).
[[nodiscard]] std::vector<paths::PaymentRequest> make_replay_workload(
    const Population& population, std::size_t count, double cross_fraction,
    util::Rng& rng);

/// Like make_replay_workload, but keeps only payments that actually
/// deliver when executed in order against a (scratch clone of the)
/// snapshot — mirroring the paper, which replays "all payments
/// submitted after the snapshot and successfully delivered until
/// August 2015". Replaying the result against a fresh clone of
/// `snapshot` therefore delivers 100% by construction.
[[nodiscard]] std::vector<paths::PaymentRequest> make_delivered_replay_workload(
    const Population& population, const ledger::LedgerState& snapshot,
    std::size_t count, double cross_fraction, util::Rng& rng);

}  // namespace xrpl::datagen
