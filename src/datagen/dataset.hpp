// Config canonicalization + the cache-or-generate dataset entry point.
//
// The dataset cache (src/snap/dataset_cache.hpp) is content-addressed:
// an artifact's name must pin down EVERYTHING that determines its
// bytes. For a generated history that is (a) the full GeneratorConfig
// — the generator is deterministic in it — and (b) the XCOL format
// version, since the artifact is the serialization. canonical_config
// renders (a) as sorted `name=value` lines with locale-free,
// shortest-round-trip number formatting, so two configs hash equal iff
// they generate the same history; dataset_key folds in (b) and hashes.
//
// Every field rides in the key, including payments_per_slice: slicing
// picks RNG streams, so it changes CONTENT, not just scheduling.
// Adding a GeneratorConfig field? Extend canonical_config in the same
// commit — the cache-key tests count lines against the struct.
#pragma once

#include <string>

#include "datagen/config.hpp"
#include "ledger/payment_columns.hpp"

namespace xrpl::datagen {

/// `name=value\n` per GeneratorConfig field, names sorted
/// alphabetically. Deterministic across platforms and locales
/// (doubles via std::to_chars shortest round-trip).
[[nodiscard]] std::string canonical_config(const GeneratorConfig& config);

/// Cache key for `config`'s payment dataset: lowercase-hex sha256 of
/// canonical_config plus the XCOL format version line.
[[nodiscard]] std::string dataset_key(const GeneratorConfig& config);

/// THE cache-aware way to obtain a config's payments: serve
/// `dataset_key(config)` from the XRPL_DATASET_DIR cache, or generate
/// the history, keep its payment store, and publish it. With the
/// cache disabled this is exactly generate_history(config).payments.
[[nodiscard]] ledger::PaymentColumns load_or_generate_payments(
    const GeneratorConfig& config);

}  // namespace xrpl::datagen
