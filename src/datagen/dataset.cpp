#include "datagen/dataset.hpp"

#include <charconv>
#include <cstdint>
#include <utility>

#include "datagen/history.hpp"
#include "snap/dataset_cache.hpp"
#include "snap/xcol.hpp"
#include "util/contract.hpp"
#include "util/sha256.hpp"

namespace xrpl::datagen {

namespace {

void put_line(std::string& out, const char* name, std::uint64_t value) {
    out += name;
    out += '=';
    out += std::to_string(value);
    out += '\n';
}

void put_line(std::string& out, const char* name, std::int64_t value) {
    out += name;
    out += '=';
    out += std::to_string(value);
    out += '\n';
}

/// Shortest round-trip decimal rendering — std::to_chars, never
/// iostreams, so the text is locale-independent and bit-faithful.
void put_line(std::string& out, const char* name, double value) {
    char buffer[32];
    const auto [end, ec] =
        std::to_chars(buffer, buffer + sizeof(buffer), value);
    XRPL_ASSERT(ec == std::errc(), "double must render in 32 chars");
    out += name;
    out += '=';
    out.append(buffer, static_cast<std::size_t>(end - buffer));
    out += '\n';
}

}  // namespace

std::string canonical_config(const GeneratorConfig& config) {
    // One line per field, ALPHABETICAL by name — append-position
    // mistakes cannot silently reorder the serialization.
    std::string out;
    out.reserve(512);
    put_line(out, "account_zero_fraction", config.account_zero_fraction);
    put_line(out, "burst_probability", config.burst_probability);
    put_line(out, "cck_spam_fraction", config.cck_spam_fraction);
    put_line(out, "cross_currency_fraction", config.cross_currency_fraction);
    put_line(out, "deposit_scale", config.deposit_scale);
    put_line(out, "iou_retail_fraction", config.iou_retail_fraction);
    put_line(out, "live_offers_per_maker",
             static_cast<std::uint64_t>(config.live_offers_per_maker));
    put_line(out, "mtl_spam_fraction", config.mtl_spam_fraction);
    put_line(out, "num_gateways", static_cast<std::uint64_t>(config.num_gateways));
    put_line(out, "num_hubs", static_cast<std::uint64_t>(config.num_hubs));
    put_line(out, "num_market_makers",
             static_cast<std::uint64_t>(config.num_market_makers));
    put_line(out, "num_merchants",
             static_cast<std::uint64_t>(config.num_merchants));
    put_line(out, "num_users", static_cast<std::uint64_t>(config.num_users));
    put_line(out, "offers_per_page", config.offers_per_page);
    put_line(out, "page_interval_seconds", config.page_interval_seconds);
    put_line(out, "payments_per_page", config.payments_per_page);
    put_line(out, "payments_per_slice", config.payments_per_slice);
    put_line(out, "ripple_spin_fraction", config.ripple_spin_fraction);
    put_line(out, "seed", config.seed);
    put_line(out, "start_time_seconds", config.start_time.seconds);
    put_line(out, "target_payments", config.target_payments);
    put_line(out, "xrp_organic_fraction", config.xrp_organic_fraction);
    put_line(out, "xrp_whale_fraction", config.xrp_whale_fraction);
    return out;
}

std::string dataset_key(const GeneratorConfig& config) {
    // The artifact is the XCOL serialization of the generated store,
    // so the format version is part of WHAT is cached: a format bump
    // re-keys every entry instead of tripping kBadVersion loads.
    std::string material = canonical_config(config);
    material += "xcol_version=";
    material += std::to_string(snap::kXcolVersion);
    material += '\n';
    return util::to_hex(util::sha256(material));
}

ledger::PaymentColumns load_or_generate_payments(
    const GeneratorConfig& config) {
    const snap::DatasetCache cache = snap::DatasetCache::from_options();
    return cache.load_or_generate(dataset_key(config), [&config] {
        return std::move(generate_history(config).payments);
    });
}

}  // namespace xrpl::datagen
