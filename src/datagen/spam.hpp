// Spam-campaign classification.
//
// The paper repeatedly separates organic traffic from the documented
// abuse campaigns (MTL 8-hop DoS, CCK micro-transactions, the
// ACCOUNT_ZERO ping-pong, ~Ripple Spin gambling). These helpers
// classify records the way an analyst would — from ledger-visible
// signals (currency, destination, amount shape) — so benches can
// annotate the same anomalies the paper calls out.
#pragma once

#include <span>

#include "datagen/population.hpp"
#include "ledger/payment_columns.hpp"
#include "ledger/transaction.hpp"

namespace xrpl::datagen {

enum class SpamKind : std::uint8_t {
    kOrganic,
    kMtlCampaign,
    kCckCampaign,
    kAccountZeroPingPong,
    kGambling,
};

[[nodiscard]] const char* spam_kind_name(SpamKind kind) noexcept;

/// Classify one payment record against the known campaign fingerprints.
[[nodiscard]] SpamKind classify(const ledger::TxRecord& record,
                                const Population& population) noexcept;

/// Aggregate spam shares over a history.
struct SpamBreakdown {
    std::uint64_t organic = 0;
    std::uint64_t mtl = 0;
    std::uint64_t cck = 0;
    std::uint64_t account_zero = 0;
    std::uint64_t gambling = 0;

    [[nodiscard]] std::uint64_t total() const noexcept {
        return organic + mtl + cck + account_zero + gambling;
    }
};

[[nodiscard]] SpamBreakdown spam_breakdown(
    std::span<const ledger::TxRecord> records, const Population& population);

/// Column-native overload: resolves the campaign accounts/currencies to
/// interned ids once, then classifies on the integer columns.
[[nodiscard]] SpamBreakdown spam_breakdown(ledger::PaymentView view,
                                           const Population& population);

}  // namespace xrpl::datagen
