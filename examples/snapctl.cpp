// snapctl — inspect, verify, and build XCOL dataset snapshots.
//
//   snapctl info <path.xcol>              header + seal summary
//   snapctl verify <path.xcol>            full decode; exit 0 iff intact
//   snapctl gen <path.xcol> [payments]    generate + save a history
//   snapctl key [payments]                print the dataset cache key
//   snapctl selfcheck                     exercise the verify exit paths
//
// Exit codes: 0 success, 1 artifact rejected (verify prints the
// classified LoadError name on stderr), 2 usage error. CI runs
// `snapctl info` over the primed cache artifact, and the selfcheck —
// wired into ctest — proves each corruption class maps to its own
// error and a nonzero exit.
#include <charconv>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "datagen/dataset.hpp"
#include "datagen/history.hpp"
#include "ledger/payment_columns.hpp"
#include "snap/xcol.hpp"
#include "util/file_io.hpp"

namespace {

using namespace xrpl;

datagen::GeneratorConfig tool_config(std::uint64_t payments) {
    datagen::GeneratorConfig config;
    config.seed = 20130101;
    config.target_payments = payments;
    config.num_users = 4'000;
    config.num_merchants = 300;
    return config;
}

int info(const std::string& path) {
    const auto parsed = snap::read_file_info(path);
    if (!parsed) {
        std::cerr << "error: " << path << " is not a readable XCOL file\n";
        return 1;
    }
    std::cout << "file:       " << path << "\n"
              << "version:    " << parsed->version << "\n"
              << "rows:       " << parsed->rows << "\n"
              << "chunks:     " << parsed->chunk_count << " x "
              << parsed->chunk_rows << " rows\n"
              << "accounts:   " << parsed->accounts << "\n"
              << "currencies: " << parsed->currencies << "\n"
              << "bytes:      " << parsed->total_bytes << "\n"
              << "seal:       " << parsed->seal_hex << "\n";
    return 0;
}

int verify(const std::string& path) {
    const snap::LoadResult result = snap::load_columns(path);
    if (!result.ok()) {
        std::cerr << "REJECTED " << path << ": "
                  << snap::load_error_name(*result.error) << " ("
                  << result.detail << ")\n";
        return 1;
    }
    std::cout << "OK " << path << ": " << result.columns.size() << " rows, "
              << "fingerprint "
              << ledger::columns_fingerprint(result.columns) << "\n";
    return 0;
}

int gen(const std::string& path, std::uint64_t payments) {
    const datagen::GeneratorConfig config = tool_config(payments);
    std::cout << "generating " << payments << " payments...\n";
    const datagen::GeneratedHistory history = datagen::generate_history(config);
    if (!snap::save_columns(path, history.payments)) {
        std::cerr << "error: cannot write " << path << "\n";
        return 1;
    }
    std::cout << "wrote " << history.payments.size() << " rows to " << path
              << "\ncache key for this config: "
              << datagen::dataset_key(config) << "\n";
    return 0;
}

/// Prove verify's exit-code contract: an intact artifact passes, and
/// each corruption class is rejected with ITS OWN error. Runs in a
/// scratch directory; exit 0 iff every expectation held.
int selfcheck() {
    const std::string dir = "snapctl_selfcheck.tmp";
    if (!util::ensure_directory(dir)) {
        std::cerr << "selfcheck: cannot create " << dir << "\n";
        return 1;
    }
    const std::string path = dir + "/artifact.xcol";
    const datagen::GeneratedHistory history =
        datagen::generate_history(tool_config(3'000));
    if (!snap::save_columns(path, history.payments)) {
        std::cerr << "selfcheck: save failed\n";
        return 1;
    }
    const auto pristine = util::read_file_bytes(path);
    if (!pristine) {
        std::cerr << "selfcheck: readback failed\n";
        return 1;
    }

    int failures = 0;
    const auto expect = [&](const char* what, bool ok) {
        if (!ok) {
            ++failures;
            std::cerr << "selfcheck FAILED: " << what << "\n";
        }
    };

    expect("intact artifact verifies", verify(path) == 0);

    // Truncation.
    std::vector<std::uint8_t> bytes(*pristine);
    bytes.resize(bytes.size() / 2);
    expect("write truncated", util::write_file_bytes(path, bytes));
    expect("truncated rejected", verify(path) == 1);

    // Flipped chunk byte (chunk bodies start well past the header —
    // the midpoint of the file lands inside one).
    bytes = *pristine;
    bytes[bytes.size() / 2] ^= 0x01;
    expect("write flipped", util::write_file_bytes(path, bytes));
    expect("flipped byte rejected", verify(path) == 1);

    // Stale version.
    bytes = *pristine;
    bytes[4] ^= 0x7F;
    expect("write stale version", util::write_file_bytes(path, bytes));
    expect("stale version rejected", verify(path) == 1);

    // Wrong magic.
    bytes = *pristine;
    bytes[0] = 'Z';
    expect("write bad magic", util::write_file_bytes(path, bytes));
    expect("bad magic rejected", verify(path) == 1);

    expect("missing file rejected", verify(dir + "/absent.xcol") == 1);

    util::remove_file(path);
    if (failures == 0) std::cout << "selfcheck OK\n";
    return failures == 0 ? 0 : 1;
}

std::uint64_t parse_payments(const char* arg, std::uint64_t fallback) {
    if (arg == nullptr) return fallback;
    std::uint64_t value = 0;
    const char* end = arg + std::strlen(arg);
    const auto [ptr, ec] = std::from_chars(arg, end, value);
    if (ec != std::errc{} || ptr != end || value == 0) return 0;
    return value;
}

int usage() {
    std::cerr << "usage: snapctl info <path.xcol>\n"
              << "       snapctl verify <path.xcol>\n"
              << "       snapctl gen <path.xcol> [payments]\n"
              << "       snapctl key [payments]\n"
              << "       snapctl selfcheck\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    const std::string command = argc >= 2 ? argv[1] : "";
    if (command == "selfcheck") return selfcheck();
    if (command == "key") {
        const std::uint64_t payments =
            parse_payments(argc >= 3 ? argv[2] : nullptr, 100'000);
        if (payments == 0) return usage();
        std::cout << datagen::dataset_key(tool_config(payments)) << "\n";
        return 0;
    }
    if (argc < 3) return usage();
    if (command == "info") return info(argv[2]);
    if (command == "verify") return verify(argv[2]);
    if (command == "gen") {
        const std::uint64_t payments =
            parse_payments(argc >= 4 ? argv[3] : nullptr, 100'000);
        if (payments == 0) return usage();
        return gen(argv[2], payments);
    }
    return usage();
}
