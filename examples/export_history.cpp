// Export/import a payment history — the "download once, analyze many
// times" workflow of the paper's 500 GB pipeline, scaled down.
//
//   export_history generate <path> [payments]   build + save a history
//   export_history analyze <path>               load + run the IG study
//
// With no arguments it does both against a temporary file. The
// artifact is an XCOL columnar snapshot (src/snap/): chunked,
// varint/delta-encoded, CRC'd per chunk, sha256-sealed — the same
// format the XRPL_DATASET_DIR cache serves benches from, so a file
// exported here is inspectable with `snapctl info`.
#include <charconv>
#include <cstring>
#include <iostream>
#include <string>

#include "core/ig_study.hpp"
#include "datagen/history.hpp"
#include "snap/xcol.hpp"
#include "util/file_io.hpp"
#include "util/table.hpp"

namespace {

using namespace xrpl;

int generate(const std::string& path, std::uint64_t payments) {
    datagen::GeneratorConfig config;
    config.seed = 20130101;
    config.target_payments = payments;
    config.num_users = 4'000;
    config.num_merchants = 300;
    std::cout << "generating " << payments << " payments...\n";
    const datagen::GeneratedHistory history = datagen::generate_history(config);
    if (!snap::save_columns(path, history.payments)) {
        std::cerr << "failed to write " << path << "\n";
        return 1;
    }
    std::cout << "wrote " << history.payments.size() << " rows to " << path
              << " (XCOL columnar snapshot, sha256-sealed)\n";
    return 0;
}

int analyze(const std::string& path) {
    snap::LoadResult loaded = snap::load_columns(path);
    if (!loaded.ok()) {
        std::cerr << "failed to load " << path << ": "
                  << snap::load_error_name(*loaded.error) << " ("
                  << loaded.detail << ")\n";
        return 1;
    }
    std::cout << "loaded " << loaded.columns.size() << " rows from " << path
              << " (chunk CRCs + seal verified)\n\n";
    util::TextTable table({"configuration", "IG"});
    for (const core::IgStudyRow& row : core::run_ig_study(loaded.columns)) {
        table.add_row({row.config.label(),
                       util::format_percent(row.result.information_gain())});
    }
    table.render(std::cout);
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc >= 3 && std::string(argv[1]) == "generate") {
        std::uint64_t payments = 100'000;
        if (argc >= 4) {
            // Strict parse: the whole argument must be a positive
            // integer (atoll would silently accept "25k" as 25).
            const char* end = argv[3] + std::strlen(argv[3]);
            const auto [ptr, ec] = std::from_chars(argv[3], end, payments);
            if (ec != std::errc{} || ptr != end || payments == 0) {
                std::cerr << "bad payment count '" << argv[3]
                          << "' (expected a positive integer)\n";
                return 2;
            }
        }
        return generate(argv[2], payments);
    }
    if (argc >= 3 && std::string(argv[1]) == "analyze") {
        return analyze(argv[2]);
    }

    // Demo mode: round-trip through a temp file.
    const std::string path = "/tmp/xrpl_history_demo.xcol";
    const int gen = generate(path, 60'000);
    if (gen != 0) return gen;
    const int ana = analyze(path);
    util::remove_file(path);
    return ana;
}
