// Export/import a payment history — the "download once, analyze many
// times" workflow of the paper's 500 GB pipeline, scaled down.
//
//   export_history generate <path> [payments]   build + save a history
//   export_history analyze <path>               load + run the IG study
//
// With no arguments it does both against a temporary file.
#include <charconv>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "core/ig_study.hpp"
#include "datagen/history.hpp"
#include "ledger/codec.hpp"
#include "util/table.hpp"

namespace {

using namespace xrpl;

int generate(const std::string& path, std::uint64_t payments) {
    datagen::GeneratorConfig config;
    config.seed = 20130101;
    config.target_payments = payments;
    config.num_users = 4'000;
    config.num_merchants = 300;
    std::cout << "generating " << payments << " payments...\n";
    const datagen::GeneratedHistory history = datagen::generate_history(config);
    if (!ledger::save_records(path, history.to_records())) {
        std::cerr << "failed to write " << path << "\n";
        return 1;
    }
    std::cout << "wrote " << history.payments.size() << " records to " << path
              << " (sha256-sealed binary stream)\n";
    return 0;
}

int analyze(const std::string& path) {
    const auto records = ledger::load_records(path);
    if (!records) {
        std::cerr << "failed to load/verify " << path << "\n";
        return 1;
    }
    std::cout << "loaded " << records->size() << " records from " << path
              << " (checksum verified)\n\n";
    util::TextTable table({"configuration", "IG"});
    for (const core::IgStudyRow& row : core::run_ig_study(*records)) {
        table.add_row({row.config.label(),
                       util::format_percent(row.result.information_gain())});
    }
    table.render(std::cout);
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc >= 3 && std::string(argv[1]) == "generate") {
        std::uint64_t payments = 100'000;
        if (argc >= 4) {
            // Strict parse: the whole argument must be a positive
            // integer (atoll would silently accept "25k" as 25).
            const char* end = argv[3] + std::strlen(argv[3]);
            const auto [ptr, ec] = std::from_chars(argv[3], end, payments);
            if (ec != std::errc{} || ptr != end || payments == 0) {
                std::cerr << "bad payment count '" << argv[3]
                          << "' (expected a positive integer)\n";
                return 2;
            }
        }
        return generate(argv[2], payments);
    }
    if (argc >= 3 && std::string(argv[1]) == "analyze") {
        return analyze(argv[2]);
    }

    // Demo mode: round-trip through a temp file.
    const std::string path = "/tmp/xrpl_history_demo.bin";
    const int gen = generate(path, 60'000);
    if (gen != 0) return gen;
    const int ana = analyze(path);
    std::remove(path.c_str());
    return ana;
}
