// Quickstart: accounts, trust lines, payments, and a consensus round.
//
// Walks the library's core objects end to end:
//   1. create a gateway and two users, funded with XRP;
//   2. a direct XRP payment;
//   3. trust lines and an IOU payment rippling through the gateway
//      (the paper's Fig 1 scenario);
//   4. a Market-Maker offer and a cross-currency payment;
//   5. one consensus round sealing the transactions into a ledger page.
#include <iostream>

#include "consensus/rpca.hpp"
#include "ledger/ledger.hpp"
#include "paths/payment_engine.hpp"

int main() {
    using namespace xrpl;
    using ledger::AccountID;
    using ledger::Amount;
    using ledger::Currency;
    using ledger::IouAmount;
    using ledger::XrpAmount;

    std::cout << "--- 1. accounts -------------------------------------\n";
    ledger::LedgerState state;
    const AccountID gateway = AccountID::from_seed("quickstart:gateway");
    const AccountID alice = AccountID::from_seed("quickstart:alice");
    const AccountID bob = AccountID::from_seed("quickstart:bob");
    const AccountID maker = AccountID::from_seed("quickstart:maker");
    state.create_account(gateway, XrpAmount::from_xrp(10'000), /*gateway=*/true);
    state.create_account(alice, XrpAmount::from_xrp(1'000));
    state.create_account(bob, XrpAmount::from_xrp(1'000));
    state.create_account(maker, XrpAmount::from_xrp(100'000), false,
                         /*allows_rippling=*/true);
    std::cout << "alice is " << alice.to_address() << "\n";
    std::cout << "bob   is " << bob.to_address() << "\n";

    paths::PaymentEngine engine(state);

    std::cout << "\n--- 2. a direct XRP payment -------------------------\n";
    paths::PaymentRequest xrp_payment;
    xrp_payment.sender = alice;
    xrp_payment.destination = bob;
    xrp_payment.deliver = Amount::xrp(25.0);
    xrp_payment.source_currency = Currency::xrp();
    const auto xrp_result = engine.execute(xrp_payment);
    std::cout << "delivered " << xrp_result.delivered.to_string()
              << " (success=" << xrp_result.success
              << ", fee burned so far: " << state.burned_fees().drops
              << " drops)\n";

    std::cout << "\n--- 3. trust lines and an IOU payment ---------------\n";
    const Currency usd = Currency::from_code("USD");
    // Alice deposits 100 USD at the gateway; Bob accepts gateway USD.
    ledger::TrustLine& line =
        state.set_trust(alice, gateway, usd, IouAmount::from_double(1'000));
    const bool deposited = line.transfer_from(gateway, IouAmount::from_double(100));
    state.set_trust(bob, gateway, usd, IouAmount::from_double(1'000));
    std::cout << "alice deposited 100 USD at the gateway (ok=" << deposited
              << ")\n";

    paths::PaymentRequest latte;
    latte.sender = alice;
    latte.destination = bob;
    latte.deliver = Amount::iou(usd, 4.5);
    latte.source_currency = usd;
    const auto latte_result = engine.execute(latte);
    std::cout << "IOU payment of 4.5 USD: success=" << latte_result.success
              << ", intermediate hops=" << latte_result.intermediate_hops
              << " (the gateway), alice now holds "
              << state.trustline(alice, gateway, usd)
                     ->balance_for(alice)
                     .to_string()
              << " USD\n";

    std::cout << "\n--- 4. a Market Maker and a cross-currency payment --\n";
    const Currency eur = Currency::from_code("EUR");
    const AccountID eur_gateway = AccountID::from_seed("quickstart:eur-gateway");
    state.create_account(eur_gateway, XrpAmount::from_xrp(10'000), true);
    // The maker holds inventory on both sides and quotes USD -> EUR.
    ledger::TrustLine& m_usd =
        state.set_trust(maker, gateway, usd, IouAmount::from_double(1e6));
    (void)m_usd;
    ledger::TrustLine& m_eur =
        state.set_trust(maker, eur_gateway, eur, IouAmount::from_double(1e6));
    const bool maker_funded =
        m_eur.transfer_from(eur_gateway, IouAmount::from_double(10'000));
    state.set_trust(bob, eur_gateway, eur, IouAmount::from_double(1e6));
    state.place_offer(maker, Amount::iou(usd, 108.0), Amount::iou(eur, 100.0));
    std::cout << "maker funded with EUR inventory (ok=" << maker_funded
              << "), quoting 1.08 USD per EUR\n";

    paths::PaymentRequest cross;
    cross.sender = alice;
    cross.destination = bob;
    cross.deliver = Amount::iou(eur, 50.0);
    cross.source_currency = usd;
    const auto cross_result = engine.execute(cross);
    std::cout << "cross-currency payment of 50 EUR paid in USD: success="
              << cross_result.success
              << ", order book used=" << cross_result.used_order_book
              << ", parallel paths=" << cross_result.parallel_paths << "\n";

    std::cout << "\n--- 5. a consensus round ----------------------------\n";
    std::vector<consensus::ValidatorSpec> validators;
    for (int i = 1; i <= 5; ++i) {
        consensus::ValidatorSpec v;
        v.label = "R" + std::to_string(i);
        v.behavior = consensus::ValidatorBehavior::kCore;
        v.on_unl = true;
        validators.push_back(v);
    }
    consensus::ConsensusConfig config;
    config.rounds = 3;
    config.seed = 1;
    consensus::ConsensusSimulation sim(validators, config);
    consensus::ValidationStream stream;
    stream.subscribe_pages([](const consensus::PageClosed& page) {
        std::cout << "page sealed on "
                  << (page.chain == consensus::ChainTag::kMain ? "main" : "other")
                  << " chain: " << page.page_hash.to_hex().substr(0, 16)
                  << "...\n";
    });
    const auto stats = sim.run(stream);
    std::cout << "closed " << stats.main_pages_closed << " of " << stats.rounds
              << " rounds; chain verifies up to page "
              << sim.main_chain().verify_chain() << "\n";

    std::cout << "\nquickstart done.\n";
    return 0;
}
