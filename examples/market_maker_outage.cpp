// Market-Maker outage — Table II in miniature.
//
// Builds the snapshot network, extracts a delivered payment stream,
// then knocks out progressively larger groups of Market Makers (the
// top-10, the top-50, all of them) and reports how delivery degrades.
// The paper's observation: taking over or thwarting "a very small
// number of users" controls most of the system's liquidity.
#include <algorithm>
#include <iostream>

#include "bench/common.hpp"
#include "datagen/history.hpp"
#include "paths/order_book.hpp"
#include "paths/replay.hpp"
#include "util/table.hpp"

int main() {
    using namespace xrpl;

    std::cout << "Building the snapshot network...\n";
    datagen::GeneratorConfig config;
    config.seed = 2015'02'01;
    config.num_users = 4'000;
    config.num_gateways = 40;
    config.num_market_makers = 100;
    config.num_merchants = 300;
    config.num_hubs = 20;
    config.target_payments = 120'000;
    const datagen::GeneratedHistory history = datagen::generate_history(config);

    util::Rng rng = util::RngStream(99).derive("replay").rng();
    const auto payments = datagen::make_delivered_replay_workload(
        history.population, history.ledger, 10'000, 0.687, rng);
    std::cout << "replaying " << payments.size()
              << " delivered payments (68.7% cross-currency)\n\n";

    // Makers ranked by their standing offers.
    const auto concentration = paths::maker_concentration(history.ledger);
    std::vector<ledger::AccountID> ranked_makers;
    for (const auto& share : concentration) ranked_makers.push_back(share.maker);
    for (const auto& maker : history.population.market_makers) {
        if (std::find(ranked_makers.begin(), ranked_makers.end(), maker) ==
            ranked_makers.end()) {
            ranked_makers.push_back(maker);
        }
    }

    util::TextTable table({"scenario", "cross rate", "single rate", "total"});
    const auto run = [&](const char* name, std::size_t removed_count,
                         bool remove_all_offers) {
        ledger::LedgerState world = history.ledger.clone();
        paths::PaymentEngine engine(world);
        const std::vector<ledger::AccountID> removed(
            ranked_makers.begin(),
            ranked_makers.begin() +
                std::min(removed_count, ranked_makers.size()));
        const paths::ReplayStats stats =
            removed.empty() && !remove_all_offers
                ? paths::replay(engine, payments)
                : paths::replay_without(engine, payments, removed,
                                        remove_all_offers);
        table.add_row({name, util::format_percent(stats.cross_rate()),
                       util::format_percent(stats.single_rate()),
                       util::format_percent(stats.total_rate())});
    };

    run("baseline (all makers up)", 0, false);
    run("top-10 makers removed", 10, false);
    run("top-50 makers removed", 50, false);
    run("ALL makers + offers removed (Table II)", ranked_makers.size(), true);
    table.render(std::cout);

    std::cout << "\npaper: without Market Makers, 0% of cross-currency and "
                 "36.10% of single-currency payments deliver (11.2% overall).\n";
    return 0;
}
