// The latte attack — the paper's §V narrative, end to end.
//
// Bob buys a latte (4.5 USD) at a bar that accepts Ripple. Alice is
// in line behind him and observes four things: the bar's address, the
// currency, the amount, and (roughly) the time. This example builds a
// synthetic Ripple history, plants Bob's latte in it, and shows how
// each level of observation precision narrows the candidate senders —
// until Alice holds Bob's address and his entire financial life.
#include <iostream>

#include "core/deanonymizer.hpp"
#include "datagen/history.hpp"
#include "util/table.hpp"

int main() {
    using namespace xrpl;

    std::cout << "Generating the public ledger history...\n";
    datagen::GeneratorConfig config;
    config.seed = 7;
    config.num_users = 3'000;
    config.num_gateways = 30;
    config.num_market_makers = 60;
    config.num_merchants = 250;
    config.num_hubs = 15;
    config.target_payments = 120'000;
    datagen::GeneratedHistory history = datagen::generate_history(config);

    // Plant Bob's latte: a real payment from a real user to a real
    // merchant, at a known ledger close.
    const ledger::AccountID bob = ledger::AccountID::from_seed("user:42");
    ledger::TxRecord latte;
    latte.sender = bob;
    latte.destination = ledger::AccountID::from_seed("merchant:7");  // the bar
    latte.currency = ledger::Currency::from_code("USD");
    latte.amount = ledger::IouAmount::from_double(4.5);
    latte.time = util::RippleTime{history.payments.time_seconds.back() + 5};
    history.payments.push_back(latte);

    std::cout << "history: " << history.payments.size()
              << " payments. Bob buys his latte at "
              << util::format(latte.time) << ".\n\n";

    const core::Deanonymizer deanonymizer(history.payments);

    // Alice's observation: she does NOT know the sender.
    ledger::TxRecord observation = latte;
    observation.sender = ledger::AccountID{};  // ignored by the attack

    struct Scenario {
        const char* description;
        core::ResolutionConfig config;
    };
    const Scenario scenarios[] = {
        {"exact time, amount, currency, destination",
         {core::AmountResolution::kMax, util::TimeResolution::kSeconds, true,
          true}},
        {"Alice only noted the minute",
         {core::AmountResolution::kHigh, util::TimeResolution::kMinutes, true,
          true}},
        {"\"sometime that hour, forty-ish dollars... wait, a latte\"",
         {core::AmountResolution::kAverage, util::TimeResolution::kHours, true,
          true}},
        {"\"it was that day, at that bar\"",
         {core::AmountResolution::kLow, util::TimeResolution::kDays, true, true}},
        {"no watch at all (timestamp dropped)",
         {core::AmountResolution::kMax, std::nullopt, true, true}},
    };

    util::TextTable table({"observation", "candidates", "Bob found?"});
    for (const Scenario& scenario : scenarios) {
        const auto candidates = deanonymizer.attack(observation, scenario.config);
        const bool found =
            candidates.size() == 1 && candidates.front() == bob;
        const bool contains =
            std::find(candidates.begin(), candidates.end(), bob) !=
            candidates.end();
        table.add_row({scenario.description, std::to_string(candidates.size()),
                       found ? "UNIQUELY" : (contains ? "among them" : "no")});
    }
    table.render(std::cout);

    // The unique hit hands Alice everything.
    const auto candidates =
        deanonymizer.attack(observation, core::full_resolution());
    if (candidates.size() == 1) {
        std::cout << "\nBob's Ripple address: " << candidates[0].to_address()
                  << "\n";
        const auto life = deanonymizer.history_of(candidates[0]);
        std::cout << "Bob's entire financial life (" << life.size()
                  << " payments, every one public):\n";
        util::TextTable life_table({"time", "amount", "currency", "to"});
        for (std::size_t i = 0; i < life.size() && i < 8; ++i) {
            life_table.add_row({util::format(life[i].time),
                                life[i].amount.to_string(),
                                life[i].currency.to_string(),
                                life[i].destination.short_display()});
        }
        life_table.render(std::cout);
        if (life.size() > 8) {
            std::cout << "... and " << life.size() - 8 << " more.\n";
        }
        std::cout << "\nEvery FUTURE payment from " << candidates[0].short_display()
                  << " is now trackable too.\n";
    }
    return 0;
}
