// Validator monitor — the paper's measurement server, live.
//
// Spins up the July 2016 validator population, subscribes to the
// validation stream exactly as the authors' collection server did,
// and prints a rolling per-validator report as consensus rounds tick
// by. Watch the testnet validators rack up signed pages that never
// land on the main chain.
#include <iostream>

#include "consensus/monitor.hpp"
#include "consensus/period_config.hpp"
#include "consensus/rpca.hpp"
#include "util/table.hpp"

int main() {
    using namespace xrpl;

    const consensus::PeriodSpec period = consensus::july_2016();
    std::cout << "monitoring the validation stream: " << period.name << " ("
              << period.validators.size() << " validators observed)\n\n";

    consensus::ConsensusConfig config;
    config.rounds = 5'000;
    config.seed = 2016'07'01;
    config.start_time = util::from_calendar(2016, 7, 1);
    consensus::ConsensusSimulation sim(period.validators, config);

    consensus::ValidationStream stream;
    consensus::ValidationMonitor monitor(sim.validators());
    monitor.attach(stream);

    // A live ticker: progress lines as pages seal.
    std::uint64_t pages = 0;
    stream.subscribe_pages([&](const consensus::PageClosed& page) {
        if (page.chain != consensus::ChainTag::kMain) return;
        ++pages;
        if (pages % 1'000 == 0) {
            std::cout << "[" << pages << " pages sealed, stream carried "
                      << stream.validations_published() << " validations]\n";
        }
    });

    const consensus::ConsensusStats stats = sim.run(stream);

    std::cout << "\ncapture finished: " << stats.rounds << " rounds, "
              << stats.main_pages_closed << " main pages, "
              << stats.testnet_pages_closed << " testnet pages\n\n";

    util::TextTable table({"validator", "node key", "class", "total", "valid"});
    for (const consensus::ValidatorReport& report : monitor.report()) {
        table.add_row({report.label, report.node_key.substr(0, 10) + "...",
                       consensus::behavior_name(report.behavior),
                       util::format_count(report.total_pages),
                       util::format_count(report.valid_pages)});
    }
    table.render(std::cout);

    std::cout << "\nactively contributing validators (>=50% of a core's valid "
                 "pages): "
              << monitor.active_count(0.5) << "\n";
    std::cout << "main chain verifies: "
              << (sim.main_chain().verify_chain() == sim.main_chain().size()
                      ? "yes"
                      : "NO")
              << "\n";
    return 0;
}
