// A full node, end to end: submit transactions to the open ledger,
// watch consensus seal them into pages, and verify the chain.
//
// This is the §III lifecycle in one runnable program: submission ->
// queue -> candidate set -> 80% UNL quorum -> sealed page -> applied
// balances, including a failed round (weakened UNL) whose candidate
// set is retried.
#include <iostream>

#include "node/node.hpp"
#include "util/table.hpp"

int main() {
    using namespace xrpl;
    using ledger::AccountID;
    using ledger::Amount;
    using ledger::Currency;
    using ledger::XrpAmount;

    // --- world -----------------------------------------------------
    ledger::LedgerState state;
    const AccountID alice = AccountID::from_seed("node:alice");
    const AccountID bob = AccountID::from_seed("node:bob");
    const AccountID carol = AccountID::from_seed("node:carol");
    for (const AccountID& id : {alice, bob, carol}) {
        state.create_account(id, XrpAmount::from_xrp(10'000));
    }

    std::vector<consensus::ValidatorSpec> validators;
    for (int i = 1; i <= 5; ++i) {
        consensus::ValidatorSpec v;
        v.label = "R" + std::to_string(i);
        v.behavior = consensus::ValidatorBehavior::kCore;
        v.availability = 0.99;
        v.on_unl = true;
        validators.push_back(v);
    }

    node::NodeConfig config;
    config.consensus.seed = 2015;
    config.consensus.start_time = util::from_calendar(2015, 6, 1);
    config.max_txs_per_page = 4;
    node::Node node(state, validators, config);

    node.stream().subscribe_pages([](const consensus::PageClosed& page) {
        if (page.chain == consensus::ChainTag::kMain) {
            std::cout << "  [page " << page.round << " sealed: "
                      << page.page_hash.to_hex().substr(0, 12) << "...]\n";
        }
    });

    // --- submit a burst of payments --------------------------------
    std::cout << "submitting 10 payments (varied fees)...\n";
    for (std::uint32_t i = 1; i <= 10; ++i) {
        ledger::Transaction tx;
        tx.type = ledger::TxType::kPayment;
        tx.sender = i % 2 == 0 ? alice : bob;
        tx.sequence = i;
        tx.destination = carol;
        tx.amount = Amount::xrp(10.0 * i);
        tx.source_currency = Currency::xrp();
        node.submit(tx, XrpAmount{10 + 5 * (i % 3)});
    }

    std::cout << "running consensus until the open ledger drains:\n";
    const auto reports = node.run_until_idle(10);

    util::TextTable table({"round", "sealed", "txs in page", "ok", "retried"});
    for (const node::RoundReport& report : reports) {
        std::size_t ok = 0;
        for (const auto& applied : report.applied) ok += applied.success ? 1 : 0;
        table.add_row({util::format(report.close_time),
                       report.outcome.main_closed ? "yes" : "NO",
                       std::to_string(report.applied.size()), std::to_string(ok),
                       std::to_string(report.retried)});
    }
    table.render(std::cout);

    std::cout << "\nchain: " << node.chain().size() << " pages, verifies up to "
              << node.chain().verify_chain() << "\n";
    std::cout << "carol's balance: "
              << state.account(carol)->balance.to_xrp() << " XRP\n";
    std::cout << "fees burned: " << state.burned_fees().drops << " drops\n";
    return 0;
}
