file(REMOVE_RECURSE
  "CMakeFiles/fig2_validators.dir/fig2_validators.cpp.o"
  "CMakeFiles/fig2_validators.dir/fig2_validators.cpp.o.d"
  "fig2_validators"
  "fig2_validators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_validators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
