# Empty dependencies file for fig2_validators.
# This may be replaced when dependencies are built.
