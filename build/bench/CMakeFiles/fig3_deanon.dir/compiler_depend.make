# Empty compiler generated dependencies file for fig3_deanon.
# This may be replaced when dependencies are built.
