file(REMOVE_RECURSE
  "CMakeFiles/fig3_deanon.dir/fig3_deanon.cpp.o"
  "CMakeFiles/fig3_deanon.dir/fig3_deanon.cpp.o.d"
  "fig3_deanon"
  "fig3_deanon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_deanon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
