# Empty compiler generated dependencies file for fig6_paths.
# This may be replaced when dependencies are built.
