file(REMOVE_RECURSE
  "CMakeFiles/fig6_paths.dir/fig6_paths.cpp.o"
  "CMakeFiles/fig6_paths.dir/fig6_paths.cpp.o.d"
  "fig6_paths"
  "fig6_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
