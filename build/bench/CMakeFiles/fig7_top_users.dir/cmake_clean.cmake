file(REMOVE_RECURSE
  "CMakeFiles/fig7_top_users.dir/fig7_top_users.cpp.o"
  "CMakeFiles/fig7_top_users.dir/fig7_top_users.cpp.o.d"
  "fig7_top_users"
  "fig7_top_users.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_top_users.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
