# Empty dependencies file for fig7_top_users.
# This may be replaced when dependencies are built.
