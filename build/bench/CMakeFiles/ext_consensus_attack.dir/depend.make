# Empty dependencies file for ext_consensus_attack.
# This may be replaced when dependencies are built.
