file(REMOVE_RECURSE
  "CMakeFiles/ext_consensus_attack.dir/ext_consensus_attack.cpp.o"
  "CMakeFiles/ext_consensus_attack.dir/ext_consensus_attack.cpp.o.d"
  "ext_consensus_attack"
  "ext_consensus_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_consensus_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
