file(REMOVE_RECURSE
  "CMakeFiles/ext_anonymity_sets.dir/ext_anonymity_sets.cpp.o"
  "CMakeFiles/ext_anonymity_sets.dir/ext_anonymity_sets.cpp.o.d"
  "ext_anonymity_sets"
  "ext_anonymity_sets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_anonymity_sets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
