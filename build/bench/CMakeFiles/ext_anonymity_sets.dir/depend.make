# Empty dependencies file for ext_anonymity_sets.
# This may be replaced when dependencies are built.
