file(REMOVE_RECURSE
  "CMakeFiles/table2_market_makers.dir/table2_market_makers.cpp.o"
  "CMakeFiles/table2_market_makers.dir/table2_market_makers.cpp.o.d"
  "table2_market_makers"
  "table2_market_makers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_market_makers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
