# Empty dependencies file for table2_market_makers.
# This may be replaced when dependencies are built.
