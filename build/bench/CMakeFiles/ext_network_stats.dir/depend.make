# Empty dependencies file for ext_network_stats.
# This may be replaced when dependencies are built.
