file(REMOVE_RECURSE
  "CMakeFiles/ext_network_stats.dir/ext_network_stats.cpp.o"
  "CMakeFiles/ext_network_stats.dir/ext_network_stats.cpp.o.d"
  "ext_network_stats"
  "ext_network_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_network_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
