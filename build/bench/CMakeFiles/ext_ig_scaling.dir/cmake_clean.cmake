file(REMOVE_RECURSE
  "CMakeFiles/ext_ig_scaling.dir/ext_ig_scaling.cpp.o"
  "CMakeFiles/ext_ig_scaling.dir/ext_ig_scaling.cpp.o.d"
  "ext_ig_scaling"
  "ext_ig_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_ig_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
