# Empty dependencies file for ext_ig_scaling.
# This may be replaced when dependencies are built.
