file(REMOVE_RECURSE
  "CMakeFiles/fig5_survival.dir/fig5_survival.cpp.o"
  "CMakeFiles/fig5_survival.dir/fig5_survival.cpp.o.d"
  "fig5_survival"
  "fig5_survival.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_survival.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
