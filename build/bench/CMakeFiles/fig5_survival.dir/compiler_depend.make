# Empty compiler generated dependencies file for fig5_survival.
# This may be replaced when dependencies are built.
