# Empty compiler generated dependencies file for table1_rounding.
# This may be replaced when dependencies are built.
