file(REMOVE_RECURSE
  "CMakeFiles/table1_rounding.dir/table1_rounding.cpp.o"
  "CMakeFiles/table1_rounding.dir/table1_rounding.cpp.o.d"
  "table1_rounding"
  "table1_rounding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_rounding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
