# Empty compiler generated dependencies file for fig4_currencies.
# This may be replaced when dependencies are built.
