
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_currencies.cpp" "bench/CMakeFiles/fig4_currencies.dir/fig4_currencies.cpp.o" "gcc" "bench/CMakeFiles/fig4_currencies.dir/fig4_currencies.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xrpl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xrpl_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xrpl_node.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xrpl_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xrpl_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xrpl_paths.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xrpl_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xrpl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
