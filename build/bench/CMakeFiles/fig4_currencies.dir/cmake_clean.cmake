file(REMOVE_RECURSE
  "CMakeFiles/fig4_currencies.dir/fig4_currencies.cpp.o"
  "CMakeFiles/fig4_currencies.dir/fig4_currencies.cpp.o.d"
  "fig4_currencies"
  "fig4_currencies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_currencies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
