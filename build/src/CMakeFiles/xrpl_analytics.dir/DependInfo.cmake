
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/currency_stats.cpp" "src/CMakeFiles/xrpl_analytics.dir/analytics/currency_stats.cpp.o" "gcc" "src/CMakeFiles/xrpl_analytics.dir/analytics/currency_stats.cpp.o.d"
  "/root/repo/src/analytics/histogram.cpp" "src/CMakeFiles/xrpl_analytics.dir/analytics/histogram.cpp.o" "gcc" "src/CMakeFiles/xrpl_analytics.dir/analytics/histogram.cpp.o.d"
  "/root/repo/src/analytics/network_stats.cpp" "src/CMakeFiles/xrpl_analytics.dir/analytics/network_stats.cpp.o" "gcc" "src/CMakeFiles/xrpl_analytics.dir/analytics/network_stats.cpp.o.d"
  "/root/repo/src/analytics/path_stats.cpp" "src/CMakeFiles/xrpl_analytics.dir/analytics/path_stats.cpp.o" "gcc" "src/CMakeFiles/xrpl_analytics.dir/analytics/path_stats.cpp.o.d"
  "/root/repo/src/analytics/survival.cpp" "src/CMakeFiles/xrpl_analytics.dir/analytics/survival.cpp.o" "gcc" "src/CMakeFiles/xrpl_analytics.dir/analytics/survival.cpp.o.d"
  "/root/repo/src/analytics/top_users.cpp" "src/CMakeFiles/xrpl_analytics.dir/analytics/top_users.cpp.o" "gcc" "src/CMakeFiles/xrpl_analytics.dir/analytics/top_users.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xrpl_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xrpl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
