# Empty compiler generated dependencies file for xrpl_analytics.
# This may be replaced when dependencies are built.
