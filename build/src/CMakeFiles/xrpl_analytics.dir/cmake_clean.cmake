file(REMOVE_RECURSE
  "CMakeFiles/xrpl_analytics.dir/analytics/currency_stats.cpp.o"
  "CMakeFiles/xrpl_analytics.dir/analytics/currency_stats.cpp.o.d"
  "CMakeFiles/xrpl_analytics.dir/analytics/histogram.cpp.o"
  "CMakeFiles/xrpl_analytics.dir/analytics/histogram.cpp.o.d"
  "CMakeFiles/xrpl_analytics.dir/analytics/network_stats.cpp.o"
  "CMakeFiles/xrpl_analytics.dir/analytics/network_stats.cpp.o.d"
  "CMakeFiles/xrpl_analytics.dir/analytics/path_stats.cpp.o"
  "CMakeFiles/xrpl_analytics.dir/analytics/path_stats.cpp.o.d"
  "CMakeFiles/xrpl_analytics.dir/analytics/survival.cpp.o"
  "CMakeFiles/xrpl_analytics.dir/analytics/survival.cpp.o.d"
  "CMakeFiles/xrpl_analytics.dir/analytics/top_users.cpp.o"
  "CMakeFiles/xrpl_analytics.dir/analytics/top_users.cpp.o.d"
  "libxrpl_analytics.a"
  "libxrpl_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xrpl_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
