file(REMOVE_RECURSE
  "libxrpl_analytics.a"
)
