# Empty dependencies file for xrpl_consensus.
# This may be replaced when dependencies are built.
