file(REMOVE_RECURSE
  "libxrpl_consensus.a"
)
