file(REMOVE_RECURSE
  "CMakeFiles/xrpl_consensus.dir/consensus/monitor.cpp.o"
  "CMakeFiles/xrpl_consensus.dir/consensus/monitor.cpp.o.d"
  "CMakeFiles/xrpl_consensus.dir/consensus/period_config.cpp.o"
  "CMakeFiles/xrpl_consensus.dir/consensus/period_config.cpp.o.d"
  "CMakeFiles/xrpl_consensus.dir/consensus/robustness.cpp.o"
  "CMakeFiles/xrpl_consensus.dir/consensus/robustness.cpp.o.d"
  "CMakeFiles/xrpl_consensus.dir/consensus/rpca.cpp.o"
  "CMakeFiles/xrpl_consensus.dir/consensus/rpca.cpp.o.d"
  "CMakeFiles/xrpl_consensus.dir/consensus/validation_stream.cpp.o"
  "CMakeFiles/xrpl_consensus.dir/consensus/validation_stream.cpp.o.d"
  "CMakeFiles/xrpl_consensus.dir/consensus/validator.cpp.o"
  "CMakeFiles/xrpl_consensus.dir/consensus/validator.cpp.o.d"
  "libxrpl_consensus.a"
  "libxrpl_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xrpl_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
