
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/consensus/monitor.cpp" "src/CMakeFiles/xrpl_consensus.dir/consensus/monitor.cpp.o" "gcc" "src/CMakeFiles/xrpl_consensus.dir/consensus/monitor.cpp.o.d"
  "/root/repo/src/consensus/period_config.cpp" "src/CMakeFiles/xrpl_consensus.dir/consensus/period_config.cpp.o" "gcc" "src/CMakeFiles/xrpl_consensus.dir/consensus/period_config.cpp.o.d"
  "/root/repo/src/consensus/robustness.cpp" "src/CMakeFiles/xrpl_consensus.dir/consensus/robustness.cpp.o" "gcc" "src/CMakeFiles/xrpl_consensus.dir/consensus/robustness.cpp.o.d"
  "/root/repo/src/consensus/rpca.cpp" "src/CMakeFiles/xrpl_consensus.dir/consensus/rpca.cpp.o" "gcc" "src/CMakeFiles/xrpl_consensus.dir/consensus/rpca.cpp.o.d"
  "/root/repo/src/consensus/validation_stream.cpp" "src/CMakeFiles/xrpl_consensus.dir/consensus/validation_stream.cpp.o" "gcc" "src/CMakeFiles/xrpl_consensus.dir/consensus/validation_stream.cpp.o.d"
  "/root/repo/src/consensus/validator.cpp" "src/CMakeFiles/xrpl_consensus.dir/consensus/validator.cpp.o" "gcc" "src/CMakeFiles/xrpl_consensus.dir/consensus/validator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xrpl_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xrpl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
