file(REMOVE_RECURSE
  "CMakeFiles/xrpl_datagen.dir/datagen/config.cpp.o"
  "CMakeFiles/xrpl_datagen.dir/datagen/config.cpp.o.d"
  "CMakeFiles/xrpl_datagen.dir/datagen/history.cpp.o"
  "CMakeFiles/xrpl_datagen.dir/datagen/history.cpp.o.d"
  "CMakeFiles/xrpl_datagen.dir/datagen/population.cpp.o"
  "CMakeFiles/xrpl_datagen.dir/datagen/population.cpp.o.d"
  "CMakeFiles/xrpl_datagen.dir/datagen/spam.cpp.o"
  "CMakeFiles/xrpl_datagen.dir/datagen/spam.cpp.o.d"
  "CMakeFiles/xrpl_datagen.dir/datagen/workload.cpp.o"
  "CMakeFiles/xrpl_datagen.dir/datagen/workload.cpp.o.d"
  "libxrpl_datagen.a"
  "libxrpl_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xrpl_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
