# Empty compiler generated dependencies file for xrpl_datagen.
# This may be replaced when dependencies are built.
