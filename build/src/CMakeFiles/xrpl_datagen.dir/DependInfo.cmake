
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/config.cpp" "src/CMakeFiles/xrpl_datagen.dir/datagen/config.cpp.o" "gcc" "src/CMakeFiles/xrpl_datagen.dir/datagen/config.cpp.o.d"
  "/root/repo/src/datagen/history.cpp" "src/CMakeFiles/xrpl_datagen.dir/datagen/history.cpp.o" "gcc" "src/CMakeFiles/xrpl_datagen.dir/datagen/history.cpp.o.d"
  "/root/repo/src/datagen/population.cpp" "src/CMakeFiles/xrpl_datagen.dir/datagen/population.cpp.o" "gcc" "src/CMakeFiles/xrpl_datagen.dir/datagen/population.cpp.o.d"
  "/root/repo/src/datagen/spam.cpp" "src/CMakeFiles/xrpl_datagen.dir/datagen/spam.cpp.o" "gcc" "src/CMakeFiles/xrpl_datagen.dir/datagen/spam.cpp.o.d"
  "/root/repo/src/datagen/workload.cpp" "src/CMakeFiles/xrpl_datagen.dir/datagen/workload.cpp.o" "gcc" "src/CMakeFiles/xrpl_datagen.dir/datagen/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xrpl_paths.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xrpl_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xrpl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
