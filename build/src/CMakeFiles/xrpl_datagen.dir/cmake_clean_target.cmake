file(REMOVE_RECURSE
  "libxrpl_datagen.a"
)
