# Empty compiler generated dependencies file for xrpl_util.
# This may be replaced when dependencies are built.
