file(REMOVE_RECURSE
  "CMakeFiles/xrpl_util.dir/util/base58.cpp.o"
  "CMakeFiles/xrpl_util.dir/util/base58.cpp.o.d"
  "CMakeFiles/xrpl_util.dir/util/hex.cpp.o"
  "CMakeFiles/xrpl_util.dir/util/hex.cpp.o.d"
  "CMakeFiles/xrpl_util.dir/util/ripple_time.cpp.o"
  "CMakeFiles/xrpl_util.dir/util/ripple_time.cpp.o.d"
  "CMakeFiles/xrpl_util.dir/util/rng.cpp.o"
  "CMakeFiles/xrpl_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/xrpl_util.dir/util/sha256.cpp.o"
  "CMakeFiles/xrpl_util.dir/util/sha256.cpp.o.d"
  "CMakeFiles/xrpl_util.dir/util/table.cpp.o"
  "CMakeFiles/xrpl_util.dir/util/table.cpp.o.d"
  "CMakeFiles/xrpl_util.dir/util/textplot.cpp.o"
  "CMakeFiles/xrpl_util.dir/util/textplot.cpp.o.d"
  "libxrpl_util.a"
  "libxrpl_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xrpl_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
