file(REMOVE_RECURSE
  "libxrpl_util.a"
)
