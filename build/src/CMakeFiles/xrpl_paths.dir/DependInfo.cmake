
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/paths/order_book.cpp" "src/CMakeFiles/xrpl_paths.dir/paths/order_book.cpp.o" "gcc" "src/CMakeFiles/xrpl_paths.dir/paths/order_book.cpp.o.d"
  "/root/repo/src/paths/path_finder.cpp" "src/CMakeFiles/xrpl_paths.dir/paths/path_finder.cpp.o" "gcc" "src/CMakeFiles/xrpl_paths.dir/paths/path_finder.cpp.o.d"
  "/root/repo/src/paths/payment_engine.cpp" "src/CMakeFiles/xrpl_paths.dir/paths/payment_engine.cpp.o" "gcc" "src/CMakeFiles/xrpl_paths.dir/paths/payment_engine.cpp.o.d"
  "/root/repo/src/paths/replay.cpp" "src/CMakeFiles/xrpl_paths.dir/paths/replay.cpp.o" "gcc" "src/CMakeFiles/xrpl_paths.dir/paths/replay.cpp.o.d"
  "/root/repo/src/paths/trust_graph.cpp" "src/CMakeFiles/xrpl_paths.dir/paths/trust_graph.cpp.o" "gcc" "src/CMakeFiles/xrpl_paths.dir/paths/trust_graph.cpp.o.d"
  "/root/repo/src/paths/widest_path.cpp" "src/CMakeFiles/xrpl_paths.dir/paths/widest_path.cpp.o" "gcc" "src/CMakeFiles/xrpl_paths.dir/paths/widest_path.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xrpl_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xrpl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
