file(REMOVE_RECURSE
  "libxrpl_paths.a"
)
