# Empty dependencies file for xrpl_paths.
# This may be replaced when dependencies are built.
