file(REMOVE_RECURSE
  "CMakeFiles/xrpl_paths.dir/paths/order_book.cpp.o"
  "CMakeFiles/xrpl_paths.dir/paths/order_book.cpp.o.d"
  "CMakeFiles/xrpl_paths.dir/paths/path_finder.cpp.o"
  "CMakeFiles/xrpl_paths.dir/paths/path_finder.cpp.o.d"
  "CMakeFiles/xrpl_paths.dir/paths/payment_engine.cpp.o"
  "CMakeFiles/xrpl_paths.dir/paths/payment_engine.cpp.o.d"
  "CMakeFiles/xrpl_paths.dir/paths/replay.cpp.o"
  "CMakeFiles/xrpl_paths.dir/paths/replay.cpp.o.d"
  "CMakeFiles/xrpl_paths.dir/paths/trust_graph.cpp.o"
  "CMakeFiles/xrpl_paths.dir/paths/trust_graph.cpp.o.d"
  "CMakeFiles/xrpl_paths.dir/paths/widest_path.cpp.o"
  "CMakeFiles/xrpl_paths.dir/paths/widest_path.cpp.o.d"
  "libxrpl_paths.a"
  "libxrpl_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xrpl_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
