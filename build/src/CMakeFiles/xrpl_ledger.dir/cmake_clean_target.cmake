file(REMOVE_RECURSE
  "libxrpl_ledger.a"
)
