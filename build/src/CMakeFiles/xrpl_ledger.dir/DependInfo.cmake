
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ledger/amount.cpp" "src/CMakeFiles/xrpl_ledger.dir/ledger/amount.cpp.o" "gcc" "src/CMakeFiles/xrpl_ledger.dir/ledger/amount.cpp.o.d"
  "/root/repo/src/ledger/codec.cpp" "src/CMakeFiles/xrpl_ledger.dir/ledger/codec.cpp.o" "gcc" "src/CMakeFiles/xrpl_ledger.dir/ledger/codec.cpp.o.d"
  "/root/repo/src/ledger/ledger.cpp" "src/CMakeFiles/xrpl_ledger.dir/ledger/ledger.cpp.o" "gcc" "src/CMakeFiles/xrpl_ledger.dir/ledger/ledger.cpp.o.d"
  "/root/repo/src/ledger/ledger_history.cpp" "src/CMakeFiles/xrpl_ledger.dir/ledger/ledger_history.cpp.o" "gcc" "src/CMakeFiles/xrpl_ledger.dir/ledger/ledger_history.cpp.o.d"
  "/root/repo/src/ledger/transaction.cpp" "src/CMakeFiles/xrpl_ledger.dir/ledger/transaction.cpp.o" "gcc" "src/CMakeFiles/xrpl_ledger.dir/ledger/transaction.cpp.o.d"
  "/root/repo/src/ledger/trustline.cpp" "src/CMakeFiles/xrpl_ledger.dir/ledger/trustline.cpp.o" "gcc" "src/CMakeFiles/xrpl_ledger.dir/ledger/trustline.cpp.o.d"
  "/root/repo/src/ledger/types.cpp" "src/CMakeFiles/xrpl_ledger.dir/ledger/types.cpp.o" "gcc" "src/CMakeFiles/xrpl_ledger.dir/ledger/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xrpl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
