file(REMOVE_RECURSE
  "CMakeFiles/xrpl_ledger.dir/ledger/amount.cpp.o"
  "CMakeFiles/xrpl_ledger.dir/ledger/amount.cpp.o.d"
  "CMakeFiles/xrpl_ledger.dir/ledger/codec.cpp.o"
  "CMakeFiles/xrpl_ledger.dir/ledger/codec.cpp.o.d"
  "CMakeFiles/xrpl_ledger.dir/ledger/ledger.cpp.o"
  "CMakeFiles/xrpl_ledger.dir/ledger/ledger.cpp.o.d"
  "CMakeFiles/xrpl_ledger.dir/ledger/ledger_history.cpp.o"
  "CMakeFiles/xrpl_ledger.dir/ledger/ledger_history.cpp.o.d"
  "CMakeFiles/xrpl_ledger.dir/ledger/transaction.cpp.o"
  "CMakeFiles/xrpl_ledger.dir/ledger/transaction.cpp.o.d"
  "CMakeFiles/xrpl_ledger.dir/ledger/trustline.cpp.o"
  "CMakeFiles/xrpl_ledger.dir/ledger/trustline.cpp.o.d"
  "CMakeFiles/xrpl_ledger.dir/ledger/types.cpp.o"
  "CMakeFiles/xrpl_ledger.dir/ledger/types.cpp.o.d"
  "libxrpl_ledger.a"
  "libxrpl_ledger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xrpl_ledger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
