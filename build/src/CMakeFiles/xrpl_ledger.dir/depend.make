# Empty dependencies file for xrpl_ledger.
# This may be replaced when dependencies are built.
