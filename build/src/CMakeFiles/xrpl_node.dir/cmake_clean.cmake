file(REMOVE_RECURSE
  "CMakeFiles/xrpl_node.dir/node/node.cpp.o"
  "CMakeFiles/xrpl_node.dir/node/node.cpp.o.d"
  "CMakeFiles/xrpl_node.dir/node/tx_queue.cpp.o"
  "CMakeFiles/xrpl_node.dir/node/tx_queue.cpp.o.d"
  "libxrpl_node.a"
  "libxrpl_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xrpl_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
