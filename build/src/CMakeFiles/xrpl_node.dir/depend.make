# Empty dependencies file for xrpl_node.
# This may be replaced when dependencies are built.
