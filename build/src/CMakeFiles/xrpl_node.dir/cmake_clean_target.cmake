file(REMOVE_RECURSE
  "libxrpl_node.a"
)
