
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/node/node.cpp" "src/CMakeFiles/xrpl_node.dir/node/node.cpp.o" "gcc" "src/CMakeFiles/xrpl_node.dir/node/node.cpp.o.d"
  "/root/repo/src/node/tx_queue.cpp" "src/CMakeFiles/xrpl_node.dir/node/tx_queue.cpp.o" "gcc" "src/CMakeFiles/xrpl_node.dir/node/tx_queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xrpl_paths.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xrpl_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xrpl_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xrpl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
