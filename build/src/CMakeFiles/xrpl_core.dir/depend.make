# Empty dependencies file for xrpl_core.
# This may be replaced when dependencies are built.
