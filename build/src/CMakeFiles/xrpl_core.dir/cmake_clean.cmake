file(REMOVE_RECURSE
  "CMakeFiles/xrpl_core.dir/core/anonymity.cpp.o"
  "CMakeFiles/xrpl_core.dir/core/anonymity.cpp.o.d"
  "CMakeFiles/xrpl_core.dir/core/clustering.cpp.o"
  "CMakeFiles/xrpl_core.dir/core/clustering.cpp.o.d"
  "CMakeFiles/xrpl_core.dir/core/deanonymizer.cpp.o"
  "CMakeFiles/xrpl_core.dir/core/deanonymizer.cpp.o.d"
  "CMakeFiles/xrpl_core.dir/core/features.cpp.o"
  "CMakeFiles/xrpl_core.dir/core/features.cpp.o.d"
  "CMakeFiles/xrpl_core.dir/core/fingerprint.cpp.o"
  "CMakeFiles/xrpl_core.dir/core/fingerprint.cpp.o.d"
  "CMakeFiles/xrpl_core.dir/core/ig_study.cpp.o"
  "CMakeFiles/xrpl_core.dir/core/ig_study.cpp.o.d"
  "CMakeFiles/xrpl_core.dir/core/mitigation.cpp.o"
  "CMakeFiles/xrpl_core.dir/core/mitigation.cpp.o.d"
  "CMakeFiles/xrpl_core.dir/core/resolution.cpp.o"
  "CMakeFiles/xrpl_core.dir/core/resolution.cpp.o.d"
  "libxrpl_core.a"
  "libxrpl_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xrpl_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
