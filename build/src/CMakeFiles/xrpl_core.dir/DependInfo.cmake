
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/anonymity.cpp" "src/CMakeFiles/xrpl_core.dir/core/anonymity.cpp.o" "gcc" "src/CMakeFiles/xrpl_core.dir/core/anonymity.cpp.o.d"
  "/root/repo/src/core/clustering.cpp" "src/CMakeFiles/xrpl_core.dir/core/clustering.cpp.o" "gcc" "src/CMakeFiles/xrpl_core.dir/core/clustering.cpp.o.d"
  "/root/repo/src/core/deanonymizer.cpp" "src/CMakeFiles/xrpl_core.dir/core/deanonymizer.cpp.o" "gcc" "src/CMakeFiles/xrpl_core.dir/core/deanonymizer.cpp.o.d"
  "/root/repo/src/core/features.cpp" "src/CMakeFiles/xrpl_core.dir/core/features.cpp.o" "gcc" "src/CMakeFiles/xrpl_core.dir/core/features.cpp.o.d"
  "/root/repo/src/core/fingerprint.cpp" "src/CMakeFiles/xrpl_core.dir/core/fingerprint.cpp.o" "gcc" "src/CMakeFiles/xrpl_core.dir/core/fingerprint.cpp.o.d"
  "/root/repo/src/core/ig_study.cpp" "src/CMakeFiles/xrpl_core.dir/core/ig_study.cpp.o" "gcc" "src/CMakeFiles/xrpl_core.dir/core/ig_study.cpp.o.d"
  "/root/repo/src/core/mitigation.cpp" "src/CMakeFiles/xrpl_core.dir/core/mitigation.cpp.o" "gcc" "src/CMakeFiles/xrpl_core.dir/core/mitigation.cpp.o.d"
  "/root/repo/src/core/resolution.cpp" "src/CMakeFiles/xrpl_core.dir/core/resolution.cpp.o" "gcc" "src/CMakeFiles/xrpl_core.dir/core/resolution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xrpl_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xrpl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
