file(REMOVE_RECURSE
  "libxrpl_core.a"
)
