file(REMOVE_RECURSE
  "CMakeFiles/market_maker_outage.dir/market_maker_outage.cpp.o"
  "CMakeFiles/market_maker_outage.dir/market_maker_outage.cpp.o.d"
  "market_maker_outage"
  "market_maker_outage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_maker_outage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
