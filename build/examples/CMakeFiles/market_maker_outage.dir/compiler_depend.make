# Empty compiler generated dependencies file for market_maker_outage.
# This may be replaced when dependencies are built.
