file(REMOVE_RECURSE
  "CMakeFiles/full_node.dir/full_node.cpp.o"
  "CMakeFiles/full_node.dir/full_node.cpp.o.d"
  "full_node"
  "full_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
