# Empty dependencies file for export_history.
# This may be replaced when dependencies are built.
