file(REMOVE_RECURSE
  "CMakeFiles/export_history.dir/export_history.cpp.o"
  "CMakeFiles/export_history.dir/export_history.cpp.o.d"
  "export_history"
  "export_history.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_history.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
