file(REMOVE_RECURSE
  "CMakeFiles/validator_monitor.dir/validator_monitor.cpp.o"
  "CMakeFiles/validator_monitor.dir/validator_monitor.cpp.o.d"
  "validator_monitor"
  "validator_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validator_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
