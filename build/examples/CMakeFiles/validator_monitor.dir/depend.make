# Empty dependencies file for validator_monitor.
# This may be replaced when dependencies are built.
