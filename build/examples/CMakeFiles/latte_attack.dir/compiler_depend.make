# Empty compiler generated dependencies file for latte_attack.
# This may be replaced when dependencies are built.
