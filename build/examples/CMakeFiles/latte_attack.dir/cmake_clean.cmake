file(REMOVE_RECURSE
  "CMakeFiles/latte_attack.dir/latte_attack.cpp.o"
  "CMakeFiles/latte_attack.dir/latte_attack.cpp.o.d"
  "latte_attack"
  "latte_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/latte_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
