# Empty dependencies file for xrpl_tests.
# This may be replaced when dependencies are built.
