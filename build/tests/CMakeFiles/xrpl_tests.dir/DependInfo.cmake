
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analytics/test_analytics.cpp" "tests/CMakeFiles/xrpl_tests.dir/analytics/test_analytics.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/analytics/test_analytics.cpp.o.d"
  "/root/repo/tests/analytics/test_network_stats.cpp" "tests/CMakeFiles/xrpl_tests.dir/analytics/test_network_stats.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/analytics/test_network_stats.cpp.o.d"
  "/root/repo/tests/analytics/test_top_users.cpp" "tests/CMakeFiles/xrpl_tests.dir/analytics/test_top_users.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/analytics/test_top_users.cpp.o.d"
  "/root/repo/tests/consensus/test_consensus.cpp" "tests/CMakeFiles/xrpl_tests.dir/consensus/test_consensus.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/consensus/test_consensus.cpp.o.d"
  "/root/repo/tests/consensus/test_monitor.cpp" "tests/CMakeFiles/xrpl_tests.dir/consensus/test_monitor.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/consensus/test_monitor.cpp.o.d"
  "/root/repo/tests/consensus/test_robustness.cpp" "tests/CMakeFiles/xrpl_tests.dir/consensus/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/consensus/test_robustness.cpp.o.d"
  "/root/repo/tests/core/test_anonymity.cpp" "tests/CMakeFiles/xrpl_tests.dir/core/test_anonymity.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/core/test_anonymity.cpp.o.d"
  "/root/repo/tests/core/test_clustering.cpp" "tests/CMakeFiles/xrpl_tests.dir/core/test_clustering.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/core/test_clustering.cpp.o.d"
  "/root/repo/tests/core/test_deanonymizer.cpp" "tests/CMakeFiles/xrpl_tests.dir/core/test_deanonymizer.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/core/test_deanonymizer.cpp.o.d"
  "/root/repo/tests/core/test_features.cpp" "tests/CMakeFiles/xrpl_tests.dir/core/test_features.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/core/test_features.cpp.o.d"
  "/root/repo/tests/core/test_fingerprint.cpp" "tests/CMakeFiles/xrpl_tests.dir/core/test_fingerprint.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/core/test_fingerprint.cpp.o.d"
  "/root/repo/tests/core/test_ig_study.cpp" "tests/CMakeFiles/xrpl_tests.dir/core/test_ig_study.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/core/test_ig_study.cpp.o.d"
  "/root/repo/tests/core/test_mitigation.cpp" "tests/CMakeFiles/xrpl_tests.dir/core/test_mitigation.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/core/test_mitigation.cpp.o.d"
  "/root/repo/tests/core/test_resolution.cpp" "tests/CMakeFiles/xrpl_tests.dir/core/test_resolution.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/core/test_resolution.cpp.o.d"
  "/root/repo/tests/datagen/test_history.cpp" "tests/CMakeFiles/xrpl_tests.dir/datagen/test_history.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/datagen/test_history.cpp.o.d"
  "/root/repo/tests/datagen/test_population.cpp" "tests/CMakeFiles/xrpl_tests.dir/datagen/test_population.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/datagen/test_population.cpp.o.d"
  "/root/repo/tests/datagen/test_spam.cpp" "tests/CMakeFiles/xrpl_tests.dir/datagen/test_spam.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/datagen/test_spam.cpp.o.d"
  "/root/repo/tests/datagen/test_workload.cpp" "tests/CMakeFiles/xrpl_tests.dir/datagen/test_workload.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/datagen/test_workload.cpp.o.d"
  "/root/repo/tests/integration/test_end_to_end.cpp" "tests/CMakeFiles/xrpl_tests.dir/integration/test_end_to_end.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/integration/test_end_to_end.cpp.o.d"
  "/root/repo/tests/integration/test_full_system.cpp" "tests/CMakeFiles/xrpl_tests.dir/integration/test_full_system.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/integration/test_full_system.cpp.o.d"
  "/root/repo/tests/ledger/test_amount.cpp" "tests/CMakeFiles/xrpl_tests.dir/ledger/test_amount.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/ledger/test_amount.cpp.o.d"
  "/root/repo/tests/ledger/test_codec.cpp" "tests/CMakeFiles/xrpl_tests.dir/ledger/test_codec.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/ledger/test_codec.cpp.o.d"
  "/root/repo/tests/ledger/test_ledger.cpp" "tests/CMakeFiles/xrpl_tests.dir/ledger/test_ledger.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/ledger/test_ledger.cpp.o.d"
  "/root/repo/tests/ledger/test_ledger_history.cpp" "tests/CMakeFiles/xrpl_tests.dir/ledger/test_ledger_history.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/ledger/test_ledger_history.cpp.o.d"
  "/root/repo/tests/ledger/test_transaction.cpp" "tests/CMakeFiles/xrpl_tests.dir/ledger/test_transaction.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/ledger/test_transaction.cpp.o.d"
  "/root/repo/tests/ledger/test_trustline.cpp" "tests/CMakeFiles/xrpl_tests.dir/ledger/test_trustline.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/ledger/test_trustline.cpp.o.d"
  "/root/repo/tests/ledger/test_types.cpp" "tests/CMakeFiles/xrpl_tests.dir/ledger/test_types.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/ledger/test_types.cpp.o.d"
  "/root/repo/tests/node/test_node.cpp" "tests/CMakeFiles/xrpl_tests.dir/node/test_node.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/node/test_node.cpp.o.d"
  "/root/repo/tests/node/test_tx_queue.cpp" "tests/CMakeFiles/xrpl_tests.dir/node/test_tx_queue.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/node/test_tx_queue.cpp.o.d"
  "/root/repo/tests/paths/test_engine_properties.cpp" "tests/CMakeFiles/xrpl_tests.dir/paths/test_engine_properties.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/paths/test_engine_properties.cpp.o.d"
  "/root/repo/tests/paths/test_order_book.cpp" "tests/CMakeFiles/xrpl_tests.dir/paths/test_order_book.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/paths/test_order_book.cpp.o.d"
  "/root/repo/tests/paths/test_path_finder.cpp" "tests/CMakeFiles/xrpl_tests.dir/paths/test_path_finder.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/paths/test_path_finder.cpp.o.d"
  "/root/repo/tests/paths/test_payment_engine.cpp" "tests/CMakeFiles/xrpl_tests.dir/paths/test_payment_engine.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/paths/test_payment_engine.cpp.o.d"
  "/root/repo/tests/paths/test_replay.cpp" "tests/CMakeFiles/xrpl_tests.dir/paths/test_replay.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/paths/test_replay.cpp.o.d"
  "/root/repo/tests/paths/test_trust_graph.cpp" "tests/CMakeFiles/xrpl_tests.dir/paths/test_trust_graph.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/paths/test_trust_graph.cpp.o.d"
  "/root/repo/tests/paths/test_widest_path.cpp" "tests/CMakeFiles/xrpl_tests.dir/paths/test_widest_path.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/paths/test_widest_path.cpp.o.d"
  "/root/repo/tests/util/test_base58.cpp" "tests/CMakeFiles/xrpl_tests.dir/util/test_base58.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/util/test_base58.cpp.o.d"
  "/root/repo/tests/util/test_hex.cpp" "tests/CMakeFiles/xrpl_tests.dir/util/test_hex.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/util/test_hex.cpp.o.d"
  "/root/repo/tests/util/test_ripple_time.cpp" "tests/CMakeFiles/xrpl_tests.dir/util/test_ripple_time.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/util/test_ripple_time.cpp.o.d"
  "/root/repo/tests/util/test_rng.cpp" "tests/CMakeFiles/xrpl_tests.dir/util/test_rng.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/util/test_rng.cpp.o.d"
  "/root/repo/tests/util/test_sha256.cpp" "tests/CMakeFiles/xrpl_tests.dir/util/test_sha256.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/util/test_sha256.cpp.o.d"
  "/root/repo/tests/util/test_table.cpp" "tests/CMakeFiles/xrpl_tests.dir/util/test_table.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/util/test_table.cpp.o.d"
  "/root/repo/tests/util/test_textplot.cpp" "tests/CMakeFiles/xrpl_tests.dir/util/test_textplot.cpp.o" "gcc" "tests/CMakeFiles/xrpl_tests.dir/util/test_textplot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/xrpl_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xrpl_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xrpl_node.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xrpl_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xrpl_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xrpl_paths.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xrpl_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/xrpl_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
