#!/usr/bin/env python3
"""Repo-specific linter — rules the compiler can't enforce.

Stdlib-only; runs as a ctest test (`lint.tree`, `lint.selftest`), via
`cmake --build build --target lint`, and from tools/tier1.sh.

All comment/string awareness comes from the shared C++ tokenizer
(tools/analyze/cxxtok.py): content rules scan tokenizer-stripped
lines, and [pragma-once]/[include-order] see only genuine
preprocessor directives — a commented-out `#include` or a raw string
spelling `#pragma once` no longer fools them.

Rules (rule ids in brackets):

  [no-rand]             rand()/std::rand() anywhere outside src/util/rng.*
                        — all randomness flows through util::Rng so every
                        figure is reproducible from a seed.
  [no-naked-atoi]       atoi/atol/atoll — they ignore trailing garbage and
                        saturate silently; use std::from_chars (see
                        util::env_u64, the PR-1 lesson).
  [no-raw-thread]       std::thread/std::jthread/std::async anywhere outside
                        src/exec — scans run on exec::ThreadPool, whose
                        ordered chunk merge keeps every result independent
                        of the thread count.
  [no-adhoc-timing]     naming a std::chrono clock outside src/obs —
                        every duration flows through obs::Stopwatch (and
                        into the metrics registry), so timing stays
                        observable instead of printed ad hoc.
  [no-adhoc-env]        env_u64/env_flag/env_string/env_present/getenv
                        outside src/util — every XRPL_* knob is declared
                        once in util::Options (options.cpp's kOptionTable),
                        which keeps the README table, the strict parsers,
                        and the call sites in one place.
  [no-adhoc-io]         raw file I/O (fopen family, std::ofstream/
                        std::ifstream/std::fstream, std::filesystem
                        streams) outside src/util and src/snap — every
                        byte on disk goes through util::file_io's
                        audited helpers (atomic writes, whole-file
                        reads), which is what lets the dataset cache
                        treat existence as validity.
  [no-adhoc-rng]        constructing util::Rng directly (`util::Rng r(seed)`,
                        `util::Rng{seed}`, temporaries) outside src/util and
                        tests — generators must come off the RngStream
                        derivation tree (`stream.derive(...).rng()`) so
                        streams never collide and sharded generation stays
                        reproducible. Binding a derived generator
                        (`util::Rng r = stream.rng();`), references, and
                        uninitialized members stay legal; a deliberate root
                        carries a `// rng-root` comment on the line.
  [fingerprint-domain]  the first FingerprintHasher::mix() of each fold
                        group must carry a field domain tag (a `k*Domain`
                        constant or a precomputed `*word*` table) so
                        feature subsets can never collide structurally.
  [pragma-once]         every header carries #pragma once.
  [no-using-namespace]  headers must not `using namespace` (it leaks into
                        every includer).
  [include-order]       quoted includes are project-relative (resolve
                        against src/ or the including file's directory,
                        never "../"); project headers are never included
                        with <>; src/*.cpp include their own header first;
                        each contiguous include run is one style and
                        lexicographically sorted.

Exit status: 0 clean, 1 violations found, 2 usage/internal error.
"""

import argparse
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO))

from tools.analyze import cxxtok  # noqa: E402  (path bootstrap above)

SCAN_ROOTS = ("src", "tests", "bench", "examples")
FIXTURES = REPO / "tests" / "lint" / "fixtures"
ANALYZE_FIXTURES = REPO / "tests" / "analyze" / "fixtures"
HEADER_SUFFIXES = {".hpp", ".h"}
SOURCE_SUFFIXES = {".hpp", ".h", ".cpp", ".cc"}

RAND_RE = re.compile(r"(?<![\w:.])(?:std::)?rand\s*\(")
ATOI_RE = re.compile(r"(?<![\w:.])(?:std::)?(?:atoi|atol|atoll)\s*\(")
# hardware_concurrency is a pure width probe (util::Options uses it for
# the XRPL_THREADS default), not thread creation — the lookahead lets
# it through.
THREAD_RE = re.compile(
    r"(?<![\w:])std\s*::\s*"
    r"(?:jthread|async|thread(?!\s*::\s*hardware_concurrency))\b")
CHRONO_CLOCK_RE = re.compile(
    r"std\s*::\s*chrono\s*::\s*"
    r"(?:steady_clock|system_clock|high_resolution_clock)\b")
ENV_RE = re.compile(
    r"(?<![\w:])(?:(?:util\s*::\s*)?env_(?:u64|flag|string|present)"
    r"|(?:std\s*::\s*)?getenv)\s*\(")
# A direct util::Rng construction: optional variable name, then a
# paren/brace initializer. `util::Rng r = ...`, `util::Rng&`, and bare
# member declarations deliberately don't match; `(?!\w)` keeps
# util::RngStream out.
ADHOC_RNG_RE = re.compile(r"util\s*::\s*Rng(?!\w)\s*(?:[A-Za-z_]\w*\s*)?[({]")
# Raw file I/O: the C stream openers, and naming any std stream class
# that can touch the filesystem. `<fstream>` include lines don't reach
# this rule (content rules skip preprocessor directives).
ADHOC_IO_RE = re.compile(
    r"(?<![\w:])(?:std\s*::\s*)?(?:fopen|freopen|fdopen)\s*\("
    r"|(?<![\w:])std\s*::\s*[io]?fstream\b"
    r"|(?<![\w:])std\s*::\s*basic_[io]?fstream\b")
USING_NAMESPACE_RE = re.compile(r"^\s*using\s+namespace\b")
MIX_RE = re.compile(r"\.\s*mix\s*\(")
DOMAIN_TAG_RE = re.compile(r"k\w*Domain\b|word")


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        rel = self.path.relative_to(REPO) if self.path.is_absolute() else self.path
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


def check_content_rules(path, lines, raw_lines, in_src):
    rng_exempt = path.name in ("rng.hpp", "rng.cpp") and "util" in path.parts
    thread_exempt = (REPO / "src" / "exec") in path.parents
    # src/obs owns the one wall-clock site (obs/stopwatch.hpp).
    timing_exempt = (REPO / "src" / "obs") in path.parents
    # src/util owns the environment: the strict parsers (env.*) and the
    # typed registry (options.*). Tests may probe the parsers directly;
    # fixtures are linted as product code.
    env_exempt = (
        (REPO / "src" / "util") in path.parents
        or ((REPO / "tests") in path.parents and FIXTURES not in path.parents))
    # Tests may seed scratch generators freely; the derivation-tree
    # discipline binds src/bench/examples. Fixtures are linted as if
    # they were product code so the self-test can exercise the rule.
    adhoc_rng_exempt = (
        (REPO / "src" / "util") in path.parents
        or ((REPO / "tests") in path.parents and FIXTURES not in path.parents))
    # util::file_io is the audited opener; src/snap is the persistence
    # layer built directly on it. Everything else (tests and benches
    # included) goes through those helpers.
    io_exempt = ((REPO / "src" / "util") in path.parents
                 or (REPO / "src" / "snap") in path.parents)
    for lineno, line in enumerate(lines, 1):
        if not rng_exempt and RAND_RE.search(line):
            yield Violation(path, lineno, "no-rand",
                            "rand() outside util/rng — use util::Rng so "
                            "results stay seed-reproducible")
        if ATOI_RE.search(line):
            yield Violation(path, lineno, "no-naked-atoi",
                            "atoi-family parse — use std::from_chars with "
                            "full-string validation (cf. util::env_u64)")
        if not thread_exempt and THREAD_RE.search(line):
            yield Violation(path, lineno, "no-raw-thread",
                            "raw std::thread/std::async outside src/exec — "
                            "run chunked scans on exec::ThreadPool so "
                            "results stay thread-count independent")
        if not timing_exempt and CHRONO_CLOCK_RE.search(line):
            yield Violation(path, lineno, "no-adhoc-timing",
                            "raw std::chrono clock outside src/obs — time "
                            "with obs::Stopwatch / obs::ScopedTimer so "
                            "durations land in the metrics registry")
        if not env_exempt and ENV_RE.search(line):
            yield Violation(path, lineno, "no-adhoc-env",
                            "direct environment read outside src/util — "
                            "declare the knob in util::Options and read the "
                            "typed field off util::options()")
        if (not io_exempt and not line.lstrip().startswith("#")
                and ADHOC_IO_RE.search(line)):
            yield Violation(path, lineno, "no-adhoc-io",
                            "raw file I/O outside src/util + src/snap — "
                            "read/write through util::file_io so every "
                            "artifact write is atomic and auditable")
        if (not adhoc_rng_exempt and ADHOC_RNG_RE.search(line)
                and "rng-root" not in raw_lines[lineno - 1]):
            yield Violation(path, lineno, "no-adhoc-rng",
                            "ad-hoc util::Rng construction — derive the "
                            "generator from an RngStream "
                            "(stream.derive(...).rng()) or mark a deliberate "
                            "root with `// rng-root`")
    if path.suffix in HEADER_SUFFIXES:
        for lineno, line in enumerate(lines, 1):
            if USING_NAMESPACE_RE.search(line):
                yield Violation(path, lineno, "no-using-namespace",
                                "`using namespace` in a header leaks into "
                                "every includer")
    if in_src:
        yield from check_fingerprint_domains(path, lines)


def check_fingerprint_domains(path, lines):
    """Each contiguous run of mix() statements is one field fold; its
    FIRST statement must reference a domain tag (k*Domain) or a
    precomputed tagged word table (*word*)."""
    prev_end = None  # last line (0-based) of the previous mix statement
    i = 0
    while i < len(lines):
        if MIX_RE.search(lines[i]):
            # The statement runs to the terminating ';'.
            end = i
            statement = lines[i]
            while ";" not in statement and end + 1 < len(lines) and end - i < 4:
                end += 1
                statement += lines[end]
            new_group = True
            if prev_end is not None:
                between = lines[prev_end + 1:i]
                new_group = any(l.strip() for l in between)
            if new_group and not DOMAIN_TAG_RE.search(statement):
                yield Violation(path, i + 1, "fingerprint-domain",
                                "first mix() of a fold group carries no "
                                "field domain tag (k*Domain / tagged word "
                                "table)")
            prev_end = end
            i = end + 1
            continue
        i += 1


def check_header_rules(path, raw_text):
    if path.suffix not in HEADER_SUFFIXES:
        return
    if not cxxtok.has_pragma_once(raw_text):
        yield Violation(path, 1, "pragma-once", "header lacks #pragma once")


def check_include_rules(path, raw_text):
    # Genuine directives only — the tokenizer already discarded
    # commented-out includes and `#include` spelled inside raw strings.
    includes = cxxtok.extract_includes(raw_text)  # (lineno, style, target)

    for lineno, style, target in includes:
        if style == '"':
            if ".." in target.split("/"):
                yield Violation(path, lineno, "include-order",
                                f'"{target}" climbs directories — include '
                                "project headers relative to src/")
            elif not ((REPO / "src" / target).exists() or
                      (REPO / target).exists() or
                      (path.parent / target).exists()):
                # src/ is every target's include dir; bench/example
                # binaries additionally get the repo root (for
                # "bench/common.hpp").
                yield Violation(path, lineno, "include-order",
                                f'"{target}" resolves against neither src/, '
                                "the repo root, nor the including directory")
        else:
            if (REPO / "src" / target).exists():
                yield Violation(path, lineno, "include-order",
                                f"project header <{target}> must use "
                                'quotes ("...")')

    # src/*.cpp: own header first.
    try:
        rel = path.relative_to(REPO / "src")
    except ValueError:
        rel = None
    if rel is not None and path.suffix == ".cpp" and includes:
        own = rel.with_suffix(".hpp").as_posix()
        lineno, style, target = includes[0]
        if style != '"' or target != own:
            yield Violation(path, lineno, "include-order",
                            f'first include must be the own header "{own}"')

    # Contiguous runs: single style, sorted.
    run = []
    for lineno, style, target in includes:
        if run and lineno != run[-1][0] + 1:
            yield from check_run(path, run)
            run = []
        run.append((lineno, style, target))
    if run:
        yield from check_run(path, run)


def check_run(path, run):
    styles = {style for _, style, _ in run}
    if len(styles) > 1:
        yield Violation(path, run[0][0], "include-order",
                        "mixed <> and \"\" includes in one block — separate "
                        "system and project includes with a blank line")
        return
    targets = [target for _, _, target in run]
    if targets != sorted(targets):
        yield Violation(path, run[0][0], "include-order",
                        "include block is not lexicographically sorted")


def lint_file(path, in_src):
    raw_text = path.read_text(encoding="utf-8")
    stripped = cxxtok.stripped_lines(raw_text)
    yield from check_content_rules(path, stripped.splitlines(),
                                   raw_text.splitlines(), in_src)
    yield from check_header_rules(path, raw_text)
    yield from check_include_rules(path, raw_text)


def tree_files():
    for root in SCAN_ROOTS:
        for path in sorted((REPO / root).rglob("*")):
            if path.suffix not in SOURCE_SUFFIXES or not path.is_file():
                continue
            if FIXTURES in path.parents or ANALYZE_FIXTURES in path.parents:
                continue  # deliberately-bad linter/analyzer fixtures
            yield path


def run_tree():
    violations = []
    count = 0
    for path in tree_files():
        count += 1
        in_src = (REPO / "src") in path.parents
        violations.extend(lint_file(path, in_src))
    for v in violations:
        print(v)
    print(f"lint.py: {count} files scanned, {len(violations)} violation(s)")
    return 1 if violations else 0


# Every fixture file maps to the exact rule set it must trigger; a
# clean fixture proves the linter doesn't cry wolf.
SELF_TEST_EXPECTATIONS = {
    "bad_rand.cpp": {"no-rand"},
    "bad_atoi.cpp": {"no-naked-atoi"},
    "bad_header.hpp": {"pragma-once", "no-using-namespace"},
    "bad_fingerprint.cpp": {"fingerprint-domain"},
    "bad_includes.cpp": {"include-order"},
    "bad_thread.cpp": {"no-raw-thread"},
    "bad_adhoc_rng.cpp": {"no-adhoc-rng"},
    "bad_io.cpp": {"no-adhoc-io"},
    "bad_timing.cpp": {"no-adhoc-timing"},
    "bad_env.cpp": {"no-adhoc-env"},
    "bad_raw_pragma.hpp": {"pragma-once"},
    "good.cpp": set(),
    "good_tricky.cpp": set(),
    "good_bom_header.hpp": set(),
}


def run_self_test():
    failures = []
    for name, expected in sorted(SELF_TEST_EXPECTATIONS.items()):
        path = FIXTURES / name
        if not path.exists():
            failures.append(f"{name}: fixture missing")
            continue
        got = {v.rule for v in lint_file(path, in_src=True)}
        if got != expected:
            failures.append(f"{name}: expected rules {sorted(expected)}, "
                            f"got {sorted(got)}")
    for failure in failures:
        print(f"lint.py --self-test: {failure}")
    print(f"lint.py --self-test: {len(SELF_TEST_EXPECTATIONS)} fixtures, "
          f"{len(failures)} failure(s)")
    return 1 if failures else 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--self-test", action="store_true",
                        help="lint tests/lint/fixtures and check each file "
                             "triggers exactly its expected rules")
    args = parser.parse_args()
    return run_self_test() if args.self_test else run_tree()


if __name__ == "__main__":
    sys.exit(main())
