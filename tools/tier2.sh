#!/usr/bin/env bash
# Tier-2 verification: the sanitizer build matrix (DESIGN.md §10).
#
# Runs the linter, then builds the test suite under the asan-ubsan and
# tsan presets (contracts enabled in both) and runs ctest under each.
# Sanitizer findings abort the run: halt_on_error is set so the first
# UB/race/leak fails its test instead of scrolling past.
set -euo pipefail
cd "$(dirname "$0")/.."

python3 tools/lint.py
python3 tools/lint.py --self-test

export ASAN_OPTIONS="detect_leaks=1:halt_on_error=1:strict_string_checks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export TSAN_OPTIONS="halt_on_error=1"

for preset in asan-ubsan tsan; do
    echo "=== tier2: preset ${preset} ==="
    cmake --preset "${preset}"
    # Only the test binary: benches/examples would triple the build for
    # no extra sanitizer coverage.
    cmake --build --preset "${preset}" --target xrpl_tests -j "$(nproc)"
    ctest --preset "${preset}" -j "$(nproc)"
    echo "=== tier2: ${preset} sweep clean (all ctest suites green) ==="
done

echo "tier2: OK — lint clean, asan-ubsan clean, tsan clean"
