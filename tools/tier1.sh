#!/usr/bin/env bash
# Tier-1 verification: lint, configure, build, and run the full test
# suite. Warnings are errors here; the plain `cmake -B build` path
# stays permissive for exotic compilers.
set -euo pipefail
cd "$(dirname "$0")/.."
python3 tools/lint.py
python3 tools/analyze --out build/analyze
cmake -B build -S . -DXRPL_WERROR=ON
cmake --build build -j
cd build && ctest --output-on-failure -j
# The determinism suites prove thread-count independence from INSIDE
# one process (ScopedParallelism); re-running them under explicit
# XRPL_THREADS pins also covers the env-driven shared-pool setup the
# benches use. Widths 1 and 8 bracket serial and oversubscribed.
# ReplayParityTest rides along: indexed-vs-scan path-engine parity
# (paths, ReplayStats, nodes_expanded, golden Table II) must hold at
# every pool width too.
for width in 1 8; do
  echo "--- determinism + replay parity at XRPL_THREADS=${width} ---"
  XRPL_THREADS="${width}" ./tests/xrpl_tests \
    --gtest_filter='DeterminismTest.*:ShardedDeterminismTest.*:ShardedSlicingTest.*:ObsParityTest.*:ReplayParityTest.*' \
    --gtest_brief=1
done
# XCOL round-trip determinism: the snapshot a width-1 process saves
# must be byte-identical to a width-8 one, and both must load back to
# the same fingerprint (save -> load -> fingerprint; DESIGN.md §15).
echo "--- xcol round-trip determinism (widths 1 and 8) ---"
snap_dir=$(mktemp -d)
for width in 1 8; do
  XRPL_THREADS="${width}" \
    ./examples/snapctl gen "${snap_dir}/w${width}.xcol" 4000 > /dev/null
done
cmp "${snap_dir}/w1.xcol" "${snap_dir}/w8.xcol"
fp1=$(XRPL_THREADS=1 ./examples/snapctl verify "${snap_dir}/w1.xcol")
fp8=$(XRPL_THREADS=8 ./examples/snapctl verify "${snap_dir}/w8.xcol")
[ "${fp1#OK *: }" = "${fp8#OK *: }" ]
echo "xcol round-trip OK: ${fp1#OK *: }"
rm -rf "${snap_dir}"
# Observability smoke run: one real bench through the harness must
# emit a well-formed BENCH_<name>.json with live metrics and phases.
# Runs twice against a dataset cache: the first pass generates and
# publishes, the second must be served from the snapshot
# (snap.cache.hits >= 1) with byte-identical console output.
echo "--- obs smoke run (fig4 via bench harness, cold + warm cache) ---"
obs_dir=$(mktemp -d)
XRPL_OBS=1 XRPL_BENCH_PAYMENTS=2000 XRPL_BENCH_JSON_DIR="${obs_dir}" \
  XRPL_DATASET_DIR="${obs_dir}/datasets" \
  ./bench/fig4_currencies > "${obs_dir}/cold.out"
XRPL_OBS=1 XRPL_BENCH_PAYMENTS=2000 XRPL_BENCH_JSON_DIR="${obs_dir}" \
  XRPL_DATASET_DIR="${obs_dir}/datasets" \
  ./bench/fig4_currencies > "${obs_dir}/warm.out"
cmp "${obs_dir}/cold.out" "${obs_dir}/warm.out"
python3 - "${obs_dir}/BENCH_fig4_currencies.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as fh:
    report = json.load(fh)
assert sorted(report) == ["bench", "obs", "wall_seconds"], sorted(report)
assert report["bench"] == "fig4_currencies"
assert report["wall_seconds"] > 0
obs = report["obs"]
assert obs["enabled"] is True
assert obs["counters"].get("analytics.scans", 0) > 0, obs["counters"]
# The warm pass (this JSON is the second run's) served the history
# from the XCOL cache instead of regenerating it.
assert obs["counters"].get("snap.cache.hits", 0) >= 1, obs["counters"]
assert obs["counters"].get("snap.decode.rows", 0) > 0, obs["counters"]
print("obs smoke run OK:", len(obs["counters"]), "counters,",
      len(obs["histograms"]), "histograms, warm pass cache-served")
EOF
rm -rf "${obs_dir}"
