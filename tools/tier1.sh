#!/usr/bin/env bash
# Tier-1 verification: lint, configure, build, and run the full test
# suite. Warnings are errors here; the plain `cmake -B build` path
# stays permissive for exotic compilers.
set -euo pipefail
cd "$(dirname "$0")/.."
python3 tools/lint.py
cmake -B build -S . -DXRPL_WERROR=ON
cmake --build build -j
cd build && ctest --output-on-failure -j
