#!/usr/bin/env bash
# Tier-1 verification: lint, configure, build, and run the full test
# suite. Warnings are errors here; the plain `cmake -B build` path
# stays permissive for exotic compilers.
set -euo pipefail
cd "$(dirname "$0")/.."
python3 tools/lint.py
python3 tools/analyze --out build/analyze
cmake -B build -S . -DXRPL_WERROR=ON
cmake --build build -j
cd build && ctest --output-on-failure -j
# The determinism suites prove thread-count independence from INSIDE
# one process (ScopedParallelism); re-running them under explicit
# XRPL_THREADS pins also covers the env-driven shared-pool setup the
# benches use. Widths 1 and 8 bracket serial and oversubscribed.
for width in 1 8; do
  echo "--- determinism suite at XRPL_THREADS=${width} ---"
  XRPL_THREADS="${width}" ./tests/xrpl_tests \
    --gtest_filter='DeterminismTest.*:ShardedDeterminismTest.*:ShardedSlicingTest.*:ObsParityTest.*' \
    --gtest_brief=1
done
# Observability smoke run: one real bench through the harness must
# emit a well-formed BENCH_<name>.json with live metrics and phases.
echo "--- obs smoke run (fig4 via bench harness) ---"
obs_dir=$(mktemp -d)
XRPL_OBS=1 XRPL_BENCH_PAYMENTS=2000 XRPL_BENCH_JSON_DIR="${obs_dir}" \
  ./bench/fig4_currencies > /dev/null
python3 - "${obs_dir}/BENCH_fig4_currencies.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as fh:
    report = json.load(fh)
assert sorted(report) == ["bench", "obs", "wall_seconds"], sorted(report)
assert report["bench"] == "fig4_currencies"
assert report["wall_seconds"] > 0
obs = report["obs"]
assert obs["enabled"] is True
assert obs["counters"].get("datagen.payments", 0) > 0, obs["counters"]
assert obs["counters"].get("analytics.scans", 0) > 0, obs["counters"]
assert any(c["name"] == "datagen.generate" for c in obs["phases"]["children"])
print("obs smoke run OK:", len(obs["counters"]), "counters,",
      len(obs["histograms"]), "histograms")
EOF
rm -rf "${obs_dir}"
