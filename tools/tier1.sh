#!/usr/bin/env bash
# Tier-1 verification: lint, configure, build, and run the full test
# suite. Warnings are errors here; the plain `cmake -B build` path
# stays permissive for exotic compilers.
set -euo pipefail
cd "$(dirname "$0")/.."
python3 tools/lint.py
cmake -B build -S . -DXRPL_WERROR=ON
cmake --build build -j
cd build && ctest --output-on-failure -j
# The determinism suites prove thread-count independence from INSIDE
# one process (ScopedParallelism); re-running them under explicit
# XRPL_THREADS pins also covers the env-driven shared-pool setup the
# benches use. Widths 1 and 8 bracket serial and oversubscribed.
for width in 1 8; do
  echo "--- determinism suite at XRPL_THREADS=${width} ---"
  XRPL_THREADS="${width}" ./tests/xrpl_tests \
    --gtest_filter='DeterminismTest.*:ShardedDeterminismTest.*:ShardedSlicingTest.*' \
    --gtest_brief=1
done
