#!/usr/bin/env bash
# clang-tidy over src/ — zero-tolerance ratchet.
#
#   tools/run_tidy.sh [build-dir]
#
# The build dir must hold a compile_commands.json (the top-level
# CMakeLists sets CMAKE_EXPORT_COMPILE_COMMANDS). There is no baseline
# file: the tree carries no accepted clang-tidy debt, WarningsAsErrors
# is '*' in .clang-tidy, and ANY diagnostic fails the gate. A check
# that misfires is disabled in .clang-tidy with a written reason —
# never suppressed by matching its output.
#
# Exits 0 when clean, 1 on any diagnostic, 2 on usage error, and 0
# with a notice when clang-tidy is not installed (the container bakes
# in only the gcc toolchain; the gate must not brick tier scripts
# there).
set -euo pipefail
cd "$(dirname "$0")/.."
build_dir="${1:-build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "run_tidy.sh: clang-tidy not found — skipping (install LLVM to enable)"
    exit 0
fi
if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
    echo "run_tidy.sh: ${build_dir}/compile_commands.json missing — configure first" >&2
    exit 2
fi

out="$(clang-tidy -p "${build_dir}" --quiet src/*/*.cpp 2>/dev/null || true)"
diags="$(printf '%s\n' "${out}" | grep -E 'warning:|error:' || true)"

if [[ -n "${diags}" ]]; then
    printf '%s\n' "${out}"
    echo "run_tidy.sh: clang-tidy diagnostics — fix the code or disable the check in .clang-tidy with a reason" >&2
    exit 1
fi
echo "run_tidy.sh: clean"
