#!/usr/bin/env bash
# clang-tidy over src/, filtered through tools/tidy_baseline.txt.
#
#   tools/run_tidy.sh [build-dir]
#
# The build dir must hold a compile_commands.json (the top-level
# CMakeLists sets CMAKE_EXPORT_COMPILE_COMMANDS). Exits 0 when every
# diagnostic is baselined, 1 when new diagnostics appear, and 0 with a
# notice when clang-tidy is not installed (the container bakes in only
# the gcc toolchain; the gate must not brick tier scripts there).
set -euo pipefail
cd "$(dirname "$0")/.."
build_dir="${1:-build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "run_tidy.sh: clang-tidy not found — skipping (install LLVM to enable)"
    exit 0
fi
if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
    echo "run_tidy.sh: ${build_dir}/compile_commands.json missing — configure first" >&2
    exit 2
fi

# Baseline = non-comment, non-blank substrings.
mapfile -t baseline < <(grep -v '^[[:space:]]*#' tools/tidy_baseline.txt | grep -v '^[[:space:]]*$' || true)

out="$(clang-tidy -p "${build_dir}" --quiet src/*/*.cpp 2>/dev/null || true)"

new=""
while IFS= read -r line; do
    [[ -z "${line}" ]] && continue
    suppressed=0
    for entry in "${baseline[@]:-}"; do
        [[ -n "${entry}" && "${line}" == *"${entry}"* ]] && { suppressed=1; break; }
    done
    [[ ${suppressed} -eq 0 ]] && new+="${line}"$'\n'
done < <(printf '%s\n' "${out}" | grep -E 'warning:|error:' || true)

if [[ -n "${new}" ]]; then
    printf '%s' "${new}"
    echo "run_tidy.sh: new clang-tidy diagnostics (not in tools/tidy_baseline.txt)" >&2
    exit 1
fi
echo "run_tidy.sh: clean (baseline: ${#baseline[@]} entr(y/ies))"
