"""A real C++ tokenizer — comment, string, raw-string, and char-literal
aware — shared by tools/analyze (the static analyzer) and tools/lint.py.

This exists because line regexes cannot tell a commented-out
`#include` from a live one, or `#pragma once` inside a raw string from
the directive. Everything both tools know about C++ source flows
through `tokenize()`:

  * `stripped_lines(text)`   — comments and literal contents blanked,
                               line structure preserved (content rules).
  * `extract_includes(text)` — genuine #include directives only.
  * `has_pragma_once(text)`  — a genuine `#pragma once` directive,
                               tolerant of a BOM or leading comments.
  * `comment_lines(text)`    — line -> comment text, for annotation
                               grammars (`// rng-root`,
                               `// analyze-shared: <reason>`).

Token kinds: id, num, str, raw, chr, comment, punct. Each token knows
its 1-based line and its [start, end) span in the source, so callers
can slice the original text (include targets) or blank it (stripping).

Stdlib-only, like everything under tools/.
"""

from collections import namedtuple

Tok = namedtuple("Tok", "kind text line start end")

# Longest-match first. Only operators a pass cares to see as one token
# need to be here; everything else falls through to single chars.
_PUNCTS = (
    "<<=", ">>=", "...", "->*", "::", "->", "++", "--", "+=", "-=", "*=",
    "/=", "%=", "&=", "|=", "^=", "==", "!=", "<=", ">=", "&&", "||",
    "<<", ">>",
)

_STR_PREFIXES = ("u8", "u", "U", "L")


def _id_start(c):
    return c.isalpha() or c == "_"


def _id_char(c):
    return c.isalnum() or c == "_"


def tokenize(text):
    """Tokenize C++ source. Never raises on malformed input: an
    unterminated literal or comment simply runs to end of file."""
    if text.startswith("\ufeff"):  # BOM: invisible to the language
        text = " " + text[1:]
    toks = []
    i, n, line = 0, len(text), 1

    def emit(kind, start, end):
        toks.append(Tok(kind, text[start:end], line, start, end))

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            line += 1
            i += 1
            continue
        if c.isspace():
            i += 1
            continue
        if c == "/" and nxt == "/":
            start = i
            while i < n and text[i] != "\n":
                i += 1
            emit("comment", start, i)
            continue
        if c == "/" and nxt == "*":
            start, start_line = i, line
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and
                                 text[i + 1] == "/"):
                if text[i] == "\n":
                    line += 1
                i += 1
            i = min(i + 2, n)
            toks.append(Tok("comment", text[start:i], start_line, start, i))
            continue
        # String/char prefixes and raw strings: R"delim( ... )delim".
        if _id_start(c):
            start = i
            while i < n and _id_char(text[i]):
                i += 1
            word = text[start:i]
            is_raw = (word in ("R", "u8R", "uR", "UR", "LR") and
                      i < n and text[i] == '"')
            is_str = (word in _STR_PREFIXES and i < n and
                      text[i] in "\"'")
            if is_raw:
                # R"delim( ... )delim"
                j = i + 1
                while j < n and text[j] not in "(\n":
                    j += 1
                delim = text[i + 1:j]
                close = ")" + delim + '"'
                end = text.find(close, j)
                end = n if end == -1 else end + len(close)
                start_line = line
                line += text.count("\n", start, end)
                toks.append(Tok("raw", text[start:end], start_line, start, end))
                i = end
                continue
            if is_str:
                # Fall through to quote scanning below with the prefix
                # folded into the literal token.
                quote = text[i]
                j = _scan_quoted(text, i, quote)
                start_line = line
                line += text.count("\n", start, j)
                kind = "str" if quote == '"' else "chr"
                toks.append(Tok(kind, text[start:j], start_line, start, j))
                i = j
                continue
            emit("id", start, i)
            continue
        if c == '"' or c == "'":
            # A ' right after an identifier/number was consumed there;
            # here it begins a literal.
            start = i
            j = _scan_quoted(text, i, c)
            start_line = line
            line += text.count("\n", start, j)
            toks.append(Tok("str" if c == '"' else "chr",
                            text[start:j], start_line, start, j))
            i = j
            continue
        if c.isdigit() or (c == "." and nxt.isdigit()):
            start = i
            i += 1
            while i < n:
                ch = text[i]
                if ch.isalnum() or ch in "._'":
                    i += 1
                elif ch in "+-" and text[i - 1] in "eEpP":
                    i += 1
                else:
                    break
            emit("num", start, i)
            continue
        matched = False
        for op in _PUNCTS:
            if text.startswith(op, i):
                emit("punct", i, i + len(op))
                i += len(op)
                matched = True
                break
        if not matched:
            emit("punct", i, i + 1)
            i += 1
    return toks


def _scan_quoted(text, i, quote):
    """Scan a quoted literal starting at the quote; return the index
    one past the closing quote. A newline ends the literal (macro line
    continuations and broken code must not swallow the file)."""
    n = len(text)
    j = i + 1
    while j < n:
        ch = text[j]
        if ch == "\\":
            j += 2
            continue
        if ch == quote:
            return j + 1
        if ch == "\n":
            return j  # unterminated: stop at the line break
        j += 1
    return n


def stripped_lines(text):
    """The source with comments and string/char/raw-string contents
    blanked to spaces, preserving line structure — the canonical input
    for content rules that must not fire on prose or test data."""
    out = list(text[1:] if text.startswith("\ufeff") else text)
    if text.startswith("\ufeff"):
        out.insert(0, " ")
    for tok in tokenize(text):
        if tok.kind in ("comment", "str", "raw", "chr"):
            for k in range(tok.start, min(tok.end, len(out))):
                if out[k] != "\n":
                    out[k] = " "
    return "".join(out)


def _directive_starts(toks):
    """Indices of '#' tokens that begin a preprocessor directive (first
    token on their line, comments aside)."""
    starts = []
    prev_code_line = 0
    for idx, tok in enumerate(toks):
        if tok.kind == "comment":
            continue
        if tok.kind == "punct" and tok.text == "#" and tok.line != prev_code_line:
            starts.append(idx)
        prev_code_line = tok.line
    return starts


def _next_code(toks, idx):
    idx += 1
    while idx < len(toks) and toks[idx].kind == "comment":
        idx += 1
    return idx


def extract_includes(text):
    """[(lineno, style, target)] for genuine #include directives:
    style is '\"' or '<'. Commented-out includes and includes inside
    (raw) string literals never appear here."""
    toks = tokenize(text)
    includes = []
    for start in _directive_starts(toks):
        j = _next_code(toks, start)
        if j >= len(toks) or toks[j].text != "include":
            continue
        j = _next_code(toks, j)
        if j >= len(toks):
            continue
        tok = toks[j]
        if tok.kind == "str":
            includes.append((tok.line, '"', tok.text.strip('"')))
        elif tok.text == "<":
            k = j
            while k < len(toks) and toks[k].text != ">" and \
                    toks[k].line == tok.line:
                k += 1
            if k < len(toks) and toks[k].text == ">":
                target = text[toks[j].end:toks[k].start]
                includes.append((tok.line, "<", target))
    return includes


def has_pragma_once(text):
    """True iff the file carries a genuine `#pragma once` directive —
    a BOM or preceding comments don't matter, a raw string containing
    the words does not count."""
    toks = tokenize(text)
    for start in _directive_starts(toks):
        j = _next_code(toks, start)
        if j < len(toks) and toks[j].text == "pragma":
            k = _next_code(toks, j)
            if k < len(toks) and toks[k].text == "once":
                return True
    return False


def comment_lines(text):
    """{lineno: concatenated comment text on that line} — the lookup
    table for line-anchored annotation grammars. Multi-line block
    comments contribute each of their lines."""
    table = {}
    for tok in tokenize(text):
        if tok.kind != "comment":
            continue
        for offset, chunk in enumerate(tok.text.splitlines()):
            lineno = tok.line + offset
            table[lineno] = table.get(lineno, "") + chunk
    return table
