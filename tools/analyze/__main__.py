"""Entry point: `python3 tools/analyze` (the directory) and
`python3 -m tools.analyze` (from the repo root) both land here."""

import sys
from pathlib import Path

# Make `tools.analyze.*` absolute imports resolve no matter how we
# were invoked (directory execution puts tools/analyze itself on
# sys.path, not the repo root).
sys.path.insert(0, str(Path(__file__).resolve().parent.parent.parent))

from tools.analyze.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
