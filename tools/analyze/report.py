"""Shared finding type and the `// analyze-shared` annotation grammar.

Annotation grammar (DESIGN.md §14):

    // analyze-shared: <non-empty reason>

A finding is suppressed when the annotation sits on the flagged line
or the line immediately above it. Every annotation must suppress at
least one finding in its file — a stale annotation (nothing left to
excuse) is itself an error, so the allowlist ratchets down instead of
accreting. The marker without a reason suppresses nothing.
"""

import re

ANNOTATION_RE = re.compile(r"analyze-shared\s*:\s*(\S.*)")
ANNOTATION_MARKER = "analyze-shared"


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class Annotations:
    """Per-file `// analyze-shared:` annotations with use tracking."""

    def __init__(self, comment_table):
        self.reasons = {}  # line -> reason text
        self.malformed = []  # lines carrying the marker but no reason
        for line, text in comment_table.items():
            if ANNOTATION_MARKER not in text:
                continue
            m = ANNOTATION_RE.search(text)
            if m:
                self.reasons[line] = m.group(1).strip()
            else:
                self.malformed.append(line)
        self.used = set()

    def suppresses(self, line):
        """True when `line` (or the line above) carries a reasoned
        annotation; marks that annotation as earning its keep."""
        for candidate in (line, line - 1):
            if candidate in self.reasons:
                self.used.add(candidate)
                return True
        return False

    def stale(self):
        """[(line, why)] for annotations that must be deleted."""
        out = [(line, "suppresses nothing — delete it")
               for line in sorted(set(self.reasons) - self.used)]
        out.extend((line, "has no reason after the colon")
                   for line in sorted(self.malformed))
        return out
