"""Pass 2 — capture-race: shared-mutable captures in parallel bodies.

Every lambda handed to the deterministic-execution entry points —
`exec::parallel_for`, `exec::map_reduce`, `ThreadPool::shared().run`
— executes concurrently on the pool. The determinism contract
(DESIGN.md §11) allows exactly two ways for such a body to produce
output:

  1. disjoint per-slot writes (`out[i] = ...`, the slot indexed by
     state the body owns), and
  2. returning a chunk partial that `map_reduce` folds in chunk order.

This pass flags everything else: a by-reference-captured (or
enclosing-scope `static`) name that the body writes — plain or
compound assignment, increment/decrement, or a known mutating member
call — without going through a subscripted slot. Such a write is a
race, or worse: a thread-count-dependent result that TSan cannot see
because the accesses happen to be atomic.

Deliberately shared state (an order-free obs histogram, a
striped-atomic counter) is allowlisted per line with

    // analyze-shared: <reason>

and a stale annotation is itself an error (report.Annotations).

Heuristics, stated honestly: this is a tokenizer-level analysis, not a
compiler. Names declared inside the body are recognized by the
`<type-ish token> name [=;({]` shape; writes through a function call
(`f(x)` mutating x) are invisible. The committed fixtures pin exactly
what fires and what stays silent.
"""

from tools.analyze import cxxtok
from tools.analyze.report import Finding

# Member calls that mutate their object. `add`, `record`, and `set`
# are the obs metric mutators — shared by design, which is precisely
# why a use inside a parallel body must carry an annotation.
MUTATING_METHODS = {
    "push_back", "emplace_back", "emplace", "insert", "erase", "clear",
    "resize", "pop_back", "assign", "append", "push", "pop", "merge",
    "try_emplace", "add", "record", "set", "store",
}

ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
              "<<=", ">>="}

# Keywords that can precede an identifier without declaring it.
_NON_TYPE_KEYWORDS = {
    "return", "new", "delete", "else", "do", "goto", "case", "throw",
    "co_return", "co_yield", "co_await", "sizeof", "typeid", "not",
    "and", "or",
}


def _code_toks(toks):
    return [t for t in toks if t.kind != "comment"]


def _match_forward(toks, i, open_text, close_text):
    """Index of the token closing the bracket opened at i."""
    depth = 0
    for j in range(i, len(toks)):
        if toks[j].text == open_text:
            depth += 1
        elif toks[j].text == close_text:
            depth -= 1
            if depth == 0:
                return j
    return len(toks) - 1


def _entry_call_sites(toks):
    """Indices of the '(' opening each parallel entry-point call:
    parallel_for(...), map_reduce[<...>](...),
    ThreadPool::shared().run(...)."""
    sites = []
    for i, tok in enumerate(toks):
        if tok.kind != "id":
            continue
        if tok.text == "parallel_for":
            if i + 1 < len(toks) and toks[i + 1].text == "(":
                sites.append(i + 1)
        elif tok.text == "map_reduce":
            j = i + 1
            if j < len(toks) and toks[j].text == "<":
                j = _match_forward(toks, j, "<", ">") + 1
            if j < len(toks) and toks[j].text == "(":
                sites.append(j)
        elif tok.text == "run":
            # ... shared ( ) . run (
            if (i + 1 < len(toks) and toks[i + 1].text == "(" and i >= 4
                    and toks[i - 1].text == "."
                    and toks[i - 2].text == ")"
                    and toks[i - 3].text == "("
                    and toks[i - 4].text == "shared"):
                sites.append(i + 1)
    return sites


def _static_mutables(toks):
    """name -> declaration line for every non-const `static` local /
    file-scope variable declared in this file. Used to catch bodies
    touching function-local statics (shared across ALL threads and
    calls) that a capture list never mentions."""
    names = {}
    i = 0
    while i < len(toks):
        if toks[i].text != "static" or toks[i].kind != "id":
            i += 1
            continue
        j = i + 1
        decl = []
        while j < len(toks) and toks[j].text not in (";", "{", "}"):
            decl.append(toks[j])
            if toks[j].text in ("=", "("):
                break
            j += 1
        if decl and decl[-1].text == "(":
            # `static T f(...)` — a function, not shared state. The
            # tree's static variables all initialize with `=`.
            i = j + 1
            continue
        if decl and decl[-1].text == "=":
            decl = decl[:-1]
        texts = [t.text for t in decl]
        if "const" in texts or "constexpr" in texts or not decl:
            i = j + 1
            continue
        name_tok = decl[-1]
        if name_tok.kind == "id" and name_tok.text not in _NON_TYPE_KEYWORDS:
            names[name_tok.text] = name_tok.line
        i = j + 1
    return names


class Lambda:
    def __init__(self, ref_default, ref_captures, value_captures, params,
                 body, capture_line):
        self.ref_default = ref_default
        self.ref_captures = ref_captures
        self.value_captures = value_captures
        self.params = params
        self.body = body  # token list
        self.capture_line = capture_line

    def captures_by_ref(self, name):
        if name in self.ref_captures:
            return True
        return self.ref_default and name not in self.value_captures


def _parse_lambdas(toks, begin, end):
    """Lambdas appearing as arguments (after '(' or ',') between
    begin and end."""
    lambdas = []
    i = begin
    while i < end:
        if toks[i].text != "[":
            i += 1
            continue
        prev = toks[i - 1].text if i > 0 else "("
        if prev not in ("(", ","):
            i += 1
            continue
        close = _match_forward(toks, i, "[", "]")
        ref_default = False
        ref_caps, val_caps = set(), set()
        j = i + 1
        while j < close:
            if toks[j].text == "&":
                if j + 1 < close and toks[j + 1].kind == "id":
                    ref_caps.add(toks[j + 1].text)
                    j += 2
                else:
                    ref_default = True
                    j += 1
            elif toks[j].kind == "id" and toks[j].text != "this":
                val_caps.add(toks[j].text)
                j += 1
            else:
                j += 1
            # skip init-capture initializers up to the next top-level comma
            if j < close and toks[j].text == "=":
                depth = 0
                while j < close:
                    if toks[j].text in ("(", "[", "{"):
                        depth += 1
                    elif toks[j].text in (")", "]", "}"):
                        depth -= 1
                    elif toks[j].text == "," and depth == 0:
                        break
                    j += 1
            if j < close and toks[j].text == ",":
                j += 1
        params = []
        j = close + 1
        if j < end and toks[j].text == "(":
            params_close = _match_forward(toks, j, "(", ")")
            depth = 0
            last_id = None
            for k in range(j + 1, params_close):
                t = toks[k]
                if t.text in ("(", "<", "["):
                    depth += 1
                elif t.text in (")", ">", "]"):
                    depth -= 1
                elif depth == 0 and t.kind == "id":
                    last_id = t.text
                elif depth == 0 and t.text == "," and last_id:
                    params.append(last_id)
                    last_id = None
            if last_id:
                params.append(last_id)
            j = params_close + 1
        while j < end and toks[j].text != "{":
            j += 1  # mutable/noexcept/-> ret
        if j >= end:
            i = close + 1
            continue
        body_close = _match_forward(toks, j, "{", "}")
        lambdas.append(Lambda(ref_default, ref_caps, val_caps, params,
                              toks[j + 1:body_close], toks[i].line))
        i = body_close + 1
    return lambdas


def _body_declarations(body, params):
    """Names the body owns: parameters plus locals declared inside.
    A declaration is `<id|>|&|*> name` followed by one of = ; ( {,
    plus structured bindings `auto [a, b]` and range-for bindings."""
    declared = set(params)
    for i, tok in enumerate(body):
        if tok.kind != "id" or tok.text in _NON_TYPE_KEYWORDS:
            continue
        nxt = body[i + 1].text if i + 1 < len(body) else ";"
        prev = body[i - 1] if i > 0 else None
        if prev is None:
            continue
        if nxt in ("=", ";", "{", "(", ":") and (
                (prev.kind == "id" and prev.text not in _NON_TYPE_KEYWORDS)
                or prev.text in (">", "&", "*", "&&")):
            declared.add(tok.text)
        # auto [a, b] = ... / for (auto& [k, v] : ...)
        if tok.text == "auto":
            j = i + 1
            while j < len(body) and body[j].text in ("&", "*", "&&", "const"):
                j += 1
            if j < len(body) and body[j].text == "[":
                close = _match_forward(body, j, "[", "]")
                for k in range(j + 1, close):
                    if body[k].kind == "id":
                        declared.add(body[k].text)
    return declared


def _lvalue_base(body, i):
    """Walk left from the operator at body[i] over member chains and
    subscripts; return (base_name or None, saw_subscript)."""
    j = i - 1
    saw_subscript = False
    while j >= 0:
        t = body[j]
        if t.text == "]":
            depth = 0
            while j >= 0:
                if body[j].text == "]":
                    depth += 1
                elif body[j].text == "[":
                    depth -= 1
                    if depth == 0:
                        break
                j -= 1
            saw_subscript = True
            j -= 1
        elif t.kind == "id":
            if j >= 1 and body[j - 1].text in (".", "->"):
                j -= 2
            else:
                return t.text, saw_subscript
        elif t.text == ")":
            return None, saw_subscript  # f(...) = — out of scope
        else:
            return None, saw_subscript
    return None, saw_subscript


def _shared_writes(lam, statics):
    """Yield (line, name, what) for each write in the body to a name
    the body does not own."""
    body = lam.body
    declared = _body_declarations(body, lam.params)

    def is_shared(name):
        if name is None or name in declared:
            return False
        return lam.captures_by_ref(name) or name in statics

    for i, tok in enumerate(body):
        if tok.text in ASSIGN_OPS and tok.kind == "punct":
            base, subscripted = _lvalue_base(body, i)
            if subscripted:
                continue  # disjoint per-slot write: the documented path
            if is_shared(base):
                yield (tok.line, base, f"'{base} {tok.text}' write")
        elif tok.text in ("++", "--"):
            neighbor = None
            if i + 1 < len(body) and body[i + 1].kind == "id":
                neighbor = i + 1
            elif i > 0 and body[i - 1].kind == "id":
                neighbor = i - 1
            if neighbor is None:
                continue
            name = body[neighbor].text
            after = body[neighbor + 1].text if neighbor + 1 < len(body) else ""
            if after == "[":
                continue  # ++slots[i] — subscripted slot
            if is_shared(name):
                yield (tok.line, name, f"'{tok.text}{name}'")
        elif (tok.kind == "id" and tok.text in MUTATING_METHODS
              and i + 1 < len(body) and body[i + 1].text == "("
              and i > 0 and body[i - 1].text in (".", "->")):
            base, subscripted = _lvalue_base(body, i - 1)
            if subscripted:
                continue
            if is_shared(base):
                yield (tok.line, base, f"mutating call '{base}.{tok.text}()'")

    # Any mention of a function-local static inside a parallel body is
    # shared state, written or not — statics outlive the call and are
    # visible to every worker; even a "read" of one that something else
    # mutates is order-dependent.
    for tok in body:
        if tok.kind == "id" and tok.text in statics and tok.text not in declared:
            yield (tok.line, tok.text,
                   f"function-local static '{tok.text}' touched")


def check_file(path, text, annotations):
    """Run the capture pass over one file's source text. `annotations`
    is the file's shared Annotations ledger (the caller reports stale
    entries once, after every pass has had its chance to use them)."""
    toks = _code_toks(cxxtok.tokenize(text))
    statics = _static_mutables(toks)
    findings = []
    seen = set()
    for open_paren in _entry_call_sites(toks):
        close = _match_forward(toks, open_paren, "(", ")")
        # Only statics declared before the call site can be reached.
        call_line = toks[open_paren].line
        visible_statics = {n for n, line in statics.items()
                           if line <= call_line}
        for lam in _parse_lambdas(toks, open_paren + 1, close):
            for line, name, what in _shared_writes(lam, visible_statics):
                key = (line, name)
                if key in seen:
                    continue
                seen.add(key)
                if annotations.suppresses(line):
                    continue
                findings.append(Finding(
                    path, line, "capture-race",
                    f"{what} in a parallel body shares mutable state "
                    "across workers — write per-chunk slots / return a "
                    "partial for the ordered merge, or annotate the "
                    "line with `// analyze-shared: <reason>`"))
    return findings
