"""Pass 1 — layer-graph: the src/ include graph against the declared
module DAG.

The declared architecture (DESIGN.md §14):

    util → {ledger, obs, exec} → snap → core → {consensus, paths,
    analytics, datagen} → node        (tests/bench/examples on top)

snap is the XCOL snapshot codec + dataset cache: it persists what
ledger stores through exec's pool, and datagen (the producer) and the
consumer layers above reach DOWN to it — never the reverse, so a
format change can never ripple below the persistence boundary.

Layer sets are shorthand for "may depend on every module in a lower
layer"; the two deliberate intra-layer edges are declared explicitly
below. Anything else — an upward edge, an undeclared sibling edge, or
a cycle — fails the build, because a stateful dependency smuggled into
a leaf module is one of the two structural ways thread-count can leak
into results (the other is pass 2's shared captures).

Besides the gate, the pass emits a deterministic DOT rendering of the
observed graph and per-module fan-in/fan-out stats (consumed by the
CI artifact upload).
"""

from pathlib import Path

from tools.analyze import cxxtok
from tools.analyze.report import Finding

LAYERS = [
    ["util"],
    ["ledger", "obs", "exec"],
    ["snap"],
    ["core"],
    ["consensus", "paths", "analytics", "datagen"],
    ["node"],
]

# The two intra-layer edges the architecture commits to:
#   exec → ledger   ChunkedView partitions PaymentColumns;
#   exec → obs      the pool records its own batch/queue metrics;
#   datagen → paths the generator drives the payment engine to settle
#                   every synthetic payment it emits.
INTRA_LAYER_EDGES = {
    ("exec", "ledger"),
    ("exec", "obs"),
    ("datagen", "paths"),
}


def allowed_dependencies():
    """module -> set of modules it may include, expanded from the
    layer diagram plus the declared intra-layer edges."""
    allowed = {}
    below = set()
    for layer in LAYERS:
        for module in layer:
            allowed[module] = set(below)
        below.update(layer)
    for src, dst in INTRA_LAYER_EDGES:
        allowed[src].add(dst)
    return allowed


def module_of(rel_path):
    return rel_path.parts[0]


def scan_include_graph(src_root):
    """Walk src_root and return (edges, file_counts, findings) where
    edges maps (from_module, to_module) -> [(relpath, line, target)]."""
    src_root = Path(src_root)
    edges = {}
    file_counts = {}
    for path in sorted(src_root.rglob("*")):
        if path.suffix not in (".hpp", ".h", ".cpp", ".cc") or not path.is_file():
            continue
        rel = path.relative_to(src_root)
        mod = module_of(rel)
        file_counts[mod] = file_counts.get(mod, 0) + 1
        text = path.read_text(encoding="utf-8")
        for line, style, target in cxxtok.extract_includes(text):
            if style != '"':
                continue
            resolved = src_root / target
            if not resolved.exists():
                continue  # lint.py owns include resolution diagnostics
            dst = module_of(Path(target))
            if dst == mod:
                continue
            edges.setdefault((mod, dst), []).append((rel.as_posix(), line, target))
    return edges, file_counts


def check(src_root):
    edges, file_counts = scan_include_graph(src_root)
    allowed = allowed_dependencies()
    findings = []

    for (src, dst), sites in sorted(edges.items()):
        known = src in allowed and dst in allowed
        if known and dst in allowed[src]:
            continue
        for rel, line, target in sites:
            if not known:
                message = (f'include of "{target}" crosses into '
                           f"undeclared module '{dst}'" if dst not in allowed
                           else f"module '{src}' is not in the declared DAG")
            else:
                message = (f'"{target}": {src} → {dst} is not a declared '
                           "edge of the module DAG (DESIGN.md §14) — "
                           "an upward or sibling dependency")
            findings.append(Finding(f"src/{rel}", line, "layer-edge", message))

    for cycle in find_cycles({s: {d for (s2, d) in edges if s2 == s}
                              for s in {s for s, _ in edges}}):
        findings.append(Finding("src", 0, "layer-cycle",
                                "include cycle: " + " → ".join(cycle)))
    return findings, edges, file_counts


def find_cycles(graph):
    """Deterministic list of module cycles (each reported once, from
    its lexicographically smallest node)."""
    cycles = []
    visiting, done = set(), set()

    def visit(node, stack):
        visiting.add(node)
        stack.append(node)
        for succ in sorted(graph.get(node, ())):
            if succ in visiting:
                cycle = stack[stack.index(succ):] + [succ]
                pivot = cycle.index(min(cycle[:-1]))
                normal = cycle[:-1][pivot:] + cycle[:-1][:pivot]
                normal.append(normal[0])
                if normal not in cycles:
                    cycles.append(normal)
            elif succ not in done:
                visit(succ, stack)
        stack.pop()
        visiting.discard(node)
        done.add(node)

    for node in sorted(graph):
        if node not in done:
            visit(node, [])
    return cycles


def to_dot(edges, file_counts):
    """A deterministic GraphViz rendering: modules grouped by layer,
    one edge per module pair labelled with its include-site count."""
    lines = [
        "// Generated by tools/analyze — the OBSERVED src/ include graph.",
        "// Regenerate: cmake --build build --target analyze",
        "digraph include_graph {",
        "  rankdir=TB;",
        '  node [shape=box, fontname="monospace"];',
    ]
    for depth, layer in enumerate(LAYERS):
        members = [m for m in layer if m in file_counts]
        if not members:
            continue
        lines.append(f"  {{ rank=same; // layer {depth}")
        for mod in members:
            lines.append(f'    {mod} [label="{mod}\\n{file_counts[mod]} files"];')
        lines.append("  }")
    for (src, dst), sites in sorted(edges.items()):
        lines.append(f'  {src} -> {dst} [label="{len(sites)}"];')
    lines.append("}")
    return "\n".join(lines) + "\n"


def stats(edges, file_counts):
    """Per-module fan-in/fan-out for the JSON artifact."""
    modules = sorted(set(file_counts) |
                     {s for s, _ in edges} | {d for _, d in edges})
    out = {}
    for mod in modules:
        deps = sorted(d for (s, d) in edges if s == mod)
        dependents = sorted(s for (s, d) in edges if d == mod)
        out[mod] = {
            "files": file_counts.get(mod, 0),
            "fan_out": deps,
            "fan_in": dependents,
            "include_sites_out": sum(len(sites) for (s, _), sites
                                     in edges.items() if s == mod),
        }
    return out
