"""Pass 3 — global-state: mutable namespace-scope variables.

A hidden mutable global is the other channel (besides pass 2's shared
captures) through which thread count or call order can leak into
results: two workers touching it race, and even a serial reader makes
output depend on what ran before. The tree's sanctioned global state
lives in exactly two places — the obs registry (`src/obs/`, interned
striped-atomic metrics, order-free by construction) and `src/util/`
(the options snapshot) — so those directories are exempt; everywhere
else a non-const namespace-scope (or `thread_local`) variable fails
the build unless carrying `// analyze-shared: <reason>`.

Function-local statics are out of scope here: the ones that matter
are the ones parallel bodies touch, and pass 2 catches exactly those.

Namespace-scope detection walks the brace structure: a `{` opens a
namespace scope when its introducer contains `namespace` (or
`extern "C"`); every other brace — function bodies, class bodies,
initializers — hides its contents from this pass.
"""

from tools.analyze import cxxtok
from tools.analyze.report import Finding

_SKIP_STARTERS = {
    "using", "typedef", "friend", "template", "static_assert", "asm",
    "concept", "requires", "namespace",
}
_TYPE_KEYS = {"class", "struct", "union", "enum"}


def _code_toks(toks):
    return [t for t in toks if t.kind != "comment"]


def _skip_balanced(toks, i, open_text, close_text):
    depth = 0
    while i < len(toks):
        if toks[i].text == open_text:
            depth += 1
        elif toks[i].text == close_text:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return len(toks)


def _statement_findings(path, stmt):
    """Classify one namespace-scope `...;` statement; return a Finding
    for a mutable variable definition, else None."""
    texts = [t.text for t in stmt]
    if not texts:
        return None
    if texts[0] in _SKIP_STARTERS or "operator" in texts:
        return None
    # `class Foo;` forward declarations and enum/struct definitions.
    if texts[0] in _TYPE_KEYS or (len(texts) > 1 and texts[0] == "inline"
                                  and texts[1] in _TYPE_KEYS):
        return None
    if "#" in texts:  # preprocessor directive swept into the stream
        return None
    if "constexpr" in texts or "consteval" in texts:
        return None
    # Function declarations / definitions: an identifier directly
    # followed by '(' with no '=' anywhere before it.
    if "(" in texts:
        paren = texts.index("(")
        if "=" not in texts[:paren] and paren > 0 and \
                stmt[paren - 1].kind == "id":
            return None
    # The declared name: last identifier of the declarator — before
    # '=', '[', or end. Only declarator tokens matter from here on;
    # an initializer's '*' is multiplication, not a pointer.
    cut = len(stmt)
    for stop in ("=", "["):
        if stop in texts:
            cut = min(cut, texts.index(stop))
    decl, decl_texts = stmt[:cut], texts[:cut]
    name = None
    name_idx = None
    for idx in range(len(decl) - 1, -1, -1):
        t = decl[idx]
        if t.kind == "id" and t.text not in ("thread_local", "static",
                                             "inline", "extern", "constinit",
                                             "volatile", "mutable", "const"):
            name, name_idx = t, idx
            break
    if name is None:
        return None
    if "const" in decl_texts:
        # A const OBJECT is fine; `const char* g` — a mutable pointer
        # to const — is not. Pointer-ness is the '*' directly left of
        # the name (cv-qualifiers in between make the pointer const).
        walk = name_idx - 1
        pointer_is_const = False
        while walk >= 0 and decl[walk].text in ("const", "volatile"):
            pointer_is_const = True
            walk -= 1
        mutable_pointer = (walk >= 0 and decl[walk].text == "*"
                           and not pointer_is_const)
        if not mutable_pointer:
            return None
    kind = ("thread_local variable" if "thread_local" in texts
            else "namespace-scope variable")
    return Finding(path, name.line, "global-state",
                   f"mutable {kind} '{name.text}' — hidden shared state "
                   "makes results depend on execution order; intern it in "
                   "the obs registry, thread it through parameters, or "
                   "annotate with `// analyze-shared: <reason>`")


def check_file(path, text, annotations):
    """`annotations` is the file's shared Annotations ledger; stale
    entries are reported by the caller after all passes ran."""
    toks = _drop_directives(_code_toks(cxxtok.tokenize(text)))
    findings = []
    # scope stack entries: True = namespace-like (contents visible)
    scopes = [True]
    stmt = []
    i = 0
    while i < len(toks):
        t = toks[i]
        if not scopes[-1]:
            i += 1
            continue  # unreachable: non-ns scopes are skipped wholesale
        if t.text == "{":
            introducer = [x.text for x in stmt]
            if "namespace" in introducer or \
                    ("extern" in introducer and len(stmt) >= 2
                     and stmt[1].kind == "str"):
                scopes.append(True)
                stmt = []
                i += 1
            elif stmt and stmt[-1].text in ("=", ",", "(", "{"):
                # brace initializer inside the statement
                i = _skip_balanced(toks, i, "{", "}")
            else:
                # function body, class body, enum body, lambda...
                stmt = []
                i = _skip_balanced(toks, i, "{", "}")
                # ...consume a trailing ';' (class defs) silently
                if i < len(toks) and toks[i].text == ";":
                    i += 1
            continue
        if t.text == "}":
            if len(scopes) > 1:
                scopes.pop()
            stmt = []
            i += 1
            continue
        if t.text == ";":
            finding = _statement_findings(path, stmt)
            if finding is not None and not annotations.suppresses(finding.line):
                findings.append(finding)
            stmt = []
            i += 1
            continue
        stmt.append(t)
        i += 1
    return findings


def _drop_directives(toks):
    """Remove preprocessor-directive tokens: a '#' opening its line
    swallows the rest of that line (so `#include <vector>` never
    bleeds '<vector>' into a namespace-scope statement)."""
    out = []
    skip_line = None
    prev_line = 0
    for tok in toks:
        if tok.line == skip_line:
            continue
        skip_line = None
        if tok.text == "#" and tok.kind == "punct" and tok.line != prev_line:
            skip_line = tok.line
            prev_line = tok.line
            continue
        prev_line = tok.line
        out.append(tok)
    return out
