"""Layer-graph and concurrency-capture static analyzer (DESIGN.md §14).

Run as `python3 tools/analyze` (or `cmake --build build --target
analyze`); `tools/lint.py` imports `tools.analyze.cxxtok`, the shared
C++ tokenizer.
"""
