"""Driver for the three static-analysis passes (DESIGN.md §14).

Tree mode (default) analyzes the repository and writes deterministic
artifacts — `include_graph.dot` and `stats.json` — into `--out`
(default `build/analyze`):

  layer-graph     src/ include graph vs. the declared module DAG
  capture-race    shared-mutable captures in parallel bodies
                  (src/ + bench/ + examples/)
  global-state    mutable namespace-scope variables in src/
                  (src/util and src/obs own the sanctioned state)

Self-test mode (`--self-test`) proves every pass both fires on its
committed bad fixture and stays silent on its good one — the same
contract tools/lint.py --self-test keeps.

Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import json
import sys
from pathlib import Path

from tools.analyze import captures, cxxtok, globals_pass, layers
from tools.analyze.report import Annotations, Finding

REPO = Path(__file__).resolve().parent.parent.parent
FIXTURES = REPO / "tests" / "analyze" / "fixtures"
SOURCE_SUFFIXES = (".hpp", ".h", ".cpp", ".cc")

CAPTURE_ROOTS = ("src", "bench", "examples")
GLOBAL_EXEMPT = ("util", "obs")  # src/<module> dirs owning global state


def _files(root):
    for path in sorted(root.rglob("*")):
        if path.suffix in SOURCE_SUFFIXES and path.is_file():
            yield path


def analyze_tree(out_dir):
    findings = []

    layer_findings, edges, file_counts = layers.check(REPO / "src")
    findings.extend(layer_findings)

    # capture + global passes share one annotation ledger per file so
    # a stale `// analyze-shared` is reported exactly once.
    for root_name in CAPTURE_ROOTS:
        for path in _files(REPO / root_name):
            rel = path.relative_to(REPO).as_posix()
            text = path.read_text(encoding="utf-8")
            annotations = Annotations(cxxtok.comment_lines(text))
            findings.extend(captures.check_file(rel, text, annotations))
            if root_name == "src" and \
                    path.relative_to(REPO / "src").parts[0] not in GLOBAL_EXEMPT:
                findings.extend(globals_pass.check_file(rel, text, annotations))
            for line, why in annotations.stale():
                findings.append(Finding(rel, line, "stale-annotation",
                                        f"`// analyze-shared` annotation {why}"))

    if out_dir is not None:
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        (out_dir / "include_graph.dot").write_text(
            layers.to_dot(edges, file_counts), encoding="utf-8")
        (out_dir / "stats.json").write_text(
            json.dumps({
                "modules": layers.stats(edges, file_counts),
                "findings": len(findings),
                "rules": sorted({f.rule for f in findings}),
            }, indent=2, sort_keys=True) + "\n", encoding="utf-8")

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for finding in findings:
        print(finding)
    scanned = sum(1 for root in CAPTURE_ROOTS for _ in _files(REPO / root))
    print(f"analyze: {scanned} files scanned, "
          f"{len(layers.allowed_dependencies())} modules in the DAG, "
          f"{len(findings)} finding(s)")
    return 1 if findings else 0


# Every fixture maps to the exact rule set it must trigger; the good
# fixtures prove the passes don't cry wolf. Directory fixtures run the
# layer pass (over `<fixture>/src`); file fixtures run capture +
# global passes, mirroring tree mode.
SELF_TEST_EXPECTATIONS = {
    "layer_good": set(),
    "layer_bad": {"layer-edge", "layer-cycle"},
    "capture_good.cpp": set(),
    "capture_bad.cpp": {"capture-race"},
    "capture_stale.cpp": {"stale-annotation"},
    "globals_good.cpp": set(),
    "globals_bad.cpp": {"global-state"},
}


def _fixture_rules(name):
    path = FIXTURES / name
    if not path.exists():
        return None
    if path.is_dir():
        findings, _, _ = layers.check(path / "src")
        return {f.rule for f in findings}
    text = path.read_text(encoding="utf-8")
    annotations = Annotations(cxxtok.comment_lines(text))
    findings = captures.check_file(name, text, annotations)
    findings.extend(globals_pass.check_file(name, text, annotations))
    findings.extend(Finding(name, line, "stale-annotation", why)
                    for line, why in annotations.stale())
    return {f.rule for f in findings}


def run_self_test():
    failures = []
    for name, expected in sorted(SELF_TEST_EXPECTATIONS.items()):
        got = _fixture_rules(name)
        if got is None:
            failures.append(f"{name}: fixture missing")
        elif got != expected:
            failures.append(f"{name}: expected rules {sorted(expected)}, "
                            f"got {sorted(got)}")
    for failure in failures:
        print(f"analyze --self-test: {failure}")
    print(f"analyze --self-test: {len(SELF_TEST_EXPECTATIONS)} fixtures, "
          f"{len(failures)} failure(s)")
    return 1 if failures else 0


def main(argv=None):
    parser = argparse.ArgumentParser(prog="tools/analyze",
                                     description=__doc__)
    parser.add_argument("--self-test", action="store_true",
                        help="check each committed fixture triggers exactly "
                             "its expected rules")
    parser.add_argument("--out", default=str(REPO / "build" / "analyze"),
                        help="directory for include_graph.dot + stats.json "
                             "(tree mode; default build/analyze)")
    parser.add_argument("--no-artifacts", action="store_true",
                        help="skip writing DOT/JSON artifacts")
    args = parser.parse_args(argv)
    if args.self_test:
        return run_self_test()
    return analyze_tree(None if args.no_artifacts else args.out)
