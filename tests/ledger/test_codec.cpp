#include "ledger/codec.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "util/rng.hpp"

namespace xrpl::ledger {
namespace {

std::vector<TxRecord> sample_records(std::size_t n, std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<TxRecord> records;
    records.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        TxRecord r;
        r.sender =
            AccountID::from_seed("s" + std::to_string(rng.uniform_u64(0, 99)));
        r.destination =
            AccountID::from_seed("d" + std::to_string(rng.uniform_u64(0, 9)));
        r.currency =
            Currency::from_code(rng.bernoulli(0.3) ? "XRP" : "USD");
        r.amount = IouAmount::from_double(rng.lognormal(2.0, 3.0));
        if (rng.bernoulli(0.1)) r.amount = r.amount.negated();
        r.time = util::RippleTime{
            static_cast<std::int64_t>(rng.uniform_u64(0, 100'000'000))};
        records.push_back(r);
    }
    return records;
}

TEST(CodecTest, RoundTripsEmpty) {
    const std::vector<TxRecord> empty;
    const auto decoded = decode_records(encode_records(empty));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(decoded->empty());
}

TEST(CodecTest, RoundTripsRecordsExactly) {
    const auto records = sample_records(500, 3);
    const auto decoded = decode_records(encode_records(records));
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(decoded->size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ((*decoded)[i].sender, records[i].sender);
        EXPECT_EQ((*decoded)[i].destination, records[i].destination);
        EXPECT_EQ((*decoded)[i].currency, records[i].currency);
        EXPECT_EQ((*decoded)[i].amount, records[i].amount);
        EXPECT_EQ((*decoded)[i].time.seconds, records[i].time.seconds);
    }
}

TEST(CodecTest, PreservesExtremeAmounts) {
    std::vector<TxRecord> records(3);
    records[0].amount = IouAmount::from_double(1e22);   // MTL debt scale
    records[1].amount = IouAmount::from_double(-1e-9);  // tiny negative
    records[2].amount = IouAmount{};                    // zero
    const auto decoded = decode_records(encode_records(records));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ((*decoded)[0].amount, records[0].amount);
    EXPECT_EQ((*decoded)[1].amount, records[1].amount);
    EXPECT_TRUE((*decoded)[2].amount.is_zero());
}

TEST(CodecTest, RejectsCorruptedPayload) {
    const auto records = sample_records(50, 4);
    auto bytes = encode_records(records);
    bytes[40] ^= 0x01;  // flip a payload bit
    EXPECT_FALSE(decode_records(bytes).has_value());
}

TEST(CodecTest, RejectsTruncatedStream) {
    const auto records = sample_records(50, 5);
    auto bytes = encode_records(records);
    bytes.resize(bytes.size() - 10);
    EXPECT_FALSE(decode_records(bytes).has_value());
    EXPECT_FALSE(decode_records(std::vector<std::uint8_t>(4, 0)).has_value());
}

TEST(CodecTest, RejectsWrongMagicAndVersion) {
    const auto records = sample_records(5, 6);
    {
        auto bytes = encode_records(records);
        bytes[0] ^= 0xff;  // corrupt magic (checksum catches it first,
                           // but either way it must fail)
        EXPECT_FALSE(decode_records(bytes).has_value());
    }
}

TEST(CodecTest, FileRoundTrip) {
    const auto records = sample_records(200, 7);
    const std::string path = "/tmp/xrpl_codec_test.bin";
    ASSERT_TRUE(save_records(path, records));
    const auto loaded = load_records(path);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(loaded->size(), records.size());
    EXPECT_EQ(loaded->back().sender, records.back().sender);
    std::remove(path.c_str());
}

TEST(CodecTest, LoadMissingFileFails) {
    EXPECT_FALSE(load_records("/tmp/does-not-exist-xrpl.bin").has_value());
}

TEST(CodecTest, EncodingIsDeterministic) {
    const auto records = sample_records(100, 8);
    EXPECT_EQ(encode_records(records), encode_records(records));
}

}  // namespace
}  // namespace xrpl::ledger
