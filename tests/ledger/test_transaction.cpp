#include "ledger/transaction.hpp"

#include <gtest/gtest.h>

namespace xrpl::ledger {
namespace {

Transaction sample_payment() {
    Transaction tx;
    tx.type = TxType::kPayment;
    tx.sender = AccountID::from_seed("sender");
    tx.destination = AccountID::from_seed("destination");
    tx.sequence = 7;
    tx.submit_time = util::from_calendar(2015, 8, 24, 15, 41, 3);
    tx.amount = Amount::iou(Currency::from_code("USD"), 4.5);
    tx.source_currency = Currency::from_code("USD");
    return tx;
}

TEST(TransactionTest, SerializationIsDeterministic) {
    EXPECT_EQ(sample_payment().serialize(), sample_payment().serialize());
}

TEST(TransactionTest, IdIsStable) {
    EXPECT_EQ(sample_payment().id(), sample_payment().id());
}

TEST(TransactionTest, AnyFieldChangeChangesId) {
    const Hash256 base = sample_payment().id();

    Transaction tx = sample_payment();
    tx.sequence = 8;
    EXPECT_NE(tx.id(), base);

    tx = sample_payment();
    tx.amount = Amount::iou(Currency::from_code("USD"), 4.6);
    EXPECT_NE(tx.id(), base);

    tx = sample_payment();
    tx.destination = AccountID::from_seed("other");
    EXPECT_NE(tx.id(), base);

    tx = sample_payment();
    tx.submit_time.seconds += 1;
    EXPECT_NE(tx.id(), base);

    tx = sample_payment();
    tx.type = TxType::kTrustSet;
    EXPECT_NE(tx.id(), base);

    tx = sample_payment();
    tx.source_currency = Currency::from_code("EUR");
    EXPECT_NE(tx.id(), base);
}

TEST(TransactionTest, SerializationLengthIsFixed) {
    // All fields always serialize, so any two transactions have
    // equal-length canonical forms.
    Transaction offer;
    offer.type = TxType::kOfferCreate;
    offer.sender = AccountID::from_seed("maker");
    offer.taker_pays = Amount::iou(Currency::from_code("USD"), 100.0);
    offer.taker_gets = Amount::iou(Currency::from_code("BTC"), 0.2);
    EXPECT_EQ(offer.serialize().size(), sample_payment().serialize().size());
}

TEST(TransactionTest, PathsFieldIsPartOfTheId) {
    Transaction with_paths = sample_payment();
    with_paths.paths = {{with_paths.sender, AccountID::from_seed("via"),
                         with_paths.destination}};
    EXPECT_NE(with_paths.id(), sample_payment().id());
    // Path order matters.
    Transaction reordered = with_paths;
    reordered.paths.push_back(
        {reordered.sender, reordered.destination});
    EXPECT_NE(reordered.id(), with_paths.id());
}

TEST(TxRecordTest, HoldsTheFivePaperFeatures) {
    TxRecord record;
    record.sender = AccountID::from_seed("S");
    record.amount = IouAmount::from_double(4.5);
    record.time = util::from_calendar(2015, 8, 24, 15, 41, 3);
    record.currency = Currency::from_code("USD");
    record.destination = AccountID::from_seed("D");
    EXPECT_EQ(record.currency.to_string(), "USD");
    EXPECT_NEAR(record.amount.to_double(), 4.5, 1e-12);
}

TEST(TxResultTest, DefaultIsFailure) {
    const TxResult result;
    EXPECT_FALSE(result.success);
    EXPECT_EQ(result.intermediate_hops, 0u);
    EXPECT_EQ(result.parallel_paths, 0u);
    EXPECT_TRUE(result.intermediaries.empty());
}

}  // namespace
}  // namespace xrpl::ledger
