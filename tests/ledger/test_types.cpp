#include "ledger/types.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace xrpl::ledger {
namespace {

TEST(AccountIDTest, FromSeedIsDeterministic) {
    EXPECT_EQ(AccountID::from_seed("alice"), AccountID::from_seed("alice"));
    EXPECT_NE(AccountID::from_seed("alice"), AccountID::from_seed("bob"));
}

TEST(AccountIDTest, AddressStartsWithR) {
    const AccountID id = AccountID::from_seed("alice");
    EXPECT_EQ(id.to_address().front(), 'r');
}

TEST(AccountIDTest, AddressRoundTrips) {
    const AccountID id = AccountID::from_seed("carol");
    const auto parsed = AccountID::from_address(id.to_address());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, id);
}

TEST(AccountIDTest, CorruptAddressRejected) {
    const AccountID id = AccountID::from_seed("dave");
    std::string address = id.to_address();
    address[10] = address[10] == 'a' ? 'b' : 'a';
    EXPECT_FALSE(AccountID::from_address(address).has_value());
}

TEST(AccountIDTest, ShortDisplayHasEllipsis) {
    const AccountID id = AccountID::from_seed("erin");
    const std::string display = id.short_display();
    EXPECT_NE(display.find("..."), std::string::npos);
    EXPECT_EQ(display.size(), 15u);  // 6 + 3 + 6
    EXPECT_EQ(display.front(), 'r');
}

TEST(AccountIDTest, ZeroAccountIsZero) {
    EXPECT_TRUE(AccountID::zero().is_zero());
    EXPECT_FALSE(AccountID::from_seed("x").is_zero());
}

TEST(AccountIDTest, HashDistributesAccounts) {
    std::unordered_set<AccountID> accounts;
    for (int i = 0; i < 1000; ++i) {
        accounts.insert(AccountID::from_seed("account-" + std::to_string(i)));
    }
    EXPECT_EQ(accounts.size(), 1000u);
}

TEST(CurrencyTest, DefaultIsXrp) {
    EXPECT_TRUE(Currency{}.is_xrp());
    EXPECT_TRUE(Currency::xrp().is_xrp());
    EXPECT_EQ(Currency::xrp().to_string(), "XRP");
}

TEST(CurrencyTest, FromCodeRoundTrips) {
    EXPECT_EQ(Currency::from_code("USD").to_string(), "USD");
    EXPECT_EQ(Currency::from_code("BTC").to_string(), "BTC");
    EXPECT_FALSE(Currency::from_code("USD").is_xrp());
}

TEST(CurrencyTest, ShortCodesArePadded) {
    const Currency c = Currency::from_code("ab");
    EXPECT_EQ(c.to_string(), "ab");
}

TEST(CurrencyTest, ComparisonAndEquality) {
    EXPECT_EQ(Currency::from_code("USD"), Currency::from_code("USD"));
    EXPECT_NE(Currency::from_code("USD"), Currency::from_code("EUR"));
}

TEST(IssueTest, EqualityRequiresBothFields) {
    const Issue a{Currency::from_code("USD"), AccountID::from_seed("gw1")};
    const Issue b{Currency::from_code("USD"), AccountID::from_seed("gw2")};
    const Issue c{Currency::from_code("EUR"), AccountID::from_seed("gw1")};
    EXPECT_NE(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(a, (Issue{Currency::from_code("USD"), AccountID::from_seed("gw1")}));
}

TEST(Hash256Test, HexRendering) {
    Hash256 h;
    h.bytes[0] = 0xab;
    h.bytes[31] = 0x01;
    const std::string hex = h.to_hex();
    EXPECT_EQ(hex.size(), 64u);
    EXPECT_EQ(hex.substr(0, 2), "ab");
    EXPECT_EQ(hex.substr(62, 2), "01");
}

}  // namespace
}  // namespace xrpl::ledger
