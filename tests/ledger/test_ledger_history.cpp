#include "ledger/ledger_history.hpp"

#include <gtest/gtest.h>

namespace xrpl::ledger {
namespace {

Hash256 tx_hash(int i) {
    Hash256 h;
    h.bytes[0] = static_cast<std::uint8_t>(i);
    h.bytes[1] = static_cast<std::uint8_t>(i >> 8);
    return h;
}

TEST(LedgerHistoryTest, AppendsSequentialPages) {
    LedgerHistory history;
    EXPECT_TRUE(history.empty());
    history.append(util::RippleTime{100}, {tx_hash(1)});
    history.append(util::RippleTime{105}, {tx_hash(2), tx_hash(3)});
    EXPECT_EQ(history.size(), 2u);
    EXPECT_EQ(history.page(0).sequence, 1u);
    EXPECT_EQ(history.page(1).sequence, 2u);
    EXPECT_EQ(history.last().tx_ids.size(), 2u);
}

TEST(LedgerHistoryTest, PagesChainByParentHash) {
    LedgerHistory history;
    history.append(util::RippleTime{100}, {});
    history.append(util::RippleTime{105}, {});
    EXPECT_EQ(history.page(0).parent_hash, Hash256{});
    EXPECT_EQ(history.page(1).parent_hash, history.page(0).hash);
}

TEST(LedgerHistoryTest, VerifyChainAcceptsHonestHistory) {
    LedgerHistory history;
    for (int i = 0; i < 50; ++i) {
        history.append(util::RippleTime{100 + i * 5}, {tx_hash(i)});
    }
    EXPECT_EQ(history.verify_chain(), history.size());
}

TEST(LedgerHistoryTest, HashCoversCloseTime) {
    const Hash256 a = compute_page_hash(1, Hash256{}, util::RippleTime{100}, {});
    const Hash256 b = compute_page_hash(1, Hash256{}, util::RippleTime{101}, {});
    EXPECT_NE(a, b);
}

TEST(LedgerHistoryTest, HashCoversSequenceAndParent) {
    const Hash256 base = compute_page_hash(1, Hash256{}, util::RippleTime{100}, {});
    EXPECT_NE(compute_page_hash(2, Hash256{}, util::RippleTime{100}, {}), base);
    Hash256 parent;
    parent.bytes[5] = 0x77;
    EXPECT_NE(compute_page_hash(1, parent, util::RippleTime{100}, {}), base);
}

TEST(LedgerHistoryTest, HashCoversTransactionsAndTheirOrder) {
    const std::vector<Hash256> forward = {tx_hash(1), tx_hash(2)};
    const std::vector<Hash256> reversed = {tx_hash(2), tx_hash(1)};
    const Hash256 a = compute_page_hash(1, Hash256{}, util::RippleTime{100}, forward);
    const Hash256 b = compute_page_hash(1, Hash256{}, util::RippleTime{100}, reversed);
    EXPECT_NE(a, b);
    const Hash256 c = compute_page_hash(1, Hash256{}, util::RippleTime{100}, {});
    EXPECT_NE(a, c);
}

TEST(LedgerHistoryTest, DistinctHistoriesDistinctHeads) {
    LedgerHistory a;
    LedgerHistory b;
    a.append(util::RippleTime{100}, {tx_hash(1)});
    b.append(util::RippleTime{100}, {tx_hash(2)});
    EXPECT_NE(a.last().hash, b.last().hash);
}

}  // namespace
}  // namespace xrpl::ledger
