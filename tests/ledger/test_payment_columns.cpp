#include "ledger/payment_columns.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace xrpl::ledger {
namespace {

TxRecord record(const std::string& sender, const std::string& destination,
                const char* currency, double amount, std::int64_t t) {
    TxRecord r;
    r.sender = AccountID::from_seed(sender);
    r.destination = AccountID::from_seed(destination);
    r.currency = Currency::from_code(currency);
    r.amount = IouAmount::from_double(amount);
    r.time = util::RippleTime{t};
    return r;
}

TEST(AccountInternerTest, AssignsDenseIdsInFirstSeenOrder) {
    AccountInterner interner;
    const AccountID a = AccountID::from_seed("a");
    const AccountID b = AccountID::from_seed("b");
    EXPECT_EQ(interner.intern(a), 0u);
    EXPECT_EQ(interner.intern(b), 1u);
    EXPECT_EQ(interner.intern(a), 0u);  // stable on re-intern
    EXPECT_EQ(interner.size(), 2u);
    EXPECT_EQ(interner.at(0), a);
    EXPECT_EQ(interner.at(1), b);
    EXPECT_EQ(interner.find(b), std::optional<std::uint32_t>{1u});
    EXPECT_FALSE(interner.find(AccountID::from_seed("c")).has_value());
}

TEST(CurrencyInternerTest, AssignsDenseIds) {
    CurrencyInterner interner;
    EXPECT_EQ(interner.intern(Currency::from_code("USD")), 0u);
    EXPECT_EQ(interner.intern(Currency::xrp()), 1u);
    EXPECT_EQ(interner.intern(Currency::from_code("USD")), 0u);
    EXPECT_EQ(interner.at(1), Currency::xrp());
    EXPECT_FALSE(interner.find(Currency::from_code("EUR")).has_value());
}

TEST(PaymentColumnsTest, PushBackRowRoundTrips) {
    PaymentColumns columns;
    const TxRecord original = record("bob", "bar", "USD", 4.5, 1000);
    columns.push_back(original);
    ASSERT_EQ(columns.size(), 1u);

    const TxRecord back = columns.row(0);
    EXPECT_EQ(back.sender, original.sender);
    EXPECT_EQ(back.destination, original.destination);
    EXPECT_EQ(back.currency, original.currency);
    EXPECT_EQ(back.amount, original.amount);
    EXPECT_EQ(back.time.seconds, original.time.seconds);
}

TEST(PaymentColumnsTest, SharedAccountsShareIds) {
    PaymentColumns columns;
    columns.push_back(record("hub", "shop-a", "USD", 1.0, 1));
    columns.push_back(record("hub", "shop-b", "USD", 2.0, 2));
    EXPECT_EQ(columns.sender_id[0], columns.sender_id[1]);
    EXPECT_NE(columns.dest_id[0], columns.dest_id[1]);
    // hub, shop-a, shop-b: three distinct accounts total.
    EXPECT_EQ(columns.accounts.size(), 3u);
    EXPECT_EQ(columns.currencies.size(), 1u);
}

TEST(PaymentColumnsTest, ToRecordsAndFromRecordsRoundTrip) {
    std::vector<TxRecord> records;
    for (int i = 0; i < 50; ++i) {
        records.push_back(record("s" + std::to_string(i % 7),
                                 "d" + std::to_string(i % 3),
                                 i % 2 == 0 ? "USD" : "BTC",
                                 0.25 * (i + 1), 100 + i));
    }
    const PaymentColumns columns = PaymentColumns::from_records(records);
    ASSERT_EQ(columns.size(), records.size());

    const std::vector<TxRecord> back = columns.to_records();
    ASSERT_EQ(back.size(), records.size());
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(back[i].sender, records[i].sender);
        EXPECT_EQ(back[i].destination, records[i].destination);
        EXPECT_EQ(back[i].currency, records[i].currency);
        EXPECT_EQ(back[i].amount, records[i].amount);
        EXPECT_EQ(back[i].time.seconds, records[i].time.seconds);
    }
}

TEST(PaymentViewTest, IterationYieldsEveryRow) {
    PaymentColumns columns;
    for (int i = 0; i < 10; ++i) {
        columns.push_back(record("s" + std::to_string(i), "d", "USD", 1.0, i));
    }
    const PaymentView view = columns.view();
    EXPECT_EQ(view.size(), 10u);
    std::size_t i = 0;
    for (const TxRecord& row : view) {
        EXPECT_EQ(row.time.seconds, static_cast<std::int64_t>(i));
        ++i;
    }
    EXPECT_EQ(i, 10u);
    EXPECT_EQ(view.front().time.seconds, 0);
    EXPECT_EQ(view.back().time.seconds, 9);
}

TEST(PaymentViewTest, PrefixClampsAndWindows) {
    PaymentColumns columns;
    for (int i = 0; i < 8; ++i) {
        columns.push_back(record("s", "d", "USD", 1.0, i));
    }
    const PaymentView half = columns.view().prefix(4);
    EXPECT_EQ(half.size(), 4u);
    EXPECT_EQ(half.back().time.seconds, 3);
    EXPECT_EQ(columns.view().prefix(100).size(), 8u);
    EXPECT_TRUE(columns.view().prefix(0).empty());
}

TEST(PaymentViewTest, EmptyColumns) {
    const PaymentColumns columns;
    EXPECT_TRUE(columns.empty());
    EXPECT_TRUE(columns.view().empty());
    EXPECT_EQ(columns.view().begin(), columns.view().end());
}

}  // namespace
}  // namespace xrpl::ledger
