#include "ledger/ledger.hpp"

#include <gtest/gtest.h>

namespace xrpl::ledger {
namespace {

class LedgerStateTest : public ::testing::Test {
protected:
    void SetUp() override {
        alice_ = AccountID::from_seed("alice");
        bob_ = AccountID::from_seed("bob");
        gateway_ = AccountID::from_seed("gateway");
        ASSERT_TRUE(state_.create_account(alice_, XrpAmount::from_xrp(100.0)));
        ASSERT_TRUE(state_.create_account(bob_, XrpAmount::from_xrp(50.0)));
        ASSERT_TRUE(
            state_.create_account(gateway_, XrpAmount::from_xrp(1000.0), true));
    }

    LedgerState state_;
    AccountID alice_, bob_, gateway_;
    const Currency usd_ = Currency::from_code("USD");
};

TEST_F(LedgerStateTest, DuplicateAccountRejected) {
    EXPECT_FALSE(state_.create_account(alice_, XrpAmount{}));
    EXPECT_EQ(state_.account_count(), 3u);
}

TEST_F(LedgerStateTest, DenseIndicesAreSequential) {
    EXPECT_EQ(state_.account(alice_)->index, 0u);
    EXPECT_EQ(state_.account(bob_)->index, 1u);
    EXPECT_EQ(state_.account(gateway_)->index, 2u);
    EXPECT_EQ(state_.account_by_index(1), bob_);
}

TEST_F(LedgerStateTest, GatewayFlagStored) {
    EXPECT_FALSE(state_.account(alice_)->is_gateway);
    EXPECT_TRUE(state_.account(gateway_)->is_gateway);
}

TEST_F(LedgerStateTest, XrpPaymentMovesDropsAndBurnsFee) {
    ASSERT_TRUE(state_.xrp_payment(alice_, bob_, XrpAmount::from_xrp(10.0),
                                   XrpAmount{10}));
    EXPECT_EQ(state_.account(alice_)->balance.drops, 100'000'000 - 10'000'000 - 10);
    EXPECT_EQ(state_.account(bob_)->balance.drops, 50'000'000 + 10'000'000);
    EXPECT_EQ(state_.burned_fees().drops, 10);
    EXPECT_EQ(state_.account(alice_)->sequence, 1u);
}

TEST_F(LedgerStateTest, XrpPaymentInsufficientFundsFails) {
    EXPECT_FALSE(state_.xrp_payment(bob_, alice_, XrpAmount::from_xrp(50.0),
                                    XrpAmount{10}));
    EXPECT_EQ(state_.account(bob_)->balance.drops, 50'000'000);
}

TEST_F(LedgerStateTest, XrpPaymentUnknownAccountFails) {
    EXPECT_FALSE(state_.xrp_payment(AccountID::from_seed("ghost"), alice_,
                                    XrpAmount{100}));
    EXPECT_FALSE(
        state_.xrp_payment(alice_, AccountID::from_seed("ghost"), XrpAmount{100}));
}

TEST_F(LedgerStateTest, XrpPaymentRejectsNonPositive) {
    EXPECT_FALSE(state_.xrp_payment(alice_, bob_, XrpAmount{0}));
    EXPECT_FALSE(state_.xrp_payment(alice_, bob_, XrpAmount{-5}));
}

TEST_F(LedgerStateTest, SetTrustCreatesLineOnce) {
    state_.set_trust(alice_, gateway_, usd_, IouAmount::from_double(100.0));
    EXPECT_EQ(state_.trustline_count(), 1u);
    state_.set_trust(alice_, gateway_, usd_, IouAmount::from_double(200.0));
    EXPECT_EQ(state_.trustline_count(), 1u);
    const TrustLine* line = state_.trustline(alice_, gateway_, usd_);
    ASSERT_NE(line, nullptr);
    EXPECT_NEAR(line->limit_of(alice_).to_double(), 200.0, 1e-9);
}

TEST_F(LedgerStateTest, TrustIsDirectional) {
    state_.set_trust(alice_, gateway_, usd_, IouAmount::from_double(100.0));
    const TrustLine* line = state_.trustline(alice_, gateway_, usd_);
    ASSERT_NE(line, nullptr);
    EXPECT_NEAR(line->limit_of(alice_).to_double(), 100.0, 1e-9);
    EXPECT_TRUE(line->limit_of(gateway_).is_zero());
}

TEST_F(LedgerStateTest, AdjacencyTracksBothEndpoints) {
    state_.set_trust(alice_, gateway_, usd_, IouAmount::from_double(100.0));
    state_.set_trust(bob_, gateway_, usd_, IouAmount::from_double(50.0));
    EXPECT_EQ(state_.lines_of(alice_).size(), 1u);
    EXPECT_EQ(state_.lines_of(bob_).size(), 1u);
    EXPECT_EQ(state_.lines_of(gateway_).size(), 2u);
    EXPECT_TRUE(state_.lines_of(AccountID::from_seed("ghost")).empty());
}

TEST_F(LedgerStateTest, SeparateCurrenciesSeparateLines) {
    state_.set_trust(alice_, gateway_, usd_, IouAmount::from_double(100.0));
    state_.set_trust(alice_, gateway_, Currency::from_code("EUR"),
                     IouAmount::from_double(100.0));
    EXPECT_EQ(state_.trustline_count(), 2u);
    EXPECT_EQ(state_.lines_of(alice_).size(), 2u);
}

TEST_F(LedgerStateTest, OffersSortedByRate) {
    const AccountID maker1 = AccountID::from_seed("maker1");
    const AccountID maker2 = AccountID::from_seed("maker2");
    state_.create_account(maker1, XrpAmount{});
    state_.create_account(maker2, XrpAmount{});
    // maker2 quotes the better (lower) rate: 1.2 USD per EUR vs 1.4.
    state_.place_offer(maker1, Amount::iou(usd_, 140.0),
                       Amount::iou(Currency::from_code("EUR"), 100.0));
    state_.place_offer(maker2, Amount::iou(usd_, 120.0),
                       Amount::iou(Currency::from_code("EUR"), 100.0));
    const auto& book =
        state_.book(BookKey{usd_, Currency::from_code("EUR")});
    ASSERT_EQ(book.size(), 2u);
    EXPECT_EQ(book[0].owner, maker2);
    EXPECT_LT(book[0].rate(), book[1].rate());
}

TEST_F(LedgerStateTest, RemoveOffersOfOwner) {
    const AccountID maker = AccountID::from_seed("maker");
    state_.create_account(maker, XrpAmount{});
    state_.place_offer(maker, Amount::iou(usd_, 10.0),
                       Amount::iou(Currency::from_code("EUR"), 9.0));
    state_.place_offer(gateway_, Amount::iou(usd_, 10.0),
                       Amount::iou(Currency::from_code("EUR"), 9.0));
    EXPECT_EQ(state_.offer_count(), 2u);
    state_.remove_offers_of(maker);
    EXPECT_EQ(state_.offer_count(), 1u);
    state_.clear_all_offers();
    EXPECT_EQ(state_.offer_count(), 0u);
}

TEST_F(LedgerStateTest, NetIouBalanceConvertsCurrencies) {
    state_.set_trust(alice_, gateway_, usd_, IouAmount::from_double(100.0));
    TrustLine* line = state_.trustline(alice_, gateway_, usd_);
    ASSERT_TRUE(line->transfer_from(gateway_, IouAmount::from_double(40.0)));
    const auto rate = [](Currency) { return 2.0; };  // 1 USD = 2 reference
    EXPECT_NEAR(state_.net_iou_balance(alice_, rate), 80.0, 1e-9);
    EXPECT_NEAR(state_.net_iou_balance(gateway_, rate), -80.0, 1e-9);
}

TEST_F(LedgerStateTest, TrustSummarySplitsDirections) {
    state_.set_trust(alice_, gateway_, usd_, IouAmount::from_double(100.0));
    const auto rate = [](Currency) { return 1.0; };
    const auto gateway_summary = state_.trust_summary(gateway_, rate);
    EXPECT_NEAR(gateway_summary.received, 100.0, 1e-9);  // alice trusts it
    EXPECT_NEAR(gateway_summary.given, 0.0, 1e-9);
    const auto alice_summary = state_.trust_summary(alice_, rate);
    EXPECT_NEAR(alice_summary.received, 0.0, 1e-9);
    EXPECT_NEAR(alice_summary.given, 100.0, 1e-9);
}

TEST_F(LedgerStateTest, CloneIsDeepAndIndependent) {
    state_.set_trust(alice_, gateway_, usd_, IouAmount::from_double(100.0));
    state_.place_offer(gateway_, Amount::iou(usd_, 10.0),
                       Amount::iou(Currency::from_code("EUR"), 9.0));

    LedgerState copy = state_.clone();
    EXPECT_EQ(copy.account_count(), state_.account_count());
    EXPECT_EQ(copy.trustline_count(), state_.trustline_count());
    EXPECT_EQ(copy.offer_count(), state_.offer_count());

    // Mutating the copy leaves the original untouched.
    TrustLine* copy_line = copy.trustline(alice_, gateway_, usd_);
    ASSERT_TRUE(copy_line->transfer_from(gateway_, IouAmount::from_double(10.0)));
    EXPECT_TRUE(state_.trustline(alice_, gateway_, usd_)->balance().is_zero());
    EXPECT_FALSE(copy.trustline(alice_, gateway_, usd_)->balance().is_zero());

    // The clone's adjacency points into its own lines.
    ASSERT_EQ(copy.lines_of(alice_).size(), 1u);
    EXPECT_EQ(copy.lines_of(alice_)[0], copy_line);
}

}  // namespace
}  // namespace xrpl::ledger
