#include "ledger/amount.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace xrpl::ledger {
namespace {

TEST(XrpAmountTest, ConversionAndArithmetic) {
    const XrpAmount one = XrpAmount::from_xrp(1.0);
    EXPECT_EQ(one.drops, 1'000'000);
    EXPECT_DOUBLE_EQ(one.to_xrp(), 1.0);
    EXPECT_EQ((one + one).drops, 2'000'000);
    EXPECT_EQ((one - one).drops, 0);
}

TEST(IouAmountTest, ZeroByDefault) {
    const IouAmount zero;
    EXPECT_TRUE(zero.is_zero());
    EXPECT_FALSE(zero.is_negative());
    EXPECT_EQ(zero.to_double(), 0.0);
    EXPECT_EQ(zero.to_string(), "0");
}

TEST(IouAmountTest, NormalizationInvariant) {
    const IouAmount v = IouAmount::from_mantissa_exponent(45, -1);  // 4.5
    EXPECT_GE(std::abs(v.mantissa()), IouAmount::kMinMantissa);
    EXPECT_LE(std::abs(v.mantissa()), IouAmount::kMaxMantissa);
    EXPECT_NEAR(v.to_double(), 4.5, 1e-12);
}

TEST(IouAmountTest, FromDoubleRoundTrips) {
    for (const double value : {4.5, 0.001, 123456.789, 1e9, 1e-6, 7.25e11}) {
        const IouAmount v = IouAmount::from_double(value);
        EXPECT_NEAR(v.to_double(), value, value * 1e-12) << value;
    }
}

TEST(IouAmountTest, NegativeValues) {
    const IouAmount v = IouAmount::from_double(-42.5);
    EXPECT_TRUE(v.is_negative());
    EXPECT_NEAR(v.to_double(), -42.5, 1e-9);
    EXPECT_FALSE(v.negated().is_negative());
    EXPECT_NEAR(v.abs().to_double(), 42.5, 1e-9);
}

TEST(IouAmountTest, UnderflowCollapsesToZero) {
    EXPECT_TRUE(IouAmount::from_mantissa_exponent(1, -200).is_zero());
}

TEST(IouAmountTest, OverflowSaturates) {
    const IouAmount v = IouAmount::from_mantissa_exponent(
        IouAmount::kMaxMantissa, IouAmount::kMaxExponent + 5);
    EXPECT_EQ(v.exponent(), IouAmount::kMaxExponent);
    EXPECT_EQ(v.mantissa(), IouAmount::kMaxMantissa);
}

TEST(IouAmountTest, AdditionBasics) {
    const IouAmount a = IouAmount::from_double(1.5);
    const IouAmount b = IouAmount::from_double(2.25);
    EXPECT_NEAR((a + b).to_double(), 3.75, 1e-12);
    EXPECT_NEAR((a - b).to_double(), -0.75, 1e-12);
}

TEST(IouAmountTest, AdditionWithHugeExponentGapKeepsLarger) {
    const IouAmount big = IouAmount::from_double(1e20);
    const IouAmount tiny = IouAmount::from_double(1e-20);
    EXPECT_EQ(big + tiny, big);
    EXPECT_EQ(tiny + big, big);
}

TEST(IouAmountTest, CancellationYieldsExactZero) {
    const IouAmount a = IouAmount::from_double(123.456);
    EXPECT_TRUE((a - a).is_zero());
}

TEST(IouAmountTest, ComparisonOrdering) {
    const IouAmount neg = IouAmount::from_double(-5.0);
    const IouAmount zero;
    const IouAmount small = IouAmount::from_double(1.0);
    const IouAmount large = IouAmount::from_double(1e10);
    EXPECT_LT(neg, zero);
    EXPECT_LT(zero, small);
    EXPECT_LT(small, large);
    EXPECT_GT(neg.abs(), small);
    // Negative magnitudes reverse.
    EXPECT_LT(IouAmount::from_double(-1e10), IouAmount::from_double(-1.0));
}

TEST(IouAmountTest, ScaledBy) {
    const IouAmount v = IouAmount::from_double(100.0);
    EXPECT_NEAR(v.scaled_by(0.5).to_double(), 50.0, 1e-9);
    EXPECT_NEAR(v.scaled_by(2.0).to_double(), 200.0, 1e-9);
    EXPECT_TRUE(v.scaled_by(0.0).is_zero());
}

TEST(IouAmountTest, RoundToPowerOfTenExamples) {
    // The paper's Table I medium-currency examples.
    EXPECT_NEAR(IouAmount::from_double(4.5).round_to_power_of_ten(1).to_double(),
                0.0, 1e-12);
    EXPECT_NEAR(IouAmount::from_double(17.0).round_to_power_of_ten(1).to_double(),
                20.0, 1e-9);
    EXPECT_NEAR(IouAmount::from_double(14.9).round_to_power_of_ten(1).to_double(),
                10.0, 1e-9);
    EXPECT_NEAR(IouAmount::from_double(151.0).round_to_power_of_ten(2).to_double(),
                200.0, 1e-9);
    EXPECT_NEAR(IouAmount::from_double(1499.0).round_to_power_of_ten(3).to_double(),
                1000.0, 1e-9);
}

TEST(IouAmountTest, RoundToNegativePower) {
    // Powerful currencies round to thousandths/cents/tenths.
    EXPECT_NEAR(
        IouAmount::from_double(0.12345).round_to_power_of_ten(-3).to_double(),
        0.123, 1e-12);
    EXPECT_NEAR(
        IouAmount::from_double(0.12345).round_to_power_of_ten(-2).to_double(),
        0.12, 1e-12);
    EXPECT_NEAR(
        IouAmount::from_double(0.12345).round_to_power_of_ten(-1).to_double(), 0.1,
        1e-12);
}

TEST(IouAmountTest, RoundTiesAwayFromZero) {
    EXPECT_NEAR(IouAmount::from_double(15.0).round_to_power_of_ten(1).to_double(),
                20.0, 1e-9);
    EXPECT_NEAR(IouAmount::from_double(-15.0).round_to_power_of_ten(1).to_double(),
                -20.0, 1e-9);
    EXPECT_NEAR(IouAmount::from_double(25.0).round_to_power_of_ten(1).to_double(),
                30.0, 1e-9);
}

TEST(IouAmountTest, RoundingSmallValueToCoarseUnitGivesZero) {
    EXPECT_TRUE(IouAmount::from_double(3.0).round_to_power_of_ten(5).is_zero());
}

TEST(IouAmountTest, RoundingIsIdempotent) {
    util::Rng rng(99);
    for (int i = 0; i < 200; ++i) {
        const IouAmount v = IouAmount::from_double(rng.lognormal(3.0, 4.0));
        for (const int power : {-3, -1, 0, 1, 2, 5}) {
            const IouAmount once = v.round_to_power_of_ten(power);
            EXPECT_EQ(once.round_to_power_of_ten(power), once);
        }
    }
}

TEST(IouAmountTest, ToStringFormats) {
    EXPECT_EQ(IouAmount::from_double(4.5).to_string(), "4.5");
    EXPECT_EQ(IouAmount::from_double(-4.5).to_string(), "-4.5");
    EXPECT_EQ(IouAmount::from_double(1000.0).to_string(), "1000");
    EXPECT_EQ(IouAmount::from_double(0.5).to_string(), "0.5");
    EXPECT_EQ(IouAmount::from_int(42).to_string(), "42");
}

TEST(IouAmountTest, ToStringExtremeUsesScientific) {
    const std::string huge = IouAmount::from_double(1e30).to_string();
    EXPECT_NE(huge.find('e'), std::string::npos);
    const std::string tiny = IouAmount::from_double(1e-30).to_string();
    EXPECT_NE(tiny.find('e'), std::string::npos);
}

TEST(IouAmountTest, HoldsMtlSpamMagnitudes) {
    // The paper observes ~1e22 accumulated MTL debt.
    const IouAmount debt = IouAmount::from_double(1e22);
    EXPECT_NEAR(debt.to_double(), 1e22, 1e10);
    const IouAmount sum = debt + IouAmount::from_double(1e9);
    EXPECT_GE(sum, debt);
}

// Property sweep: addition is commutative and monotone under the
// precision model.
class IouAdditionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IouAdditionProperty, CommutativeAndOrderPreserving) {
    util::Rng rng(GetParam());
    for (int i = 0; i < 500; ++i) {
        const IouAmount a = IouAmount::from_double(rng.lognormal(0.0, 6.0));
        const IouAmount b = IouAmount::from_double(rng.lognormal(0.0, 6.0));
        EXPECT_EQ(a + b, b + a);
        EXPECT_GE(a + b, a);  // b positive
        EXPECT_GE(a + b, b);
        const IouAmount difference = (a + b) - b;
        // Within a decimal ulp of the larger operand (alignment can
        // discard digits of the smaller one).
        const double ulp =
            (std::abs(a.to_double()) + std::abs(b.to_double())) * 1e-12 + 1e-30;
        EXPECT_NEAR(difference.to_double(), a.to_double(), ulp);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IouAdditionProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace xrpl::ledger
