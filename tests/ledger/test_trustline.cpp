#include "ledger/trustline.hpp"

#include <gtest/gtest.h>

namespace xrpl::ledger {
namespace {

class TrustLineTest : public ::testing::Test {
protected:
    const AccountID alice_ = AccountID::from_seed("alice");
    const AccountID bob_ = AccountID::from_seed("bob");
    const Currency usd_ = Currency::from_code("USD");

    [[nodiscard]] TrustLine make_line(double alice_limit, double bob_limit) const {
        const TrustLineKey key = TrustLineKey::make(alice_, bob_, usd_);
        const bool alice_is_low = alice_ == key.low;
        return TrustLine(
            key,
            IouAmount::from_double(alice_is_low ? alice_limit : bob_limit),
            IouAmount::from_double(alice_is_low ? bob_limit : alice_limit));
    }
};

TEST_F(TrustLineTest, KeyIsCanonical) {
    const TrustLineKey a = TrustLineKey::make(alice_, bob_, usd_);
    const TrustLineKey b = TrustLineKey::make(bob_, alice_, usd_);
    EXPECT_EQ(a, b);
    EXPECT_LT(a.low, a.high);
}

TEST_F(TrustLineTest, FreshLineHasZeroBalance) {
    const TrustLine line = make_line(10.0, 20.0);
    EXPECT_TRUE(line.balance().is_zero());
    EXPECT_TRUE(line.balance_for(alice_).is_zero());
    EXPECT_TRUE(line.balance_for(bob_).is_zero());
}

TEST_F(TrustLineTest, CapacityEqualsReceiverLimitInitially) {
    // "A trusts B for 10 USD" caps IOU flow B -> A at 10.
    const TrustLine line = make_line(/*alice_limit=*/10.0, /*bob_limit=*/20.0);
    EXPECT_NEAR(line.capacity_from(bob_).to_double(), 10.0, 1e-9);
    EXPECT_NEAR(line.capacity_from(alice_).to_double(), 20.0, 1e-9);
}

TEST_F(TrustLineTest, TransferMovesBalanceAndReducesCapacity) {
    TrustLine line = make_line(10.0, 20.0);
    ASSERT_TRUE(line.transfer_from(bob_, IouAmount::from_double(4.0)));
    // Alice now holds 4 of Bob-side debt.
    EXPECT_NEAR(line.balance_for(alice_).to_double(), 4.0, 1e-9);
    EXPECT_NEAR(line.balance_for(bob_).to_double(), -4.0, 1e-9);
    EXPECT_NEAR(line.capacity_from(bob_).to_double(), 6.0, 1e-9);
    // Capacity in the opposite direction grew: debt repayment first.
    EXPECT_NEAR(line.capacity_from(alice_).to_double(), 24.0, 1e-9);
}

TEST_F(TrustLineTest, TransferBeyondCapacityFails) {
    TrustLine line = make_line(10.0, 20.0);
    EXPECT_FALSE(line.transfer_from(bob_, IouAmount::from_double(10.5)));
    EXPECT_TRUE(line.balance().is_zero());  // untouched
}

TEST_F(TrustLineTest, ZeroOrNegativeTransferRejected) {
    TrustLine line = make_line(10.0, 20.0);
    EXPECT_FALSE(line.transfer_from(bob_, IouAmount{}));
    EXPECT_FALSE(line.transfer_from(bob_, IouAmount::from_double(-1.0)));
}

TEST_F(TrustLineTest, ExactCapacityTransferSucceeds) {
    TrustLine line = make_line(10.0, 20.0);
    EXPECT_TRUE(line.transfer_from(bob_, IouAmount::from_double(10.0)));
    EXPECT_TRUE(line.capacity_from(bob_).is_zero());
}

TEST_F(TrustLineTest, RoundTripRestoresCapacity) {
    TrustLine line = make_line(10.0, 20.0);
    ASSERT_TRUE(line.transfer_from(bob_, IouAmount::from_double(7.0)));
    ASSERT_TRUE(line.transfer_from(alice_, IouAmount::from_double(7.0)));
    EXPECT_TRUE(line.balance().is_zero());
    EXPECT_NEAR(line.capacity_from(bob_).to_double(), 10.0, 1e-9);
}

TEST_F(TrustLineTest, RevertUndoesTransferExactly) {
    TrustLine line = make_line(10.0, 20.0);
    ASSERT_TRUE(line.transfer_from(bob_, IouAmount::from_double(7.0)));
    line.revert_transfer_from(bob_, IouAmount::from_double(7.0));
    EXPECT_TRUE(line.balance().is_zero());
}

TEST_F(TrustLineTest, RevertWorksEvenAfterLimitLowered) {
    TrustLine line = make_line(10.0, 20.0);
    ASSERT_TRUE(line.transfer_from(bob_, IouAmount::from_double(7.0)));
    // Alice reduces her trust below the outstanding balance.
    line.set_limit_of(alice_, IouAmount::from_double(1.0));
    // A regular reverse transfer would now fail the capacity check…
    line.revert_transfer_from(bob_, IouAmount::from_double(7.0));
    EXPECT_TRUE(line.balance().is_zero());
}

TEST_F(TrustLineTest, LimitsUpdateIndependently) {
    TrustLine line = make_line(10.0, 20.0);
    line.set_limit_of(alice_, IouAmount::from_double(100.0));
    EXPECT_NEAR(line.limit_of(alice_).to_double(), 100.0, 1e-9);
    EXPECT_NEAR(line.limit_of(bob_).to_double(), 20.0, 1e-9);
    EXPECT_NEAR(line.capacity_from(bob_).to_double(), 100.0, 1e-9);
}

TEST_F(TrustLineTest, PeerAndInvolvement) {
    const TrustLine line = make_line(1.0, 1.0);
    EXPECT_EQ(line.peer_of(alice_), bob_);
    EXPECT_EQ(line.peer_of(bob_), alice_);
    EXPECT_TRUE(line.involves(alice_));
    EXPECT_TRUE(line.involves(bob_));
    EXPECT_FALSE(line.involves(AccountID::from_seed("mallory")));
}

TEST_F(TrustLineTest, PaperFigureOneScenario) {
    // Fig 1: A trusts B for 10 USD, B trusts C for 20 USD; C can send
    // up to 10 USD to A through B.
    const AccountID a = AccountID::from_seed("A");
    const AccountID b = AccountID::from_seed("B");
    const AccountID c = AccountID::from_seed("C");

    const TrustLineKey ab_key = TrustLineKey::make(a, b, usd_);
    TrustLine ab(ab_key, IouAmount{}, IouAmount{});
    ab.set_limit_of(a, IouAmount::from_double(10.0));
    const TrustLineKey bc_key = TrustLineKey::make(b, c, usd_);
    TrustLine bc(bc_key, IouAmount{}, IouAmount{});
    bc.set_limit_of(b, IouAmount::from_double(20.0));

    // Payment C -> B -> A of 10 USD.
    EXPECT_TRUE(bc.transfer_from(c, IouAmount::from_double(10.0)));
    EXPECT_TRUE(ab.transfer_from(b, IouAmount::from_double(10.0)));
    EXPECT_NEAR(ab.balance_for(a).to_double(), 10.0, 1e-9);
    // No more capacity toward A.
    EXPECT_TRUE(ab.capacity_from(b).is_zero());
}

}  // namespace
}  // namespace xrpl::ledger
