// Engine parity: the CSR GraphIndex engine and the legacy lines_of()
// scan must be indistinguishable in OUTPUT — identical paths (ties
// included), identical ReplayStats on the Table II workload, and the
// same paths.nodes_expanded totals — on a generated history big
// enough to exercise gateways, hubs, makers, and spam chains. The
// golden test additionally pins the Table II numbers at a fixed
// seed/config so a behaviour change in either engine (or in the
// generator) shows up as a concrete diff, not a silent drift.
//
// Runs in tier-1 at XRPL_THREADS=1 and 8 (tools/tier1.sh): nothing
// here may depend on pool width.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "datagen/history.hpp"
#include "obs/metrics.hpp"
#include "paths/graph_index.hpp"
#include "paths/replay.hpp"
#include "paths/widest_path.hpp"
#include "util/rng.hpp"

namespace xrpl {
namespace {

using paths::PaymentEngine;
using paths::ReplayStats;

/// Small but structured: all account classes present, enough payments
/// for the delivered-workload filter to bite. Fixed seed — the golden
/// expectations below are functions of exactly this config.
datagen::GeneratorConfig parity_config() {
    datagen::GeneratorConfig config;
    config.seed = 20150207;  // the paper's snapshot date, Feb 7 2015
    config.num_users = 500;
    config.num_gateways = 12;
    config.num_market_makers = 20;
    config.num_merchants = 60;
    config.num_hubs = 6;
    config.target_payments = 15'000;
    return config;
}

class ReplayParityTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        history_ = new datagen::GeneratedHistory(
            datagen::generate_history(parity_config()));
        util::Rng rng = util::RngStream(parity_config().seed).derive("replay").rng();
        workload_ = new std::vector<paths::PaymentRequest>(
            datagen::make_delivered_replay_workload(
                history_->population, history_->ledger, 1'500, 0.687, rng));
    }
    static void TearDownTestSuite() {
        delete history_;
        history_ = nullptr;
        delete workload_;
        workload_ = nullptr;
    }

    /// Replay the shared workload through a fresh engine over a fresh
    /// clone, measuring the BFS node-visit total alongside the stats.
    struct MeasuredReplay {
        ReplayStats stats;
        std::uint64_t nodes_expanded = 0;
    };
    static MeasuredReplay run_replay(bool use_index, bool remove_makers) {
        const bool was_enabled = obs::enabled();
        obs::set_enabled(true);
        obs::Counter& expanded = obs::counter("paths.nodes_expanded");
        const std::uint64_t before = expanded.value();

        ledger::LedgerState world = history_->ledger.clone();
        paths::EngineConfig config;
        config.use_path_index = use_index;
        PaymentEngine engine(world, config);
        MeasuredReplay result;
        if (remove_makers) {
            result.stats = paths::replay_without(
                engine, *workload_, history_->population.market_makers, true);
        } else {
            result.stats = paths::replay(engine, *workload_);
        }
        result.nodes_expanded = expanded.value() - before;
        obs::set_enabled(was_enabled);
        return result;
    }

    static void expect_equal(const ReplayStats& a, const ReplayStats& b) {
        EXPECT_EQ(a.cross_submitted, b.cross_submitted);
        EXPECT_EQ(a.cross_delivered, b.cross_delivered);
        EXPECT_EQ(a.single_submitted, b.single_submitted);
        EXPECT_EQ(a.single_delivered, b.single_delivered);
    }

    static datagen::GeneratedHistory* history_;
    static std::vector<paths::PaymentRequest>* workload_;
};

datagen::GeneratedHistory* ReplayParityTest::history_ = nullptr;
std::vector<paths::PaymentRequest>* ReplayParityTest::workload_ = nullptr;

TEST_F(ReplayParityTest, PathFindersAgreeOnSampledPairs) {
    // Both BFS engines, every (user, merchant) pairing sampled across
    // the population, in the merchant's home currency: identical paths
    // node for node — tie-breaking included — or identical absence.
    const datagen::Population& pop = history_->population;
    const paths::TrustGraph indexed(history_->ledger, /*use_index=*/true);
    const paths::TrustGraph scan(history_->ledger, /*use_index=*/false);
    paths::PathFinder find_indexed;
    paths::PathFinder find_scan;
    paths::WidestPathFinder widest_indexed;
    paths::WidestPathFinder widest_scan;

    std::size_t compared = 0;
    std::size_t found = 0;
    for (std::size_t u = 0; u < pop.users.size(); u += 17) {
        for (std::size_t m = 0; m < pop.merchants.size(); m += 7) {
            const ledger::AccountID& from = pop.users[u];
            const ledger::AccountID& to = pop.merchants[m];
            const ledger::Currency currency = pop.merchant_profiles[m].home;
            const auto a = find_indexed.find(indexed, from, to, currency);
            const auto b = find_scan.find(scan, from, to, currency);
            ASSERT_EQ(a.has_value(), b.has_value()) << "pair " << u << "," << m;
            const auto wa = widest_indexed.find(indexed, from, to, currency);
            const auto wb = widest_scan.find(scan, from, to, currency);
            ASSERT_EQ(wa.has_value(), wb.has_value()) << "pair " << u << "," << m;
            ++compared;
            if (a) {
                EXPECT_EQ(a->nodes, b->nodes);
                EXPECT_EQ(a->capacity.to_double(), b->capacity.to_double());
                ++found;
            }
            if (wa) {
                EXPECT_EQ(wa->nodes, wb->nodes);
                EXPECT_EQ(wa->capacity.to_double(), wb->capacity.to_double());
            }
        }
    }
    // The sample must actually exercise both outcomes.
    EXPECT_GT(found, 0u);
    EXPECT_GT(compared, found);
}

TEST_F(ReplayParityTest, FullReplayStatsIdenticalAcrossEngines) {
    const MeasuredReplay indexed = run_replay(/*use_index=*/true, false);
    const MeasuredReplay scan = run_replay(/*use_index=*/false, false);
    expect_equal(indexed.stats, scan.stats);
    // The workload is delivered-filtered: the baseline replays clean.
    EXPECT_EQ(indexed.stats.delivered(), indexed.stats.submitted());
    // Same searches, same frontiers: the visit totals must match too,
    // not just the end results.
    EXPECT_EQ(indexed.nodes_expanded, scan.nodes_expanded);
    EXPECT_GT(indexed.nodes_expanded, 0u);
}

TEST_F(ReplayParityTest, MakerFreeReplayStatsIdenticalAcrossEngines) {
    const MeasuredReplay indexed = run_replay(/*use_index=*/true, true);
    const MeasuredReplay scan = run_replay(/*use_index=*/false, true);
    expect_equal(indexed.stats, scan.stats);
    EXPECT_EQ(indexed.nodes_expanded, scan.nodes_expanded);
    // Removing every maker and offer must cost deliveries (Table II's
    // whole point); equality here would mean the removal did nothing.
    EXPECT_LT(indexed.stats.delivered(), indexed.stats.submitted());
}

TEST_F(ReplayParityTest, GoldenTableTwoStats) {
    // Pinned Table II numbers for parity_config() + the fixed replay
    // stream: any change to the generator, the engine, the finder, or
    // the replay harness that moves these is a REAL behaviour change
    // and must be deliberate. (Values measured once at pin time; both
    // engines produce them — the parity tests above guarantee that.)
    const MeasuredReplay baseline = run_replay(/*use_index=*/true, false);
    EXPECT_EQ(baseline.stats.cross_submitted, 1030u);
    EXPECT_EQ(baseline.stats.cross_delivered, 1030u);
    EXPECT_EQ(baseline.stats.single_submitted, 470u);
    EXPECT_EQ(baseline.stats.single_delivered, 470u);

    // Table II's shape at test scale: cross-currency collapses to zero
    // without makers; single-currency survives partially (the paper:
    // 36.10%, here 377/470 — the synthetic graph is denser).
    const MeasuredReplay removed = run_replay(/*use_index=*/true, true);
    EXPECT_EQ(removed.stats.cross_submitted, 1030u);
    EXPECT_EQ(removed.stats.cross_delivered, 0u);
    EXPECT_EQ(removed.stats.single_submitted, 470u);
    EXPECT_EQ(removed.stats.single_delivered, 377u);
}

}  // namespace
}  // namespace xrpl
