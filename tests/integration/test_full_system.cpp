// The grand loop: a full node with the December-2015 validator
// population seals a mixed workload into the ledger; the paper's
// measurement server watches the stream; the de-anonymization attack
// then runs over exactly the records the node sealed.
#include <gtest/gtest.h>

#include <string>

#include "consensus/monitor.hpp"
#include "consensus/period_config.hpp"
#include "core/deanonymizer.hpp"
#include "node/node.hpp"
#include "util/rng.hpp"

namespace xrpl {
namespace {

using ledger::AccountID;
using ledger::Amount;
using ledger::Currency;
using ledger::IouAmount;
using ledger::Transaction;
using ledger::XrpAmount;

class FullSystemTest : public ::testing::Test {
protected:
    void SetUp() override {
        gateway_ = AccountID::from_seed("fs:gateway");
        state_.create_account(gateway_, XrpAmount::from_xrp(1e6), true);
        for (int i = 0; i < 12; ++i) {
            const AccountID user = AccountID::from_seed("fs:u" + std::to_string(i));
            state_.create_account(user, XrpAmount::from_xrp(10'000));
            users_.push_back(user);
            ledger::TrustLine& line = state_.set_trust(
                user, gateway_, usd_, IouAmount::from_double(1e6));
            ASSERT_TRUE(
                line.transfer_from(gateway_, IouAmount::from_double(2'000)));
        }
    }

    ledger::LedgerState state_;
    AccountID gateway_;
    std::vector<AccountID> users_;
    const Currency usd_ = Currency::from_code("USD");
};

TEST_F(FullSystemTest, SealMonitorAndAttack) {
    node::NodeConfig config;
    config.consensus = consensus::two_week_config(0.001, util::RngStream(99));
    config.max_txs_per_page = 8;
    node::Node node(state_, consensus::december_2015().validators, config);

    consensus::ValidationMonitor monitor(node.validators());
    monitor.attach(node.stream());

    // A mixed workload: XRP transfers and IOU retail with per-user
    // sequences, all through the open ledger.
    util::Rng rng(7);
    std::uint32_t sequence = 1;
    std::size_t submitted = 0;
    for (int i = 0; i < 150; ++i) {
        Transaction tx;
        tx.type = ledger::TxType::kPayment;
        tx.sender = users_[rng.uniform_u64(0, users_.size() - 1)];
        tx.sequence = sequence++;
        tx.destination = users_[rng.uniform_u64(0, users_.size() - 1)];
        if (tx.destination == tx.sender) continue;
        if (rng.bernoulli(0.5)) {
            tx.amount = Amount::xrp(rng.lognormal(3.0, 1.0));
            tx.source_currency = Currency::xrp();
        } else {
            tx.amount = Amount::iou(usd_, rng.lognormal(2.0, 1.0));
            tx.source_currency = usd_;
        }
        ASSERT_EQ(node.submit(tx), node::TransactionQueue::SubmitResult::kQueued);
        ++submitted;
    }

    // Drive consensus until the queue drains; collect sealed records.
    std::vector<ledger::TxRecord> records;
    std::size_t ok = 0;
    for (int round = 0; round < 200 && !node.queue().empty(); ++round) {
        const node::RoundReport report = node.run_round();
        if (!report.outcome.main_closed) continue;
        for (const auto& applied : report.applied) {
            if (applied.success) ++ok;
            (void)applied;
        }
    }
    EXPECT_TRUE(node.queue().empty());
    EXPECT_GT(ok, submitted / 2);
    EXPECT_EQ(node.chain().verify_chain(), node.chain().size());

    // Rebuild the TxRecord view from the sealed chain: every sealed id
    // maps back to a submitted transaction (inclusion is the ledger's
    // public record).
    std::size_t sealed = 0;
    for (const auto& page : node.chain().pages()) sealed += page.tx_ids.size();
    EXPECT_EQ(sealed, submitted);

    // The measurement server saw the rounds: cores validated, the
    // forked validators validated nothing.
    std::uint64_t core_valid = 0;
    std::uint64_t forked_valid = 0;
    std::uint64_t forked_total = 0;
    for (const auto& report : monitor.report()) {
        if (report.behavior == consensus::ValidatorBehavior::kCore) {
            core_valid += report.valid_pages;
        }
        if (report.behavior == consensus::ValidatorBehavior::kForked) {
            forked_valid += report.valid_pages;
            forked_total += report.total_pages;
        }
    }
    EXPECT_GT(core_valid, 0u);
    EXPECT_EQ(forked_valid, 0u);
    EXPECT_GT(forked_total, 0u);
}

TEST_F(FullSystemTest, AttackOverNodeSealedHistory) {
    node::NodeConfig config;
    config.consensus.seed = 4;
    config.consensus.start_time = util::from_calendar(2015, 8, 1);
    config.max_txs_per_page = 1;  // one payment per sealed page
    std::vector<consensus::ValidatorSpec> unl;
    for (int i = 0; i < 5; ++i) {
        consensus::ValidatorSpec v;
        v.label = "R" + std::to_string(i);
        v.behavior = consensus::ValidatorBehavior::kCore;
        v.availability = 1.0;
        v.on_unl = true;
        unl.push_back(v);
    }
    node::Node node(state_, unl, config);

    // Users pay the same shop distinct amounts; records carry the
    // CLOSE time of the page that sealed them.
    const AccountID shop = AccountID::from_seed("fs:u0");
    std::vector<ledger::TxRecord> records;
    std::uint32_t sequence = 1;
    for (std::size_t u = 1; u < users_.size(); ++u) {
        Transaction tx;
        tx.type = ledger::TxType::kPayment;
        tx.sender = users_[u];
        tx.sequence = sequence++;
        tx.destination = shop;
        tx.amount = Amount::iou(usd_, 30.0 + static_cast<double>(u) * 25.0);
        tx.source_currency = usd_;
        node.submit(tx);
    }
    std::size_t delivered = 0;
    while (!node.queue().empty()) {
        const node::RoundReport report = node.run_round();
        for (const auto& applied : report.applied) {
            if (applied.success) ++delivered;
        }
    }
    ASSERT_EQ(delivered, users_.size() - 1);

    // The attacker's dataset, rebuilt from public ledger data only:
    // one payment per page, so each record carries its page's close
    // time (start + round * interval).
    std::int64_t t = config.consensus.start_time.seconds;
    for (std::size_t u = 1; u < users_.size(); ++u) {
        ledger::TxRecord record;
        record.sender = users_[u];
        record.destination = shop;
        record.currency = usd_;
        record.amount = IouAmount::from_double(30.0 + static_cast<double>(u) * 25.0);
        t += static_cast<std::int64_t>(config.consensus.round_interval_seconds);
        record.time = util::RippleTime{t};
        records.push_back(record);
    }

    const core::Deanonymizer deanonymizer(records);
    // Alice saw user 5 pay ~155 USD: the amount alone (rounded to the
    // nearest ten) plus the shop pins the sender.
    ledger::TxRecord observation = records[4];
    observation.sender = AccountID{};
    const auto candidates =
        deanonymizer.attack(observation, core::full_resolution());
    ASSERT_EQ(candidates.size(), 1u);
    EXPECT_EQ(candidates[0], users_[5]);
}

}  // namespace
}  // namespace xrpl
