// End-to-end integration: generate a history with the real engine,
// then run the paper's analyses over it and check the qualitative
// claims hold (the benches check the quantitative shape at full
// scale; these bounds are loose so the test stays robust at CI size).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "analytics/currency_stats.hpp"
#include "analytics/survival.hpp"
#include "analytics/top_users.hpp"
#include "core/ig_study.hpp"
#include "datagen/history.hpp"
#include "paths/replay.hpp"

namespace xrpl {
namespace {

datagen::GeneratorConfig integration_config() {
    datagen::GeneratorConfig config;
    config.seed = 99;
    config.num_users = 1'500;
    config.num_gateways = 30;
    config.num_market_makers = 50;
    config.num_merchants = 200;
    config.num_hubs = 15;
    config.target_payments = 60'000;
    return config;
}

class EndToEndTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        history_ = new datagen::GeneratedHistory(
            datagen::generate_history(integration_config()));
    }
    static void TearDownTestSuite() {
        delete history_;
        history_ = nullptr;
    }
    static datagen::GeneratedHistory* history_;
};

datagen::GeneratedHistory* EndToEndTest::history_ = nullptr;

TEST_F(EndToEndTest, FigureThreeShapeHolds) {
    const auto rows = core::run_ig_study(history_->payments);
    ASSERT_EQ(rows.size(), 10u);
    const auto ig = [&](std::size_t i) { return rows[i].result.information_gain(); };

    // Full resolution de-anonymizes nearly everything.
    EXPECT_GT(ig(0), 0.93);
    // Removing the currency barely matters.
    EXPECT_GT(ig(1), ig(0) - 0.05);
    // Timestamp is the dominant feature: dropping it hurts most.
    EXPECT_LT(ig(7), ig(1));
    EXPECT_LT(ig(7), ig(2));
    EXPECT_LT(ig(7), ig(3));
    // The weakest configuration collapses.
    EXPECT_LT(ig(9), 0.25);
    // Full ladder is monotone.
    EXPECT_GE(ig(0), ig(4));
    EXPECT_GE(ig(4), ig(5));
    EXPECT_GE(ig(5), ig(6));
}

TEST_F(EndToEndTest, LatteAttackRecoversAVictim) {
    // Find some real retail payment and replay the bar scenario on it.
    const core::Deanonymizer deanonymizer(history_->payments);
    const core::ResolutionConfig config = core::full_resolution();
    std::size_t attacks = 0;
    std::size_t unique_hits = 0;
    for (std::size_t i = 0; i < history_->payments.size() && attacks < 200;
         i += 31) {
        const ledger::TxRecord observed = history_->payments.row(i);
        const auto candidates = deanonymizer.attack(observed, config);
        ASSERT_FALSE(candidates.empty());
        ++attacks;
        if (candidates.size() == 1) {
            ++unique_hits;
            EXPECT_EQ(candidates[0], observed.sender);
            // "Complete and unlimited access" to the victim's history.
            const auto life = deanonymizer.history_of(candidates[0]);
            EXPECT_FALSE(life.empty());
        }
    }
    EXPECT_GT(static_cast<double>(unique_hits) / static_cast<double>(attacks),
              0.9);
}

TEST_F(EndToEndTest, FigureFourXrpLeadsAndEurTrails) {
    const auto ranked = analytics::rank_currencies(history_->currency_counts);
    ASSERT_GT(ranked.size(), 10u);
    EXPECT_TRUE(ranked[0].currency.is_xrp());
    // EUR is far down the list despite being a major world currency.
    std::size_t eur_rank = 0;
    for (std::size_t i = 0; i < ranked.size(); ++i) {
        if (ranked[i].currency == ledger::Currency::from_code("EUR")) {
            eur_rank = i;
        }
    }
    EXPECT_GT(eur_rank, 6u);
}

TEST_F(EndToEndTest, FigureFiveSurvivalOrdering) {
    // BTC payments are micro, MTL payments are ~1e9: at a threshold of
    // 1e6 the MTL survival is ~1 and BTC's ~0.
    const auto& by_currency = history_->amounts_by_currency;
    const auto btc = by_currency.find(datagen::cur("BTC"));
    const auto mtl = by_currency.find(datagen::cur("MTL"));
    ASSERT_NE(btc, by_currency.end());
    ASSERT_NE(mtl, by_currency.end());
    const analytics::SurvivalFunction btc_s(btc->second);
    const analytics::SurvivalFunction mtl_s(mtl->second);
    EXPECT_LT(btc_s.survival(1e6), 0.01);
    EXPECT_GT(mtl_s.survival(1e6), 0.95);
    EXPECT_LT(btc_s.median(), 1.0);
    EXPECT_GT(mtl_s.median(), 1e8);
}

TEST_F(EndToEndTest, FigureSevenTopUsersSplitGatewaysFromHubs) {
    const auto rate = [](ledger::Currency c) { return datagen::usd_value(c); };
    const auto label = [&](const ledger::AccountID& id) {
        return history_->population.label_of(id);
    };
    const auto top = analytics::top_intermediaries(
        history_->intermediary_counts, history_->ledger, 50, rate, label);
    ASSERT_GE(top.size(), 20u);

    std::size_t gateways = 0;
    double gateway_balance_sum = 0.0;
    double hub_balance_sum = 0.0;
    const auto is_rail = [&](const ledger::AccountID& id) {
        const auto& rails = history_->population.cck_rails;
        return std::find(rails.begin(), rails.end(), id) != rails.end();
    };
    for (const auto& user : top) {
        if (user.is_gateway) {
            ++gateways;
            gateway_balance_sum += user.balance;
            // Gateways are the trusted parties.
            EXPECT_GT(user.trust_received, 0.0);
        } else if (!is_rail(user.account)) {
            // The spam rails issue their own token and carry issuer-like
            // (negative) balances; the ordinary hubs/makers hold credit.
            hub_balance_sum += user.balance;
        }
    }
    // Both populations appear in the top-50 (paper: just 20/50 are
    // gateways), and their balance signs differ in aggregate.
    EXPECT_GT(gateways, 3u);
    EXPECT_LT(gateways, top.size());
    EXPECT_LT(gateway_balance_sum, 0.0);  // gateways owe
    EXPECT_GT(hub_balance_sum, 0.0);      // hubs/makers hold credit

    // The two most active nodes are NOT gateways and sit well above
    // everyone else — the paper's rp2PaY / r42Ccn mystery accounts.
    EXPECT_FALSE(top[0].is_gateway);
    EXPECT_FALSE(top[1].is_gateway);
    const std::set<std::string> leaders = {top[0].label.substr(0, 6),
                                           top[1].label.substr(0, 6)};
    EXPECT_TRUE(leaders.contains("rp2PaY"));
    EXPECT_TRUE(leaders.contains("r42Ccn"));
    // The paper puts the two rails "almost an order of magnitude"
    // above every gateway. At this CI scale each rail only narrowly
    // clears the busiest gateway, but the pair (one operator: both
    // rails "activated by the same third account") clears it by a
    // wide factor; the gap widens with history length.
    double busiest_gateway = 0.0;
    for (const auto& user : top) {
        if (!user.is_gateway) continue;
        busiest_gateway = std::max(
            busiest_gateway, static_cast<double>(user.times_intermediate));
    }
    EXPECT_GT(static_cast<double>(top[1].times_intermediate), busiest_gateway);
    EXPECT_GT(static_cast<double>(top[0].times_intermediate +
                                  top[1].times_intermediate),
              1.8 * busiest_gateway);
}

TEST_F(EndToEndTest, TableTwoMarketMakerRemoval) {
    util::Rng rng(4242);
    // As in the paper: replay the payments that were actually
    // delivered after the snapshot.
    const auto payments = datagen::make_delivered_replay_workload(
        history_->population, history_->ledger, 3'000, 0.687, rng);
    ASSERT_GE(payments.size(), 2'500u);

    // Baseline replay on a clone: delivered payments re-deliver.
    ledger::LedgerState baseline_world = history_->ledger.clone();
    paths::PaymentEngine baseline_engine(baseline_world);
    const paths::ReplayStats baseline = paths::replay(baseline_engine, payments);
    EXPECT_DOUBLE_EQ(baseline.cross_rate(), 1.0);
    EXPECT_DOUBLE_EQ(baseline.single_rate(), 1.0);
    EXPECT_NEAR(static_cast<double>(baseline.cross_submitted) /
                    static_cast<double>(baseline.submitted()),
                0.687, 0.05);

    // Remove the Market Makers and all offers.
    ledger::LedgerState mmless_world = history_->ledger.clone();
    paths::PaymentEngine mmless_engine(mmless_world);
    const paths::ReplayStats without = paths::replay_without(
        mmless_engine, payments, history_->population.market_makers, true);

    // "All the cross-currency payments fail."
    EXPECT_EQ(without.cross_delivered, 0u);
    // Single-currency delivery degrades sharply but does not vanish
    // (paper: 36.10% deliver).
    EXPECT_GT(without.single_rate(), 0.05);
    EXPECT_LT(without.single_rate(), 0.75);
    // Overall delivery collapses (paper: 11.2%).
    EXPECT_LT(without.total_rate(), 0.35);
}

TEST_F(EndToEndTest, LedgerInvariantsHoldAfterTheWholeHistory) {
    // Every trust line balance within its limits' envelope: a line's
    // claim can never exceed the holder's declared limit (transfers
    // enforce it; this verifies nothing bypassed the checks).
    std::size_t checked = 0;
    for (const auto& user : history_->population.users) {
        for (const ledger::TrustLine* line : history_->ledger.lines_of(user)) {
            const auto claim = line->balance_for(user);
            if (!claim.is_negative()) {
                EXPECT_LE(claim.to_double(),
                          line->limit_of(user).to_double() * (1 + 1e-9));
            }
            ++checked;
        }
    }
    EXPECT_GT(checked, 0u);
}

}  // namespace
}  // namespace xrpl
