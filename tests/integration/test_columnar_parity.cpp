// Row vs columnar parity: every column-native overload must produce
// bit-identical results to the legacy row path, because both feed the
// same fingerprint mixing sequence. A generated history (interned
// accounts, repeated hubs, spam campaigns, several currencies) is the
// adversarial input here — any drift in rounding, truncation, or
// domain tagging shows up as a count mismatch.
#include <gtest/gtest.h>

#include "core/anonymity.hpp"
#include "core/deanonymizer.hpp"
#include "core/ig_study.hpp"
#include "core/mitigation.hpp"
#include "datagen/dataset.hpp"
#include "datagen/history.hpp"
#include "ledger/payment_columns.hpp"
#include "snap/dataset_cache.hpp"
#include "util/file_io.hpp"

namespace xrpl {
namespace {

datagen::GeneratorConfig parity_config() {
    datagen::GeneratorConfig config;
    config.seed = 4242;
    config.num_users = 700;
    config.num_gateways = 20;
    config.num_market_makers = 30;
    config.num_merchants = 100;
    config.num_hubs = 10;
    config.target_payments = 20'000;
    return config;
}

class ColumnarParityTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        history_ = new datagen::GeneratedHistory(
            datagen::generate_history(parity_config()));
        records_ = new std::vector<ledger::TxRecord>(history_->to_records());
    }
    static void TearDownTestSuite() {
        delete records_;
        records_ = nullptr;
        delete history_;
        history_ = nullptr;
    }
    static datagen::GeneratedHistory* history_;
    static std::vector<ledger::TxRecord>* records_;
};

datagen::GeneratedHistory* ColumnarParityTest::history_ = nullptr;
std::vector<ledger::TxRecord>* ColumnarParityTest::records_ = nullptr;

TEST_F(ColumnarParityTest, FingerprintColumnMatchesRowFingerprints) {
    for (const core::ResolutionConfig& config : core::fig3_configurations()) {
        const std::vector<std::uint64_t> fingerprints =
            core::fingerprint_column(history_->payments.view(), config);
        ASSERT_EQ(fingerprints.size(), records_->size());
        // Spot-check across the whole history (every row would be slow
        // times ten configurations).
        for (std::size_t i = 0; i < records_->size(); i += 67) {
            EXPECT_EQ(fingerprints[i], core::fingerprint((*records_)[i], config))
                << "row " << i << " under " << config.label();
        }
    }
}

TEST_F(ColumnarParityTest, IgStudyIdenticalThroughBothPaths) {
    const auto row_study = core::run_ig_study(*records_);
    const auto col_study = core::run_ig_study(history_->payments);
    ASSERT_EQ(row_study.size(), col_study.size());
    for (std::size_t i = 0; i < row_study.size(); ++i) {
        EXPECT_EQ(row_study[i].result.total_payments,
                  col_study[i].result.total_payments)
            << row_study[i].config.label();
        EXPECT_EQ(row_study[i].result.uniquely_identified,
                  col_study[i].result.uniquely_identified)
            << row_study[i].config.label();
    }
}

TEST_F(ColumnarParityTest, AnonymityProfileIdentical) {
    for (const core::ResolutionConfig& config : core::fig3_configurations()) {
        const core::AnonymityProfile rows =
            core::analyze_anonymity(*records_, config);
        const core::AnonymityProfile cols =
            core::analyze_anonymity(history_->payments.view(), config);
        EXPECT_EQ(rows.histogram(), cols.histogram()) << config.label();
        EXPECT_EQ(rows.total_payments(), cols.total_payments());
    }
}

TEST_F(ColumnarParityTest, AttackAndHistoryIdentical) {
    const core::Deanonymizer row_path(*records_);
    const core::Deanonymizer col_path(history_->payments);
    const core::ResolutionConfig config = core::full_resolution();
    for (std::size_t i = 0; i < records_->size(); i += 997) {
        const ledger::TxRecord& observation = (*records_)[i];
        EXPECT_EQ(row_path.attack(observation, config),
                  col_path.attack(observation, config));
        EXPECT_EQ(row_path.history_of(observation.sender).size(),
                  col_path.history_of(observation.sender).size());
    }
}

TEST_F(ColumnarParityTest, AttackIndexIdentical) {
    const core::ResolutionConfig config = core::full_resolution();
    const core::AttackIndex row_index(*records_, config);
    const core::AttackIndex col_index(history_->payments, config);
    EXPECT_EQ(row_index.bucket_count(), col_index.bucket_count());
    for (std::size_t i = 0; i < records_->size(); i += 997) {
        const ledger::TxRecord& observation = (*records_)[i];
        EXPECT_EQ(row_index.matches(observation), col_index.matches(observation));
        EXPECT_EQ(row_index.candidate_senders(observation),
                  col_index.candidate_senders(observation));
    }
}

TEST_F(ColumnarParityTest, CacheServedColumnsAnalyzeIdentically) {
    // The persistence path end to end: publish this history into a
    // dataset cache under its real content key, load it back, and run
    // the paper's headline analysis on both copies. A snapshot that
    // survives its CRCs but perturbed any column would diverge here.
    const std::string dir = "columnar_parity_cache.tmp";
    const snap::DatasetCache cache(dir);
    const std::string key = datagen::dataset_key(parity_config());
    ASSERT_TRUE(util::remove_file(cache.path_for(key)));
    ASSERT_TRUE(cache.store(key, history_->payments));

    const auto served = cache.try_load(key);
    ASSERT_TRUE(served.has_value());
    EXPECT_EQ(ledger::columns_fingerprint(*served),
              ledger::columns_fingerprint(history_->payments));

    const auto fresh_study = core::run_ig_study(history_->payments);
    const auto cached_study = core::run_ig_study(*served);
    ASSERT_EQ(fresh_study.size(), cached_study.size());
    for (std::size_t i = 0; i < fresh_study.size(); ++i) {
        EXPECT_EQ(fresh_study[i].result.uniquely_identified,
                  cached_study[i].result.uniquely_identified)
            << fresh_study[i].config.label();
    }
    util::remove_file(cache.path_for(key));
}

TEST_F(ColumnarParityTest, MitigationReportIdentical) {
    const auto trustlines_of = [&](const ledger::AccountID& owner) {
        return history_->ledger.lines_of(owner).size();
    };
    core::WalletRotationConfig config;
    config.wallets_per_sender = 3;
    const core::ResolutionConfig resolution = core::full_resolution();

    const core::MitigationReport rows = core::evaluate_wallet_rotation(
        *records_, resolution, config, trustlines_of);
    const core::MitigationReport cols = core::evaluate_wallet_rotation(
        history_->payments, resolution, config, trustlines_of);

    EXPECT_EQ(rows.baseline.uniquely_identified, cols.baseline.uniquely_identified);
    EXPECT_EQ(rows.rotated.uniquely_identified, cols.rotated.uniquely_identified);
    EXPECT_EQ(rows.linked.uniquely_identified, cols.linked.uniquely_identified);
    EXPECT_EQ(rows.baseline.total_payments, cols.baseline.total_payments);
    EXPECT_EQ(rows.wallets_created, cols.wallets_created);
    EXPECT_EQ(rows.trustlines_created, cols.trustlines_created);
    EXPECT_DOUBLE_EQ(rows.xrp_reserve_cost, cols.xrp_reserve_cost);
}

}  // namespace
}  // namespace xrpl
