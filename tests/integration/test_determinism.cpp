// Thread-count independence: every chunked scan must produce
// byte-identical results whether the shared pool runs serial
// (XRPL_THREADS=1) or wide (8 threads on any number of cores). The
// ordered chunk merge is the mechanism; these tests are the proof
// against a generated history big enough to split into several chunks
// (20k rows / 8192-row chunks = 3).
//
// The second half checks the scans against the aggregates the history
// builder streams out row by row — the chunked scan of a column must
// reproduce the serial streaming pass exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <string_view>
#include <utility>
#include <vector>

#include "analytics/currency_stats.hpp"
#include "analytics/network_stats.hpp"
#include "analytics/path_stats.hpp"
#include "analytics/survival.hpp"
#include "analytics/top_users.hpp"
#include "core/deanonymizer.hpp"
#include "core/ig_study.hpp"
#include "datagen/history.hpp"
#include "exec/thread_pool.hpp"
#include "util/rng.hpp"

namespace xrpl {
namespace {

datagen::GeneratorConfig determinism_config() {
    datagen::GeneratorConfig config;
    config.seed = 20150831;
    config.num_users = 600;
    config.num_gateways = 15;
    config.num_market_makers = 25;
    config.num_merchants = 80;
    config.num_hubs = 8;
    config.target_payments = 20'000;
    return config;
}

class DeterminismTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        history_ = new datagen::GeneratedHistory(
            datagen::generate_history(determinism_config()));
    }
    static void TearDownTestSuite() {
        delete history_;
        history_ = nullptr;
    }
    static datagen::GeneratedHistory* history_;
};

datagen::GeneratedHistory* DeterminismTest::history_ = nullptr;

/// Run `scan` under a width-1 and a width-8 pool and return both
/// results for comparison.
template <typename Scan>
auto serial_vs_wide(const Scan& scan) {
    exec::ScopedParallelism serial(1);
    auto one = scan();
    exec::ScopedParallelism wide(8);
    auto eight = scan();
    return std::pair{std::move(one), std::move(eight)};
}

TEST_F(DeterminismTest, IgStudyRowsIdenticalAcrossThreadCounts) {
    const auto [serial, wide] = serial_vs_wide(
        [&] { return core::run_ig_study(history_->payments.view()); });
    ASSERT_EQ(serial.size(), wide.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].result.total_payments, wide[i].result.total_payments)
            << serial[i].config.label();
        EXPECT_EQ(serial[i].result.uniquely_identified,
                  wide[i].result.uniquely_identified)
            << serial[i].config.label();
    }
}

TEST_F(DeterminismTest, AttackIndexIdenticalAcrossThreadCounts) {
    const core::ResolutionConfig config = core::full_resolution();
    const auto [serial, wide] = serial_vs_wide([&] {
        return core::AttackIndex(history_->payments.view(), config);
    });
    EXPECT_EQ(serial.bucket_count(), wide.bucket_count());
    const std::vector<ledger::TxRecord> records = history_->to_records();
    for (std::size_t i = 0; i < records.size(); i += 331) {
        // matches() returns row indices in bucket order — any merge
        // reordering would show up here, not just a count drift.
        EXPECT_EQ(serial.matches(records[i]), wide.matches(records[i]))
            << "row " << i;
    }
}

TEST_F(DeterminismTest, CurrencyRanksIdenticalAcrossThreadCounts) {
    const auto [serial, wide] = serial_vs_wide(
        [&] { return analytics::rank_currencies(history_->payments.view()); });
    ASSERT_EQ(serial.size(), wide.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].currency, wide[i].currency);
        EXPECT_EQ(serial[i].payments, wide[i].payments);
        EXPECT_EQ(serial[i].share, wide[i].share);
    }
}

TEST_F(DeterminismTest, SurvivalSamplesIdenticalAcrossThreadCounts) {
    const auto [full_serial, full_wide] = serial_vs_wide(
        [&] { return analytics::amount_samples(history_->payments.view()); });
    EXPECT_EQ(full_serial, full_wide);

    for (const auto& [currency, expected] : history_->amounts_by_currency) {
        const auto [serial, wide] = serial_vs_wide([&, c = currency] {
            return analytics::amount_samples(history_->payments.view(), c);
        });
        // Filtered samples concatenate chunk-local vectors — the one
        // merge where ordering is the whole result.
        EXPECT_EQ(serial, wide) << std::string_view(currency.code.data(), 3);
    }
}

TEST_F(DeterminismTest, TopUsersTableIdenticalAcrossThreadCounts) {
    const auto [serial, wide] = serial_vs_wide(
        [&] { return analytics::sender_activity(history_->payments.view()); });
    EXPECT_EQ(serial, wide);
    EXPECT_EQ(analytics::coverage_of_top(serial, 50),
              analytics::coverage_of_top(wide, 50));
}

TEST_F(DeterminismTest, NetworkStatsIdenticalAcrossThreadCounts) {
    const auto [serial, wide] = serial_vs_wide([&] {
        return analytics::compute_network_stats(history_->ledger,
                                                history_->payments.view());
    });
    EXPECT_EQ(serial.active_senders, wide.active_senders);
    EXPECT_EQ(serial.active_participants, wide.active_participants);
    EXPECT_EQ(serial.degree_histogram, wide.degree_histogram);
}

TEST_F(DeterminismTest, PathStatsIdenticalAcrossThreadCounts) {
    // Synthetic per-payment hop/parallel columns (the generator keeps
    // only histograms, so the scan input is reconstructed here).
    util::Rng rng(99);
    std::vector<std::uint32_t> hops(20'000);
    std::vector<std::uint32_t> parallel(20'000);
    for (std::size_t i = 0; i < hops.size(); ++i) {
        hops[i] = static_cast<std::uint32_t>(rng.uniform_u64(0, 8));
        parallel[i] =
            hops[i] == 0 ? 0 : static_cast<std::uint32_t>(rng.uniform_u64(1, 4));
    }
    const auto [serial, wide] = serial_vs_wide(
        [&] { return analytics::accumulate_path_stats(hops, parallel); });
    EXPECT_EQ(serial.hops.items(), wide.hops.items());
    EXPECT_EQ(serial.parallel.items(), wide.parallel.items());
    EXPECT_EQ(serial.hop_anomaly(), wide.hop_anomaly());
}

// ---- scan vs streaming-aggregate parity ---------------------------------

TEST_F(DeterminismTest, CurrencyScanMatchesStreamedCounts) {
    const auto scanned = analytics::count_currencies(history_->payments.view());
    EXPECT_EQ(scanned, history_->currency_counts);
}

TEST_F(DeterminismTest, AmountScanMatchesStreamedSamples) {
    for (const auto& [currency, streamed] : history_->amounts_by_currency) {
        const std::vector<float> scanned =
            analytics::amount_samples(history_->payments.view(), currency);
        // Same rows, same order, same float narrowing.
        EXPECT_EQ(scanned, streamed) << std::string_view(currency.code.data(), 3);
    }
}

TEST_F(DeterminismTest, NetworkScanMatchesRowOverload) {
    const std::vector<ledger::TxRecord> records = history_->to_records();
    // Deliberately exercising the deprecated shim: it must keep
    // matching the columnar scan it forwards to.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    const analytics::NetworkStats rows =
        analytics::compute_network_stats(history_->ledger, records);
#pragma GCC diagnostic pop
    const analytics::NetworkStats cols = analytics::compute_network_stats(
        history_->ledger, history_->payments.view());
    EXPECT_EQ(rows.active_senders, cols.active_senders);
    EXPECT_EQ(rows.active_participants, cols.active_participants);
}

TEST_F(DeterminismTest, PathScanMatchesHistogramBuild) {
    util::Rng rng(7);
    std::vector<std::uint32_t> hops(5000);
    std::vector<std::uint32_t> parallel(5000);
    std::vector<std::uint64_t> hop_hist(16, 0);
    std::vector<std::uint64_t> parallel_hist(16, 0);
    for (std::size_t i = 0; i < hops.size(); ++i) {
        hops[i] = static_cast<std::uint32_t>(rng.uniform_u64(0, 10));
        parallel[i] =
            hops[i] == 0 ? 0 : static_cast<std::uint32_t>(rng.uniform_u64(1, 6));
        ++hop_hist[hops[i]];
        ++parallel_hist[parallel[i]];
    }
    hop_hist[0] = parallel_hist[0] = 0;  // direct transfers not histogrammed

    const analytics::PathStats scanned =
        analytics::accumulate_path_stats(hops, parallel);
    const analytics::PathStats built =
        analytics::make_path_stats(hop_hist, parallel_hist);
    EXPECT_EQ(scanned.hops.items(), built.hops.items());
    EXPECT_EQ(scanned.parallel.items(), built.parallel.items());
    EXPECT_EQ(scanned.multi_hop_total(), built.multi_hop_total());
}

}  // namespace
}  // namespace xrpl
