// Observation must never perturb results: every analytical output is
// byte-identical with XRPL_OBS recording off or on, serial or wide.
// This is the acceptance gate for instrumenting hot paths — counters
// are striped side channels and phases live on the calling thread, so
// none of them can reorder a chunk merge or touch a value.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analytics/survival.hpp"
#include "core/fingerprint.hpp"
#include "core/ig_study.hpp"
#include "core/resolution.hpp"
#include "datagen/history.hpp"
#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"

namespace xrpl {
namespace {

datagen::GeneratorConfig parity_config() {
    datagen::GeneratorConfig config;
    config.seed = 20170605;
    config.num_users = 400;
    config.num_gateways = 10;
    config.num_market_makers = 20;
    config.num_merchants = 50;
    config.num_hubs = 6;
    config.target_payments = 12'000;
    return config;
}

/// One generated history shared by all parity checks; every test
/// restores recording to OFF (the process default) when it finishes.
class ObsParityTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        obs::set_enabled(false);
        history_ = new datagen::GeneratedHistory(
            datagen::generate_history(parity_config()));
    }
    static void TearDownTestSuite() {
        delete history_;
        history_ = nullptr;
    }
    void TearDown() override {
        obs::reset_all();
        obs::set_enabled(false);
    }

    /// Run `scan` four ways — recording {off, on} × pool width {1, 8} —
    /// and assert every result equals the unobserved serial baseline.
    template <typename Scan>
    static void expect_invariant(const Scan& scan) {
        obs::set_enabled(false);
        exec::ScopedParallelism serial(1);
        const auto baseline = scan();
        for (const bool enabled : {false, true}) {
            obs::set_enabled(enabled);
            obs::reset_all();
            for (const std::size_t width : {std::size_t{1}, std::size_t{8}}) {
                exec::ScopedParallelism pool(width);
                EXPECT_EQ(scan(), baseline)
                    << "obs=" << enabled << " width=" << width;
            }
        }
    }

    static datagen::GeneratedHistory* history_;
};

datagen::GeneratedHistory* ObsParityTest::history_ = nullptr;

TEST_F(ObsParityTest, FingerprintColumnUnperturbed) {
    const core::ResolutionConfig config = core::full_resolution();
    expect_invariant([&] {
        return core::fingerprint_column(history_->payments.view(), config);
    });
}

TEST_F(ObsParityTest, IgStudyUnperturbed) {
    expect_invariant([&] {
        std::vector<std::uint64_t> identified;
        for (const auto& row : core::run_ig_study(history_->payments.view())) {
            identified.push_back(row.result.uniquely_identified);
            identified.push_back(row.result.total_payments);
        }
        return identified;
    });
}

TEST_F(ObsParityTest, AmountSamplesUnperturbed) {
    expect_invariant(
        [&] { return analytics::amount_samples(history_->payments.view()); });
}

TEST_F(ObsParityTest, RecordingActuallyHappenedWhileEnabled) {
    // Guard against vacuous parity: the enabled legs above must have
    // exercised the instrumented paths. Re-run one scan with recording
    // on and check the hot counter moved.
    obs::set_enabled(true);
    obs::reset_all();
    const core::ResolutionConfig config = core::full_resolution();
    (void)core::fingerprint_column(history_->payments.view(), config);
    EXPECT_EQ(obs::counter("core.fingerprint.rows").value(),
              history_->payments.view().size());
}

}  // namespace
}  // namespace xrpl
