#include "paths/order_book.hpp"

#include <gtest/gtest.h>

namespace xrpl::paths {
namespace {

using ledger::AccountID;
using ledger::Amount;
using ledger::BookKey;
using ledger::Currency;
using ledger::IouAmount;
using ledger::LedgerState;

const Currency kUsd = Currency::from_code("USD");
const Currency kEur = Currency::from_code("EUR");

class OrderBookTest : public ::testing::Test {
protected:
    void SetUp() override {
        maker1_ = AccountID::from_seed("maker1");
        maker2_ = AccountID::from_seed("maker2");
        state_.create_account(maker1_, ledger::XrpAmount::from_xrp(10.0));
        state_.create_account(maker2_, ledger::XrpAmount::from_xrp(10.0));
        // maker1: 1.25 USD per EUR; maker2: 1.30 USD per EUR.
        id1_ = state_.place_offer(maker1_, Amount::iou(kUsd, 125.0),
                                  Amount::iou(kEur, 100.0));
        id2_ = state_.place_offer(maker2_, Amount::iou(kUsd, 260.0),
                                  Amount::iou(kEur, 200.0));
    }

    LedgerState state_;
    AccountID maker1_, maker2_;
    std::uint64_t id1_ = 0, id2_ = 0;
    const BookKey key_{kUsd, kEur};
};

TEST_F(OrderBookTest, BestRateIsLowest) {
    const auto rate = best_rate(state_, key_);
    ASSERT_TRUE(rate.has_value());
    EXPECT_NEAR(*rate, 1.25, 1e-9);
    EXPECT_FALSE(best_rate(state_, BookKey{kEur, kUsd}).has_value());
}

TEST_F(OrderBookTest, DepthSumsGets) {
    EXPECT_NEAR(book_depth(state_, key_).to_double(), 300.0, 1e-9);
}

TEST_F(OrderBookTest, PlanTakesBestOfferFirst) {
    const auto plan = plan_fills(state_, key_, IouAmount::from_double(50.0));
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].owner, maker1_);
    EXPECT_NEAR(plan[0].gets.to_double(), 50.0, 1e-9);
    EXPECT_NEAR(plan[0].pays.to_double(), 62.5, 1e-6);
}

TEST_F(OrderBookTest, PlanSpillsToSecondOffer) {
    const auto plan = plan_fills(state_, key_, IouAmount::from_double(150.0));
    ASSERT_EQ(plan.size(), 2u);
    EXPECT_EQ(plan[0].owner, maker1_);
    EXPECT_NEAR(plan[0].gets.to_double(), 100.0, 1e-9);
    EXPECT_EQ(plan[1].owner, maker2_);
    EXPECT_NEAR(plan[1].gets.to_double(), 50.0, 1e-9);
}

TEST_F(OrderBookTest, PlanStopsAtLiquidity) {
    const auto plan = plan_fills(state_, key_, IouAmount::from_double(1000.0));
    IouAmount planned;
    for (const Fill& fill : plan) planned = planned + fill.gets;
    EXPECT_NEAR(planned.to_double(), 300.0, 1e-9);
}

TEST_F(OrderBookTest, PlanSkipsExcludedMakers) {
    std::unordered_set<AccountID> excluded{maker1_};
    const auto plan =
        plan_fills(state_, key_, IouAmount::from_double(50.0), excluded);
    ASSERT_EQ(plan.size(), 1u);
    EXPECT_EQ(plan[0].owner, maker2_);
}

TEST_F(OrderBookTest, ConsumePartiallyShrinksOffer) {
    const auto plan = plan_fills(state_, key_, IouAmount::from_double(40.0));
    ASSERT_EQ(plan.size(), 1u);
    ASSERT_TRUE(consume_fill(state_, key_, plan[0]));
    const auto& book = state_.book(key_);
    ASSERT_EQ(book.size(), 2u);
    EXPECT_NEAR(book[0].taker_gets.value.to_double(), 60.0, 1e-9);
    // Rate unchanged by partial consumption.
    EXPECT_NEAR(book[0].rate(), 1.25, 1e-6);
}

TEST_F(OrderBookTest, ConsumeFullyRemovesOffer) {
    const auto plan = plan_fills(state_, key_, IouAmount::from_double(100.0));
    ASSERT_TRUE(consume_fill(state_, key_, plan[0]));
    const auto& book = state_.book(key_);
    ASSERT_EQ(book.size(), 1u);
    EXPECT_EQ(book[0].owner, maker2_);
}

TEST_F(OrderBookTest, ConsumeMissingOfferFails) {
    Fill ghost;
    ghost.offer_id = 9999;
    ghost.gets = IouAmount::from_double(1.0);
    EXPECT_FALSE(consume_fill(state_, key_, ghost));
}

TEST_F(OrderBookTest, RestoreAfterPartialConsume) {
    const auto plan = plan_fills(state_, key_, IouAmount::from_double(40.0));
    ASSERT_TRUE(consume_fill(state_, key_, plan[0]));
    restore_fill(state_, key_, plan[0]);
    EXPECT_NEAR(book_depth(state_, key_).to_double(), 300.0, 1e-9);
    EXPECT_NEAR(*best_rate(state_, key_), 1.25, 1e-6);
}

TEST_F(OrderBookTest, RestoreAfterFullConsumeReinsertsSorted) {
    const auto plan = plan_fills(state_, key_, IouAmount::from_double(100.0));
    ASSERT_TRUE(consume_fill(state_, key_, plan[0]));
    restore_fill(state_, key_, plan[0]);
    const auto& book = state_.book(key_);
    ASSERT_EQ(book.size(), 2u);
    EXPECT_EQ(book[0].owner, maker1_);  // best rate first again
    EXPECT_NEAR(book_depth(state_, key_).to_double(), 300.0, 1e-9);
}

TEST_F(OrderBookTest, MakerConcentrationRanksByOffers) {
    state_.place_offer(maker1_, Amount::iou(kUsd, 10.0), Amount::iou(kEur, 8.0));
    state_.place_offer(maker1_, Amount::iou(kEur, 10.0), Amount::iou(kUsd, 12.0));
    const auto shares = maker_concentration(state_);
    ASSERT_EQ(shares.size(), 2u);
    EXPECT_EQ(shares[0].maker, maker1_);
    EXPECT_EQ(shares[0].offers, 3u);
    EXPECT_EQ(shares[1].offers, 1u);
}

}  // namespace
}  // namespace xrpl::paths
