#include "paths/replay.hpp"

#include <gtest/gtest.h>

#include <string>

namespace xrpl::paths {
namespace {

using ledger::AccountID;
using ledger::Amount;
using ledger::Currency;
using ledger::IouAmount;
using ledger::LedgerState;
using ledger::XrpAmount;

const Currency kUsd = Currency::from_code("USD");
const Currency kEur = Currency::from_code("EUR");

/// A miniature Table II world: one user with USD, one EUR merchant,
/// one USD merchant reachable only through the Market Maker's hub
/// position, and one USD merchant reachable directly.
class ReplayTest : public ::testing::Test {
protected:
    void SetUp() override {
        user_ = add("user");
        g_usd_ = add("g-usd");
        g_eur_ = add("g-eur");
        maker_ = add("maker", 1e6);
        eur_merchant_ = add("eur-merchant");
        direct_merchant_ = add("direct-merchant");

        fund(g_usd_, user_, kUsd, 1000.0);
        fund(g_usd_, maker_, kUsd, 10'000.0);
        fund(g_eur_, maker_, kEur, 10'000.0);
        edge(g_eur_, eur_merchant_, kEur, 1e6);
        edge(g_usd_, direct_merchant_, kUsd, 1e6);
        state_.place_offer(maker_, Amount::iou(kUsd, 1300.0),
                           Amount::iou(kEur, 1000.0));
    }

    AccountID add(const std::string& seed, double xrp = 1000.0) {
        const AccountID id = AccountID::from_seed(seed);
        state_.create_account(id, XrpAmount::from_xrp(xrp), false, true);
        return id;
    }

    void edge(const AccountID& from, const AccountID& to, Currency c, double limit) {
        state_.set_trust(to, from, c, IouAmount::from_double(limit));
    }

    void fund(const AccountID& gateway, const AccountID& holder, Currency c,
              double amount) {
        ledger::TrustLine& line =
            state_.set_trust(holder, gateway, c, IouAmount::from_double(1e9));
        ASSERT_TRUE(line.transfer_from(gateway, IouAmount::from_double(amount)));
    }

    [[nodiscard]] std::vector<PaymentRequest> workload() const {
        PaymentRequest cross;
        cross.sender = user_;
        cross.destination = eur_merchant_;
        cross.deliver = Amount::iou(kEur, 50.0);
        cross.source_currency = kUsd;

        PaymentRequest single;
        single.sender = user_;
        single.destination = direct_merchant_;
        single.deliver = Amount::iou(kUsd, 20.0);
        single.source_currency = kUsd;

        return {cross, single, cross, single};
    }

    LedgerState state_;
    AccountID user_, g_usd_, g_eur_, maker_, eur_merchant_, direct_merchant_;
};

TEST_F(ReplayTest, BaselineDeliversEverything) {
    LedgerState world = state_.clone();
    PaymentEngine engine(world);
    const auto payments = workload();
    const ReplayStats stats = replay(engine, payments);
    EXPECT_EQ(stats.cross_submitted, 2u);
    EXPECT_EQ(stats.cross_delivered, 2u);
    EXPECT_EQ(stats.single_submitted, 2u);
    EXPECT_EQ(stats.single_delivered, 2u);
    EXPECT_DOUBLE_EQ(stats.total_rate(), 1.0);
}

TEST_F(ReplayTest, WithoutMakersCrossCurrencyAllFail) {
    LedgerState world = state_.clone();
    PaymentEngine engine(world);
    const auto payments = workload();
    const std::vector<AccountID> removed = {maker_};
    const ReplayStats stats = replay_without(engine, payments, removed, true);
    EXPECT_EQ(stats.cross_delivered, 0u);
    EXPECT_DOUBLE_EQ(stats.cross_rate(), 0.0);
    // The direct single-currency route survives.
    EXPECT_EQ(stats.single_delivered, 2u);
}

TEST_F(ReplayTest, RemovalDoesNotTouchTheOriginalSnapshot) {
    LedgerState world = state_.clone();
    {
        PaymentEngine engine(world);
        const auto payments = workload();
        const std::vector<AccountID> removed = {maker_};
        (void)replay_without(engine, payments, removed, true);
    }
    // The pristine snapshot still has the maker's offer.
    EXPECT_EQ(state_.offer_count(), 1u);
    // And the replayed world does not.
    EXPECT_EQ(world.offer_count(), 0u);
}

TEST_F(ReplayTest, StatsRatesHandleZeroDivision) {
    const ReplayStats empty;
    EXPECT_DOUBLE_EQ(empty.total_rate(), 0.0);
    EXPECT_DOUBLE_EQ(empty.cross_rate(), 0.0);
    EXPECT_DOUBLE_EQ(empty.single_rate(), 0.0);
}

TEST_F(ReplayTest, SelectiveRemovalOnlyDeletesThatAccountsOffers) {
    // remove_all_offers=false: only the REMOVED accounts' offers go;
    // everyone else's book survives.
    LedgerState world = state_.clone();
    const AccountID other_maker = AccountID::from_seed("other-maker");
    world.create_account(other_maker, XrpAmount::from_xrp(1e6), false, true);
    world.place_offer(other_maker, Amount::iou(kUsd, 130.0),
                      Amount::iou(kEur, 100.0));
    ASSERT_EQ(world.offer_count(), 2u);

    PaymentEngine engine(world);
    const auto payments = workload();
    const std::vector<AccountID> removed = {maker_};
    (void)replay_without(engine, payments, removed, /*remove_all_offers=*/false);
    EXPECT_EQ(world.offer_count(), 1u);  // other_maker's offer survived
    EXPECT_TRUE(engine.graph().is_excluded(maker_));
    EXPECT_FALSE(engine.graph().is_excluded(other_maker));
}

TEST_F(ReplayTest, RemoveAllOffersSweepsTheWholeBook) {
    // remove_all_offers=true clears even offers owned by accounts that
    // were NOT removed — "them and the exchange orders from the system".
    LedgerState world = state_.clone();
    const AccountID other_maker = AccountID::from_seed("other-maker");
    world.create_account(other_maker, XrpAmount::from_xrp(1e6), false, true);
    world.place_offer(other_maker, Amount::iou(kUsd, 130.0),
                      Amount::iou(kEur, 100.0));

    PaymentEngine engine(world);
    const auto payments = workload();
    const std::vector<AccountID> removed = {maker_};
    const ReplayStats stats = replay_without(engine, payments, removed, true);
    EXPECT_EQ(world.offer_count(), 0u);
    EXPECT_EQ(stats.cross_delivered, 0u);
}

TEST_F(ReplayTest, ExclusionsPersistAcrossReplayCalls) {
    // replay_without mutates the engine's graph and ledger; a later
    // replay() through the SAME engine still sees the removal. This is
    // by design — the engine stays the removed-world engine — and
    // callers wanting a fresh world build a fresh engine (as the
    // benches do). Pin it so a change here is deliberate.
    LedgerState world = state_.clone();
    PaymentEngine engine(world);
    const auto payments = workload();
    // Remove the USD gateway: the single-currency route user ->
    // g_usd -> direct_merchant loses its only intermediate.
    const std::vector<AccountID> removed = {g_usd_};
    const ReplayStats first =
        replay_without(engine, payments, removed, /*remove_all_offers=*/false);
    EXPECT_EQ(first.single_delivered, 0u);

    const ReplayStats again = replay(engine, payments);
    EXPECT_EQ(again.single_delivered, 0u);  // exclusion still in force
    EXPECT_TRUE(engine.graph().is_excluded(g_usd_));
}

TEST_F(ReplayTest, RemovedSenderFailsItsPayments) {
    // Endpoint exclusion: payments FROM a removed account cannot route.
    LedgerState world = state_.clone();
    PaymentEngine engine(world);
    const auto payments = workload();
    const std::vector<AccountID> removed = {user_};
    const ReplayStats stats =
        replay_without(engine, payments, removed, /*remove_all_offers=*/false);
    EXPECT_EQ(stats.delivered(), 0u);
    EXPECT_EQ(stats.submitted(), 4u);  // still tallied as submitted
}

TEST_F(ReplayTest, BalancesEvolveDuringReplay) {
    // "We carefully handled the user balances by updating them after
    // each successful payment": replaying the same big payment twice
    // must drain the deposit the second time.
    LedgerState world = state_.clone();
    PaymentEngine engine(world);
    PaymentRequest big;
    big.sender = user_;
    big.destination = direct_merchant_;
    big.deliver = Amount::iou(kUsd, 600.0);
    big.source_currency = kUsd;
    const std::vector<PaymentRequest> payments = {big, big};
    const ReplayStats stats = replay(engine, payments);
    EXPECT_EQ(stats.single_submitted, 2u);
    EXPECT_EQ(stats.single_delivered, 1u);  // 1000 deposit, 600+600 > 1000
}

}  // namespace
}  // namespace xrpl::paths
