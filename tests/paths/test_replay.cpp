#include "paths/replay.hpp"

#include <gtest/gtest.h>

#include <string>

namespace xrpl::paths {
namespace {

using ledger::AccountID;
using ledger::Amount;
using ledger::Currency;
using ledger::IouAmount;
using ledger::LedgerState;
using ledger::XrpAmount;

const Currency kUsd = Currency::from_code("USD");
const Currency kEur = Currency::from_code("EUR");

/// A miniature Table II world: one user with USD, one EUR merchant,
/// one USD merchant reachable only through the Market Maker's hub
/// position, and one USD merchant reachable directly.
class ReplayTest : public ::testing::Test {
protected:
    void SetUp() override {
        user_ = add("user");
        g_usd_ = add("g-usd");
        g_eur_ = add("g-eur");
        maker_ = add("maker", 1e6);
        eur_merchant_ = add("eur-merchant");
        direct_merchant_ = add("direct-merchant");

        fund(g_usd_, user_, kUsd, 1000.0);
        fund(g_usd_, maker_, kUsd, 10'000.0);
        fund(g_eur_, maker_, kEur, 10'000.0);
        edge(g_eur_, eur_merchant_, kEur, 1e6);
        edge(g_usd_, direct_merchant_, kUsd, 1e6);
        state_.place_offer(maker_, Amount::iou(kUsd, 1300.0),
                           Amount::iou(kEur, 1000.0));
    }

    AccountID add(const std::string& seed, double xrp = 1000.0) {
        const AccountID id = AccountID::from_seed(seed);
        state_.create_account(id, XrpAmount::from_xrp(xrp), false, true);
        return id;
    }

    void edge(const AccountID& from, const AccountID& to, Currency c, double limit) {
        state_.set_trust(to, from, c, IouAmount::from_double(limit));
    }

    void fund(const AccountID& gateway, const AccountID& holder, Currency c,
              double amount) {
        ledger::TrustLine& line =
            state_.set_trust(holder, gateway, c, IouAmount::from_double(1e9));
        ASSERT_TRUE(line.transfer_from(gateway, IouAmount::from_double(amount)));
    }

    [[nodiscard]] std::vector<PaymentRequest> workload() const {
        PaymentRequest cross;
        cross.sender = user_;
        cross.destination = eur_merchant_;
        cross.deliver = Amount::iou(kEur, 50.0);
        cross.source_currency = kUsd;

        PaymentRequest single;
        single.sender = user_;
        single.destination = direct_merchant_;
        single.deliver = Amount::iou(kUsd, 20.0);
        single.source_currency = kUsd;

        return {cross, single, cross, single};
    }

    LedgerState state_;
    AccountID user_, g_usd_, g_eur_, maker_, eur_merchant_, direct_merchant_;
};

TEST_F(ReplayTest, BaselineDeliversEverything) {
    LedgerState world = state_.clone();
    PaymentEngine engine(world);
    const auto payments = workload();
    const ReplayStats stats = replay(engine, payments);
    EXPECT_EQ(stats.cross_submitted, 2u);
    EXPECT_EQ(stats.cross_delivered, 2u);
    EXPECT_EQ(stats.single_submitted, 2u);
    EXPECT_EQ(stats.single_delivered, 2u);
    EXPECT_DOUBLE_EQ(stats.total_rate(), 1.0);
}

TEST_F(ReplayTest, WithoutMakersCrossCurrencyAllFail) {
    LedgerState world = state_.clone();
    PaymentEngine engine(world);
    const auto payments = workload();
    const std::vector<AccountID> removed = {maker_};
    const ReplayStats stats = replay_without(engine, payments, removed, true);
    EXPECT_EQ(stats.cross_delivered, 0u);
    EXPECT_DOUBLE_EQ(stats.cross_rate(), 0.0);
    // The direct single-currency route survives.
    EXPECT_EQ(stats.single_delivered, 2u);
}

TEST_F(ReplayTest, RemovalDoesNotTouchTheOriginalSnapshot) {
    LedgerState world = state_.clone();
    {
        PaymentEngine engine(world);
        const auto payments = workload();
        const std::vector<AccountID> removed = {maker_};
        (void)replay_without(engine, payments, removed, true);
    }
    // The pristine snapshot still has the maker's offer.
    EXPECT_EQ(state_.offer_count(), 1u);
    // And the replayed world does not.
    EXPECT_EQ(world.offer_count(), 0u);
}

TEST_F(ReplayTest, StatsRatesHandleZeroDivision) {
    const ReplayStats empty;
    EXPECT_DOUBLE_EQ(empty.total_rate(), 0.0);
    EXPECT_DOUBLE_EQ(empty.cross_rate(), 0.0);
    EXPECT_DOUBLE_EQ(empty.single_rate(), 0.0);
}

TEST_F(ReplayTest, BalancesEvolveDuringReplay) {
    // "We carefully handled the user balances by updating them after
    // each successful payment": replaying the same big payment twice
    // must drain the deposit the second time.
    LedgerState world = state_.clone();
    PaymentEngine engine(world);
    PaymentRequest big;
    big.sender = user_;
    big.destination = direct_merchant_;
    big.deliver = Amount::iou(kUsd, 600.0);
    big.source_currency = kUsd;
    const std::vector<PaymentRequest> payments = {big, big};
    const ReplayStats stats = replay(engine, payments);
    EXPECT_EQ(stats.single_submitted, 2u);
    EXPECT_EQ(stats.single_delivered, 1u);  // 1000 deposit, 600+600 > 1000
}

}  // namespace
}  // namespace xrpl::paths
