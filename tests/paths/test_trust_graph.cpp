#include "paths/trust_graph.hpp"

#include <gtest/gtest.h>

namespace xrpl::paths {
namespace {

using ledger::AccountID;
using ledger::Currency;
using ledger::IouAmount;
using ledger::LedgerState;

class TrustGraphTest : public ::testing::Test {
protected:
    void SetUp() override {
        a_ = AccountID::from_seed("a");
        b_ = AccountID::from_seed("b");
        c_ = AccountID::from_seed("c");
        for (const auto& id : {a_, b_, c_}) {
            state_.create_account(id, ledger::XrpAmount::from_xrp(10.0));
        }
        // b trusts a: a can send to b.
        state_.set_trust(b_, a_, usd_, IouAmount::from_double(100.0));
    }

    [[nodiscard]] std::vector<AccountID> neighbors_of(const TrustGraph& graph,
                                                      const AccountID& from) const {
        std::vector<AccountID> out;
        graph.for_each_neighbor(from, usd_,
                                [&](const AccountID& peer, const ledger::TrustLine*) {
                                    out.push_back(peer);
                                });
        return out;
    }

    LedgerState state_;
    AccountID a_, b_, c_;
    const Currency usd_ = Currency::from_code("USD");
};

TEST_F(TrustGraphTest, NeighborRequiresPositiveCapacity) {
    const TrustGraph graph(state_);
    EXPECT_EQ(neighbors_of(graph, a_), std::vector<AccountID>{b_});
    // b cannot send to a: a declared no trust.
    EXPECT_TRUE(neighbors_of(graph, b_).empty());
}

TEST_F(TrustGraphTest, CurrencyFiltering) {
    const TrustGraph graph(state_);
    std::vector<AccountID> eur_neighbors;
    graph.for_each_neighbor(a_, Currency::from_code("EUR"),
                            [&](const AccountID& peer, const ledger::TrustLine*) {
                                eur_neighbors.push_back(peer);
                            });
    EXPECT_TRUE(eur_neighbors.empty());
}

TEST_F(TrustGraphTest, ExclusionHidesNeighbors) {
    TrustGraph graph(state_);
    graph.exclude(b_);
    EXPECT_TRUE(neighbors_of(graph, a_).empty());
    EXPECT_TRUE(graph.is_excluded(b_));
    EXPECT_EQ(graph.exclusion_count(), 1u);
    graph.clear_exclusions();
    EXPECT_EQ(neighbors_of(graph, a_), std::vector<AccountID>{b_});
}

TEST_F(TrustGraphTest, ExhaustedCapacityRemovesEdge) {
    ledger::TrustLine* line = state_.trustline(a_, b_, usd_);
    ASSERT_TRUE(line->transfer_from(a_, IouAmount::from_double(100.0)));
    const TrustGraph graph(state_);
    EXPECT_TRUE(neighbors_of(graph, a_).empty());
    // The reverse direction gained capacity (repayment).
    EXPECT_EQ(neighbors_of(graph, b_), std::vector<AccountID>{a_});
}

TEST_F(TrustGraphTest, InNeighborsMirrorOutNeighbors) {
    const TrustGraph graph(state_);
    std::vector<AccountID> senders;
    graph.for_each_in_neighbor(b_, usd_,
                               [&](const AccountID& peer, const ledger::TrustLine*) {
                                   senders.push_back(peer);
                               });
    EXPECT_EQ(senders, std::vector<AccountID>{a_});
}

TEST_F(TrustGraphTest, OutDegreeCountsUsableEdges) {
    state_.set_trust(c_, a_, usd_, IouAmount::from_double(5.0));
    const TrustGraph graph(state_);
    EXPECT_EQ(graph.out_degree(a_, usd_), 2u);
    EXPECT_EQ(graph.out_degree(b_, usd_), 0u);
}

}  // namespace
}  // namespace xrpl::paths
