#include "paths/payment_engine.hpp"

#include <gtest/gtest.h>

#include <string>

namespace xrpl::paths {
namespace {

using ledger::AccountID;
using ledger::Amount;
using ledger::Currency;
using ledger::IouAmount;
using ledger::LedgerState;
using ledger::XrpAmount;

const Currency kUsd = Currency::from_code("USD");
const Currency kEur = Currency::from_code("EUR");
const Currency kXrp = Currency::xrp();

class PaymentEngineTest : public ::testing::Test {
protected:
    AccountID add(const std::string& seed, double xrp = 1000.0) {
        const AccountID id = AccountID::from_seed(seed);
        state_.create_account(id, XrpAmount::from_xrp(xrp), false, true);
        return id;
    }

    void edge(const AccountID& from, const AccountID& to, Currency c,
              double limit) {
        state_.set_trust(to, from, c, IouAmount::from_double(limit));
    }

    /// Give `holder` a deposit of `amount` issued by `gateway`.
    void fund(const AccountID& gateway, const AccountID& holder, Currency c,
              double amount, double limit = 1e9) {
        ledger::TrustLine& line =
            state_.set_trust(holder, gateway, c, IouAmount::from_double(limit));
        ASSERT_TRUE(line.transfer_from(gateway, IouAmount::from_double(amount)));
    }

    PaymentRequest request(const AccountID& from, const AccountID& to, Currency c,
                           double amount, Currency source = Currency::xrp()) {
        PaymentRequest r;
        r.sender = from;
        r.destination = to;
        r.deliver = Amount::iou(c, amount);
        r.source_currency = source.is_xrp() && !c.is_xrp() ? c : source;
        return r;
    }

    LedgerState state_;
};

TEST_F(PaymentEngineTest, DirectXrpPaymentMovesBalancesAndBurnsFee) {
    const AccountID a = add("a");
    const AccountID b = add("b");
    PaymentEngine engine(state_);
    PaymentRequest r;
    r.sender = a;
    r.destination = b;
    r.deliver = Amount::xrp(10.0);
    r.source_currency = kXrp;
    const auto result = engine.execute(r);
    EXPECT_TRUE(result.success);
    EXPECT_FALSE(result.cross_currency);
    EXPECT_EQ(result.intermediate_hops, 0u);
    EXPECT_EQ(result.parallel_paths, 1u);
    EXPECT_EQ(state_.account(b)->balance.drops, 1'010'000'000);
    EXPECT_EQ(state_.account(a)->balance.drops, 990'000'000 - 10);
    EXPECT_EQ(state_.burned_fees().drops, 10);
}

TEST_F(PaymentEngineTest, XrpPaymentInsufficientBalanceFailsCleanly) {
    const AccountID a = add("a", 5.0);
    const AccountID b = add("b");
    PaymentEngine engine(state_);
    PaymentRequest r;
    r.sender = a;
    r.destination = b;
    r.deliver = Amount::xrp(10.0);
    r.source_currency = kXrp;
    EXPECT_FALSE(engine.execute(r).success);
    EXPECT_EQ(state_.account(a)->balance.drops, 5'000'000);
    EXPECT_EQ(state_.account(b)->balance.drops, 1'000'000'000);
}

TEST_F(PaymentEngineTest, IouPaymentThroughGateway) {
    const AccountID user = add("user");
    const AccountID gateway = add("gateway");
    const AccountID merchant = add("merchant");
    fund(gateway, user, kUsd, 100.0);
    edge(gateway, merchant, kUsd, 1e6);

    PaymentEngine engine(state_);
    const auto result = engine.execute(request(user, merchant, kUsd, 40.0));
    ASSERT_TRUE(result.success);
    EXPECT_EQ(result.intermediate_hops, 1u);
    EXPECT_EQ(result.parallel_paths, 1u);
    ASSERT_EQ(result.intermediaries.size(), 1u);
    EXPECT_EQ(result.intermediaries[0], gateway);

    // Balances rippled: user deposit down, merchant claim up.
    EXPECT_NEAR(state_.trustline(user, gateway, kUsd)
                    ->balance_for(user)
                    .to_double(),
                60.0, 1e-9);
    EXPECT_NEAR(state_.trustline(merchant, gateway, kUsd)
                    ->balance_for(merchant)
                    .to_double(),
                40.0, 1e-9);
}

TEST_F(PaymentEngineTest, IouPaymentSplitsAcrossParallelPaths) {
    const AccountID user = add("user");
    const AccountID g1 = add("g1");
    const AccountID g2 = add("g2");
    const AccountID merchant = add("merchant");
    fund(g1, user, kUsd, 30.0);
    fund(g2, user, kUsd, 30.0);
    edge(g1, merchant, kUsd, 1e6);
    edge(g2, merchant, kUsd, 1e6);

    PaymentEngine engine(state_);
    const auto result = engine.execute(request(user, merchant, kUsd, 50.0));
    ASSERT_TRUE(result.success);
    EXPECT_EQ(result.parallel_paths, 2u);
    EXPECT_EQ(result.intermediate_hops, 1u);
    EXPECT_EQ(result.intermediaries.size(), 2u);
}

TEST_F(PaymentEngineTest, InsufficientTotalCapacityRollsBackEverything) {
    const AccountID user = add("user");
    const AccountID g1 = add("g1");
    const AccountID g2 = add("g2");
    const AccountID merchant = add("merchant");
    fund(g1, user, kUsd, 30.0);
    fund(g2, user, kUsd, 30.0);
    edge(g1, merchant, kUsd, 1e6);
    edge(g2, merchant, kUsd, 1e6);

    PaymentEngine engine(state_);
    const auto result = engine.execute(request(user, merchant, kUsd, 100.0));
    EXPECT_FALSE(result.success);
    // All-or-nothing: both deposits untouched.
    EXPECT_NEAR(
        state_.trustline(user, g1, kUsd)->balance_for(user).to_double(), 30.0,
        1e-9);
    EXPECT_NEAR(
        state_.trustline(user, g2, kUsd)->balance_for(user).to_double(), 30.0,
        1e-9);
    EXPECT_TRUE(
        state_.trustline(merchant, g1, kUsd) == nullptr ||
        state_.trustline(merchant, g1, kUsd)->balance_for(merchant).is_zero());
}

TEST_F(PaymentEngineTest, FailedPaymentChargesNoFee) {
    const AccountID user = add("user");
    const AccountID merchant = add("merchant");
    PaymentEngine engine(state_);
    const std::int64_t before = state_.account(user)->balance.drops;
    EXPECT_FALSE(engine.execute(request(user, merchant, kUsd, 10.0)).success);
    EXPECT_EQ(state_.account(user)->balance.drops, before);
}

TEST_F(PaymentEngineTest, CrossCurrencyThroughDirectBook) {
    const AccountID user = add("user");
    const AccountID g_usd = add("g-usd");
    const AccountID g_eur = add("g-eur");
    const AccountID maker = add("maker");
    const AccountID merchant = add("merchant");

    fund(g_usd, user, kUsd, 500.0);
    fund(g_usd, maker, kUsd, 1000.0);   // maker can hold USD
    fund(g_eur, maker, kEur, 1000.0);   // maker has EUR inventory
    edge(g_eur, merchant, kEur, 1e6);

    state_.place_offer(maker, Amount::iou(kUsd, 130.0), Amount::iou(kEur, 100.0));

    PaymentEngine engine(state_);
    const auto result =
        engine.execute(request(user, merchant, kEur, 100.0, kUsd));
    ASSERT_TRUE(result.success);
    EXPECT_TRUE(result.cross_currency);
    EXPECT_TRUE(result.used_order_book);
    EXPECT_GE(result.intermediate_hops, 1u);

    // The maker took 130 USD and shipped 100 EUR.
    EXPECT_NEAR(
        state_.trustline(user, g_usd, kUsd)->balance_for(user).to_double(),
        370.0, 1.0);
    EXPECT_NEAR(state_.trustline(merchant, g_eur, kEur)
                    ->balance_for(merchant)
                    .to_double(),
                100.0, 1e-6);
    // The offer was fully consumed.
    EXPECT_TRUE(state_.book(ledger::BookKey{kUsd, kEur}).empty());
}

TEST_F(PaymentEngineTest, CrossCurrencyFailsWithoutOffers) {
    const AccountID user = add("user");
    const AccountID g_usd = add("g-usd");
    const AccountID g_eur = add("g-eur");
    const AccountID merchant = add("merchant");
    fund(g_usd, user, kUsd, 500.0);
    edge(g_eur, merchant, kEur, 1e6);

    PaymentEngine engine(state_);
    EXPECT_FALSE(engine.execute(request(user, merchant, kEur, 100.0, kUsd)).success);
}

TEST_F(PaymentEngineTest, CrossCurrencyViaXrpAutoBridge) {
    const AccountID user = add("user");
    const AccountID g_usd = add("g-usd");
    const AccountID g_eur = add("g-eur");
    const AccountID maker1 = add("maker1", 1e6);  // sells XRP for USD
    const AccountID maker2 = add("maker2", 1e6);  // sells EUR for XRP
    const AccountID merchant = add("merchant");

    fund(g_usd, user, kUsd, 500.0);
    fund(g_usd, maker1, kUsd, 1000.0);
    fund(g_eur, maker2, kEur, 1000.0);
    edge(g_eur, merchant, kEur, 1e6);

    // No direct USD->EUR book; only the two XRP legs (maker1's XRP
    // depth covers the 13,000 XRP the out-leg needs).
    state_.place_offer(maker1, Amount::iou(kUsd, 150.0),
                       Amount::iou(kXrp, 15'000.0));
    state_.place_offer(maker2, Amount::iou(kXrp, 13'000.0),
                       Amount::iou(kEur, 100.0));

    PaymentEngine engine(state_);
    const auto result =
        engine.execute(request(user, merchant, kEur, 100.0, kUsd));
    ASSERT_TRUE(result.success);
    EXPECT_TRUE(result.used_order_book);
    EXPECT_GE(result.intermediate_hops, 2u);  // both makers on the chain
    EXPECT_NEAR(state_.trustline(merchant, g_eur, kEur)
                    ->balance_for(merchant)
                    .to_double(),
                100.0, 1e-6);
}

TEST_F(PaymentEngineTest, BridgeDisabledByConfig) {
    const AccountID user = add("user");
    const AccountID g_usd = add("g-usd");
    const AccountID g_eur = add("g-eur");
    const AccountID maker1 = add("maker1", 1e6);
    const AccountID maker2 = add("maker2", 1e6);
    const AccountID merchant = add("merchant");
    fund(g_usd, user, kUsd, 500.0);
    fund(g_usd, maker1, kUsd, 1000.0);
    fund(g_eur, maker2, kEur, 1000.0);
    edge(g_eur, merchant, kEur, 1e6);
    state_.place_offer(maker1, Amount::iou(kUsd, 150.0),
                       Amount::iou(kXrp, 15'000.0));
    state_.place_offer(maker2, Amount::iou(kXrp, 13'000.0),
                       Amount::iou(kEur, 100.0));

    EngineConfig config;
    config.allow_xrp_bridge = false;
    PaymentEngine engine(state_, config);
    EXPECT_FALSE(engine.execute(request(user, merchant, kEur, 100.0, kUsd)).success);
}

TEST_F(PaymentEngineTest, XrpSourcedCrossCurrencyPayment) {
    // The sender pays native XRP; the maker's {XRP -> EUR} offer
    // converts, and the merchant receives IOUs.
    const AccountID user = add("user", 100'000.0);
    const AccountID g_eur = add("g-eur");
    const AccountID maker = add("maker", 1e6);
    const AccountID merchant = add("merchant");
    fund(g_eur, maker, kEur, 1'000.0);
    edge(g_eur, merchant, kEur, 1e6);
    state_.place_offer(maker, Amount::iou(kXrp, 50'000.0),
                       Amount::iou(kEur, 100.0));

    PaymentEngine engine(state_);
    PaymentRequest r;
    r.sender = user;
    r.destination = merchant;
    r.deliver = Amount::iou(kEur, 100.0);
    r.source_currency = kXrp;  // paying with native XRP
    const auto result = engine.execute(r);
    ASSERT_TRUE(result.success);
    EXPECT_TRUE(result.used_order_book);
    // The maker received the XRP (~50,000 more than its float)...
    EXPECT_GT(state_.account(maker)->balance.drops,
              static_cast<std::int64_t>(1e6 * 1e6) + 49'000'000'000LL);
    // ...and the merchant the EUR.
    EXPECT_NEAR(state_.trustline(merchant, g_eur, kEur)
                    ->balance_for(merchant)
                    .to_double(),
                100.0, 1e-6);
}

TEST_F(PaymentEngineTest, XrpDestinationCrossCurrencyPayment) {
    // The merchant wants XRP; the sender holds USD. The {USD -> XRP}
    // book converts and the destination gets native balance.
    const AccountID user = add("user");
    const AccountID g_usd = add("g-usd");
    const AccountID maker = add("maker", 1e6);
    const AccountID merchant = add("merchant", 5.0);
    fund(g_usd, user, kUsd, 500.0);
    fund(g_usd, maker, kUsd, 10'000.0);
    state_.place_offer(maker, Amount::iou(kUsd, 100.0),
                       Amount::iou(kXrp, 10'000.0));

    PaymentEngine engine(state_);
    PaymentRequest r;
    r.sender = user;
    r.destination = merchant;
    r.deliver = Amount::xrp(10'000.0);
    r.source_currency = kUsd;
    const auto result = engine.execute(r);
    ASSERT_TRUE(result.success);
    EXPECT_TRUE(result.cross_currency);
    EXPECT_EQ(state_.account(merchant)->balance.drops,
              5'000'000 + 10'000'000'000LL);
    // The user's USD deposit paid for it.
    EXPECT_NEAR(
        state_.trustline(user, g_usd, kUsd)->balance_for(user).to_double(),
        400.0, 1.0);
}

TEST_F(PaymentEngineTest, SameCurrencyClearsThroughOffersWhenNoTrustPath) {
    // No trust path between the two USD clusters; two offers bridge
    // USD -> XRP -> USD (§III-C: same-currency payments can use
    // exchange offers).
    const AccountID user = add("user");
    const AccountID g_a = add("g-a");
    const AccountID g_b = add("g-b");
    const AccountID maker1 = add("maker1", 1e6);
    const AccountID maker2 = add("maker2", 1e6);
    const AccountID merchant = add("merchant");
    fund(g_a, user, kUsd, 500.0);
    fund(g_a, maker1, kUsd, 10'000.0);
    fund(g_b, maker2, kUsd, 10'000.0);
    edge(g_b, merchant, kUsd, 1e6);
    state_.place_offer(maker1, Amount::iou(kUsd, 100.0),
                       Amount::iou(kXrp, 10'000.0));
    state_.place_offer(maker2, Amount::iou(kXrp, 10'500.0),
                       Amount::iou(kUsd, 100.0));

    PaymentEngine engine(state_);
    const auto result = engine.execute(request(user, merchant, kUsd, 80.0));
    ASSERT_TRUE(result.success);
    EXPECT_FALSE(result.cross_currency);  // same currency...
    EXPECT_TRUE(result.used_order_book);  // ...but offers did the work
    EXPECT_NEAR(state_.trustline(merchant, g_b, kUsd)
                    ->balance_for(merchant)
                    .to_double(),
                80.0, 1e-6);
}

TEST_F(PaymentEngineTest, ExcludedSenderOrDestinationFails) {
    const AccountID user = add("user");
    const AccountID gateway = add("gateway");
    const AccountID merchant = add("merchant");
    fund(gateway, user, kUsd, 100.0);
    edge(gateway, merchant, kUsd, 1e6);
    PaymentEngine engine(state_);
    engine.graph().exclude(merchant);
    EXPECT_FALSE(engine.execute(request(user, merchant, kUsd, 10.0)).success);
}

TEST_F(PaymentEngineTest, ExplicitPathsExecuteMtlShape) {
    // 6 chains of 8 intermediates, the MTL spam fingerprint.
    const Currency mtl = Currency::from_code("MTL");
    const AccountID spammer = add("spammer");
    const AccountID target = add("target");
    std::vector<std::vector<AccountID>> chains;
    for (int c = 0; c < 6; ++c) {
        std::vector<AccountID> nodes{spammer};
        for (int h = 0; h < 8; ++h) {
            nodes.push_back(add("shill-" + std::to_string(c) + "-" +
                                std::to_string(h)));
        }
        nodes.push_back(target);
        for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
            edge(nodes[i], nodes[i + 1], mtl, 1e21);
        }
        chains.push_back(std::move(nodes));
    }

    PaymentEngine engine(state_);
    PaymentRequest r = request(spammer, target, mtl, 1.2e9);
    const auto result = engine.execute_along(r, chains);
    ASSERT_TRUE(result.success);
    EXPECT_EQ(result.parallel_paths, 6u);
    EXPECT_EQ(result.intermediate_hops, 8u);
    EXPECT_EQ(result.intermediaries.size(), 48u);
}

TEST_F(PaymentEngineTest, ExplicitPathsRollBackOnBrokenChain) {
    const AccountID a = add("a");
    const AccountID m = add("m");
    const AccountID b = add("b");
    edge(a, m, kUsd, 100.0);
    edge(m, b, kUsd, 100.0);
    const AccountID broken = add("broken");  // no trust wiring

    PaymentEngine engine(state_);
    PaymentRequest r = request(a, b, kUsd, 50.0);
    const std::vector<std::vector<AccountID>> chains = {
        {a, m, b}, {a, broken, b}};
    EXPECT_FALSE(engine.execute_along(r, chains).success);
    // The good chain's hop was rolled back too.
    EXPECT_TRUE(state_.trustline(a, m, kUsd)->balance().is_zero());
}

TEST_F(PaymentEngineTest, ApplyDispatchesTrustSetAndOffer) {
    const AccountID a = add("a");
    const AccountID b = add("b");
    PaymentEngine engine(state_);

    ledger::Transaction trust;
    trust.type = ledger::TxType::kTrustSet;
    trust.sender = a;
    trust.trust_peer = b;
    trust.trust_currency = kUsd;
    trust.trust_limit = IouAmount::from_double(77.0);
    EXPECT_TRUE(engine.apply(trust).success);
    ASSERT_NE(state_.trustline(a, b, kUsd), nullptr);

    ledger::Transaction offer;
    offer.type = ledger::TxType::kOfferCreate;
    offer.sender = a;
    offer.taker_pays = Amount::iou(kUsd, 10.0);
    offer.taker_gets = Amount::iou(kEur, 8.0);
    EXPECT_TRUE(engine.apply(offer).success);
    EXPECT_EQ(state_.offer_count(), 1u);
}

TEST_F(PaymentEngineTest, ApplyAccountCreateActivatesAccount) {
    const AccountID a = add("a");
    const AccountID fresh = AccountID::from_seed("fresh");
    PaymentEngine engine(state_);

    ledger::Transaction create;
    create.type = ledger::TxType::kAccountCreate;
    create.sender = a;
    create.destination = fresh;
    create.amount = Amount::xrp(100.0);
    EXPECT_TRUE(engine.apply(create).success);
    ASSERT_NE(state_.account(fresh), nullptr);
    EXPECT_EQ(state_.account(fresh)->balance.drops, 100'000'000);
}

}  // namespace
}  // namespace xrpl::paths
