// Property tests on the payment engine: conservation laws and
// all-or-nothing semantics over randomized worlds and workloads.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "paths/payment_engine.hpp"
#include "util/rng.hpp"
#include "util/sha256.hpp"

namespace xrpl::paths {
namespace {

using ledger::AccountID;
using ledger::Amount;
using ledger::Currency;
using ledger::IouAmount;
using ledger::LedgerState;
using ledger::XrpAmount;

const Currency kUsd = Currency::from_code("USD");
const Currency kEur = Currency::from_code("EUR");

struct World {
    LedgerState state;
    std::vector<AccountID> gateways;
    std::vector<AccountID> makers;
    std::vector<AccountID> users;
    std::int64_t initial_drops = 0;
};

World build_world(std::uint64_t seed) {
    World world;
    util::Rng rng(seed);
    for (int g = 0; g < 6; ++g) {
        const AccountID id = AccountID::from_seed("pw:gw" + std::to_string(g));
        world.state.create_account(id, XrpAmount::from_xrp(1e5), true);
        world.gateways.push_back(id);
    }
    for (int m = 0; m < 4; ++m) {
        const AccountID id = AccountID::from_seed("pw:mm" + std::to_string(m));
        world.state.create_account(id, XrpAmount::from_xrp(1e7), false, true);
        world.makers.push_back(id);
        for (const AccountID& gw : world.gateways) {
            for (const Currency c : {kUsd, kEur}) {
                ledger::TrustLine& line =
                    world.state.set_trust(id, gw, c, IouAmount::from_double(1e9));
                (void)line.transfer_from(gw, IouAmount::from_double(1e6));
            }
        }
        world.state.place_offer(world.makers[static_cast<std::size_t>(m)],
                                Amount::iou(kUsd, 1.1e5), Amount::iou(kEur, 1e5));
        world.state.place_offer(world.makers[static_cast<std::size_t>(m)],
                                Amount::iou(kUsd, 1e5),
                                Amount::iou(Currency::xrp(), 1e7));
        world.state.place_offer(world.makers[static_cast<std::size_t>(m)],
                                Amount::iou(Currency::xrp(), 1.2e7),
                                Amount::iou(kEur, 1e5));
    }
    for (int u = 0; u < 40; ++u) {
        const AccountID id = AccountID::from_seed("pw:user" + std::to_string(u));
        world.state.create_account(id, XrpAmount::from_xrp(1'000));
        world.users.push_back(id);
        const Currency home = rng.bernoulli(0.5) ? kUsd : kEur;
        for (int k = 0; k < 2; ++k) {
            const AccountID& gw =
                world.gateways[rng.uniform_u64(0, world.gateways.size() - 1)];
            ledger::TrustLine& line =
                world.state.set_trust(id, gw, home, IouAmount::from_double(1e6));
            (void)line.transfer_from(gw, IouAmount::from_double(500.0));
        }
    }
    for (const auto& [account, root] : world.state.accounts()) {
        world.initial_drops += root.balance.drops;
    }
    return world;
}

/// Digest of all balances and offers — detects ANY state change.
std::string state_digest(const LedgerState& state) {
    util::Sha256 hasher;
    for (std::size_t i = 0; i < state.account_count(); ++i) {
        const AccountID& id = state.account_by_index(static_cast<std::uint32_t>(i));
        const ledger::AccountRoot* root = state.account(id);
        hasher.update(id.bytes);
        const auto drops = static_cast<std::uint64_t>(root->balance.drops);
        std::array<std::uint8_t, 8> buf;
        for (int b = 0; b < 8; ++b) {
            buf[static_cast<std::size_t>(b)] =
                static_cast<std::uint8_t>(drops >> (8 * b));
        }
        hasher.update(buf);
        for (const ledger::TrustLine* line : state.lines_of(id)) {
            const auto m = static_cast<std::uint64_t>(line->balance().mantissa());
            for (int b = 0; b < 8; ++b) {
                buf[static_cast<std::size_t>(b)] =
                    static_cast<std::uint8_t>(m >> (8 * b));
            }
            hasher.update(buf);
        }
    }
    for (const auto& [key, offers] : state.books()) {
        for (const ledger::Offer& offer : offers) {
            std::array<std::uint8_t, 8> buf;
            const auto m = static_cast<std::uint64_t>(offer.taker_gets.value.mantissa());
            for (int b = 0; b < 8; ++b) {
                buf[static_cast<std::size_t>(b)] =
                    static_cast<std::uint8_t>(m >> (8 * b));
            }
            hasher.update(buf);
        }
    }
    return util::to_hex(hasher.finish());
}

PaymentRequest random_payment(const World& world, util::Rng& rng) {
    PaymentRequest request;
    request.sender = world.users[rng.uniform_u64(0, world.users.size() - 1)];
    request.destination = world.users[rng.uniform_u64(0, world.users.size() - 1)];
    const int kind = static_cast<int>(rng.uniform_u64(0, 2));
    if (kind == 0) {
        request.deliver = Amount::xrp(rng.lognormal(2.0, 2.0));
        request.source_currency = Currency::xrp();
    } else if (kind == 1) {
        const Currency c = rng.bernoulli(0.5) ? kUsd : kEur;
        request.deliver = Amount::iou(c, rng.lognormal(2.0, 2.0));
        request.source_currency = c;
    } else {
        request.deliver = Amount::iou(kEur, rng.lognormal(2.0, 1.5));
        request.source_currency = kUsd;
    }
    return request;
}

class EngineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineProperty, XrpIsConservedModuloBurns) {
    World world = build_world(GetParam());
    PaymentEngine engine(world.state);
    util::Rng rng(GetParam() * 31 + 7);
    for (int i = 0; i < 400; ++i) {
        (void)engine.execute(random_payment(world, rng));
    }
    std::int64_t total = 0;
    for (const auto& [account, root] : world.state.accounts()) {
        total += root.balance.drops;
    }
    EXPECT_EQ(total + world.state.burned_fees().drops, world.initial_drops);
}

TEST_P(EngineProperty, FailedPaymentsLeaveNoTrace) {
    World world = build_world(GetParam());
    PaymentEngine engine(world.state);
    util::Rng rng(GetParam() * 97 + 3);
    int failures = 0;
    for (int i = 0; i < 300 && failures < 40; ++i) {
        PaymentRequest request = random_payment(world, rng);
        // Push some requests far beyond any capacity to force failure.
        if (rng.bernoulli(0.5)) {
            request.deliver.value = IouAmount::from_double(1e14);
        }
        const std::string before = state_digest(world.state);
        const ledger::TxResult result = engine.execute(request);
        if (!result.success) {
            ++failures;
            EXPECT_EQ(state_digest(world.state), before);
        }
    }
    EXPECT_GT(failures, 0);
}

TEST_P(EngineProperty, TrustLineClaimsRespectLimits) {
    World world = build_world(GetParam());
    PaymentEngine engine(world.state);
    util::Rng rng(GetParam() * 13 + 1);
    for (int i = 0; i < 400; ++i) {
        (void)engine.execute(random_payment(world, rng));
    }
    for (const AccountID& user : world.users) {
        for (const ledger::TrustLine* line : world.state.lines_of(user)) {
            const IouAmount claim = line->balance_for(user);
            if (!claim.is_negative()) {
                EXPECT_LE(claim.to_double(),
                          line->limit_of(user).to_double() * (1.0 + 1e-9));
            }
        }
    }
}

TEST_P(EngineProperty, SuccessfulResultsReportWhatHappened) {
    World world = build_world(GetParam());
    PaymentEngine engine(world.state);
    util::Rng rng(GetParam() * 41 + 11);
    for (int i = 0; i < 200; ++i) {
        const PaymentRequest request = random_payment(world, rng);
        const ledger::TxResult result = engine.execute(request);
        if (!result.success) continue;
        EXPECT_GE(result.parallel_paths, 1u);
        EXPECT_EQ(result.cross_currency, request.cross_currency());
        // Intermediaries reported iff the payment was not direct.
        if (result.intermediate_hops > 0) {
            EXPECT_FALSE(result.intermediaries.empty());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace xrpl::paths
