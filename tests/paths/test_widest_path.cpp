#include "paths/widest_path.hpp"

#include <gtest/gtest.h>

#include <string>

#include "paths/payment_engine.hpp"

namespace xrpl::paths {
namespace {

using ledger::AccountID;
using ledger::Currency;
using ledger::IouAmount;
using ledger::LedgerState;

const Currency kUsd = Currency::from_code("USD");

class WidestPathTest : public ::testing::Test {
protected:
    AccountID add(const std::string& seed) {
        const AccountID id = AccountID::from_seed(seed);
        state_.create_account(id, ledger::XrpAmount::from_xrp(10.0), false, true);
        return id;
    }
    void edge(const AccountID& from, const AccountID& to, double limit) {
        state_.set_trust(to, from, kUsd, IouAmount::from_double(limit));
    }

    LedgerState state_;
    WidestPathFinder finder_;
};

TEST_F(WidestPathTest, PrefersCapacityOverLength) {
    const AccountID a = add("a");
    const AccountID b = add("b");
    const AccountID x = add("x");
    const AccountID y = add("y");
    // Thin direct edge; fat two-intermediate route.
    edge(a, b, 5.0);
    edge(a, x, 1'000.0);
    edge(x, y, 900.0);
    edge(y, b, 800.0);
    const TrustGraph graph(state_);
    const auto path = finder_.find(graph, a, b, kUsd);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(path->nodes.size(), 4u);
    EXPECT_NEAR(path->capacity.to_double(), 800.0, 1e-9);

    // The BFS finder takes the thin direct edge instead.
    PathFinder shortest;
    const auto short_path = shortest.find(graph, a, b, kUsd);
    ASSERT_TRUE(short_path.has_value());
    EXPECT_EQ(short_path->nodes.size(), 2u);
    EXPECT_NEAR(short_path->capacity.to_double(), 5.0, 1e-9);
}

TEST_F(WidestPathTest, AgreesWithBfsWhenOnlyOnePathExists) {
    const AccountID a = add("a");
    const AccountID m = add("m");
    const AccountID b = add("b");
    edge(a, m, 50.0);
    edge(m, b, 30.0);
    const TrustGraph graph(state_);
    const auto path = finder_.find(graph, a, b, kUsd);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(path->nodes, (std::vector<AccountID>{a, m, b}));
    EXPECT_NEAR(path->capacity.to_double(), 30.0, 1e-9);
}

TEST_F(WidestPathTest, NoPathAndExclusions) {
    const AccountID a = add("a");
    const AccountID m = add("m");
    const AccountID b = add("b");
    EXPECT_FALSE(finder_.find(TrustGraph(state_), a, b, kUsd).has_value());
    edge(a, m, 10.0);
    edge(m, b, 10.0);
    TrustGraph graph(state_);
    graph.exclude(m);
    EXPECT_FALSE(finder_.find(graph, a, b, kUsd).has_value());
}

TEST_F(WidestPathTest, RespectsNoRipple) {
    const AccountID a = add("a");
    const AccountID b = add("b");
    const AccountID locked = AccountID::from_seed("locked");
    state_.create_account(locked, ledger::XrpAmount::from_xrp(10.0), false, false);
    edge(a, locked, 1'000.0);
    edge(locked, b, 1'000.0);
    const TrustGraph graph(state_);
    EXPECT_FALSE(finder_.find(graph, a, b, kUsd).has_value());
    // But the locked account can still be the destination.
    EXPECT_TRUE(finder_.find(graph, a, locked, kUsd).has_value());
}

TEST_F(WidestPathTest, RespectsDepthCap) {
    std::vector<AccountID> chain;
    chain.push_back(add("c0"));
    for (int i = 1; i <= 6; ++i) {
        chain.push_back(add("c" + std::to_string(i)));
        edge(chain[static_cast<std::size_t>(i - 1)],
             chain[static_cast<std::size_t>(i)], 100.0);
    }
    PathFinderConfig config;
    config.max_intermediate_hops = 3;
    WidestPathFinder capped(config);
    const TrustGraph graph(state_);
    EXPECT_FALSE(capped.find(graph, chain.front(), chain.back(), kUsd).has_value());
}

TEST_F(WidestPathTest, EngineWithWidestStrategyNeedsFewerPaths) {
    // A payment of 90: the BFS engine burns through three thin direct
    // routes; the widest engine takes the single fat route.
    const AccountID user = add("user");
    const AccountID merchant = add("merchant");
    const AccountID g1 = add("g1");
    const AccountID g2 = add("g2");
    const AccountID g3 = add("g3");
    const AccountID fat = add("fat");
    const AccountID fat2 = add("fat2");
    for (const AccountID& g : {g1, g2, g3}) {
        // user holds 40 at each thin gateway (deposit = capacity).
        ledger::TrustLine& line =
            state_.set_trust(user, g, kUsd, IouAmount::from_double(1e6));
        ASSERT_TRUE(line.transfer_from(g, IouAmount::from_double(40.0)));
        edge(g, merchant, 1e6);
    }
    // The fat route: user -> fat -> fat2 -> merchant with capacity 500.
    edge(user, fat, 500.0);
    edge(fat, fat2, 500.0);
    edge(fat2, merchant, 500.0);

    PaymentRequest request;
    request.sender = user;
    request.destination = merchant;
    request.deliver = ledger::Amount::iou(kUsd, 90.0);
    request.source_currency = kUsd;

    {
        LedgerState world = state_.clone();
        PaymentEngine engine(world);  // shortest-first default
        const auto result = engine.execute(request);
        ASSERT_TRUE(result.success);
        EXPECT_GE(result.parallel_paths, 3u);
    }
    {
        LedgerState world = state_.clone();
        EngineConfig config;
        config.strategy = PathStrategy::kWidestFirst;
        PaymentEngine engine(world, config);
        const auto result = engine.execute(request);
        ASSERT_TRUE(result.success);
        EXPECT_EQ(result.parallel_paths, 1u);
        EXPECT_EQ(result.intermediate_hops, 2u);
    }
}

}  // namespace
}  // namespace xrpl::paths
