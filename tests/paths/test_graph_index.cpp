// GraphIndex — the currency-partitioned CSR adjacency: build shape,
// lines_of() order parity, lazy generation-driven rebuild, and the
// live-capacity contract (balance mutations never invalidate).
#include "paths/graph_index.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "paths/trust_graph.hpp"

namespace xrpl::paths {
namespace {

using ledger::AccountID;
using ledger::Currency;
using ledger::IouAmount;
using ledger::LedgerState;

const Currency kUsd = Currency::from_code("USD");
const Currency kEur = Currency::from_code("EUR");
const Currency kBtc = Currency::from_code("BTC");

class GraphIndexTest : public ::testing::Test {
protected:
    AccountID add(const std::string& seed, bool ripples = true) {
        const AccountID id = AccountID::from_seed(seed);
        state_.create_account(id, ledger::XrpAmount::from_xrp(10.0), false,
                              ripples);
        return id;
    }

    /// Allow value to flow from -> to up to `limit` (receiver trusts).
    ledger::TrustLine& edge(const AccountID& from, const AccountID& to,
                            Currency c, double limit) {
        return state_.set_trust(to, from, c, IouAmount::from_double(limit));
    }

    [[nodiscard]] std::uint32_t index_of(const AccountID& id) const {
        return state_.account(id)->index;
    }

    LedgerState state_;
};

TEST_F(GraphIndexTest, EmptyLedgerBuildsEmptyIndex) {
    GraphIndex index;
    EXPECT_FALSE(index.built());
    index.build(state_);
    EXPECT_TRUE(index.built());
    EXPECT_EQ(index.partition_count(), 0u);
    EXPECT_EQ(index.edge_count(), 0u);
    EXPECT_EQ(index.partition(kUsd), nullptr);
}

TEST_F(GraphIndexTest, OnePartitionPerCurrency) {
    const AccountID a = add("a");
    const AccountID b = add("b");
    const AccountID c = add("c");
    edge(a, b, kUsd, 10.0);
    edge(b, c, kEur, 10.0);
    GraphIndex index;
    index.build(state_);
    EXPECT_EQ(index.partition_count(), 2u);
    EXPECT_NE(index.partition(kUsd), nullptr);
    EXPECT_NE(index.partition(kEur), nullptr);
    EXPECT_EQ(index.partition(kBtc), nullptr);
}

TEST_F(GraphIndexTest, OneLineYieldsOneEdgePerEndpoint) {
    const AccountID a = add("a");
    const AccountID b = add("b");
    edge(a, b, kUsd, 25.0);
    GraphIndex index;
    index.build(state_);
    ASSERT_EQ(index.edge_count(), 2u);

    const GraphIndex::Partition* part = index.partition(kUsd);
    ASSERT_NE(part, nullptr);
    const auto from_a = part->edges_of(index_of(a));
    const auto from_b = part->edges_of(index_of(b));
    ASSERT_EQ(from_a.size(), 1u);
    ASSERT_EQ(from_b.size(), 1u);
    EXPECT_EQ(from_a[0].peer, index_of(b));
    EXPECT_EQ(from_b[0].peer, index_of(a));
    // Both records point at the same underlying trust line...
    EXPECT_EQ(from_a[0].line, from_b[0].line);
    // ...with opposite direction bits.
    EXPECT_NE(from_a[0].node_is_low, from_b[0].node_is_low);
}

TEST_F(GraphIndexTest, DirectionBitMatchesCapacityFrom) {
    const AccountID a = add("a");
    const AccountID b = add("b");
    ledger::TrustLine& line = edge(a, b, kUsd, 40.0);
    // Make the two directions distinguishable: a -> b has 30 left,
    // b -> a has 10 (the transferred debt can flow back).
    ASSERT_TRUE(line.transfer_from(a, IouAmount::from_double(10.0)));

    GraphIndex index;
    index.build(state_);
    const GraphIndex::Partition* part = index.partition(kUsd);
    ASSERT_NE(part, nullptr);
    for (const AccountID& node : {a, b}) {
        const auto edges = part->edges_of(index_of(node));
        ASSERT_EQ(edges.size(), 1u);
        // Out-capacity through the direction bit == the scan's
        // capacity_from(node), byte for byte.
        EXPECT_EQ(
            edges[0].line->directed_capacity(edges[0].node_is_low).to_double(),
            edges[0].line->capacity_from(node).to_double());
    }
}

TEST_F(GraphIndexTest, PerNodeOrderMatchesLinesOfScan) {
    // A hub with several USD lines plus EUR noise interleaved: the CSR
    // span must list USD peers in exactly the order the legacy scan
    // (lines_of insertion order, currency-filtered) enumerates them.
    const AccountID hub = add("hub");
    std::vector<AccountID> peers;
    for (int i = 0; i < 6; ++i) {
        peers.push_back(add("peer" + std::to_string(i)));
        edge(hub, peers.back(), kUsd, 10.0 + i);
        if (i % 2 == 0) edge(peers.back(), hub, kEur, 5.0);
    }

    const TrustGraph graph(state_, /*use_index=*/false);
    std::vector<std::uint32_t> scan_order;
    graph.for_each_neighbor(hub, kUsd,
                            [&](const AccountID& peer, const ledger::TrustLine*) {
                                scan_order.push_back(index_of(peer));
                            });

    GraphIndex index;
    index.build(state_);
    const GraphIndex::Partition* part = index.partition(kUsd);
    ASSERT_NE(part, nullptr);
    std::vector<std::uint32_t> csr_order;
    for (const GraphIndex::Edge& e : part->edges_of(index_of(hub))) {
        csr_order.push_back(e.peer);
    }
    EXPECT_EQ(csr_order, scan_order);
}

TEST_F(GraphIndexTest, RipplingFlagCachedPerEdge) {
    const AccountID a = add("a");
    const AccountID locked = add("locked", /*ripples=*/false);
    edge(a, locked, kUsd, 10.0);
    GraphIndex index;
    index.build(state_);
    const GraphIndex::Partition* part = index.partition(kUsd);
    ASSERT_NE(part, nullptr);
    const auto from_a = part->edges_of(index_of(a));
    const auto from_locked = part->edges_of(index_of(locked));
    ASSERT_EQ(from_a.size(), 1u);
    ASSERT_EQ(from_locked.size(), 1u);
    EXPECT_FALSE(from_a[0].peer_ripples);    // peer is `locked`
    EXPECT_TRUE(from_locked[0].peer_ripples);  // peer is `a`
}

TEST_F(GraphIndexTest, EnsureIsLazyUntilTopologyMoves) {
    const AccountID a = add("a");
    const AccountID b = add("b");
    ledger::TrustLine& line = edge(a, b, kUsd, 50.0);

    GraphIndex index;
    index.ensure(state_);
    ASSERT_TRUE(index.built());
    const std::uint64_t gen = index.built_generation();

    // Balance mutation: NOT a topology change — no rebuild.
    ASSERT_TRUE(line.transfer_from(a, IouAmount::from_double(5.0)));
    index.ensure(state_);
    EXPECT_EQ(index.built_generation(), gen);
    EXPECT_EQ(index.edge_count(), 2u);

    // Limit update on an existing line: also not topology.
    state_.set_trust(b, a, kUsd, IouAmount::from_double(75.0));
    index.ensure(state_);
    EXPECT_EQ(index.built_generation(), gen);

    // A NEW line is topology: ensure() must rebuild and see it.
    const AccountID c = add("c");
    edge(b, c, kUsd, 10.0);
    index.ensure(state_);
    EXPECT_GT(index.built_generation(), gen);
    EXPECT_EQ(index.edge_count(), 4u);
}

TEST_F(GraphIndexTest, CapacityReadLiveThroughStoredPointer) {
    const AccountID a = add("a");
    const AccountID b = add("b");
    ledger::TrustLine& line = edge(a, b, kUsd, 100.0);
    GraphIndex index;
    index.build(state_);
    const GraphIndex::Partition* part = index.partition(kUsd);
    ASSERT_NE(part, nullptr);
    const auto edges = part->edges_of(index_of(a));
    ASSERT_EQ(edges.size(), 1u);
    EXPECT_NEAR(edges[0].line->directed_capacity(edges[0].node_is_low).to_double(),
                100.0, 1e-9);
    // Mutate the balance after the build: the stale index must still
    // see the new capacity (it never copied the number).
    ASSERT_TRUE(line.transfer_from(a, IouAmount::from_double(60.0)));
    EXPECT_NEAR(edges[0].line->directed_capacity(edges[0].node_is_low).to_double(),
                40.0, 1e-9);
}

TEST_F(GraphIndexTest, CloneRebuildsItsOwnIndex) {
    // A TrustGraph over a clone must not serve spans built against the
    // original's account indexing; the clone carries the generation,
    // and each graph owns its own index instance.
    const AccountID a = add("a");
    const AccountID b = add("b");
    edge(a, b, kUsd, 10.0);
    const LedgerState copy = state_.clone();
    EXPECT_EQ(copy.topology_generation(), state_.topology_generation());

    const TrustGraph graph(copy, /*use_index=*/true);
    const GraphIndex& index = graph.index();
    EXPECT_TRUE(index.built());
    EXPECT_EQ(index.edge_count(), 2u);
}

TEST_F(GraphIndexTest, ExclusionStampsAreEpochScoped) {
    const AccountID a = add("a");
    const AccountID b = add("b");
    edge(a, b, kUsd, 10.0);
    TrustGraph graph(state_, /*use_index=*/true);
    EXPECT_FALSE(graph.is_excluded_index(index_of(b)));
    graph.exclude(b);
    EXPECT_TRUE(graph.is_excluded_index(index_of(b)));
    EXPECT_FALSE(graph.is_excluded_index(index_of(a)));
    graph.clear_exclusions();
    EXPECT_FALSE(graph.is_excluded_index(index_of(b)));
    // Re-excluding after a clear works in the new epoch.
    graph.exclude(a);
    EXPECT_TRUE(graph.is_excluded_index(index_of(a)));
    EXPECT_FALSE(graph.is_excluded_index(index_of(b)));
    // Out-of-range probes (accounts created after the last exclude)
    // are simply not excluded.
    EXPECT_FALSE(graph.is_excluded_index(9999u));
}

}  // namespace
}  // namespace xrpl::paths
