#include "paths/path_finder.hpp"

#include <gtest/gtest.h>

#include <string>

namespace xrpl::paths {
namespace {

using ledger::AccountID;
using ledger::Currency;
using ledger::IouAmount;
using ledger::LedgerState;

const Currency kUsd = Currency::from_code("USD");

class PathFinderTest : public ::testing::Test {
protected:
    AccountID add(const std::string& seed) {
        const AccountID id = AccountID::from_seed(seed);
        state_.create_account(id, ledger::XrpAmount::from_xrp(10.0), false, true);
        return id;
    }

    /// Allow value to flow from -> to up to `limit` (receiver trusts).
    void edge(const AccountID& from, const AccountID& to, double limit) {
        state_.set_trust(to, from, kUsd, IouAmount::from_double(limit));
    }

    LedgerState state_;
    PathFinder finder_;
};

TEST_F(PathFinderTest, FindsDirectEdge) {
    const AccountID a = add("a");
    const AccountID b = add("b");
    edge(a, b, 50.0);
    const TrustGraph graph(state_);
    const auto path = finder_.find(graph, a, b, kUsd);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(path->nodes, (std::vector<AccountID>{a, b}));
    EXPECT_EQ(path->intermediate_hops(), 0u);
    EXPECT_NEAR(path->capacity.to_double(), 50.0, 1e-9);
}

TEST_F(PathFinderTest, FindsTwoHopPathThroughGateway) {
    const AccountID user = add("user");
    const AccountID gateway = add("gateway");
    const AccountID merchant = add("merchant");
    edge(user, gateway, 30.0);
    edge(gateway, merchant, 100.0);
    const TrustGraph graph(state_);
    const auto path = finder_.find(graph, user, merchant, kUsd);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(path->nodes, (std::vector<AccountID>{user, gateway, merchant}));
    EXPECT_EQ(path->intermediate_hops(), 1u);
    EXPECT_NEAR(path->capacity.to_double(), 30.0, 1e-9);  // bottleneck
}

TEST_F(PathFinderTest, PrefersShortestPath) {
    const AccountID a = add("a");
    const AccountID b = add("b");
    const AccountID x = add("x");
    const AccountID y = add("y");
    // Long route a -> x -> y -> b and short route a -> b.
    edge(a, x, 10.0);
    edge(x, y, 10.0);
    edge(y, b, 10.0);
    edge(a, b, 5.0);
    const TrustGraph graph(state_);
    const auto path = finder_.find(graph, a, b, kUsd);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(path->nodes.size(), 2u);
}

TEST_F(PathFinderTest, NoPathReturnsNullopt) {
    const AccountID a = add("a");
    const AccountID b = add("b");
    const TrustGraph graph(state_);
    EXPECT_FALSE(finder_.find(graph, a, b, kUsd).has_value());
}

TEST_F(PathFinderTest, DirectionalityRespected) {
    const AccountID a = add("a");
    const AccountID b = add("b");
    edge(a, b, 50.0);  // only a -> b
    const TrustGraph graph(state_);
    EXPECT_TRUE(finder_.find(graph, a, b, kUsd).has_value());
    EXPECT_FALSE(finder_.find(graph, b, a, kUsd).has_value());
}

TEST_F(PathFinderTest, ZeroCapacityEdgeIsUnusable) {
    const AccountID a = add("a");
    const AccountID b = add("b");
    edge(a, b, 50.0);
    ledger::TrustLine* line = state_.trustline(a, b, kUsd);
    ASSERT_TRUE(line->transfer_from(a, IouAmount::from_double(50.0)));
    const TrustGraph graph(state_);
    EXPECT_FALSE(finder_.find(graph, a, b, kUsd).has_value());
}

TEST_F(PathFinderTest, ExcludedIntermediateAvoided) {
    const AccountID a = add("a");
    const AccountID via1 = add("via1");
    const AccountID via2 = add("via2");
    const AccountID b = add("b");
    edge(a, via1, 10.0);
    edge(via1, b, 10.0);
    edge(a, via2, 10.0);
    edge(via2, b, 10.0);
    TrustGraph graph(state_);
    graph.exclude(via1);
    const auto path = finder_.find(graph, a, b, kUsd);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(path->nodes[1], via2);
}

TEST_F(PathFinderTest, ExcludedEndpointFails) {
    const AccountID a = add("a");
    const AccountID b = add("b");
    edge(a, b, 10.0);
    TrustGraph graph(state_);
    graph.exclude(b);
    EXPECT_FALSE(finder_.find(graph, a, b, kUsd).has_value());
}

TEST_F(PathFinderTest, SameSourceAndDestinationRejected) {
    const AccountID a = add("a");
    const TrustGraph graph(state_);
    EXPECT_FALSE(finder_.find(graph, a, a, kUsd).has_value());
}

TEST_F(PathFinderTest, RespectsDepthLimit) {
    // A chain of 6 intermediates with a finder capped at 4.
    std::vector<AccountID> chain;
    chain.push_back(add("n0"));
    for (int i = 1; i <= 7; ++i) {
        chain.push_back(add("n" + std::to_string(i)));
        edge(chain[i - 1], chain[i], 10.0);
    }
    PathFinderConfig config;
    config.max_intermediate_hops = 4;
    PathFinder capped(config);
    const TrustGraph graph(state_);
    EXPECT_FALSE(capped.find(graph, chain.front(), chain.back(), kUsd).has_value());

    PathFinderConfig loose;
    loose.max_intermediate_hops = 6;
    PathFinder generous(loose);
    const auto path = generous.find(graph, chain.front(), chain.back(), kUsd);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(path->intermediate_hops(), 6u);
}

TEST_F(PathFinderTest, FindsEightHopSpamChain) {
    // The MTL spam shape: 8 intermediates.
    std::vector<AccountID> chain;
    chain.push_back(add("spammer"));
    for (int i = 1; i <= 8; ++i) chain.push_back(add("shill" + std::to_string(i)));
    chain.push_back(add("target"));
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
        edge(chain[i], chain[i + 1], 1e9);
    }
    const TrustGraph graph(state_);
    const auto path = finder_.find(graph, chain.front(), chain.back(), kUsd);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(path->intermediate_hops(), 8u);
    EXPECT_EQ(path->nodes, chain);
}

TEST_F(PathFinderTest, ScratchBuffersSurviveReuse) {
    const AccountID a = add("a");
    const AccountID b = add("b");
    const AccountID c = add("c");
    edge(a, b, 10.0);
    edge(b, c, 10.0);
    const TrustGraph graph(state_);
    for (int i = 0; i < 100; ++i) {
        const auto path = finder_.find(graph, a, c, kUsd);
        ASSERT_TRUE(path.has_value());
        EXPECT_EQ(path->nodes.size(), 3u);
    }
}

TEST_F(PathFinderTest, NoRippleAccountsBlockInteriorRouting) {
    // A user that does not enable DefaultRipple cannot be used as an
    // intermediate hop, even with capacity on both sides.
    const AccountID a = add("a");
    const AccountID b = add("b");
    const AccountID locked = AccountID::from_seed("locked");
    state_.create_account(locked, ledger::XrpAmount::from_xrp(10.0), false,
                          /*allows_rippling=*/false);
    edge(a, locked, 100.0);
    edge(locked, b, 100.0);
    const TrustGraph graph(state_);
    EXPECT_FALSE(finder_.find(graph, a, b, kUsd).has_value());
    // But it can still be a destination...
    EXPECT_TRUE(finder_.find(graph, a, locked, kUsd).has_value());
    // ...and a sender.
    EXPECT_TRUE(finder_.find(graph, locked, b, kUsd).has_value());
}

TEST_F(PathFinderTest, HubTopologyFindsFourHopRoute) {
    // user -> minorG -> hub -> majorG -> merchant.
    const AccountID user = add("user");
    const AccountID minor = add("minorG");
    const AccountID hub = add("hub");
    const AccountID major = add("majorG");
    const AccountID merchant = add("merchant");
    edge(user, minor, 100.0);
    edge(minor, hub, 1000.0);
    edge(hub, major, 1000.0);
    edge(major, merchant, 1000.0);
    const TrustGraph graph(state_);
    const auto path = finder_.find(graph, user, merchant, kUsd);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(path->intermediate_hops(), 3u);
    EXPECT_NEAR(path->capacity.to_double(), 100.0, 1e-9);
}

}  // namespace
}  // namespace xrpl::paths
