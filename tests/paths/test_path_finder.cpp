#include "paths/path_finder.hpp"

#include <gtest/gtest.h>

#include <string>

namespace xrpl::paths {
namespace {

using ledger::AccountID;
using ledger::Currency;
using ledger::IouAmount;
using ledger::LedgerState;

const Currency kUsd = Currency::from_code("USD");

/// Every test runs against BOTH neighbor engines: the CSR GraphIndex
/// (param = true) and the legacy lines_of() scan (param = false). The
/// two must agree on every path, including tie-breaks.
class PathFinderTest : public ::testing::TestWithParam<bool> {
protected:
    AccountID add(const std::string& seed) {
        const AccountID id = AccountID::from_seed(seed);
        state_.create_account(id, ledger::XrpAmount::from_xrp(10.0), false, true);
        return id;
    }

    /// Allow value to flow from -> to up to `limit` (receiver trusts).
    void edge(const AccountID& from, const AccountID& to, double limit) {
        state_.set_trust(to, from, kUsd, IouAmount::from_double(limit));
    }

    [[nodiscard]] TrustGraph graph() const {
        return TrustGraph(state_, GetParam());
    }

    LedgerState state_;
    PathFinder finder_;
};

INSTANTIATE_TEST_SUITE_P(Engines, PathFinderTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                             return info.param ? "Indexed" : "Scan";
                         });

TEST_P(PathFinderTest, FindsDirectEdge) {
    const AccountID a = add("a");
    const AccountID b = add("b");
    edge(a, b, 50.0);
    const TrustGraph g = graph();
    const auto path = finder_.find(g, a, b, kUsd);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(path->nodes, (std::vector<AccountID>{a, b}));
    EXPECT_EQ(path->intermediate_hops(), 0u);
    EXPECT_NEAR(path->capacity.to_double(), 50.0, 1e-9);
}

TEST_P(PathFinderTest, FindsTwoHopPathThroughGateway) {
    const AccountID user = add("user");
    const AccountID gateway = add("gateway");
    const AccountID merchant = add("merchant");
    edge(user, gateway, 30.0);
    edge(gateway, merchant, 100.0);
    const TrustGraph g = graph();
    const auto path = finder_.find(g, user, merchant, kUsd);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(path->nodes, (std::vector<AccountID>{user, gateway, merchant}));
    EXPECT_EQ(path->intermediate_hops(), 1u);
    EXPECT_NEAR(path->capacity.to_double(), 30.0, 1e-9);  // bottleneck
}

TEST_P(PathFinderTest, PrefersShortestPath) {
    const AccountID a = add("a");
    const AccountID b = add("b");
    const AccountID x = add("x");
    const AccountID y = add("y");
    // Long route a -> x -> y -> b and short route a -> b.
    edge(a, x, 10.0);
    edge(x, y, 10.0);
    edge(y, b, 10.0);
    edge(a, b, 5.0);
    const TrustGraph g = graph();
    const auto path = finder_.find(g, a, b, kUsd);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(path->nodes.size(), 2u);
}

TEST_P(PathFinderTest, NoPathReturnsNullopt) {
    const AccountID a = add("a");
    const AccountID b = add("b");
    const TrustGraph g = graph();
    EXPECT_FALSE(finder_.find(g, a, b, kUsd).has_value());
}

TEST_P(PathFinderTest, DirectionalityRespected) {
    const AccountID a = add("a");
    const AccountID b = add("b");
    edge(a, b, 50.0);  // only a -> b
    const TrustGraph g = graph();
    EXPECT_TRUE(finder_.find(g, a, b, kUsd).has_value());
    EXPECT_FALSE(finder_.find(g, b, a, kUsd).has_value());
}

TEST_P(PathFinderTest, ZeroCapacityEdgeIsUnusable) {
    const AccountID a = add("a");
    const AccountID b = add("b");
    edge(a, b, 50.0);
    ledger::TrustLine* line = state_.trustline(a, b, kUsd);
    ASSERT_TRUE(line->transfer_from(a, IouAmount::from_double(50.0)));
    const TrustGraph g = graph();
    EXPECT_FALSE(finder_.find(g, a, b, kUsd).has_value());
}

TEST_P(PathFinderTest, ExcludedIntermediateAvoided) {
    const AccountID a = add("a");
    const AccountID via1 = add("via1");
    const AccountID via2 = add("via2");
    const AccountID b = add("b");
    edge(a, via1, 10.0);
    edge(via1, b, 10.0);
    edge(a, via2, 10.0);
    edge(via2, b, 10.0);
    TrustGraph g = graph();
    g.exclude(via1);
    const auto path = finder_.find(g, a, b, kUsd);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(path->nodes[1], via2);
}

TEST_P(PathFinderTest, ExcludedEndpointFails) {
    const AccountID a = add("a");
    const AccountID b = add("b");
    edge(a, b, 10.0);
    TrustGraph g = graph();
    g.exclude(b);
    EXPECT_FALSE(finder_.find(g, a, b, kUsd).has_value());
}

TEST_P(PathFinderTest, SameSourceAndDestinationRejected) {
    const AccountID a = add("a");
    const TrustGraph g = graph();
    EXPECT_FALSE(finder_.find(g, a, a, kUsd).has_value());
}

TEST_P(PathFinderTest, RespectsDepthLimit) {
    // A chain of 6 intermediates with a finder capped at 4.
    std::vector<AccountID> chain;
    chain.push_back(add("n0"));
    for (int i = 1; i <= 7; ++i) {
        chain.push_back(add("n" + std::to_string(i)));
        edge(chain[i - 1], chain[i], 10.0);
    }
    PathFinderConfig config;
    config.max_intermediate_hops = 4;
    PathFinder capped(config);
    const TrustGraph g = graph();
    EXPECT_FALSE(capped.find(g, chain.front(), chain.back(), kUsd).has_value());

    PathFinderConfig loose;
    loose.max_intermediate_hops = 6;
    PathFinder generous(loose);
    const auto path = generous.find(g, chain.front(), chain.back(), kUsd);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(path->intermediate_hops(), 6u);
}

TEST_P(PathFinderTest, MaxVisitedCutsTheSearchOff) {
    // A wide two-level fan (a -> 30 relays -> b): the search must
    // visit every relay before it can close the path, so a budget of 5
    // gives up while a roomy budget finds the two-hop route.
    const AccountID a = add("a");
    const AccountID b = add("b");
    for (int i = 0; i < 30; ++i) {
        const AccountID relay = add("relay" + std::to_string(i));
        edge(a, relay, 10.0);
        edge(relay, b, 10.0);
    }
    PathFinderConfig tight;
    tight.max_visited = 5;
    PathFinder starved(tight);
    const TrustGraph g = graph();
    EXPECT_FALSE(starved.find(g, a, b, kUsd).has_value());

    const auto path = finder_.find(g, a, b, kUsd);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(path->intermediate_hops(), 1u);
}

TEST_P(PathFinderTest, FindsEightHopSpamChain) {
    // The MTL spam shape: 8 intermediates.
    std::vector<AccountID> chain;
    chain.push_back(add("spammer"));
    for (int i = 1; i <= 8; ++i) chain.push_back(add("shill" + std::to_string(i)));
    chain.push_back(add("target"));
    for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
        edge(chain[i], chain[i + 1], 1e9);
    }
    const TrustGraph g = graph();
    const auto path = finder_.find(g, chain.front(), chain.back(), kUsd);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(path->intermediate_hops(), 8u);
    EXPECT_EQ(path->nodes, chain);
}

TEST_P(PathFinderTest, ScratchBuffersSurviveReuse) {
    const AccountID a = add("a");
    const AccountID b = add("b");
    const AccountID c = add("c");
    edge(a, b, 10.0);
    edge(b, c, 10.0);
    const TrustGraph g = graph();
    for (int i = 0; i < 100; ++i) {
        const auto path = finder_.find(g, a, c, kUsd);
        ASSERT_TRUE(path.has_value());
        EXPECT_EQ(path->nodes.size(), 3u);
    }
}

TEST_P(PathFinderTest, NoRippleAccountsBlockInteriorRouting) {
    // A user that does not enable DefaultRipple cannot be used as an
    // intermediate hop, even with capacity on both sides.
    const AccountID a = add("a");
    const AccountID b = add("b");
    const AccountID locked = AccountID::from_seed("locked");
    state_.create_account(locked, ledger::XrpAmount::from_xrp(10.0), false,
                          /*allows_rippling=*/false);
    edge(a, locked, 100.0);
    edge(locked, b, 100.0);
    const TrustGraph g = graph();
    EXPECT_FALSE(finder_.find(g, a, b, kUsd).has_value());
    // But it can still be a destination...
    EXPECT_TRUE(finder_.find(g, a, locked, kUsd).has_value());
    // ...and a sender.
    EXPECT_TRUE(finder_.find(g, locked, b, kUsd).has_value());
}

TEST_P(PathFinderTest, HubTopologyFindsFourHopRoute) {
    // user -> minorG -> hub -> majorG -> merchant.
    const AccountID user = add("user");
    const AccountID minor = add("minorG");
    const AccountID hub = add("hub");
    const AccountID major = add("majorG");
    const AccountID merchant = add("merchant");
    edge(user, minor, 100.0);
    edge(minor, hub, 1000.0);
    edge(hub, major, 1000.0);
    edge(major, merchant, 1000.0);
    const TrustGraph g = graph();
    const auto path = finder_.find(g, user, merchant, kUsd);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(path->intermediate_hops(), 3u);
    EXPECT_NEAR(path->capacity.to_double(), 100.0, 1e-9);
}

TEST_P(PathFinderTest, BothEnginesReturnIdenticalPaths) {
    // A small braided topology with genuine tie-breaks: whatever this
    // engine returns must match the other engine node for node.
    const AccountID a = add("a");
    const AccountID b = add("b");
    std::vector<AccountID> mids;
    for (int i = 0; i < 5; ++i) {
        mids.push_back(add("mid" + std::to_string(i)));
        edge(a, mids.back(), 10.0 + i);
        edge(mids.back(), b, 20.0 - i);
    }
    edge(mids[1], mids[3], 7.0);

    const TrustGraph mine(state_, GetParam());
    const TrustGraph other(state_, !GetParam());
    PathFinder other_finder;
    const auto p1 = finder_.find(mine, a, b, kUsd);
    const auto p2 = other_finder.find(other, a, b, kUsd);
    ASSERT_TRUE(p1.has_value());
    ASSERT_TRUE(p2.has_value());
    EXPECT_EQ(p1->nodes, p2->nodes);
    EXPECT_EQ(p1->capacity.to_double(), p2->capacity.to_double());
}

}  // namespace
}  // namespace xrpl::paths
