#include "datagen/population.hpp"

#include <gtest/gtest.h>

namespace xrpl::datagen {
namespace {

GeneratorConfig small_config() {
    GeneratorConfig config;
    config.seed = 5;
    config.num_users = 500;
    config.num_gateways = 25;
    config.num_market_makers = 30;
    config.num_merchants = 80;
    config.num_hubs = 10;
    return config;
}

class PopulationTest : public ::testing::Test {
protected:
    void SetUp() override {
        const util::RngStream stream(small_config().seed);
        pop_ = build_population(ledger_, small_config(), stream);
    }

    ledger::LedgerState ledger_;
    Population pop_;
};

TEST_F(PopulationTest, CountsMatchConfig) {
    EXPECT_EQ(pop_.gateways.size(), 25u);
    EXPECT_EQ(pop_.users.size(), 500u);
    EXPECT_EQ(pop_.user_profiles.size(), 500u);
    EXPECT_EQ(pop_.market_makers.size(), 30u);
    EXPECT_EQ(pop_.merchants.size(), 80u);
    EXPECT_EQ(pop_.merchant_profiles.size(), 80u);
    EXPECT_EQ(pop_.hubs.size(), 10u);
}

TEST_F(PopulationTest, GatewaysAreFlagged) {
    for (const auto& gw : pop_.gateways) {
        const ledger::AccountRoot* root = ledger_.account(gw);
        ASSERT_NE(root, nullptr);
        EXPECT_TRUE(root->is_gateway);
    }
    EXPECT_FALSE(ledger_.account(pop_.users[0])->is_gateway);
    EXPECT_FALSE(ledger_.account(pop_.hubs[0])->is_gateway);
}

TEST_F(PopulationTest, NamedGatewaysGetLabels) {
    EXPECT_EQ(pop_.label_of(pop_.gateways[0]), "SnapSwap");
    EXPECT_EQ(pop_.label_of(pop_.gateways[2]), "Bitstamp");
    // The two mystery rails carry the paper's abbreviated addresses.
    ASSERT_EQ(pop_.cck_rails.size(), 2u);
    EXPECT_EQ(pop_.label_of(pop_.cck_rails[0]), "rp2PaY...X1mEx7");
    EXPECT_EQ(pop_.label_of(pop_.cck_rails[1]), "r42Ccn...Xqm5M3");
    // Unlabeled accounts fall back to the abbreviated address.
    EXPECT_NE(pop_.label_of(pop_.users[0]).find("..."), std::string::npos);
}

TEST_F(PopulationTest, EveryCatalogCurrencyHasEnoughIssuers) {
    for (const CurrencyInfo& info : organic_currency_catalog()) {
        const auto it = pop_.issuers_by_currency.find(info.code);
        ASSERT_NE(it, pop_.issuers_by_currency.end()) << info.code.to_string();
        EXPECT_GE(it->second.size(), 12u) << info.code.to_string();
    }
}

TEST_F(PopulationTest, UsersHoldSpendableDeposits) {
    std::size_t with_deposits = 0;
    for (std::size_t i = 0; i < pop_.users.size(); ++i) {
        const UserProfile& profile = pop_.user_profiles[i];
        for (const auto& gw : profile.deposit_gateways) {
            const ledger::TrustLine* line =
                ledger_.trustline(pop_.users[i], gw, profile.home);
            ASSERT_NE(line, nullptr);
            const double spendable =
                line->capacity_from(pop_.users[i]).to_double();
            EXPECT_GT(spendable, 0.0);
        }
        if (!profile.deposit_gateways.empty()) ++with_deposits;
    }
    EXPECT_EQ(with_deposits, pop_.users.size());
}

TEST_F(PopulationTest, UsersFundedWithXrp) {
    for (const auto& user : pop_.users) {
        EXPECT_GT(ledger_.account(user)->balance.drops, 0);
    }
}

TEST_F(PopulationTest, MtlChainsHaveTheSpamShape) {
    ASSERT_EQ(pop_.mtl_chains.size(), 6u);
    for (const auto& chain : pop_.mtl_chains) {
        ASSERT_EQ(chain.size(), 10u);  // spammer + 8 + target
        EXPECT_EQ(chain.front(), pop_.mtl_spammer);
        EXPECT_EQ(chain.back(), pop_.mtl_target);
        // Every hop has enormous capacity.
        for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
            const ledger::TrustLine* line = ledger_.trustline(
                chain[i], chain[i + 1], cur("MTL"));
            ASSERT_NE(line, nullptr);
            EXPECT_GT(line->capacity_from(chain[i]).to_double(), 1e20);
        }
    }
}

TEST_F(PopulationTest, CckSpammersCanReachTargetsThroughBothRails) {
    for (const auto& rail : pop_.cck_rails) {
        for (const auto& spammer : pop_.cck_spammers) {
            const ledger::TrustLine* line =
                ledger_.trustline(spammer, rail, cur("CCK"));
            ASSERT_NE(line, nullptr);
            EXPECT_GT(line->capacity_from(spammer).to_double(), 0.0);
        }
        for (const auto& target : pop_.cck_targets) {
            const ledger::TrustLine* line =
                ledger_.trustline(target, rail, cur("CCK"));
            ASSERT_NE(line, nullptr);
            EXPECT_GT(line->capacity_from(rail).to_double(), 0.0);
        }
    }
}

TEST_F(PopulationTest, AccountZeroIsTheZeroAccount) {
    EXPECT_TRUE(pop_.account_zero.is_zero());
    ASSERT_NE(ledger_.account(pop_.account_zero), nullptr);
    EXPECT_EQ(pop_.label_of(pop_.account_zero), "ACCOUNT_ZERO");
}

TEST_F(PopulationTest, DeterministicForSameSeed) {
    ledger::LedgerState other_ledger;
    const util::RngStream stream(small_config().seed);
    const Population other = build_population(other_ledger, small_config(), stream);
    EXPECT_EQ(other.users, pop_.users);
    EXPECT_EQ(other.gateways, pop_.gateways);
    EXPECT_EQ(other_ledger.trustline_count(), ledger_.trustline_count());
}

TEST(CurrencyCatalogTest, WeightsDescendAndValuesPositive) {
    const auto& catalog = organic_currency_catalog();
    ASSERT_GT(catalog.size(), 40u);
    for (std::size_t i = 1; i < catalog.size(); ++i) {
        EXPECT_GE(catalog[i - 1].weight, catalog[i].weight);
    }
    for (const CurrencyInfo& info : catalog) {
        EXPECT_GT(info.usd_value, 0.0) << info.code.to_string();
    }
    // BTC leads the organic list (Fig 4: first well-known currency).
    EXPECT_EQ(catalog.front().code.to_string(), "BTC");
}

TEST(CurrencyCatalogTest, UsdValueFallsBackToOne) {
    EXPECT_DOUBLE_EQ(usd_value(cur("ZQX")), 1.0);
    EXPECT_DOUBLE_EQ(usd_value(cur("USD")), 1.0);
    EXPECT_GT(usd_value(cur("BTC")), 100.0);
    EXPECT_LT(usd_value(cur("XRP")), 1.0);
}

}  // namespace
}  // namespace xrpl::datagen
