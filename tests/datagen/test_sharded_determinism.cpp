// Golden-fingerprint suite for sharded history generation.
//
// generate_history shards the workload into config-sized slices that
// run as pool tasks, so the one thing that must NOT vary with
// XRPL_THREADS is the output. These tests prove it the strong way:
// the whole PaymentColumns store (rows AND interner tables, so
// first-seen id assignment is covered) is serialized and hashed, and
// the hash must be identical at widths 1, 2 and 8 — and equal to a
// pinned constant, so a silent re-roll of the distribution cannot
// slip through a same-width comparison.
//
// The pinned fingerprint changes ONLY when the generator's sampling
// intentionally changes; re-pin it in the same commit and record the
// re-roll in CHANGES.md.
#include <gtest/gtest.h>

#include <string>

#include "datagen/history.hpp"
#include "exec/thread_pool.hpp"
#include "ledger/payment_columns.hpp"

namespace xrpl::datagen {
namespace {

GeneratorConfig sharded_config() {
    GeneratorConfig config;
    config.seed = 20170605;
    config.num_users = 400;
    config.num_gateways = 12;
    config.num_market_makers = 20;
    config.num_merchants = 60;
    config.num_hubs = 6;
    config.target_payments = 6'000;
    config.payments_per_slice = 1'500;  // four slices
    return config;
}

/// The canonical store hash (ledger::columns_fingerprint) — rows AND
/// interner tables, so first-seen id assignment is covered.
std::string fingerprint(const ledger::PaymentColumns& columns) {
    return ledger::columns_fingerprint(columns);
}

// One generated history per pool width, shared across the tests below
// (generation dominates the suite's runtime).
class ShardedDeterminismTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        const GeneratorConfig config = sharded_config();
        {
            exec::ScopedParallelism width(1);
            serial_ = new GeneratedHistory(generate_history(config));
        }
        {
            exec::ScopedParallelism width(2);
            two_ = new GeneratedHistory(generate_history(config));
        }
        {
            exec::ScopedParallelism width(8);
            wide_ = new GeneratedHistory(generate_history(config));
        }
    }
    static void TearDownTestSuite() {
        delete serial_;
        delete two_;
        delete wide_;
        serial_ = two_ = wide_ = nullptr;
    }
    static GeneratedHistory* serial_;
    static GeneratedHistory* two_;
    static GeneratedHistory* wide_;
};

GeneratedHistory* ShardedDeterminismTest::serial_ = nullptr;
GeneratedHistory* ShardedDeterminismTest::two_ = nullptr;
GeneratedHistory* ShardedDeterminismTest::wide_ = nullptr;

TEST_F(ShardedDeterminismTest, PaymentBytesIdenticalAcrossThreadWidths) {
    const std::string one = fingerprint(serial_->payments);
    EXPECT_EQ(one, fingerprint(two_->payments));
    EXPECT_EQ(one, fingerprint(wide_->payments));
}

TEST_F(ShardedDeterminismTest, GoldenFingerprintIsPinned) {
    // Pinned against the width-1 run; the test above makes the width
    // irrelevant. Re-pin only on an intentional distribution change.
    EXPECT_EQ(fingerprint(serial_->payments),
              "4d926cb63c2c15263ab354e6cc54eeebf82f38d127f2ef0ecc69b58e10e5ee6c");
}

TEST_F(ShardedDeterminismTest, AggregatesIdenticalAcrossThreadWidths) {
    for (const GeneratedHistory* other : {two_, wide_}) {
        EXPECT_EQ(serial_->pages, other->pages);
        EXPECT_EQ(serial_->first_close.seconds, other->first_close.seconds);
        EXPECT_EQ(serial_->last_close.seconds, other->last_close.seconds);
        EXPECT_EQ(serial_->multi_hop_payments, other->multi_hop_payments);
        EXPECT_EQ(serial_->category_counts, other->category_counts);
        EXPECT_EQ(serial_->currency_counts, other->currency_counts);
        EXPECT_EQ(serial_->amounts_by_currency, other->amounts_by_currency);
        EXPECT_EQ(serial_->hop_histogram, other->hop_histogram);
        EXPECT_EQ(serial_->parallel_histogram, other->parallel_histogram);
        EXPECT_EQ(serial_->intermediary_counts, other->intermediary_counts);
        EXPECT_EQ(serial_->offer_placements, other->offer_placements);
        EXPECT_EQ(serial_->offers_placed_total, other->offers_placed_total);
    }
}

TEST_F(ShardedDeterminismTest, FinalLedgerIdenticalAcrossThreadWidths) {
    // The kept ledger is the LAST slice's clone; its balances must not
    // depend on which worker ran the slice. Spot-check through the
    // population's trust lines.
    for (const GeneratedHistory* other : {two_, wide_}) {
        for (std::size_t i = 0; i < serial_->population.users.size(); i += 37) {
            const auto& user = serial_->population.users[i];
            const auto serial_lines = serial_->ledger.lines_of(user);
            const auto other_lines = other->ledger.lines_of(user);
            ASSERT_EQ(serial_lines.size(), other_lines.size());
            for (std::size_t l = 0; l < serial_lines.size(); ++l) {
                EXPECT_EQ(serial_lines[l]->balance_for(user).to_double(),
                          other_lines[l]->balance_for(user).to_double());
            }
        }
    }
}

TEST(ShardedSlicingTest, SingleSliceConfigStillWidthIndependent) {
    GeneratorConfig config = sharded_config();
    config.target_payments = 2'000;
    config.payments_per_slice = 50'000;  // everything in slice 0
    std::string one;
    {
        exec::ScopedParallelism width(1);
        one = fingerprint(generate_history(config).payments);
    }
    exec::ScopedParallelism width(8);
    EXPECT_EQ(one, fingerprint(generate_history(config).payments));
}

}  // namespace
}  // namespace xrpl::datagen
