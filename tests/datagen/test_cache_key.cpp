// Dataset cache-key stability: the key must change when ANY
// GeneratorConfig field changes (else the cache serves the wrong
// dataset), must be bit-stable across re-canonicalization, and one
// golden key is pinned so accidental canonicalization changes fail
// loudly — the persistence-layer sibling of the pinned history
// fingerprint in test_sharded_determinism.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "datagen/config.hpp"
#include "datagen/dataset.hpp"
#include "util/ripple_time.hpp"

namespace xrpl::datagen {
namespace {

/// The sharded-determinism pinned config — the same one whose history
/// fingerprint 4d926cb6... is pinned, so the two goldens travel
/// together.
GeneratorConfig pinned_config() {
    GeneratorConfig config;
    config.seed = 20170605;
    config.num_users = 400;
    config.num_gateways = 12;
    config.num_market_makers = 20;
    config.num_merchants = 60;
    config.num_hubs = 6;
    config.target_payments = 6'000;
    config.payments_per_slice = 1'500;
    return config;
}

/// GeneratorConfig field count. If this fails you added a field:
/// extend canonical_config AND the mutation list below in the same
/// commit, or the cache will serve stale datasets for the new knob.
constexpr std::size_t kConfigFields = 23;

TEST(CacheKeyTest, CanonicalConfigCoversEveryField) {
    const std::string canonical = canonical_config(pinned_config());
    const std::size_t lines = static_cast<std::size_t>(
        std::count(canonical.begin(), canonical.end(), '\n'));
    EXPECT_EQ(lines, kConfigFields);
}

TEST(CacheKeyTest, CanonicalConfigIsSortedNameValueLines) {
    const std::string canonical = canonical_config(pinned_config());
    std::vector<std::string> names;
    std::size_t start = 0;
    while (start < canonical.size()) {
        const std::size_t eq = canonical.find('=', start);
        const std::size_t nl = canonical.find('\n', start);
        ASSERT_NE(eq, std::string::npos);
        ASSERT_NE(nl, std::string::npos);
        ASSERT_LT(eq, nl);
        names.push_back(canonical.substr(start, eq - start));
        start = nl + 1;
    }
    ASSERT_EQ(names.size(), kConfigFields);
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end())
        << "duplicate field name in canonical_config";
}

TEST(CacheKeyTest, KeyIsStableAcrossRecanonicalization) {
    const GeneratorConfig config = pinned_config();
    const std::string first = dataset_key(config);
    EXPECT_EQ(first.size(), 64u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(dataset_key(config), first);
    }
    // A copy is the same config.
    const GeneratorConfig copy = config;
    EXPECT_EQ(dataset_key(copy), first);
}

TEST(CacheKeyTest, GoldenKeyIsPinned) {
    // sha256(canonical_config(pinned) + "xcol_version=1\n"). Changing
    // canonicalization, field names, number formatting, or the XCOL
    // format version invalidates every cached artifact — this pin
    // makes that an explicit, reviewed event.
    EXPECT_EQ(
        dataset_key(pinned_config()),
        "fa38b6fe28ca505503f7afeb87cf85593715dab5526eba63a3260e026f8f0ca6");
}

TEST(CacheKeyTest, EveryFieldChangesTheKey) {
    // One mutation per GeneratorConfig field. The count is asserted
    // against kConfigFields so a new field cannot ship without a
    // mutation here (and therefore without canonical_config coverage,
    // per CanonicalConfigCoversEveryField).
    const std::vector<std::pair<const char*,
                                std::function<void(GeneratorConfig&)>>>
        mutations = {
            {"seed", [](GeneratorConfig& c) { c.seed += 1; }},
            {"num_users", [](GeneratorConfig& c) { c.num_users += 1; }},
            {"num_gateways", [](GeneratorConfig& c) { c.num_gateways += 1; }},
            {"num_market_makers",
             [](GeneratorConfig& c) { c.num_market_makers += 1; }},
            {"num_merchants",
             [](GeneratorConfig& c) { c.num_merchants += 1; }},
            {"num_hubs", [](GeneratorConfig& c) { c.num_hubs += 1; }},
            {"target_payments",
             [](GeneratorConfig& c) { c.target_payments += 1; }},
            {"payments_per_page",
             [](GeneratorConfig& c) { c.payments_per_page += 0.01; }},
            {"page_interval_seconds",
             [](GeneratorConfig& c) { c.page_interval_seconds += 0.5; }},
            {"start_time",
             [](GeneratorConfig& c) {
                 c.start_time = util::from_calendar(2014, 1, 1);
             }},
            {"payments_per_slice",
             [](GeneratorConfig& c) { c.payments_per_slice += 1; }},
            {"xrp_organic_fraction",
             [](GeneratorConfig& c) { c.xrp_organic_fraction += 0.001; }},
            {"ripple_spin_fraction",
             [](GeneratorConfig& c) { c.ripple_spin_fraction += 0.001; }},
            {"account_zero_fraction",
             [](GeneratorConfig& c) { c.account_zero_fraction += 0.001; }},
            {"mtl_spam_fraction",
             [](GeneratorConfig& c) { c.mtl_spam_fraction += 0.001; }},
            {"cck_spam_fraction",
             [](GeneratorConfig& c) { c.cck_spam_fraction += 0.001; }},
            {"iou_retail_fraction",
             [](GeneratorConfig& c) { c.iou_retail_fraction += 0.001; }},
            {"cross_currency_fraction",
             [](GeneratorConfig& c) { c.cross_currency_fraction += 0.001; }},
            {"burst_probability",
             [](GeneratorConfig& c) { c.burst_probability += 0.001; }},
            {"xrp_whale_fraction",
             [](GeneratorConfig& c) { c.xrp_whale_fraction += 0.001; }},
            {"live_offers_per_maker",
             [](GeneratorConfig& c) { c.live_offers_per_maker += 1; }},
            {"offers_per_page",
             [](GeneratorConfig& c) { c.offers_per_page += 0.1; }},
            {"deposit_scale",
             [](GeneratorConfig& c) { c.deposit_scale += 1.0; }},
        };
    ASSERT_EQ(mutations.size(), kConfigFields);

    const std::string base_key = dataset_key(pinned_config());
    std::vector<std::string> keys = {base_key};
    for (const auto& [name, mutate] : mutations) {
        GeneratorConfig config = pinned_config();
        mutate(config);
        const std::string key = dataset_key(config);
        EXPECT_NE(key, base_key) << "field '" << name
                                 << "' does not reach the cache key";
        keys.push_back(key);
    }
    // And the mutations are pairwise distinct — no two fields collide
    // into the same canonical line.
    std::sort(keys.begin(), keys.end());
    EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
}

TEST(CacheKeyTest, TinyNumericDifferencesAreDistinguished) {
    // Shortest-round-trip formatting must not merge adjacent doubles.
    GeneratorConfig a = pinned_config();
    GeneratorConfig b = pinned_config();
    b.payments_per_page =
        std::nextafter(a.payments_per_page, 2.0 * a.payments_per_page);
    EXPECT_NE(dataset_key(a), dataset_key(b));
}

}  // namespace
}  // namespace xrpl::datagen
