#include "datagen/spam.hpp"

#include <gtest/gtest.h>

namespace xrpl::datagen {
namespace {

Population tiny_population(ledger::LedgerState& state) {
    GeneratorConfig config;
    config.seed = 13;
    config.num_users = 100;
    config.num_gateways = 20;
    config.num_market_makers = 10;
    config.num_merchants = 30;
    config.num_hubs = 5;
    return build_population(state, config, util::RngStream(config.seed));
}

ledger::TxRecord base_record() {
    ledger::TxRecord r;
    r.sender = ledger::AccountID::from_seed("someone");
    r.destination = ledger::AccountID::from_seed("someone-else");
    r.currency = ledger::Currency::from_code("USD");
    r.amount = ledger::IouAmount::from_double(10.0);
    r.time = util::RippleTime{100};
    return r;
}

class SpamTest : public ::testing::Test {
protected:
    void SetUp() override { pop_ = tiny_population(state_); }
    ledger::LedgerState state_;
    Population pop_;
};

TEST_F(SpamTest, OrganicByDefault) {
    EXPECT_EQ(classify(base_record(), pop_), SpamKind::kOrganic);
}

TEST_F(SpamTest, AccountZeroEitherDirection) {
    ledger::TxRecord to_zero = base_record();
    to_zero.destination = pop_.account_zero;
    EXPECT_EQ(classify(to_zero, pop_), SpamKind::kAccountZeroPingPong);

    ledger::TxRecord from_zero = base_record();
    from_zero.sender = pop_.account_zero;
    EXPECT_EQ(classify(from_zero, pop_), SpamKind::kAccountZeroPingPong);
}

TEST_F(SpamTest, GamblingByDestination) {
    ledger::TxRecord bet = base_record();
    bet.destination = pop_.ripple_spin;
    bet.currency = ledger::Currency::xrp();
    EXPECT_EQ(classify(bet, pop_), SpamKind::kGambling);
}

TEST_F(SpamTest, MtlNeedsTheAbsurdAmounts) {
    ledger::TxRecord mtl = base_record();
    mtl.currency = cur("MTL");
    mtl.amount = ledger::IouAmount::from_double(1.1e9);
    EXPECT_EQ(classify(mtl, pop_), SpamKind::kMtlCampaign);

    // A small organic MTL payment is not part of the campaign.
    mtl.amount = ledger::IouAmount::from_double(12.0);
    EXPECT_EQ(classify(mtl, pop_), SpamKind::kOrganic);
}

TEST_F(SpamTest, CckAlwaysSuspicious) {
    ledger::TxRecord cck = base_record();
    cck.currency = cur("CCK");
    cck.amount = ledger::IouAmount::from_double(0.02);
    EXPECT_EQ(classify(cck, pop_), SpamKind::kCckCampaign);
}

TEST_F(SpamTest, BreakdownSumsToTotal) {
    std::vector<ledger::TxRecord> records;
    for (int i = 0; i < 10; ++i) records.push_back(base_record());
    ledger::TxRecord bet = base_record();
    bet.destination = pop_.ripple_spin;
    records.push_back(bet);
    ledger::TxRecord mtl = base_record();
    mtl.currency = cur("MTL");
    mtl.amount = ledger::IouAmount::from_double(2e9);
    records.push_back(mtl);

    const SpamBreakdown breakdown = spam_breakdown(records, pop_);
    EXPECT_EQ(breakdown.total(), records.size());
    EXPECT_EQ(breakdown.organic, 10u);
    EXPECT_EQ(breakdown.gambling, 1u);
    EXPECT_EQ(breakdown.mtl, 1u);
    EXPECT_EQ(breakdown.cck, 0u);
}

TEST_F(SpamTest, KindNamesAreStable) {
    EXPECT_STREQ(spam_kind_name(SpamKind::kOrganic), "organic");
    EXPECT_STREQ(spam_kind_name(SpamKind::kMtlCampaign), "mtl-campaign");
    EXPECT_STREQ(spam_kind_name(SpamKind::kCckCampaign), "cck-campaign");
    EXPECT_STREQ(spam_kind_name(SpamKind::kAccountZeroPingPong), "account-zero");
    EXPECT_STREQ(spam_kind_name(SpamKind::kGambling), "gambling");
}

}  // namespace
}  // namespace xrpl::datagen
