#include "datagen/workload.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <unordered_set>

#include "datagen/history.hpp"

namespace xrpl::datagen {
namespace {

GeneratorConfig workload_config() {
    GeneratorConfig config;
    config.seed = 31;
    config.num_users = 600;
    config.num_gateways = 25;
    config.num_market_makers = 40;
    config.num_merchants = 100;
    config.num_hubs = 12;
    return config;
}

class WorkloadTest : public ::testing::Test {
protected:
    void SetUp() override {
        const util::RngStream root(workload_config().seed);
        population_ =
            build_population(ledger_, workload_config(), root.derive("population"));
        engine_ = std::make_unique<paths::PaymentEngine>(ledger_);
        generator_ = std::make_unique<WorkloadGenerator>(
            workload_config(), population_, *engine_, root.derive("workload"));
    }

    std::vector<WorkloadOutcome> run_pages(std::size_t pages) {
        std::vector<WorkloadOutcome> outcomes;
        util::RippleTime clock = workload_config().start_time;
        for (std::size_t i = 0; i < pages; ++i) {
            clock.seconds += 5;
            generator_->emit_page(
                clock, [&](const WorkloadOutcome& o) { outcomes.push_back(o); });
        }
        return outcomes;
    }

    ledger::LedgerState ledger_;
    Population population_;
    std::unique_ptr<paths::PaymentEngine> engine_;
    std::unique_ptr<WorkloadGenerator> generator_;
};

TEST_F(WorkloadTest, PagesProduceRoughlyTheConfiguredRate) {
    const auto outcomes = run_pages(20'000);
    const double per_page = static_cast<double>(outcomes.size()) / 20'000.0;
    // payments_per_page = 1.44 organic, plus hub refills on top.
    EXPECT_GT(per_page, 1.1);
    EXPECT_LT(per_page, 1.9);
}

TEST_F(WorkloadTest, AllCategoriesAppear) {
    const auto outcomes = run_pages(20'000);
    std::array<std::uint64_t, 8> seen{};
    for (const WorkloadOutcome& o : outcomes) {
        ++seen[static_cast<std::size_t>(o.category)];
    }
    for (std::size_t c = 0; c < seen.size(); ++c) {
        EXPECT_GT(seen[c], 0u)
            << category_name(static_cast<PaymentCategory>(c));
    }
}

TEST_F(WorkloadTest, RecordsCarryPageCloseTimes) {
    const auto outcomes = run_pages(500);
    for (const WorkloadOutcome& o : outcomes) {
        // Pages tick in 5s steps from the configured start.
        const std::int64_t offset =
            o.record.time.seconds - workload_config().start_time.seconds;
        EXPECT_GE(offset, 0);
        EXPECT_EQ(offset % 5, 0);
    }
}

TEST_F(WorkloadTest, MtlSpamUsesTheSixChains) {
    const auto outcomes = run_pages(20'000);
    bool saw_standard = false;
    for (const WorkloadOutcome& o : outcomes) {
        if (o.category != PaymentCategory::kMtlSpam) continue;
        if (o.result.intermediate_hops == 44) continue;  // the one-off outlier
        saw_standard = true;
        EXPECT_EQ(o.result.parallel_paths, 6u);
        EXPECT_EQ(o.result.intermediate_hops, 8u);
        EXPECT_EQ(o.record.sender, population_.mtl_spammer);
        EXPECT_EQ(o.record.destination, population_.mtl_target);
    }
    EXPECT_TRUE(saw_standard);
}

TEST_F(WorkloadTest, TheFortyFourHopPaymentHappensExactlyOnce) {
    const auto outcomes = run_pages(20'000);
    std::size_t outliers = 0;
    for (const WorkloadOutcome& o : outcomes) {
        if (o.result.intermediate_hops == 44) {
            ++outliers;
            EXPECT_EQ(o.result.parallel_paths, 1u);
            EXPECT_EQ(o.category, PaymentCategory::kMtlSpam);
        }
    }
    EXPECT_EQ(outliers, 1u);
}

TEST_F(WorkloadTest, CckSpamRailsThroughTheMysteryAccounts) {
    const auto outcomes = run_pages(20'000);
    std::unordered_set<ledger::AccountID> rails(
        population_.cck_rails.begin(), population_.cck_rails.end());
    std::size_t cck = 0;
    for (const WorkloadOutcome& o : outcomes) {
        if (o.category != PaymentCategory::kCckSpam) continue;
        ++cck;
        ASSERT_EQ(o.result.intermediaries.size(), 1u);
        EXPECT_TRUE(rails.contains(o.result.intermediaries[0]));
        EXPECT_EQ(o.result.intermediate_hops, 1u);
    }
    EXPECT_GT(cck, 100u);
}

TEST_F(WorkloadTest, OfferChurnRespectsTheLiveCap) {
    run_pages(20'000);
    // Count live offers per maker in the ledger.
    std::unordered_map<ledger::AccountID, std::size_t> live;
    for (const auto& [key, offers] : ledger_.books()) {
        for (const auto& offer : offers) ++live[offer.owner];
    }
    for (const auto& [maker, count] : live) {
        EXPECT_LE(count, workload_config().live_offers_per_maker + 1);
    }
    // Placements counted beyond the live cap.
    EXPECT_GT(generator_->offers_placed_total(), ledger_.offer_count());
}

TEST_F(WorkloadTest, XrpWhalePaymentsExist) {
    const auto outcomes = run_pages(20'000);
    std::size_t whales = 0;
    for (const WorkloadOutcome& o : outcomes) {
        if (o.category == PaymentCategory::kXrpOrganic &&
            o.record.amount.to_double() > 1e7) {
            ++whales;
        }
    }
    EXPECT_GT(whales, 10u);
}

TEST_F(WorkloadTest, BurstsShareDestinationAndPage) {
    const auto outcomes = run_pages(20'000);
    // Look for >= 2 retail payments to the same merchant at the same
    // close time from different senders: the burst signature.
    std::map<std::pair<std::int64_t, ledger::AccountID>,
             std::unordered_set<ledger::AccountID>>
        cells;
    for (const WorkloadOutcome& o : outcomes) {
        if (o.category != PaymentCategory::kIouRetail) continue;
        cells[{o.record.time.seconds, o.record.destination}].insert(
            o.record.sender);
    }
    std::size_t bursts = 0;
    for (const auto& [cell, senders] : cells) {
        if (senders.size() >= 2) ++bursts;
    }
    EXPECT_GT(bursts, 50u);
}

TEST_F(WorkloadTest, FeesAccumulate) {
    run_pages(5'000);
    EXPECT_GT(ledger_.burned_fees().drops, 0);
}

}  // namespace
}  // namespace xrpl::datagen
