// ChunkedView: the partition must cover the view exactly, with bounds
// that depend only on (size, chunk_rows) — never on the thread count.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exec/chunked_view.hpp"
#include "ledger/payment_columns.hpp"

namespace xrpl::exec {
namespace {

ledger::PaymentColumns make_columns(std::size_t n) {
    ledger::PaymentColumns columns;
    columns.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        ledger::TxRecord r;
        r.sender = ledger::AccountID::from_seed("s" + std::to_string(i % 7));
        r.destination = ledger::AccountID::from_seed("d" + std::to_string(i % 5));
        r.currency = ledger::Currency::from_code(i % 2 == 0 ? "USD" : "BTC");
        r.amount = ledger::IouAmount::from_double(1.0 + static_cast<double>(i));
        r.time = util::RippleTime{static_cast<std::int64_t>(i)};
        columns.push_back(r);
    }
    return columns;
}

TEST(ChunkedViewTest, PartitionsExactlyWithRemainder) {
    const ledger::PaymentColumns columns = make_columns(25);
    const ChunkedView chunks(columns.view(), 10);
    EXPECT_EQ(chunks.size(), 25u);
    EXPECT_EQ(chunks.chunk_rows(), 10u);
    ASSERT_EQ(chunks.chunk_count(), 3u);

    std::size_t covered = 0;
    for (std::size_t c = 0; c < chunks.chunk_count(); ++c) {
        const ChunkedView::Bounds b = chunks.bounds(c);
        EXPECT_EQ(b.begin, covered) << "chunk " << c << " must start where "
                                    << "its predecessor ended";
        EXPECT_LT(b.begin, b.end);
        covered = b.end;
    }
    EXPECT_EQ(covered, 25u);
    EXPECT_EQ(chunks.bounds(2).end - chunks.bounds(2).begin, 5u);
}

TEST(ChunkedViewTest, ExactMultipleHasNoRaggedTail) {
    const ledger::PaymentColumns columns = make_columns(30);
    const ChunkedView chunks(columns.view(), 10);
    ASSERT_EQ(chunks.chunk_count(), 3u);
    for (std::size_t c = 0; c < 3; ++c) {
        const ChunkedView::Bounds b = chunks.bounds(c);
        EXPECT_EQ(b.end - b.begin, 10u);
    }
}

TEST(ChunkedViewTest, EmptyViewHasNoChunks) {
    const ledger::PaymentColumns columns = make_columns(0);
    const ChunkedView chunks(columns.view());
    EXPECT_EQ(chunks.chunk_count(), 0u);
}

TEST(ChunkedViewTest, ChunkWindowsAliasTheParentRows) {
    const ledger::PaymentColumns columns = make_columns(25);
    const ChunkedView chunks(columns.view(), 10);
    const ledger::PaymentView tail = chunks.chunk(2);
    ASSERT_EQ(tail.size(), 5u);
    EXPECT_EQ(tail.offset(), 20u);
    EXPECT_EQ(tail[0].time.seconds, 20);
}

TEST(ChunkedViewTest, SubviewOffsetsStayViewRelative) {
    // Chunking a suffix window: bounds are relative to the window, and
    // the chunk views land on the right absolute rows.
    const ledger::PaymentColumns columns = make_columns(30);
    const ledger::PaymentView suffix = columns.view().subview(12, 18);
    const ChunkedView chunks(suffix, 10);
    ASSERT_EQ(chunks.chunk_count(), 2u);
    EXPECT_EQ(chunks.bounds(0).begin, 0u);
    EXPECT_EQ(chunks.chunk(0).offset(), 12u);
    EXPECT_EQ(chunks.chunk(1)[0].time.seconds, 22);
}

}  // namespace
}  // namespace xrpl::exec
