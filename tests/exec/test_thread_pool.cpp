// ThreadPool semantics: exactly-once execution, caller participation,
// nesting, exception propagation, and the XRPL_THREADS knob. The
// stress cases exist for the tsan preset — tools/tier2.sh runs this
// suite under ThreadSanitizer, where any bookkeeping race in the pool
// would surface.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/thread_pool.hpp"

namespace xrpl::exec {
namespace {

TEST(ThreadPoolTest, ExecutesEachIndexExactlyOnce) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.parallelism(), 4u);

    constexpr std::size_t kCount = 10'000;
    std::vector<std::atomic<std::uint32_t>> hits(kCount);
    pool.run(kCount, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < kCount; ++i) {
        ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
    }
}

TEST(ThreadPoolTest, ParallelismOneSpawnsNoWorkers) {
    // A width-1 pool executes everything inline on the calling thread
    // — XRPL_THREADS=1 must be genuinely serial.
    ThreadPool pool(1);
    const auto caller = std::this_thread::get_id();
    std::size_t executed = 0;
    pool.run(100, [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        ++executed;  // safe: single-threaded by construction
    });
    EXPECT_EQ(executed, 100u);
}

TEST(ThreadPoolTest, ZeroCountIsANoOp) {
    ThreadPool pool(2);
    pool.run(0, [&](std::size_t) { FAIL() << "task ran for count == 0"; });
}

TEST(ThreadPoolTest, NestedRunDoesNotDeadlock) {
    // A task fanning out again drains its own inner batch, so even a
    // fully-occupied pool makes progress.
    ThreadPool pool(2);
    std::atomic<std::uint64_t> total{0};
    pool.run(8, [&](std::size_t) {
        pool.run(8, [&](std::size_t) { ++total; });
    });
    EXPECT_EQ(total.load(), 64u);
}

TEST(ThreadPoolTest, FirstExceptionPropagatesAndAllTasksRun) {
    ThreadPool pool(4);
    std::atomic<std::uint32_t> executed{0};
    EXPECT_THROW(
        pool.run(64,
                 [&](std::size_t i) {
                     ++executed;
                     if (i == 13) throw std::runtime_error("task 13 failed");
                 }),
        std::runtime_error);
    // A failure poisons the batch's result, not its schedule.
    EXPECT_EQ(executed.load(), 64u);
}

TEST(ThreadPoolTest, StressManySmallBatches) {
    // tsan fodder: rapid-fire batches keep workers racing on the
    // claim/done bookkeeping.
    ThreadPool pool(8);
    for (std::size_t round = 0; round < 200; ++round) {
        std::vector<std::uint64_t> out(17, 0);
        pool.run(out.size(), [&](std::size_t i) { out[i] = i * i; });
        for (std::size_t i = 0; i < out.size(); ++i) {
            ASSERT_EQ(out[i], i * i);
        }
    }
}

TEST(ThreadPoolTest, ScopedParallelismOverridesSharedPool) {
    {
        ScopedParallelism narrow(1);
        EXPECT_EQ(ThreadPool::shared().parallelism(), 1u);
        {
            ScopedParallelism wide(8);
            EXPECT_EQ(ThreadPool::shared().parallelism(), 8u);
        }
        EXPECT_EQ(ThreadPool::shared().parallelism(), 1u);
    }
}

TEST(ThreadPoolTest, ConfiguredParallelismParsesXrplThreads) {
    ::setenv("XRPL_THREADS", "3", 1);
    EXPECT_EQ(ThreadPool::configured_parallelism(), 3u);

    // Malformed and zero values fall back to the hardware default.
    const std::size_t hardware = []() {
        ::unsetenv("XRPL_THREADS");
        return ThreadPool::configured_parallelism();
    }();
    EXPECT_GE(hardware, 1u);

    ::setenv("XRPL_THREADS", "0", 1);
    EXPECT_EQ(ThreadPool::configured_parallelism(), hardware);
    ::setenv("XRPL_THREADS", "4cores", 1);
    EXPECT_EQ(ThreadPool::configured_parallelism(), hardware);
    ::setenv("XRPL_THREADS", "-2", 1);
    EXPECT_EQ(ThreadPool::configured_parallelism(), hardware);
    ::unsetenv("XRPL_THREADS");
}

}  // namespace
}  // namespace xrpl::exec
