// parallel_for / map_reduce: full index coverage, disjoint writes,
// and the ordered-merge contract (partials fold strictly in chunk
// order — the property every deterministic scan in the repo leans on).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "exec/parallel.hpp"
#include "exec/thread_pool.hpp"

namespace xrpl::exec {
namespace {

TEST(ParallelTest, ChunkCountForCoversEverything) {
    EXPECT_EQ(chunk_count_for(0, 8), 0u);
    EXPECT_EQ(chunk_count_for(1, 8), 1u);
    EXPECT_EQ(chunk_count_for(8, 8), 1u);
    EXPECT_EQ(chunk_count_for(9, 8), 2u);
    EXPECT_EQ(chunk_count_for(5, 0), 0u);
}

TEST(ParallelTest, ParallelForWritesEveryIndexOnce) {
    ScopedParallelism pool(4);
    constexpr std::size_t kCount = 5000;
    std::vector<std::uint32_t> hits(kCount, 0);
    parallel_for(kCount, 64, [&](std::size_t begin, std::size_t end) {
        EXPECT_LE(end - begin, 64u);
        for (std::size_t i = begin; i < end; ++i) ++hits[i];
    });
    for (std::size_t i = 0; i < kCount; ++i) {
        ASSERT_EQ(hits[i], 1u) << "index " << i;
    }
}

TEST(ParallelTest, MapReduceSumsAllChunks) {
    ScopedParallelism pool(4);
    constexpr std::size_t kCount = 10'000;
    const std::size_t chunks = chunk_count_for(kCount, 128);
    const std::uint64_t total = map_reduce<std::uint64_t>(
        chunks,
        [&](std::size_t c) {
            const std::size_t begin = c * 128;
            const std::size_t end = std::min(begin + 128, kCount);
            std::uint64_t sum = 0;
            for (std::size_t i = begin; i < end; ++i) sum += i;
            return sum;
        },
        [](std::uint64_t& acc, std::uint64_t&& part) { acc += part; });
    EXPECT_EQ(total, kCount * (kCount - 1) / 2);
}

TEST(ParallelTest, MapReduceMergesInChunkOrder) {
    // The merge sequence must be 0, 1, ..., k-1 regardless of which
    // worker finished first — concatenation makes any reordering
    // visible.
    ScopedParallelism pool(8);
    constexpr std::size_t kChunks = 64;
    const std::vector<std::size_t> order = map_reduce<std::vector<std::size_t>>(
        kChunks,
        [](std::size_t c) { return std::vector<std::size_t>{c}; },
        [](std::vector<std::size_t>& acc, std::vector<std::size_t>&& part) {
            acc.insert(acc.end(), part.begin(), part.end());
        });
    std::vector<std::size_t> expected(kChunks);
    std::iota(expected.begin(), expected.end(), 0u);
    EXPECT_EQ(order, expected);
}

TEST(ParallelTest, MapReduceZeroChunksReturnsInit) {
    const int result = map_reduce<int>(
        0, [](std::size_t) { return 1; }, [](int& acc, int&& p) { acc += p; },
        42);
    EXPECT_EQ(result, 42);
}

}  // namespace
}  // namespace xrpl::exec
