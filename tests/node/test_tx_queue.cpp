#include "node/tx_queue.hpp"

#include <gtest/gtest.h>

#include <string>

namespace xrpl::node {
namespace {

using ledger::AccountID;
using ledger::Amount;
using ledger::Currency;
using ledger::Transaction;
using ledger::XrpAmount;

Transaction payment(const std::string& sender, std::uint32_t sequence,
                    double amount = 10.0) {
    Transaction tx;
    tx.type = ledger::TxType::kPayment;
    tx.sender = AccountID::from_seed(sender);
    tx.sequence = sequence;
    tx.destination = AccountID::from_seed("dest");
    tx.amount = Amount::xrp(amount);
    tx.source_currency = Currency::xrp();
    return tx;
}

TEST(TxQueueTest, SubmitAndDrain) {
    TransactionQueue queue;
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.submit(payment("a", 1), XrpAmount{10}),
              TransactionQueue::SubmitResult::kQueued);
    EXPECT_EQ(queue.size(), 1u);
    const auto batch = queue.next_batch(10);
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_TRUE(queue.empty());
}

TEST(TxQueueTest, DuplicateIdsRejected) {
    TransactionQueue queue;
    const Transaction tx = payment("a", 1);
    EXPECT_EQ(queue.submit(tx, XrpAmount{10}),
              TransactionQueue::SubmitResult::kQueued);
    EXPECT_EQ(queue.submit(tx, XrpAmount{50}),
              TransactionQueue::SubmitResult::kDuplicate);
    EXPECT_EQ(queue.size(), 1u);
    // After popping, the same transaction may be submitted again.
    (void)queue.next_batch(1);
    EXPECT_EQ(queue.submit(tx, XrpAmount{10}),
              TransactionQueue::SubmitResult::kQueued);
}

TEST(TxQueueTest, CapacityEnforced) {
    TransactionQueue queue(2);
    EXPECT_EQ(queue.submit(payment("a", 1), XrpAmount{1}),
              TransactionQueue::SubmitResult::kQueued);
    EXPECT_EQ(queue.submit(payment("a", 2), XrpAmount{1}),
              TransactionQueue::SubmitResult::kQueued);
    EXPECT_EQ(queue.submit(payment("a", 3), XrpAmount{1}),
              TransactionQueue::SubmitResult::kFull);
}

TEST(TxQueueTest, HigherFeesPopFirst) {
    TransactionQueue queue;
    (void)queue.submit(payment("cheap", 1), XrpAmount{10});
    (void)queue.submit(payment("rich", 1), XrpAmount{500});
    (void)queue.submit(payment("mid", 1), XrpAmount{100});
    const auto batch = queue.next_batch(3);
    ASSERT_EQ(batch.size(), 3u);
    EXPECT_EQ(batch[0].sender, AccountID::from_seed("rich"));
    EXPECT_EQ(batch[1].sender, AccountID::from_seed("mid"));
    EXPECT_EQ(batch[2].sender, AccountID::from_seed("cheap"));
}

TEST(TxQueueTest, PerAccountOrderBeatsFees) {
    // An account's second transaction cannot jump its first, even
    // with a much higher fee.
    TransactionQueue queue;
    (void)queue.submit(payment("a", 1), XrpAmount{10});
    (void)queue.submit(payment("a", 2), XrpAmount{9'999});
    const auto batch = queue.next_batch(2);
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch[0].sequence, 1u);
    EXPECT_EQ(batch[1].sequence, 2u);
}

TEST(TxQueueTest, EqualFeesAreFifo) {
    TransactionQueue queue;
    (void)queue.submit(payment("first", 1), XrpAmount{10});
    (void)queue.submit(payment("second", 1), XrpAmount{10});
    const auto batch = queue.next_batch(2);
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch[0].sender, AccountID::from_seed("first"));
}

TEST(TxQueueTest, BatchSizeRespected) {
    TransactionQueue queue;
    for (int i = 0; i < 10; ++i) {
        (void)queue.submit(payment("acc" + std::to_string(i), 1), XrpAmount{10});
    }
    EXPECT_EQ(queue.next_batch(4).size(), 4u);
    EXPECT_EQ(queue.size(), 6u);
}

TEST(TxQueueTest, RequeuePreservesOrderAndPriority) {
    TransactionQueue queue;
    (void)queue.submit(payment("a", 1), XrpAmount{10});
    (void)queue.submit(payment("a", 2), XrpAmount{10});
    (void)queue.submit(payment("b", 1), XrpAmount{10});
    auto batch = queue.next_batch(3);
    ASSERT_EQ(batch.size(), 3u);
    EXPECT_TRUE(queue.empty());

    // A fresh low-fee transaction arrives, then the batch is requeued
    // (failed round): the requeued ones come back out FIRST.
    (void)queue.submit(payment("latecomer", 1), XrpAmount{5});
    queue.requeue(batch);
    EXPECT_EQ(queue.size(), 4u);
    const auto retry = queue.next_batch(4);
    ASSERT_EQ(retry.size(), 4u);
    EXPECT_EQ(retry.back().sender, AccountID::from_seed("latecomer"));
    // a's sequence order survived the round trip.
    std::uint32_t last_a = 0;
    for (const auto& tx : retry) {
        if (tx.sender == AccountID::from_seed("a")) {
            EXPECT_GT(tx.sequence, last_a);
            last_a = tx.sequence;
        }
    }
}

}  // namespace
}  // namespace xrpl::node
