#include "node/node.hpp"

#include <gtest/gtest.h>

#include <string>

namespace xrpl::node {
namespace {

using consensus::ValidatorBehavior;
using consensus::ValidatorSpec;
using ledger::AccountID;
using ledger::Amount;
using ledger::Currency;
using ledger::Transaction;
using ledger::XrpAmount;

std::vector<ValidatorSpec> healthy_unl() {
    std::vector<ValidatorSpec> validators;
    for (int i = 1; i <= 5; ++i) {
        ValidatorSpec v;
        v.label = "R" + std::to_string(i);
        v.behavior = ValidatorBehavior::kCore;
        v.availability = 1.0;
        v.on_unl = true;
        validators.push_back(v);
    }
    return validators;
}

NodeConfig default_config() {
    NodeConfig config;
    config.consensus.seed = 5;
    config.consensus.start_time = util::from_calendar(2015, 1, 1);
    return config;
}

Transaction xrp_payment(const std::string& from, const std::string& to,
                        double amount, std::uint32_t sequence = 1) {
    Transaction tx;
    tx.type = ledger::TxType::kPayment;
    tx.sender = AccountID::from_seed(from);
    tx.sequence = sequence;
    tx.destination = AccountID::from_seed(to);
    tx.amount = Amount::xrp(amount);
    tx.source_currency = Currency::xrp();
    return tx;
}

class NodeTest : public ::testing::Test {
protected:
    void SetUp() override {
        state_.create_account(AccountID::from_seed("alice"),
                              XrpAmount::from_xrp(1'000));
        state_.create_account(AccountID::from_seed("bob"),
                              XrpAmount::from_xrp(1'000));
    }
    ledger::LedgerState state_;
};

TEST_F(NodeTest, TransactionFlowsIntoASealedPage) {
    Node node(state_, healthy_unl(), default_config());
    const Transaction tx = xrp_payment("alice", "bob", 100.0);
    EXPECT_EQ(node.submit(tx), TransactionQueue::SubmitResult::kQueued);

    const RoundReport report = node.run_round();
    EXPECT_TRUE(report.outcome.main_closed);
    ASSERT_EQ(report.applied.size(), 1u);
    EXPECT_TRUE(report.applied[0].success);
    EXPECT_EQ(report.applied[0].id, tx.id());

    // The page carries the transaction id and the chain verifies.
    ASSERT_EQ(node.chain().size(), 1u);
    ASSERT_EQ(node.chain().last().tx_ids.size(), 1u);
    EXPECT_EQ(node.chain().last().tx_ids[0], tx.id());
    EXPECT_EQ(node.chain().verify_chain(), 1u);

    // Balances moved, fee burned.
    EXPECT_EQ(state_.account(AccountID::from_seed("bob"))->balance.drops,
              1'100'000'000);
    EXPECT_EQ(state_.burned_fees().drops, 10);
}

TEST_F(NodeTest, FinalityIsInclusionNotSuccess) {
    // A payment alice cannot afford is still SEALED in the page (like
    // a tec result), it just does not move funds.
    Node node(state_, healthy_unl(), default_config());
    const Transaction tx = xrp_payment("alice", "bob", 5'000.0);
    node.submit(tx);
    const RoundReport report = node.run_round();
    EXPECT_TRUE(report.outcome.main_closed);
    ASSERT_EQ(report.applied.size(), 1u);
    EXPECT_FALSE(report.applied[0].success);
    EXPECT_EQ(node.chain().last().tx_ids.size(), 1u);
    EXPECT_EQ(state_.account(AccountID::from_seed("bob"))->balance.drops,
              1'000'000'000);
}

TEST_F(NodeTest, EmptyRoundsSealEmptyPages) {
    Node node(state_, healthy_unl(), default_config());
    const RoundReport report = node.run_round();
    EXPECT_TRUE(report.outcome.main_closed);
    EXPECT_TRUE(report.applied.empty());
    EXPECT_TRUE(node.chain().last().tx_ids.empty());
}

TEST_F(NodeTest, FailedQuorumRetriesTheBatch) {
    // A UNL that can never reach 80%: every candidate set is retried.
    std::vector<ValidatorSpec> weak = healthy_unl();
    for (std::size_t i = 1; i < weak.size(); ++i) weak[i].availability = 0.0;

    Node node(state_, weak, default_config());
    node.submit(xrp_payment("alice", "bob", 10.0));
    const RoundReport report = node.run_round();
    EXPECT_FALSE(report.outcome.main_closed);
    EXPECT_EQ(report.retried, 1u);
    EXPECT_EQ(node.queue().size(), 1u);
    // Nothing applied, nothing sealed.
    EXPECT_TRUE(node.chain().empty());
    EXPECT_EQ(state_.account(AccountID::from_seed("bob"))->balance.drops,
              1'000'000'000);
}

TEST_F(NodeTest, BatchesRespectPageCap) {
    NodeConfig config = default_config();
    config.max_txs_per_page = 3;
    Node node(state_, healthy_unl(), config);
    for (std::uint32_t i = 1; i <= 7; ++i) {
        node.submit(xrp_payment("alice", "bob", 1.0, i));
    }
    const RoundReport first = node.run_round();
    EXPECT_EQ(first.applied.size(), 3u);
    EXPECT_EQ(node.queue().size(), 4u);

    const auto reports = node.run_until_idle(10);
    EXPECT_TRUE(node.queue().empty());
    EXPECT_EQ(node.chain().verify_chain(), node.chain().size());
    // All 7 transactions sealed across the pages.
    std::size_t sealed = 0;
    for (const auto& page : node.chain().pages()) sealed += page.tx_ids.size();
    EXPECT_EQ(sealed, 7u);
    (void)reports;
}

TEST_F(NodeTest, StreamCarriesTheRounds) {
    Node node(state_, healthy_unl(), default_config());
    std::size_t pages_seen = 0;
    node.stream().subscribe_pages([&](const consensus::PageClosed& page) {
        if (page.chain == consensus::ChainTag::kMain) ++pages_seen;
    });
    node.submit(xrp_payment("alice", "bob", 10.0));
    node.run_round();
    node.run_round();
    EXPECT_EQ(pages_seen, 2u);
    EXPECT_EQ(node.rounds_run(), 2u);
}

TEST_F(NodeTest, IouPaymentsWorkThroughTheNode) {
    // Gateway + trust lines, then an IOU payment via the node.
    const AccountID gateway = AccountID::from_seed("gw");
    state_.create_account(gateway, XrpAmount::from_xrp(10'000), true);
    ledger::TrustLine& line = state_.set_trust(
        AccountID::from_seed("alice"), gateway, Currency::from_code("USD"),
        ledger::IouAmount::from_double(1'000));
    ASSERT_TRUE(line.transfer_from(gateway, ledger::IouAmount::from_double(200)));
    state_.set_trust(AccountID::from_seed("bob"), gateway,
                     Currency::from_code("USD"),
                     ledger::IouAmount::from_double(1'000));

    Node node(state_, healthy_unl(), default_config());
    Transaction tx;
    tx.type = ledger::TxType::kPayment;
    tx.sender = AccountID::from_seed("alice");
    tx.destination = AccountID::from_seed("bob");
    tx.amount = Amount::iou(Currency::from_code("USD"), 50.0);
    tx.source_currency = Currency::from_code("USD");
    node.submit(tx);

    const RoundReport report = node.run_round();
    ASSERT_EQ(report.applied.size(), 1u);
    EXPECT_TRUE(report.applied[0].success);
    EXPECT_NEAR(state_
                    .trustline(AccountID::from_seed("bob"), gateway,
                               Currency::from_code("USD"))
                    ->balance_for(AccountID::from_seed("bob"))
                    .to_double(),
                50.0, 1e-9);
}

TEST_F(NodeTest, ExplicitPathsTransactionThroughTheNode) {
    // A payment carrying the ledger's Paths field seals and applies
    // along the specified route.
    const AccountID alice = AccountID::from_seed("alice");
    const AccountID bob = AccountID::from_seed("bob");
    const AccountID via = AccountID::from_seed("via");
    state_.create_account(via, XrpAmount::from_xrp(10), false, true);
    const Currency usd = Currency::from_code("USD");
    // alice -> via -> bob wiring with capacity.
    state_.set_trust(via, alice, usd, ledger::IouAmount::from_double(100));
    state_.set_trust(bob, via, usd, ledger::IouAmount::from_double(100));

    Node node(state_, healthy_unl(), default_config());
    Transaction tx;
    tx.type = ledger::TxType::kPayment;
    tx.sender = alice;
    tx.destination = bob;
    tx.amount = Amount::iou(usd, 25.0);
    tx.source_currency = usd;
    tx.paths = {{alice, via, bob}};
    node.submit(tx);

    const RoundReport report = node.run_round();
    ASSERT_EQ(report.applied.size(), 1u);
    EXPECT_TRUE(report.applied[0].success);
    EXPECT_EQ(report.applied[0].result.intermediate_hops, 1u);
    EXPECT_NEAR(
        state_.trustline(via, bob, usd)->balance_for(bob).to_double(), 25.0,
        1e-9);
}

}  // namespace
}  // namespace xrpl::node
