#include "core/deanonymizer.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace xrpl::core {
namespace {

using ledger::AccountID;
using ledger::Currency;
using ledger::IouAmount;
using ledger::TxRecord;

TxRecord record(const std::string& sender, const std::string& destination,
                const char* currency, double amount, std::int64_t t) {
    TxRecord r;
    r.sender = AccountID::from_seed(sender);
    r.destination = AccountID::from_seed(destination);
    r.currency = Currency::from_code(currency);
    r.amount = IouAmount::from_double(amount);
    r.time = util::RippleTime{t};
    return r;
}

TEST(DeanonymizerTest, AllUniqueWhenFeaturesDistinct) {
    const std::vector<TxRecord> records = {
        record("alice", "shop", "USD", 100.0, 10),
        record("bob", "shop", "USD", 200.0, 20),
        record("carol", "shop", "USD", 300.0, 30),
    };
    const Deanonymizer deanonymizer(records);
    const IgResult ig = deanonymizer.information_gain(full_resolution());
    EXPECT_EQ(ig.total_payments, 3u);
    EXPECT_EQ(ig.uniquely_identified, 3u);
    EXPECT_DOUBLE_EQ(ig.information_gain(), 1.0);
}

TEST(DeanonymizerTest, SameSenderCollisionsStillIdentify) {
    // Two identical payments from the SAME account: the fingerprint is
    // shared, but it still pins down the sender.
    const std::vector<TxRecord> records = {
        record("alice", "shop", "USD", 100.0, 10),
        record("alice", "shop", "USD", 100.0, 10),
    };
    const Deanonymizer deanonymizer(records);
    EXPECT_DOUBLE_EQ(
        deanonymizer.information_gain(full_resolution()).information_gain(), 1.0);
}

TEST(DeanonymizerTest, CrossSenderCollisionDestroysIdentification) {
    const std::vector<TxRecord> records = {
        record("alice", "shop", "USD", 100.0, 10),
        record("bob", "shop", "USD", 100.0, 10),  // same fingerprint
        record("carol", "cafe", "USD", 500.0, 99),
    };
    const Deanonymizer deanonymizer(records);
    const IgResult ig = deanonymizer.information_gain(full_resolution());
    EXPECT_EQ(ig.uniquely_identified, 1u);  // only carol's
    EXPECT_NEAR(ig.information_gain(), 1.0 / 3.0, 1e-12);
}

TEST(DeanonymizerTest, CoarseningReducesInformationGain) {
    // Many users paying the same shop round-number amounts in the same
    // hour: unique at seconds, colliding at hour granularity.
    std::vector<TxRecord> records;
    for (int i = 0; i < 20; ++i) {
        records.push_back(
            record("user" + std::to_string(i), "shop", "USD", 100.0, 100 + i));
    }
    const Deanonymizer deanonymizer(records);
    EXPECT_DOUBLE_EQ(
        deanonymizer.information_gain(full_resolution()).information_gain(), 1.0);
    ResolutionConfig coarse = full_resolution();
    coarse.time = util::TimeResolution::kHours;
    EXPECT_DOUBLE_EQ(deanonymizer.information_gain(coarse).information_gain(),
                     0.0);
}

TEST(DeanonymizerTest, EmptyHistory) {
    const std::vector<TxRecord> records;
    const Deanonymizer deanonymizer(records);
    const IgResult ig = deanonymizer.information_gain(full_resolution());
    EXPECT_EQ(ig.total_payments, 0u);
    EXPECT_DOUBLE_EQ(ig.information_gain(), 0.0);
}

TEST(DeanonymizerTest, AttackFindsTheLatteSender) {
    // The paper's bar scenario: Alice knows amount/time/currency/
    // destination of Bob's latte and recovers Bob's address.
    std::vector<TxRecord> records = {
        record("bob", "bar", "USD", 4.5, 1000),
        record("alice", "bar", "USD", 12.0, 50'000),
        record("carol", "grocer", "USD", 4.5, 90'000),
    };
    const Deanonymizer deanonymizer(records);

    TxRecord observation = record("UNKNOWN", "bar", "USD", 4.5, 1000);
    const auto candidates = deanonymizer.attack(observation, full_resolution());
    ASSERT_EQ(candidates.size(), 1u);
    EXPECT_EQ(candidates[0], AccountID::from_seed("bob"));
}

TEST(DeanonymizerTest, AttackReturnsAllCandidatesWhenAmbiguous) {
    std::vector<TxRecord> records = {
        record("bob", "bar", "USD", 4.5, 1000),
        record("mallory", "bar", "USD", 4.9, 1000),  // same rounded amount
    };
    const Deanonymizer deanonymizer(records);
    TxRecord observation = record("UNKNOWN", "bar", "USD", 4.5, 1000);
    const auto candidates = deanonymizer.attack(observation, full_resolution());
    EXPECT_EQ(candidates.size(), 2u);
}

TEST(DeanonymizerTest, AttackWithNoMatchReturnsEmpty) {
    std::vector<TxRecord> records = {record("bob", "bar", "USD", 4.5, 1000)};
    const Deanonymizer deanonymizer(records);
    TxRecord observation = record("UNKNOWN", "bar", "EUR", 4.5, 1000);
    EXPECT_TRUE(deanonymizer.attack(observation, full_resolution()).empty());
}

TEST(DeanonymizerTest, HistoryOfReturnsEntireFinancialLife) {
    std::vector<TxRecord> records = {
        record("bob", "bar", "USD", 4.5, 1000),
        record("bob", "rent", "USD", 900.0, 2000),
        record("alice", "bar", "USD", 3.0, 3000),
        record("bob", "grocer", "USD", 55.0, 4000),
    };
    const Deanonymizer deanonymizer(records);
    const auto history = deanonymizer.history_of(AccountID::from_seed("bob"));
    EXPECT_EQ(history.size(), 3u);
    for (const TxRecord& r : history) {
        EXPECT_EQ(r.sender, AccountID::from_seed("bob"));
    }
}

TEST(AttackIndexTest, MatchesDeanonymizerAttack) {
    std::vector<TxRecord> records;
    for (int i = 0; i < 100; ++i) {
        records.push_back(record("user" + std::to_string(i % 7),
                                 "shop" + std::to_string(i % 3), "USD",
                                 100.0 * (i % 5), i));
    }
    const Deanonymizer deanonymizer(records);
    const AttackIndex index(records, full_resolution());
    for (int i = 0; i < 100; i += 13) {
        const auto via_scan = deanonymizer.attack(records[static_cast<std::size_t>(i)],
                                                  full_resolution());
        const auto via_index =
            index.candidate_senders(records[static_cast<std::size_t>(i)]);
        EXPECT_EQ(via_scan, via_index);
    }
}

TEST(AttackIndexTest, MatchesAreRecordIndices) {
    std::vector<TxRecord> records = {
        record("bob", "bar", "USD", 4.5, 1000),
        record("alice", "bar", "USD", 999.0, 2000),
    };
    const AttackIndex index(records, full_resolution());
    const auto& matches = index.matches(records[0]);
    ASSERT_EQ(matches.size(), 1u);
    EXPECT_EQ(matches[0], 0u);
    EXPECT_GE(index.bucket_count(), 2u);
}

TEST(AttackIndexTest, ColumnarIndexMatchesRowIndex) {
    std::vector<TxRecord> records;
    for (int i = 0; i < 120; ++i) {
        records.push_back(record("user" + std::to_string(i % 9),
                                 "shop" + std::to_string(i % 4), "USD",
                                 50.0 * (i % 6), i / 2));
    }
    const ledger::PaymentColumns columns =
        ledger::PaymentColumns::from_records(records);

    const AttackIndex row_index(records, full_resolution());
    const AttackIndex col_index(columns, full_resolution());
    EXPECT_EQ(row_index.bucket_count(), col_index.bucket_count());
    for (std::size_t i = 0; i < records.size(); i += 7) {
        EXPECT_EQ(row_index.matches(records[i]), col_index.matches(records[i]));
        EXPECT_EQ(row_index.candidate_senders(records[i]),
                  col_index.candidate_senders(records[i]));
    }
}

TEST(AttackIndexTest, ViewIndexCoversOnlyThePrefix) {
    std::vector<TxRecord> records = {
        record("bob", "bar", "USD", 4.5, 1000),
        record("alice", "cafe", "EUR", 7.0, 2000),
    };
    const ledger::PaymentColumns columns =
        ledger::PaymentColumns::from_records(records);
    const AttackIndex index(columns.view().prefix(1), full_resolution());
    EXPECT_EQ(index.bucket_count(), 1u);
    EXPECT_FALSE(index.matches(records[0]).empty());
    EXPECT_TRUE(index.matches(records[1]).empty());
}

TEST(DeanonymizerTest, ColumnarConstructorsAgreeWithRows) {
    std::vector<TxRecord> records = {
        record("alice", "shop", "USD", 100.0, 10),
        record("bob", "shop", "USD", 100.0, 10),
        record("carol", "cafe", "USD", 500.0, 99),
    };
    const ledger::PaymentColumns columns =
        ledger::PaymentColumns::from_records(records);

    const Deanonymizer rows(records);
    const Deanonymizer cols(columns);
    const Deanonymizer window(columns.view().prefix(2));

    const IgResult row_ig = rows.information_gain(full_resolution());
    const IgResult col_ig = cols.information_gain(full_resolution());
    EXPECT_EQ(row_ig.total_payments, col_ig.total_payments);
    EXPECT_EQ(row_ig.uniquely_identified, col_ig.uniquely_identified);

    // The two-payment window holds only the colliding pair.
    const IgResult window_ig = window.information_gain(full_resolution());
    EXPECT_EQ(window_ig.total_payments, 2u);
    EXPECT_EQ(window_ig.uniquely_identified, 0u);

    EXPECT_EQ(cols.history_of(AccountID::from_seed("carol")).size(), 1u);
    EXPECT_EQ(cols.attack(records[2], full_resolution()),
              rows.attack(records[2], full_resolution()));
}

}  // namespace
}  // namespace xrpl::core
