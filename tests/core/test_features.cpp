#include "core/features.hpp"

#include <gtest/gtest.h>

namespace xrpl::core {
namespace {

TEST(ResolutionConfigTest, DefaultIsFullResolution) {
    const ResolutionConfig config;
    EXPECT_TRUE(config.amount.has_value());
    EXPECT_EQ(*config.amount, AmountResolution::kMax);
    EXPECT_TRUE(config.time.has_value());
    EXPECT_EQ(*config.time, util::TimeResolution::kSeconds);
    EXPECT_TRUE(config.use_currency);
    EXPECT_TRUE(config.use_destination);
    EXPECT_EQ(config.label(), full_resolution().label());
}

TEST(ResolutionConfigTest, LabelsUsePaperNotation) {
    ResolutionConfig config = full_resolution();
    EXPECT_EQ(config.label(), "<Am; Tsc; C; D>");

    config.amount = AmountResolution::kLow;
    config.time = util::TimeResolution::kDays;
    EXPECT_EQ(config.label(), "<Al; Tdy; C; D>");

    config.amount.reset();
    EXPECT_EQ(config.label(), "<-; Tdy; C; D>");

    config.time.reset();
    config.use_currency = false;
    config.use_destination = false;
    EXPECT_EQ(config.label(), "<-; -; -; ->");
}

TEST(ResolutionConfigTest, EveryAmountLevelLabelled) {
    ResolutionConfig config = full_resolution();
    config.amount = AmountResolution::kHigh;
    config.time = util::TimeResolution::kMinutes;
    EXPECT_EQ(config.label(), "<Ah; Tmn; C; D>");
    config.amount = AmountResolution::kAverage;
    config.time = util::TimeResolution::kHours;
    EXPECT_EQ(config.label(), "<Aa; Thr; C; D>");
}

}  // namespace
}  // namespace xrpl::core
