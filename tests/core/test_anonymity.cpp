#include "core/anonymity.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/deanonymizer.hpp"
#include "core/ig_study.hpp"
#include "util/rng.hpp"

namespace xrpl::core {
namespace {

using ledger::AccountID;
using ledger::Currency;
using ledger::IouAmount;
using ledger::TxRecord;

TxRecord record(const std::string& sender, const std::string& destination,
                double amount, std::int64_t t) {
    TxRecord r;
    r.sender = AccountID::from_seed(sender);
    r.destination = AccountID::from_seed(destination);
    r.currency = Currency::from_code("USD");
    r.amount = IouAmount::from_double(amount);
    r.time = util::RippleTime{t};
    return r;
}

TEST(AnonymityTest, SingletonBucketsAreSetSizeOne) {
    const std::vector<TxRecord> records = {
        record("a", "x", 100.0, 1),
        record("b", "y", 200.0, 2),
    };
    const AnonymityProfile profile =
        analyze_anonymity(records, full_resolution());
    EXPECT_EQ(profile.total_payments(), 2u);
    EXPECT_DOUBLE_EQ(profile.identifiable_within(1), 1.0);
    EXPECT_DOUBLE_EQ(profile.mean_set_size(), 1.0);
}

TEST(AnonymityTest, CollidingSendersGrowTheSet) {
    // Three senders share one fingerprint; one stands alone.
    const std::vector<TxRecord> records = {
        record("a", "shop", 100.0, 1),
        record("b", "shop", 100.0, 1),
        record("c", "shop", 100.0, 1),
        record("d", "other", 555.0, 9),
    };
    const AnonymityProfile profile =
        analyze_anonymity(records, full_resolution());
    EXPECT_EQ(profile.total_payments(), 4u);
    EXPECT_DOUBLE_EQ(profile.identifiable_within(1), 0.25);
    EXPECT_DOUBLE_EQ(profile.identifiable_within(3), 1.0);
    EXPECT_DOUBLE_EQ(profile.mean_set_size(), (3.0 * 3 + 1.0) / 4.0);
    EXPECT_EQ(profile.set_size_quantile(0.9), 3u);
}

TEST(AnonymityTest, RepeatSameSenderStaysSetSizeOne) {
    const std::vector<TxRecord> records = {
        record("a", "shop", 100.0, 1),
        record("a", "shop", 100.0, 1),
    };
    const AnonymityProfile profile =
        analyze_anonymity(records, full_resolution());
    EXPECT_DOUBLE_EQ(profile.identifiable_within(1), 1.0);
}

TEST(AnonymityTest, IdentifiableWithinOneEqualsInformationGain) {
    std::vector<TxRecord> records;
    util::Rng rng(9);
    for (int i = 0; i < 3'000; ++i) {
        records.push_back(record("s" + std::to_string(rng.uniform_u64(0, 80)),
                                 "d" + std::to_string(rng.uniform_u64(0, 10)),
                                 100.0 * static_cast<double>(rng.uniform_u64(1, 5)),
                                 static_cast<std::int64_t>(rng.uniform_u64(0, 500))));
    }
    const Deanonymizer deanonymizer(records);
    for (const ResolutionConfig& config : fig3_configurations()) {
        const AnonymityProfile profile = analyze_anonymity(records, config);
        const IgResult ig = deanonymizer.information_gain(config);
        EXPECT_NEAR(profile.identifiable_within(1), ig.information_gain(), 1e-12)
            << config.label();
    }
}

TEST(AnonymityTest, CoarseningGrowsAnonymitySets) {
    std::vector<TxRecord> records;
    util::Rng rng(10);
    for (int i = 0; i < 5'000; ++i) {
        records.push_back(record("s" + std::to_string(rng.uniform_u64(0, 300)),
                                 "d" + std::to_string(rng.uniform_u64(0, 20)),
                                 rng.lognormal(3.0, 2.0),
                                 static_cast<std::int64_t>(rng.uniform_u64(0, 50'000))));
    }
    const AnonymityProfile fine = analyze_anonymity(records, full_resolution());
    ResolutionConfig coarse;
    coarse.amount = AmountResolution::kLow;
    coarse.time = util::TimeResolution::kDays;
    const AnonymityProfile blurred = analyze_anonymity(records, coarse);
    EXPECT_GE(blurred.mean_set_size(), fine.mean_set_size());
    EXPECT_LE(blurred.identifiable_within(1), fine.identifiable_within(1));
    EXPECT_LE(blurred.identifiable_within(5), fine.identifiable_within(5) + 1e-12);
}

TEST(AnonymityTest, EmptyHistoryIsSafe) {
    const AnonymityProfile profile =
        analyze_anonymity(std::vector<TxRecord>{}, full_resolution());
    EXPECT_EQ(profile.total_payments(), 0u);
    EXPECT_DOUBLE_EQ(profile.identifiable_within(1), 0.0);
    EXPECT_DOUBLE_EQ(profile.mean_set_size(), 0.0);
    EXPECT_EQ(profile.set_size_quantile(0.5), 0u);
}

}  // namespace
}  // namespace xrpl::core
