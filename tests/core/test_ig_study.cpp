#include "core/ig_study.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/rng.hpp"

namespace xrpl::core {
namespace {

using ledger::AccountID;
using ledger::Currency;
using ledger::IouAmount;
using ledger::TxRecord;

TEST(IgStudyTest, TenConfigurationsInPaperOrder) {
    const auto configs = fig3_configurations();
    ASSERT_EQ(configs.size(), 10u);
    EXPECT_EQ(configs[0].label(), "<Am; Tsc; C; D>");
    EXPECT_EQ(configs[1].label(), "<Am; Tsc; -; D>");
    EXPECT_EQ(configs[2].label(), "<Am; Tsc; C; ->");
    EXPECT_EQ(configs[3].label(), "<-; Tsc; C; D>");
    EXPECT_EQ(configs[4].label(), "<Ah; Tmn; C; D>");
    EXPECT_EQ(configs[5].label(), "<Aa; Thr; C; D>");
    EXPECT_EQ(configs[6].label(), "<Al; Tdy; C; D>");
    EXPECT_EQ(configs[7].label(), "<Am; -; C; D>");
    EXPECT_EQ(configs[8].label(), "<Am; -; -; ->");
    EXPECT_EQ(configs[9].label(), "<Al; Tdy; -; ->");
}

TEST(IgStudyTest, PaperReferencesMatchQuotedValues) {
    EXPECT_DOUBLE_EQ(*fig3_paper_reference(0).value, 0.9983);
    EXPECT_TRUE(fig3_paper_reference(0).exact);
    EXPECT_DOUBLE_EQ(*fig3_paper_reference(7).value, 0.4884);
    EXPECT_DOUBLE_EQ(*fig3_paper_reference(9).value, 0.0128);
    EXPECT_FALSE(fig3_paper_reference(4).exact);  // read off the figure
    EXPECT_FALSE(fig3_paper_reference(99).value.has_value());
}

/// A small synthetic history with the qualitative structure of the
/// real one: ledger closes every ~5 s, a few payments per close,
/// habitual small payments plus a heavy tail.
std::vector<TxRecord> synthetic_history(std::size_t n, std::uint64_t seed) {
    util::Rng rng(seed);
    std::vector<TxRecord> records;
    records.reserve(n);
    std::int64_t now = 0;
    while (records.size() < n) {
        now += 5;
        const std::uint32_t burst =
            static_cast<std::uint32_t>(rng.uniform_u64(0, 3));
        for (std::uint32_t i = 0; i < burst && records.size() < n; ++i) {
            TxRecord r;
            r.sender = AccountID::from_seed(
                "user" + std::to_string(rng.uniform_u64(0, 400)));
            r.destination = AccountID::from_seed(
                "shop" + std::to_string(rng.uniform_u64(0, 30)));
            r.currency = Currency::from_code(rng.bernoulli(0.5) ? "USD" : "BTC");
            r.amount = IouAmount::from_double(rng.lognormal(3.0, 2.5));
            r.time = util::RippleTime{now};
            records.push_back(r);
        }
    }
    return records;
}

TEST(IgStudyTest, MonotoneDegradationAcrossTheResolutionLadder) {
    const auto records = synthetic_history(20'000, 5);
    const auto rows = run_ig_study(records);
    ASSERT_EQ(rows.size(), 10u);

    const auto ig = [&](std::size_t i) { return rows[i].result.information_gain(); };

    // The ladder <Am,Tsc> >= <Ah,Tmn> >= <Aa,Thr> >= <Al,Tdy>.
    EXPECT_GE(ig(0), ig(4));
    EXPECT_GE(ig(4), ig(5));
    EXPECT_GE(ig(5), ig(6));

    // Dropping a feature can only lose information.
    EXPECT_GE(ig(0), ig(1));  // remove C
    EXPECT_GE(ig(0), ig(2));  // remove D
    EXPECT_GE(ig(0), ig(3));  // remove A
    EXPECT_GE(ig(0), ig(7));  // remove T
    EXPECT_GE(ig(7), ig(8));  // then remove C and D too
    EXPECT_GE(ig(6), ig(9));
}

TEST(IgStudyTest, TimestampIsTheDominantFeature) {
    // "T's information gain not only is higher than A's, but is also
    // the highest among all the features": removing T hurts more than
    // removing any other single feature.
    const auto records = synthetic_history(20'000, 6);
    const auto rows = run_ig_study(records);
    const double without_c = rows[1].result.information_gain();
    const double without_d = rows[2].result.information_gain();
    const double without_a = rows[3].result.information_gain();
    const double without_t = rows[7].result.information_gain();
    EXPECT_LT(without_t, without_a);
    EXPECT_LT(without_t, without_d);
    EXPECT_LT(without_t, without_c);
}

TEST(IgStudyTest, FullResolutionNearlyPerfect) {
    const auto records = synthetic_history(20'000, 7);
    const auto rows = run_ig_study(records);
    EXPECT_GT(rows[0].result.information_gain(), 0.95);
    // And the weakest configuration is far below it.
    EXPECT_LT(rows[9].result.information_gain(),
              0.5 * rows[0].result.information_gain());
}

TEST(IgStudyTest, RowsCarryPaperReferences) {
    const auto records = synthetic_history(2'000, 8);
    const auto rows = run_ig_study(records);
    EXPECT_TRUE(rows[0].paper_value.has_value());
    EXPECT_TRUE(rows[0].paper_value_exact);
    EXPECT_NEAR(*rows[0].paper_value, 0.9983, 1e-12);
    EXPECT_FALSE(rows[4].paper_value_exact);
}

}  // namespace
}  // namespace xrpl::core
