#include "core/resolution.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace xrpl::core {
namespace {

using ledger::Currency;
using ledger::IouAmount;

Currency cur(const char* code) { return Currency::from_code(code); }

TEST(StrengthTest, TableOneGroups) {
    // Powerful: BTC, XAG, XAU, XPT.
    for (const char* code : {"BTC", "XAG", "XAU", "XPT"}) {
        EXPECT_EQ(strength_of(cur(code)), Strength::kPowerful) << code;
    }
    // Medium: CNY, EUR, USD, AUD, GBP, JPY.
    for (const char* code : {"CNY", "EUR", "USD", "AUD", "GBP", "JPY"}) {
        EXPECT_EQ(strength_of(cur(code)), Strength::kMedium) << code;
    }
    // Weak: XRP, CCK, STR, KRW, MTL.
    for (const char* code : {"XRP", "CCK", "STR", "KRW", "MTL"}) {
        EXPECT_EQ(strength_of(cur(code)), Strength::kWeak) << code;
    }
}

TEST(StrengthTest, UnlistedCurrenciesDefaultToMedium) {
    EXPECT_EQ(strength_of(cur("DOG")), Strength::kMedium);
    EXPECT_EQ(strength_of(cur("ZZZ")), Strength::kMedium);
}

TEST(StrengthTest, BasePowersMatchTableOne) {
    EXPECT_EQ(base_power(Strength::kPowerful), -3);
    EXPECT_EQ(base_power(Strength::kMedium), 1);
    EXPECT_EQ(base_power(Strength::kWeak), 5);
}

TEST(RoundingUnitTest, TableOneValues) {
    // Medium (EUR): max 10^1, average 10^2, low 10^3.
    EXPECT_EQ(rounding_unit(cur("EUR"), AmountResolution::kMax).power, 1);
    EXPECT_EQ(rounding_unit(cur("EUR"), AmountResolution::kAverage).power, 2);
    EXPECT_EQ(rounding_unit(cur("EUR"), AmountResolution::kLow).power, 3);
    // Powerful (BTC): 10^-3, 10^-2, 10^-1.
    EXPECT_EQ(rounding_unit(cur("BTC"), AmountResolution::kMax).power, -3);
    EXPECT_EQ(rounding_unit(cur("BTC"), AmountResolution::kAverage).power, -2);
    EXPECT_EQ(rounding_unit(cur("BTC"), AmountResolution::kLow).power, -1);
    // Weak (XRP): 10^5, 10^6, 10^7.
    EXPECT_EQ(rounding_unit(cur("XRP"), AmountResolution::kMax).power, 5);
    EXPECT_EQ(rounding_unit(cur("XRP"), AmountResolution::kAverage).power, 6);
    EXPECT_EQ(rounding_unit(cur("XRP"), AmountResolution::kLow).power, 7);
}

TEST(RoundingUnitTest, HighResolutionInterpolates) {
    const RoundingUnit high = rounding_unit(cur("USD"), AmountResolution::kHigh);
    EXPECT_EQ(high.digit, 5);
    EXPECT_EQ(high.power, 1);  // nearest 50
}

TEST(RoundAmountTest, MediumExamples) {
    // 4.5 USD (the latte) rounds to 0 at max resolution (nearest 10).
    EXPECT_TRUE(round_amount(IouAmount::from_double(4.5), cur("USD"),
                             AmountResolution::kMax)
                    .is_zero());
    EXPECT_NEAR(round_amount(IouAmount::from_double(47.0), cur("USD"),
                             AmountResolution::kMax)
                    .to_double(),
                50.0, 1e-9);
    EXPECT_NEAR(round_amount(IouAmount::from_double(151.0), cur("USD"),
                             AmountResolution::kAverage)
                    .to_double(),
                200.0, 1e-9);
    EXPECT_NEAR(round_amount(IouAmount::from_double(2499.0), cur("USD"),
                             AmountResolution::kLow)
                    .to_double(),
                2000.0, 1e-9);
}

TEST(RoundAmountTest, PowerfulExamples) {
    EXPECT_NEAR(round_amount(IouAmount::from_double(0.0334), cur("BTC"),
                             AmountResolution::kMax)
                    .to_double(),
                0.033, 1e-12);
    EXPECT_NEAR(round_amount(IouAmount::from_double(0.0334), cur("BTC"),
                             AmountResolution::kAverage)
                    .to_double(),
                0.03, 1e-12);
    EXPECT_NEAR(round_amount(IouAmount::from_double(0.0334), cur("BTC"),
                             AmountResolution::kLow)
                    .to_double(),
                0.0, 1e-12);
}

TEST(RoundAmountTest, WeakExamples) {
    // MTL spam amounts (~1e9) survive even low resolution.
    EXPECT_NEAR(round_amount(IouAmount::from_double(1.23e9), cur("MTL"),
                             AmountResolution::kLow)
                    .to_double(),
                1.23e9, 1e3);
    // Typical XRP retail rounds to zero at max resolution (nearest 1e5).
    EXPECT_TRUE(round_amount(IouAmount::from_double(500.0), cur("XRP"),
                             AmountResolution::kMax)
                    .is_zero());
}

TEST(RoundAmountTest, HighLevelRoundsToNearestFifty) {
    EXPECT_NEAR(round_amount(IouAmount::from_double(74.0), cur("USD"),
                             AmountResolution::kHigh)
                    .to_double(),
                50.0, 1e-6);
    EXPECT_NEAR(round_amount(IouAmount::from_double(76.0), cur("USD"),
                             AmountResolution::kHigh)
                    .to_double(),
                100.0, 1e-6);
}

TEST(RoundAmountTest, LabelsForFigureThree) {
    EXPECT_STREQ(amount_resolution_label(AmountResolution::kMax), "m");
    EXPECT_STREQ(amount_resolution_label(AmountResolution::kHigh), "h");
    EXPECT_STREQ(amount_resolution_label(AmountResolution::kAverage), "a");
    EXPECT_STREQ(amount_resolution_label(AmountResolution::kLow), "l");
}

// Property: rounding at any resolution is idempotent, and coarser
// resolutions never produce a value farther from zero.
class RoundingProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundingProperty, IdempotentAndShrinking) {
    util::Rng rng(1234);
    const Currency currency = cur(GetParam());
    for (int i = 0; i < 500; ++i) {
        const IouAmount value = IouAmount::from_double(rng.lognormal(2.0, 4.0));
        for (const auto res :
             {AmountResolution::kMax, AmountResolution::kHigh,
              AmountResolution::kAverage, AmountResolution::kLow}) {
            const IouAmount rounded = round_amount(value, currency, res);
            EXPECT_EQ(round_amount(rounded, currency, res), rounded)
                << value.to_string();
            // Error at most half the unit.
            const RoundingUnit unit = rounding_unit(currency, res);
            const double unit_size = unit.digit * std::pow(10.0, unit.power);
            EXPECT_LE(std::abs(rounded.to_double() - value.to_double()),
                      unit_size * 0.5000001)
                << value.to_string();
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Currencies, RoundingProperty,
                         ::testing::Values("USD", "BTC", "XRP", "EUR", "MTL"));

}  // namespace
}  // namespace xrpl::core
