#include "core/fingerprint.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "util/rng.hpp"

namespace xrpl::core {
namespace {

using ledger::AccountID;
using ledger::Currency;
using ledger::IouAmount;
using ledger::TxRecord;

TxRecord latte() {
    TxRecord r;
    r.sender = AccountID::from_seed("bob");
    r.destination = AccountID::from_seed("bar");
    r.currency = Currency::from_code("USD");
    r.amount = IouAmount::from_double(4.5);
    r.time = util::from_calendar(2015, 8, 24, 15, 41, 3);
    return r;
}

TEST(FingerprintTest, SenderNeverAffectsFingerprint) {
    TxRecord a = latte();
    TxRecord b = latte();
    b.sender = AccountID::from_seed("alice");
    EXPECT_EQ(fingerprint(a, full_resolution()), fingerprint(b, full_resolution()));
}

TEST(FingerprintTest, EachIncludedFieldMatters) {
    const ResolutionConfig config = full_resolution();
    const std::uint64_t base = fingerprint(latte(), config);

    TxRecord r = latte();
    r.destination = AccountID::from_seed("other-bar");
    EXPECT_NE(fingerprint(r, config), base);

    r = latte();
    r.currency = Currency::from_code("EUR");
    EXPECT_NE(fingerprint(r, config), base);

    r = latte();
    r.time.seconds += 1;
    EXPECT_NE(fingerprint(r, config), base);

    r = latte();
    r.amount = IouAmount::from_double(17.0);  // rounds to 20, not 0
    EXPECT_NE(fingerprint(r, config), base);
}

TEST(FingerprintTest, IgnoredFieldsDoNotMatter) {
    ResolutionConfig config = full_resolution();
    config.use_destination = false;
    TxRecord a = latte();
    TxRecord b = latte();
    b.destination = AccountID::from_seed("somewhere-else");
    EXPECT_EQ(fingerprint(a, config), fingerprint(b, config));

    config = full_resolution();
    config.time.reset();
    b = latte();
    b.time.seconds += 3600;
    EXPECT_EQ(fingerprint(latte(), config), fingerprint(b, config));

    config = full_resolution();
    config.amount.reset();
    b = latte();
    b.amount = IouAmount::from_double(999.0);
    EXPECT_EQ(fingerprint(latte(), config), fingerprint(b, config));
}

TEST(FingerprintTest, AmountRoundingMergesNearbyValues) {
    // Both 4.5 and 4.9 USD round to 0 at max resolution.
    TxRecord a = latte();
    TxRecord b = latte();
    b.amount = IouAmount::from_double(4.9);
    EXPECT_EQ(fingerprint(a, full_resolution()), fingerprint(b, full_resolution()));
}

TEST(FingerprintTest, TimeTruncationMergesWithinBucket) {
    ResolutionConfig config = full_resolution();
    config.time = util::TimeResolution::kHours;
    TxRecord a = latte();
    TxRecord b = latte();
    b.time = util::from_calendar(2015, 8, 24, 15, 2, 59);
    EXPECT_EQ(fingerprint(a, config), fingerprint(b, config));
    b.time = util::from_calendar(2015, 8, 24, 16, 0, 0);
    EXPECT_NE(fingerprint(a, config), fingerprint(b, config));
}

TEST(FingerprintTest, CoarserResolutionNeverSplitsABucket) {
    // If two records collide at fine resolution they must collide at
    // every coarser one (refinement property).
    util::Rng rng(77);
    for (int i = 0; i < 300; ++i) {
        TxRecord a;
        a.sender = AccountID::from_seed("s" + std::to_string(i));
        a.destination = AccountID::from_seed("d" + std::to_string(i % 10));
        a.currency = Currency::from_code("USD");
        a.amount = IouAmount::from_double(rng.lognormal(3.0, 2.0));
        a.time = util::RippleTime{
            static_cast<std::int64_t>(rng.uniform_u64(0, 100'000))};
        TxRecord b = a;
        b.amount = a.amount;  // identical features
        const ResolutionConfig fine = full_resolution();
        ResolutionConfig coarse;
        coarse.amount = AmountResolution::kLow;
        coarse.time = util::TimeResolution::kDays;
        if (fingerprint(a, fine) == fingerprint(b, fine)) {
            EXPECT_EQ(fingerprint(a, coarse), fingerprint(b, coarse));
        }
    }
}

TEST(FingerprintTest, HashSpreadsOverDistinctRecords) {
    std::unordered_set<std::uint64_t> fingerprints;
    const int n = 20'000;
    for (int i = 0; i < n; ++i) {
        TxRecord r;
        r.sender = AccountID::from_seed("s");
        r.destination = AccountID::from_seed("d" + std::to_string(i));
        r.currency = Currency::from_code("USD");
        r.amount = IouAmount::from_double(100.0 * (i + 1));
        r.time = util::RippleTime{i};
        fingerprints.insert(fingerprint(r, full_resolution()));
    }
    EXPECT_EQ(fingerprints.size(), static_cast<std::size_t>(n));
}

TEST(FingerprintTest, SingleFieldConfigsAreDomainSeparated) {
    // Each field mixes under its own domain tag, so configurations
    // that reduce to one field can never collide with each other by
    // construction (pre-tag, a timestamp equal to a destination's
    // hash word produced identical digests).
    const TxRecord r = latte();
    const ResolutionConfig amount_only{AmountResolution::kMax, std::nullopt,
                                       false, false};
    const ResolutionConfig time_only{std::nullopt, util::TimeResolution::kSeconds,
                                     false, false};
    const ResolutionConfig currency_only{std::nullopt, std::nullopt, true, false};
    const ResolutionConfig dest_only{std::nullopt, std::nullopt, false, true};

    const std::uint64_t fps[] = {
        fingerprint(r, amount_only), fingerprint(r, time_only),
        fingerprint(r, currency_only), fingerprint(r, dest_only)};
    for (std::size_t i = 0; i < 4; ++i) {
        for (std::size_t j = i + 1; j < 4; ++j) {
            EXPECT_NE(fps[i], fps[j]) << "configs " << i << " and " << j;
        }
    }
}

TEST(FingerprintTest, PinnedValuesAreStable) {
    // Regression pins for the domain-tagged fingerprint. These values
    // must never change silently: the columnar path, the AttackIndex
    // layout, and any serialized fingerprint all depend on them.
    const TxRecord r = latte();
    EXPECT_EQ(fingerprint(r, full_resolution()), 0xb97868eb462a80d9ULL);

    ResolutionConfig coarse;
    coarse.amount = AmountResolution::kLow;
    coarse.time = util::TimeResolution::kDays;
    coarse.use_currency = true;
    coarse.use_destination = true;
    EXPECT_EQ(fingerprint(r, coarse), 0xcc29fb40b41b9e4bULL);

    ResolutionConfig no_time = full_resolution();
    no_time.time.reset();
    EXPECT_EQ(fingerprint(r, no_time), 0x911807b4029dd83bULL);
}

TEST(FingerprintHasherTest, MixOrderMatters) {
    FingerprintHasher a;
    a.mix(1);
    a.mix(2);
    FingerprintHasher b;
    b.mix(2);
    b.mix(1);
    EXPECT_NE(a.digest(), b.digest());
}

}  // namespace
}  // namespace xrpl::core
