#include "core/clustering.hpp"

#include <gtest/gtest.h>

#include <string>

#include "core/ig_study.hpp"
#include "util/rng.hpp"

namespace xrpl::core {
namespace {

using ledger::AccountID;
using ledger::Currency;
using ledger::IouAmount;
using ledger::TxRecord;

AccountID acc(const std::string& seed) { return AccountID::from_seed(seed); }

TEST(AccountClustersTest, UnlinkedAccountsAreTheirOwnCluster) {
    const AccountClusters clusters;
    EXPECT_EQ(clusters.representative(acc("x")), acc("x"));
    EXPECT_FALSE(clusters.same_cluster(acc("x"), acc("y")));
    EXPECT_EQ(clusters.cluster_count(), 0u);
}

TEST(AccountClustersTest, LinkMergesTransitively) {
    AccountClusters clusters;
    clusters.link(acc("a"), acc("b"));
    clusters.link(acc("b"), acc("c"));
    clusters.link(acc("x"), acc("y"));
    EXPECT_TRUE(clusters.same_cluster(acc("a"), acc("c")));
    EXPECT_TRUE(clusters.same_cluster(acc("x"), acc("y")));
    EXPECT_FALSE(clusters.same_cluster(acc("a"), acc("x")));
    EXPECT_EQ(clusters.cluster_count(), 2u);
    EXPECT_EQ(clusters.tracked_accounts(), 5u);
}

TEST(AccountClustersTest, SelfAndRepeatedLinksAreIdempotent) {
    AccountClusters clusters;
    clusters.link(acc("a"), acc("a"));
    clusters.link(acc("a"), acc("b"));
    clusters.link(acc("a"), acc("b"));
    clusters.link(acc("b"), acc("a"));
    EXPECT_EQ(clusters.cluster_count(), 1u);
}

TEST(AccountClustersTest, ClustersListsMembers) {
    AccountClusters clusters;
    clusters.link(acc("a"), acc("b"));
    clusters.link(acc("b"), acc("c"));
    clusters.link(acc("solo"), acc("solo"));
    const auto groups = clusters.clusters(2);
    ASSERT_EQ(groups.size(), 1u);
    EXPECT_EQ(groups[0].size(), 3u);
}

TEST(AccountClustersTest, LargeRandomUnionsStayConsistent) {
    // Property: after linking a random spanning structure over k
    // groups, representatives agree exactly with group membership.
    util::Rng rng(17);
    AccountClusters clusters;
    const int groups = 20;
    const int members = 40;
    for (int g = 0; g < groups; ++g) {
        for (int m = 1; m < members; ++m) {
            // Link each member to a random earlier member of its group.
            const int to = static_cast<int>(
                rng.uniform_u64(0, static_cast<std::uint64_t>(m - 1)));
            clusters.link(acc("g" + std::to_string(g) + "-" + std::to_string(m)),
                          acc("g" + std::to_string(g) + "-" + std::to_string(to)));
        }
    }
    EXPECT_EQ(clusters.cluster_count(), static_cast<std::size_t>(groups));
    for (int g = 0; g < groups; ++g) {
        const AccountID root =
            clusters.representative(acc("g" + std::to_string(g) + "-0"));
        for (int m = 0; m < members; ++m) {
            EXPECT_EQ(clusters.representative(
                          acc("g" + std::to_string(g) + "-" + std::to_string(m))),
                      root);
        }
    }
}

TEST(ClusterByActivationTest, SharedFunderMergesWallets) {
    // The paper's observation: rp2PaY and r42Ccn were both activated
    // by ~akhavr — activation clustering puts them in one entity.
    const std::vector<ActivationEdge> edges = {
        {acc("~akhavr"), acc("rp2PaY")},
        {acc("~akhavr"), acc("r42Ccn")},
        {acc("someone-else"), acc("unrelated")},
    };
    const AccountClusters clusters = cluster_by_activation(edges);
    EXPECT_TRUE(clusters.same_cluster(acc("rp2PaY"), acc("r42Ccn")));
    EXPECT_TRUE(clusters.same_cluster(acc("rp2PaY"), acc("~akhavr")));
    EXPECT_FALSE(clusters.same_cluster(acc("rp2PaY"), acc("unrelated")));
}

TxRecord record(const std::string& sender, double amount, std::int64_t t) {
    TxRecord r;
    r.sender = acc(sender);
    r.destination = acc("shop");
    r.currency = Currency::from_code("USD");
    r.amount = IouAmount::from_double(amount);
    r.time = util::RippleTime{t};
    return r;
}

TEST(ClusteredIgTest, IdentityClusteringEqualsPlainIg) {
    std::vector<TxRecord> records;
    util::Rng rng(3);
    for (int i = 0; i < 2'000; ++i) {
        records.push_back(record("u" + std::to_string(rng.uniform_u64(0, 50)),
                                 10.0 * static_cast<double>(rng.uniform_u64(1, 9)),
                                 static_cast<std::int64_t>(rng.uniform_u64(0, 3'000))));
    }
    const AccountClusters empty;
    const Deanonymizer deanonymizer(records);
    for (const auto& config : fig3_configurations()) {
        EXPECT_EQ(clustered_information_gain(records, config, empty)
                      .uniquely_identified,
                  deanonymizer.information_gain(config).uniquely_identified)
            << config.label();
    }
}

TEST(ClusteredIgTest, ClusteringRecoversIdentificationAcrossWallets) {
    // Two wallets of the same entity collide on a fingerprint: at the
    // address level the bucket is ambiguous, at the entity level it
    // identifies.
    const std::vector<TxRecord> records = {
        record("wallet-1", 40.0, 100),
        record("wallet-2", 40.0, 100),  // same fingerprint, other wallet
    };
    const Deanonymizer deanonymizer(records);
    EXPECT_DOUBLE_EQ(
        deanonymizer.information_gain(full_resolution()).information_gain(), 0.0);

    AccountClusters clusters;
    clusters.link(acc("wallet-1"), acc("wallet-2"));
    EXPECT_DOUBLE_EQ(
        clustered_information_gain(records, full_resolution(), clusters)
            .information_gain(),
        1.0);
}

TEST(ClusteredIgTest, ClusteringNeverReducesIdentification) {
    util::Rng rng(5);
    std::vector<TxRecord> records;
    for (int i = 0; i < 3'000; ++i) {
        records.push_back(record("w" + std::to_string(rng.uniform_u64(0, 99)),
                                 10.0 * static_cast<double>(rng.uniform_u64(1, 5)),
                                 static_cast<std::int64_t>(rng.uniform_u64(0, 1'000))));
    }
    // Random pairing of wallets into entities.
    AccountClusters clusters;
    for (int w = 0; w < 99; w += 2) {
        clusters.link(acc("w" + std::to_string(w)),
                      acc("w" + std::to_string(w + 1)));
    }
    const Deanonymizer deanonymizer(records);
    for (const auto& config : fig3_configurations()) {
        EXPECT_GE(clustered_information_gain(records, config, clusters)
                      .uniquely_identified,
                  deanonymizer.information_gain(config).uniquely_identified)
            << config.label();
    }
}

}  // namespace
}  // namespace xrpl::core
