#include "core/mitigation.hpp"

#include <gtest/gtest.h>

#include <string>
#include <unordered_set>

#include "util/rng.hpp"

namespace xrpl::core {
namespace {

using ledger::AccountID;
using ledger::Currency;
using ledger::IouAmount;
using ledger::TxRecord;

std::vector<TxRecord> habitual_history() {
    // Two users, each repeatedly paying the same shop the same amount
    // on DIFFERENT days: unique-sender at day resolution because each
    // (amount, day, shop) cell holds one sender.
    std::vector<TxRecord> records;
    for (int day = 0; day < 12; ++day) {
        TxRecord a;
        a.sender = AccountID::from_seed("alice");
        a.destination = AccountID::from_seed("shop");
        a.currency = Currency::from_code("USD");
        a.amount = IouAmount::from_double(40.0);
        a.time = util::RippleTime{day * 86'400 + 3'600};
        records.push_back(a);
        TxRecord b = a;
        b.sender = AccountID::from_seed("bob");
        b.time.seconds += 7'200;
        records.push_back(b);
    }
    return records;
}

std::size_t three_lines(const AccountID&) { return 3; }

TEST(MitigationTest, RotationSpreadsPaymentsAcrossWallets) {
    const auto records = habitual_history();
    WalletRotationConfig config;
    config.wallets_per_sender = 4;
    const RotatedHistory rotated =
        apply_wallet_rotation(records, config, three_lines);

    ASSERT_EQ(rotated.records.size(), records.size());
    std::unordered_set<AccountID> wallets;
    for (const TxRecord& record : rotated.records) {
        wallets.insert(record.sender);
        // Wallets are fresh accounts, not the owners.
        EXPECT_NE(record.sender, AccountID::from_seed("alice"));
        EXPECT_NE(record.sender, AccountID::from_seed("bob"));
    }
    EXPECT_EQ(wallets.size(), 8u);  // 2 owners x 4 wallets
    // Only the sender changes.
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(rotated.records[i].destination, records[i].destination);
        EXPECT_EQ(rotated.records[i].amount, records[i].amount);
        EXPECT_EQ(rotated.records[i].time.seconds, records[i].time.seconds);
    }
}

TEST(MitigationTest, WalletOwnerMapIsComplete) {
    const auto records = habitual_history();
    WalletRotationConfig config;
    config.wallets_per_sender = 3;
    const RotatedHistory rotated =
        apply_wallet_rotation(records, config, three_lines);
    for (const TxRecord& record : rotated.records) {
        const auto it = rotated.wallet_owner.find(record.sender);
        ASSERT_NE(it, rotated.wallet_owner.end());
        EXPECT_TRUE(it->second == AccountID::from_seed("alice") ||
                    it->second == AccountID::from_seed("bob"));
    }
}

TEST(MitigationTest, BootstrapCostScalesWithWalletsAndLines) {
    const auto records = habitual_history();
    WalletRotationConfig config;
    config.wallets_per_sender = 5;
    config.xrp_reserve_per_wallet = 20.0;
    config.xrp_reserve_per_trustline = 5.0;
    const RotatedHistory rotated =
        apply_wallet_rotation(records, config, three_lines);
    EXPECT_EQ(rotated.wallets_created, 10u);       // 2 owners x 5
    EXPECT_EQ(rotated.trustlines_created, 30u);    // x 3 lines each
    EXPECT_DOUBLE_EQ(rotated.xrp_reserve_cost, 10 * 20.0 + 30 * 5.0);
}

TEST(MitigationTest, RotationDefeatsTheNaiveAttack) {
    // Each wallet used ~3 times; the day-resolution fingerprint that
    // identified alice now maps to several "different" senders? No —
    // wallets still belong to one owner each; uniqueness per wallet
    // remains. The defence shows up only when wallets COLLIDE across
    // owners: force it by making both users' payments identical in
    // features (same second, same amount, same shop).
    std::vector<TxRecord> records;
    for (int i = 0; i < 8; ++i) {
        TxRecord a;
        a.sender = AccountID::from_seed("alice");
        a.destination = AccountID::from_seed("shop");
        a.currency = Currency::from_code("USD");
        a.amount = IouAmount::from_double(40.0);
        a.time = util::RippleTime{1'000 + i};  // distinct seconds
        records.push_back(a);
    }
    // Without rotation every record is uniquely alice's (same sender).
    const Deanonymizer before(records);
    EXPECT_DOUBLE_EQ(
        before.information_gain(full_resolution()).information_gain(), 1.0);

    // With per-transaction wallets each fingerprint maps to ONE wallet,
    // still "unique" — the defence does NOT protect distinct-feature
    // payments, exactly the paper's skepticism.
    WalletRotationConfig config;
    config.wallets_per_sender = 8;
    const RotatedHistory rotated =
        apply_wallet_rotation(records, config, three_lines);
    const Deanonymizer after(rotated.records);
    EXPECT_DOUBLE_EQ(
        after.information_gain(full_resolution()).information_gain(), 1.0);
    // What rotation DOES break is history linkage: the "financial
    // life" of any single wallet is a fraction of the real history.
    const auto life = after.history_of(rotated.records.front().sender);
    EXPECT_EQ(life.size(), 1u);
}

TEST(MitigationTest, LinkageAttackRestoresTheBaseline) {
    const auto records = habitual_history();
    const ResolutionConfig resolution = full_resolution();

    WalletRotationConfig config;
    config.wallets_per_sender = 6;
    const MitigationReport report =
        evaluate_wallet_rotation(records, resolution, config, three_lines);

    // Rotation does not reduce per-payment identification here (each
    // fingerprint still has one sender)...
    EXPECT_DOUBLE_EQ(report.rotated.information_gain(),
                     report.baseline.information_gain());
    // ...and the activation-linkage attack maps wallets back to their
    // owners, restoring the original IG exactly.
    EXPECT_DOUBLE_EQ(report.linked.information_gain(),
                     report.baseline.information_gain());
    EXPECT_GT(report.xrp_reserve_cost, 0.0);
}

TEST(MitigationTest, LinkedIgNeverBelowRotatedIg) {
    // Linking merges wallets into clusters: buckets that were
    // multi-wallet-but-one-owner become identified.
    util::Rng rng(5);
    std::vector<TxRecord> records;
    for (int i = 0; i < 2'000; ++i) {
        TxRecord r;
        r.sender = AccountID::from_seed(
            "u" + std::to_string(rng.uniform_u64(0, 40)));
        r.destination = AccountID::from_seed(
            "m" + std::to_string(rng.uniform_u64(0, 5)));
        r.currency = Currency::from_code("USD");
        r.amount = IouAmount::from_double(
            10.0 * static_cast<double>(rng.uniform_u64(1, 6)));
        r.time = util::RippleTime{
            static_cast<std::int64_t>(rng.uniform_u64(0, 2'000))};
        records.push_back(r);
    }
    ResolutionConfig coarse;
    coarse.amount = AmountResolution::kAverage;
    coarse.time = util::TimeResolution::kHours;
    WalletRotationConfig config;
    config.wallets_per_sender = 4;
    const MitigationReport report =
        evaluate_wallet_rotation(records, coarse, config, three_lines);
    EXPECT_GE(report.linked.information_gain(),
              report.rotated.information_gain());
    EXPECT_NEAR(report.linked.information_gain(),
                report.baseline.information_gain(), 1e-12);
}

TEST(MitigationTest, ZeroWalletConfigBehavesAsOne) {
    const auto records = habitual_history();
    WalletRotationConfig config;
    config.wallets_per_sender = 0;
    const RotatedHistory rotated =
        apply_wallet_rotation(records, config, three_lines);
    std::unordered_set<AccountID> wallets;
    for (const TxRecord& r : rotated.records) wallets.insert(r.sender);
    EXPECT_EQ(wallets.size(), 2u);  // one wallet per owner
}

}  // namespace
}  // namespace xrpl::core
