#include "util/sha256.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace xrpl::util {
namespace {

TEST(Sha256Test, EmptyStringMatchesFipsVector) {
    EXPECT_EQ(to_hex(sha256("")),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, AbcMatchesFipsVector) {
    EXPECT_EQ(to_hex(sha256("abc")),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessageMatchesFipsVector) {
    EXPECT_EQ(to_hex(sha256(
                  "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAsMatchesFipsVector) {
    const std::string input(1'000'000, 'a');
    EXPECT_EQ(to_hex(sha256(input)),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, StreamingEqualsOneShot) {
    const std::string text = "the quick brown fox jumps over the lazy dog";
    for (std::size_t split = 0; split <= text.size(); ++split) {
        Sha256 hasher;
        hasher.update(text.substr(0, split));
        hasher.update(text.substr(split));
        EXPECT_EQ(hasher.finish(), sha256(text)) << "split at " << split;
    }
}

TEST(Sha256Test, StreamingManySmallChunksEqualsOneShot) {
    const std::string text(1000, 'x');
    Sha256 hasher;
    for (const char c : text) hasher.update(std::string_view(&c, 1));
    EXPECT_EQ(hasher.finish(), sha256(text));
}

TEST(Sha256Test, DistinctInputsDistinctDigests) {
    EXPECT_NE(sha256("a"), sha256("b"));
    EXPECT_NE(sha256(""), sha256(std::string(1, '\0')));
}

TEST(Sha256Test, DoubleHashDiffersFromSingle) {
    const std::string text = "checksum body";
    const std::vector<std::uint8_t> bytes(text.begin(), text.end());
    EXPECT_NE(sha256d(bytes), sha256(text));
}

// Boundary lengths around the 64-byte block and 56-byte padding edge.
class Sha256LengthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Sha256LengthTest, StreamingMatchesOneShotAtBoundary) {
    const std::string text(GetParam(), 'q');
    Sha256 hasher;
    const std::size_t half = text.size() / 2;
    hasher.update(text.substr(0, half));
    hasher.update(text.substr(half));
    EXPECT_EQ(hasher.finish(), sha256(text));
}

INSTANTIATE_TEST_SUITE_P(PaddingBoundaries, Sha256LengthTest,
                         ::testing::Values(0, 1, 54, 55, 56, 57, 63, 64, 65, 119,
                                           120, 127, 128, 129, 255, 256));

}  // namespace
}  // namespace xrpl::util
